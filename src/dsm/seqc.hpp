// seqc: a sequentially-consistent, single-writer protocol over the same
// substrate — the DSM-PM2 "protocol library" claim made concrete.
//
// The paper builds its two Java protocols on DSM-PM2 precisely because the
// platform hosts *multiple* consistency protocols ("full support for
// implementing various consistency protocols, such as sequential and
// release consistency", §1). This module is the classic Li/Hudak-style
// protocol on our cluster model:
//
//   * every home page has a directory entry: either a set of read replicas
//     (copyset) or one exclusive writer;
//   * a read miss fetches a read-only copy and joins the copyset (recalling
//     the page from an exclusive writer first);
//   * a write requires exclusive ownership: the home invalidates every
//     replica (and recalls a foreign writer), then grants ownership;
//   * accesses never see stale data — no monitors required for coherence
//     (unlike Java consistency, where staleness until acquire is the norm).
//
// The directory state machine runs entirely in home-side handlers on the
// simulation's single scheduler thread, so transitions are atomic; requests
// that arrive while a transition is in flight queue on the directory entry.
#pragma once

#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/node_set.hpp"
#include "dsm/address.hpp"
#include "dsm/node_dsm.hpp"

namespace hyp::dsm {

namespace svc {
inline constexpr cluster::ServiceId kSeqRead = 30;     // read-copy request
inline constexpr cluster::ServiceId kSeqWrite = 31;    // exclusive request
inline constexpr cluster::ServiceId kSeqRecall = 32;   // home -> owner
inline constexpr cluster::ServiceId kSeqInvalidate = 33;  // home -> reader
}  // namespace svc

enum class SeqMode : std::uint8_t { kInvalid = 0, kRead = 1, kExclusive = 2 };

class SeqDsm;

struct SeqThreadCtx {
  SeqDsm* dsm = nullptr;
  NodeId node = -1;
  std::byte* base = nullptr;
  cluster::CpuClock clock;
  Stats* stats = nullptr;
  Time check_cost = 0;

  explicit SeqThreadCtx(const cluster::CpuParams* cpu) : clock(cpu) {}
};

class SeqDsm {
 public:
  SeqDsm(cluster::Cluster* cluster, std::size_t region_bytes);

  const Layout& layout() const { return layout_; }
  Gva alloc(NodeId node, std::size_t bytes, std::size_t align = 8);
  std::unique_ptr<SeqThreadCtx> make_thread(NodeId node);

  // Access primitives: sequentially consistent, no monitors needed for
  // coherence (mutual exclusion still needs locks, as on real SC hardware).
  //
  // Livelock freedom: a node granted a page always completes at least one
  // access before surrendering it. Reads that lose a grant/invalidate race
  // still consume the granted bytes once (the read linearizes at the grant);
  // writes hold recalls off until the store lands (write_complete).
  template <typename T>
  T read(SeqThreadCtx& t, Gva a) {
    t.clock.charge(t.check_cost);
    t.stats->add(Counter::kInlineChecks);
    const PageId p = layout_.page_of(a);
    if (mode(t.node, p) == SeqMode::kInvalid) [[unlikely]] {
      read_miss(t, p);  // installs the page (possibly only transiently)
    }
    T v;
    std::memcpy(&v, t.base + a, sizeof(T));
    return v;
  }

  template <typename T>
  void write(SeqThreadCtx& t, Gva a, T v) {
    t.clock.charge(t.check_cost);
    t.stats->add(Counter::kInlineChecks);
    const PageId p = layout_.page_of(a);
    const bool missed = mode(t.node, p) != SeqMode::kExclusive;
    if (missed) [[unlikely]] {
      write_miss(t, p);
    }
    std::memcpy(t.base + a, &v, sizeof(T));
    if (missed) [[unlikely]] {
      write_complete(t, p);  // now honor any recall that raced the grant
    }
  }

  SeqMode mode(NodeId node, PageId p) const {
    return modes_[static_cast<std::size_t>(node)][p];
  }

  // Test/debug: the current master copy (home's arena unless a foreign
  // exclusive owner exists — then the owner's arena is authoritative).
  template <typename T>
  T read_master(Gva a) const {
    const PageId p = layout_.page_of(a);
    const Directory& dir = directory_[p];
    const NodeId where = dir.exclusive_owner >= 0 ? dir.exclusive_owner : layout_.home_of(a);
    T v;
    std::memcpy(&v, nodes_[static_cast<std::size_t>(where)]->arena() + a, sizeof(T));
    return v;
  }

 public:
  ~SeqDsm();

 private:
  struct Pending {
    NodeId requester;
    std::uint64_t reply_token;
    bool wants_exclusive;
    sim::Fiber* local_fiber = nullptr;  // home-local requester to unpark
    bool* local_granted = nullptr;
  };
  struct Directory {
    NodeSet copyset;               // nodes holding read replicas (home included
                                   // implicitly: the home copy is the master)
    NodeId exclusive_owner = -1;   // -1 = none (home copy authoritative)
    bool busy = false;             // a recall/invalidate round is in flight
    bool waiting_local_owner = false;  // round stalled on the home's own store
    std::deque<Pending> waiting;
    int acks_outstanding = 0;
    Pending in_service{};          // request being served while busy
  };

  void read_miss(SeqThreadCtx& t, PageId p);
  void write_miss(SeqThreadCtx& t, PageId p);
  void write_complete(SeqThreadCtx& t, PageId p);

  // Home-side machine.
  void handle_request(cluster::Incoming& in, NodeId self, bool exclusive);
  void start_service(NodeId home, PageId p, Pending req);
  void finish_service(NodeId home, PageId p);
  void handle_recall_reply(NodeId home, PageId p, BufferReader& payload);
  void handle_invalidate_ack(NodeId home, PageId p);

  // Client-side handlers.
  void handle_recall(cluster::Incoming& in, NodeId self);
  void handle_invalidate(cluster::Incoming& in, NodeId self);

  void grant(NodeId home, PageId p, const Pending& req);

  // Per-node client-side transient state (grant/invalidate race resolution).
  struct ClientState {
    std::vector<std::uint32_t> inval_version;  // bumped by invalidate/recall
    std::vector<std::uint8_t> recall_pending;  // recall arrived mid-grant
    std::vector<std::uint8_t> recall_drop;     // pending recall invalidates
    // Count of home-local fibers that have been *granted* exclusivity but
    // whose store has not landed yet (bumped at grant, dropped at
    // write_complete). Rounds wanting the page back stall on this.
    std::vector<std::uint32_t> local_excl_pending;
  };
  ClientState& client(NodeId node) { return clients_[static_cast<std::size_t>(node)]; }

  cluster::Cluster* cluster_;
  Layout layout_;
  std::vector<std::unique_ptr<NodeDsm>> nodes_;  // arenas + allocation zones
  std::vector<std::vector<SeqMode>> modes_;      // [node][page]
  std::vector<Directory> directory_;             // [page], used at the home
  std::vector<ClientState> clients_;             // [node]
};

}  // namespace hyp::dsm
