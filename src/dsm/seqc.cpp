#include "dsm/seqc.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"
#include "sim/engine.hpp"

namespace hyp::dsm {

namespace {
// Extra client-side services of the seqc protocol.
constexpr cluster::ServiceId kSeqInvAck = 34;       // reader -> home
constexpr cluster::ServiceId kSeqRecallReply = 35;  // owner -> home
constexpr std::uint64_t kDirectoryCycles = 80;      // home bookkeeping per transition
}  // namespace

SeqDsm::SeqDsm(cluster::Cluster* cluster, std::size_t region_bytes)
    : cluster_(cluster),
      layout_(region_bytes, cluster->params().page_bytes, cluster->node_count()),
      directory_(layout_.total_pages()) {
  const int n = cluster->node_count();
  nodes_.reserve(static_cast<std::size_t>(n));
  modes_.resize(static_cast<std::size_t>(n));
  clients_.resize(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<NodeDsm>(&layout_, i));
    modes_[static_cast<std::size_t>(i)].assign(layout_.total_pages(), SeqMode::kInvalid);
    auto& cs = clients_[static_cast<std::size_t>(i)];
    cs.inval_version.assign(layout_.total_pages(), 0);
    cs.recall_pending.assign(layout_.total_pages(), 0);
    cs.recall_drop.assign(layout_.total_pages(), 0);
    cs.local_excl_pending.assign(layout_.total_pages(), 0);

    cluster_->node(i).register_service(
        svc::kSeqRead, [this, i](cluster::Incoming& in) { handle_request(in, i, false); });
    cluster_->node(i).register_service(
        svc::kSeqWrite, [this, i](cluster::Incoming& in) { handle_request(in, i, true); });
    cluster_->node(i).register_service(
        svc::kSeqRecall, [this, i](cluster::Incoming& in) { handle_recall(in, i); });
    cluster_->node(i).register_service(
        svc::kSeqInvalidate, [this, i](cluster::Incoming& in) { handle_invalidate(in, i); });
    cluster_->node(i).register_service(kSeqInvAck, [this, i](cluster::Incoming& in) {
      const auto p = in.reader.get<std::uint32_t>();
      handle_invalidate_ack(i, p);
    });
    cluster_->node(i).register_service(kSeqRecallReply, [this, i](cluster::Incoming& in) {
      const auto p = in.reader.get<std::uint32_t>();
      handle_recall_reply(i, p, in.reader);
    });
  }
  // Initially every page is exclusively held by its home node.
  for (PageId p = 0; p < layout_.total_pages(); ++p) {
    const NodeId home = layout_.home_of_page(p);
    directory_[p].exclusive_owner = home;
    modes_[static_cast<std::size_t>(home)][p] = SeqMode::kExclusive;
  }
}

SeqDsm::~SeqDsm() = default;

Gva SeqDsm::alloc(NodeId node, std::size_t bytes, std::size_t align) {
  return nodes_[static_cast<std::size_t>(node)]->alloc(bytes, align);
}

std::unique_ptr<SeqThreadCtx> SeqDsm::make_thread(NodeId node) {
  auto t = std::make_unique<SeqThreadCtx>(&cluster_->params().cpu);
  t->dsm = this;
  t->node = node;
  t->base = nodes_[static_cast<std::size_t>(node)]->arena();
  t->stats = &cluster_->node(node).stats();
  t->check_cost = cluster_->params().cpu.check_cost();
  t->clock.bind_cpu(&cluster_->node(node).app_cpu());
  return t;
}

// ---------------------------------------------------------------------------
// Client-side miss paths
//
// Race notes:
//  * A *read* grant can be overtaken by an invalidate for the same page
//    (the home granted us a replica and then served a writer before our
//    reply landed). The inval_version counter detects this: the stale bytes
//    are discarded and the loop refetches.
//  * An *exclusive* grant cannot be invalidated (the home never targets the
//    new owner), but a recall can race it; the recall handler defers and the
//    granting thread serves it right after installing, then re-contends.

void SeqDsm::read_miss(SeqThreadCtx& t, PageId p) {
  const NodeId home = layout_.home_of_page(p);
  auto& cs = client(t.node);
  t.clock.flush();
  if (home == t.node) {
    bool granted = false;
    Pending local{t.node, 0, false, sim::Engine::current()->current_fiber(), &granted};
    Directory& dir = directory_[p];
    if (dir.busy) {
      dir.waiting.push_back(local);
    } else {
      start_service(home, p, local);
    }
    while (!granted) sim::Engine::current()->park();
    // The home arena is the master copy at grant time; if a racing round
    // downgraded us again already, this read still linearizes at the grant.
    return;
  }
  const std::uint32_t v0 = cs.inval_version[p];
  Buffer req;
  req.put<std::uint32_t>(p);
  Buffer reply = cluster_->call(t.node, home, svc::kSeqRead, std::move(req));
  HYP_CHECK(reply.size() == layout_.page_bytes());
  std::memcpy(nodes_[static_cast<std::size_t>(t.node)]->page_ptr(p), reply.data(),
              reply.size());
  t.stats->add(Counter::kPageFetches);
  t.stats->add(Counter::kPageFetchBytes, reply.size());
  if (cs.inval_version[p] == v0) {
    modes_[static_cast<std::size_t>(t.node)][p] = SeqMode::kRead;
  }
  // else: an invalidate raced the grant — the caller still performs its one
  // read of the granted bytes (it is ordered before the invalidating write
  // in the SC total order), but the replica is not retained.
}

void SeqDsm::write_miss(SeqThreadCtx& t, PageId p) {
  const NodeId home = layout_.home_of_page(p);
  auto& cs = client(t.node);
  t.clock.flush();
  if (home == t.node) {
    bool granted = false;
    Pending local{t.node, 0, true, sim::Engine::current()->current_fiber(), &granted};
    Directory& dir = directory_[p];
    if (dir.busy) {
      dir.waiting.push_back(local);
    } else {
      start_service(home, p, local);
    }
    while (!granted) sim::Engine::current()->park();
    // grant() bumped local_excl_pending: rounds serviced before our store
    // lands stall in start_service instead of downgrading us.
    HYP_CHECK(mode(t.node, p) == SeqMode::kExclusive);
    (void)cs;
    return;
  }
  Buffer req;
  req.put<std::uint32_t>(p);
  Buffer reply = cluster_->call(t.node, home, svc::kSeqWrite, std::move(req));
  HYP_CHECK(reply.size() == layout_.page_bytes());
  std::memcpy(nodes_[static_cast<std::size_t>(t.node)]->page_ptr(p), reply.data(),
              reply.size());
  t.stats->add(Counter::kPageFetches);
  t.stats->add(Counter::kPageFetchBytes, reply.size());
  // Exclusive grants install unconditionally: the home never invalidates
  // the node it is granting to, and racing recalls defer until
  // write_complete().
  modes_[static_cast<std::size_t>(t.node)][p] = SeqMode::kExclusive;
}

void SeqDsm::write_complete(SeqThreadCtx& t, PageId p) {
  const NodeId home = layout_.home_of_page(p);
  auto& cs = client(t.node);
  if (home == t.node) {
    HYP_CHECK(cs.local_excl_pending[p] > 0);
    --cs.local_excl_pending[p];
    Directory& dir = directory_[p];
    if (cs.local_excl_pending[p] == 0 && dir.busy && dir.waiting_local_owner) {
      // A round stalled on our store: surrender ownership now. The home
      // arena is the master, so no bytes move.
      dir.waiting_local_owner = false;
      modes_[static_cast<std::size_t>(home)][p] =
          dir.in_service.wants_exclusive ? SeqMode::kInvalid : SeqMode::kRead;
      ++cs.inval_version[p];
      dir.exclusive_owner = -1;
      if (!dir.in_service.wants_exclusive) dir.copyset.insert(home);
      finish_service(home, p);
    }
    return;
  }
  if (cs.recall_pending[p] != 0) {
    const bool drop = cs.recall_drop[p] != 0;
    cs.recall_pending[p] = 0;
    cs.recall_drop[p] = 0;
    modes_[static_cast<std::size_t>(t.node)][p] = drop ? SeqMode::kInvalid : SeqMode::kRead;
    Buffer back;
    back.put<std::uint32_t>(p);
    back.put_bytes(nodes_[static_cast<std::size_t>(t.node)]->page_ptr(p),
                   layout_.page_bytes());
    cluster_->send(t.node, home, kSeqRecallReply, std::move(back));
  }
}

// ---------------------------------------------------------------------------
// Home-side directory machine

void SeqDsm::handle_request(cluster::Incoming& in, NodeId self, bool exclusive) {
  const auto p = in.reader.get<std::uint32_t>();
  HYP_CHECK_MSG(layout_.home_of_page(p) == self, "seqc request reached a non-home node");
  cluster_->node(self).extend_service(cluster_->params().cpu.cycles(kDirectoryCycles));
  Pending req{in.from, in.reply_token, exclusive, nullptr, nullptr};
  Directory& dir = directory_[p];
  if (dir.busy) {
    dir.waiting.push_back(req);
    return;
  }
  start_service(self, p, req);
}

void SeqDsm::start_service(NodeId home, PageId p, Pending req) {
  Directory& dir = directory_[p];
  HYP_CHECK(!dir.busy);
  dir.busy = true;
  dir.in_service = req;
  dir.acks_outstanding = 0;

  // Step 1: recall the page if a foreign node owns it exclusively (the
  // home's copy may be stale).
  if (dir.exclusive_owner >= 0 && dir.exclusive_owner != home &&
      dir.exclusive_owner != req.requester) {
    Buffer msg;
    msg.put<std::uint32_t>(p);
    msg.put<std::uint8_t>(req.wants_exclusive ? 1 : 0);  // drop vs downgrade
    cluster_->send(home, dir.exclusive_owner, svc::kSeqRecall, std::move(msg));
    return;  // continues in handle_recall_reply (or the deferred-recall path)
  }
  if (dir.exclusive_owner == home && req.requester != home) {
    if (client(home).local_excl_pending[p] > 0) {
      // A home-local store was granted but has not landed: stall this round
      // until write_complete() surrenders the page (progress guarantee).
      dir.waiting_local_owner = true;
      return;
    }
    // The home itself owns the page; its arena is already the master copy.
    modes_[static_cast<std::size_t>(home)][p] =
        req.wants_exclusive ? SeqMode::kInvalid : SeqMode::kRead;
    ++client(home).inval_version[p];
    dir.exclusive_owner = -1;
    if (!req.wants_exclusive) dir.copyset.insert(home);
  }
  finish_service(home, p);
}

void SeqDsm::handle_recall(cluster::Incoming& in, NodeId self) {
  const auto p = in.reader.get<std::uint32_t>();
  const bool drop = in.reader.get<std::uint8_t>() != 0;
  auto& cs = client(self);
  ++cs.inval_version[p];
  if (modes_[static_cast<std::size_t>(self)][p] != SeqMode::kExclusive) {
    // The exclusive grant is still in flight: defer; the requesting thread
    // serves the recall right after installing (write_miss).
    cs.recall_pending[p] = 1;
    cs.recall_drop[p] = drop ? 1 : 0;
    return;
  }
  Buffer back;
  back.put<std::uint32_t>(p);
  back.put_bytes(nodes_[static_cast<std::size_t>(self)]->page_ptr(p), layout_.page_bytes());
  modes_[static_cast<std::size_t>(self)][p] = drop ? SeqMode::kInvalid : SeqMode::kRead;
  cluster_->send(self, in.from, kSeqRecallReply, std::move(back));
}

void SeqDsm::handle_recall_reply(NodeId home, PageId p, BufferReader& payload) {
  Directory& dir = directory_[p];
  HYP_CHECK(dir.busy);
  auto bytes = payload.get_span(layout_.page_bytes());
  std::memcpy(nodes_[static_cast<std::size_t>(home)]->page_ptr(p), bytes.data(), bytes.size());
  const NodeId old_owner = dir.exclusive_owner;
  dir.exclusive_owner = -1;
  if (!dir.in_service.wants_exclusive && old_owner >= 0) {
    dir.copyset.insert(old_owner);  // downgraded to a read replica
  }
  finish_service(home, p);
}

void SeqDsm::finish_service(NodeId home, PageId p) {
  Directory& dir = directory_[p];
  const Pending req = dir.in_service;

  if (req.wants_exclusive && dir.acks_outstanding == 0 && !dir.copyset.empty()) {
    // Step 2 (writes): invalidate every replica except the requester.
    std::vector<NodeId> readers;
    dir.copyset.drain_into(readers);
    for (NodeId reader : readers) {
      if (reader == req.requester) continue;
      if (reader == home) {
        modes_[static_cast<std::size_t>(home)][p] = SeqMode::kInvalid;
        ++client(home).inval_version[p];
        continue;
      }
      Buffer msg;
      msg.put<std::uint32_t>(p);
      cluster_->send(home, reader, svc::kSeqInvalidate, std::move(msg));
      ++dir.acks_outstanding;
    }
    if (dir.acks_outstanding > 0) return;  // continues in handle_invalidate_ack
  }

  grant(home, p, req);
  dir.busy = false;
  if (!dir.waiting.empty()) {
    Pending next = dir.waiting.front();
    dir.waiting.pop_front();
    start_service(home, p, next);
  }
}

void SeqDsm::handle_invalidate(cluster::Incoming& in, NodeId self) {
  const auto p = in.reader.get<std::uint32_t>();
  ++client(self).inval_version[p];
  modes_[static_cast<std::size_t>(self)][p] = SeqMode::kInvalid;
  cluster_->node(self).stats().add(Counter::kInvalidations);
  Buffer ack;
  ack.put<std::uint32_t>(p);
  cluster_->send(self, in.from, kSeqInvAck, std::move(ack));
}

void SeqDsm::handle_invalidate_ack(NodeId home, PageId p) {
  Directory& dir = directory_[p];
  HYP_CHECK(dir.busy && dir.acks_outstanding > 0);
  if (--dir.acks_outstanding == 0) finish_service(home, p);
}

void SeqDsm::grant(NodeId home, PageId p, const Pending& req) {
  Directory& dir = directory_[p];
  if (req.wants_exclusive) {
    dir.exclusive_owner = req.requester;
  } else {
    if (req.requester != home) dir.copyset.insert(req.requester);
  }

  if (req.local_fiber != nullptr) {
    // Home-local grant: the home arena is the master; just set the mode.
    HYP_CHECK(req.requester == home);
    modes_[static_cast<std::size_t>(home)][p] =
        req.wants_exclusive ? SeqMode::kExclusive : SeqMode::kRead;
    if (req.wants_exclusive) ++client(home).local_excl_pending[p];
    *req.local_granted = true;
    sim::Engine::current()->unpark(req.local_fiber);
    return;
  }
  const Time done_at = cluster_->node(home).extend_service(
      cluster_->params().cpu.copy_cost(layout_.page_bytes()));
  Buffer reply;
  reply.put_bytes(nodes_[static_cast<std::size_t>(home)]->page_ptr(p), layout_.page_bytes());
  cluster_->reply_to(home, req.requester, req.reply_token, std::move(reply),
                     done_at - cluster_->engine().now());
}

}  // namespace hyp::dsm
