// Global addresses and the iso-address layout.
//
// PM2 allocates shared data at the same virtual address on every node
// ("iso-address"), so pointers remain valid wherever a page or thread lands.
// We reproduce that with a single global offset space: a Gva is an offset
// into the DSM region; node `n` materializes it at `arena[n] + gva`. The
// space is statically partitioned into one allocation zone per node, and a
// page's home is the owner of its zone — matching Hyperion, where an object's
// home is the node that allocated it.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace hyp::dsm {

using Gva = std::uint64_t;     // offset into the shared region
using PageId = std::uint32_t;
using NodeId = int;

inline constexpr Gva kNullGva = ~Gva{0};

// Static geometry of the shared region.
class Layout {
 public:
  Layout(std::size_t total_bytes, std::size_t page_bytes, int nodes)
      : total_bytes_(total_bytes), page_bytes_(page_bytes), nodes_(nodes) {
    HYP_CHECK(nodes > 0);
    HYP_CHECK_MSG(page_bytes != 0 && (page_bytes & (page_bytes - 1)) == 0,
                  "page size must be a power of two");
    HYP_CHECK_MSG(total_bytes % page_bytes == 0, "region must be whole pages");
    page_shift_ = 0;
    while ((std::size_t{1} << page_shift_) != page_bytes) ++page_shift_;
    total_pages_ = static_cast<PageId>(total_bytes / page_bytes);
    pages_per_zone_ = total_pages_ / static_cast<PageId>(nodes);
    HYP_CHECK_MSG(pages_per_zone_ > 0, "region too small for node count");
  }

  std::size_t total_bytes() const { return total_bytes_; }
  std::size_t page_bytes() const { return page_bytes_; }
  PageId total_pages() const { return total_pages_; }
  int nodes() const { return nodes_; }

  PageId page_of(Gva a) const {
    HYP_DCHECK(a < total_bytes_);
    return static_cast<PageId>(a >> page_shift_);
  }
  // log2(page_bytes): hot callers cache this (ThreadCtx) so page_of is one
  // shift with no Layout pointer chase.
  unsigned page_shift() const { return page_shift_; }
  std::size_t offset_in_page(Gva a) const { return a & (page_bytes_ - 1); }
  Gva page_base(PageId p) const { return static_cast<Gva>(p) << page_shift_; }

  // Home node = owner of the allocation zone containing the page.
  NodeId home_of_page(PageId p) const {
    HYP_DCHECK(p < total_pages_);
    const PageId zone = p / pages_per_zone_;
    // Pages in the remainder tail (total not divisible by nodes) belong to
    // the last node.
    return static_cast<NodeId>(zone >= static_cast<PageId>(nodes_)
                                   ? nodes_ - 1
                                   : static_cast<int>(zone));
  }
  NodeId home_of(Gva a) const { return home_of_page(page_of(a)); }

  // Allocation zone bounds for a node, in bytes.
  Gva zone_begin(NodeId n) const {
    return static_cast<Gva>(n) * pages_per_zone_ * page_bytes_;
  }
  Gva zone_end(NodeId n) const {
    return n == nodes_ - 1 ? total_bytes_ : zone_begin(n + 1);
  }

 private:
  std::size_t total_bytes_;
  std::size_t page_bytes_;
  int nodes_;
  unsigned page_shift_ = 0;
  PageId total_pages_ = 0;
  PageId pages_per_zone_ = 0;
};

}  // namespace hyp::dsm
