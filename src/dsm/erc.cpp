#include "dsm/erc.hpp"

#include "common/assert.hpp"

namespace hyp::dsm {

// Wire formats:
//   fetch:    req { u32 page }            reply { page bytes }
//   release:  req { u32 run_count, runs } reply {} (after all sharer acks)
//             run = { u64 gva, u32 len, bytes }
//   update:   one-way { u64 release_id, u32 run_count, runs }
//   ack:      one-way { u64 release_id }

ErcDsm::ErcDsm(cluster::Cluster* cluster, std::size_t region_bytes)
    : cluster_(cluster),
      layout_(region_bytes, cluster->params().page_bytes, cluster->node_count()),
      sharers_(layout_.total_pages()) {
  const int n = cluster->node_count();
  nodes_.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<NodeDsm>(&layout_, i));
    cluster_->node(i).register_service(
        svc::kErcFetch, [this, i](cluster::Incoming& in) { handle_fetch(in, i); });
    cluster_->node(i).register_service(
        svc::kErcRelease, [this, i](cluster::Incoming& in) { handle_release(in, i); });
    cluster_->node(i).register_service(
        svc::kErcUpdate, [this, i](cluster::Incoming& in) { handle_update(in, i); });
    cluster_->node(i).register_service(
        svc::kErcUpdateAck, [this, i](cluster::Incoming& in) { handle_update_ack(in, i); });
  }
}

Gva ErcDsm::alloc(NodeId node, std::size_t bytes, std::size_t align) {
  return nodes_[static_cast<std::size_t>(node)]->alloc(bytes, align);
}

std::unique_ptr<ErcThreadCtx> ErcDsm::make_thread(NodeId node) {
  auto t = std::make_unique<ErcThreadCtx>(&cluster_->params().cpu);
  t->dsm = this;
  t->node = node;
  t->base = nodes_[static_cast<std::size_t>(node)]->arena();
  t->stats = &cluster_->node(node).stats();
  t->check_cost = cluster_->params().cpu.check_cost();
  t->clock.bind_cpu(&cluster_->node(node).app_cpu());
  return t;
}

void ErcDsm::fetch(ErcThreadCtx& t, PageId p) {
  NodeDsm& nd = node_dsm(t.node);
  HYP_CHECK(!nd.is_home(p));
  auto* eng = sim::Engine::current();
  sim::Fiber* self = eng->current_fiber();
  if (!nd.begin_fetch(p, self)) {
    nd.wait_fetch(p, self);
    return;
  }
  const NodeId home = layout_.home_of_page(p);
  t.clock.flush();
  Buffer req;
  req.put<std::uint32_t>(p);
  Buffer reply = cluster_->call(t.node, home, svc::kErcFetch, std::move(req));
  HYP_CHECK(reply.size() == layout_.page_bytes());
  std::memcpy(nd.page_ptr(p), reply.data(), reply.size());
  t.clock.charge(cluster_->params().cpu.copy_cost(reply.size()));
  nd.mark_cached(p, /*with_twin=*/true);
  t.clock.charge(cluster_->params().cpu.copy_cost(reply.size()));  // twin snapshot
  t.clock.flush();
  t.stats->add(Counter::kPageFetches);
  t.stats->add(Counter::kPageFetchBytes, reply.size());
  nd.finish_fetch(p);
}

void ErcDsm::handle_fetch(cluster::Incoming& in, NodeId self) {
  const auto p = in.reader.get<std::uint32_t>();
  HYP_CHECK_MSG(layout_.home_of_page(p) == self, "erc fetch reached a non-home node");
  sharers_[p].insert(in.from);
  const Time done_at = cluster_->node(self).extend_service(
      cluster_->params().cpu.copy_cost(layout_.page_bytes()));
  Buffer out;
  out.put_bytes(node_dsm(self).page_ptr(p), layout_.page_bytes());
  cluster_->reply(in, std::move(out), done_at - cluster_->engine().now());
}

void ErcDsm::on_release(ErcThreadCtx& t) {
  t.clock.flush();
  const auto& cpu = cluster_->params().cpu;
  const std::size_t page_bytes = layout_.page_bytes();
  NodeDsm& nd = node_dsm(t.node);

  // Collect diffs per home, snapshotting bytes and refreshing twins before
  // any yield (same discipline as the Java protocols).
  struct Run {
    Gva addr;
    std::vector<std::byte> bytes;
  };
  std::map<NodeId, std::vector<Run>> by_home;
  for (PageId p : nd.cached_pages()) {
    if (!nd.has_twin(p)) continue;
    t.clock.charge(cpu.diff_cost(page_bytes));
    const std::byte* cur = nd.page_ptr(p);
    const std::byte* twin = nd.twin(p);
    const std::size_t words = page_bytes / 8;
    bool dirty = false;
    std::size_t w = 0;
    while (w < words) {
      if (std::memcmp(cur + w * 8, twin + w * 8, 8) == 0) {
        ++w;
        continue;
      }
      const std::size_t begin = w;
      while (w < words && std::memcmp(cur + w * 8, twin + w * 8, 8) != 0) ++w;
      Run run;
      run.addr = layout_.page_base(p) + begin * 8;
      run.bytes.assign(cur + begin * 8, cur + w * 8);
      t.stats->add(Counter::kDiffWords, w - begin);
      by_home[layout_.home_of_page(p)].push_back(std::move(run));
      dirty = true;
    }
    if (dirty) nd.refresh_twin(p);
  }
  t.clock.flush();

  for (auto& [home, runs] : by_home) {
    Buffer msg;
    msg.put<std::uint32_t>(static_cast<std::uint32_t>(runs.size()));
    for (const Run& r : runs) {
      msg.put<std::uint64_t>(r.addr);
      msg.put<std::uint32_t>(static_cast<std::uint32_t>(r.bytes.size()));
      msg.put_bytes(r.bytes.data(), r.bytes.size());
    }
    t.stats->add(Counter::kUpdatesSent);
    t.stats->add(Counter::kUpdateBytes, msg.size());
    // The home replies only after every other sharer acked the forwarded
    // update — that is the "eager" in eager release consistency.
    Buffer ack = cluster_->call(t.node, home, svc::kErcRelease, std::move(msg));
    HYP_CHECK(ack.empty());
  }

  // Writes to our own home pages: the master copy is already current, but
  // every sharer's replica must be patched. We are the home, so push the
  // updates directly (one eager round per sharer).
  if (!t.home_log.empty()) {
    // Last-writer-wins dedup, preserving first-touch order.
    std::vector<WriteLogEntry> entries;
    std::map<Gva, std::size_t> position;
    for (const auto& e : t.home_log.entries()) {
      auto it = position.find(e.addr);
      if (it == position.end()) {
        position[e.addr] = entries.size();
        entries.push_back(e);
      } else {
        entries[it->second] = e;
      }
    }
    NodeSet targets;
    for (const auto& e : entries) {
      for (NodeId sharer : sharers_[layout_.page_of(e.addr)]) {
        if (sharer != t.node) targets.insert(sharer);
      }
    }
    for (NodeId target : targets) {
      Buffer update;
      update.put<std::uint64_t>(0);  // direct (call-style) update: no release id
      update.put<std::uint32_t>(static_cast<std::uint32_t>(entries.size()));
      for (const auto& e : entries) {
        update.put<std::uint64_t>(e.addr);
        update.put<std::uint32_t>(e.size);
        update.put_bytes(&e.value, e.size);
      }
      t.stats->add(Counter::kUpdatesSent);
      t.stats->add(Counter::kUpdateBytes, update.size());
      Buffer ack = cluster_->call(t.node, target, svc::kErcUpdate, std::move(update));
      HYP_CHECK(ack.empty());
    }
    t.home_log.clear();
  }
}

void ErcDsm::handle_release(cluster::Incoming& in, NodeId self) {
  NodeDsm& nd = node_dsm(self);
  const auto run_count = in.reader.get<std::uint32_t>();

  // Apply to the home copy, remember the runs (with pages) for forwarding.
  Buffer forward_runs;
  forward_runs.put<std::uint32_t>(run_count);
  std::vector<PageId> touched;
  std::size_t total_bytes = 0;
  for (std::uint32_t i = 0; i < run_count; ++i) {
    const auto addr = in.reader.get<std::uint64_t>();
    const auto len = in.reader.get<std::uint32_t>();
    auto bytes = in.reader.get_span(len);
    HYP_CHECK_MSG(nd.is_home(layout_.page_of(addr)), "erc release reached a non-home node");
    std::memcpy(nd.arena() + addr, bytes.data(), len);
    forward_runs.put<std::uint64_t>(addr);
    forward_runs.put<std::uint32_t>(len);
    forward_runs.put_bytes(bytes.data(), len);
    touched.push_back(layout_.page_of(addr));
    total_bytes += len;
  }
  cluster_->node(self).extend_service(cluster_->params().cpu.copy_cost(total_bytes));

  // Forward to every sharer of a touched page except the releaser.
  NodeSet targets;
  for (PageId p : touched) {
    for (NodeId sharer : sharers_[p]) {
      if (sharer != in.from) targets.insert(sharer);
    }
  }

  if (targets.empty()) {
    cluster_->reply(in, Buffer{});
    return;
  }
  const std::uint64_t release_id = next_release_id_++;
  pending_[release_id] = {in.from, in.reply_token, static_cast<int>(targets.size())};
  for (NodeId target : targets) {
    Buffer update;
    update.put<std::uint64_t>(release_id);
    update.put_bytes(forward_runs.data(), forward_runs.size());
    cluster_->send(self, target, svc::kErcUpdate, std::move(update));
  }
}

void ErcDsm::handle_update(cluster::Incoming& in, NodeId self) {
  NodeDsm& nd = node_dsm(self);
  const auto release_id = in.reader.get<std::uint64_t>();
  const auto run_count = in.reader.get<std::uint32_t>();
  std::size_t applied = 0;
  for (std::uint32_t i = 0; i < run_count; ++i) {
    const auto addr = in.reader.get<std::uint64_t>();
    const auto len = in.reader.get<std::uint32_t>();
    auto bytes = in.reader.get_span(len);
    const PageId p = layout_.page_of(addr);
    if (nd.present(p) && !nd.is_home(p)) {
      // Patch the replica AND its twin (the update is not a local write; it
      // must not be diffed back at our next release).
      std::memcpy(nd.arena() + addr, bytes.data(), len);
      std::memcpy(nd.twin(p) + layout_.offset_in_page(addr), bytes.data(), len);
      applied += len;
    }
  }
  cluster_->node(self).extend_service(cluster_->params().cpu.copy_cost(applied));
  if (in.reply_token != 0) {
    // Direct (home-writer) update delivered via call(): answer in place.
    cluster_->reply(in, Buffer{});
  } else {
    Buffer ack;
    ack.put<std::uint64_t>(release_id);
    cluster_->send(self, in.from, svc::kErcUpdateAck, std::move(ack));
  }
}

void ErcDsm::handle_update_ack(cluster::Incoming& in, NodeId self) {
  const auto release_id = in.reader.get<std::uint64_t>();
  auto it = pending_.find(release_id);
  HYP_CHECK_MSG(it != pending_.end(), "erc ack for unknown release");
  if (--it->second.acks_outstanding == 0) {
    cluster_->reply_to(self, it->second.releaser, it->second.reply_token, Buffer{});
    pending_.erase(it);
  }
}

}  // namespace hyp::dsm
