// Field-granularity write logging for the java_ic protocol.
//
// Table 2 of the paper: "thanks to the put access primitives, the
// modifications can be recorded at the moment when they are carried out,
// with object-field granularity." Each entry captures address, width and the
// *value at put time* (the JMM working-memory copy), so a later cache
// invalidation cannot lose a pending store. updateMainMemory groups entries
// by home node, deduplicates to last-writer-wins per field, and ships them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/buffer.hpp"
#include "dsm/address.hpp"

namespace hyp::dsm {

struct WriteLogEntry {
  Gva addr;
  std::uint8_t size;    // 1, 2, 4 or 8 bytes
  std::uint64_t value;  // low `size` bytes are meaningful
};

class WriteLog {
 public:
  void record(Gva addr, std::uint8_t size, std::uint64_t value) {
    HYP_DCHECK(size == 1 || size == 2 || size == 4 || size == 8);
    entries_.push_back({addr, size, value});
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }
  const std::vector<WriteLogEntry>& entries() const { return entries_; }

  // Wire format for one update message: u32 count, then per entry
  // (u64 addr, u8 size, `size` payload bytes). Shipping exactly `size`
  // bytes keeps kUpdateBytes and the bandwidth charge honest for 1/2/4-byte
  // fields — a fixed u64 payload would inflate both by up to 7 bytes per
  // entry.
  static void encode(Buffer* out, const std::vector<WriteLogEntry>& entries) {
    out->put<std::uint32_t>(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) {
      HYP_DCHECK(e.size == 1 || e.size == 2 || e.size == 4 || e.size == 8);
      out->put<std::uint64_t>(e.addr);
      out->put<std::uint8_t>(e.size);
      out->put_bytes(&e.value, e.size);  // low `size` bytes (host-endian wire)
    }
  }

  // Streaming decode: invokes `fn(entry)` per entry without materializing a
  // vector (the home-side apply loop runs on every flush; allocating there
  // would break the steady-state zero-allocation property). Returns the
  // entry count.
  template <typename Fn>
  static std::size_t decode_each(BufferReader& in, Fn&& fn) {
    const auto count = in.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      WriteLogEntry e;
      e.addr = in.get<std::uint64_t>();
      e.size = in.get<std::uint8_t>();
      HYP_CHECK_MSG(e.size == 1 || e.size == 2 || e.size == 4 || e.size == 8,
                    "corrupt write-log entry size");
      e.value = 0;
      in.get_bytes(&e.value, e.size);
      fn(e);
    }
    return count;
  }

  static std::vector<WriteLogEntry> decode(BufferReader& in) {
    std::vector<WriteLogEntry> entries;
    decode_each(in, [&](const WriteLogEntry& e) { entries.push_back(e); });
    return entries;
  }

 private:
  std::vector<WriteLogEntry> entries_;
};

}  // namespace hyp::dsm
