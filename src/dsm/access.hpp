// The get/put access primitives — the heart of the paper.
//
// Applications are templated over one of these policies, exactly as
// Hyperion's java2c compiler emitted one access sequence per protocol:
//
//   IcPolicy (java_ic): every access executes an explicit locality check —
//     we run a *real* presence test and additionally charge the modeled
//     check cost (what the check cost on the paper's CPUs). Misses go
//     through the checked fetch path. Non-home stores are recorded in the
//     write log, field by field.
//
//   PfPolicy (java_pf): accesses compile to bare loads/stores. The presence
//     test below plays the MMU: it costs nothing in virtual time when the
//     page is present (hardware does it for free); when the page is absent
//     it charges the paper's measured page-fault cost and runs the fault
//     handler (fetch + mprotect + twin).
//
// Both policies operate on real bytes in the node's arena; a protocol bug
// yields wrong program output, not just wrong timing.
#pragma once

#include <cstring>
#include <type_traits>

#include "common/stats.hpp"
#include "dsm/dsm.hpp"

namespace hyp::dsm {

template <typename T>
concept DsmScalar = std::is_trivially_copyable_v<T> &&
                    (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8);

struct IcPolicy {
  static constexpr ProtocolKind kKind = ProtocolKind::kJavaIc;
  static constexpr const char* kName = "java_ic";

  template <DsmScalar T>
  static T get(ThreadCtx& t, Gva a) {
    t.clock.charge(t.check_cost);  // the in-line locality check, every access
    t.stats->add(Counter::kInlineChecks);
    const PageId p = t.dsm->layout().page_of(a);
    if (!t.nd->present(p)) [[unlikely]] {
      t.dsm->miss_ic(t, p);
    }
    T v;
    std::memcpy(&v, t.base + a, sizeof(T));
    return v;
  }

  template <DsmScalar T>
  static void put(ThreadCtx& t, Gva a, T v) {
    t.clock.charge(t.check_cost);
    t.stats->add(Counter::kInlineChecks);
    const PageId p = t.dsm->layout().page_of(a);
    if (!t.nd->present(p)) [[unlikely]] {
      t.dsm->miss_ic(t, p);
    }
    std::memcpy(t.base + a, &v, sizeof(T));
    if (!t.nd->is_home(p)) {
      // Record the modification with field granularity (Table 2, put).
      std::uint64_t value = 0;
      std::memcpy(&value, &v, sizeof(T));
      t.wlog.record(a, sizeof(T), value);
      t.stats->add(Counter::kWriteLogEntries);
    }
  }
};

struct PfPolicy {
  static constexpr ProtocolKind kKind = ProtocolKind::kJavaPf;
  static constexpr const char* kName = "java_pf";

  template <DsmScalar T>
  static T get(ThreadCtx& t, Gva a) {
    const PageId p = t.dsm->layout().page_of(a);
    if (!t.nd->present(p)) [[unlikely]] {
      t.dsm->miss_pf(t, p);  // the simulated MMU trap
    }
    T v;
    std::memcpy(&v, t.base + a, sizeof(T));
    return v;
  }

  template <DsmScalar T>
  static void put(ThreadCtx& t, Gva a, T v) {
    const PageId p = t.dsm->layout().page_of(a);
    if (!t.nd->present(p)) [[unlikely]] {
      t.dsm->miss_pf(t, p);
    }
    // Direct store; updateMainMemory finds it by twin comparison.
    std::memcpy(t.base + a, &v, sizeof(T));
  }
};

// Calls fn<Policy>() with the policy matching the DSM's configured protocol.
// This is the one runtime dispatch, made once per program, mirroring how a
// Hyperion deployment linked one protocol or the other.
template <typename Fn>
decltype(auto) with_policy(ProtocolKind kind, Fn&& fn) {
  switch (kind) {
    case ProtocolKind::kJavaIc: return fn(IcPolicy{});
    case ProtocolKind::kJavaPf: return fn(PfPolicy{});
  }
  HYP_PANIC("unreachable protocol kind");
}

}  // namespace hyp::dsm
