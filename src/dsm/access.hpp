// The get/put access primitives — the heart of the paper.
//
// Applications are templated over one of these policies, exactly as
// Hyperion's java2c compiler emitted one access sequence per protocol:
//
//   IcPolicy (java_ic): every access executes an explicit locality check —
//     we run a *real* presence test and additionally charge the modeled
//     check cost (what the check cost on the paper's CPUs). Misses go
//     through the checked fetch path. Non-home stores are recorded in the
//     write log, field by field.
//
//   PfPolicy (java_pf): accesses compile to bare loads/stores. The presence
//     test below plays the MMU: it costs nothing in virtual time when the
//     page is present (hardware does it for free); when the page is absent
//     it charges the paper's measured page-fault cost and runs the fault
//     handler (fetch + mprotect + twin).
//
// Both policies operate on real bytes in the node's arena; a protocol bug
// yields wrong program output, not just wrong timing.
#pragma once

#include <cstring>
#include <type_traits>

#include "common/stats.hpp"
#include "dsm/dsm.hpp"

namespace hyp::dsm {

template <typename T>
concept DsmScalar = std::is_trivially_copyable_v<T> &&
                    (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8);

// The fast paths read ThreadCtx::presence directly: one indexed byte load
// answers both "present?" (bit 0) and "home?" (bit 1), with no NodeDsm call
// and no home_of_page division (docs/PERFORMANCE.md). The page id comes from
// ThreadCtx::page_shift (cached from Layout), so address-to-page is a single
// shift with no dsm->layout() chase. The miss branches only ever run for
// non-home pages (home pages are always present), so a presence byte loaded
// before the miss still gives the correct home answer after it.
//
// Race-detector hooks are a compile-time variant (RaceHooks), not a runtime
// pointer test: even a never-taken call site in these bodies measurably
// slows the tight access loops (register pressure around the call), and the
// detector-off contract is ZERO overhead. with_policy() picks the
// instrumented instantiation only when a detector is attached.

template <bool RaceHooks = false>
struct IcPolicyT {
  static constexpr ProtocolKind kKind = ProtocolKind::kJavaIc;
  static constexpr const char* kName = "java_ic";

  template <DsmScalar T>
  static T get(ThreadCtx& t, Gva a) {
    t.clock.charge(t.check_cost);  // the in-line locality check, every access
    t.stats->add(Counter::kInlineChecks);
    const PageId p = static_cast<PageId>(a >> t.page_shift);
    if ((t.presence[p] & NodeDsm::kPresentBit) == 0) [[unlikely]] {
      t.dsm->miss_ic(t, p);
    }
    T v;
    std::memcpy(&v, t.base + a, sizeof(T));
    if constexpr (RaceHooks) {
      if (t.race != nullptr) t.race->on_read(t.race_tid, a, sizeof(T));
    }
    return v;
  }

  template <DsmScalar T>
  static void put(ThreadCtx& t, Gva a, T v) {
    t.clock.charge(t.check_cost);
    t.stats->add(Counter::kInlineChecks);
    const PageId p = static_cast<PageId>(a >> t.page_shift);
    const std::uint8_t st = t.presence[p];
    if ((st & NodeDsm::kPresentBit) == 0) [[unlikely]] {
      t.dsm->miss_ic(t, p);  // absent => not home; st == 0 stays correct below
    }
    std::memcpy(t.base + a, &v, sizeof(T));
    if ((st & NodeDsm::kHomeBit) == 0) {
      // Record the modification with field granularity (Table 2, put).
      std::uint64_t value = 0;
      std::memcpy(&value, &v, sizeof(T));
      t.wlog.record(a, sizeof(T), value);
      t.stats->add(Counter::kWriteLogEntries);
    }
    if constexpr (RaceHooks) {
      if (t.race != nullptr) t.race->on_write(t.race_tid, a, sizeof(T));
    }
  }
};

template <bool RaceHooks = false>
struct PfPolicyT {
  static constexpr ProtocolKind kKind = ProtocolKind::kJavaPf;
  static constexpr const char* kName = "java_pf";

  template <DsmScalar T>
  static T get(ThreadCtx& t, Gva a) {
    const PageId p = static_cast<PageId>(a >> t.page_shift);
    if ((t.presence[p] & NodeDsm::kPresentBit) == 0) [[unlikely]] {
      t.dsm->miss_pf(t, p);  // the simulated MMU trap
    }
    T v;
    std::memcpy(&v, t.base + a, sizeof(T));
    if constexpr (RaceHooks) {
      if (t.race != nullptr) t.race->on_read(t.race_tid, a, sizeof(T));
    }
    return v;
  }

  template <DsmScalar T>
  static void put(ThreadCtx& t, Gva a, T v) {
    const PageId p = static_cast<PageId>(a >> t.page_shift);
    if ((t.presence[p] & NodeDsm::kPresentBit) == 0) [[unlikely]] {
      t.dsm->miss_pf(t, p);
    }
    // Direct store; updateMainMemory finds it by twin comparison.
    std::memcpy(t.base + a, &v, sizeof(T));
    if constexpr (RaceHooks) {
      if (t.race != nullptr) t.race->on_write(t.race_tid, a, sizeof(T));
    }
  }
};

// hybrid: the per-page detection mode lives in the same presence byte
// (NodeDsm::kIcModeBit), so the fast path is still one indexed load — pages
// in ic mode charge the inline check, pages in pf mode (and home pages,
// whose mode bit is never set) access bare. The windowed access tally
// (ThreadCtx::awin) is a host-only indexed increment feeding the switch
// decision on the miss cold path.
template <bool RaceHooks = false>
struct HybridPolicyT {
  static constexpr ProtocolKind kKind = ProtocolKind::kHybrid;
  static constexpr const char* kName = "hybrid";

  template <DsmScalar T>
  static T get(ThreadCtx& t, Gva a) {
    const PageId p = static_cast<PageId>(a >> t.page_shift);
    ++t.awin[p];
    const std::uint8_t st = t.presence[p];
    if ((st & NodeDsm::kIcModeBit) != 0) {
      t.clock.charge(t.check_cost);
      t.stats->add(Counter::kInlineChecks);
      // Dense-generation escape: a present ic page whose raw tally has
      // reached the break-even R has already paid a fault's worth of checks
      // with no miss to re-decide at — flip it to pf now (yield-free; the
      // present bit cannot change under us).
      if ((st & NodeDsm::kPresentBit) != 0 && t.awin[p] >= t.ic_giveup)
          [[unlikely]] {
        t.dsm->give_up_ic(t, p);
      }
    }
    if ((st & NodeDsm::kPresentBit) == 0) [[unlikely]] {
      t.dsm->miss_hybrid(t, p);
    }
    T v;
    std::memcpy(&v, t.base + a, sizeof(T));
    if constexpr (RaceHooks) {
      if (t.race != nullptr) t.race->on_read(t.race_tid, a, sizeof(T));
    }
    return v;
  }

  template <DsmScalar T>
  static void put(ThreadCtx& t, Gva a, T v) {
    const PageId p = static_cast<PageId>(a >> t.page_shift);
    ++t.awin[p];
    std::uint8_t st = t.presence[p];
    if ((st & NodeDsm::kIcModeBit) != 0) {
      t.clock.charge(t.check_cost);
      t.stats->add(Counter::kInlineChecks);
      if ((st & NodeDsm::kPresentBit) != 0 && t.awin[p] >= t.ic_giveup)
          [[unlikely]] {
        t.dsm->give_up_ic(t, p);
        // The flip retired the ic bit: the store below must go bare and be
        // found by the fresh twin, not double-logged.
        st = t.presence[p];
      }
    }
    if ((st & NodeDsm::kPresentBit) == 0) [[unlikely]] {
      t.dsm->miss_hybrid(t, p);
      // The miss may have flipped the page's mode (or migrated its home
      // here): the logging decision must see the POST-miss byte, or a store
      // could be neither logged nor twin-diffed — a lost update.
      st = t.presence[p];
    }
    std::memcpy(t.base + a, &v, sizeof(T));
    if ((st & (NodeDsm::kHomeBit | NodeDsm::kIcModeBit)) == NodeDsm::kIcModeBit) {
      // Non-home page in ic mode: field-granularity write log (pf-mode pages
      // are covered by their twin diff instead).
      std::uint64_t value = 0;
      std::memcpy(&value, &v, sizeof(T));
      t.wlog.record(a, sizeof(T), value);
      t.stats->add(Counter::kWriteLogEntries);
    }
    if constexpr (RaceHooks) {
      if (t.race != nullptr) t.race->on_write(t.race_tid, a, sizeof(T));
    }
  }
};

using IcPolicy = IcPolicyT<>;
using PfPolicy = PfPolicyT<>;
using HybridPolicy = HybridPolicyT<>;

// Calls fn<Policy>() with the policy matching the DSM's configured protocol.
// This is the one runtime dispatch, made once per program, mirroring how a
// Hyperion deployment linked one protocol or the other.
template <typename Fn>
decltype(auto) with_policy(ProtocolKind kind, Fn&& fn) {
  switch (kind) {
    case ProtocolKind::kJavaIc: return fn(IcPolicy{});
    case ProtocolKind::kJavaPf: return fn(PfPolicy{});
    case ProtocolKind::kHybrid: return fn(HybridPolicy{});
  }
  HYP_PANIC("unreachable protocol kind");
}

// Same, but picks the race-instrumented instantiation when a detector is
// attached (VmConfig::race != nullptr). Apps route through this so the
// uninstrumented build of their kernels stays byte-for-byte the fast path.
template <typename Fn>
decltype(auto) with_policy(ProtocolKind kind, bool race_hooks, Fn&& fn) {
  if (!race_hooks) return with_policy(kind, static_cast<Fn&&>(fn));
  switch (kind) {
    case ProtocolKind::kJavaIc: return fn(IcPolicyT<true>{});
    case ProtocolKind::kJavaPf: return fn(PfPolicyT<true>{});
    case ProtocolKind::kHybrid: return fn(HybridPolicyT<true>{});
  }
  HYP_PANIC("unreachable protocol kind");
}

}  // namespace hyp::dsm
