// erc: eager release consistency (Munin-style write-update) — the third
// protocol of the library, rounding out DSM-PM2's advertised family
// ("various consistency models, such as sequential and release
// consistency", §1).
//
// Like the Java protocols it is home-based with per-node page caches and
// twins; the difference is the propagation discipline:
//   * release: diff the dirty pages and push the modified words to the home,
//     which applies them and *forwards the update to every other sharer* —
//     replicas are patched in place, eagerly;
//   * acquire: nothing at all (no invalidation) — the eager pushes are what
//     keep readers fresh.
// The trade: releases cost O(sharers) messages, acquires are free, and
// read-mostly replicas never refetch. Contrast with java_ic/java_pf (lazy
// invalidate: cheap release fan-out, whole-cache invalidation at acquire)
// in bench/ablation_consistency.
//
// Ordering: updates serialize through the home; forwarded updates for
// concurrent racy writes may reach different sharers in different orders
// (data-race-free programs never observe this).
#pragma once

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/node_set.hpp"
#include "dsm/address.hpp"
#include "dsm/node_dsm.hpp"
#include "dsm/write_log.hpp"

namespace hyp::dsm {

namespace svc {
inline constexpr cluster::ServiceId kErcFetch = 40;      // join sharers, get page
inline constexpr cluster::ServiceId kErcRelease = 41;    // diffs -> home
inline constexpr cluster::ServiceId kErcUpdate = 42;     // home -> sharer
inline constexpr cluster::ServiceId kErcUpdateAck = 43;  // sharer -> home
}  // namespace svc

class ErcDsm;

struct ErcThreadCtx {
  ErcDsm* dsm = nullptr;
  NodeId node = -1;
  std::byte* base = nullptr;
  cluster::CpuClock clock;
  Stats* stats = nullptr;
  Time check_cost = 0;
  // Writes to our own home pages land in the master copy immediately but
  // must still be pushed to the sharers at release (write-update has no
  // "lazy" fallback); they are recorded here with field granularity.
  WriteLog home_log;

  explicit ErcThreadCtx(const cluster::CpuParams* cpu) : clock(cpu) {}
};

class ErcDsm {
 public:
  ErcDsm(cluster::Cluster* cluster, std::size_t region_bytes);

  const Layout& layout() const { return layout_; }
  Gva alloc(NodeId node, std::size_t bytes, std::size_t align = 8);
  std::unique_ptr<ErcThreadCtx> make_thread(NodeId node);

  template <typename T>
  T read(ErcThreadCtx& t, Gva a) {
    t.clock.charge(t.check_cost);
    t.stats->add(Counter::kInlineChecks);
    const PageId p = layout_.page_of(a);
    if (!node_dsm(t.node).present(p)) [[unlikely]] {
      fetch(t, p);
    }
    T v;
    std::memcpy(&v, t.base + a, sizeof(T));
    return v;
  }

  template <typename T>
  void write(ErcThreadCtx& t, Gva a, T v) {
    t.clock.charge(t.check_cost);
    t.stats->add(Counter::kInlineChecks);
    const PageId p = layout_.page_of(a);
    if (!node_dsm(t.node).present(p)) [[unlikely]] {
      fetch(t, p);
    }
    std::memcpy(t.base + a, &v, sizeof(T));
    if (node_dsm(t.node).is_home(p)) {
      std::uint64_t raw = 0;
      std::memcpy(&raw, &v, sizeof(T));
      t.home_log.record(a, sizeof(T), raw);
      t.stats->add(Counter::kWriteLogEntries);
    }
  }

  // Release: diff + eager push to home and all sharers (blocks for acks).
  void on_release(ErcThreadCtx& t);
  // Acquire: free (plus materializing batched compute).
  void on_acquire(ErcThreadCtx& t) { t.clock.flush(); }

  NodeDsm& node_dsm(NodeId n) { return *nodes_[static_cast<std::size_t>(n)]; }

  template <typename T>
  T read_home(Gva a) const {
    const NodeId home = layout_.home_of(a);
    T v;
    std::memcpy(&v, nodes_[static_cast<std::size_t>(home)]->arena() + a, sizeof(T));
    return v;
  }
  template <typename T>
  void poke_home(Gva a, T v) {
    const NodeId home = layout_.home_of(a);
    std::memcpy(nodes_[static_cast<std::size_t>(home)]->arena() + a, &v, sizeof(T));
  }

  // Sharers of a page, in first-fetch order (test introspection).
  const NodeSet& sharers(PageId p) const { return sharers_[p]; }

 private:
  void fetch(ErcThreadCtx& t, PageId p);
  void handle_fetch(cluster::Incoming& in, NodeId self);
  void handle_release(cluster::Incoming& in, NodeId self);
  void handle_update(cluster::Incoming& in, NodeId self);
  void handle_update_ack(cluster::Incoming& in, NodeId self);

  struct PendingRelease {
    NodeId releaser;
    std::uint64_t reply_token;
    int acks_outstanding = 0;
  };

  cluster::Cluster* cluster_;
  Layout layout_;
  std::vector<std::unique_ptr<NodeDsm>> nodes_;
  std::vector<NodeSet> sharers_;  // [page] -> non-home replica holders
  std::map<std::uint64_t, PendingRelease> pending_;  // release id -> state
  std::uint64_t next_release_id_ = 1;
};

}  // namespace hyp::dsm
