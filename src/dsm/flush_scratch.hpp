// Reusable per-thread scratch state for the consistency flush hot paths.
//
// updateMainMemory runs at EVERY monitor entry/exit (§3.1), so its host cost
// is paid millions of times per paper-size run. The original implementation
// built fresh std::maps and per-run byte vectors on each flush; this scratch
// keeps the equivalent structures alive on the ThreadCtx and recycles them:
//
//   * java_ic — an open-addressing, generation-stamped dedup table
//     (addr -> (home, index)) plus one flat entry vector per home node.
//     First-touch order within a home and ascending-home send order exactly
//     match the old std::map semantics, so messages are bit-identical.
//   * java_pf — per-home flat run vectors whose payload bytes all land in
//     one shared append-only arena (offsets, not pointers, survive arena
//     growth).
//
// Nothing here is visible in simulated time: the scratch only changes how
// fast the host computes the same messages (docs/PERFORMANCE.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "dsm/address.hpp"
#include "dsm/write_log.hpp"

namespace hyp::dsm {

// Open-addressing hash table: Gva -> (home, index-in-home-vector), cleared
// in O(1) by bumping a generation stamp. Linear probing, power-of-two
// capacity kept at least 2x the expected entry count.
class IcDedupTable {
 public:
  struct Slot {
    Gva addr = 0;
    std::uint32_t gen = 0;
    std::uint32_t home = 0;
    std::uint32_t index = 0;
  };

  // Starts a new flush expecting up to `expected` distinct addresses.
  void begin(std::size_t expected) {
    std::size_t want = 16;
    while (want < expected * 2) want <<= 1;
    if (want > slots_.size()) {
      slots_.assign(want, Slot{});
      gen_ = 0;
    }
    if (++gen_ == 0) {  // stamp wrapped: wipe and restart
      for (Slot& s : slots_) s.gen = 0;
      gen_ = 1;
    }
    mask_ = slots_.size() - 1;
  }

  // Returns the slot for `addr`; `*fresh` reports whether it was vacant.
  // The caller fills home/index on fresh insertion.
  Slot* find_or_insert(Gva addr, bool* fresh) {
    std::size_t i = hash(addr) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.gen != gen_) {  // vacant this generation
        s.addr = addr;
        s.gen = gen_;
        *fresh = true;
        return &s;
      }
      if (s.addr == addr) {
        *fresh = false;
        return &s;
      }
      i = (i + 1) & mask_;
    }
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  static std::size_t hash(Gva a) {
    // Fibonacci scrambling; addresses are 8-byte aligned so mix the high bits.
    return static_cast<std::size_t>((a >> 3) * 0x9E3779B97F4A7C15ull >> 17);
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint32_t gen_ = 0;
};

// One modified-word run found by the java_pf twin diff: `len` payload bytes
// at `offset` in the shared `run_bytes` arena, destined for `addr`.
struct DiffRun {
  Gva addr;
  std::uint32_t offset;
  std::uint32_t len;
};

struct FlushScratch {
  // --- java_ic -------------------------------------------------------------
  IcDedupTable dedup;
  std::vector<std::vector<WriteLogEntry>> ic_by_home;

  // --- java_pf -------------------------------------------------------------
  std::vector<std::vector<DiffRun>> pf_by_home;
  std::vector<std::byte> run_bytes;  // shared payload arena, reset per flush

  // --- hybrid --------------------------------------------------------------
  // The hybrid flush reroutes on migration NACKs, repeatedly re-partitioning
  // the not-yet-acked remainder by its *current* effective home. These hold
  // the pending/cohort/rest splits across iterations (same recycling
  // discipline as above; never visible in simulated time).
  std::vector<WriteLogEntry> hy_pending, hy_cohort, hy_rest;
  std::vector<DiffRun> hy_runs_pending, hy_runs_cohort, hy_runs_rest;

  // Clears per-home state for a new flush without releasing capacity.
  void begin_ic(std::size_t homes, std::size_t expected_entries) {
    if (ic_by_home.size() < homes) ic_by_home.resize(homes);
    for (auto& v : ic_by_home) v.clear();
    dedup.begin(expected_entries);
  }

  void begin_pf(std::size_t homes) {
    if (pf_by_home.size() < homes) pf_by_home.resize(homes);
    for (auto& v : pf_by_home) v.clear();
    run_bytes.clear();
  }

  void begin_hybrid(std::size_t expected_entries) {
    hy_pending.clear();
    hy_cohort.clear();
    hy_rest.clear();
    hy_runs_pending.clear();
    hy_runs_cohort.clear();
    hy_runs_rest.clear();
    run_bytes.clear();
    dedup.begin(expected_entries);
  }
};

}  // namespace hyp::dsm
