// DsmSystem: the DSM-PM2-like distributed shared memory.
//
// Implements the home-based Java-consistency machinery shared by both
// protocols of the paper (§3.1) and the two remote-object-detection variants:
//
//   java_ic (§3.2) — get/put perform an explicit locality check on *every*
//     access (charged at CpuParams::check_cost); a miss fetches the page from
//     its home. No page protection is ever used. Modifications to non-home
//     pages are recorded field-by-field in a write log at put() time.
//
//   java_pf (§3.3) — accesses hit the local arena directly; absent pages
//     trip the (simulated) MMU: the miss charges the paper's measured page
//     fault cost plus an mprotect to open the page, and fetches it with a
//     twin. updateMainMemory diffs cached pages against their twins and
//     ships the modified words home. Monitor entry re-protects everything
//     with one region-wide mprotect.
//
//   hybrid (docs/PROTOCOLS.md §hybrid) — picks the detection mode per page
//     online from windowed heat (obs::WindowedHeat): dense low-miss pages run
//     pf-style bare access, sparse scattered pages run ic-style checks. On
//     top of the same signals, homes migrate to a page's dominant remote
//     writer (heat-driven generalization of bench/ext_migration); stale-home
//     requests are NACKed and rerouted, reusing the HA machinery.
//
// Consistency actions (both protocols, per the paper):
//   monitor exit  -> updateMainMemory (modifications reach the home copies
//                    before the lock is released; each update is acked)
//   monitor entry -> updateMainMemory + invalidateCache (whole node cache)
// Flushing on entry as well as exit is slightly conservative but JMM-safe;
// see DESIGN.md §7.
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/ha_hooks.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "dsm/address.hpp"
#include "obs/heat.hpp"
#include "obs/race.hpp"
#include "dsm/flush_scratch.hpp"
#include "dsm/node_dsm.hpp"
#include "dsm/write_log.hpp"

namespace hyp::dsm {

enum class ProtocolKind { kJavaIc, kJavaPf, kHybrid };

const char* protocol_name(ProtocolKind kind);
ProtocolKind protocol_by_name(const std::string& name);

// RPC service ids used by the memory subsystem.
namespace svc {
inline constexpr cluster::ServiceId kPageRequest = 10;
inline constexpr cluster::ServiceId kUpdateFields = 11;  // java_ic write log
inline constexpr cluster::ServiceId kUpdateRuns = 12;    // java_pf diff runs
inline constexpr cluster::ServiceId kQuorumRead = 13;    // backup-served page read
}  // namespace svc

class DsmSystem;

// Per-Java-thread DSM context: the thread's node binding, its CPU clock, its
// write log (java_ic) and cached hot-path constants. Created by
// DsmSystem::make_thread and owned by the runtime's thread object.
struct ThreadCtx {
  DsmSystem* dsm = nullptr;
  NodeId node = -1;
  NodeDsm* nd = nullptr;
  std::byte* base = nullptr;  // nd->arena()
  // nd's presence table (one byte per page; see NodeDsm::kPresentBit). Cached
  // here so the get/put fast paths are a single indexed load + branch with no
  // NodeDsm indirection. Stable: the table never reallocates.
  const std::uint8_t* presence = nullptr;
  // layout().page_shift(), cached: the get/put fast paths compute the page
  // id with one shift instead of chasing dsm -> layout.
  unsigned page_shift = 0;
  // hybrid only: the node's windowed raw access tally (obs::WindowedHeat),
  // bumped unconditionally by the hybrid fast paths (host cost only) and
  // folded into the decayed window on the miss cold path. nullptr under
  // java_ic/java_pf, whose policies never touch it.
  std::uint64_t* awin = nullptr;
  // hybrid only: once a present ic-mode page has served this many accesses
  // since its last window fold, the fast path gives up on ic mid-generation
  // (DsmSystem::give_up_ic) instead of waiting for a miss that may never
  // come. Equals the ic/pf break-even R, so the escape costs at most one
  // fault-equivalent of checks. Zero under java_ic/java_pf.
  std::uint64_t ic_giveup = 0;
  std::uint64_t uid = 0;  // unique thread id (monitor ownership)
  cluster::CpuClock clock;
  Time check_cost = 0;  // CpuParams::check_cost(), cached
  WriteLog wlog;
  FlushScratch scratch;    // reusable updateMainMemory state (host-perf only)
  Stats* stats = nullptr;  // the node's stats (single-threaded simulation)
  // Race-detector attachment (nullptr = off; docs/RACES.md). The access fast
  // paths test this one pointer and hand (race_tid, addr, size) to the
  // detector, which only accumulates — virtual time is unperturbed.
  obs::RaceDetector* race = nullptr;
  std::uint64_t race_tid = 0;  // == uid; cached for the hook call

  explicit ThreadCtx(const cluster::CpuParams* cpu) : clock(cpu) {}
  // Deregisters from the DsmSystem thread registry (see make_thread).
  ~ThreadCtx();

  void charge_cycles(std::uint64_t n) { clock.charge_cycles(n); }
};

class DsmSystem {
 public:
  // `region_bytes` is the size of the shared space (split into one
  // allocation zone per node). Page size comes from the cluster params.
  DsmSystem(cluster::Cluster* cluster, std::size_t region_bytes, ProtocolKind kind);

  const Layout& layout() const { return layout_; }
  ProtocolKind kind() const { return kind_; }
  cluster::Cluster& cluster() { return *cluster_; }
  NodeDsm& node_dsm(NodeId n) { return *nodes_[static_cast<std::size_t>(n)]; }

  // Allocates `bytes` in `node`'s zone; that node becomes the home.
  Gva alloc(NodeId node, std::size_t bytes, std::size_t align = 8);

  std::unique_ptr<ThreadCtx> make_thread(NodeId node);

  // --- Table 2 primitives -------------------------------------------------
  // (get/put are the templated fast paths in dsm/access.hpp)

  // Ensures the page holding `addr` is present locally (prefetch semantics;
  // charges transfer costs but no detection cost).
  void load_into_cache(ThreadCtx& t, Gva addr);

  // Drops every cached page on the thread's node.
  void invalidate_cache(ThreadCtx& t);

  // Ships all local modifications to the home nodes and waits for acks.
  void update_main_memory(ThreadCtx& t);

  // --- consistency hooks wired to monitors (DSM-PM2 lock hooks) -----------
  void on_acquire(ThreadCtx& t);  // flush, then invalidate
  void on_release(ThreadCtx& t);  // flush

  // --- protocol cold paths (called from the access policies) --------------
  void miss_ic(ThreadCtx& t, PageId p);
  void miss_pf(ThreadCtx& t, PageId p);
  void miss_hybrid(ThreadCtx& t, PageId p);
  // Mid-generation ic escape (hybrid): flips a present ic-mode page to pf
  // once its raw access tally proves the generation dense (see
  // ThreadCtx::ic_giveup). Never yields — safe to call from the access fast
  // paths between the presence load and the data access.
  void give_up_ic(ThreadCtx& t, PageId p);

  // --- hybrid home migration (docs/PROTOCOLS.md §hybrid) -------------------
  // True when the heat-driven migration policy is live (hybrid protocol);
  // home resolution then consults the per-page override table and every home
  // handler NACKs requests for pages it no longer serves.
  bool migrations_enabled() const { return kind_ == ProtocolKind::kHybrid; }
  // Installed by the runtime so co-located state (monitor tables) moves with
  // a migrated page: called as (old_home, new_home, gva_begin, gva_end).
  using HomeMovedHook = std::function<void(NodeId, NodeId, Gva, Gva)>;
  void set_home_moved_hook(HomeMovedHook hook) { home_moved_ = std::move(hook); }
  // Clears migration overrides targeting a node the HA detector just
  // confirmed dead, re-realizing each such page at its fallback home (the
  // same global-metadata idealization as the HA promotion path). Called by
  // HaManager::confirm_death before zone failover.
  void on_node_dead(NodeId dead);
  std::uint64_t home_migrations() const { return home_migrations_; }
  // The node's raw access-window base (hybrid only): thread migration rebinds
  // ThreadCtx::awin to the destination node's tally.
  std::uint64_t* access_window(NodeId node) {
    return wheat_[static_cast<std::size_t>(node)]->raw_accesses();
  }

  // --- high availability (optional; nullptr = off, docs/RECOVERY.md) -------
  // With hooks installed, home resolution goes through the HA routing table
  // (a promotion moves a dead node's zone to its backup), stale-home
  // requests are NACKed instead of tripping is_home asserts, failed calls
  // re-resolve the home per attempt, and flushes whose effective home is the
  // local node (post-promotion) apply directly.
  void set_ha(cluster::HaHooks* ha) {
    ha_ = ha;
    // Epoch fencing tokens ride the DSM wire formats only when the profile
    // schedules partitions — crash-only runs keep the goldens' exact shapes.
    fencing_ = ha != nullptr && !cluster_->params().fault.partitions.empty();
  }
  // Effective home of a page: a live migration override wins; otherwise the
  // layout's static zone owner, redirected by the HA routing table after a
  // promotion. The override table is only allocated under hybrid, so the
  // extra test costs one empty() check for the paper protocols.
  NodeId effective_home_of_page(PageId p) const {
    if (!home_override_.empty()) {
      const NodeId o = home_override_[p];
      if (o >= 0) return o;
    }
    const NodeId zone = layout_.home_of_page(p);
    return ha_ == nullptr ? zone : ha_->home_node(zone);
  }
  NodeId effective_home_of(Gva a) const { return effective_home_of_page(layout_.page_of(a)); }
  // Replays the pending (unflushed) write-log entries of every live thread
  // bound to `node` whose address falls in [begin, end) into that node's
  // arena. Used by the HA promotion: realizing the dead home's zone bytes in
  // the backup's arena must not clobber the backup threads' own logged-but-
  // unflushed java_ic stores (read-own-writes inside a synchronized block).
  void replay_logged_writes(NodeId node, Gva begin, Gva end);
  // ThreadCtx destructor hook (threads deregister from the replay registry).
  void unregister_thread(ThreadCtx* t);

  // --- page-heat attachment (optional; nullptr = off) ----------------------
  // Same discipline as Cluster::set_trace: one pointer test when detached;
  // when attached, record_*() is pure accumulation (obs/heat.hpp) so virtual
  // time is unperturbed. The caller owns the table and should init() it for
  // layout().total_pages() before attaching.
  void set_heat(obs::PageHeatTable* heat) { heat_ = heat; }
  obs::PageHeatTable* heat() { return heat_; }

  // --- race-detector attachment (optional; nullptr = off) ------------------
  // Attached threads get their ThreadCtx::race pointer set by make_thread;
  // alloc() reports allocation sites for report attribution. Attach before
  // creating threads (docs/RACES.md).
  void set_race(obs::RaceDetector* race) { race_ = race; }
  obs::RaceDetector* race() { return race_; }

  // --- direct home-copy access (initialization and tests) -----------------
  // Effective-home aware: after a promotion the reference copy lives in the
  // backup's arena (identical to the static layout home when HA is off).
  template <typename T>
  T read_home(Gva a) const {
    const NodeId home = effective_home_of(a);
    T v;
    std::memcpy(&v, nodes_[static_cast<std::size_t>(home)]->arena() + a, sizeof(T));
    return v;
  }
  template <typename T>
  void poke_home(Gva a, T v) {
    const NodeId home = effective_home_of(a);
    std::memcpy(nodes_[static_cast<std::size_t>(home)]->arena() + a, &v, sizeof(T));
  }

 private:
  // Transfers one page from its home into t's arena (no detection costs).
  void fetch_page(ThreadCtx& t, PageId p);
  // Loops fetch_page until `p` is present and attributes the elapsed virtual
  // time to Hist::kPageFetchLatency and Phase::kBlockedFetch (observation
  // only: the waits themselves are unchanged).
  void fetch_until_present(ThreadCtx& t, PageId p);
  void flush_ic(ThreadCtx& t);
  void flush_pf(ThreadCtx& t);
  // hybrid flush: the write log covers ic-mode pages, twin diffs cover
  // pf-mode pages; both are shipped grouped by *current* effective home with
  // a rebuild-on-NACK loop so a mid-flight migration reroutes the remainder.
  void flush_hybrid(ThreadCtx& t);

  // --- hybrid mode switching + home migration ------------------------------
  // Epoch lengths are virtual-time constants (decisions stay byte-identical
  // for a given seed): the mode window halves per kModeEpoch; migration
  // dominance is judged over closed kMigEpoch windows.
  static constexpr Time kModeEpoch = 1 * kMillisecond;
  static constexpr Time kMigEpoch = 5 * kMillisecond;
  static constexpr int kMigStreak = 2;           // consecutive dominated epochs
  static constexpr std::uint64_t kMigMinBytes = 64;  // per epoch, per page
  // Per-page dominant-writer tracker (home side). Boyer–Moore voting weighted
  // by update bytes within an epoch; a page becomes a migration candidate
  // after kMigStreak consecutive closed epochs dominated by the same remote
  // node with a clear byte majority.
  struct MigStat {
    std::uint64_t epoch = 0;   // epoch the open window belongs to
    NodeId cand = -1;          // Boyer–Moore survivor of the open window
    std::int64_t weight = 0;   // survivor margin (bytes)
    std::uint64_t total = 0;   // total remote update bytes in the window
    NodeId last_dom = -1;      // dominator of the last closed window
    int streak = 0;            // consecutive closed windows won by last_dom
  };
  // Feeds `bytes` written by remote node `from` into page `p`'s tracker and
  // migrates the page's home to a sustained dominant writer (see .cpp).
  void note_remote_update(NodeId self, PageId p, NodeId from, std::uint64_t bytes);
  void maybe_migrate(NodeId self, PageId p, NodeId target);

  void handle_page_request(cluster::Incoming& in, NodeId self);
  void handle_update_fields(cluster::Incoming& in, NodeId self);
  void handle_update_runs(cluster::Incoming& in, NodeId self);
  void handle_quorum_read(cluster::Incoming& in, NodeId self);

  // Quorum read from the chain backups while `home` is suspected but not yet
  // confirmed dead (docs/PARTITIONS.md): succeeds iff a strict majority of
  // the K backups is alive and reachable, serving the page from the first
  // such backup's mirror. Returns false (caller falls back to the normal,
  // possibly parking path) when no quorum is available.
  bool try_quorum_read(ThreadCtx& t, PageId p, NodeId home, Buffer* out);

  // Blocking RPC with whole-call re-request on typed transport failure
  // (docs/FAULTS.md). Every DSM RPC is idempotent — page reads obviously,
  // updates because re-applying the same bytes is a no-op — so when the
  // reliable transport gives up (budget exhausted / reply undeliverable) the
  // call is simply reissued, up to kRpcAttempts times; then the run aborts
  // with the transport's diagnostic naming the peer node and service. On a
  // lossless network this is exactly cluster::call().
  Buffer rpc_with_retry(NodeId from, NodeId to, cluster::ServiceId service, Buffer msg,
                        const char* what);
  static constexpr int kRpcAttempts = 3;

  // HA-aware home RPC: re-resolves the effective home of `p`'s zone on every
  // attempt (a failed call against a node the detector confirms dead gets a
  // fresh budget against the promoted backup), treats a wrong-size reply as
  // a stale-home NACK, and holds while the target is down-but-unconfirmed.
  // `reply_is_page` selects the success shape: page_bytes (page fetch, NACK
  // = empty) vs empty (update ack, NACK = 1 byte).
  Buffer ha_rpc_home(ThreadCtx& t, PageId p, cluster::ServiceId service, const Buffer& msg,
                     bool reply_is_page, const char* what);

  // --- bounded-dedup-window replay absorption (docs/FAULTS.md) -------------
  //
  // Update messages are absolute-byte writes: re-applying the SAME message
  // twice is a no-op, but a packet EVICTED from the transport's bounded
  // dedup window (`dedupwin=N`) can be re-delivered arbitrarily LATE — after
  // a newer update to the same addresses — and a stale re-apply would
  // silently revert them (caught by fault_test's dedup-eviction regression).
  // So while the window is bounded, every update message carries a
  // cluster-unique update id and each home skips ids it already applied
  // (the DSM twin of the monitors' op-id scheme). With the default unbounded
  // window the transport itself is exactly-once and the historical wire
  // format is kept byte-for-byte.
  bool update_ids_active() const {
    return cluster_->transport_active() && cluster_->params().fault.dedup_window != 0;
  }

  cluster::Cluster* cluster_;
  Layout layout_;
  ProtocolKind kind_;
  std::uint64_t next_update_id_ = 1;
  std::vector<std::set<std::uint64_t>> applied_updates_;  // per home node
  std::vector<std::unique_ptr<NodeDsm>> nodes_;
  std::uint64_t next_thread_uid_ = 1;
  // Live-thread registry (registered by make_thread, removed by ~ThreadCtx);
  // consulted only by the HA promotion's write-log replay.
  std::vector<ThreadCtx*> threads_;
  obs::PageHeatTable* heat_ = nullptr;
  obs::RaceDetector* race_ = nullptr;
  cluster::HaHooks* ha_ = nullptr;
  bool fencing_ = false;  // epoch tokens on the wire (partitions configured)

  // --- hybrid-only state (all vectors empty under java_ic/java_pf) ---------
  std::vector<std::unique_ptr<obs::WindowedHeat>> wheat_;  // per node
  std::vector<NodeId> home_override_;  // per page; -1 = no migration
  std::vector<MigStat> mig_;           // per page, tracked at the serving home
  // Reusable per-message (page, bytes) subtotals for the update handlers
  // (single-threaded simulation; cleared before each use).
  std::vector<std::pair<PageId, std::uint64_t>> mig_batch_;
  Time hybrid_r_ = 0;  // mode break-even: (fault + mprotect) / check cost
  std::uint64_t home_migrations_ = 0;
  HomeMovedHook home_moved_;
};

}  // namespace hyp::dsm
