// Per-node DSM state: the local arena and page metadata.
//
// Every node owns a full-size private mapping of the shared region
// (MAP_NORESERVE — pages are committed lazily by first touch, so twelve
// 256 MB arenas cost only what is actually used). A node's view of a page is
// one of:
//   * home page      — this node is the page's home; always valid, writes go
//                      straight to the reference ("central memory") copy;
//   * cached         — a replica fetched from the home (at most one per node,
//                      shared by all the node's threads, per the paper);
//   * absent         — any access must first load the page.
// java_pf additionally keeps a *twin* (pristine copy at fetch time) per
// cached page so updateMainMemory can diff out the modified words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "dsm/address.hpp"

namespace hyp::sim {
class Fiber;
}

namespace hyp::dsm {

class NodeDsm {
 public:
  // Presence-table byte per page: home pages are 3 (present|home), cached
  // replicas are 1 (present), absent pages are 0. Folding home-ness into the
  // same byte makes both hot-path questions — "can I touch this page?" and
  // "must I log this store?" — a single indexed load, replacing the integer
  // division inside Layout::home_of_page on every access (docs/PERFORMANCE.md).
  static constexpr std::uint8_t kPresentBit = 1;
  static constexpr std::uint8_t kHomeBit = 2;
  // hybrid protocol only: this node currently runs ic-style inline checks for
  // the page (docs/PROTOCOLS.md §hybrid). The bit survives invalidation — a
  // page's learned detection mode carries over to its next fetch — and is
  // never set under java_ic/java_pf, keeping their presence bytes identical.
  // Under hybrid (set_ic_default) non-home pages START with the bit set:
  // checks are compiled in anyway, so first touch costs one check, never a
  // blind fault — sparse pages pay no learning penalty at all, and a dense
  // page flips to pf after one generation of window evidence.
  static constexpr std::uint8_t kIcModeBit = 4;

  NodeDsm(const Layout* layout, NodeId node);
  ~NodeDsm();
  NodeDsm(const NodeDsm&) = delete;
  NodeDsm& operator=(const NodeDsm&) = delete;

  NodeId node() const { return node_; }
  const Layout& layout() const { return *layout_; }
  std::byte* arena() { return arena_; }
  const std::byte* arena() const { return arena_; }

  std::byte* page_ptr(PageId p) { return arena_ + layout_->page_base(p); }
  const std::byte* page_ptr(PageId p) const { return arena_ + layout_->page_base(p); }

  bool is_home(PageId p) const {
    HYP_DCHECK(p < presence_.size());
    return (presence_[p] & kHomeBit) != 0;
  }

  // A page is accessible when it is a home page or a valid cached copy.
  bool present(PageId p) const {
    HYP_DCHECK(p < presence_.size());
    return (presence_[p] & kPresentBit) != 0;
  }

  // Raw presence table, cached on ThreadCtx so the access fast paths skip
  // the NodeDsm indirection. The table never reallocates after construction.
  const std::uint8_t* presence_data() const { return presence_.data(); }

  // Marks a freshly fetched page cached. `with_twin` snapshots a twin
  // (java_pf). The caller has already copied the payload into the arena.
  void mark_cached(PageId p, bool with_twin);

  // Drops every cached page (monitor-entry invalidation). Returns how many
  // pages were dropped.
  std::size_t invalidate_all();

  bool has_twin(PageId p) const { return p < twins_.size() && twins_[p] != nullptr; }
  std::byte* twin(PageId p) {
    HYP_DCHECK(p < twins_.size());
    return twins_[p].get();
  }

  // Snapshots a twin of a cached page that was fetched without one (hybrid
  // mid-generation ic -> pf flip). No-op if the twin already exists.
  void ensure_twin(PageId p);
  // Refreshes the twin of a cached page to match the current arena contents
  // (after its diffs have been shipped home).
  void refresh_twin(PageId p);

  const std::vector<PageId>& cached_pages() const { return cached_list_; }

  // --- hybrid per-page detection mode (docs/PROTOCOLS.md §hybrid) ----------
  bool ic_mode(PageId p) const {
    HYP_DCHECK(p < presence_.size());
    return (presence_[p] & kIcModeBit) != 0;
  }
  void set_ic_mode(PageId p, bool ic) {
    HYP_DCHECK(p < presence_.size());
    if (ic) {
      presence_[p] |= kIcModeBit;
    } else {
      presence_[p] &= static_cast<std::uint8_t>(~kIcModeBit);
    }
  }
  // hybrid init: every non-home page starts in ic mode, and pages demoted
  // from home authority later (migration handoff, HA failover) rejoin in ic
  // mode too instead of pf.
  void set_ic_default();

  // True while some fiber on this node has a fetch of `p` outstanding (the
  // hybrid mode decision defers to the fiber that started the fetch).
  bool fetch_inflight(PageId p) const {
    for (const auto& f : inflight_) {
      if (f.page == p) return true;
    }
    return false;
  }

  // --- high availability (docs/RECOVERY.md) --------------------------------
  // Takes home authority over [first, last): pages this node had cached stop
  // being replicas (their twins are dropped and they leave the cached list —
  // the arena bytes ARE now the reference copy), and every page in the range
  // becomes present|home. Called on the backup at promotion, after the dead
  // home's zone bytes have been realized into this arena.
  void promote_to_home(PageId first, PageId last);
  // Relinquishes home authority over [first, last): pages become absent (a
  // restarted node rejoins as a cacher; its pre-crash copies are stale).
  void demote_home(PageId first, PageId last);

  // --- allocation (only meaningful on the page's home node's zone) ---
  // Bump allocation from this node's zone; 8-byte aligned by default.
  Gva alloc(std::size_t bytes, std::size_t align = 8);
  std::size_t allocated_bytes() const { return alloc_next_ - layout_->zone_begin(node_); }

  // --- in-flight fetch deduplication ---
  // Returns true if this fiber should perform the fetch; false means another
  // fiber on this node is already fetching and the caller must wait_fetch().
  bool begin_fetch(PageId p, sim::Fiber* self);
  void wait_fetch(PageId p, sim::Fiber* self);
  void finish_fetch(PageId p);

 private:
  const Layout* layout_;
  NodeId node_;
  bool ic_default_ = false;  // hybrid: demoted/fresh non-home pages start ic
  std::byte* arena_ = nullptr;
  std::vector<std::uint8_t> presence_;               // indexed by page; see bits above
  std::vector<PageId> cached_list_;                  // pages with presence_[p]==kPresentBit
  std::vector<std::unique_ptr<std::byte[]>> twins_;  // indexed by page
  Gva alloc_next_;

  struct Inflight {
    PageId page;
    std::vector<sim::Fiber*> waiters;
  };
  std::vector<Inflight> inflight_;
};

}  // namespace hyp::dsm
