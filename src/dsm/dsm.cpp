#include "dsm/dsm.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace hyp::dsm {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kJavaIc: return "java_ic";
    case ProtocolKind::kJavaPf: return "java_pf";
  }
  return "?";
}

ProtocolKind protocol_by_name(const std::string& name) {
  if (name == "java_ic") return ProtocolKind::kJavaIc;
  if (name == "java_pf") return ProtocolKind::kJavaPf;
  HYP_PANIC("unknown protocol: " + name + " (expected java_ic or java_pf)");
}

DsmSystem::DsmSystem(cluster::Cluster* cluster, std::size_t region_bytes, ProtocolKind kind)
    : cluster_(cluster),
      layout_(region_bytes, cluster->params().page_bytes, cluster->node_count()),
      kind_(kind) {
  const int n = cluster->node_count();
  applied_updates_.resize(static_cast<std::size_t>(n));
  nodes_.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<NodeDsm>(&layout_, i));
    cluster_->node(i).register_service(
        svc::kPageRequest, "page_request",
        [this, i](cluster::Incoming& in) { handle_page_request(in, i); });
    cluster_->node(i).register_service(
        svc::kUpdateFields, "update_fields",
        [this, i](cluster::Incoming& in) { handle_update_fields(in, i); });
    cluster_->node(i).register_service(
        svc::kUpdateRuns, "update_runs",
        [this, i](cluster::Incoming& in) { handle_update_runs(in, i); });
    cluster_->node(i).register_service(
        svc::kQuorumRead, "quorum_read",
        [this, i](cluster::Incoming& in) { handle_quorum_read(in, i); });
  }
}

Gva DsmSystem::alloc(NodeId node, std::size_t bytes, std::size_t align) {
  const Gva base = node_dsm(node).alloc(bytes, align);
  if (race_ != nullptr) [[unlikely]] race_->note_alloc(node, base, bytes);
  return base;
}

std::unique_ptr<ThreadCtx> DsmSystem::make_thread(NodeId node) {
  auto t = std::make_unique<ThreadCtx>(&cluster_->params().cpu);
  t->uid = next_thread_uid_++;
  t->dsm = this;
  t->node = node;
  t->nd = &node_dsm(node);
  t->base = t->nd->arena();
  t->presence = t->nd->presence_data();
  t->page_shift = layout_.page_shift();
  t->check_cost = cluster_->params().cpu.check_cost();
  t->stats = &cluster_->node(node).stats();
  if (race_ != nullptr) {
    t->race = race_;
    t->race_tid = t->uid;
    race_->register_thread(t->uid, node);
  }
  // One processor per node: compute by this node's threads serializes.
  t->clock.bind_cpu(&cluster_->node(node).app_cpu());
  threads_.push_back(t.get());
  return t;
}

ThreadCtx::~ThreadCtx() {
  if (dsm != nullptr) dsm->unregister_thread(this);
}

void DsmSystem::unregister_thread(ThreadCtx* t) {
  for (auto it = threads_.begin(); it != threads_.end(); ++it) {
    if (*it == t) {
      threads_.erase(it);
      return;
    }
  }
}

void DsmSystem::replay_logged_writes(NodeId node, Gva begin, Gva end) {
  NodeDsm& nd = node_dsm(node);
  for (ThreadCtx* t : threads_) {
    if (t->node != node) continue;
    // Program order within a thread gives last-writer-wins; cross-thread
    // conflicts on unflushed stores are data races (undefined under the JMM).
    for (const WriteLogEntry& e : t->wlog.entries()) {
      if (e.addr >= begin && e.addr < end) {
        std::memcpy(nd.arena() + e.addr, &e.value, e.size);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Transport-failure degradation

namespace {
Buffer clone_payload(const Buffer& b) {
  Buffer out(b.size());
  out.put_bytes(b.data(), b.size());
  return out;
}
}  // namespace

Buffer DsmSystem::rpc_with_retry(NodeId from, NodeId to, cluster::ServiceId service, Buffer msg,
                                 const char* what) {
  if (!cluster_->transport_active()) {
    // Lossless network: exactly the historical path, no payload copy.
    return cluster_->call(from, to, service, std::move(msg));
  }
  for (int attempt = 1;; ++attempt) {
    cluster::RpcResult r = cluster_->call_result(
        from, to, service, attempt < kRpcAttempts ? clone_payload(msg) : std::move(msg));
    if (r.ok()) return std::move(r.payload);
    if (attempt >= kRpcAttempts) {
      HYP_PANIC(std::string(what) + " abandoned after " + std::to_string(attempt) +
                " attempts: " + r.error.message);
    }
  }
}

Buffer DsmSystem::ha_rpc_home(ThreadCtx& t, PageId p, cluster::ServiceId service,
                              const Buffer& msg, bool reply_is_page, const char* what) {
  HYP_DCHECK(ha_ != nullptr);
  const std::size_t epoch_bytes = fencing_ ? sizeof(std::uint64_t) : 0;
  const std::size_t ok_size = (reply_is_page ? layout_.page_bytes() : 0) + epoch_bytes;
  auto* eng = sim::Engine::current();
  const Time started = cluster_->engine().now();
  NodeId target = effective_home_of_page(p);
  int attempts_at_target = 0;
  bool rerouted = false;
  // The guard bounds pathological NACK/re-resolve loops; a real failover
  // converges in a handful of iterations (single-failure model).
  for (int guard = 0; guard < 64; ++guard) {
    const NodeId now_home = effective_home_of_page(p);
    if (now_home != target) {
      // The zone's home moved (promotion): fresh retry budget at the new one.
      target = now_home;
      attempts_at_target = 0;
      rerouted = true;
      t.stats->add(Counter::kHaReroutes);
    }
    ++attempts_at_target;
    // The fencing epoch is prepended per attempt, not baked into msg: a retry
    // after a local epoch bump must carry the fresh view, or the promoted
    // home would fence the same stale request forever.
    Buffer payload(msg.size() + epoch_bytes);
    if (fencing_) payload.put<std::uint64_t>(ha_->node_epoch(t.node));
    payload.put_bytes(msg.data(), msg.size());
    cluster::RpcResult r = cluster_->call_result(t.node, target, service, std::move(payload));
    if (r.ok() && r.payload.size() == ok_size) {
      if (fencing_) {
        // The reply leads with the serving home's epoch view: a reply from a
        // home this side has already fenced off is discarded like a NACK and
        // the call re-resolves (transient — the next attempt either reaches
        // the promoted home or sees the server's caught-up epoch).
        std::uint64_t reply_epoch = 0;
        std::memcpy(&reply_epoch, r.payload.data(), sizeof(reply_epoch));
        if (reply_epoch < ha_->node_epoch(t.node)) {
          t.stats->add(Counter::kHaFencedRejects);
          cluster_->trace_event(t.node, cluster::TraceKind::kHaFencedReject,
                                static_cast<std::int64_t>(reply_epoch), service);
          continue;
        }
      }
      if (rerouted) {
        t.stats->record(Hist::kHaRerouteWait,
                        static_cast<std::uint64_t>(cluster_->engine().now() - started));
      }
      if (!fencing_) return std::move(r.payload);
      Buffer out(r.payload.size() - epoch_bytes);
      out.put_bytes(r.payload.data() + epoch_bytes, r.payload.size() - epoch_bytes);
      return out;
    }
    if (!r.ok() && r.error.status == cluster::RpcStatus::kNoQuorum) {
      // Minority-side degradation: the wire to the home is cut. Park with a
      // fresh budget until the surviving side can have re-homed the zone
      // (cut start + confirm + watcher slack — the call then re-resolves) or
      // the heal instant, whichever comes first. Both are deterministic.
      attempts_at_target = 0;
      t.stats->add(Counter::kHaNoQuorumHolds);
      const auto& f = cluster_->params().fault;
      const Time at = cluster_->engine().now();
      const Time heal = f.severed_until(t.node, target, at);
      if (heal > at) {
        Time wake = heal;
        const Time confirm_by =
            f.severed_since(t.node, target, at) + f.confirm_after + 2 * f.hb_interval;
        if (confirm_by > at && confirm_by < wake) wake = confirm_by;
        eng->sleep_until(wake);
      }
      continue;
    }
    if (!r.ok() && attempts_at_target >= kRpcAttempts && !ha_->confirmed_dead(target)) {
      HYP_PANIC(std::string(what) + " abandoned after " + std::to_string(attempts_at_target) +
                " attempts: " + r.error.message);
    }
    // r.ok() with the wrong reply shape is a stale-home NACK: loop and
    // re-resolve. A failed call against a down-but-unconfirmed target holds
    // until the failure detector has had enough silence to decide.
    const Time at = cluster_->engine().now();
    Time hold = ha_->retry_hold(target, at);
    if (fencing_ && r.ok()) {
      // The NACK may mean OUR epoch is stale (the empty reply cannot say):
      // a node inside an open partition window catches up only at the heal,
      // so retrying before then just burns the guard against more fences.
      // Reaches here when the minority node addresses a bystander home that
      // is outside every partition group but already on the new epoch.
      const Time release = cluster_->params().fault.partition_release(t.node, at);
      if (release > hold) hold = release;
    }
    if (hold > at) eng->sleep_until(hold);
  }
  HYP_PANIC(std::string(what) + ": home failover did not converge (epoch " +
            std::to_string(ha_->epoch()) + ")");
}

// ---------------------------------------------------------------------------
// Page transfer

void DsmSystem::fetch_page(ThreadCtx& t, PageId p) {
  HYP_CHECK_MSG(!t.nd->is_home(p), "fetching a home page");
  auto* eng = sim::Engine::current();
  sim::Fiber* self = eng->current_fiber();

  // At most one outstanding fetch per (node, page); later threads wait.
  if (!t.nd->begin_fetch(p, self)) {
    t.nd->wait_fetch(p, self);
    return;
  }

  NodeId home = effective_home_of_page(p);
  const std::size_t page_bytes = layout_.page_bytes();
  const auto& cpu = cluster_->params().cpu;

  Buffer req;
  req.put<std::uint32_t>(p);
  Buffer reply;
  if (ha_ == nullptr) {
    reply = rpc_with_retry(t.node, home, svc::kPageRequest, std::move(req), "page fetch");
  } else if (fencing_ && ha_->suspected(home) && try_quorum_read(t, p, home, &reply)) {
    // Suspected-home window: a majority of the home's chain backups served
    // the read, so the fetch skips the detector's confirm wait entirely.
  } else {
    reply = ha_rpc_home(t, p, svc::kPageRequest, req, /*reply_is_page=*/true, "page fetch");
    home = effective_home_of_page(p);  // the node that actually served us
    if (t.nd->present(p)) {
      // A promotion made this node home for the page while we were failing
      // over: the arena bytes are already authoritative — installing the
      // reply as a "cached replica" would corrupt the presence table.
      t.nd->finish_fetch(p);
      return;
    }
  }
  HYP_CHECK_MSG(reply.size() == page_bytes, "page reply has wrong size");

  // Install the replica (real bytes) and charge the local copy-in.
  std::memcpy(t.nd->page_ptr(p), reply.data(), page_bytes);
  t.clock.charge(cpu.copy_cost(page_bytes));
  const bool with_twin = kind_ == ProtocolKind::kJavaPf;
  t.nd->mark_cached(p, with_twin);
  if (with_twin) t.clock.charge(cpu.copy_cost(page_bytes));  // twin snapshot
  t.clock.flush();

  t.stats->add(Counter::kPageFetches);
  t.stats->add(Counter::kPageFetchBytes, page_bytes);
  if (heat_ != nullptr) [[unlikely]] heat_->record_fetch(p);
  cluster_->trace_event(t.node, cluster::TraceKind::kPageFetch, p, home);
  t.nd->finish_fetch(p);
}

void DsmSystem::fetch_until_present(ThreadCtx& t, PageId p) {
  // Observation wrapper around the fetch loop: the histogram/phase records
  // are pure accumulation plus two clock reads, so attaching them can never
  // shift virtual time (determinism_golden pins this).
  const Time t0 = cluster_->engine().now();
  while (!t.nd->present(p)) fetch_page(t, p);
  const TimeDelta waited = cluster_->engine().now() - t0;
  t.stats->record(Hist::kPageFetchLatency, waited);
  cluster_->phase_add(t.node, obs::Phase::kBlockedFetch, waited);
}

void DsmSystem::handle_page_request(cluster::Incoming& in, NodeId self) {
  std::uint64_t msg_epoch = 0;
  if (fencing_) msg_epoch = in.reader.get<std::uint64_t>();
  const auto p = in.reader.get<std::uint32_t>();
  NodeDsm& nd = node_dsm(self);
  if (fencing_ && msg_epoch < ha_->node_epoch(self)) {
    // Epoch fence: the request was built under a routing view this node has
    // already superseded (a promotion happened between send and receive).
    // NACK so the caller re-resolves against the current home map.
    cluster_->node(self).stats().add(Counter::kHaFencedRejects);
    cluster_->trace_event(self, cluster::TraceKind::kHaFencedReject,
                          static_cast<std::int64_t>(msg_epoch), svc::kPageRequest);
    cluster_->reply(in, Buffer{});
    return;
  }
  if (ha_ != nullptr && !nd.is_home(p)) {
    // Stale-home straggler: a retransmit that outlived a promotion, or a
    // request reaching a restarted (demoted) node. NACK with an empty reply
    // (success replies are page_bytes long) so the caller re-resolves.
    cluster_->trace_event(self, cluster::TraceKind::kHaNack, in.from, svc::kPageRequest);
    cluster_->reply(in, Buffer{});
    return;
  }
  HYP_CHECK_MSG(nd.is_home(p), "page request reached a non-home node");

  const std::size_t page_bytes = layout_.page_bytes();
  // The home's CPU/service copies the page out; the reply departs when that
  // work completes.
  const Time done_at = cluster_->node(self).extend_service(
      cluster_->params().cpu.copy_cost(page_bytes));
  Buffer out;
  if (fencing_) out.put<std::uint64_t>(ha_->node_epoch(self));
  out.put_bytes(nd.page_ptr(p), page_bytes);
  cluster_->reply(in, std::move(out), done_at - cluster_->engine().now());
}

bool DsmSystem::try_quorum_read(ThreadCtx& t, PageId p, NodeId home, Buffer* out) {
  const auto& f = cluster_->params().fault;
  const Time now = cluster_->engine().now();
  const std::uint32_t k = ha_->replicas();
  // A strict majority of the home's K chain backups must be up and reachable
  // (both directions) from the reader; with fewer votes this side cannot rule
  // out that the "suspected" home is healthy and serving the far side of a
  // cut, so the read falls back to the ordinary detector path.
  std::uint32_t votes = 0;
  NodeId backup = -1;
  bool self_holds = false;
  for (std::uint32_t i = 0; i < k; ++i) {
    const NodeId b = ha_->chain_backup(home, i);
    if (ha_->confirmed_dead(b) || f.crash_release(b, now) != 0) continue;
    if (b == t.node) {
      ++votes;
      self_holds = true;
      continue;
    }
    if (f.severed(t.node, b, now) || f.severed(b, t.node, now)) continue;
    ++votes;
    if (backup < 0) backup = b;
  }
  if (votes * 2 <= k) return false;

  const std::size_t page_bytes = layout_.page_bytes();
  if (backup < 0) {
    if (!self_holds) return false;
    backup = t.node;  // the reader itself carries the chain copy
  }
  if (backup == t.node) {
    Buffer local(page_bytes);
    local.put_bytes(node_dsm(effective_home_of_page(p)).page_ptr(p), page_bytes);
    t.clock.charge(cluster_->params().cpu.copy_cost(page_bytes));
    *out = std::move(local);
  } else {
    Buffer req;
    req.put<std::uint64_t>(ha_->node_epoch(t.node));
    req.put<std::uint32_t>(p);
    cluster::RpcResult r =
        cluster_->call_result(t.node, backup, svc::kQuorumRead, std::move(req));
    if (!r.ok() || r.payload.size() != page_bytes + sizeof(std::uint64_t)) return false;
    Buffer body(page_bytes);
    body.put_bytes(r.payload.data() + sizeof(std::uint64_t), page_bytes);
    *out = std::move(body);
  }
  t.stats->add(Counter::kHaQuorumReads);
  cluster_->trace_event(t.node, cluster::TraceKind::kHaQuorumRead, p, backup);
  return true;
}

void DsmSystem::handle_quorum_read(cluster::Incoming& in, NodeId self) {
  const auto msg_epoch = in.reader.get<std::uint64_t>();
  const auto p = in.reader.get<std::uint32_t>();
  if (!fencing_ || msg_epoch < ha_->node_epoch(self)) {
    cluster_->node(self).stats().add(Counter::kHaFencedRejects);
    cluster_->trace_event(self, cluster::TraceKind::kHaFencedReject,
                          static_cast<std::int64_t>(msg_epoch), svc::kQuorumRead);
    cluster_->reply(in, Buffer{});
    return;
  }
  // The chain backup serves the page from its replicated copy of the home's
  // state. The modeled checkpoint stream keeps replicas current with every
  // committed update (docs/RECOVERY.md), so the effective home's arena IS the
  // replica's contents — the simulator reads it directly instead of keeping a
  // second materialized copy per backup.
  const std::size_t page_bytes = layout_.page_bytes();
  const Time done_at = cluster_->node(self).extend_service(
      cluster_->params().cpu.copy_cost(page_bytes));
  Buffer out;
  out.put<std::uint64_t>(ha_->node_epoch(self));
  out.put_bytes(node_dsm(effective_home_of_page(p)).page_ptr(p), page_bytes);
  cluster_->reply(in, std::move(out), done_at - cluster_->engine().now());
}

// ---------------------------------------------------------------------------
// Protocol cold paths

void DsmSystem::miss_ic(ThreadCtx& t, PageId p) {
  // The in-line check already ran (and was charged) in the fast path.
  t.clock.flush();
  fetch_until_present(t, p);
}

void DsmSystem::miss_pf(ThreadCtx& t, PageId p) {
  const auto& cpu = cluster_->params().cpu;
  // Hardware trap + kernel + SIGSEGV dispatch (the paper's 12/22 us), then
  // the fetch, then mprotect to open the page READ/WRITE.
  t.stats->add(Counter::kPageFaults);
  if (heat_ != nullptr) [[unlikely]] heat_->record_fault(p);
  cluster_->trace_event(t.node, cluster::TraceKind::kPageFault, p);
  t.clock.charge(cpu.page_fault_cost);
  t.clock.flush();
  fetch_until_present(t, p);
  t.stats->add(Counter::kMprotectCalls);
  t.clock.charge(cpu.mprotect_page_cost);
  t.clock.flush();
}

// ---------------------------------------------------------------------------
// Table 2 primitives

void DsmSystem::load_into_cache(ThreadCtx& t, Gva addr) {
  const PageId p = layout_.page_of(addr);
  t.clock.flush();
  if (t.nd->present(p)) return;  // prefetch of a present page: nothing to log
  fetch_until_present(t, p);
}

void DsmSystem::invalidate_cache(ThreadCtx& t) {
  const auto& cpu = cluster_->params().cpu;
  const std::size_t cached = t.nd->cached_pages().size();
  if (kind_ == ProtocolKind::kJavaPf) {
    // One region-wide mprotect re-protects every non-home page (§3.3: "this
    // protection is set on each entry to a monitor").
    t.stats->add(Counter::kMprotectCalls);
    t.clock.charge(cpu.mprotect_region_cost);
  }
  t.clock.charge(cpu.cycles(cpu.invalidate_page_cycles * cached));
  const std::size_t dropped = t.nd->invalidate_all();
  t.stats->add(Counter::kInvalidations, dropped);
  cluster_->trace_event(t.node, cluster::TraceKind::kInvalidate,
                        static_cast<std::int64_t>(dropped));
  t.clock.flush();
}

void DsmSystem::update_main_memory(ThreadCtx& t) {
  // A consistency action is a synchronization point: materialize the
  // thread's batched compute first (otherwise pending time is silently
  // dropped on paths that have nothing to flush, e.g. thread termination).
  t.clock.flush();
  if (kind_ == ProtocolKind::kJavaIc) {
    flush_ic(t);
  } else {
    flush_pf(t);
  }
}

void DsmSystem::on_acquire(ThreadCtx& t) {
  // Conservative JMM: make our modifications visible, then drop all cached
  // copies so subsequent reads see fresh home data.
  update_main_memory(t);
  invalidate_cache(t);
}

void DsmSystem::on_release(ThreadCtx& t) { update_main_memory(t); }

// ---------------------------------------------------------------------------
// java_ic: field-granularity write-log flush

void DsmSystem::flush_ic(ThreadCtx& t) {
  if (t.wlog.empty()) return;
  const auto& cpu = cluster_->params().cpu;
  const std::size_t homes = static_cast<std::size_t>(cluster_->node_count());

  // Last-writer-wins per field, grouped by home node, preserving first-touch
  // order for determinism. The scratch dedup table and per-home flat vectors
  // reproduce the old std::map semantics exactly — first-touch order within a
  // home, homes sent in ascending id order — without per-flush allocation.
  // With K > 1 chain replicas, two zones homed at one node today may be
  // re-elected to *different* nodes tomorrow, so groups must be zone-pure:
  // key on the layout owner (== the zone id) instead of the current home.
  // With K == 1 all zones at a node always move together, so keying on the
  // effective home is safe and keeps the historical path byte-identical.
  const bool zone_pure = ha_ != nullptr && ha_->replicas() > 1;

  FlushScratch& s = t.scratch;
  s.begin_ic(homes, t.wlog.size());
  for (const auto& e : t.wlog.entries()) {
    bool fresh = false;
    IcDedupTable::Slot* slot = s.dedup.find_or_insert(e.addr, &fresh);
    if (fresh) {
      // Under HA the effective home may be the local node (entries logged
      // before a promotion made us home); they get a direct local apply in
      // the send loop below.
      const NodeId home = (ha_ == nullptr || zone_pure) ? layout_.home_of(e.addr)
                                                        : effective_home_of(e.addr);
      HYP_CHECK_MSG(home != t.node || ha_ != nullptr, "home-page writes are never logged");
      auto& vec = s.ic_by_home[static_cast<std::size_t>(home)];
      slot->home = static_cast<std::uint32_t>(home);
      slot->index = static_cast<std::uint32_t>(vec.size());
      vec.push_back(e);
    } else {
      s.ic_by_home[slot->home][slot->index] = e;
    }
  }

  t.clock.charge(cpu.cycles(cpu.update_entry_cycles * t.wlog.size()));
  t.clock.flush();
  for (std::size_t h = 0; h < homes; ++h) {
    auto& entries = s.ic_by_home[h];
    if (entries.empty()) continue;
    // Zone-pure groups are keyed by layout owner; resolve the zone's CURRENT
    // home for the local-apply test and the trace destination (ha_rpc_home
    // re-resolves per attempt anyway, so a mid-flush promotion is absorbed).
    const NodeId home = zone_pure ? effective_home_of(entries.front().addr)
                                  : static_cast<NodeId>(h);
    if (ha_ != nullptr && home == t.node) {
      // Post-promotion local apply: this node IS the home now; write the
      // identical bytes the wire would have carried straight into the arena.
      for (const auto& e : entries) {
        std::memcpy(t.nd->arena() + e.addr, &e.value, e.size);
      }
      t.clock.charge(cpu.cycles(cpu.update_entry_cycles * entries.size()));
      t.clock.flush();
      continue;
    }
    Buffer msg;
    // Bounded dedup window: tag the message so a late re-delivery of an
    // evicted packet cannot stale-revert newer home bytes (see dsm.hpp).
    // (When fencing is on, ha_rpc_home prepends the epoch per attempt.)
    if (update_ids_active()) msg.put<std::uint64_t>(next_update_id_++);
    WriteLog::encode(&msg, entries);
    t.stats->add(Counter::kUpdatesSent);
    t.stats->add(Counter::kUpdateBytes, msg.size());
    t.stats->record(Hist::kUpdatePayloadBytes, msg.size());
    if (heat_ != nullptr) [[unlikely]] {
      for (const auto& e : entries) heat_->record_update(layout_.page_of(e.addr), e.size);
    }
    cluster_->trace_event(t.node, cluster::TraceKind::kUpdateSent, home,
                          static_cast<std::int64_t>(msg.size()));
    if (ha_ == nullptr) {
      Buffer ack =
          rpc_with_retry(t.node, home, svc::kUpdateFields, std::move(msg), "write-log flush");
      HYP_CHECK(ack.empty());
    } else {
      // Re-resolution key: the first entry's page. Groups never mix zones
      // with different owners: K == 1 moves all of a node's zones together,
      // K > 1 uses zone-pure grouping above (docs/RECOVERY.md).
      Buffer ack = ha_rpc_home(t, layout_.page_of(entries.front().addr), svc::kUpdateFields,
                               msg, /*reply_is_page=*/false, "write-log flush");
      HYP_CHECK(ack.empty());
    }
  }
  t.wlog.clear();
}

void DsmSystem::handle_update_fields(cluster::Incoming& in, NodeId self) {
  NodeDsm& nd = node_dsm(self);
  if (fencing_) {
    const auto msg_epoch = in.reader.get<std::uint64_t>();
    if (msg_epoch < ha_->node_epoch(self)) {
      // Epoch fence: a stale-epoch writer must not mutate home state (its
      // routing view predates a promotion). 1-byte NACK, like the stale-home
      // case below — the caller re-resolves and re-sends under a fresh epoch.
      cluster_->node(self).stats().add(Counter::kHaFencedRejects);
      cluster_->trace_event(self, cluster::TraceKind::kHaFencedReject,
                            static_cast<std::int64_t>(msg_epoch), svc::kUpdateFields);
      Buffer nack;
      nack.put<std::uint8_t>(1);
      cluster_->reply(in, std::move(nack));
      return;
    }
  }
  // Success acks carry the home's epoch view when fencing is on (callers
  // validate it); the historical ack is empty.
  auto make_ack = [&] {
    Buffer ack;
    if (fencing_) ack.put<std::uint64_t>(ha_->node_epoch(self));
    return ack;
  };
  // Bounded dedup window: a re-delivered (window-evicted) update that was
  // already applied must NOT re-apply — its bytes may be stale by now. Just
  // re-ack (the original ack may be what got lost; a completed caller slot
  // absorbs the second reply).
  std::uint64_t update_id = 0;
  if (update_ids_active()) {
    update_id = in.reader.get<std::uint64_t>();
    if (applied_updates_[static_cast<std::size_t>(self)].count(update_id) != 0) {
      cluster_->node(self).stats().add_named("dsm_update_replays_absorbed");
      cluster_->reply(in, make_ack());
      return;
    }
  }
  // Streaming apply: no per-message entry vector (zero-allocation path).
  bool stale = false;
  std::size_t applied_bytes = 0;
  const std::size_t count = WriteLog::decode_each(in.reader, [&](const WriteLogEntry& e) {
    const bool home = nd.is_home(layout_.page_of(e.addr));
    if (ha_ != nullptr && !home) {
      // Stale-home straggler (one group never mixes zones with different
      // owners, so the whole message is stale together): NACK below.
      stale = true;
      return;
    }
    HYP_CHECK_MSG(home, "update reached a non-home node");
    std::memcpy(nd.arena() + e.addr, &e.value, e.size);
    applied_bytes += e.size;
  });
  if (stale) {
    cluster_->trace_event(self, cluster::TraceKind::kHaNack, in.from, svc::kUpdateFields);
    Buffer nack;
    nack.put<std::uint8_t>(1);
    cluster_->reply(in, std::move(nack));
    return;
  }
  // Record only on actual apply: a NACKed straggler was NOT applied here, and
  // must stay replayable in case a later promotion makes this node home.
  if (update_id != 0) applied_updates_[static_cast<std::size_t>(self)].insert(update_id);
  if (ha_ != nullptr && applied_bytes != 0) {
    // Home state changed: incremental checkpoint traffic to the backup
    // (field-granularity, piggybacked on this very update — docs/RECOVERY.md).
    ha_->note_checkpoint(self, applied_bytes);
  }
  const Time done_at = cluster_->node(self).extend_service(
      cluster_->params().cpu.cycles(cluster_->params().cpu.update_entry_cycles * count));
  // Home-side confirmation of the flush; pairs with the sender's kUpdateSent
  // for cross-node Perfetto flow arrows (docs/OBSERVABILITY.md).
  cluster_->trace_event(self, cluster::TraceKind::kUpdateApplied, in.from,
                        static_cast<std::int64_t>(count));
  cluster_->reply(in, make_ack(), done_at - cluster_->engine().now());
}

// ---------------------------------------------------------------------------
// java_pf: twin/diff flush
//
// Wire format per home: u32 run_count, then per run (u64 gva, u32 len, raw
// bytes). Runs are maximal spans of modified 8-byte words.

namespace {
// Both the arena page and the twin are at least 8-byte aligned; memcpy of a
// u64 compiles to one plain load.
inline std::uint64_t load_word(const std::byte* base, std::size_t w) {
  std::uint64_t v;
  std::memcpy(&v, base + w * 8, 8);
  return v;
}
}  // namespace

void DsmSystem::flush_pf(ThreadCtx& t) {
  const auto& cpu = cluster_->params().cpu;
  const std::size_t page_bytes = layout_.page_bytes();
  const std::size_t homes = static_cast<std::size_t>(cluster_->node_count());

  // Zone-pure grouping under K > 1 chain replicas (see flush_ic).
  const bool zone_pure = ha_ != nullptr && ha_->replicas() > 1;

  FlushScratch& s = t.scratch;
  s.begin_pf(homes);
  std::uint64_t diff_words = 0;

  // Scan, snapshot and twin-refresh happen atomically in virtual time (no
  // yields): a same-node thread writing during our later sends must see its
  // own writes as fresh diffs against the refreshed twin, not have them
  // silently absorbed. Run payloads are snapshotted into the shared scratch
  // arena (offsets, not pointers: the arena may grow mid-scan).
  //
  // The scan compares aligned u64 words, skipping clean 64-byte chunks with
  // one OR-of-XORs test. Run boundaries are identical to a word-at-a-time
  // scan — a chunk is skipped only when all eight words match — so emitted
  // messages are bit-identical to the old memcmp loop.
  for (PageId p : t.nd->cached_pages()) {
    if (!t.nd->has_twin(p)) continue;
    t.clock.charge(cpu.diff_cost(page_bytes));
    const std::byte* cur = t.nd->page_ptr(p);
    const std::byte* twin = t.nd->twin(p);
    const std::size_t words = page_bytes / 8;
    bool page_dirty = false;
    auto& runs = s.pf_by_home[static_cast<std::size_t>(
        (ha_ == nullptr || zone_pure) ? layout_.home_of_page(p) : effective_home_of_page(p))];
    std::size_t w = 0;
    while (w < words) {
      if ((w & 7) == 0 && w + 8 <= words) {
        std::uint64_t acc = 0;
        for (std::size_t k = 0; k < 8; ++k) {
          acc |= load_word(cur, w + k) ^ load_word(twin, w + k);
        }
        if (acc == 0) {
          w += 8;
          continue;
        }
      }
      if (load_word(cur, w) == load_word(twin, w)) {
        ++w;
        continue;
      }
      const std::size_t run_begin = w;
      while (w < words && load_word(cur, w) != load_word(twin, w)) ++w;
      const std::size_t run_words = w - run_begin;
      diff_words += run_words;
      page_dirty = true;
      const auto offset = static_cast<std::uint32_t>(s.run_bytes.size());
      s.run_bytes.insert(s.run_bytes.end(), cur + run_begin * 8, cur + w * 8);
      runs.push_back(DiffRun{layout_.page_base(p) + run_begin * 8, offset,
                             static_cast<std::uint32_t>(run_words * 8)});
    }
    if (page_dirty) t.nd->refresh_twin(p);
  }

  t.stats->add(Counter::kDiffWords, diff_words);
  t.clock.flush();

  for (std::size_t h = 0; h < homes; ++h) {
    auto& runs = s.pf_by_home[h];
    if (runs.empty()) continue;
    // Zone-pure groups resolve the zone's CURRENT home here (see flush_ic).
    const NodeId home =
        zone_pure ? effective_home_of(runs.front().addr) : static_cast<NodeId>(h);
    if (ha_ != nullptr && home == t.node) {
      // Post-promotion local apply (normally unreachable: promotion strips
      // the zone's pages from the cached list — kept for safety).
      std::size_t bytes = 0;
      for (const DiffRun& r : runs) {
        std::memcpy(t.nd->arena() + r.addr, s.run_bytes.data() + r.offset, r.len);
        bytes += r.len;
      }
      t.clock.charge(cpu.copy_cost(bytes));
      t.clock.flush();
      continue;
    }
    Buffer msg;
    // Bounded dedup window: tag the message (see flush_ic / dsm.hpp;
    // ha_rpc_home prepends the fencing epoch per attempt).
    if (update_ids_active()) msg.put<std::uint64_t>(next_update_id_++);
    msg.put<std::uint32_t>(static_cast<std::uint32_t>(runs.size()));
    for (const DiffRun& r : runs) {
      msg.put<std::uint64_t>(r.addr);
      msg.put<std::uint32_t>(r.len);
      msg.put_bytes(s.run_bytes.data() + r.offset, r.len);
    }
    t.stats->add(Counter::kUpdatesSent);
    t.stats->add(Counter::kUpdateBytes, msg.size());
    t.stats->record(Hist::kUpdatePayloadBytes, msg.size());
    if (heat_ != nullptr) [[unlikely]] {
      for (const DiffRun& r : runs) heat_->record_update(layout_.page_of(r.addr), r.len);
    }
    cluster_->trace_event(t.node, cluster::TraceKind::kUpdateSent, home,
                          static_cast<std::int64_t>(msg.size()));
    if (ha_ == nullptr) {
      Buffer ack = rpc_with_retry(t.node, home, svc::kUpdateRuns, std::move(msg), "diff flush");
      HYP_CHECK(ack.empty());
    } else {
      Buffer ack = ha_rpc_home(t, layout_.page_of(runs.front().addr), svc::kUpdateRuns, msg,
                               /*reply_is_page=*/false, "diff flush");
      HYP_CHECK(ack.empty());
    }
  }
}

void DsmSystem::handle_update_runs(cluster::Incoming& in, NodeId self) {
  NodeDsm& nd = node_dsm(self);
  if (fencing_) {
    const auto msg_epoch = in.reader.get<std::uint64_t>();
    if (msg_epoch < ha_->node_epoch(self)) {
      // Epoch fence (see handle_update_fields).
      cluster_->node(self).stats().add(Counter::kHaFencedRejects);
      cluster_->trace_event(self, cluster::TraceKind::kHaFencedReject,
                            static_cast<std::int64_t>(msg_epoch), svc::kUpdateRuns);
      Buffer nack;
      nack.put<std::uint8_t>(1);
      cluster_->reply(in, std::move(nack));
      return;
    }
  }
  auto make_ack = [&] {
    Buffer ack;
    if (fencing_) ack.put<std::uint64_t>(ha_->node_epoch(self));
    return ack;
  };
  // Bounded dedup window: skip already-applied replays (see
  // handle_update_fields).
  std::uint64_t update_id = 0;
  if (update_ids_active()) {
    update_id = in.reader.get<std::uint64_t>();
    if (applied_updates_[static_cast<std::size_t>(self)].count(update_id) != 0) {
      cluster_->node(self).stats().add_named("dsm_update_replays_absorbed");
      cluster_->reply(in, make_ack());
      return;
    }
  }
  const auto runs = in.reader.get<std::uint32_t>();
  std::size_t total_bytes = 0;
  bool stale = false;
  for (std::uint32_t i = 0; i < runs; ++i) {
    const auto addr = in.reader.get<std::uint64_t>();
    const auto len = in.reader.get<std::uint32_t>();
    auto bytes = in.reader.get_span(len);
    const bool home = nd.is_home(layout_.page_of(addr));
    if (ha_ != nullptr && !home) {
      stale = true;  // keep consuming the reader; NACK the whole message
      continue;
    }
    HYP_CHECK_MSG(home, "diff reached a non-home node");
    std::memcpy(nd.arena() + addr, bytes.data(), len);
    total_bytes += len;
  }
  if (stale) {
    cluster_->trace_event(self, cluster::TraceKind::kHaNack, in.from, svc::kUpdateRuns);
    Buffer nack;
    nack.put<std::uint8_t>(1);
    cluster_->reply(in, std::move(nack));
    return;
  }
  if (update_id != 0) applied_updates_[static_cast<std::size_t>(self)].insert(update_id);
  if (ha_ != nullptr && total_bytes != 0) ha_->note_checkpoint(self, total_bytes);
  const Time done_at =
      cluster_->node(self).extend_service(cluster_->params().cpu.copy_cost(total_bytes));
  cluster_->trace_event(self, cluster::TraceKind::kUpdateApplied, in.from,
                        static_cast<std::int64_t>(total_bytes));
  cluster_->reply(in, make_ack(), done_at - cluster_->engine().now());
}

}  // namespace hyp::dsm
