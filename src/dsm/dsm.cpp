#include "dsm/dsm.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace hyp::dsm {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kJavaIc: return "java_ic";
    case ProtocolKind::kJavaPf: return "java_pf";
    case ProtocolKind::kHybrid: return "hybrid";
  }
  return "?";
}

ProtocolKind protocol_by_name(const std::string& name) {
  if (name == "java_ic") return ProtocolKind::kJavaIc;
  if (name == "java_pf") return ProtocolKind::kJavaPf;
  if (name == "hybrid") return ProtocolKind::kHybrid;
  HYP_PANIC("unknown protocol: " + name + " (expected java_ic, java_pf or hybrid)");
}

DsmSystem::DsmSystem(cluster::Cluster* cluster, std::size_t region_bytes, ProtocolKind kind)
    : cluster_(cluster),
      layout_(region_bytes, cluster->params().page_bytes, cluster->node_count()),
      kind_(kind) {
  const int n = cluster->node_count();
  applied_updates_.resize(static_cast<std::size_t>(n));
  nodes_.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<NodeDsm>(&layout_, i));
    cluster_->node(i).register_service(
        svc::kPageRequest, "page_request",
        [this, i](cluster::Incoming& in) { handle_page_request(in, i); });
    cluster_->node(i).register_service(
        svc::kUpdateFields, "update_fields",
        [this, i](cluster::Incoming& in) { handle_update_fields(in, i); });
    cluster_->node(i).register_service(
        svc::kUpdateRuns, "update_runs",
        [this, i](cluster::Incoming& in) { handle_update_runs(in, i); });
    cluster_->node(i).register_service(
        svc::kQuorumRead, "quorum_read",
        [this, i](cluster::Incoming& in) { handle_quorum_read(in, i); });
  }
  if (kind_ == ProtocolKind::kHybrid) {
    // Mode break-even: a miss in pf mode costs (fault + mprotect) more than
    // an ic miss, an ic hit costs one check more than a pf hit; pf therefore
    // wins while the window shows at least R accesses per miss. Integer
    // division of virtual-time constants — deterministic by construction.
    const auto& cpu = cluster->params().cpu;
    const Time check = cpu.check_cost();
    hybrid_r_ = (cpu.page_fault_cost + cpu.mprotect_page_cost) / (check == 0 ? 1 : check);
    if (hybrid_r_ == 0) hybrid_r_ = 1;
    home_override_.assign(layout_.total_pages(), -1);
    mig_.assign(layout_.total_pages(), MigStat{});
    wheat_.reserve(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) {
      nodes_[static_cast<std::size_t>(i)]->set_ic_default();
      wheat_.push_back(std::make_unique<obs::WindowedHeat>());
      wheat_.back()->init(layout_.total_pages());
    }
  }
}

Gva DsmSystem::alloc(NodeId node, std::size_t bytes, std::size_t align) {
  const Gva base = node_dsm(node).alloc(bytes, align);
  if (race_ != nullptr) [[unlikely]] race_->note_alloc(node, base, bytes);
  return base;
}

std::unique_ptr<ThreadCtx> DsmSystem::make_thread(NodeId node) {
  auto t = std::make_unique<ThreadCtx>(&cluster_->params().cpu);
  t->uid = next_thread_uid_++;
  t->dsm = this;
  t->node = node;
  t->nd = &node_dsm(node);
  t->base = t->nd->arena();
  t->presence = t->nd->presence_data();
  t->page_shift = layout_.page_shift();
  t->check_cost = cluster_->params().cpu.check_cost();
  if (kind_ == ProtocolKind::kHybrid) {
    t->awin = wheat_[static_cast<std::size_t>(node)]->raw_accesses();
    t->ic_giveup = hybrid_r_;
  }
  t->stats = &cluster_->node(node).stats();
  if (race_ != nullptr) {
    t->race = race_;
    t->race_tid = t->uid;
    race_->register_thread(t->uid, node);
  }
  // One processor per node: compute by this node's threads serializes.
  t->clock.bind_cpu(&cluster_->node(node).app_cpu());
  threads_.push_back(t.get());
  return t;
}

ThreadCtx::~ThreadCtx() {
  if (dsm != nullptr) dsm->unregister_thread(this);
}

void DsmSystem::unregister_thread(ThreadCtx* t) {
  for (auto it = threads_.begin(); it != threads_.end(); ++it) {
    if (*it == t) {
      threads_.erase(it);
      return;
    }
  }
}

void DsmSystem::replay_logged_writes(NodeId node, Gva begin, Gva end) {
  NodeDsm& nd = node_dsm(node);
  for (ThreadCtx* t : threads_) {
    if (t->node != node) continue;
    // Program order within a thread gives last-writer-wins; cross-thread
    // conflicts on unflushed stores are data races (undefined under the JMM).
    for (const WriteLogEntry& e : t->wlog.entries()) {
      if (e.addr >= begin && e.addr < end) {
        std::memcpy(nd.arena() + e.addr, &e.value, e.size);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Transport-failure degradation

namespace {
Buffer clone_payload(const Buffer& b) {
  Buffer out(b.size());
  out.put_bytes(b.data(), b.size());
  return out;
}
}  // namespace

Buffer DsmSystem::rpc_with_retry(NodeId from, NodeId to, cluster::ServiceId service, Buffer msg,
                                 const char* what) {
  if (!cluster_->transport_active()) {
    // Lossless network: exactly the historical path, no payload copy.
    return cluster_->call(from, to, service, std::move(msg));
  }
  for (int attempt = 1;; ++attempt) {
    cluster::RpcResult r = cluster_->call_result(
        from, to, service, attempt < kRpcAttempts ? clone_payload(msg) : std::move(msg));
    if (r.ok()) return std::move(r.payload);
    if (attempt >= kRpcAttempts) {
      HYP_PANIC(std::string(what) + " abandoned after " + std::to_string(attempt) +
                " attempts: " + r.error.message);
    }
  }
}

Buffer DsmSystem::ha_rpc_home(ThreadCtx& t, PageId p, cluster::ServiceId service,
                              const Buffer& msg, bool reply_is_page, const char* what) {
  HYP_DCHECK(ha_ != nullptr);
  const std::size_t epoch_bytes = fencing_ ? sizeof(std::uint64_t) : 0;
  const std::size_t ok_size = (reply_is_page ? layout_.page_bytes() : 0) + epoch_bytes;
  auto* eng = sim::Engine::current();
  const Time started = cluster_->engine().now();
  NodeId target = effective_home_of_page(p);
  int attempts_at_target = 0;
  bool rerouted = false;
  // The guard bounds pathological NACK/re-resolve loops; a real failover
  // converges in a handful of iterations (single-failure model).
  for (int guard = 0; guard < 64; ++guard) {
    const NodeId now_home = effective_home_of_page(p);
    if (now_home != target) {
      // The zone's home moved (promotion): fresh retry budget at the new one.
      target = now_home;
      attempts_at_target = 0;
      rerouted = true;
      t.stats->add(Counter::kHaReroutes);
    }
    ++attempts_at_target;
    // The fencing epoch is prepended per attempt, not baked into msg: a retry
    // after a local epoch bump must carry the fresh view, or the promoted
    // home would fence the same stale request forever.
    Buffer payload(msg.size() + epoch_bytes);
    if (fencing_) payload.put<std::uint64_t>(ha_->node_epoch(t.node));
    payload.put_bytes(msg.data(), msg.size());
    cluster::RpcResult r = cluster_->call_result(t.node, target, service, std::move(payload));
    if (r.ok() && r.payload.size() == ok_size) {
      if (fencing_) {
        // The reply leads with the serving home's epoch view: a reply from a
        // home this side has already fenced off is discarded like a NACK and
        // the call re-resolves (transient — the next attempt either reaches
        // the promoted home or sees the server's caught-up epoch).
        std::uint64_t reply_epoch = 0;
        std::memcpy(&reply_epoch, r.payload.data(), sizeof(reply_epoch));
        if (reply_epoch < ha_->node_epoch(t.node)) {
          t.stats->add(Counter::kHaFencedRejects);
          cluster_->trace_event(t.node, cluster::TraceKind::kHaFencedReject,
                                static_cast<std::int64_t>(reply_epoch), service);
          continue;
        }
      }
      if (rerouted) {
        t.stats->record(Hist::kHaRerouteWait,
                        static_cast<std::uint64_t>(cluster_->engine().now() - started));
      }
      if (!fencing_) return std::move(r.payload);
      Buffer out(r.payload.size() - epoch_bytes);
      out.put_bytes(r.payload.data() + epoch_bytes, r.payload.size() - epoch_bytes);
      return out;
    }
    if (!r.ok() && r.error.status == cluster::RpcStatus::kNoQuorum) {
      // Minority-side degradation: the wire to the home is cut. Park with a
      // fresh budget until the surviving side can have re-homed the zone
      // (cut start + confirm + watcher slack — the call then re-resolves) or
      // the heal instant, whichever comes first. Both are deterministic.
      attempts_at_target = 0;
      t.stats->add(Counter::kHaNoQuorumHolds);
      const auto& f = cluster_->params().fault;
      const Time at = cluster_->engine().now();
      const Time heal = f.severed_until(t.node, target, at);
      if (heal > at) {
        Time wake = heal;
        const Time confirm_by =
            f.severed_since(t.node, target, at) + f.confirm_after + 2 * f.hb_interval;
        if (confirm_by > at && confirm_by < wake) wake = confirm_by;
        eng->sleep_until(wake);
      }
      continue;
    }
    if (!r.ok() && attempts_at_target >= kRpcAttempts && !ha_->confirmed_dead(target)) {
      HYP_PANIC(std::string(what) + " abandoned after " + std::to_string(attempts_at_target) +
                " attempts: " + r.error.message);
    }
    // r.ok() with the wrong reply shape is a stale-home NACK: loop and
    // re-resolve. A failed call against a down-but-unconfirmed target holds
    // until the failure detector has had enough silence to decide.
    const Time at = cluster_->engine().now();
    Time hold = ha_->retry_hold(target, at);
    if (fencing_ && r.ok()) {
      // The NACK may mean OUR epoch is stale (the empty reply cannot say):
      // a node inside an open partition window catches up only at the heal,
      // so retrying before then just burns the guard against more fences.
      // Reaches here when the minority node addresses a bystander home that
      // is outside every partition group but already on the new epoch.
      const Time release = cluster_->params().fault.partition_release(t.node, at);
      if (release > hold) hold = release;
    }
    if (hold > at) eng->sleep_until(hold);
  }
  HYP_PANIC(std::string(what) + ": home failover did not converge (epoch " +
            std::to_string(ha_->epoch()) + ")");
}

// ---------------------------------------------------------------------------
// Page transfer

void DsmSystem::fetch_page(ThreadCtx& t, PageId p) {
  HYP_CHECK_MSG(!t.nd->is_home(p), "fetching a home page");
  auto* eng = sim::Engine::current();
  sim::Fiber* self = eng->current_fiber();

  // At most one outstanding fetch per (node, page); later threads wait.
  if (!t.nd->begin_fetch(p, self)) {
    t.nd->wait_fetch(p, self);
    return;
  }

  NodeId home = effective_home_of_page(p);
  const std::size_t page_bytes = layout_.page_bytes();
  const auto& cpu = cluster_->params().cpu;

  Buffer req;
  req.put<std::uint32_t>(p);
  Buffer reply;
  if (ha_ == nullptr) {
    reply = rpc_with_retry(t.node, home, svc::kPageRequest, std::move(req), "page fetch");
    // Migration reroute (hybrid, no HA): an empty reply is the old home's
    // NACK — the page's home moved while our request was in flight. The
    // override table is updated synchronously at migration, so re-resolving
    // converges in one hop; the guard bounds a pathological ping-pong.
    int guard = 0;
    while (migrations_enabled() && reply.size() != page_bytes) {
      HYP_CHECK_MSG(++guard < 64, "page fetch: migration reroute did not converge");
      t.stats->add(Counter::kHaReroutes);
      home = effective_home_of_page(p);
      Buffer again;
      again.put<std::uint32_t>(p);
      reply = rpc_with_retry(t.node, home, svc::kPageRequest, std::move(again), "page fetch");
    }
  } else if (fencing_ && ha_->suspected(home) && try_quorum_read(t, p, home, &reply)) {
    // Suspected-home window: a majority of the home's chain backups served
    // the read, so the fetch skips the detector's confirm wait entirely.
  } else {
    reply = ha_rpc_home(t, p, svc::kPageRequest, req, /*reply_is_page=*/true, "page fetch");
    home = effective_home_of_page(p);  // the node that actually served us
    if (t.nd->present(p)) {
      // A promotion made this node home for the page while we were failing
      // over: the arena bytes are already authoritative — installing the
      // reply as a "cached replica" would corrupt the presence table.
      t.nd->finish_fetch(p);
      return;
    }
  }
  if (migrations_enabled() && t.nd->present(p)) {
    // The page migrated TO this node while the fetch was in flight (the old
    // home served us, then picked this node as the dominant writer): the
    // arena bytes are already authoritative — installing the reply as a
    // cached replica would corrupt the presence table.
    t.nd->finish_fetch(p);
    return;
  }
  HYP_CHECK_MSG(reply.size() == page_bytes, "page reply has wrong size");

  // Install the replica (real bytes) and charge the local copy-in.
  std::memcpy(t.nd->page_ptr(p), reply.data(), page_bytes);
  t.clock.charge(cpu.copy_cost(page_bytes));
  const bool with_twin = kind_ == ProtocolKind::kJavaPf ||
                         (kind_ == ProtocolKind::kHybrid && !t.nd->ic_mode(p));
  t.nd->mark_cached(p, with_twin);
  if (with_twin) t.clock.charge(cpu.copy_cost(page_bytes));  // twin snapshot
  t.clock.flush();

  t.stats->add(Counter::kPageFetches);
  t.stats->add(Counter::kPageFetchBytes, page_bytes);
  if (heat_ != nullptr) [[unlikely]] heat_->record_fetch(p);
  cluster_->trace_event(t.node, cluster::TraceKind::kPageFetch, p, home);
  t.nd->finish_fetch(p);
}

void DsmSystem::fetch_until_present(ThreadCtx& t, PageId p) {
  // Observation wrapper around the fetch loop: the histogram/phase records
  // are pure accumulation plus two clock reads, so attaching them can never
  // shift virtual time (determinism_golden pins this).
  const Time t0 = cluster_->engine().now();
  while (!t.nd->present(p)) fetch_page(t, p);
  const TimeDelta waited = cluster_->engine().now() - t0;
  t.stats->record(Hist::kPageFetchLatency, waited);
  cluster_->phase_add(t.node, obs::Phase::kBlockedFetch, waited);
}

void DsmSystem::handle_page_request(cluster::Incoming& in, NodeId self) {
  std::uint64_t msg_epoch = 0;
  if (fencing_) msg_epoch = in.reader.get<std::uint64_t>();
  const auto p = in.reader.get<std::uint32_t>();
  NodeDsm& nd = node_dsm(self);
  if (fencing_ && msg_epoch < ha_->node_epoch(self)) {
    // Epoch fence: the request was built under a routing view this node has
    // already superseded (a promotion happened between send and receive).
    // NACK so the caller re-resolves against the current home map.
    cluster_->node(self).stats().add(Counter::kHaFencedRejects);
    cluster_->trace_event(self, cluster::TraceKind::kHaFencedReject,
                          static_cast<std::int64_t>(msg_epoch), svc::kPageRequest);
    cluster_->reply(in, Buffer{});
    return;
  }
  if ((ha_ != nullptr || migrations_enabled()) && !nd.is_home(p)) {
    // Stale-home straggler: a retransmit that outlived a promotion, a
    // request reaching a restarted (demoted) node, or a request that raced a
    // hybrid home migration. NACK with an empty reply (success replies are
    // page_bytes long) so the caller re-resolves.
    cluster_->trace_event(self, cluster::TraceKind::kHaNack, in.from, svc::kPageRequest);
    cluster_->reply(in, Buffer{});
    return;
  }
  HYP_CHECK_MSG(nd.is_home(p), "page request reached a non-home node");

  const std::size_t page_bytes = layout_.page_bytes();
  // The home's CPU/service copies the page out; the reply departs when that
  // work completes.
  const Time done_at = cluster_->node(self).extend_service(
      cluster_->params().cpu.copy_cost(page_bytes));
  Buffer out;
  if (fencing_) out.put<std::uint64_t>(ha_->node_epoch(self));
  out.put_bytes(nd.page_ptr(p), page_bytes);
  cluster_->reply(in, std::move(out), done_at - cluster_->engine().now());
}

bool DsmSystem::try_quorum_read(ThreadCtx& t, PageId p, NodeId home, Buffer* out) {
  const auto& f = cluster_->params().fault;
  const Time now = cluster_->engine().now();
  const std::uint32_t k = ha_->replicas();
  // A strict majority of the home's K chain backups must be up and reachable
  // (both directions) from the reader; with fewer votes this side cannot rule
  // out that the "suspected" home is healthy and serving the far side of a
  // cut, so the read falls back to the ordinary detector path.
  std::uint32_t votes = 0;
  NodeId backup = -1;
  bool self_holds = false;
  for (std::uint32_t i = 0; i < k; ++i) {
    const NodeId b = ha_->chain_backup(home, i);
    if (ha_->confirmed_dead(b) || f.crash_release(b, now) != 0) continue;
    if (b == t.node) {
      ++votes;
      self_holds = true;
      continue;
    }
    if (f.severed(t.node, b, now) || f.severed(b, t.node, now)) continue;
    ++votes;
    if (backup < 0) backup = b;
  }
  if (votes * 2 <= k) return false;

  const std::size_t page_bytes = layout_.page_bytes();
  if (backup < 0) {
    if (!self_holds) return false;
    backup = t.node;  // the reader itself carries the chain copy
  }
  if (backup == t.node) {
    Buffer local(page_bytes);
    local.put_bytes(node_dsm(effective_home_of_page(p)).page_ptr(p), page_bytes);
    t.clock.charge(cluster_->params().cpu.copy_cost(page_bytes));
    *out = std::move(local);
  } else {
    Buffer req;
    req.put<std::uint64_t>(ha_->node_epoch(t.node));
    req.put<std::uint32_t>(p);
    cluster::RpcResult r =
        cluster_->call_result(t.node, backup, svc::kQuorumRead, std::move(req));
    if (!r.ok() || r.payload.size() != page_bytes + sizeof(std::uint64_t)) return false;
    Buffer body(page_bytes);
    body.put_bytes(r.payload.data() + sizeof(std::uint64_t), page_bytes);
    *out = std::move(body);
  }
  t.stats->add(Counter::kHaQuorumReads);
  cluster_->trace_event(t.node, cluster::TraceKind::kHaQuorumRead, p, backup);
  return true;
}

void DsmSystem::handle_quorum_read(cluster::Incoming& in, NodeId self) {
  const auto msg_epoch = in.reader.get<std::uint64_t>();
  const auto p = in.reader.get<std::uint32_t>();
  if (!fencing_ || msg_epoch < ha_->node_epoch(self)) {
    cluster_->node(self).stats().add(Counter::kHaFencedRejects);
    cluster_->trace_event(self, cluster::TraceKind::kHaFencedReject,
                          static_cast<std::int64_t>(msg_epoch), svc::kQuorumRead);
    cluster_->reply(in, Buffer{});
    return;
  }
  // The chain backup serves the page from its replicated copy of the home's
  // state. The modeled checkpoint stream keeps replicas current with every
  // committed update (docs/RECOVERY.md), so the effective home's arena IS the
  // replica's contents — the simulator reads it directly instead of keeping a
  // second materialized copy per backup.
  const std::size_t page_bytes = layout_.page_bytes();
  const Time done_at = cluster_->node(self).extend_service(
      cluster_->params().cpu.copy_cost(page_bytes));
  Buffer out;
  out.put<std::uint64_t>(ha_->node_epoch(self));
  out.put_bytes(node_dsm(effective_home_of_page(p)).page_ptr(p), page_bytes);
  cluster_->reply(in, std::move(out), done_at - cluster_->engine().now());
}

// ---------------------------------------------------------------------------
// Protocol cold paths

void DsmSystem::miss_ic(ThreadCtx& t, PageId p) {
  // The in-line check already ran (and was charged) in the fast path.
  t.clock.flush();
  fetch_until_present(t, p);
}

void DsmSystem::miss_pf(ThreadCtx& t, PageId p) {
  const auto& cpu = cluster_->params().cpu;
  // Hardware trap + kernel + SIGSEGV dispatch (the paper's 12/22 us), then
  // the fetch, then mprotect to open the page READ/WRITE.
  t.stats->add(Counter::kPageFaults);
  if (heat_ != nullptr) [[unlikely]] heat_->record_fault(p);
  cluster_->trace_event(t.node, cluster::TraceKind::kPageFault, p);
  t.clock.charge(cpu.page_fault_cost);
  t.clock.flush();
  fetch_until_present(t, p);
  t.stats->add(Counter::kMprotectCalls);
  t.clock.charge(cpu.mprotect_page_cost);
  t.clock.flush();
}

void DsmSystem::miss_hybrid(ThreadCtx& t, PageId p) {
  const auto& cpu = cluster_->params().cpu;
  const bool was_ic = t.nd->ic_mode(p);
  if (!was_ic) {
    // pf-mode pages sit behind page protection while absent, so this miss
    // was a hardware trap (the paper's fault cost); ic-mode pages found the
    // miss via the inline check the fast path already charged.
    t.stats->add(Counter::kPageFaults);
    if (heat_ != nullptr) [[unlikely]] heat_->record_fault(p);
    cluster_->trace_event(t.node, cluster::TraceKind::kPageFault, p);
    t.clock.charge(cpu.page_fault_cost);
  }
  t.clock.flush();
  // Mode decision: made before the fetch (the fetch must know whether to
  // twin) and only by the fiber that will start it — waiters inherit the
  // decision already in flight. Between two misses the page served `acc`
  // accesses: ic would have cost acc checks, pf one fault + mprotect = R
  // checks — so ic wins below R accesses per miss. The rule is a hysteresis
  // band around that break-even: leave ic once acc >= R * miss, but
  // re-enter it only when clearly favorable (2 * acc < R * miss). Without
  // the band, pages hovering near R oscillate — give up mid-generation,
  // flip back at the next miss, and pay the flip overhead (twin snapshot +
  // mprotect + the re-entry fault) every round on top of the checks.
  // Inside the band both modes cost within 2x of each other, so staying
  // put is the cheap choice. The at-miss decision is not the only escape:
  // a page wrongly left in ic bleeds one check per access with no miss in
  // sight (e.g. a read-once-then-scan page never misses again inside a
  // generation), so the fast path bails out through give_up_ic once the
  // raw tally crosses R — capping the wrong-ic loss at one
  // fault-equivalent per generation. A wrongly-pf page already costs at
  // most R per miss by construction. First touch (acc ~ 0, miss = 1)
  // keeps the set_ic_default ic start: sparse pages never pay a blind
  // fault.
  if (!t.nd->fetch_inflight(p)) {
    obs::WindowedHeat& w = *wheat_[static_cast<std::size_t>(t.node)];
    const std::uint64_t epoch = cluster_->engine().now() / kModeEpoch;
    w.note_miss(p, epoch);
    const std::uint64_t acc = w.accesses(p);
    const std::uint64_t miss = w.misses(p);  // >= 1: note_miss counted this one
    const std::uint64_t breakeven = static_cast<std::uint64_t>(hybrid_r_) * miss;
    const bool next_ic = was_ic ? acc < breakeven : 4 * acc < breakeven;
    if (next_ic != was_ic) {
      t.nd->set_ic_mode(p, next_ic);
      t.stats->add_named("dsm_mode_switches");
      cluster_->trace_event(t.node, cluster::TraceKind::kModeSwitch, p, next_ic ? 1 : 0);
    }
  }
  fetch_until_present(t, p);
  if (!was_ic) {
    // Re-open the trapped page READ/WRITE, whatever mode it continues in.
    t.stats->add(Counter::kMprotectCalls);
    t.clock.charge(cpu.mprotect_page_cost);
    t.clock.flush();
  }
}

void DsmSystem::give_up_ic(ThreadCtx& t, PageId p) {
  // The at-miss decision cannot help a page that stops missing: a page read
  // once and then scanned densely (ASP's row-k broadcast is the archetype)
  // would pay a check on every access forever. The fast path calls this once
  // the raw tally since the last fold reaches R — the point where the checks
  // already paid equal one fault + mprotect, so switching now caps the loss.
  // Deliberately yield-free (no clock.flush): the caller re-reads the
  // presence byte it already loaded and a park here could let another fiber
  // invalidate the page under a half-done access.
  if (!t.nd->ic_mode(p) || !t.nd->present(p)) return;
  const auto& cpu = cluster_->params().cpu;
  wheat_[static_cast<std::size_t>(t.node)]->fold(
      p, cluster_->engine().now() / kModeEpoch);
  if (!t.nd->is_home(p) && !t.nd->has_twin(p)) {
    // pf-mode replicas are twin-diffed at flush; snapshot one now so bare
    // stores made after the flip are still shipped home. Stores made before
    // it are already in the write log — the two cover the generation with no
    // gap and no double-send.
    t.nd->ensure_twin(p);
    t.clock.charge(cpu.copy_cost(layout_.page_bytes()));
  }
  t.nd->set_ic_mode(p, false);
  t.stats->add(Counter::kMprotectCalls);
  t.clock.charge(cpu.mprotect_page_cost);
  t.stats->add_named("dsm_mode_switches");
  cluster_->trace_event(t.node, cluster::TraceKind::kModeSwitch, p, 0);
}

// ---------------------------------------------------------------------------
// Table 2 primitives

void DsmSystem::load_into_cache(ThreadCtx& t, Gva addr) {
  const PageId p = layout_.page_of(addr);
  t.clock.flush();
  if (t.nd->present(p)) return;  // prefetch of a present page: nothing to log
  fetch_until_present(t, p);
}

void DsmSystem::invalidate_cache(ThreadCtx& t) {
  const auto& cpu = cluster_->params().cpu;
  const std::size_t cached = t.nd->cached_pages().size();
  if (kind_ == ProtocolKind::kJavaPf) {
    // One region-wide mprotect re-protects every non-home page (§3.3: "this
    // protection is set on each entry to a monitor").
    t.stats->add(Counter::kMprotectCalls);
    t.clock.charge(cpu.mprotect_region_cost);
  } else if (kind_ == ProtocolKind::kHybrid) {
    // Only pf-mode replicas (exactly the cached pages holding a twin) sit
    // behind page protection; ic-mode pages are guarded by checks. When no
    // pf-mode page is cached the region mprotect is skipped entirely — the
    // structural saving over java_pf on check-heavy workloads.
    for (PageId p : t.nd->cached_pages()) {
      if (t.nd->has_twin(p)) {
        t.stats->add(Counter::kMprotectCalls);
        t.clock.charge(cpu.mprotect_region_cost);
        break;
      }
    }
  }
  t.clock.charge(cpu.cycles(cpu.invalidate_page_cycles * cached));
  const std::size_t dropped = t.nd->invalidate_all();
  t.stats->add(Counter::kInvalidations, dropped);
  cluster_->trace_event(t.node, cluster::TraceKind::kInvalidate,
                        static_cast<std::int64_t>(dropped));
  t.clock.flush();
}

void DsmSystem::update_main_memory(ThreadCtx& t) {
  // A consistency action is a synchronization point: materialize the
  // thread's batched compute first (otherwise pending time is silently
  // dropped on paths that have nothing to flush, e.g. thread termination).
  t.clock.flush();
  if (kind_ == ProtocolKind::kJavaIc) {
    flush_ic(t);
  } else if (kind_ == ProtocolKind::kJavaPf) {
    flush_pf(t);
  } else {
    flush_hybrid(t);
  }
}

void DsmSystem::on_acquire(ThreadCtx& t) {
  // Conservative JMM: make our modifications visible, then drop all cached
  // copies so subsequent reads see fresh home data.
  update_main_memory(t);
  invalidate_cache(t);
}

void DsmSystem::on_release(ThreadCtx& t) { update_main_memory(t); }

// ---------------------------------------------------------------------------
// java_ic: field-granularity write-log flush

void DsmSystem::flush_ic(ThreadCtx& t) {
  if (t.wlog.empty()) return;
  const auto& cpu = cluster_->params().cpu;
  const std::size_t homes = static_cast<std::size_t>(cluster_->node_count());

  // Last-writer-wins per field, grouped by home node, preserving first-touch
  // order for determinism. The scratch dedup table and per-home flat vectors
  // reproduce the old std::map semantics exactly — first-touch order within a
  // home, homes sent in ascending id order — without per-flush allocation.
  // With K > 1 chain replicas, two zones homed at one node today may be
  // re-elected to *different* nodes tomorrow, so groups must be zone-pure:
  // key on the layout owner (== the zone id) instead of the current home.
  // With K == 1 all zones at a node always move together, so keying on the
  // effective home is safe and keeps the historical path byte-identical.
  const bool zone_pure = ha_ != nullptr && ha_->replicas() > 1;

  FlushScratch& s = t.scratch;
  s.begin_ic(homes, t.wlog.size());
  for (const auto& e : t.wlog.entries()) {
    bool fresh = false;
    IcDedupTable::Slot* slot = s.dedup.find_or_insert(e.addr, &fresh);
    if (fresh) {
      // Under HA the effective home may be the local node (entries logged
      // before a promotion made us home); they get a direct local apply in
      // the send loop below.
      const NodeId home = (ha_ == nullptr || zone_pure) ? layout_.home_of(e.addr)
                                                        : effective_home_of(e.addr);
      HYP_CHECK_MSG(home != t.node || ha_ != nullptr, "home-page writes are never logged");
      auto& vec = s.ic_by_home[static_cast<std::size_t>(home)];
      slot->home = static_cast<std::uint32_t>(home);
      slot->index = static_cast<std::uint32_t>(vec.size());
      vec.push_back(e);
    } else {
      s.ic_by_home[slot->home][slot->index] = e;
    }
  }

  t.clock.charge(cpu.cycles(cpu.update_entry_cycles * t.wlog.size()));
  t.clock.flush();
  for (std::size_t h = 0; h < homes; ++h) {
    auto& entries = s.ic_by_home[h];
    if (entries.empty()) continue;
    // Zone-pure groups are keyed by layout owner; resolve the zone's CURRENT
    // home for the local-apply test and the trace destination (ha_rpc_home
    // re-resolves per attempt anyway, so a mid-flush promotion is absorbed).
    const NodeId home = zone_pure ? effective_home_of(entries.front().addr)
                                  : static_cast<NodeId>(h);
    if (ha_ != nullptr && home == t.node) {
      // Post-promotion local apply: this node IS the home now; write the
      // identical bytes the wire would have carried straight into the arena.
      for (const auto& e : entries) {
        std::memcpy(t.nd->arena() + e.addr, &e.value, e.size);
      }
      t.clock.charge(cpu.cycles(cpu.update_entry_cycles * entries.size()));
      t.clock.flush();
      continue;
    }
    Buffer msg;
    // Bounded dedup window: tag the message so a late re-delivery of an
    // evicted packet cannot stale-revert newer home bytes (see dsm.hpp).
    // (When fencing is on, ha_rpc_home prepends the epoch per attempt.)
    if (update_ids_active()) msg.put<std::uint64_t>(next_update_id_++);
    WriteLog::encode(&msg, entries);
    t.stats->add(Counter::kUpdatesSent);
    t.stats->add(Counter::kUpdateBytes, msg.size());
    t.stats->record(Hist::kUpdatePayloadBytes, msg.size());
    if (heat_ != nullptr) [[unlikely]] {
      for (const auto& e : entries) heat_->record_update(layout_.page_of(e.addr), e.size);
    }
    cluster_->trace_event(t.node, cluster::TraceKind::kUpdateSent, home,
                          static_cast<std::int64_t>(msg.size()));
    if (ha_ == nullptr) {
      Buffer ack =
          rpc_with_retry(t.node, home, svc::kUpdateFields, std::move(msg), "write-log flush");
      HYP_CHECK(ack.empty());
    } else {
      // Re-resolution key: the first entry's page. Groups never mix zones
      // with different owners: K == 1 moves all of a node's zones together,
      // K > 1 uses zone-pure grouping above (docs/RECOVERY.md).
      Buffer ack = ha_rpc_home(t, layout_.page_of(entries.front().addr), svc::kUpdateFields,
                               msg, /*reply_is_page=*/false, "write-log flush");
      HYP_CHECK(ack.empty());
    }
  }
  t.wlog.clear();
}

void DsmSystem::handle_update_fields(cluster::Incoming& in, NodeId self) {
  NodeDsm& nd = node_dsm(self);
  if (fencing_) {
    const auto msg_epoch = in.reader.get<std::uint64_t>();
    if (msg_epoch < ha_->node_epoch(self)) {
      // Epoch fence: a stale-epoch writer must not mutate home state (its
      // routing view predates a promotion). 1-byte NACK, like the stale-home
      // case below — the caller re-resolves and re-sends under a fresh epoch.
      cluster_->node(self).stats().add(Counter::kHaFencedRejects);
      cluster_->trace_event(self, cluster::TraceKind::kHaFencedReject,
                            static_cast<std::int64_t>(msg_epoch), svc::kUpdateFields);
      Buffer nack;
      nack.put<std::uint8_t>(1);
      cluster_->reply(in, std::move(nack));
      return;
    }
  }
  // Success acks carry the home's epoch view when fencing is on (callers
  // validate it); the historical ack is empty.
  auto make_ack = [&] {
    Buffer ack;
    if (fencing_) ack.put<std::uint64_t>(ha_->node_epoch(self));
    return ack;
  };
  // Bounded dedup window: a re-delivered (window-evicted) update that was
  // already applied must NOT re-apply — its bytes may be stale by now. Just
  // re-ack (the original ack may be what got lost; a completed caller slot
  // absorbs the second reply).
  std::uint64_t update_id = 0;
  if (update_ids_active()) {
    update_id = in.reader.get<std::uint64_t>();
    if (applied_updates_[static_cast<std::size_t>(self)].count(update_id) != 0) {
      cluster_->node(self).stats().add_named("dsm_update_replays_absorbed");
      cluster_->reply(in, make_ack());
      return;
    }
  }
  // Streaming apply: no per-message entry vector (zero-allocation path).
  bool stale = false;
  std::size_t applied_bytes = 0;
  if (migrations_enabled()) mig_batch_.clear();
  const std::size_t count = WriteLog::decode_each(in.reader, [&](const WriteLogEntry& e) {
    const PageId pg = layout_.page_of(e.addr);
    const bool home = nd.is_home(pg);
    if ((ha_ != nullptr || migrations_enabled()) && !home) {
      // Stale-home straggler (one group never mixes pages with different
      // routing fates, so the whole message is stale together): NACK below.
      stale = true;
      return;
    }
    HYP_CHECK_MSG(home, "update reached a non-home node");
    std::memcpy(nd.arena() + e.addr, &e.value, e.size);
    applied_bytes += e.size;
    if (migrations_enabled()) {
      // Per-page byte subtotals for the dominant-writer tracker (fed after
      // the whole message has applied — migrating mid-decode would misroute
      // the remaining entries).
      bool found = false;
      for (auto& pr : mig_batch_) {
        if (pr.first == pg) {
          pr.second += e.size;
          found = true;
          break;
        }
      }
      if (!found) mig_batch_.emplace_back(pg, e.size);
    }
  });
  if (stale) {
    cluster_->trace_event(self, cluster::TraceKind::kHaNack, in.from, svc::kUpdateFields);
    Buffer nack;
    nack.put<std::uint8_t>(1);
    cluster_->reply(in, std::move(nack));
    return;
  }
  // Record only on actual apply: a NACKed straggler was NOT applied here, and
  // must stay replayable in case a later promotion makes this node home.
  if (update_id != 0) applied_updates_[static_cast<std::size_t>(self)].insert(update_id);
  if (ha_ != nullptr && applied_bytes != 0) {
    // Home state changed: incremental checkpoint traffic to the backup
    // (field-granularity, piggybacked on this very update — docs/RECOVERY.md).
    ha_->note_checkpoint(self, applied_bytes);
  }
  if (migrations_enabled()) {
    for (const auto& pr : mig_batch_) note_remote_update(self, pr.first, in.from, pr.second);
    mig_batch_.clear();
  }
  const Time done_at = cluster_->node(self).extend_service(
      cluster_->params().cpu.cycles(cluster_->params().cpu.update_entry_cycles * count));
  // Home-side confirmation of the flush; pairs with the sender's kUpdateSent
  // for cross-node Perfetto flow arrows (docs/OBSERVABILITY.md).
  cluster_->trace_event(self, cluster::TraceKind::kUpdateApplied, in.from,
                        static_cast<std::int64_t>(count));
  cluster_->reply(in, make_ack(), done_at - cluster_->engine().now());
}

// ---------------------------------------------------------------------------
// java_pf: twin/diff flush
//
// Wire format per home: u32 run_count, then per run (u64 gva, u32 len, raw
// bytes). Runs are maximal spans of modified 8-byte words.

namespace {
// Both the arena page and the twin are at least 8-byte aligned; memcpy of a
// u64 compiles to one plain load.
inline std::uint64_t load_word(const std::byte* base, std::size_t w) {
  std::uint64_t v;
  std::memcpy(&v, base + w * 8, 8);
  return v;
}
}  // namespace

void DsmSystem::flush_pf(ThreadCtx& t) {
  const auto& cpu = cluster_->params().cpu;
  const std::size_t page_bytes = layout_.page_bytes();
  const std::size_t homes = static_cast<std::size_t>(cluster_->node_count());

  // Zone-pure grouping under K > 1 chain replicas (see flush_ic).
  const bool zone_pure = ha_ != nullptr && ha_->replicas() > 1;

  FlushScratch& s = t.scratch;
  s.begin_pf(homes);
  std::uint64_t diff_words = 0;

  // Scan, snapshot and twin-refresh happen atomically in virtual time (no
  // yields): a same-node thread writing during our later sends must see its
  // own writes as fresh diffs against the refreshed twin, not have them
  // silently absorbed. Run payloads are snapshotted into the shared scratch
  // arena (offsets, not pointers: the arena may grow mid-scan).
  //
  // The scan compares aligned u64 words, skipping clean 64-byte chunks with
  // one OR-of-XORs test. Run boundaries are identical to a word-at-a-time
  // scan — a chunk is skipped only when all eight words match — so emitted
  // messages are bit-identical to the old memcmp loop.
  for (PageId p : t.nd->cached_pages()) {
    if (!t.nd->has_twin(p)) continue;
    t.clock.charge(cpu.diff_cost(page_bytes));
    const std::byte* cur = t.nd->page_ptr(p);
    const std::byte* twin = t.nd->twin(p);
    const std::size_t words = page_bytes / 8;
    bool page_dirty = false;
    auto& runs = s.pf_by_home[static_cast<std::size_t>(
        (ha_ == nullptr || zone_pure) ? layout_.home_of_page(p) : effective_home_of_page(p))];
    std::size_t w = 0;
    while (w < words) {
      if ((w & 7) == 0 && w + 8 <= words) {
        std::uint64_t acc = 0;
        for (std::size_t k = 0; k < 8; ++k) {
          acc |= load_word(cur, w + k) ^ load_word(twin, w + k);
        }
        if (acc == 0) {
          w += 8;
          continue;
        }
      }
      if (load_word(cur, w) == load_word(twin, w)) {
        ++w;
        continue;
      }
      const std::size_t run_begin = w;
      while (w < words && load_word(cur, w) != load_word(twin, w)) ++w;
      const std::size_t run_words = w - run_begin;
      diff_words += run_words;
      page_dirty = true;
      const auto offset = static_cast<std::uint32_t>(s.run_bytes.size());
      s.run_bytes.insert(s.run_bytes.end(), cur + run_begin * 8, cur + w * 8);
      runs.push_back(DiffRun{layout_.page_base(p) + run_begin * 8, offset,
                             static_cast<std::uint32_t>(run_words * 8)});
    }
    if (page_dirty) t.nd->refresh_twin(p);
  }

  t.stats->add(Counter::kDiffWords, diff_words);
  t.clock.flush();

  for (std::size_t h = 0; h < homes; ++h) {
    auto& runs = s.pf_by_home[h];
    if (runs.empty()) continue;
    // Zone-pure groups resolve the zone's CURRENT home here (see flush_ic).
    const NodeId home =
        zone_pure ? effective_home_of(runs.front().addr) : static_cast<NodeId>(h);
    if (ha_ != nullptr && home == t.node) {
      // Post-promotion local apply (normally unreachable: promotion strips
      // the zone's pages from the cached list — kept for safety).
      std::size_t bytes = 0;
      for (const DiffRun& r : runs) {
        std::memcpy(t.nd->arena() + r.addr, s.run_bytes.data() + r.offset, r.len);
        bytes += r.len;
      }
      t.clock.charge(cpu.copy_cost(bytes));
      t.clock.flush();
      continue;
    }
    Buffer msg;
    // Bounded dedup window: tag the message (see flush_ic / dsm.hpp;
    // ha_rpc_home prepends the fencing epoch per attempt).
    if (update_ids_active()) msg.put<std::uint64_t>(next_update_id_++);
    msg.put<std::uint32_t>(static_cast<std::uint32_t>(runs.size()));
    for (const DiffRun& r : runs) {
      msg.put<std::uint64_t>(r.addr);
      msg.put<std::uint32_t>(r.len);
      msg.put_bytes(s.run_bytes.data() + r.offset, r.len);
    }
    t.stats->add(Counter::kUpdatesSent);
    t.stats->add(Counter::kUpdateBytes, msg.size());
    t.stats->record(Hist::kUpdatePayloadBytes, msg.size());
    if (heat_ != nullptr) [[unlikely]] {
      for (const DiffRun& r : runs) heat_->record_update(layout_.page_of(r.addr), r.len);
    }
    cluster_->trace_event(t.node, cluster::TraceKind::kUpdateSent, home,
                          static_cast<std::int64_t>(msg.size()));
    if (ha_ == nullptr) {
      Buffer ack = rpc_with_retry(t.node, home, svc::kUpdateRuns, std::move(msg), "diff flush");
      HYP_CHECK(ack.empty());
    } else {
      Buffer ack = ha_rpc_home(t, layout_.page_of(runs.front().addr), svc::kUpdateRuns, msg,
                               /*reply_is_page=*/false, "diff flush");
      HYP_CHECK(ack.empty());
    }
  }
}

void DsmSystem::handle_update_runs(cluster::Incoming& in, NodeId self) {
  NodeDsm& nd = node_dsm(self);
  if (fencing_) {
    const auto msg_epoch = in.reader.get<std::uint64_t>();
    if (msg_epoch < ha_->node_epoch(self)) {
      // Epoch fence (see handle_update_fields).
      cluster_->node(self).stats().add(Counter::kHaFencedRejects);
      cluster_->trace_event(self, cluster::TraceKind::kHaFencedReject,
                            static_cast<std::int64_t>(msg_epoch), svc::kUpdateRuns);
      Buffer nack;
      nack.put<std::uint8_t>(1);
      cluster_->reply(in, std::move(nack));
      return;
    }
  }
  auto make_ack = [&] {
    Buffer ack;
    if (fencing_) ack.put<std::uint64_t>(ha_->node_epoch(self));
    return ack;
  };
  // Bounded dedup window: skip already-applied replays (see
  // handle_update_fields).
  std::uint64_t update_id = 0;
  if (update_ids_active()) {
    update_id = in.reader.get<std::uint64_t>();
    if (applied_updates_[static_cast<std::size_t>(self)].count(update_id) != 0) {
      cluster_->node(self).stats().add_named("dsm_update_replays_absorbed");
      cluster_->reply(in, make_ack());
      return;
    }
  }
  const auto runs = in.reader.get<std::uint32_t>();
  std::size_t total_bytes = 0;
  bool stale = false;
  if (migrations_enabled()) mig_batch_.clear();
  for (std::uint32_t i = 0; i < runs; ++i) {
    const auto addr = in.reader.get<std::uint64_t>();
    const auto len = in.reader.get<std::uint32_t>();
    auto bytes = in.reader.get_span(len);
    const PageId pg = layout_.page_of(addr);
    const bool home = nd.is_home(pg);
    if ((ha_ != nullptr || migrations_enabled()) && !home) {
      stale = true;  // keep consuming the reader; NACK the whole message
      continue;
    }
    HYP_CHECK_MSG(home, "diff reached a non-home node");
    std::memcpy(nd.arena() + addr, bytes.data(), len);
    total_bytes += len;
    if (migrations_enabled()) {
      bool found = false;
      for (auto& pr : mig_batch_) {
        if (pr.first == pg) {
          pr.second += len;
          found = true;
          break;
        }
      }
      if (!found) mig_batch_.emplace_back(pg, static_cast<std::uint64_t>(len));
    }
  }
  if (stale) {
    cluster_->trace_event(self, cluster::TraceKind::kHaNack, in.from, svc::kUpdateRuns);
    Buffer nack;
    nack.put<std::uint8_t>(1);
    cluster_->reply(in, std::move(nack));
    return;
  }
  if (update_id != 0) applied_updates_[static_cast<std::size_t>(self)].insert(update_id);
  if (ha_ != nullptr && total_bytes != 0) ha_->note_checkpoint(self, total_bytes);
  if (migrations_enabled()) {
    for (const auto& pr : mig_batch_) note_remote_update(self, pr.first, in.from, pr.second);
    mig_batch_.clear();
  }
  const Time done_at =
      cluster_->node(self).extend_service(cluster_->params().cpu.copy_cost(total_bytes));
  cluster_->trace_event(self, cluster::TraceKind::kUpdateApplied, in.from,
                        static_cast<std::int64_t>(total_bytes));
  cluster_->reply(in, make_ack(), done_at - cluster_->engine().now());
}

// ---------------------------------------------------------------------------
// hybrid: write-log + twin-diff flush with migration-aware routing
//
// Wire formats are exactly flush_ic's (svc::kUpdateFields) and flush_pf's
// (svc::kUpdateRuns); only the grouping differs. Because a page's home can
// move between building a message and its delivery, each send loop works on
// a pending set: take the first pending item's routing key, peel off
// everything sharing it, send; a NACK leaves the cohort pending and the next
// iteration re-resolves against the (synchronously updated) override table.
// Under HA the key is the page itself — page-pure cohorts, so ha_rpc_home's
// internal re-resolve loop converges on a single moving page — while without
// HA cohorts group by effective home, matching the paper protocols' message
// counts whenever no migration is in flight.

void DsmSystem::flush_hybrid(ThreadCtx& t) {
  const auto& cpu = cluster_->params().cpu;
  const std::size_t page_bytes = layout_.page_bytes();
  FlushScratch& s = t.scratch;
  s.begin_hybrid(t.wlog.size());

  // Last-writer-wins dedup of the ic-mode write log into one flat vector,
  // first-touch order (same semantics as flush_ic).
  for (const auto& e : t.wlog.entries()) {
    bool fresh = false;
    IcDedupTable::Slot* slot = s.dedup.find_or_insert(e.addr, &fresh);
    if (fresh) {
      slot->home = 0;
      slot->index = static_cast<std::uint32_t>(s.hy_pending.size());
      s.hy_pending.push_back(e);
    } else {
      s.hy_pending[slot->index] = e;
    }
  }
  if (!t.wlog.empty()) {
    t.clock.charge(cpu.cycles(cpu.update_entry_cycles * t.wlog.size()));
    t.clock.flush();
  }

  // Twin diffs of the pf-mode replicas (identical scan to flush_pf).
  std::uint64_t diff_words = 0;
  for (PageId p : t.nd->cached_pages()) {
    if (!t.nd->has_twin(p)) continue;
    t.clock.charge(cpu.diff_cost(page_bytes));
    const std::byte* cur = t.nd->page_ptr(p);
    const std::byte* twin = t.nd->twin(p);
    const std::size_t words = page_bytes / 8;
    bool page_dirty = false;
    std::size_t w = 0;
    while (w < words) {
      if ((w & 7) == 0 && w + 8 <= words) {
        std::uint64_t acc = 0;
        for (std::size_t k = 0; k < 8; ++k) {
          acc |= load_word(cur, w + k) ^ load_word(twin, w + k);
        }
        if (acc == 0) {
          w += 8;
          continue;
        }
      }
      if (load_word(cur, w) == load_word(twin, w)) {
        ++w;
        continue;
      }
      const std::size_t run_begin = w;
      while (w < words && load_word(cur, w) != load_word(twin, w)) ++w;
      const std::size_t run_words = w - run_begin;
      diff_words += run_words;
      page_dirty = true;
      const auto offset = static_cast<std::uint32_t>(s.run_bytes.size());
      s.run_bytes.insert(s.run_bytes.end(), cur + run_begin * 8, cur + w * 8);
      s.hy_runs_pending.push_back(DiffRun{layout_.page_base(p) + run_begin * 8, offset,
                                          static_cast<std::uint32_t>(run_words * 8)});
    }
    if (page_dirty) t.nd->refresh_twin(p);
  }
  t.stats->add(Counter::kDiffWords, diff_words);
  t.clock.flush();

  const bool page_pure = ha_ != nullptr;

  // --- ship the deduped write-log entries (svc::kUpdateFields) -------------
  int guard = 0;
  while (!s.hy_pending.empty()) {
    HYP_CHECK_MSG(++guard < 256, "hybrid flush: field reroute did not converge");
    s.hy_cohort.clear();
    s.hy_rest.clear();
    const PageId lead_page = layout_.page_of(s.hy_pending.front().addr);
    const NodeId home = effective_home_of_page(lead_page);
    for (const auto& e : s.hy_pending) {
      const bool same = page_pure ? layout_.page_of(e.addr) == lead_page
                                  : effective_home_of(e.addr) == home;
      (same ? s.hy_cohort : s.hy_rest).push_back(e);
    }
    if (home == t.node) {
      // A migration landed the home here: apply exactly the bytes the wire
      // would have carried straight into the arena.
      for (const auto& e : s.hy_cohort) {
        std::memcpy(t.nd->arena() + e.addr, &e.value, e.size);
      }
      t.clock.charge(cpu.cycles(cpu.update_entry_cycles * s.hy_cohort.size()));
      t.clock.flush();
      s.hy_pending.swap(s.hy_rest);
      continue;
    }
    Buffer msg;
    if (update_ids_active()) msg.put<std::uint64_t>(next_update_id_++);
    WriteLog::encode(&msg, s.hy_cohort);
    t.stats->add(Counter::kUpdatesSent);
    t.stats->add(Counter::kUpdateBytes, msg.size());
    t.stats->record(Hist::kUpdatePayloadBytes, msg.size());
    if (heat_ != nullptr) [[unlikely]] {
      for (const auto& e : s.hy_cohort) heat_->record_update(layout_.page_of(e.addr), e.size);
    }
    cluster_->trace_event(t.node, cluster::TraceKind::kUpdateSent, home,
                          static_cast<std::int64_t>(msg.size()));
    if (ha_ == nullptr) {
      Buffer ack =
          rpc_with_retry(t.node, home, svc::kUpdateFields, std::move(msg), "write-log flush");
      if (!ack.empty()) continue;  // migration NACK: re-resolve and resend
    } else {
      Buffer ack = ha_rpc_home(t, lead_page, svc::kUpdateFields, msg,
                               /*reply_is_page=*/false, "write-log flush");
      HYP_CHECK(ack.empty());
    }
    s.hy_pending.swap(s.hy_rest);
  }
  t.wlog.clear();

  // --- ship the diff runs (svc::kUpdateRuns) -------------------------------
  guard = 0;
  while (!s.hy_runs_pending.empty()) {
    HYP_CHECK_MSG(++guard < 256, "hybrid flush: run reroute did not converge");
    s.hy_runs_cohort.clear();
    s.hy_runs_rest.clear();
    const PageId lead_page = layout_.page_of(s.hy_runs_pending.front().addr);
    const NodeId home = effective_home_of_page(lead_page);
    for (const DiffRun& r : s.hy_runs_pending) {
      const bool same = page_pure ? layout_.page_of(r.addr) == lead_page
                                  : effective_home_of(r.addr) == home;
      (same ? s.hy_runs_cohort : s.hy_runs_rest).push_back(r);
    }
    if (home == t.node) {
      std::size_t bytes = 0;
      for (const DiffRun& r : s.hy_runs_cohort) {
        std::memcpy(t.nd->arena() + r.addr, s.run_bytes.data() + r.offset, r.len);
        bytes += r.len;
      }
      t.clock.charge(cpu.copy_cost(bytes));
      t.clock.flush();
      s.hy_runs_pending.swap(s.hy_runs_rest);
      continue;
    }
    Buffer msg;
    if (update_ids_active()) msg.put<std::uint64_t>(next_update_id_++);
    msg.put<std::uint32_t>(static_cast<std::uint32_t>(s.hy_runs_cohort.size()));
    for (const DiffRun& r : s.hy_runs_cohort) {
      msg.put<std::uint64_t>(r.addr);
      msg.put<std::uint32_t>(r.len);
      msg.put_bytes(s.run_bytes.data() + r.offset, r.len);
    }
    t.stats->add(Counter::kUpdatesSent);
    t.stats->add(Counter::kUpdateBytes, msg.size());
    t.stats->record(Hist::kUpdatePayloadBytes, msg.size());
    if (heat_ != nullptr) [[unlikely]] {
      for (const DiffRun& r : s.hy_runs_cohort) {
        heat_->record_update(layout_.page_of(r.addr), r.len);
      }
    }
    cluster_->trace_event(t.node, cluster::TraceKind::kUpdateSent, home,
                          static_cast<std::int64_t>(msg.size()));
    if (ha_ == nullptr) {
      Buffer ack = rpc_with_retry(t.node, home, svc::kUpdateRuns, std::move(msg), "diff flush");
      if (!ack.empty()) continue;  // migration NACK: re-resolve and resend
    } else {
      Buffer ack = ha_rpc_home(t, lead_page, svc::kUpdateRuns, msg,
                               /*reply_is_page=*/false, "diff flush");
      HYP_CHECK(ack.empty());
    }
    s.hy_runs_pending.swap(s.hy_runs_rest);
  }
}

// ---------------------------------------------------------------------------
// hybrid: heat-driven home migration (docs/PROTOCOLS.md §hybrid)

void DsmSystem::note_remote_update(NodeId self, PageId p, NodeId from, std::uint64_t bytes) {
  if (from < 0 || from == self) return;
  MigStat& st = mig_[p];
  const std::uint64_t e = cluster_->engine().now() / kMigEpoch;
  if (e != st.epoch) {
    // Close the open window. A clear byte-majority survivor extends the
    // dominance streak only across strictly consecutive epochs — idle gaps
    // break it, so sporadic traffic never accumulates into a migration.
    const bool dom = st.cand >= 0 && st.total >= kMigMinBytes &&
                     st.weight * 2 > static_cast<std::int64_t>(st.total);
    if (!dom || e != st.epoch + 1) {
      st.streak = 0;
      st.last_dom = -1;
    }
    if (dom) {
      if (st.cand == st.last_dom) {
        ++st.streak;
      } else {
        st.last_dom = st.cand;
        st.streak = 1;
      }
    }
    const NodeId target = st.last_dom;
    const bool fire = st.streak >= kMigStreak && target >= 0;
    st.epoch = e;
    st.cand = -1;
    st.weight = 0;
    st.total = 0;
    if (fire) {
      st.streak = 0;
      st.last_dom = -1;
      maybe_migrate(self, p, target);
      if (effective_home_of_page(p) != self) return;  // moved: tracking restarts there
    }
  }
  // Weighted Boyer–Moore vote into the open window: the survivor of
  // byte-weighted pairwise cancellation is the only possible majority writer;
  // the margin test at window close rejects accidental survivors.
  st.total += bytes;
  if (st.cand == from) {
    st.weight += static_cast<std::int64_t>(bytes);
  } else if (st.weight >= static_cast<std::int64_t>(bytes)) {
    st.weight -= static_cast<std::int64_t>(bytes);
  } else {
    st.weight = static_cast<std::int64_t>(bytes) - st.weight;
    st.cand = from;
  }
}

void DsmSystem::maybe_migrate(NodeId self, PageId p, NodeId target) {
  if (target < 0 || target >= cluster_->node_count() || target == self) return;
  if (effective_home_of_page(p) != self) return;  // routing changed under us
  const auto& f = cluster_->params().fault;
  const Time now = cluster_->engine().now();
  // Never migrate toward a node that is (or is about to be) unavailable, nor
  // across an open cut — the handoff below is synchronous in the model.
  if (ha_ != nullptr && (ha_->confirmed_dead(target) || ha_->suspected(target))) return;
  if (f.crash_release(target, now) != 0) return;
  if (f.severed(self, target, now) || f.severed(target, self, now)) return;

  NodeDsm& snd = node_dsm(self);
  NodeDsm& wnd = node_dsm(target);
  const std::size_t page_bytes = layout_.page_bytes();
  const Gva begin = layout_.page_base(p);

  // Realize the authoritative bytes in the new home's arena. If the target
  // holds a pf-mode replica, its unflushed local writes (cur != twin words)
  // survive: only clean words take the home's bytes (cf. HaManager::move_zone
  // preserving the backup's pending diffs during zone failover).
  if (wnd.has_twin(p)) {
    std::byte* cur = wnd.page_ptr(p);
    const std::byte* twin = wnd.twin(p);
    const std::byte* src = snd.page_ptr(p);
    for (std::size_t w = 0; w < page_bytes / 8; ++w) {
      if (load_word(cur, w) == load_word(twin, w)) {
        std::memcpy(cur + w * 8, src + w * 8, 8);
      }
    }
  } else {
    std::memcpy(wnd.page_ptr(p), snd.page_ptr(p), page_bytes);
  }
  wnd.promote_to_home(p, p + 1);
  // Unflushed ic-mode stores of the target's threads stay visible as well.
  replay_logged_writes(target, begin, begin + page_bytes);
  snd.demote_home(p, p + 1);
  home_override_[p] = target;
  mig_[p] = MigStat{};

  ++home_migrations_;
  cluster_->node(self).stats().add_named("dsm_home_migrations");
  cluster_->trace_event(self, cluster::TraceKind::kHomeMigrated, p, target);
  // Handoff cost: one page copy out of the old home's service queue and one
  // into the new one's. The transfer itself rides the modeled checkpoint
  // path (the same global-metadata idealization as quorum reads).
  const auto& cpu = cluster_->params().cpu;
  cluster_->node(self).extend_service(cpu.copy_cost(page_bytes));
  cluster_->node(target).extend_service(cpu.copy_cost(page_bytes));
  if (ha_ != nullptr) ha_->note_checkpoint(target, page_bytes);
  if (home_moved_) home_moved_(self, target, begin, begin + page_bytes);
}

void DsmSystem::on_node_dead(NodeId dead) {
  if (home_override_.empty()) return;
  const std::size_t page_bytes = layout_.page_bytes();
  NodeDsm& dnd = node_dsm(dead);
  for (std::size_t i = 0; i < home_override_.size(); ++i) {
    if (home_override_[i] != dead) continue;
    const PageId p = static_cast<PageId>(i);
    home_override_[i] = -1;
    mig_[i] = MigStat{};
    // Strip the dead node's authority now: when it restarts it must NACK
    // stragglers for pages it no longer serves (demote leaves the arena
    // bytes — the mirrored replica state — intact).
    dnd.demote_home(p, p + 1);
    const NodeId back = effective_home_of_page(p);
    if (back == dead) continue;  // its own zone: confirm_death's failover realizes it
    NodeDsm& bnd = node_dsm(back);
    const Gva begin = layout_.page_base(p);
    // Re-realize the page at the fallback home from the dead node's
    // replicated state, preserving the fallback's own unflushed writes
    // exactly as maybe_migrate does.
    if (bnd.has_twin(p)) {
      std::byte* cur = bnd.page_ptr(p);
      const std::byte* twin = bnd.twin(p);
      const std::byte* src = dnd.page_ptr(p);
      for (std::size_t w = 0; w < page_bytes / 8; ++w) {
        if (load_word(cur, w) == load_word(twin, w)) {
          std::memcpy(cur + w * 8, src + w * 8, 8);
        }
      }
    } else {
      std::memcpy(bnd.page_ptr(p), dnd.page_ptr(p), page_bytes);
    }
    bnd.promote_to_home(p, p + 1);
    replay_logged_writes(back, begin, begin + page_bytes);
    cluster_->node(back).stats().add_named("dsm_migrations_reverted");
    cluster_->trace_event(dead, cluster::TraceKind::kHomeMigrated, p, back);
    if (home_moved_) home_moved_(dead, back, begin, begin + page_bytes);
  }
}

}  // namespace hyp::dsm
