#include "dsm/node_dsm.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>

#include "sim/engine.hpp"

namespace hyp::dsm {

NodeDsm::NodeDsm(const Layout* layout, NodeId node)
    : layout_(layout),
      node_(node),
      presence_(layout->total_pages(), 0),
      twins_(layout->total_pages()),
      alloc_next_(layout->zone_begin(node)) {
  // Pre-fold home-ness into the presence table: the zone split is static, so
  // the expensive home_of_page division runs once per page here instead of
  // once per access on the hot path.
  for (PageId p = 0; p < layout->total_pages(); ++p) {
    if (layout->home_of_page(p) == node) presence_[p] = kPresentBit | kHomeBit;
  }
  void* mem = mmap(nullptr, layout_->total_bytes(), PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  HYP_CHECK_MSG(mem != MAP_FAILED, "DSM arena mmap failed");
  arena_ = static_cast<std::byte*>(mem);
}

NodeDsm::~NodeDsm() {
  if (arena_ != nullptr) munmap(arena_, layout_->total_bytes());
}

void NodeDsm::mark_cached(PageId p, bool with_twin) {
  HYP_DCHECK(p < presence_.size());
  HYP_CHECK_MSG(!is_home(p), "home pages are never 'cached'");
  HYP_CHECK_MSG((presence_[p] & kPresentBit) == 0, "page already cached");
  presence_[p] |= kPresentBit;  // |= preserves a hybrid kIcModeBit
  cached_list_.push_back(p);
  if (with_twin) {
    auto twin = std::make_unique<std::byte[]>(layout_->page_bytes());
    std::memcpy(twin.get(), page_ptr(p), layout_->page_bytes());
    twins_[p] = std::move(twin);
  }
}

std::size_t NodeDsm::invalidate_all() {
  const std::size_t dropped = cached_list_.size();
  for (PageId p : cached_list_) {
    // The hybrid mode bit survives invalidation (the page's learned detection
    // mode outlives the replica); for java_ic/java_pf the mask is a no-op.
    presence_[p] &= kIcModeBit;
    twins_[p].reset();
  }
  cached_list_.clear();
  return dropped;
}

void NodeDsm::promote_to_home(PageId first, PageId last) {
  HYP_CHECK(first <= last && last <= presence_.size());
  // Drop cached-replica status for any page of the range first.
  cached_list_.erase(std::remove_if(cached_list_.begin(), cached_list_.end(),
                                    [first, last](PageId p) {
                                      return p >= first && p < last;
                                    }),
                     cached_list_.end());
  for (PageId p = first; p < last; ++p) {
    twins_[p].reset();
    presence_[p] = kPresentBit | kHomeBit;
  }
}

void NodeDsm::demote_home(PageId first, PageId last) {
  HYP_CHECK(first <= last && last <= presence_.size());
  for (PageId p = first; p < last; ++p) {
    HYP_CHECK_MSG((presence_[p] & kHomeBit) != 0 || (presence_[p] & kPresentBit) == 0,
                  "demoting a page this node had cached");
    twins_[p].reset();
    presence_[p] = ic_default_ ? kIcModeBit : 0;
  }
}

void NodeDsm::set_ic_default() {
  ic_default_ = true;
  for (PageId p = 0; p < presence_.size(); ++p) {
    if ((presence_[p] & kHomeBit) == 0) presence_[p] |= kIcModeBit;
  }
}

void NodeDsm::ensure_twin(PageId p) {
  HYP_DCHECK(p < twins_.size());
  if (twins_[p] != nullptr) return;
  auto twin = std::make_unique<std::byte[]>(layout_->page_bytes());
  std::memcpy(twin.get(), page_ptr(p), layout_->page_bytes());
  twins_[p] = std::move(twin);
}

void NodeDsm::refresh_twin(PageId p) {
  HYP_CHECK(has_twin(p));
  std::memcpy(twins_[p].get(), page_ptr(p), layout_->page_bytes());
}

Gva NodeDsm::alloc(std::size_t bytes, std::size_t align) {
  HYP_CHECK_MSG(align != 0 && (align & (align - 1)) == 0, "alignment must be a power of two");
  HYP_CHECK_MSG(bytes > 0, "zero-byte allocation");
  Gva at = (alloc_next_ + align - 1) & ~static_cast<Gva>(align - 1);
  HYP_CHECK_MSG(at + bytes <= layout_->zone_end(node_),
                "node allocation zone exhausted; enlarge the DSM region");
  alloc_next_ = at + bytes;
  return at;
}

bool NodeDsm::begin_fetch(PageId p, sim::Fiber* self) {
  (void)self;
  for (auto& f : inflight_) {
    if (f.page == p) return false;
  }
  inflight_.push_back({p, {}});
  return true;
}

void NodeDsm::wait_fetch(PageId p, sim::Fiber* self) {
  auto* eng = sim::Engine::current();
  while (true) {
    auto it = std::find_if(inflight_.begin(), inflight_.end(),
                           [p](const Inflight& f) { return f.page == p; });
    if (it == inflight_.end()) return;  // fetch completed
    it->waiters.push_back(self);
    eng->park();
  }
}

void NodeDsm::finish_fetch(PageId p) {
  auto it = std::find_if(inflight_.begin(), inflight_.end(),
                         [p](const Inflight& f) { return f.page == p; });
  HYP_CHECK(it != inflight_.end());
  auto* eng = sim::Engine::current();
  for (sim::Fiber* waiter : it->waiters) eng->unpark(waiter);
  inflight_.erase(it);
}

}  // namespace hyp::dsm
