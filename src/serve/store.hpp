// The distributed KV/session store (docs/SERVING.md).
//
// Layout: `shards` tables, each a GArray<int64> of value slots guarded by its
// own monitor (the table's header Gva — the same object-as-lock idiom as
// examples/bank.cpp). Key k lives in shard k % shards at slot k / shards, so
// the Zipf-hot keys 0, 1, 2, ... land in *different* shards — skewed traffic
// stresses the coherence protocol, not one global lock.
//
// Home placement: shard s belongs to node s % nodes. build_store() starts one
// setup thread per node as the first N threads of the run — the round-robin
// balancer therefore pins setup thread w to node w — and each allocates its
// owned shards locally (allocation home = allocating thread's node, as in
// Hyperion). Every node is home to an equal slice of the table, and with
// `replicas=K` each shard's pages are chain-replicated like any other home
// pages, which is what makes acked writes crash-survivable.
//
// Ack semantics: update() returns after monitor_exit, whose release flush
// ships the modification home (and, with replicas, into the checkpoint
// stream). That return is the client-visible acknowledgement — the serve
// smoke asserts no acked write is ever lost across crash and partition
// profiles.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/object.hpp"
#include "hyperion/vm.hpp"

namespace hyp::serve {

using hyperion::GArray;
using hyperion::JavaEnv;
using hyperion::Mem;

// Host-side description of a built store, shared by every client thread
// (plain values: the Gvas were published under the setup threads' join edge,
// so handing them to threads started afterwards is race-free).
struct StoreLayout {
  std::uint64_t keys = 0;
  int shards = 0;
  std::int64_t slots = 0;  // per shard (uniform, slightly over-provisioned)
  std::vector<dsm::Gva> tables;  // shard -> GArray<int64> header Gva

  int shard_of(std::uint64_t key) const {
    return static_cast<int>(key % static_cast<std::uint64_t>(shards));
  }
  std::int64_t slot_of(std::uint64_t key) const {
    return static_cast<std::int64_t>(key / static_cast<std::uint64_t>(shards));
  }
};

// Builds the sharded table under `main`. MUST be called before any other
// thread is started: it relies on the round-robin balancer placing the i-th
// started thread on node i so shard homes land where intended.
template <typename P>
StoreLayout build_store(JavaEnv& main, std::uint64_t keys, int shards_per_node) {
  const int nodes = main.vm().nodes();
  StoreLayout layout;
  layout.keys = keys;
  layout.shards = shards_per_node * nodes;
  HYP_CHECK(layout.shards > 0);
  layout.slots =
      static_cast<std::int64_t>((keys + static_cast<std::uint64_t>(layout.shards) - 1) /
                                static_cast<std::uint64_t>(layout.shards));
  if (layout.slots == 0) layout.slots = 1;

  // Directory the setup threads publish into: shard -> table header Gva.
  auto directory = main.new_array<std::uint64_t>(layout.shards);

  std::vector<hyperion::JThread> setup;
  setup.reserve(static_cast<std::size_t>(nodes));
  for (int w = 0; w < nodes; ++w) {
    const int shards = layout.shards;
    const std::int64_t slots = layout.slots;
    setup.push_back(main.start_thread("store-setup" + std::to_string(w),
                                      [=](JavaEnv& env) {
      Mem<P> mem(env.ctx());
      for (int s = w; s < shards; s += nodes) {
        auto table = env.new_array<std::int64_t>(slots);  // zeroed, home here
        mem.aput(directory, static_cast<std::int64_t>(s),
                 static_cast<std::uint64_t>(table.header));
      }
    }));
  }
  for (auto& t : setup) main.join(t);

  Mem<P> mem(main.ctx());
  layout.tables.reserve(static_cast<std::size_t>(layout.shards));
  for (int s = 0; s < layout.shards; ++s) {
    layout.tables.push_back(
        static_cast<dsm::Gva>(mem.aget(directory, static_cast<std::int64_t>(s))));
  }
  return layout;
}

// Per-thread store handle: binds one client's DSM context to the layout.
template <typename P>
class Store {
 public:
  Store(JavaEnv& env, const StoreLayout& layout)
      : env_(&env), mem_(env.ctx()), layout_(&layout) {}

  std::int64_t get(std::uint64_t key) {
    const int s = layout_->shard_of(key);
    std::int64_t v = 0;
    env_->synchronized(lock_of(s), [&] { v = read_in(key); });
    return v;
  }

  // Read-modify-write under the shard monitor. Returns the new value; the
  // return itself is the write acknowledgement (see the header comment).
  std::int64_t update(std::uint64_t key, std::int64_t delta) {
    const int s = layout_->shard_of(key);
    std::int64_t v = 0;
    env_->synchronized(lock_of(s), [&] {
      v = read_in(key) + delta;
      write_in(key, v);
    });
    return v;
  }

  // Multi-shard atomic section: acquires the monitors of `shards` (must be
  // sorted ascending, duplicates allowed) in order — the classic deadlock-free
  // total-order lock protocol — and runs fn with the locks held. Use the
  // *_in accessors inside. examples/bank.cpp builds transfers on this.
  template <typename Fn>
  void with_shards(const std::vector<int>& shards, Fn&& fn) {
    int prev = -1;
    for (int s : shards) {
      HYP_CHECK_MSG(s >= prev, "with_shards requires ascending shard ids");
      if (s == prev) continue;
      env_->monitor_enter(lock_of(s));
      prev = s;
    }
    fn();
    prev = -1;
    for (int s : shards) {
      if (s == prev) continue;
      env_->monitor_exit(lock_of(s));
      prev = s;
    }
  }

  // Unlocked accessors: caller must hold the key's shard monitor (via
  // with_shards) or otherwise own the happens-before edge (e.g. main after
  // joining every client).
  std::int64_t read_in(std::uint64_t key) {
    return mem_.aget(table_of(key), layout_->slot_of(key));
  }
  void write_in(std::uint64_t key, std::int64_t v) {
    mem_.aput(table_of(key), layout_->slot_of(key), v);
  }

  int shard_of(std::uint64_t key) const { return layout_->shard_of(key); }
  dsm::Gva lock_of(int shard) const { return layout_->tables[static_cast<std::size_t>(shard)]; }

 private:
  GArray<std::int64_t> table_of(std::uint64_t key) const {
    return GArray<std::int64_t>{layout_->tables[static_cast<std::size_t>(layout_->shard_of(key))]};
  }

  JavaEnv* env_;
  Mem<P> mem_;
  const StoreLayout* layout_;
};

}  // namespace hyp::serve
