#include "serve/serve.hpp"

#include <cmath>
#include <vector>

#include "serve/store.hpp"
#include "sim/engine.hpp"

namespace hyp::serve {

namespace {

using hyperion::JavaEnv;
using hyperion::JThread;

// Fault windows relevant to latency attribution: any interval during which a
// node is crashed/stalled or the network is split. An op whose
// [scheduled arrival, completion] span overlaps one is tallied separately —
// the SLO table's "where did the tail come from" column.
struct Window {
  Time start = 0;
  Time end = 0;
};

std::vector<Window> fault_windows(const cluster::ClusterParams& cp) {
  std::vector<Window> out;
  for (const auto& w : cp.fault.crashes) out.push_back({w.start, w.end()});
  for (const auto& w : cp.fault.windows) out.push_back({w.start, w.end()});
  for (const auto& w : cp.fault.partitions) out.push_back({w.start, w.end()});
  return out;
}

template <typename P>
void run(hyperion::HyperionVM& vm, const cluster::ClusterParams& cp,
         const ServeParams& p, const std::vector<std::vector<Op>>& streams,
         Time horizon, ServeResult& out, std::vector<std::int64_t>& finals) {
  const std::vector<Window> fwins = fault_windows(cp);
  vm.run_main([&](JavaEnv& main) {
    const StoreLayout layout = build_store<P>(main, p.keys, p.shards_per_node);

    // Common epoch for every client's arrival schedule, a little past "now"
    // so thread spawn latency doesn't put early arrivals in the past for the
    // later clients. (If a client still starts late, its first ops simply run
    // back-to-back and their open-loop latency includes the backlog.)
    main.ctx().clock.flush();
    const Time epoch = main.now() + 50 * kMicrosecond;
    const Time win_start = epoch + p.warmup;
    Time win_end = epoch + horizon;
    win_end = win_end > p.cooldown ? win_end - p.cooldown : Time{0};
    if (win_end < win_start) win_end = win_start;
    out.window_start = win_start;
    out.window_end = win_end;

    std::vector<JThread> clients;
    clients.reserve(streams.size());
    for (std::size_t c = 0; c < streams.size(); ++c) {
      clients.push_back(main.start_thread(
          "serve-client" + std::to_string(c), [&, c](JavaEnv& env) {
        Store<P> store(env, layout);
        Stats& stats = *env.ctx().stats;
        for (const Op& op : streams[c]) {
          env.ctx().clock.flush();
          const Time target = epoch + op.arrival;
          const Time at = env.now();
          if (target > at) sim::Engine::current()->sleep_for(target - at);
          env.charge_cycles(p.op_cycles);
          if (op.is_update) {
            store.update(op.key, op.delta);  // returning = the write is acked
          } else {
            (void)store.get(op.key);
          }
          env.ctx().clock.flush();
          const Time done = env.now();
          const Time latency = done > target ? done - target : Time{0};
          stats.add(Counter::kServeOps);
          stats.add(op.is_update ? Counter::kServeUpdates : Counter::kServeReads);
          env.vm().cluster().trace_event(
              env.node(), cluster::TraceKind::kServeOp,
              static_cast<std::int64_t>(op.key),
              static_cast<std::int64_t>((latency << 1) |
                                        (op.is_update ? 1u : 0u)));
          if (target < win_start || target > win_end) {
            stats.add(Counter::kServeExcluded);
            continue;
          }
          stats.record(op.is_update ? Hist::kServeUpdateLatency
                                    : Hist::kServeReadLatency,
                       latency);
          for (const Window& w : fwins) {
            if (target < w.end && done > w.start) {
              stats.add(Counter::kServeFaultWinOps);
              stats.record(Hist::kServeFaultWinLatency, latency);
              break;
            }
          }
        }
      }));
    }
    for (auto& t : clients) main.join(t);

    // Final store state, read by main under the join happens-before edge.
    Store<P> store(main, layout);
    finals.assign(p.keys, 0);
    for (std::uint64_t k = 0; k < p.keys; ++k) {
      finals[k] = store.read_in(k);
    }
  });
}

}  // namespace

ServeResult run_serve(const apps::VmConfig& cfg, const ServeParams& p) {
  WorkloadParams wp;
  wp.keys = p.keys;
  wp.theta = p.theta;
  wp.read_pct = p.read_pct;
  wp.ops_per_client = p.ops_per_client;
  wp.rate_ops_per_s = p.rate_ops_per_s;
  wp.seed = p.seed;

  hyperion::HyperionVM vm(cfg);
  const int total_clients = p.clients_per_node * vm.nodes();
  HYP_CHECK(total_clients > 0 && p.ops_per_client > 0);

  std::vector<std::vector<Op>> streams;
  streams.reserve(static_cast<std::size_t>(total_clients));
  Time horizon = 0;
  for (int c = 0; c < total_clients; ++c) {
    streams.push_back(client_ops(wp, c));
    const Time last = streams.back().back().arrival;
    if (last > horizon) horizon = last;
  }
  if (p.writer_node >= 0) {
    HYP_CHECK_MSG(p.writer_node < vm.nodes(), "writer_node out of range");
    // Client c lands on node c % nodes (RoundRobinBalancer); demote every
    // non-writer client's updates to reads so one node dominates the write
    // traffic. The reference below replays the transformed streams.
    for (int c = 0; c < total_clients; ++c) {
      if (c % vm.nodes() == p.writer_node) continue;
      for (Op& op : streams[static_cast<std::size_t>(c)]) {
        op.is_update = false;
        op.delta = 0;
      }
    }
  }

  ServeResult out;
  std::vector<std::int64_t> finals;
  dsm::with_policy(cfg.protocol, cfg.race != nullptr, [&](auto policy) {
    using P = decltype(policy);
    run<P>(vm, cfg.cluster, p, streams, horizon, out, finals);
  });
  out.run.elapsed = vm.elapsed();
  out.run.stats = vm.stats();
  apps::capture_engine_tallies(out.run, vm);

  out.checksum = state_checksum(finals);
  // The golden-friendly answer: exactly representable in a double.
  out.run.value = static_cast<double>(out.checksum % 1000000007ULL);

  if (p.verify) {
    const Reference ref = reference_from_streams(streams, p.keys);
    out.expected_checksum = ref.checksum();
    for (std::uint64_t k = 0; k < p.keys; ++k) {
      if (finals[k] != ref.final_value[k]) ++out.lost_keys;
    }
    out.state_ok = out.lost_keys == 0 && out.checksum == out.expected_checksum;
  }

  const Stats& st = out.run.stats;
  out.ops = st.get(Counter::kServeOps);
  out.reads = st.get(Counter::kServeReads);
  out.updates = st.get(Counter::kServeUpdates);
  out.excluded = st.get(Counter::kServeExcluded);
  out.faultwin_ops = st.get(Counter::kServeFaultWinOps);

  Log2Histogram merged = st.hist(Hist::kServeReadLatency);
  merged.merge(st.hist(Hist::kServeUpdateLatency));
  if (!merged.empty()) {
    out.p50_us = static_cast<double>(merged.value_at_quantile(0.50)) / kMicrosecond;
    out.p99_us = static_cast<double>(merged.value_at_quantile(0.99)) / kMicrosecond;
    out.p999_us = static_cast<double>(merged.value_at_quantile(0.999)) / kMicrosecond;
    out.max_us = static_cast<double>(merged.max()) / kMicrosecond;
    const Time span = out.window_end - out.window_start;
    if (span > 0) {
      out.throughput_ops_s = static_cast<double>(merged.count()) / to_seconds(span);
    }
    // SLO summary as named counters so hyp-metrics-v1 carries the gateable
    // rows (compare_metrics.py fails a p99 rise or a throughput drop).
    Stats& mut = out.run.stats;
    mut.add_named("serve_p50_us", static_cast<std::uint64_t>(std::llround(out.p50_us)));
    mut.add_named("serve_p99_us", static_cast<std::uint64_t>(std::llround(out.p99_us)));
    mut.add_named("serve_p999_us", static_cast<std::uint64_t>(std::llround(out.p999_us)));
    mut.add_named("serve_throughput_ops",
                  static_cast<std::uint64_t>(std::llround(out.throughput_ops_s)));
  }
  return out;
}

}  // namespace hyp::serve
