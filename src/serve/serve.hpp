// The serving latency harness (docs/SERVING.md).
//
// run_serve() executes one serving experiment point: build the sharded store,
// start clients_per_node open-loop clients on every node, replay their
// deterministic op streams against the store, and measure per-op latency from
// the *scheduled* Poisson arrival to completion — queueing delay included, so
// a crash or partition window shows up as the tail spike it really is instead
// of being absorbed by a coordinated-omission pause.
//
// Everything runs under the ordinary VmConfig knobs: protocol, fault profile
// (crash / partition / linkdrop windows engage the HA subsystem exactly as in
// the batch figures), replicas=K, race detection, trace/heat/phase
// attachments. Same seed => byte-identical run (tests/serve_test.cpp golden).
#pragma once

#include <cstdint>

#include "apps/app_common.hpp"
#include "serve/workload.hpp"

namespace hyp::serve {

struct ServeParams {
  // Workload shape (see WorkloadParams).
  std::uint64_t keys = 4096;
  double theta = 0.99;
  int read_pct = 90;
  int clients_per_node = 2;
  std::uint64_t ops_per_client = 200;
  double rate_ops_per_s = 20000;  // per client
  std::uint64_t seed = 1;

  // Store shape.
  int shards_per_node = 4;

  // Session affinity: when >= 0, only clients placed on this node issue
  // updates — every other client's update ops execute (and are verified) as
  // reads. Models a dominant writer, the situation the hybrid protocol's
  // heat-driven home migration targets (bench/serve "hot" profile). -1 keeps
  // the historical uniform mix.
  int writer_node = -1;

  // Modeled per-op application work (request parse + handler), in cycles.
  std::uint64_t op_cycles = 2000;

  // Measurement window: ops *scheduled* inside the first `warmup` or the last
  // `cooldown` of the run are executed but excluded from the latency
  // histograms and throughput (counted under serve_excluded). Both 0 by
  // default: everything is measured.
  Time warmup = 0;
  Time cooldown = 0;

  // Verify the final store state against the host-side serial reference.
  bool verify = true;
};

struct ServeResult {
  apps::RunResult run;  // value = store-state checksum (for the goldens)

  // Correctness vs the serial reference (verify=true).
  std::uint64_t checksum = 0;
  std::uint64_t expected_checksum = 0;
  std::uint64_t lost_keys = 0;  // keys whose final value diverged
  bool state_ok = false;

  // Op accounting (whole-run totals; `excluded` is the subset outside the
  // measurement window, which the latency histograms and throughput omit).
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  std::uint64_t excluded = 0;
  std::uint64_t faultwin_ops = 0;  // measured ops overlapping a fault window

  // Measurement window actually applied (virtual time).
  Time window_start = 0;
  Time window_end = 0;

  // SLO summary over measured read+update latencies.
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
  double throughput_ops_s = 0;  // measured ops / window span
};

ServeResult run_serve(const apps::VmConfig& cfg, const ServeParams& params);

}  // namespace hyp::serve
