#include "serve/workload.hpp"

#include <cmath>  // frexp/ldexp only: exact exponent manipulation, no libm rounding

#include "common/assert.hpp"

namespace hyp::serve {

namespace {

// ln 2 to full double precision (hex literal: exact bits everywhere).
constexpr double kLn2 = 0x1.62e42fefa39efp-1;

// Mixes the run seed with a client id into an independent stream seed.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 sm(seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL));
  return sm.next();
}

}  // namespace

double det_ln(double x) {
  HYP_CHECK_MSG(x > 0.0, "det_ln domain");
  int k = 0;
  double m = std::frexp(x, &k);  // x = m * 2^k, m in [0.5, 1)
  // atanh series around 1: ln m = 2 * sum z^(2i+1)/(2i+1), z = (m-1)/(m+1).
  // |z| <= 1/3 on [0.5, 1), so 27 odd terms reach below double epsilon.
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  double term = z;
  double sum = 0.0;
  for (int i = 0; i < 27; ++i) {
    sum += term / static_cast<double>(2 * i + 1);
    term *= z2;
  }
  return static_cast<double>(k) * kLn2 + 2.0 * sum;
}

double det_exp(double x) {
  // Range-reduce by ln 2: x = k*ln2 + r with |r| <= ln2/2, exp(x) =
  // 2^k * exp(r); exp(r) by Taylor (|r| < 0.35, 18 terms are exact to ulp).
  HYP_CHECK_MSG(x > -700.0 && x < 700.0, "det_exp range");
  const double kd = x / kLn2;
  // Nearest integer, away-from-zero ties (exact: double -> int -> double).
  const int k = static_cast<int>(kd >= 0.0 ? kd + 0.5 : kd - 0.5);
  const double r = x - static_cast<double>(k) * kLn2;
  double term = 1.0;
  double sum = 1.0;
  for (int i = 1; i <= 18; ++i) {
    term *= r / static_cast<double>(i);
    sum += term;
  }
  return std::ldexp(sum, k);
}

double det_pow(double base, double exponent) {
  if (exponent == 0.0) return 1.0;
  if (base == 0.0) return 0.0;
  HYP_CHECK_MSG(base > 0.0, "det_pow domain");
  return det_exp(exponent * det_ln(base));
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  HYP_CHECK(n > 0);
  HYP_CHECK_MSG(theta >= 0.0 && theta < 1.0, "zipf theta must be in [0, 1)");
  if (theta == 0.0) return;  // uniform fast path needs no constants
  // The constants are a pure function of (n, theta), but the zetan_ sum is
  // O(n) in det_pow calls — constructing a fresh generator per client made
  // workload setup O(clients * keys) (the serving harness builds one stream
  // per client). Memoize per exact (n, theta-bits); the cached values are the
  // very doubles a cold construction computes, so every op stream stays
  // bit-identical (pinned by tests/serve_test.cpp).
  static std::vector<std::pair<std::pair<std::uint64_t, double>, Constants>> cache;
  for (const auto& e : cache) {
    if (e.first.first == n && e.first.second == theta) {
      c_ = e.second;
      return;
    }
  }
  double zeta2 = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    c_.zetan += 1.0 / det_pow(static_cast<double>(i), theta);
    if (i == 2) zeta2 = c_.zetan;
  }
  if (n == 1) zeta2 = c_.zetan;
  c_.alpha = 1.0 / (1.0 - theta);
  c_.eta = (1.0 - det_pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / c_.zetan);
  c_.half_pow = det_pow(0.5, theta);
  cache.emplace_back(std::make_pair(n, theta), c_);
}

std::uint64_t ZipfGenerator::next(Rng& rng) const {
  if (theta_ == 0.0) return rng.below(n_);
  const double u = rng.uniform();
  const double uz = u * c_.zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + c_.half_pow) return 1;
  const double span = static_cast<double>(n_);
  auto k = static_cast<std::uint64_t>(span * det_pow(c_.eta * u - c_.eta + 1.0, c_.alpha));
  return k >= n_ ? n_ - 1 : k;
}

std::vector<Op> client_ops(const WorkloadParams& p, int client_id) {
  HYP_CHECK(p.rate_ops_per_s > 0.0);
  HYP_CHECK(p.read_pct >= 0 && p.read_pct <= 100);
  Rng rng(mix_seed(p.seed, static_cast<std::uint64_t>(client_id) + 1));
  const ZipfGenerator zipf(p.keys, p.theta);
  const double mean_gap_ps = 1e12 / p.rate_ops_per_s;

  std::vector<Op> ops;
  ops.reserve(p.ops_per_client);
  double at_ps = 0;
  for (std::uint64_t i = 0; i < p.ops_per_client; ++i) {
    // Exponential inter-arrival: -ln(u) * mean, u in (0, 1]. Setting the low
    // mantissa bit keeps u strictly positive without biasing the draw.
    const double u =
        static_cast<double>((rng.next() >> 11) | 1) * 0x1.0p-53;
    at_ps += -det_ln(u) * mean_gap_ps;
    Op op;
    op.arrival = static_cast<Time>(at_ps);
    op.key = zipf.next(rng);
    op.is_update = rng.below(100) >= static_cast<std::uint64_t>(p.read_pct);
    op.delta = op.is_update ? static_cast<std::int64_t>(1 + (rng.next() & 0xff)) : 0;
    ops.push_back(op);
  }
  return ops;
}

std::uint64_t state_checksum(const std::vector<std::int64_t>& values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t k = 0; k < values.size(); ++k) {
    if (values[k] == 0) continue;
    h = (h ^ k) * 0x100000001b3ULL;
    h = (h ^ static_cast<std::uint64_t>(values[k])) * 0x100000001b3ULL;
  }
  return h;
}

Reference reference_from_streams(const std::vector<std::vector<Op>>& streams,
                                 std::uint64_t keys) {
  Reference ref;
  ref.final_value.assign(keys, 0);
  for (const auto& stream : streams) {
    for (const Op& op : stream) {
      if (op.is_update) {
        ref.final_value[op.key] += op.delta;
        ++ref.updates;
      } else {
        ++ref.reads;
      }
      if (op.arrival > ref.last_arrival) ref.last_arrival = op.arrival;
    }
  }
  return ref;
}

Reference serial_reference(const WorkloadParams& p, int clients) {
  std::vector<std::vector<Op>> streams;
  streams.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) streams.push_back(client_ops(p, c));
  return reference_from_streams(streams, p.keys);
}

std::uint64_t Reference::checksum() const { return state_checksum(final_value); }

}  // namespace hyp::serve
