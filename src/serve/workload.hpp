// Open-loop workload generation for the serving benchmark (docs/SERVING.md).
//
// A serving run is defined entirely by (seed, keys, theta, read_pct, rate,
// ops): every client derives its private op stream — Poisson arrival offsets,
// Zipf-skewed keys, read/update mix, update deltas — from Rng(mix(seed,
// client_id)) before any virtual time passes. The same streams are replayable
// host-side, which gives the harness an exact serial reference for the final
// store state (updates are commutative increments, so the expected per-key
// sums are schedule-independent).
//
// Portability: the YCSB Zipf formula and exponential inter-arrivals need
// pow/ln/exp, but libm is not correctly rounded and differs across libc
// versions — enough to flip a sampled key and break the byte-identical
// same-seed contract between hosts. det_ln/det_exp/det_pow below are built
// from IEEE +,-,*,/ (plus exact frexp/ldexp), so every platform computes the
// same bits (tests/serve_test.cpp pins the streams).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace hyp::serve {

// Deterministic natural log / exp / pow over positive doubles. Accuracy is a
// few ulps — plenty for sampling — and the result bits depend only on IEEE
// arithmetic, not on the host libm.
double det_ln(double x);
double det_exp(double x);
double det_pow(double base, double exponent);

// YCSB-style Zipf(theta) sampler over [0, n): key 0 is the hottest.
// theta = 0 is special-cased to an exact uniform draw (rng.below(n)), so
// "theta=0 degenerates to uniform" holds bit-for-bit, not just statistically.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t next(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  // The derived sampling constants, memoized per exact (n, theta) in the
  // constructor: the zetan sum is O(n) and the serving harness constructs one
  // generator per client (see workload.cpp).
  struct Constants {
    double zetan = 0;     // sum_{i=1..n} 1/i^theta
    double alpha = 0;     // 1 / (1 - theta)
    double eta = 0;
    double half_pow = 0;  // 0.5^theta
  };

  std::uint64_t n_;
  double theta_;
  Constants c_;
};

// One generated client operation. `arrival` is the open-loop scheduled time
// as an offset from the common epoch; the harness measures latency from it,
// so queueing delay (a client behind schedule) is part of the tail — the
// open-loop convention that avoids coordinated omission.
struct Op {
  Time arrival = 0;
  std::uint64_t key = 0;
  bool is_update = false;
  std::int64_t delta = 0;  // commutative increment applied by updates
};

struct WorkloadParams {
  std::uint64_t keys = 4096;
  double theta = 0.99;             // Zipf skew; 0 = uniform
  int read_pct = 90;               // reads per 100 ops
  std::uint64_t ops_per_client = 200;
  double rate_ops_per_s = 20000;   // per-client Poisson arrival rate
  std::uint64_t seed = 1;
};

// The full deterministic op stream of one client, arrivals ascending.
std::vector<Op> client_ops(const WorkloadParams& p, int client_id);

// Host-side serial replay of all `clients` streams: the expected final store
// state (per-key sums of update deltas) plus op-mix totals and the checksum
// the harness compares against.
struct Reference {
  std::vector<std::int64_t> final_value;  // size = keys
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  Time last_arrival = 0;  // max scheduled arrival across every stream
  std::uint64_t checksum() const;
};

Reference serial_reference(const WorkloadParams& p, int clients);

// Same replay over already-materialized (possibly transformed) streams — the
// serving harness edits op mixes per client (e.g. writer affinity) and the
// reference must replay exactly what ran.
Reference reference_from_streams(const std::vector<std::vector<Op>>& streams,
                                 std::uint64_t keys);

// FNV-1a over (key, value) pairs with nonzero values — the store-state
// checksum both the harness and the reference compute.
std::uint64_t state_checksum(const std::vector<std::int64_t>& values);

}  // namespace hyp::serve
