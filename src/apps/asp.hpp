// ASP (Figure 5): all-pairs shortest paths, Floyd's algorithm.
//
// "ASP uses a two-dimensional distance matrix... each thread owns a block of
// contiguous rows of the matrix. During each iteration the 'current' row of
// the matrix must be retrieved by all threads" (§4.1). The paper's problem
// is a 2000-node graph; the innermost loop does an integer add and compare
// while performing *three* object-locality checks — which is why ASP shows
// the largest java_pf improvement (64% on Myrinet). Based on the Jackal
// group's code, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/app_common.hpp"

namespace hyp::apps {

struct AspParams {
  int n = 256;              // graph size (paper: 2000)
  std::uint64_t seed = 42;  // random edge weights
  int threads = 0;          // 0 = one per node; >0 = extension-study override
};

// Integer add + compare + loop bookkeeping per inner iteration; small on
// purpose — the three locality checks dominate under java_ic.
inline constexpr std::uint64_t kAspIterCycles = 17;

// Deterministic input graph: weight(i,j) in [1, 100], 0 on the diagonal.
std::vector<std::int32_t> asp_make_graph(int n, std::uint64_t seed);

RunResult asp_parallel(const VmConfig& cfg, const AspParams& params);
// Checksum: sum of all finite distances after Floyd completion.
double asp_serial(const AspParams& params);

}  // namespace hyp::apps
