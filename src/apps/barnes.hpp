// Barnes (Figure 3): gravitational N-body, adapted from SPLASH-2 Barnes-Hut.
//
// "The communication pattern in Barnes is irregular as bodies move during
// the simulation ... and the program uses a load-balancing algorithm that
// dynamically assigns bodies to threads for processing" (§4.1). The paper
// runs 16K bodies for 6 timesteps.
//
// Structure per timestep (see DESIGN.md §7 for the simplifications):
//   1. bounding box: each thread reduces its own body block, merges into
//      shared extremes under a monitor;
//   2. octree build: thread 0 inserts every body into shared cell arrays
//      homed on node 0 (so the tree is remote for everyone else — the
//      irregular, node-count-growing communication the paper discusses);
//   3. forces: threads pull body *chunks* from a central work queue
//      (dynamic load balancing) and traverse the shared tree;
//   4. update: each thread integrates its own block.
// Monitor-based barriers separate the phases.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/app_common.hpp"

namespace hyp::apps {

struct BarnesParams {
  int bodies = 512;      // paper: 16384
  int steps = 3;         // paper: 6
  std::uint64_t seed = 11;
  double theta = 0.7;    // opening criterion
  double dt = 0.025;
  double eps = 0.05;     // softening
  int chunk = 32;        // work-queue granularity (bodies per unit)
};

// Core fp cost of one body-node interaction evaluation (distance, rsqrt,
// multiply-adds) at era CPU speeds.
inline constexpr std::uint64_t kBarnesInterCycles = 125;

struct BarnesBodies {
  std::vector<double> mass, px, py, pz, vx, vy, vz;
};

// Deterministic initial condition shared by the parallel and serial runs.
BarnesBodies barnes_make_bodies(int n, std::uint64_t seed);

RunResult barnes_parallel(const VmConfig& cfg, const BarnesParams& params);
// Checksum: sum of |position| components after the last step.
double barnes_serial(const BarnesParams& params);

}  // namespace hyp::apps
