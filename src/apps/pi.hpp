// Pi (Figure 1): Riemann-sum estimate of pi.
//
// "Embarrassingly parallel, with threads coordinating only to compute a
// global sum of the partial sums" (§4.1). Each thread integrates
// 4/(1+x^2) over its stripe on its *stack* — no shared-object traffic — and
// contributes once to a monitor-guarded shared accumulator. The paper uses
// 50 million intervals; the default here is scaled for quick runs.
#pragma once

#include "apps/app_common.hpp"

namespace hyp::apps {

struct PiParams {
  std::int64_t intervals = 2'000'000;  // paper: 50'000'000
};

// Modeled cost of one Riemann step (fp divide + multiply-adds) on the
// cluster CPUs; calibrated so a 1-node 200 MHz run lands in the Figure-1
// time range.
inline constexpr std::uint64_t kPiIterCycles = 32;

RunResult pi_parallel(const VmConfig& cfg, const PiParams& params);
double pi_serial(const PiParams& params);

}  // namespace hyp::apps
