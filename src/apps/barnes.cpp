#include "apps/barnes.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "common/rng.hpp"

namespace hyp::apps {

BarnesBodies barnes_make_bodies(int n, std::uint64_t seed) {
  Rng rng(seed);
  BarnesBodies b;
  auto resize = [&](auto& v) { v.resize(static_cast<std::size_t>(n)); };
  resize(b.mass);
  resize(b.px);
  resize(b.py);
  resize(b.pz);
  resize(b.vx);
  resize(b.vy);
  resize(b.vz);
  for (int i = 0; i < n; ++i) {
    b.mass[static_cast<std::size_t>(i)] = 1.0 / n;
    // Uniform ball of radius 1 (rejection), small random velocities.
    double x, y, z;
    do {
      x = 2 * rng.uniform() - 1;
      y = 2 * rng.uniform() - 1;
      z = 2 * rng.uniform() - 1;
    } while (x * x + y * y + z * z > 1.0);
    b.px[static_cast<std::size_t>(i)] = x;
    b.py[static_cast<std::size_t>(i)] = y;
    b.pz[static_cast<std::size_t>(i)] = z;
    b.vx[static_cast<std::size_t>(i)] = 0.1 * (2 * rng.uniform() - 1);
    b.vy[static_cast<std::size_t>(i)] = 0.1 * (2 * rng.uniform() - 1);
    b.vz[static_cast<std::size_t>(i)] = 0.1 * (2 * rng.uniform() - 1);
  }
  return b;
}

namespace {

// Octree child encoding: >= 0 subcell id, kEmptySlot, or encoded body.
constexpr std::int32_t kEmptySlot = -1;
constexpr std::int32_t encode_body(int b) { return -2 - b; }
constexpr int decode_body(std::int32_t c) { return -2 - c; }
constexpr bool is_body(std::int32_t c) { return c <= -2; }

int octant_of(double cx, double cy, double cz, double x, double y, double z) {
  return (x >= cx ? 1 : 0) | (y >= cy ? 2 : 0) | (z >= cz ? 4 : 0);
}

// Child-cell center offset for an octant.
void child_center(int oct, double half, double& cx, double& cy, double& cz) {
  const double q = half / 2;
  cx += (oct & 1) ? q : -q;
  cy += (oct & 2) ? q : -q;
  cz += (oct & 4) ? q : -q;
}

struct Blocks {
  int n, workers;
  int start(int w) const { return static_cast<int>(static_cast<std::int64_t>(n) * w / workers); }
  int owner(int b) const {
    // Inverse of start(); workers <= 12 so a linear scan is exact and cheap.
    for (int w = workers - 1; w >= 0; --w) {
      if (b >= start(w)) return w;
    }
    HYP_PANIC("body out of range");
  }
};

// ---------------------------------------------------------------------------
// Parallel implementation

template <typename P>
struct BarnesShared {
  // Per-worker body block handles (Java: arrays of arrays).
  GArray<std::uint64_t> tbl_mass, tbl_px, tbl_py, tbl_pz, tbl_vx, tbl_vy, tbl_vz, tbl_ax,
      tbl_ay, tbl_az;
  // Tree arrays (homed on node 0).
  GArray<std::int32_t> child;            // 8 per cell
  GArray<double> cx, cy, cz, half;       // cell geometry
  GArray<double> cmass, comx, comy, comz;  // mass moments
  GRef<std::int32_t> ncells;
  // Bounding box + work queue + reduction.
  GRef<double> bb_min_x, bb_min_y, bb_min_z, bb_max_x, bb_max_y, bb_max_z;
  GRef<std::int32_t> next_chunk;
  GRef<double> checksum;
  std::int32_t max_cells = 0;
};

// Body-array access through the handle tables, as compiled Java would
// dereference bodies[<owner>].px[<offset>].
template <typename P>
struct BodyAccess {
  Mem<P>& mem;
  const BarnesShared<P>& sh;
  Blocks blocks;

  double mass(int b) const { return field(sh.tbl_mass, b); }
  double px(int b) const { return field(sh.tbl_px, b); }
  double py(int b) const { return field(sh.tbl_py, b); }
  double pz(int b) const { return field(sh.tbl_pz, b); }

  double field(const GArray<std::uint64_t>& tbl, int b) const {
    const int w = blocks.owner(b);
    GArray<double> block{mem.aget(tbl, w)};
    return mem.aget(block, b - blocks.start(w));
  }
};

template <typename P>
struct TreeOps {
  JavaEnv& env;
  Mem<P>& mem;
  BarnesShared<P>& sh;
  BodyAccess<P>& bodies;
  const BarnesParams& params;

  std::int32_t new_cell(double x, double y, double z, double h) {
    const std::int32_t id = mem.get(sh.ncells);
    HYP_CHECK_MSG(id < sh.max_cells, "octree cell pool exhausted");
    mem.put(sh.ncells, id + 1);
    for (int oct = 0; oct < 8; ++oct) mem.aput(sh.child, id * 8 + oct, kEmptySlot);
    mem.aput(sh.cx, id, x);
    mem.aput(sh.cy, id, y);
    mem.aput(sh.cz, id, z);
    mem.aput(sh.half, id, h);
    env.charge_cycles(kBarnesInterCycles);
    return id;
  }

  void insert(int b) {
    const double x = bodies.px(b), y = bodies.py(b), z = bodies.pz(b);
    std::int32_t cur = 0;
    int depth = 0;
    for (;;) {
      HYP_CHECK_MSG(++depth < 128, "octree insertion too deep (coincident bodies?)");
      const double ccx = mem.aget(sh.cx, cur), ccy = mem.aget(sh.cy, cur),
                   ccz = mem.aget(sh.cz, cur);
      const double h = mem.aget(sh.half, cur);
      const int oct = octant_of(ccx, ccy, ccz, x, y, z);
      const std::int32_t slot = mem.aget(sh.child, cur * 8 + oct);
      env.charge_cycles(kBarnesInterCycles / 2);
      if (slot == kEmptySlot) {
        mem.aput(sh.child, cur * 8 + oct, encode_body(b));
        return;
      }
      if (is_body(slot)) {
        // Split: push the resident body one level down, retry from the new
        // subcell.
        const int b2 = decode_body(slot);
        double nx = ccx, ny = ccy, nz = ccz;
        child_center(oct, h, nx, ny, nz);
        const std::int32_t sub = new_cell(nx, ny, nz, h / 2);
        const int oct2 = octant_of(nx, ny, nz, bodies.px(b2), bodies.py(b2), bodies.pz(b2));
        mem.aput(sh.child, sub * 8 + oct2, encode_body(b2));
        mem.aput(sh.child, cur * 8 + oct, sub);
        cur = sub;
        continue;
      }
      cur = slot;  // descend into the subcell
    }
  }

  void compute_moments(std::int32_t cell) {
    double m = 0, sx = 0, sy = 0, sz = 0;
    for (int oct = 0; oct < 8; ++oct) {
      const std::int32_t slot = mem.aget(sh.child, cell * 8 + oct);
      if (slot == kEmptySlot) continue;
      if (is_body(slot)) {
        const int b = decode_body(slot);
        const double bm = bodies.mass(b);
        m += bm;
        sx += bm * bodies.px(b);
        sy += bm * bodies.py(b);
        sz += bm * bodies.pz(b);
      } else {
        compute_moments(slot);
        const double cm = mem.aget(sh.cmass, slot);
        m += cm;
        sx += cm * mem.aget(sh.comx, slot);
        sy += cm * mem.aget(sh.comy, slot);
        sz += cm * mem.aget(sh.comz, slot);
      }
      env.charge_cycles(kBarnesInterCycles / 2);
    }
    mem.aput(sh.cmass, cell, m);
    mem.aput(sh.comx, cell, m != 0 ? sx / m : 0);
    mem.aput(sh.comy, cell, m != 0 ? sy / m : 0);
    mem.aput(sh.comz, cell, m != 0 ? sz / m : 0);
  }

  void accumulate_force(int b, std::int32_t cell, double x, double y, double z, double& ax,
                        double& ay, double& az) {
    const double theta2 = params.theta * params.theta;
    for (int oct = 0; oct < 8; ++oct) {
      const std::int32_t slot = mem.aget(sh.child, cell * 8 + oct);
      if (slot == kEmptySlot) continue;
      if (is_body(slot)) {
        const int b2 = decode_body(slot);
        if (b2 == b) continue;
        interact(bodies.mass(b2), bodies.px(b2), bodies.py(b2), bodies.pz(b2), x, y, z, ax, ay,
                 az);
      } else {
        const double dx = mem.aget(sh.comx, slot) - x;
        const double dy = mem.aget(sh.comy, slot) - y;
        const double dz = mem.aget(sh.comz, slot) - z;
        const double d2 = dx * dx + dy * dy + dz * dz;
        const double size = 2 * mem.aget(sh.half, slot);
        if (size * size < theta2 * d2) {
          interact(mem.aget(sh.cmass, slot), mem.aget(sh.comx, slot), mem.aget(sh.comy, slot),
                   mem.aget(sh.comz, slot), x, y, z, ax, ay, az);
        } else {
          accumulate_force(b, slot, x, y, z, ax, ay, az);
        }
      }
    }
  }

  void interact(double m, double ox, double oy, double oz, double x, double y, double z,
                double& ax, double& ay, double& az) {
    const double dx = ox - x, dy = oy - y, dz = oz - z;
    const double d2 = dx * dx + dy * dy + dz * dz + params.eps * params.eps;
    const double inv = 1.0 / std::sqrt(d2);
    const double f = m * inv * inv * inv;
    ax += f * dx;
    ay += f * dy;
    az += f * dz;
    env.charge_cycles(kBarnesInterCycles);
  }
};

template <typename P>
double run(hyperion::HyperionVM& vm, const BarnesParams& params) {
  double checksum = 0;
  vm.run_main([&](JavaEnv& main) {
    const int n = params.bodies;
    const int workers = vm.nodes();
    HYP_CHECK_MSG(n >= workers, "fewer bodies than nodes");
    const auto init = barnes_make_bodies(n, params.seed);
    const Blocks blocks{n, workers};

    BarnesShared<P> sh;
    sh.max_cells = 8 * n + 256;
    auto tbl = [&] { return main.new_array<std::uint64_t>(workers); };
    sh.tbl_mass = tbl();
    sh.tbl_px = tbl();
    sh.tbl_py = tbl();
    sh.tbl_pz = tbl();
    sh.tbl_vx = tbl();
    sh.tbl_vy = tbl();
    sh.tbl_vz = tbl();
    sh.tbl_ax = tbl();
    sh.tbl_ay = tbl();
    sh.tbl_az = tbl();
    sh.child = main.new_array<std::int32_t>(static_cast<std::int64_t>(sh.max_cells) * 8);
    sh.cx = main.new_array<double>(sh.max_cells);
    sh.cy = main.new_array<double>(sh.max_cells);
    sh.cz = main.new_array<double>(sh.max_cells);
    sh.half = main.new_array<double>(sh.max_cells);
    sh.cmass = main.new_array<double>(sh.max_cells);
    sh.comx = main.new_array<double>(sh.max_cells);
    sh.comy = main.new_array<double>(sh.max_cells);
    sh.comz = main.new_array<double>(sh.max_cells);
    sh.ncells = main.new_cell<std::int32_t>(0);
    sh.bb_min_x = main.new_cell<double>(0);
    sh.bb_min_y = main.new_cell<double>(0);
    sh.bb_min_z = main.new_cell<double>(0);
    sh.bb_max_x = main.new_cell<double>(0);
    sh.bb_max_y = main.new_cell<double>(0);
    sh.bb_max_z = main.new_cell<double>(0);
    sh.next_chunk = main.new_cell<std::int32_t>(0);
    sh.checksum = main.new_cell<double>(0);

    auto barrier = hyperion::japi::JBarrier::create(main, workers);

    std::vector<JThread> threads;
    for (int w = 0; w < workers; ++w) {
      threads.push_back(main.start_thread("barnes" + std::to_string(w), [=, &init](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        BodyAccess<P> bodies{mem, sh, blocks};
        BarnesShared<P> shared = sh;  // local copy of the handle struct
        TreeOps<P> tree{env, mem, shared, bodies, params};
        const int lo = blocks.start(w);
        const int hi = blocks.start(w + 1);
        const int count = hi - lo;

        // Init: allocate and fill the owned block (home = this node).
        auto blk = [&] { return env.new_array<double>(count); };
        GArray<double> b_mass = blk(), b_px = blk(), b_py = blk(), b_pz = blk(), b_vx = blk(),
                       b_vy = blk(), b_vz = blk(), b_ax = blk(), b_ay = blk(), b_az = blk();
        for (int i = 0; i < count; ++i) {
          const auto g = static_cast<std::size_t>(lo + i);
          mem.aput(b_mass, i, init.mass[g]);
          mem.aput(b_px, i, init.px[g]);
          mem.aput(b_py, i, init.py[g]);
          mem.aput(b_pz, i, init.pz[g]);
          mem.aput(b_vx, i, init.vx[g]);
          mem.aput(b_vy, i, init.vy[g]);
          mem.aput(b_vz, i, init.vz[g]);
          env.charge_cycles(20);
        }
        env.synchronized(sh.tbl_mass.header, [&] {
          mem.aput(sh.tbl_mass, w, b_mass.header);
          mem.aput(sh.tbl_px, w, b_px.header);
          mem.aput(sh.tbl_py, w, b_py.header);
          mem.aput(sh.tbl_pz, w, b_pz.header);
          mem.aput(sh.tbl_vx, w, b_vx.header);
          mem.aput(sh.tbl_vy, w, b_vy.header);
          mem.aput(sh.tbl_vz, w, b_vz.header);
          mem.aput(sh.tbl_ax, w, b_ax.header);
          mem.aput(sh.tbl_ay, w, b_ay.header);
          mem.aput(sh.tbl_az, w, b_az.header);
        });
        barrier.template await<P>(env);

        const int chunk_count = (n + params.chunk - 1) / params.chunk;
        for (int step = 0; step < params.steps; ++step) {
          // Phase 1 (worker 0): reset box + queue.
          if (w == 0) {
            env.synchronized(sh.bb_min_x.addr, [&] {
              const double inf = std::numeric_limits<double>::infinity();
              mem.put(sh.bb_min_x, inf);
              mem.put(sh.bb_min_y, inf);
              mem.put(sh.bb_min_z, inf);
              mem.put(sh.bb_max_x, -inf);
              mem.put(sh.bb_max_y, -inf);
              mem.put(sh.bb_max_z, -inf);
            });
            env.synchronized(sh.next_chunk.addr, [&] { mem.put(sh.next_chunk, 0); });
          }
          barrier.template await<P>(env);

          // Phase 2: bounding box over the owned block, monitor merge.
          {
            double mnx = std::numeric_limits<double>::infinity(), mny = mnx, mnz = mnx;
            double mxx = -mnx, mxy = -mnx, mxz = -mnx;
            for (int i = 0; i < count; ++i) {
              const double x = mem.aget(b_px, i), y = mem.aget(b_py, i), z = mem.aget(b_pz, i);
              mnx = std::min(mnx, x);
              mny = std::min(mny, y);
              mnz = std::min(mnz, z);
              mxx = std::max(mxx, x);
              mxy = std::max(mxy, y);
              mxz = std::max(mxz, z);
              env.charge_cycles(12);
            }
            env.synchronized(sh.bb_min_x.addr, [&] {
              mem.put(sh.bb_min_x, std::min(mem.get(sh.bb_min_x), mnx));
              mem.put(sh.bb_min_y, std::min(mem.get(sh.bb_min_y), mny));
              mem.put(sh.bb_min_z, std::min(mem.get(sh.bb_min_z), mnz));
              mem.put(sh.bb_max_x, std::max(mem.get(sh.bb_max_x), mxx));
              mem.put(sh.bb_max_y, std::max(mem.get(sh.bb_max_y), mxy));
              mem.put(sh.bb_max_z, std::max(mem.get(sh.bb_max_z), mxz));
            });
          }
          barrier.template await<P>(env);

          // Phase 3 (worker 0): build the shared octree.
          if (w == 0) {
            const double mnx = mem.get(sh.bb_min_x), mny = mem.get(sh.bb_min_y),
                         mnz = mem.get(sh.bb_min_z);
            const double mxx = mem.get(sh.bb_max_x), mxy = mem.get(sh.bb_max_y),
                         mxz = mem.get(sh.bb_max_z);
            const double cxm = 0.5 * (mnx + mxx), cym = 0.5 * (mny + mxy),
                         czm = 0.5 * (mnz + mxz);
            double h = 0.5 * std::max({mxx - mnx, mxy - mny, mxz - mnz});
            h = h * 1.0001 + 1e-9;
            mem.put(sh.ncells, 0);
            tree.new_cell(cxm, cym, czm, h);
            for (int b = 0; b < n; ++b) tree.insert(b);
            tree.compute_moments(0);
          }
          barrier.template await<P>(env);

          // Phase 4: forces, dynamically load balanced via the central queue.
          for (;;) {
            std::int32_t c = -1;
            env.synchronized(sh.next_chunk.addr, [&] {
              const std::int32_t idx = mem.get(sh.next_chunk);
              if (idx < chunk_count) {
                mem.put(sh.next_chunk, idx + 1);
                c = idx;
              }
            });
            if (c < 0) break;
            const int b_lo = c * params.chunk;
            const int b_hi = std::min(n, b_lo + params.chunk);
            for (int b = b_lo; b < b_hi; ++b) {
              const double x = bodies.px(b), y = bodies.py(b), z = bodies.pz(b);
              double ax = 0, ay = 0, az = 0;
              tree.accumulate_force(b, 0, x, y, z, ax, ay, az);
              const int ow = blocks.owner(b);
              GArray<double> oax{mem.aget(sh.tbl_ax, ow)};
              GArray<double> oay{mem.aget(sh.tbl_ay, ow)};
              GArray<double> oaz{mem.aget(sh.tbl_az, ow)};
              const int off = b - blocks.start(ow);
              mem.aput(oax, off, ax);
              mem.aput(oay, off, ay);
              mem.aput(oaz, off, az);
            }
          }
          barrier.template await<P>(env);

          // Phase 5: integrate the owned block.
          for (int i = 0; i < count; ++i) {
            const double vx = mem.aget(b_vx, i) + params.dt * mem.aget(b_ax, i);
            const double vy = mem.aget(b_vy, i) + params.dt * mem.aget(b_ay, i);
            const double vz = mem.aget(b_vz, i) + params.dt * mem.aget(b_az, i);
            mem.aput(b_vx, i, vx);
            mem.aput(b_vy, i, vy);
            mem.aput(b_vz, i, vz);
            mem.aput(b_px, i, mem.aget(b_px, i) + params.dt * vx);
            mem.aput(b_py, i, mem.aget(b_py, i) + params.dt * vy);
            mem.aput(b_pz, i, mem.aget(b_pz, i) + params.dt * vz);
            env.charge_cycles(30);
          }
          barrier.template await<P>(env);
        }

        // Checksum of the owned block.
        double local = 0;
        for (int i = 0; i < count; ++i) {
          local += mem.aget(b_px, i) + mem.aget(b_py, i) + mem.aget(b_pz, i);
          env.charge_cycles(6);
        }
        env.synchronized(sh.checksum.addr,
                         [&] { mem.put(sh.checksum, mem.get(sh.checksum) + local); });
      }));
    }
    for (auto& t : threads) main.join(t);
    Mem<P> mem(main.ctx());
    checksum = mem.get(sh.checksum);
  });
  return checksum;
}

// ---------------------------------------------------------------------------
// Serial reference: the identical algorithm on plain vectors, with identical
// arithmetic and traversal order, so per-body values match bit for bit.

struct SerialBarnes {
  const BarnesParams& params;
  BarnesBodies b;
  int n;
  std::vector<std::int32_t> child;
  std::vector<double> cx, cy, cz, half, cmass, comx, comy, comz;
  std::int32_t ncells = 0;
  std::int32_t max_cells;

  explicit SerialBarnes(const BarnesParams& p)
      : params(p), b(barnes_make_bodies(p.bodies, p.seed)), n(p.bodies),
        max_cells(8 * p.bodies + 256) {
    child.resize(static_cast<std::size_t>(max_cells) * 8);
    for (auto* v : {&cx, &cy, &cz, &half, &cmass, &comx, &comy, &comz}) {
      v->resize(static_cast<std::size_t>(max_cells));
    }
  }

  std::int32_t new_cell(double x, double y, double z, double h) {
    const std::int32_t id = ncells++;
    HYP_CHECK(id < max_cells);
    for (int oct = 0; oct < 8; ++oct) child[static_cast<std::size_t>(id) * 8 + oct] = kEmptySlot;
    cx[static_cast<std::size_t>(id)] = x;
    cy[static_cast<std::size_t>(id)] = y;
    cz[static_cast<std::size_t>(id)] = z;
    half[static_cast<std::size_t>(id)] = h;
    return id;
  }

  void insert(int body) {
    const double x = b.px[static_cast<std::size_t>(body)], y = b.py[static_cast<std::size_t>(body)],
                 z = b.pz[static_cast<std::size_t>(body)];
    std::int32_t cur = 0;
    for (;;) {
      const double ccx = cx[static_cast<std::size_t>(cur)], ccy = cy[static_cast<std::size_t>(cur)],
                   ccz = cz[static_cast<std::size_t>(cur)];
      const double h = half[static_cast<std::size_t>(cur)];
      const int oct = octant_of(ccx, ccy, ccz, x, y, z);
      const std::int32_t slot = child[static_cast<std::size_t>(cur) * 8 + oct];
      if (slot == kEmptySlot) {
        child[static_cast<std::size_t>(cur) * 8 + oct] = encode_body(body);
        return;
      }
      if (is_body(slot)) {
        const int b2 = decode_body(slot);
        double nx = ccx, ny = ccy, nz = ccz;
        child_center(oct, h, nx, ny, nz);
        const std::int32_t sub = new_cell(nx, ny, nz, h / 2);
        const int oct2 =
            octant_of(nx, ny, nz, b.px[static_cast<std::size_t>(b2)],
                      b.py[static_cast<std::size_t>(b2)], b.pz[static_cast<std::size_t>(b2)]);
        child[static_cast<std::size_t>(sub) * 8 + oct2] = encode_body(b2);
        child[static_cast<std::size_t>(cur) * 8 + oct] = sub;
        cur = sub;
        continue;
      }
      cur = slot;
    }
  }

  void compute_moments(std::int32_t cell) {
    double m = 0, sx = 0, sy = 0, sz = 0;
    for (int oct = 0; oct < 8; ++oct) {
      const std::int32_t slot = child[static_cast<std::size_t>(cell) * 8 + oct];
      if (slot == kEmptySlot) continue;
      if (is_body(slot)) {
        const auto g = static_cast<std::size_t>(decode_body(slot));
        m += b.mass[g];
        sx += b.mass[g] * b.px[g];
        sy += b.mass[g] * b.py[g];
        sz += b.mass[g] * b.pz[g];
      } else {
        compute_moments(slot);
        const auto s = static_cast<std::size_t>(slot);
        m += cmass[s];
        sx += cmass[s] * comx[s];
        sy += cmass[s] * comy[s];
        sz += cmass[s] * comz[s];
      }
    }
    const auto s = static_cast<std::size_t>(cell);
    cmass[s] = m;
    comx[s] = m != 0 ? sx / m : 0;
    comy[s] = m != 0 ? sy / m : 0;
    comz[s] = m != 0 ? sz / m : 0;
  }

  void interact(double m, double ox, double oy, double oz, double x, double y, double z,
                double& ax, double& ay, double& az) {
    const double dx = ox - x, dy = oy - y, dz = oz - z;
    const double d2 = dx * dx + dy * dy + dz * dz + params.eps * params.eps;
    const double inv = 1.0 / std::sqrt(d2);
    const double f = m * inv * inv * inv;
    ax += f * dx;
    ay += f * dy;
    az += f * dz;
  }

  void accumulate_force(int body, std::int32_t cell, double x, double y, double z, double& ax,
                        double& ay, double& az) {
    const double theta2 = params.theta * params.theta;
    for (int oct = 0; oct < 8; ++oct) {
      const std::int32_t slot = child[static_cast<std::size_t>(cell) * 8 + oct];
      if (slot == kEmptySlot) continue;
      if (is_body(slot)) {
        const int b2 = decode_body(slot);
        if (b2 == body) continue;
        const auto g = static_cast<std::size_t>(b2);
        interact(b.mass[g], b.px[g], b.py[g], b.pz[g], x, y, z, ax, ay, az);
      } else {
        const auto s = static_cast<std::size_t>(slot);
        const double dx = comx[s] - x, dy = comy[s] - y, dz = comz[s] - z;
        const double d2 = dx * dx + dy * dy + dz * dz;
        const double size = 2 * half[s];
        if (size * size < theta2 * d2) {
          interact(cmass[s], comx[s], comy[s], comz[s], x, y, z, ax, ay, az);
        } else {
          accumulate_force(body, slot, x, y, z, ax, ay, az);
        }
      }
    }
  }

  double run() {
    std::vector<double> ax(static_cast<std::size_t>(n)), ay(static_cast<std::size_t>(n)),
        az(static_cast<std::size_t>(n));
    for (int step = 0; step < params.steps; ++step) {
      double mnx = std::numeric_limits<double>::infinity(), mny = mnx, mnz = mnx;
      double mxx = -mnx, mxy = -mnx, mxz = -mnx;
      for (int i = 0; i < n; ++i) {
        const auto g = static_cast<std::size_t>(i);
        mnx = std::min(mnx, b.px[g]);
        mny = std::min(mny, b.py[g]);
        mnz = std::min(mnz, b.pz[g]);
        mxx = std::max(mxx, b.px[g]);
        mxy = std::max(mxy, b.py[g]);
        mxz = std::max(mxz, b.pz[g]);
      }
      const double cxm = 0.5 * (mnx + mxx), cym = 0.5 * (mny + mxy), czm = 0.5 * (mnz + mxz);
      double h = 0.5 * std::max({mxx - mnx, mxy - mny, mxz - mnz});
      h = h * 1.0001 + 1e-9;
      ncells = 0;
      new_cell(cxm, cym, czm, h);
      for (int body = 0; body < n; ++body) insert(body);
      compute_moments(0);
      for (int body = 0; body < n; ++body) {
        const auto g = static_cast<std::size_t>(body);
        double fx = 0, fy = 0, fz = 0;
        accumulate_force(body, 0, b.px[g], b.py[g], b.pz[g], fx, fy, fz);
        ax[g] = fx;
        ay[g] = fy;
        az[g] = fz;
      }
      for (int i = 0; i < n; ++i) {
        const auto g = static_cast<std::size_t>(i);
        b.vx[g] += params.dt * ax[g];
        b.vy[g] += params.dt * ay[g];
        b.vz[g] += params.dt * az[g];
        b.px[g] += params.dt * b.vx[g];
        b.py[g] += params.dt * b.vy[g];
        b.pz[g] += params.dt * b.vz[g];
      }
    }
    double sum = 0;
    for (int i = 0; i < n; ++i) {
      const auto g = static_cast<std::size_t>(i);
      sum += b.px[g] + b.py[g] + b.pz[g];
    }
    return sum;
  }
};

}  // namespace

RunResult barnes_parallel(const VmConfig& cfg, const BarnesParams& params) {
  hyperion::HyperionVM vm(cfg);
  RunResult out;
  dsm::with_policy(cfg.protocol, cfg.race != nullptr, [&](auto policy) {
    using P = decltype(policy);
    out.value = run<P>(vm, params);
  });
  out.elapsed = vm.elapsed();
  out.stats = vm.stats();
  capture_engine_tallies(out, vm);
  return out;
}

double barnes_serial(const BarnesParams& params) {
  SerialBarnes s(params);
  return s.run();
}

}  // namespace hyp::apps
