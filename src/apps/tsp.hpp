// TSP (Figure 4): branch-and-bound traveling salesperson.
//
// "TSP uses a central queue of work to be performed, as well as centrally
// storing the best solution seen so far. These 'central' data structures are
// stored on a single node, protected by a Java monitor, and must be fetched
// by threads executing on other nodes" (§4.1). Work units are tour prefixes
// of fixed depth; workers pop them from the monitor-guarded queue and search
// the remainder depth-first, pruning against the (monitor-updated) global
// bound. Unsynchronized bound reads may be stale — stale bounds are only
// ever too large, so pruning stays sound; that staleness is precisely the
// cached-object behaviour the protocols manage. The paper solves 17 cities.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/app_common.hpp"

namespace hyp::apps {

struct TspParams {
  int cities = 11;          // paper: 17 (hours of search at era speeds)
  std::uint64_t seed = 7;   // random symmetric distance matrix
};

// Candidate-expansion core cost (distance add, compare, visited bookkeeping).
inline constexpr std::uint64_t kTspStepCycles = 25;

// Deterministic symmetric distance matrix, weights in [1, 100].
std::vector<std::int32_t> tsp_make_distances(int n, std::uint64_t seed);

RunResult tsp_parallel(const VmConfig& cfg, const TspParams& params);
// Optimal tour length (exact, deterministic).
std::int32_t tsp_serial(const TspParams& params);

}  // namespace hyp::apps
