// Shared scaffolding for the five benchmark programs of §4.1.
//
// Each application is written the way Hyperion's java2c compiler emitted it:
// a main "Java thread" that allocates shared objects and starts one
// computation thread per processor (the paper's configuration), with every
// shared access going through the protocol's get/put primitives. Apps are
// templated over the access policy and report a numeric checksum validated
// against a sequential reference implementation.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

namespace hyp::apps {

using hyperion::GArray;
using hyperion::GRef;
using hyperion::JavaEnv;
using hyperion::JThread;
using hyperion::Mem;
using hyperion::VmConfig;

// What every benchmark run reports: the program's numeric result (for
// validation), the virtual execution time (the y-axis of Figures 1-5), the
// aggregated event counters, and the engine's internal tallies (event count
// and context switches) — the latter pin down the *schedule* itself, which
// the determinism golden test asserts bit-for-bit across host-side
// optimisations (see docs/PERFORMANCE.md).
struct RunResult {
  double value = 0;
  Time elapsed = 0;
  Stats stats;
  std::uint64_t events_processed = 0;
  std::uint64_t context_switches = 0;
};

// Fills the engine tallies of `out` from a finished VM.
inline void capture_engine_tallies(RunResult& out, hyperion::HyperionVM& vm) {
  out.events_processed = vm.cluster().engine().events_processed();
  out.context_switches = vm.cluster().engine().context_switches();
}

// Builds the VmConfig for one experiment point.
inline VmConfig make_config(const std::string& cluster_name, dsm::ProtocolKind protocol,
                            int nodes, std::size_t region_bytes = std::size_t{256} << 20) {
  VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::by_name(cluster_name);
  cfg.nodes = nodes;
  cfg.protocol = protocol;
  cfg.region_bytes = region_bytes;
  return cfg;
}

}  // namespace hyp::apps
