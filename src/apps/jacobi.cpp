#include "apps/jacobi.hpp"

#include <vector>

namespace hyp::apps {

namespace {

// Row ownership: interior rows 1..n-2 are split into contiguous blocks.
struct Block {
  int lo, hi;  // owned interior rows [lo, hi)
};

Block block_for(int worker, int workers, int n) {
  const int interior = n - 2;
  const int lo = 1 + interior * worker / workers;
  const int hi = 1 + interior * (worker + 1) / workers;
  return {lo, hi};
}

template <typename P>
double run(hyperion::HyperionVM& vm, const JacobiParams& params) {
  double checksum = 0;
  vm.run_main([&](JavaEnv& main) {
    const int n = params.n;
    const int workers = params.threads > 0 ? params.threads : vm.nodes();
    HYP_CHECK_MSG(n - 2 >= workers, "mesh too small for the thread count");

    // double[][] as Java sees it: shared arrays of row handles.
    auto rows_a = main.new_array<std::uint64_t>(n);
    auto rows_b = main.new_array<std::uint64_t>(n);
    auto global_sum = main.new_cell<double>(0.0);
    auto barrier = hyperion::japi::JBarrier::create(main, workers);

    std::vector<JThread> threads;
    for (int w = 0; w < workers; ++w) {
      const Block blk = block_for(w, workers, n);
      threads.push_back(main.start_thread("jacobi" + std::to_string(w), [=](JavaEnv& env) {
        Mem<P> mem(env.ctx());

        // Allocate and initialize the owned rows (home = this node). The
        // first worker also owns boundary row 0, the last row n-1.
        const int alloc_lo = (w == 0) ? 0 : blk.lo;
        const int alloc_hi = (w == workers - 1) ? n : blk.hi;
        for (int i = alloc_lo; i < alloc_hi; ++i) {
          auto row_a = env.new_array<double>(n);
          auto row_b = env.new_array<double>(n);
          const bool border_row = (i == 0 || i == n - 1);
          for (int j = 0; j < n; ++j) {
            const bool border = border_row || j == 0 || j == n - 1;
            const double v = border ? params.boundary_temp : 0.0;
            mem.aput(row_a, j, v);
            mem.aput(row_b, j, v);
            env.charge_cycles(4);
          }
          mem.aput(rows_a, i, row_a.header);
          mem.aput(rows_b, i, row_b.header);
        }
        barrier.template await<P>(env);

        // Time stepping: read `src`, write `dst`, swap.
        bool a_is_src = true;
        for (int step = 0; step < params.steps; ++step) {
          const auto src_tbl = a_is_src ? rows_a : rows_b;
          const auto dst_tbl = a_is_src ? rows_b : rows_a;
          for (int i = blk.lo; i < blk.hi; ++i) {
            // Row handles hoisted per row, as optimized generated code did.
            GArray<double> north{mem.aget(src_tbl, i - 1)};
            GArray<double> here{mem.aget(src_tbl, i)};
            GArray<double> south{mem.aget(src_tbl, i + 1)};
            GArray<double> out{mem.aget(dst_tbl, i)};
            for (int j = 1; j < n - 1; ++j) {
              const double v = 0.25 * (mem.aget(north, j) + mem.aget(south, j) +
                                       mem.aget(here, j - 1) + mem.aget(here, j + 1));
              mem.aput(out, j, v);
              env.charge_cycles(kJacobiCellCycles);
            }
          }
          barrier.template await<P>(env);
          a_is_src = !a_is_src;
        }

        // Checksum of the owned block of the final mesh.
        const auto final_tbl = a_is_src ? rows_a : rows_b;
        double local = 0;
        for (int i = blk.lo; i < blk.hi; ++i) {
          GArray<double> row{mem.aget(final_tbl, i)};
          for (int j = 1; j < n - 1; ++j) {
            local += mem.aget(row, j);
            env.charge_cycles(4);
          }
        }
        env.synchronized(global_sum.addr,
                         [&] { mem.put(global_sum, mem.get(global_sum) + local); });
      }));
    }
    for (auto& t : threads) main.join(t);
    Mem<P> mem(main.ctx());
    checksum = mem.get(global_sum);
  });
  return checksum;
}

}  // namespace

RunResult jacobi_parallel(const VmConfig& cfg, const JacobiParams& params) {
  hyperion::HyperionVM vm(cfg);
  RunResult out;
  dsm::with_policy(cfg.protocol, cfg.race != nullptr, [&](auto policy) {
    using P = decltype(policy);
    out.value = run<P>(vm, params);
  });
  out.elapsed = vm.elapsed();
  out.stats = vm.stats();
  capture_engine_tallies(out, vm);
  return out;
}

double jacobi_serial(const JacobiParams& params) {
  const int n = params.n;
  std::vector<std::vector<double>> a(static_cast<std::size_t>(n),
                                     std::vector<double>(static_cast<std::size_t>(n), 0.0));
  std::vector<std::vector<double>> b = a;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == 0 || i == n - 1 || j == 0 || j == n - 1) {
        a[i][j] = b[i][j] = params.boundary_temp;
      }
    }
  }
  auto* src = &a;
  auto* dst = &b;
  for (int step = 0; step < params.steps; ++step) {
    for (int i = 1; i < n - 1; ++i) {
      for (int j = 1; j < n - 1; ++j) {
        (*dst)[i][j] = 0.25 * ((*src)[i - 1][j] + (*src)[i + 1][j] + (*src)[i][j - 1] +
                               (*src)[i][j + 1]);
      }
    }
    std::swap(src, dst);
  }
  double sum = 0;
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) sum += (*src)[i][j];
  }
  return sum;
}

}  // namespace hyp::apps
