#include "apps/litmus.hpp"

#include <algorithm>

#include "hyperion/japi.hpp"

namespace hyp::apps {

namespace {

using hyperion::japi::JBarrier;

// Modeled per-operation app cost, so the programs advance virtual time.
constexpr std::uint64_t kLitmusOpCycles = 50;

// --- counters ---------------------------------------------------------------
// Racy: read-modify-write on one shared cell with no ordering between the
// workers (write-write and read-write conflicts). Clean twin: the same
// increments inside the cell's own monitor.
template <typename P>
double counter(hyperion::HyperionVM& vm, const LitmusParams& p, bool locked) {
  double result = 0;
  vm.run_main([&](JavaEnv& main) {
    Mem<P> mem(main.ctx());
    auto cell = main.new_cell<std::int32_t>(0);
    std::vector<JThread> threads;
    for (int w = 0; w < p.workers; ++w) {
      threads.push_back(main.start_thread("cnt" + std::to_string(w), [=](JavaEnv& env) {
        Mem<P> m(env.ctx());
        for (int i = 0; i < p.reps; ++i) {
          env.charge_cycles(kLitmusOpCycles);
          if (locked) {
            env.synchronized(cell.addr, [&] { m.put(cell, m.get(cell) + 1); });
          } else {
            m.put(cell, m.get(cell) + 1);
          }
        }
      }));
    }
    for (auto& t : threads) main.join(t);
    result = mem.get(cell);
  });
  return result;
}

// --- stencil halo -----------------------------------------------------------
// Each worker owns one page-sized block of a shared grid: phase 1 writes its
// own cells, phase 2 reads the right neighbour's first cell (the halo).
// Clean twin: a JBarrier between the phases orders write before read; the
// racy variant omits it, so the neighbour's read races the owner's writes.
// Blocks are page-strided, so the clean variant is quiet even at page
// granularity (no two workers ever touch the same page concurrently).
template <typename P>
double halo(hyperion::HyperionVM& vm, const LitmusParams& p, bool barrier) {
  double result = 0;
  vm.run_main([&](JavaEnv& main) {
    Mem<P> mem(main.ctx());
    const auto stride = static_cast<std::int64_t>(vm.dsm().layout().page_bytes() /
                                                  sizeof(std::int32_t));
    const int writes = std::min(p.reps, static_cast<int>(stride));
    auto grid = main.new_array<std::int32_t>(stride * p.workers);
    auto bar = JBarrier::create(main, p.workers);
    std::vector<JThread> threads;
    for (int w = 0; w < p.workers; ++w) {
      threads.push_back(main.start_thread("halo" + std::to_string(w), [=](JavaEnv& env) {
        Mem<P> m(env.ctx());
        for (int i = 0; i < writes; ++i) {
          env.charge_cycles(kLitmusOpCycles);
          m.aput(grid, static_cast<std::int64_t>(w) * stride + i, w * 1000 + i);
        }
        if (barrier) bar.template await<P>(env);
        const int nb = (w + 1) % p.workers;
        env.charge_cycles(kLitmusOpCycles);
        (void)m.aget(grid, static_cast<std::int64_t>(nb) * stride);  // the halo read
      }));
    }
    for (auto& t : threads) main.join(t);
    for (int w = 0; w < p.workers; ++w) {
      result += mem.aget(grid, static_cast<std::int64_t>(w) * stride);
    }
  });
  return result;
}

// --- publication ------------------------------------------------------------
// Racy: the publisher stores the payload then raises a plain flag; the
// subscriber reads both with no monitor anywhere (write-read conflicts on
// flag and payload). Clean twin: classic monitor wait/notify hand-off.
template <typename P>
double publication(hyperion::HyperionVM& vm, bool monitored) {
  double result = 0;
  vm.run_main([&](JavaEnv& main) {
    Mem<P> mem(main.ctx());
    auto payload = main.new_cell<std::int32_t>(0);
    auto flag = main.new_cell<std::int32_t>(0);
    const dsm::Gva lock = flag.addr;
    auto pub = main.start_thread("pub", [=](JavaEnv& env) {
      Mem<P> m(env.ctx());
      env.charge_cycles(kLitmusOpCycles);
      if (monitored) {
        env.monitor_enter(lock);
        m.put(payload, 42);
        m.put(flag, 1);
        env.notify_all(lock);
        env.monitor_exit(lock);
      } else {
        m.put(payload, 42);
        m.put(flag, 1);
      }
    });
    auto sub = main.start_thread("sub", [=](JavaEnv& env) {
      Mem<P> m(env.ctx());
      env.charge_cycles(kLitmusOpCycles);
      if (monitored) {
        env.monitor_enter(lock);
        while (m.get(flag) == 0) env.wait(lock);
        (void)m.get(payload);
        env.monitor_exit(lock);
      } else {
        (void)m.get(flag);     // may observe the raise mid-publication
        (void)m.get(payload);  // may observe a torn hand-off
      }
    });
    main.join(pub);
    main.join(sub);
    result = mem.get(payload) + mem.get(flag);
  });
  return result;
}

template <typename P>
double dispatch(hyperion::HyperionVM& vm, const std::string& name, const LitmusParams& p) {
  if (name == "unsync_counter") return counter<P>(vm, p, /*locked=*/false);
  if (name == "sync_counter") return counter<P>(vm, p, /*locked=*/true);
  if (name == "halo_no_barrier") return halo<P>(vm, p, /*barrier=*/false);
  if (name == "halo_barrier") return halo<P>(vm, p, /*barrier=*/true);
  if (name == "flag_no_monitor") return publication<P>(vm, /*monitored=*/false);
  if (name == "wait_notify") return publication<P>(vm, /*monitored=*/true);
  HYP_PANIC("unknown litmus program");
}

}  // namespace

const std::vector<LitmusProgram>& litmus_programs() {
  static const std::vector<LitmusProgram> kPrograms = {
      {"unsync_counter", true, "N workers increment one cell, no monitor"},
      {"sync_counter", false, "the same increments under the cell's monitor"},
      {"halo_no_barrier", true, "stencil halo read with the barrier omitted"},
      {"halo_barrier", false, "the same exchange through a JBarrier"},
      {"flag_no_monitor", true, "publication via a plain flag, no monitor"},
      {"wait_notify", false, "publication via monitor wait/notify"},
  };
  return kPrograms;
}

bool litmus_known(const std::string& name) {
  for (const auto& prog : litmus_programs()) {
    if (prog.name == name) return true;
  }
  return false;
}

RunResult litmus_run(const VmConfig& cfg, const std::string& name,
                     const LitmusParams& params) {
  HYP_CHECK_MSG(litmus_known(name), "unknown litmus program");
  hyperion::HyperionVM vm(cfg);
  RunResult out;
  dsm::with_policy(cfg.protocol, cfg.race != nullptr, [&](auto policy) {
    using P = decltype(policy);
    out.value = dispatch<P>(vm, name, params);
  });
  out.elapsed = vm.elapsed();
  out.stats = vm.stats();
  capture_engine_tallies(out, vm);
  return out;
}

}  // namespace hyp::apps
