#include "apps/tsp.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/rng.hpp"

namespace hyp::apps {

std::vector<std::int32_t> tsp_make_distances(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> d(static_cast<std::size_t>(n) * n, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto w = static_cast<std::int32_t>(1 + rng.below(100));
      d[static_cast<std::size_t>(i) * n + j] = w;
      d[static_cast<std::size_t>(j) * n + i] = w;
    }
  }
  return d;
}

namespace {

int prefix_depth(int n) { return std::min(3, n - 2); }

// Enumerates all tour prefixes (starting at city 0) of the given depth, in
// lexicographic order. Each job is `depth` city ids.
std::vector<std::int32_t> make_jobs(int n, int depth) {
  std::vector<std::int32_t> jobs;
  std::vector<std::int32_t> prefix;
  auto emit = [&](auto&& self) -> void {
    if (static_cast<int>(prefix.size()) == depth) {
      jobs.insert(jobs.end(), prefix.begin(), prefix.end());
      return;
    }
    for (std::int32_t c = 1; c < n; ++c) {
      if (std::find(prefix.begin(), prefix.end(), c) != prefix.end()) continue;
      prefix.push_back(c);
      self(self);
      prefix.pop_back();
    }
  };
  emit(emit);
  return jobs;
}

// Greedy nearest-neighbour tour: the initial global bound.
std::int32_t greedy_bound(const std::vector<std::int32_t>& d, int n) {
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  used[0] = true;
  std::int32_t len = 0;
  int cur = 0;
  for (int step = 1; step < n; ++step) {
    int best = -1;
    std::int32_t best_w = std::numeric_limits<std::int32_t>::max();
    for (int c = 1; c < n; ++c) {
      if (used[static_cast<std::size_t>(c)]) continue;
      const auto w = d[static_cast<std::size_t>(cur) * n + c];
      if (w < best_w) {
        best_w = w;
        best = c;
      }
    }
    used[static_cast<std::size_t>(best)] = true;
    len += best_w;
    cur = best;
  }
  return len + d[static_cast<std::size_t>(cur) * n];
}

template <typename P>
struct Searcher {
  JavaEnv& env;
  Mem<P> mem;
  GArray<std::int32_t> dist;       // central, on node 0
  GRef<std::int32_t> best;         // central bound, monitor-guarded
  GArray<std::int32_t> visited;    // this worker's, home-local
  int n;
  std::int32_t cached_bound;       // unsynchronized (possibly stale) copy

  void dfs(int cur, int depth, std::int32_t len) {
    if (len >= cached_bound) return;  // sound: stale bounds are >= true bound
    if (depth == n) {
      const std::int32_t total = len + mem.aget(dist, cur * n + 0);
      env.charge_cycles(kTspStepCycles);
      if (total < cached_bound) {
        env.synchronized(best.addr, [&] {
          const std::int32_t b = mem.get(best);
          if (total < b) mem.put(best, total);
        });
        // The acquire refreshed our cache; re-read the now-exact bound.
        cached_bound = mem.get(best);
      }
      return;
    }
    for (std::int32_t next = 1; next < n; ++next) {
      env.charge_cycles(kTspStepCycles);
      if (mem.aget(visited, next) != 0) continue;
      const std::int32_t step = mem.aget(dist, cur * n + next);
      if (len + step >= cached_bound) continue;
      mem.aput(visited, next, 1);
      dfs(next, depth + 1, len + step);
      mem.aput(visited, next, 0);
    }
  }
};

template <typename P>
double run(hyperion::HyperionVM& vm, const TspParams& params) {
  double result = 0;
  vm.run_main([&](JavaEnv& main) {
    const int n = params.cities;
    HYP_CHECK_MSG(n >= 4, "TSP needs at least 4 cities");
    const int workers = vm.nodes();
    const int depth = prefix_depth(n);
    const auto d = tsp_make_distances(n, params.seed);
    const auto jobs = make_jobs(n, depth);
    const int job_count = static_cast<int>(jobs.size()) / depth;

    Mem<P> mem(main.ctx());
    // Central structures: allocated by main, homed on node 0 (§4.1).
    auto dist = main.new_array<std::int32_t>(n * n);
    for (int i = 0; i < n * n; ++i) mem.aput(dist, i, d[static_cast<std::size_t>(i)]);
    auto job_tbl = main.new_array<std::int32_t>(static_cast<std::int64_t>(jobs.size()));
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      mem.aput(job_tbl, static_cast<std::int64_t>(i), jobs[i]);
    }
    auto next_job = main.new_cell<std::int32_t>(0);
    auto best = main.new_cell<std::int32_t>(greedy_bound(d, n));
    // Workers re-read `best` outside its monitor (the cached_bound refresh):
    // a deliberate JMM race the pruning tolerates — a stale bound is only
    // ever >= the true bound. Tallied, not reported (docs/RACES.md).
    main.mark_benign(best.addr, sizeof(std::int32_t));

    std::vector<JThread> threads;
    for (int w = 0; w < workers; ++w) {
      threads.push_back(main.start_thread("tsp" + std::to_string(w), [=](JavaEnv& env) {
        Searcher<P> s{env, Mem<P>(env.ctx()), dist, best, env.new_array<std::int32_t>(n), n, 0};
        for (;;) {
          // Pop a work unit from the central queue.
          std::int32_t job = -1;
          env.synchronized(next_job.addr, [&] {
            const std::int32_t idx = s.mem.get(next_job);
            if (idx < job_count) {
              s.mem.put(next_job, idx + 1);
              job = idx;
            }
          });
          if (job < 0) break;

          // Rebuild the prefix state.
          for (int c = 0; c < n; ++c) s.mem.aput(s.visited, c, 0);
          s.mem.aput(s.visited, 0, 1);
          std::int32_t len = 0;
          int cur = 0;
          bool viable = true;
          for (int k = 0; k < depth; ++k) {
            const std::int32_t city = s.mem.aget(job_tbl, job * depth + k);
            len += s.mem.aget(s.dist, cur * n + city);
            s.mem.aput(s.visited, city, 1);
            cur = city;
            env.charge_cycles(kTspStepCycles);
          }
          s.cached_bound = s.mem.get(best);  // refreshed by the pop's acquire
          if (len >= s.cached_bound) viable = false;
          if (viable) s.dfs(cur, depth + 1, len);
        }
      }));
    }
    for (auto& t : threads) main.join(t);
    result = mem.get(best);
  });
  return result;
}

// Plain sequential branch-and-bound over the same matrix.
struct SerialTsp {
  const std::vector<std::int32_t>& d;
  int n;
  std::int32_t best;
  std::vector<bool> visited;

  void dfs(int cur, int depth, std::int32_t len) {
    if (len >= best) return;
    if (depth == n) {
      best = std::min(best, len + d[static_cast<std::size_t>(cur) * n]);
      return;
    }
    for (int next = 1; next < n; ++next) {
      if (visited[static_cast<std::size_t>(next)]) continue;
      const auto step = d[static_cast<std::size_t>(cur) * n + next];
      if (len + step >= best) continue;
      visited[static_cast<std::size_t>(next)] = true;
      dfs(next, depth + 1, len + step);
      visited[static_cast<std::size_t>(next)] = false;
    }
  }
};

}  // namespace

RunResult tsp_parallel(const VmConfig& cfg, const TspParams& params) {
  hyperion::HyperionVM vm(cfg);
  RunResult out;
  dsm::with_policy(cfg.protocol, cfg.race != nullptr, [&](auto policy) {
    using P = decltype(policy);
    out.value = run<P>(vm, params);
  });
  out.elapsed = vm.elapsed();
  out.stats = vm.stats();
  capture_engine_tallies(out, vm);
  return out;
}

std::int32_t tsp_serial(const TspParams& params) {
  const int n = params.cities;
  const auto d = tsp_make_distances(n, params.seed);
  SerialTsp s{d, n, greedy_bound(d, n), std::vector<bool>(static_cast<std::size_t>(n), false)};
  s.visited[0] = true;
  s.dfs(0, 1, 0);
  return s.best;
}

}  // namespace hyp::apps
