#include "apps/asp.hpp"

#include <string>

#include "common/rng.hpp"

namespace hyp::apps {

std::vector<std::int32_t> asp_make_graph(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> w(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      w[static_cast<std::size_t>(i) * n + j] =
          (i == j) ? 0 : static_cast<std::int32_t>(1 + rng.below(100));
    }
  }
  return w;
}

namespace {

struct Block {
  int lo, hi;
};
Block block_for(int worker, int workers, int n) {
  return {n * worker / workers, n * (worker + 1) / workers};
}

template <typename P>
double run(hyperion::HyperionVM& vm, const AspParams& params) {
  double checksum = 0;
  vm.run_main([&](JavaEnv& main) {
    const int n = params.n;
    const int workers = params.threads > 0 ? params.threads : vm.nodes();
    HYP_CHECK_MSG(n >= workers, "graph too small for the thread count");
    const auto graph = asp_make_graph(n, params.seed);

    auto row_tbl = main.new_array<std::uint64_t>(n);  // int[][] outer array
    auto global_sum = main.new_cell<double>(0.0);
    auto barrier = hyperion::japi::JBarrier::create(main, workers);

    std::vector<JThread> threads;
    for (int w = 0; w < workers; ++w) {
      const Block blk = block_for(w, workers, n);
      threads.push_back(main.start_thread("asp" + std::to_string(w), [=, &graph](JavaEnv& env) {
        Mem<P> mem(env.ctx());

        // Own rows: allocated (homed) here, seeded from the input graph.
        for (int i = blk.lo; i < blk.hi; ++i) {
          auto row = env.new_array<std::int32_t>(n);
          for (int j = 0; j < n; ++j) {
            mem.aput(row, j, graph[static_cast<std::size_t>(i) * n + j]);
            env.charge_cycles(3);
          }
          mem.aput(row_tbl, i, row.header);
        }
        barrier.template await<P>(env);

        // Floyd: at iteration k every thread reads row k (remote for all but
        // its owner) and relaxes its own rows.
        for (int k = 0; k < n; ++k) {
          GArray<std::int32_t> row_k{mem.aget(row_tbl, k)};
          for (int i = blk.lo; i < blk.hi; ++i) {
            if (i == k) continue;
            GArray<std::int32_t> row_i{mem.aget(row_tbl, i)};
            for (int j = 0; j < n; ++j) {
              // Three locality checks per iteration under java_ic (§4.3).
              const std::int32_t via = mem.aget(row_i, k) + mem.aget(row_k, j);
              if (via < mem.aget(row_i, j)) mem.aput(row_i, j, via);
              env.charge_cycles(kAspIterCycles);
            }
          }
          barrier.template await<P>(env);
        }

        // Checksum of the owned block.
        double local = 0;
        for (int i = blk.lo; i < blk.hi; ++i) {
          GArray<std::int32_t> row{mem.aget(row_tbl, i)};
          for (int j = 0; j < n; ++j) {
            local += mem.aget(row, j);
            env.charge_cycles(3);
          }
        }
        env.synchronized(global_sum.addr,
                         [&] { mem.put(global_sum, mem.get(global_sum) + local); });
      }));
    }
    for (auto& t : threads) main.join(t);
    Mem<P> mem(main.ctx());
    checksum = mem.get(global_sum);
  });
  return checksum;
}

}  // namespace

RunResult asp_parallel(const VmConfig& cfg, const AspParams& params) {
  hyperion::HyperionVM vm(cfg);
  RunResult out;
  dsm::with_policy(cfg.protocol, cfg.race != nullptr, [&](auto policy) {
    using P = decltype(policy);
    out.value = run<P>(vm, params);
  });
  out.elapsed = vm.elapsed();
  out.stats = vm.stats();
  capture_engine_tallies(out, vm);
  return out;
}

double asp_serial(const AspParams& params) {
  const int n = params.n;
  auto d = asp_make_graph(n, params.seed);
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (i == k) continue;
      const std::int32_t dik = d[static_cast<std::size_t>(i) * n + k];
      for (int j = 0; j < n; ++j) {
        const std::int32_t via = dik + d[static_cast<std::size_t>(k) * n + j];
        if (via < d[static_cast<std::size_t>(i) * n + j]) {
          d[static_cast<std::size_t>(i) * n + j] = via;
        }
      }
    }
  }
  double sum = 0;
  for (const auto v : d) sum += v;
  return sum;
}

}  // namespace hyp::apps
