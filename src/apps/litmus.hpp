// Data-race litmus programs (docs/RACES.md).
//
// Six tiny cluster-Java programs exercising the race detector: three that
// race on purpose and, for each, the properly synchronized twin. The racy
// variants are seeded and deterministic, so the detector's report for a
// given config is byte-identical run-to-run; the race-free variants must
// report zero races at BOTH granularities (their shared cells are laid out
// so that even page-granularity detection sees no unordered same-page
// accesses).
//
//   unsync_counter   racy   N workers increment one cell with no monitor
//   sync_counter     clean  the same increments under the cell's monitor
//   halo_no_barrier  racy   stencil halo read with the barrier omitted
//   halo_barrier     clean  the same exchange through a JBarrier
//   flag_no_monitor  racy   publication via a plain flag (no monitor)
//   wait_notify      clean  publication via monitor wait/notify
#pragma once

#include <string>
#include <vector>

#include "apps/app_common.hpp"

namespace hyp::apps {

struct LitmusParams {
  int workers = 4;  // started threads (round-robin over the nodes)
  int reps = 64;    // per-worker operations where the program repeats
};

struct LitmusProgram {
  std::string name;
  bool racy = false;  // is the program *supposed* to be flagged?
  const char* what = "";
};

// The program table, in a fixed order (CLI help, tests, race_smoke.sh).
const std::vector<LitmusProgram>& litmus_programs();

// True if `name` is a known program.
bool litmus_known(const std::string& name);

// Runs the named program; `value` is the program's checksum (identical with
// and without an attached race detector). Unknown names abort via HYP_CHECK.
RunResult litmus_run(const VmConfig& cfg, const std::string& name,
                     const LitmusParams& params = {});

}  // namespace hyp::apps
