#include "apps/pi.hpp"

#include <vector>

namespace hyp::apps {

namespace {

// One thread's stripe [begin, end) of the Riemann sum; pure stack compute.
double pi_partial(JavaEnv& env, std::int64_t begin, std::int64_t end, std::int64_t total) {
  const double h = 1.0 / static_cast<double>(total);
  double sum = 0.0;
  for (std::int64_t i = begin; i < end; ++i) {
    const double x = (static_cast<double>(i) + 0.5) * h;
    sum += 4.0 / (1.0 + x * x);
    env.charge_cycles(kPiIterCycles);
  }
  return sum * h;
}

template <typename P>
double run(hyperion::HyperionVM& vm, const PiParams& params) {
  double result = 0;
  vm.run_main([&](JavaEnv& main) {
    auto sum = main.new_cell<double>(0.0);
    const int workers = vm.nodes();
    const std::int64_t n = params.intervals;
    std::vector<JThread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      const std::int64_t begin = n * w / workers;
      const std::int64_t end = n * (w + 1) / workers;
      threads.push_back(main.start_thread("pi" + std::to_string(w), [=](JavaEnv& env) {
        const double part = pi_partial(env, begin, end, n);
        Mem<P> mem(env.ctx());
        env.synchronized(sum.addr, [&] { mem.put(sum, mem.get(sum) + part); });
      }));
    }
    for (auto& t : threads) main.join(t);
    Mem<P> mem(main.ctx());
    result = mem.get(sum);
  });
  return result;
}

}  // namespace

RunResult pi_parallel(const VmConfig& cfg, const PiParams& params) {
  hyperion::HyperionVM vm(cfg);
  RunResult out;
  dsm::with_policy(cfg.protocol, cfg.race != nullptr, [&](auto policy) {
    using P = decltype(policy);
    out.value = run<P>(vm, params);
  });
  out.elapsed = vm.elapsed();
  out.stats = vm.stats();
  capture_engine_tallies(out, vm);
  return out;
}

double pi_serial(const PiParams& params) {
  const std::int64_t n = params.intervals;
  const double h = 1.0 / static_cast<double>(n);
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double x = (static_cast<double>(i) + 0.5) * h;
    sum += 4.0 / (1.0 + x * x);
  }
  return sum * h;
}

}  // namespace hyp::apps
