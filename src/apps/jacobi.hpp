// Jacobi (Figure 2): temperature distribution on an insulated plate.
//
// Paper configuration: 1024x1024 mesh, 100 time steps, each thread owning a
// block of contiguous rows and fetching one "boundary" row from each
// neighbour per step (§4.1). The mesh is a Java-style double[][]: a shared
// array of row handles, each row allocated by its owning thread so that its
// home is the owner's node. A monitor-based barrier separates time steps —
// its cache invalidation is what forces the per-step boundary-row refetch.
#pragma once

#include "apps/app_common.hpp"

namespace hyp::apps {

struct JacobiParams {
  int n = 256;      // mesh edge (paper: 1024)
  int steps = 40;   // time steps (paper: 100)
  double boundary_temp = 100.0;
  // 0 = the paper's configuration (one computation thread per node); >0
  // overrides the total thread count for the threads-per-node extension
  // study (§4.3's future work).
  int threads = 0;
};

// Core fp work per interior cell (4 adds, 1 multiply, address arithmetic)
// on the era CPUs; the five accesses per cell additionally cost java_ic
// five locality checks — the ratio the paper's §4.3 discusses.
inline constexpr std::uint64_t kJacobiCellCycles = 80;

RunResult jacobi_parallel(const VmConfig& cfg, const JacobiParams& params);
// Returns the same checksum (sum over interior cells after `steps`).
double jacobi_serial(const JacobiParams& params);

}  // namespace hyp::apps
