#include "native/native_vm.hpp"

#include "common/assert.hpp"

namespace hyp::native {

// ---------------------------------------------------------------------------
// NativeMonitor

void NativeMonitor::acquire_locked(std::unique_lock<std::mutex>& lock, std::uint32_t depth) {
  entry_cv_.wait(lock, [&] { return depth_ == 0; });
  owner_ = std::this_thread::get_id();
  depth_ = depth;
}

void NativeMonitor::enter() {
  std::unique_lock<std::mutex> lock(mu_);
  if (depth_ != 0 && owner_ == std::this_thread::get_id()) {
    ++depth_;  // reentrant
    return;
  }
  acquire_locked(lock, 1);
}

void NativeMonitor::exit() {
  std::unique_lock<std::mutex> lock(mu_);
  HYP_CHECK_MSG(depth_ != 0 && owner_ == std::this_thread::get_id(),
                "monitor exit by a thread that does not own it");
  if (--depth_ == 0) {
    owner_ = {};
    entry_cv_.notify_one();
  }
}

void NativeMonitor::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  HYP_CHECK_MSG(depth_ != 0 && owner_ == std::this_thread::get_id(),
                "Object.wait without owning the monitor");
  const std::uint32_t saved_depth = depth_;
  owner_ = {};
  depth_ = 0;
  entry_cv_.notify_one();

  Waiter node;
  wait_set_.push_back(&node);
  wait_cv_.wait(lock, [&] { return node.signaled; });

  acquire_locked(lock, saved_depth);
}

void NativeMonitor::notify_one() {
  std::unique_lock<std::mutex> lock(mu_);
  HYP_CHECK_MSG(depth_ != 0 && owner_ == std::this_thread::get_id(),
                "Object.notify without owning the monitor");
  if (!wait_set_.empty()) {
    wait_set_.front()->signaled = true;
    wait_set_.pop_front();
    wait_cv_.notify_all();
  }
}

void NativeMonitor::notify_all() {
  std::unique_lock<std::mutex> lock(mu_);
  HYP_CHECK_MSG(depth_ != 0 && owner_ == std::this_thread::get_id(),
                "Object.notify without owning the monitor");
  for (Waiter* w : wait_set_) w->signaled = true;
  wait_set_.clear();
  wait_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// NativeEnv

NativeEnv::NativeEnv(NativeVm* vm, int node) : vm_(vm), ctx_(vm->dsm_.make_ctx(node)) {}

Gva NativeEnv::alloc_raw(std::size_t bytes, std::size_t align) {
  return vm_->dsm_.alloc(ctx_.node, bytes, align);
}

void NativeEnv::monitor_enter(Gva obj) {
  vm_->dsm_.bump(Counter::kMonitorEnters);
  vm_->monitor_for(obj).enter();
  vm_->dsm_.on_acquire(ctx_);
}

void NativeEnv::monitor_exit(Gva obj) {
  vm_->dsm_.bump(Counter::kMonitorExits);
  vm_->dsm_.on_release(ctx_);
  vm_->monitor_for(obj).exit();
}

void NativeEnv::wait(Gva obj) {
  vm_->dsm_.on_release(ctx_);
  vm_->monitor_for(obj).wait();
  vm_->dsm_.on_acquire(ctx_);
}

void NativeEnv::notify(Gva obj) { vm_->monitor_for(obj).notify_one(); }
void NativeEnv::notify_all(Gva obj) { vm_->monitor_for(obj).notify_all(); }

// ---------------------------------------------------------------------------
// NativeVm

NativeVm::NativeVm(Config config)
    : dsm_(config.nodes, config.region_bytes, config.protocol, config.page_bytes) {}

NativeMonitor& NativeVm::monitor_for(Gva obj) {
  std::lock_guard<std::mutex> lock(monitors_mu_);
  auto& slot = monitors_[obj];
  if (slot == nullptr) slot = std::make_unique<NativeMonitor>();
  return *slot;
}

void NativeVm::start_thread(const std::function<void(NativeEnv&)>& body) {
  const int node = next_node_.fetch_add(1, std::memory_order_relaxed) % dsm_.nodes();
  dsm_.bump(Counter::kRemoteThreadSpawns);
  std::lock_guard<std::mutex> lock(threads_mu_);
  threads_.emplace_back([this, node, body] {
    NativeEnv env(this, node);
    // Thread start/termination edges: begin clean, end flushed.
    dsm_.on_acquire(env.ctx());
    body(env);
    dsm_.on_release(env.ctx());
  });
}

void NativeVm::join_all(NativeEnv& env) {
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(threads_mu_);
      if (threads_.empty()) break;
      t = std::move(threads_.back());
      threads_.pop_back();
    }
    t.join();
  }
  // join() edge for the caller.
  dsm_.on_acquire(env.ctx());
}

void NativeVm::run_main(const std::function<void(NativeEnv&)>& main_fn) {
  NativeEnv env(this, 0);
  // start() edge for threads the main body creates.
  dsm_.on_release(env.ctx());
  main_fn(env);
  join_all(env);
}

}  // namespace hyp::native
