// The native backend: real remote-object detection in one process.
//
// The simulator (src/sim, src/dsm) *models* the cost of the paper's two
// detection mechanisms; this backend *executes* them. N "nodes" live in one
// process, each owning a full-size private arena for the shared region.
// Java threads are OS threads bound to a node.
//
//   java_pf: non-home pages are mprotect(PROT_NONE)-ed in the node's arena;
//     the first access raises a real SIGSEGV. The handler maps the fault
//     address back to (node, page), copies the page from the home node's
//     arena, snapshots a twin, opens the page READ/WRITE and returns — the
//     faulting instruction re-executes and succeeds. Exactly §3.3.
//
//   java_ic: every get/put runs an explicit presence check against the
//     node's page bitmap; misses fetch the page without any protection
//     changes, and puts append to a field-granularity write log. §3.2.
//
// Monitor entry/exit drive the same JMM actions as the simulator: flush
// modifications to the home arena, invalidate (re-protect / bitmap-clear)
// the node's cached pages.
//
// Threading notes: the SIGSEGV handler runs on the faulting thread and
// takes regular mutexes — standard practice for user-level page-based DSMs
// (TreadMarks et al.); the handler never allocates (twins live in a
// dedicated pre-mapped arena). Reads of a home page concurrent with writes
// by its home threads are data races Java permits for unsynchronized code;
// properly synchronized programs serialize them through the flush/monitor
// path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/stats.hpp"
#include "dsm/address.hpp"
#include "dsm/write_log.hpp"

namespace hyp::native {

using dsm::Gva;
using dsm::Layout;
using dsm::PageId;

enum class Protocol { kJavaIc, kJavaPf };

class NativeDsm;

// Per-thread context (one per Java thread).
struct NativeCtx {
  NativeDsm* dsm = nullptr;
  int node = -1;
  std::byte* base = nullptr;  // the node's arena
  dsm::WriteLog wlog;         // java_ic modification log

  template <typename T>
  T get(Gva a);
  template <typename T>
  void put(Gva a, T v);
};

class NativeDsm {
 public:
  NativeDsm(int nodes, std::size_t region_bytes, Protocol protocol,
            std::size_t page_bytes = 4096);
  ~NativeDsm();
  NativeDsm(const NativeDsm&) = delete;
  NativeDsm& operator=(const NativeDsm&) = delete;

  const Layout& layout() const { return layout_; }
  Protocol protocol() const { return protocol_; }
  int nodes() const { return nodes_; }
  std::byte* arena(int node) { return arenas_[static_cast<std::size_t>(node)]; }

  // Allocation from a node's zone (thread-safe); home = that node.
  Gva alloc(int node, std::size_t bytes, std::size_t align = 8);

  NativeCtx make_ctx(int node);

  // --- consistency actions (called by the monitor layer) -------------------
  void update_main_memory(NativeCtx& ctx);  // flush log / diffs to homes
  void invalidate_cache(NativeCtx& ctx);    // drop + re-protect cached pages
  void on_acquire(NativeCtx& ctx) {
    update_main_memory(ctx);
    invalidate_cache(ctx);
  }
  void on_release(NativeCtx& ctx) { update_main_memory(ctx); }

  // --- protocol internals ---------------------------------------------------
  // Ensures (node, page) is locally accessible; used by the ic miss path and
  // by the SIGSEGV handler (pf). Thread-safe and idempotent.
  void fetch_page(int node, PageId page, bool from_fault);
  bool page_present(int node, PageId page) const;

  // Called by the signal handler: resolves a faulting address to a node.
  // Returns -1 if the address is not in any arena (a genuine crash).
  int node_of_address(const void* addr) const;

  // Direct home-copy access for initialization and verification.
  template <typename T>
  T read_home(Gva a) const {
    const int home = layout_.home_of(a);
    T v;
    std::memcpy(&v, service_arenas_[static_cast<std::size_t>(home)] + a, sizeof(T));
    return v;
  }
  template <typename T>
  void poke_home(Gva a, T v) {
    const int home = layout_.home_of(a);
    std::memcpy(service_arenas_[static_cast<std::size_t>(home)] + a, &v, sizeof(T));
  }

  std::uint64_t counter(Counter c) const {
    return counters_[static_cast<int>(c)].load(std::memory_order_relaxed);
  }
  void bump(Counter c, std::uint64_t n = 1) {
    counters_[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  Stats stats_snapshot() const;

 private:
  friend struct NativeCtx;

  void protect_non_home_pages(int node);
  std::mutex& page_mutex(int node, PageId page);

  int nodes_;
  Layout layout_;
  Protocol protocol_;
  // Each node's shared region is one memfd mapped twice: the *access* view
  // (what threads dereference; java_pf flips its protection) and the
  // *service* view (always READ/WRITE; the protocol installs and serves
  // bytes through it). Installing through the service view closes the
  // classic unprotect-before-copy window: a sibling thread can never read a
  // page that is accessible but not yet filled.
  std::vector<std::byte*> arenas_;          // access views (fault on these)
  std::vector<std::byte*> service_arenas_;  // always-RW aliases
  std::vector<std::byte*> twin_arenas_;     // java_pf twins (pf only), per node
  // present_[node][page]: 1 when a non-home page holds a valid replica.
  std::vector<std::unique_ptr<std::atomic<std::uint8_t>[]>> present_;
  std::vector<std::unique_ptr<std::atomic<std::uint8_t>[]>> twin_valid_;
  // Bumped at the start of every invalidate_cache pass. A fetch_page whose
  // home-copy memcpy spans a bump discards its copy instead of installing
  // it: the copy may predate the home applies the invalidating thread's
  // monitor acquire is entitled to see, and installing it would resurrect
  // the present bit with stale bytes (the second lost-update window behind
  // the MonitorContentionAcrossManyObjects flake).
  std::unique_ptr<std::atomic<std::uint64_t>[]> invalidate_epoch_;
  std::vector<std::mutex> fetch_mutexes_;  // striped page locks
  std::vector<std::mutex> home_apply_mutexes_;  // one per node, serializes updates
  std::vector<std::mutex> alloc_mutexes_;
  std::vector<Gva> alloc_next_;
  std::atomic<std::uint64_t> counters_[static_cast<int>(Counter::kCount_)] = {};
};

// --- access primitives (the native fast paths) ------------------------------

template <typename T>
T NativeCtx::get(Gva a) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (dsm->protocol() == Protocol::kJavaIc) {
    dsm->bump(Counter::kInlineChecks);
    const PageId p = dsm->layout().page_of(a);
    // Loop: a fetch that raced an invalidation pass discards its copy
    // without installing (see invalidate_epoch_), so one call may not be
    // enough. (java_pf gets the same retry for free — the access re-faults.)
    while (!dsm->page_present(node, p)) [[unlikely]] {
      dsm->fetch_page(node, p, /*from_fault=*/false);
    }
  }
  // java_pf: plain load; a protected page traps into the SIGSEGV handler.
  T v;
  std::memcpy(&v, base + a, sizeof(T));
  return v;
}

template <typename T>
void NativeCtx::put(Gva a, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const PageId p = dsm->layout().page_of(a);
  if (dsm->protocol() == Protocol::kJavaIc) {
    dsm->bump(Counter::kInlineChecks);
    while (!dsm->page_present(node, p)) [[unlikely]] {
      dsm->fetch_page(node, p, /*from_fault=*/false);
    }
  }
  std::memcpy(base + a, &v, sizeof(T));
  if (dsm->protocol() == Protocol::kJavaIc && dsm->layout().home_of_page(p) != node) {
    std::uint64_t raw = 0;
    std::memcpy(&raw, &v, sizeof(T));
    wlog.record(a, sizeof(T), raw);
    dsm->bump(Counter::kWriteLogEntries);
  }
}

}  // namespace hyp::native
