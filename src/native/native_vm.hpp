// NativeVm: Java threads and object monitors over the native DSM.
//
// Completes the native backend into a runnable mini-Hyperion: OS threads
// placed round-robin over the nodes, and per-object monitors with Java
// enter/exit/wait/notify semantics that drive the DSM's acquire/release
// actions (flush home, invalidate cache) exactly as the simulator's monitor
// subsystem does. Used by the native tests and by the §4.2 detection-cost
// microbenchmark.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "native/native_dsm.hpp"

namespace hyp::native {

// One Java object monitor: mutual exclusion + wait set, reentrant.
class NativeMonitor {
 public:
  void enter();
  void exit();
  void wait();        // caller must hold; fully releases, restores on return
  void notify_one();  // caller must hold
  void notify_all();  // caller must hold

 private:
  void acquire_locked(std::unique_lock<std::mutex>& lock, std::uint32_t depth);

  // Wait-set entries live on the waiting threads' stacks; notify marks only
  // the members present at notify time (Java semantics — a later waiter must
  // not steal an earlier signal).
  struct Waiter {
    bool signaled = false;
  };

  std::mutex mu_;
  std::condition_variable entry_cv_;
  std::condition_variable wait_cv_;
  std::thread::id owner_{};
  std::uint32_t depth_ = 0;
  std::deque<Waiter*> wait_set_;
};

class NativeVm;

// Per-thread execution environment.
class NativeEnv {
 public:
  NativeEnv(NativeVm* vm, int node);

  int node() const { return ctx_.node; }
  NativeCtx& ctx() { return ctx_; }
  NativeVm& vm() { return *vm_; }

  Gva alloc_raw(std::size_t bytes, std::size_t align = 8);
  template <typename T>
  Gva new_cell(T init) {
    const Gva a = alloc_raw(sizeof(T), alignof(T) < 8 ? sizeof(T) : 8);
    // Allocation happens in this node's own zone: direct initialization.
    std::memcpy(ctx_.base + a, &init, sizeof(T));
    return a;
  }

  template <typename T>
  T get(Gva a) {
    return ctx_.get<T>(a);
  }
  template <typename T>
  void put(Gva a, T v) {
    ctx_.put<T>(a, v);
  }

  // Monitors with the JMM consistency actions attached.
  void monitor_enter(Gva obj);
  void monitor_exit(Gva obj);
  void wait(Gva obj);
  void notify(Gva obj);
  void notify_all(Gva obj);

  template <typename Fn>
  void synchronized(Gva obj, Fn&& fn) {
    monitor_enter(obj);
    fn();
    monitor_exit(obj);
  }

 private:
  NativeVm* vm_;
  NativeCtx ctx_;
};

class NativeVm {
 public:
  struct Config {
    int nodes = 2;
    Protocol protocol = Protocol::kJavaPf;
    std::size_t region_bytes = std::size_t{64} << 20;
    std::size_t page_bytes = 4096;
  };

  explicit NativeVm(Config config);
  NativeVm(const NativeVm&) = delete;
  NativeVm& operator=(const NativeVm&) = delete;

  // Runs `main_fn` on the calling thread as the primary Java thread (node 0)
  // and joins all started threads before returning.
  void run_main(const std::function<void(NativeEnv&)>& main_fn);

  // Starts a Java thread; placement is round-robin (paper's load balancer).
  void start_thread(const std::function<void(NativeEnv&)>& body);

  // Joins every started thread; the caller's env gets the join()
  // happens-before edge (cache invalidated so it sees the threads' writes).
  void join_all(NativeEnv& env);

  NativeDsm& dsm() { return dsm_; }
  NativeMonitor& monitor_for(Gva obj);
  int nodes() const { return dsm_.nodes(); }

 private:
  friend class NativeEnv;
  NativeDsm dsm_;
  std::mutex monitors_mu_;
  std::map<Gva, std::unique_ptr<NativeMonitor>> monitors_;
  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
  std::atomic<int> next_node_{0};
};

}  // namespace hyp::native
