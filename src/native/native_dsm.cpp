#include "native/native_dsm.hpp"

#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace hyp::native {

namespace {

// The SIGSEGV handler needs to reach the live instance; one native DSM per
// process at a time (checked below).
std::atomic<NativeDsm*> g_instance{nullptr};
struct sigaction g_previous_action;

void segv_handler(int signo, siginfo_t* info, void* ucontext) {
  NativeDsm* dsm = g_instance.load(std::memory_order_acquire);
  void* addr = info->si_addr;
  if (dsm != nullptr) {
    const int node = dsm->node_of_address(addr);
    if (node >= 0) {
      const auto offset = static_cast<std::size_t>(static_cast<const std::byte*>(addr) -
                                                   dsm->arena(node));
      const PageId page = dsm->layout().page_of(offset);
      if (dsm->layout().home_of_page(page) != node) {
        // A legitimate java_pf access fault: service it and return; the
        // faulting instruction re-executes against the now-open page.
        dsm->bump(Counter::kPageFaults);
        dsm->fetch_page(node, page, /*from_fault=*/true);
        return;
      }
    }
  }
  // Not ours: chain to the previous handler for THIS signal only, keeping
  // our own handler installed so subsequent java_pf access faults are still
  // serviced. (The old code uninstalled us permanently here, killing remote
  // detection for the rest of the run after one foreign fault.)
  if ((g_previous_action.sa_flags & SA_SIGINFO) != 0) {
    if (g_previous_action.sa_sigaction != nullptr) {
      g_previous_action.sa_sigaction(signo, info, ucontext);
    }
    return;
  }
  if (g_previous_action.sa_handler == SIG_IGN) {
    return;  // the previous disposition ignored SIGSEGV; honor that and retry
  }
  if (g_previous_action.sa_handler != SIG_DFL && g_previous_action.sa_handler != nullptr) {
    g_previous_action.sa_handler(signo);
    return;
  }
  // Previous disposition was SIG_DFL: restore it and return; the instruction
  // re-faults and the default action (core dump) applies. The process dies
  // here, so losing our handler no longer matters.
  sigaction(SIGSEGV, &g_previous_action, nullptr);
  (void)ucontext;
}

void* map_region(std::size_t bytes) {
  void* mem = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  HYP_CHECK_MSG(mem != MAP_FAILED, "native arena mmap failed");
  return mem;
}

// One memfd, two views: [0] the access view, [1] the always-RW service view.
std::pair<std::byte*, std::byte*> map_region_dual(std::size_t bytes) {
  const int fd = memfd_create("hyp_native_arena", MFD_CLOEXEC);
  HYP_CHECK_MSG(fd >= 0, "memfd_create failed");
  HYP_CHECK(ftruncate(fd, static_cast<off_t>(bytes)) == 0);
  void* access = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  void* service = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  HYP_CHECK_MSG(access != MAP_FAILED && service != MAP_FAILED, "dual arena mmap failed");
  close(fd);
  return {static_cast<std::byte*>(access), static_cast<std::byte*>(service)};
}

constexpr std::size_t kFetchStripes = 64;

}  // namespace

NativeDsm::NativeDsm(int nodes, std::size_t region_bytes, Protocol protocol,
                     std::size_t page_bytes)
    : nodes_(nodes),
      layout_(region_bytes, page_bytes, nodes),
      protocol_(protocol),
      fetch_mutexes_(kFetchStripes),
      home_apply_mutexes_(static_cast<std::size_t>(nodes)),
      alloc_mutexes_(static_cast<std::size_t>(nodes)) {
  const auto n = static_cast<std::size_t>(nodes);
  arenas_.resize(n);
  service_arenas_.resize(n);
  twin_arenas_.resize(n);
  present_.resize(n);
  twin_valid_.resize(n);
  alloc_next_.resize(n);
  invalidate_epoch_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::size_t i = 0; i < n; ++i) invalidate_epoch_[i].store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    auto [access, service] = map_region_dual(region_bytes);
    arenas_[i] = access;
    service_arenas_[i] = service;
    if (protocol_ == Protocol::kJavaPf) {
      twin_arenas_[i] = static_cast<std::byte*>(map_region(region_bytes));
    }
    present_[i] = std::make_unique<std::atomic<std::uint8_t>[]>(layout_.total_pages());
    twin_valid_[i] = std::make_unique<std::atomic<std::uint8_t>[]>(layout_.total_pages());
    alloc_next_[i] = layout_.zone_begin(static_cast<int>(i));
  }

  if (protocol_ == Protocol::kJavaPf) {
    for (int node = 0; node < nodes_; ++node) protect_non_home_pages(node);

    NativeDsm* expected = nullptr;
    HYP_CHECK_MSG(g_instance.compare_exchange_strong(expected, this),
                  "only one java_pf NativeDsm may be live per process");
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &segv_handler;
    sa.sa_flags = SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    HYP_CHECK(sigaction(SIGSEGV, &sa, &g_previous_action) == 0);
  }
}

NativeDsm::~NativeDsm() {
  if (protocol_ == Protocol::kJavaPf) {
    sigaction(SIGSEGV, &g_previous_action, nullptr);
    g_instance.store(nullptr, std::memory_order_release);
  }
  for (std::byte* arena : arenas_) {
    if (arena != nullptr) munmap(arena, layout_.total_bytes());
  }
  for (std::byte* service : service_arenas_) {
    if (service != nullptr) munmap(service, layout_.total_bytes());
  }
  for (std::byte* twin : twin_arenas_) {
    if (twin != nullptr) munmap(twin, layout_.total_bytes());
  }
}

void NativeDsm::protect_non_home_pages(int node) {
  // The node's zone stays READ/WRITE; everything before and after is
  // protected with two range mprotects (§3.3: protection per entry, here at
  // initialization; invalidate_cache re-protects per page afterwards).
  std::byte* arena = arenas_[static_cast<std::size_t>(node)];
  const Gva zb = layout_.zone_begin(node);
  const Gva ze = layout_.zone_end(node);
  if (zb > 0) {
    HYP_CHECK(mprotect(arena, zb, PROT_NONE) == 0);
    // Count one protection change per page covered, not per mprotect(2)
    // range call, so the counter matches the per-page accounting used by
    // fetch_page/invalidate_cache (§3.3 charges protection per page).
    bump(Counter::kMprotectCalls, zb / layout_.page_bytes());
  }
  if (ze < layout_.total_bytes()) {
    HYP_CHECK(mprotect(arena + ze, layout_.total_bytes() - ze, PROT_NONE) == 0);
    bump(Counter::kMprotectCalls, (layout_.total_bytes() - ze) / layout_.page_bytes());
  }
}

int NativeDsm::node_of_address(const void* addr) const {
  const auto* p = static_cast<const std::byte*>(addr);
  for (int node = 0; node < nodes_; ++node) {
    const std::byte* base = arenas_[static_cast<std::size_t>(node)];
    if (p >= base && p < base + layout_.total_bytes()) return node;
  }
  return -1;
}

Gva NativeDsm::alloc(int node, std::size_t bytes, std::size_t align) {
  HYP_CHECK(align != 0 && (align & (align - 1)) == 0);
  std::lock_guard<std::mutex> lock(alloc_mutexes_[static_cast<std::size_t>(node)]);
  Gva at = (alloc_next_[static_cast<std::size_t>(node)] + align - 1) &
           ~static_cast<Gva>(align - 1);
  HYP_CHECK_MSG(at + bytes <= layout_.zone_end(node), "native zone exhausted");
  alloc_next_[static_cast<std::size_t>(node)] = at + bytes;
  return at;
}

NativeCtx NativeDsm::make_ctx(int node) {
  NativeCtx ctx;
  ctx.dsm = this;
  ctx.node = node;
  ctx.base = arenas_[static_cast<std::size_t>(node)];
  return ctx;
}

bool NativeDsm::page_present(int node, PageId page) const {
  if (layout_.home_of_page(page) == node) return true;
  return present_[static_cast<std::size_t>(node)][page].load(std::memory_order_acquire) != 0;
}

std::mutex& NativeDsm::page_mutex(int node, PageId page) {
  return fetch_mutexes_[(static_cast<std::size_t>(node) * 1000003 + page) % kFetchStripes];
}

void NativeDsm::fetch_page(int node, PageId page, bool from_fault) {
  const auto ni = static_cast<std::size_t>(node);
  std::lock_guard<std::mutex> lock(page_mutex(node, page));
  if (present_[ni][page].load(std::memory_order_acquire) != 0) {
    return;  // another thread of this node already installed it
  }
  const int home = layout_.home_of_page(page);
  HYP_CHECK(home != node);
  const std::size_t page_bytes = layout_.page_bytes();
  std::byte* local_service = service_arenas_[ni] + layout_.page_base(page);

  // Install the bytes through the always-RW service view FIRST, then open
  // the access view: a sibling thread either faults (and waits on the page
  // lock) or reads fully installed data — never a half-open page.
  //
  // The epoch sandwich around the copy kills a subtler window: if a sibling
  // runs invalidate_cache while this memcpy is in flight, the copy may
  // predate home applies that the sibling's monitor acquire must observe —
  // installing it would set `present` back to 1 with stale bytes. Discard
  // and let the caller retry (ic loops, pf re-faults); a fetch that starts
  // after the bump reads the home copy happens-after that acquire.
  const std::uint64_t epoch = invalidate_epoch_[ni].load(std::memory_order_acquire);
  std::memcpy(local_service,
              service_arenas_[static_cast<std::size_t>(home)] + layout_.page_base(page),
              page_bytes);
  if (invalidate_epoch_[ni].load(std::memory_order_acquire) != epoch) {
    return;  // raced an invalidation pass: not installed
  }
  if (protocol_ == Protocol::kJavaPf) {
    std::memcpy(twin_arenas_[ni] + layout_.page_base(page), local_service, page_bytes);
    twin_valid_[ni][page].store(1, std::memory_order_release);
    HYP_CHECK(mprotect(arenas_[ni] + layout_.page_base(page), page_bytes,
                       PROT_READ | PROT_WRITE) == 0);
    bump(Counter::kMprotectCalls);
  }
  present_[ni][page].store(1, std::memory_order_release);
  bump(Counter::kPageFetches);
  bump(Counter::kPageFetchBytes, page_bytes);
  (void)from_fault;
}

void NativeDsm::update_main_memory(NativeCtx& ctx) {
  const auto ni = static_cast<std::size_t>(ctx.node);
  if (protocol_ == Protocol::kJavaIc) {
    if (ctx.wlog.empty()) return;
    // Apply field-granularity records to the home arenas, grouped by home so
    // each home's apply lock is taken once.
    for (int home = 0; home < nodes_; ++home) {
      bool touched = false;
      for (const auto& e : ctx.wlog.entries()) {
        if (layout_.home_of(e.addr) != home) continue;
        if (!touched) {
          home_apply_mutexes_[static_cast<std::size_t>(home)].lock();
          touched = true;
          bump(Counter::kUpdatesSent);
        }
        std::memcpy(service_arenas_[static_cast<std::size_t>(home)] + e.addr, &e.value, e.size);
        bump(Counter::kUpdateBytes, e.size);
      }
      if (touched) home_apply_mutexes_[static_cast<std::size_t>(home)].unlock();
    }
    ctx.wlog.clear();
    return;
  }

  // java_pf: word-diff every twinned page. Each differing word is read once;
  // the same read value goes to the home copy and the twin, so a concurrent
  // same-node writer's newer value stays diff-visible for its own flush.
  const std::size_t words = layout_.page_bytes() / 8;
  for (PageId p = 0; p < layout_.total_pages(); ++p) {
    if (twin_valid_[ni][p].load(std::memory_order_acquire) == 0) continue;
    std::lock_guard<std::mutex> lock(page_mutex(ctx.node, p));
    if (twin_valid_[ni][p].load(std::memory_order_relaxed) == 0) continue;
    auto* cur = reinterpret_cast<std::uint64_t*>(service_arenas_[ni] + layout_.page_base(p));
    auto* twin = reinterpret_cast<std::uint64_t*>(twin_arenas_[ni] + layout_.page_base(p));
    const int home = layout_.home_of_page(p);
    auto* home_words =
        reinterpret_cast<std::uint64_t*>(service_arenas_[static_cast<std::size_t>(home)] +
                                         layout_.page_base(p));
    bool locked_home = false;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t value = cur[w];
      if (value == twin[w]) continue;
      if (!locked_home) {
        home_apply_mutexes_[static_cast<std::size_t>(home)].lock();
        locked_home = true;
        bump(Counter::kUpdatesSent);
      }
      home_words[w] = value;
      twin[w] = value;
      bump(Counter::kDiffWords);
      bump(Counter::kUpdateBytes, 8);
    }
    if (locked_home) home_apply_mutexes_[static_cast<std::size_t>(home)].unlock();
  }
}

void NativeDsm::invalidate_cache(NativeCtx& ctx) {
  const auto ni = static_cast<std::size_t>(ctx.node);
  const std::size_t page_bytes = layout_.page_bytes();
  // Poison in-flight fetches first (see fetch_page): their home copies may
  // miss applies this invalidation is entitled to, and they would otherwise
  // re-install `present` after this pass cleared it.
  invalidate_epoch_[ni].fetch_add(1, std::memory_order_acq_rel);
  // Serialize with every in-flight fetch: a fetch holds its stripe mutex for
  // the whole copy+install, so after this sweep each one has either fully
  // installed (the scan below sees `present` and clears it) or will load the
  // bumped epoch through the same mutex and discard.
  for (auto& m : fetch_mutexes_) {
    m.lock();
    m.unlock();
  }
  for (PageId p = 0; p < layout_.total_pages(); ++p) {
    if (present_[ni][p].load(std::memory_order_acquire) == 0) continue;
    std::lock_guard<std::mutex> lock(page_mutex(ctx.node, p));
    if (present_[ni][p].load(std::memory_order_relaxed) == 0) continue;
    if (protocol_ == Protocol::kJavaPf) {
      // Protect FIRST, then drop the twin. A sibling thread inside its own
      // critical section may store to this page between our flush's diff
      // pass and this invalidation; once the page is PROT_NONE its next
      // store faults and re-fetches (the fault waits on the page lock held
      // here), so the residual diff below sees the final pre-protection
      // bytes. Dropping the twin before the protection flip lost exactly
      // those stores: the sibling's own flush found twin_valid == 0 and
      // skipped the page, and the next fetch re-read stale home bytes.
      HYP_CHECK(mprotect(arenas_[ni] + layout_.page_base(p), page_bytes, PROT_NONE) == 0);
      bump(Counter::kMprotectCalls);
      if (twin_valid_[ni][p].load(std::memory_order_acquire) != 0) {
        const std::size_t words = page_bytes / 8;
        auto* cur = reinterpret_cast<std::uint64_t*>(service_arenas_[ni] + layout_.page_base(p));
        auto* twin = reinterpret_cast<std::uint64_t*>(twin_arenas_[ni] + layout_.page_base(p));
        const int home = layout_.home_of_page(p);
        auto* home_words =
            reinterpret_cast<std::uint64_t*>(service_arenas_[static_cast<std::size_t>(home)] +
                                             layout_.page_base(p));
        bool locked_home = false;
        for (std::size_t w = 0; w < words; ++w) {
          const std::uint64_t value = cur[w];
          if (value == twin[w]) continue;
          if (!locked_home) {
            home_apply_mutexes_[static_cast<std::size_t>(home)].lock();
            locked_home = true;
            bump(Counter::kUpdatesSent);
          }
          home_words[w] = value;
          bump(Counter::kDiffWords);
          bump(Counter::kUpdateBytes, 8);
        }
        if (locked_home) home_apply_mutexes_[static_cast<std::size_t>(home)].unlock();
      }
      twin_valid_[ni][p].store(0, std::memory_order_release);
    }
    present_[ni][p].store(0, std::memory_order_release);
    bump(Counter::kInvalidations);
  }
}

Stats NativeDsm::stats_snapshot() const {
  Stats out;
  for (int i = 0; i < static_cast<int>(Counter::kCount_); ++i) {
    const auto v = counters_[i].load(std::memory_order_relaxed);
    if (v != 0) out.add(static_cast<Counter>(i), v);
  }
  return out;
}

}  // namespace hyp::native
