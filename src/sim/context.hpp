// Low-level cooperative context switching for simulator fibers.
//
// On x86-64 we use a hand-written System-V switch (context_x86_64.S) that
// saves only callee-saved registers plus the FP control words — roughly two
// orders of magnitude cheaper than swapcontext(3), which performs a
// sigprocmask system call on every switch. Other architectures fall back to
// ucontext. The engine performs one switch per simulated scheduling decision,
// so this cost is the simulator's metronome.
#pragma once

#include <cstddef>
#include <functional>

namespace hyp::sim {

#if defined(__x86_64__) && !defined(HYP_FORCE_UCONTEXT)
#define HYP_ASM_CONTEXT 1
#else
#define HYP_ASM_CONTEXT 0
#endif

// An execution context is fully described by its stack pointer; everything
// live is spilled to the stack by the switch primitive.
struct Context {
  void* sp = nullptr;
#if !HYP_ASM_CONTEXT
  void* impl = nullptr;  // ucontext_t*, owned
#endif
};

// Transfers control from the running context (saved into `from`) to `to`.
void context_switch(Context* from, Context* to);

// Prepares `ctx` so the first switch into it invokes entry(arg) on the given
// stack. `stack_base` is the lowest usable address; the stack grows down from
// stack_base + stack_size.
void context_make(Context* ctx, void* stack_base, std::size_t stack_size,
                  void (*entry)(void*), void* arg);

// Releases any per-context resources (a no-op for the asm implementation).
void context_destroy(Context* ctx);

// Stack allocation with a PROT_NONE guard page below the stack, so that a
// fiber blowing its stack faults loudly instead of corrupting a neighbour.
struct StackAllocation {
  void* mapping = nullptr;      // base of the whole mapping (guard included)
  std::size_t mapping_size = 0;
  void* usable_base = nullptr;  // first usable byte (above the guard)
  std::size_t usable_size = 0;
};

StackAllocation stack_allocate(std::size_t usable_size);
void stack_free(const StackAllocation& stack);

}  // namespace hyp::sim
