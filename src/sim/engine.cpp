#include "sim/engine.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace hyp::sim {

namespace {
thread_local Engine* t_current_engine = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// Fiber

Fiber::Fiber(Engine* engine, std::string name, UniqueFunction<void()> body,
             std::size_t stack_bytes, bool daemon)
    : engine_(engine), name_(std::move(name)), body_(std::move(body)), daemon_(daemon) {
  stack_ = stack_allocate(stack_bytes);
  context_make(&context_, stack_.usable_base, stack_.usable_size, &Fiber::entry, this);
}

Fiber::~Fiber() {
  context_destroy(&context_);
  stack_free(stack_);
}

void Fiber::entry(void* self) {
  auto* fiber = static_cast<Fiber*>(self);
  Engine* engine = fiber->engine_;
  {
    // Move the body onto this fiber's stack so captured resources die with
    // the invocation, not with the Fiber object.
    UniqueFunction<void()> body = std::move(fiber->body_);
    body();
  }
  fiber->state_ = FiberState::kDone;
  for (Fiber* joiner : fiber->joiners_) engine->unpark(joiner);
  fiber->joiners_.clear();
  // Return control to the scheduler permanently.
  context_switch(&fiber->context_, &engine->scheduler_context_);
  HYP_PANIC("resumed a completed fiber");
}

// ---------------------------------------------------------------------------
// Engine

Engine::Engine() = default;

Engine::~Engine() {
  HYP_CHECK_MSG(!running_, "engine destroyed while running");
}

Engine* Engine::current() { return t_current_engine; }

Fiber* Engine::spawn(std::string name, UniqueFunction<void()> body, std::size_t stack_bytes) {
  std::unique_ptr<Fiber> fiber(
      new Fiber(this, std::move(name), std::move(body), stack_bytes, /*daemon=*/false));
  Fiber* raw = fiber.get();
  fibers_.push_back(std::move(fiber));
  schedule_wakeup(raw, now_, FiberState::kReadyQueued);
  return raw;
}

Fiber* Engine::spawn_daemon(std::string name, UniqueFunction<void()> body,
                            std::size_t stack_bytes) {
  Fiber* raw = spawn(std::move(name), std::move(body), stack_bytes);
  raw->daemon_ = true;
  return raw;
}

void Engine::post(Time at, UniqueFunction<void()> fn) {
  HYP_CHECK_MSG(at >= now_, "posting an event into the past");
  auto event = std::make_unique<Event>();
  event->at = at;
  event->seq = next_seq_++;
  event->fiber = nullptr;
  event->callback = std::move(fn);
  events_.push(std::move(event));
}

void Engine::schedule_wakeup(Fiber* fiber, Time at, FiberState pending_state) {
  HYP_CHECK_MSG(at >= now_, "scheduling a wakeup into the past");
  HYP_CHECK_MSG(fiber->state_ == FiberState::kRunning || fiber->state_ == FiberState::kParked,
                "fiber already has a pending wakeup");
  auto event = std::make_unique<Event>();
  event->at = at;
  event->seq = next_seq_++;
  event->fiber = fiber;
  events_.push(std::move(event));
  fiber->state_ = pending_state;
}

std::vector<std::string> Engine::run() {
  HYP_CHECK_MSG(!running_, "Engine::run is not reentrant");
  HYP_CHECK_MSG(t_current_engine == nullptr, "another engine is running on this thread");
  running_ = true;
  t_current_engine = this;

  while (!events_.empty()) {
    // priority_queue::top() is const; the unique_ptr must be moved out via a
    // const_cast-free route: copy the raw pointer, pop, then use it.
    auto event = std::move(const_cast<std::unique_ptr<Event>&>(events_.top()));
    events_.pop();
    HYP_CHECK(event->at >= now_);
    now_ = event->at;
    ++events_processed_;

    if (event->fiber != nullptr) {
      Fiber* fiber = event->fiber;
      HYP_CHECK_MSG(fiber->state_ == FiberState::kReadyQueued ||
                        fiber->state_ == FiberState::kSleeping,
                    "wakeup for a fiber in an unexpected state");
      switch_to(fiber);
    } else {
      event->callback();
    }
  }

  running_ = false;
  t_current_engine = nullptr;

  std::vector<std::string> stuck;
  for (const auto& fiber : fibers_) {
    if (!fiber->done() && !fiber->daemon_) stuck.push_back(fiber->name());
  }
  if (!stuck.empty()) {
    HYP_WARN("simulation quiesced with " << stuck.size() << " blocked non-daemon fiber(s)");
  }
  return stuck;
}

void Engine::switch_to(Fiber* fiber) {
  fiber->state_ = FiberState::kRunning;
  current_ = fiber;
  ++switches_;
  context_switch(&scheduler_context_, &fiber->context_);
  current_ = nullptr;
}

void Engine::switch_out() {
  Fiber* fiber = current_;
  ++switches_;
  context_switch(&fiber->context_, &scheduler_context_);
}

void Engine::require_fiber_context(const char* what) const {
  HYP_CHECK_MSG(current_ != nullptr, std::string(what) + " called outside a fiber");
}

void Engine::sleep_until(Time t) {
  require_fiber_context("sleep_until");
  HYP_CHECK_MSG(t >= now_, "sleeping into the past");
  schedule_wakeup(current_, t, FiberState::kSleeping);
  switch_out();
}

void Engine::yield() {
  require_fiber_context("yield");
  schedule_wakeup(current_, now_, FiberState::kReadyQueued);
  switch_out();
}

void Engine::park() {
  require_fiber_context("park");
  Fiber* fiber = current_;
  if (fiber->permit_) {
    fiber->permit_ = false;
    return;
  }
  fiber->state_ = FiberState::kParked;
  switch_out();
}

void Engine::unpark(Fiber* fiber) {
  HYP_CHECK(fiber != nullptr);
  switch (fiber->state_) {
    case FiberState::kParked:
      schedule_wakeup(fiber, now_, FiberState::kReadyQueued);
      break;
    case FiberState::kRunning:
    case FiberState::kReadyQueued:
    case FiberState::kSleeping:
      fiber->permit_ = true;
      break;
    case FiberState::kDone:
      break;  // waking the dead is a no-op
  }
}

void Engine::join(Fiber* fiber) {
  require_fiber_context("join");
  HYP_CHECK_MSG(fiber != current_, "a fiber cannot join itself");
  while (!fiber->done()) {
    fiber->joiners_.push_back(current_);
    park();
  }
}

}  // namespace hyp::sim
