#include "sim/engine.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace hyp::sim {

namespace {
thread_local Engine* t_current_engine = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// Fiber

Fiber::Fiber(Engine* engine, std::string name, UniqueFunction<void()> body,
             std::size_t stack_bytes, bool daemon)
    : engine_(engine), name_(std::move(name)), body_(std::move(body)), daemon_(daemon) {
  stack_ = stack_allocate(stack_bytes);
  context_make(&context_, stack_.usable_base, stack_.usable_size, &Fiber::entry, this);
}

Fiber::~Fiber() {
  context_destroy(&context_);
  stack_free(stack_);
}

void Fiber::entry(void* self) {
  auto* fiber = static_cast<Fiber*>(self);
  Engine* engine = fiber->engine_;
  {
    // Move the body onto this fiber's stack so captured resources die with
    // the invocation, not with the Fiber object.
    UniqueFunction<void()> body = std::move(fiber->body_);
    body();
  }
  fiber->state_ = FiberState::kDone;
  for (Fiber* joiner : fiber->joiners_) engine->unpark(joiner);
  fiber->joiners_.clear();
  // Return control to the scheduler permanently.
  context_switch(&fiber->context_, &engine->scheduler_context_);
  HYP_PANIC("resumed a completed fiber");
}

// ---------------------------------------------------------------------------
// Engine

Engine::Engine() {
  shards_.resize(1);
  merge_pos_.assign(1, kNotInMerge);
}

Engine::~Engine() {
  HYP_CHECK_MSG(!running_, "engine destroyed while running");
}

Engine* Engine::current() { return t_current_engine; }

Fiber* Engine::spawn_impl(std::uint32_t shard, std::string name, UniqueFunction<void()> body,
                          std::size_t stack_bytes, bool daemon) {
  std::unique_ptr<Fiber> fiber(
      new Fiber(this, std::move(name), std::move(body), stack_bytes, daemon));
  Fiber* raw = fiber.get();
  raw->shard_ = shard;
  fibers_.push_back(std::move(fiber));
  schedule_wakeup(raw, now_, FiberState::kReadyQueued);
  return raw;
}

Fiber* Engine::spawn(std::string name, UniqueFunction<void()> body, std::size_t stack_bytes) {
  return spawn_impl(active_shard_, std::move(name), std::move(body), stack_bytes,
                    /*daemon=*/false);
}

Fiber* Engine::spawn_daemon(std::string name, UniqueFunction<void()> body,
                            std::size_t stack_bytes) {
  Fiber* raw = spawn(std::move(name), std::move(body), stack_bytes);
  raw->daemon_ = true;
  return raw;
}

Fiber* Engine::spawn_on(std::uint32_t shard, std::string name, UniqueFunction<void()> body,
                        std::size_t stack_bytes) {
  HYP_CHECK_MSG(shard < shards_.size(), "spawn_on: shard out of range");
  return spawn_impl(shard, std::move(name), std::move(body), stack_bytes, /*daemon=*/false);
}

void Engine::configure_shards(std::uint32_t count) {
  HYP_CHECK_MSG(count >= 1, "configure_shards: need at least one shard");
  HYP_CHECK_MSG(!running_ && pending_total_ == 0 && next_seq_ == 0,
                "configure_shards must be called before any event exists");
  shards_.assign(count, Shard{});
  merge_.clear();
  merge_.reserve(count);
  merge_pos_.assign(count, kNotInMerge);
}

// ---------------------------------------------------------------------------
// Event heap + callback pool
//
// A flat binary min-heap of by-value 32-byte events replaces the old
// priority_queue<unique_ptr<Event>>: no per-event `new`, no pointer chase
// per comparison, and fiber wakeups (the overwhelming majority of events)
// carry no callback state at all. Posted callbacks are parked in a slot
// pool recycled through a free list, so the steady-state event path is
// allocation-free (docs/PERFORMANCE.md).

Engine::Event Engine::pop_event() {
  // Which shard holds the globally next (at, seq) event: with one shard it
  // is trivially shard 0 (no merge layer at all); otherwise the merge heap's
  // root. Sharding is pure executor layout — every event still carries a
  // unique global seq, so this pop order is bit-identical to a flat heap.
  const std::uint32_t s = shards_.size() > 1 ? merge_.front() : 0;
  active_shard_ = s;
  auto& heap = shards_[s].heap;
  const Event top = heap.front();
  const Event last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (n != 0) {
    // Sift the former last element down from the root.
    std::size_t i = 0;
    while (true) {
      const std::size_t l = 2 * i + 1;
      if (l >= n) break;
      const std::size_t r = l + 1;
      std::size_t best = (r < n && event_before(heap[r], heap[l])) ? r : l;
      if (!event_before(heap[best], last)) break;
      heap[i] = heap[best];
      i = best;
    }
    heap[i] = last;
  }
  --pending_total_;
  if (shards_.size() > 1) {
    // The popped shard's key (its head) either disappeared or grew, so the
    // fix-up is a removal or an O(log K) sift-down of the merge root.
    if (heap.empty()) {
      merge_remove_top();
    } else {
      merge_sift_down(0);
    }
  }
  return top;
}

void Engine::merge_sift_up(std::size_t i) {
  const std::uint32_t shard = merge_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!merge_shard_before(shard, merge_[parent])) break;
    merge_place(i, merge_[parent]);
    i = parent;
  }
  merge_place(i, shard);
}

void Engine::merge_sift_down(std::size_t i) {
  const std::uint32_t shard = merge_[i];
  const std::size_t n = merge_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    const std::size_t r = l + 1;
    const std::size_t best = (r < n && merge_shard_before(merge_[r], merge_[l])) ? r : l;
    if (!merge_shard_before(merge_[best], shard)) break;
    merge_place(i, merge_[best]);
    i = best;
  }
  merge_place(i, shard);
}

void Engine::merge_insert(std::uint32_t shard) {
  merge_.push_back(shard);
  merge_pos_[shard] = static_cast<std::uint32_t>(merge_.size() - 1);
  merge_sift_up(merge_.size() - 1);
}

void Engine::merge_remove_top() {
  merge_pos_[merge_.front()] = kNotInMerge;
  const std::uint32_t last = merge_.back();
  merge_.pop_back();
  if (!merge_.empty()) {
    merge_place(0, last);
    merge_sift_down(0);
  }
}

std::vector<std::string> Engine::run() {
  HYP_CHECK_MSG(!running_, "Engine::run is not reentrant");
  HYP_CHECK_MSG(t_current_engine == nullptr, "another engine is running on this thread");
  running_ = true;
  t_current_engine = this;

  while (pending_total_ != 0) {
    const Event event = pop_event();
    HYP_CHECK(event.at >= now_);
    now_ = event.at;
    ++events_processed_;

    if (event.fiber != nullptr) {
      Fiber* fiber = event.fiber;
      HYP_CHECK_MSG(fiber->state_ == FiberState::kReadyQueued ||
                        fiber->state_ == FiberState::kSleeping,
                    "wakeup for a fiber in an unexpected state");
      switch_to(fiber);
    } else {
      // Move the callback out and recycle its slot BEFORE invoking: the
      // callback may post new events that reuse the (now empty) slot.
      UniqueFunction<void()> callback = std::move(cb_slots_[event.cb]);
      cb_free_.push_back(event.cb);
      callback();
    }
  }

  running_ = false;
  t_current_engine = nullptr;
  active_shard_ = 0;  // spawns/posts between runs go back to the default shard

  std::vector<std::string> stuck;
  for (const auto& fiber : fibers_) {
    if (!fiber->done() && !fiber->daemon_) stuck.push_back(fiber->name());
  }
  if (!stuck.empty()) {
    HYP_WARN("simulation quiesced with " << stuck.size() << " blocked non-daemon fiber(s)");
  }
  return stuck;
}

void Engine::switch_to(Fiber* fiber) {
  fiber->state_ = FiberState::kRunning;
  current_ = fiber;
  ++switches_;
  context_switch(&scheduler_context_, &fiber->context_);
  current_ = nullptr;
}

void Engine::switch_out() {
  Fiber* fiber = current_;
  ++switches_;
  context_switch(&fiber->context_, &scheduler_context_);
}

void Engine::fail_no_fiber(const char* what) {
  HYP_PANIC(std::string(what) + " called outside a fiber");
}

void Engine::park() {
  require_fiber_context("park");
  Fiber* fiber = current_;
  if (fiber->permit_) {
    fiber->permit_ = false;
    return;
  }
  fiber->state_ = FiberState::kParked;
  switch_out();
}

void Engine::unpark(Fiber* fiber) {
  HYP_CHECK(fiber != nullptr);
  switch (fiber->state_) {
    case FiberState::kParked:
      schedule_wakeup(fiber, now_, FiberState::kReadyQueued);
      break;
    case FiberState::kRunning:
    case FiberState::kReadyQueued:
    case FiberState::kSleeping:
      fiber->permit_ = true;
      break;
    case FiberState::kDone:
      break;  // waking the dead is a no-op
  }
}

void Engine::join(Fiber* fiber) {
  require_fiber_context("join");
  HYP_CHECK_MSG(fiber != current_, "a fiber cannot join itself");
  while (!fiber->done()) {
    fiber->joiners_.push_back(current_);
    park();
  }
}

}  // namespace hyp::sim
