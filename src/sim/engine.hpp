// The discrete-event simulation engine.
//
// This is the "hardware" substitute for the paper's clusters: a virtual clock
// in picoseconds, a priority queue of timed events, and cooperative fibers
// standing in for node-local threads (PM2's Marcel threads). Everything runs
// on one OS thread, so a simulation is a deterministic function of its inputs
// — two runs of a benchmark produce bit-identical timings and statistics.
//
// Determinism contract: events fire in (time, creation sequence) order; all
// randomness flows through seeded hyp::Rng instances.
//
// The queue can be sharded (configure_shards): each shard keeps its own
// binary min-heap and a top-level indexed heap merges the shard heads, so
// the global pop order stays exactly (at, seq) — bit-identical to the flat
// heap — while pushes and pops touch only one small heap plus an O(log K)
// head fix-up. The cluster layer shards per node at large N
// (docs/SCALING.md); the default single shard IS the historical flat heap,
// same code path, same goldens.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/function.hpp"
#include "common/units.hpp"
#include "sim/context.hpp"

namespace hyp::sim {

class Engine;

enum class FiberState {
  kReadyQueued,  // has a pending wakeup event in the queue
  kRunning,
  kParked,       // blocked until unpark()
  kSleeping,     // blocked until a timer event
  kDone,
};

// A cooperative thread of execution inside the simulation. Created via
// Engine::spawn; never instantiated directly.
class Fiber {
 public:
  const std::string& name() const { return name_; }
  bool done() const { return state_ == FiberState::kDone; }
  FiberState state() const { return state_; }

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

 private:
  friend class Engine;
  Fiber(Engine* engine, std::string name, UniqueFunction<void()> body, std::size_t stack_bytes,
        bool daemon);

  static void entry(void* self);

  Engine* engine_;
  std::string name_;
  UniqueFunction<void()> body_;
  StackAllocation stack_;
  Context context_{};
  FiberState state_ = FiberState::kParked;
  bool permit_ = false;  // a wakeup that arrived while not parked
  bool daemon_ = false;  // daemons may be parked at quiescence without error
  std::uint32_t shard_ = 0;  // event-queue shard its wakeups are pushed to
  std::vector<Fiber*> joiners_;
};

class Engine {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Creates a fiber that becomes runnable at the current virtual time.
  // Callable both from outside run() (initial population) and from inside
  // fibers (dynamic thread creation).
  Fiber* spawn(std::string name, UniqueFunction<void()> body,
               std::size_t stack_bytes = kDefaultStackBytes);

  // Daemon fibers (message dispatchers, servers) are allowed to still be
  // blocked when the simulation quiesces.
  Fiber* spawn_daemon(std::string name, UniqueFunction<void()> body,
                      std::size_t stack_bytes = kDefaultStackBytes);

  // spawn() pinned to an explicit queue shard: the fiber's wakeup events
  // (sleep, yield, unpark) are pushed to that shard for its whole life.
  // Plain spawn() inherits the shard of the event being dispatched.
  Fiber* spawn_on(std::uint32_t shard, std::string name, UniqueFunction<void()> body,
                  std::size_t stack_bytes = kDefaultStackBytes);

  // Schedules `fn` to run on the scheduler stack at time `at`. The callback
  // must not block; it typically deposits a message and unparks a fiber.
  //
  // post/sleep/yield are defined inline below: they run once or more per
  // simulated event (millions per benchmark) and most callers live in other
  // translation units (sync.cpp, cluster.cpp), so out-of-line definitions
  // would put a call on the hottest path in the program.
  void post(Time at, UniqueFunction<void()> fn) {
    HYP_CHECK_MSG(at >= now_, "posting an event into the past (at=" + std::to_string(at) +
                                  " now=" + std::to_string(now_) + ")");
    push_event(active_shard_, Event{at, next_seq_++, nullptr, cb_acquire(std::move(fn))});
  }

  // Like post(), but targets an explicit queue shard. Sharding is purely an
  // executor-layout choice: the (at, seq) pop order is identical no matter
  // which shard an event lands in. Plain post() inherits the shard of the
  // event currently being dispatched, so node-local chains stay node-local.
  void post_on(std::uint32_t shard, Time at, UniqueFunction<void()> fn) {
    HYP_CHECK_MSG(at >= now_, "posting an event into the past (at=" + std::to_string(at) +
                                  " now=" + std::to_string(now_) + ")");
    HYP_CHECK_MSG(shard < shards_.size(), "post_on: shard out of range");
    push_event(shard, Event{at, next_seq_++, nullptr, cb_acquire(std::move(fn))});
  }

  // Splits the event queue into `count` shards (see the header comment).
  // Must be called before any event is created; the engine starts with one
  // shard, which is exactly the historical flat heap.
  void configure_shards(std::uint32_t count);
  std::uint32_t shard_count() const { return static_cast<std::uint32_t>(shards_.size()); }

  // Runs the simulation until no events remain. Returns the names of
  // non-daemon fibers that are still blocked (deadlock / lost wakeups);
  // an empty vector means clean quiescence.
  std::vector<std::string> run();

  Time now() const { return now_; }
  std::uint64_t context_switches() const { return switches_; }
  std::uint64_t events_processed() const { return events_processed_; }

  // --- Fiber-side API (must be called from inside a running fiber) ---
  void sleep_until(Time t) {
    require_fiber_context("sleep_until");
    HYP_CHECK_MSG(t >= now_, "sleeping into the past");
    schedule_wakeup(current_, t, FiberState::kSleeping);
    switch_out();
  }
  void sleep_for(TimeDelta dt) { sleep_until(now_ + dt); }
  // Re-queues the caller behind already-pending same-time events.
  void yield() {
    require_fiber_context("yield");
    schedule_wakeup(current_, now_, FiberState::kReadyQueued);
    switch_out();
  }
  // Blocks until unpark(). A permit delivered while runnable makes the next
  // park() return immediately (exactly once).
  void park();
  void unpark(Fiber* fiber);
  // Blocks until `fiber` completes. Joining a done fiber returns immediately.
  void join(Fiber* fiber);

  Fiber* current_fiber() const { return current_; }
  bool in_fiber() const { return current_ != nullptr; }

  // The engine currently executing run() on this OS thread, if any.
  static Engine* current();

  // --- event-pool introspection (tests / host-perf diagnostics) -----------
  std::size_t pending_events() const { return pending_total_; }
  std::size_t event_heap_capacity() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) total += s.heap.capacity();
    return total;
  }
  std::size_t callback_pool_slots() const { return cb_slots_.size(); }
  std::size_t callback_pool_free() const { return cb_free_.size(); }

 private:
  friend class Fiber;

  // By-value heap entry: 32 bytes, trivially copyable. Fiber wakeups carry
  // no callback at all; posted callbacks live in the pooled slot `cb`, so
  // pushing/popping/sifting never allocates and never runs a destructor.
  struct Event {
    Time at;
    std::uint64_t seq;
    Fiber* fiber;       // nullptr for callback events
    std::uint32_t cb;   // index into cb_slots_, kNoCallback for wakeups
  };
  static constexpr std::uint32_t kNoCallback = 0xffffffffu;

  static bool event_before(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;  // the determinism tiebreak: creation order
  }

  // One shard = one binary min-heap ordered by event_before. merge_ is an
  // indexed heap over the *non-empty* shards keyed by their head events, so
  // the globally next event is shards_[merge_.front()].heap.front();
  // merge_pos_[s] is shard s's slot in merge_ (kNotInMerge while empty).
  // With a single shard the merge layer is skipped entirely — that is the
  // historical flat-heap code path, instruction for instruction.
  struct Shard {
    std::vector<Event> heap;
  };
  static constexpr std::uint32_t kNotInMerge = 0xffffffffu;

  void push_event(std::uint32_t shard, const Event& e) {
    auto& heap = shards_[shard].heap;
    heap.push_back(e);
    std::size_t i = heap.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!event_before(heap[i], heap[parent])) break;
      std::swap(heap[i], heap[parent]);
      i = parent;
    }
    ++pending_total_;
    // A push can only *lower* a shard's key (its head event), so the merge
    // fix-up is an O(log K) sift-up — and only when the head actually changed.
    if (shards_.size() > 1) {
      if (merge_pos_[shard] == kNotInMerge) {
        merge_insert(shard);
      } else if (i == 0) {
        merge_sift_up(merge_pos_[shard]);
      }
    }
  }
  Event pop_event();  // also records the source shard in active_shard_

  bool merge_shard_before(std::uint32_t a, std::uint32_t b) const {
    return event_before(shards_[a].heap.front(), shards_[b].heap.front());
  }
  void merge_place(std::size_t i, std::uint32_t shard) {
    merge_[i] = shard;
    merge_pos_[shard] = static_cast<std::uint32_t>(i);
  }
  void merge_sift_up(std::size_t i);
  void merge_sift_down(std::size_t i);
  void merge_insert(std::uint32_t shard);
  void merge_remove_top();
  std::uint32_t cb_acquire(UniqueFunction<void()> fn) {
    std::uint32_t idx;
    if (!cb_free_.empty()) {
      idx = cb_free_.back();
      cb_free_.pop_back();
      cb_slots_[idx] = std::move(fn);
    } else {
      idx = static_cast<std::uint32_t>(cb_slots_.size());
      cb_slots_.push_back(std::move(fn));
    }
    return idx;
  }

  void schedule_wakeup(Fiber* fiber, Time at, FiberState pending_state) {
    HYP_CHECK_MSG(at >= now_, "scheduling a wakeup into the past");
    HYP_CHECK_MSG(fiber->state_ == FiberState::kRunning || fiber->state_ == FiberState::kParked,
                  "fiber already has a pending wakeup");
    push_event(fiber->shard_, Event{at, next_seq_++, fiber, kNoCallback});
    fiber->state_ = pending_state;
  }
  Fiber* spawn_impl(std::uint32_t shard, std::string name, UniqueFunction<void()> body,
                    std::size_t stack_bytes, bool daemon);
  void switch_to(Fiber* fiber);
  void switch_out();  // fiber -> scheduler
  void require_fiber_context(const char* what) const {
    if (current_ == nullptr) [[unlikely]] fail_no_fiber(what);
  }
  [[noreturn]] static void fail_no_fiber(const char* what);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t events_processed_ = 0;
  bool running_ = false;
  Fiber* current_ = nullptr;
  Context scheduler_context_{};
  // The event queue: one binary min-heap per shard plus the merge heap of
  // shard heads. The engine starts with one shard (= the flat heap).
  std::vector<Shard> shards_;
  std::vector<std::uint32_t> merge_;      // heap of non-empty shard indices
  std::vector<std::uint32_t> merge_pos_;  // [shard] -> slot in merge_
  std::size_t pending_total_ = 0;         // events across all shards
  std::uint32_t active_shard_ = 0;        // shard of the event being dispatched
  // Free-list pool of callback slots: a slot is acquired by post(), released
  // (and its UniqueFunction moved out) when the event fires. Steady state
  // recycles slots with no allocation; SBO callbacks never touch the heap.
  std::vector<UniqueFunction<void()>> cb_slots_;
  std::vector<std::uint32_t> cb_free_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
};

// Convenience accessors for code running inside fibers.
inline Time now() { return Engine::current()->now(); }
inline void sleep_for(TimeDelta dt) { Engine::current()->sleep_for(dt); }
inline void sleep_until(Time t) { Engine::current()->sleep_until(t); }
inline void yield() { Engine::current()->yield(); }

}  // namespace hyp::sim
