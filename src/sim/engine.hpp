// The discrete-event simulation engine.
//
// This is the "hardware" substitute for the paper's clusters: a virtual clock
// in picoseconds, a priority queue of timed events, and cooperative fibers
// standing in for node-local threads (PM2's Marcel threads). Everything runs
// on one OS thread, so a simulation is a deterministic function of its inputs
// — two runs of a benchmark produce bit-identical timings and statistics.
//
// Determinism contract: events fire in (time, creation sequence) order; all
// randomness flows through seeded hyp::Rng instances.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/function.hpp"
#include "common/units.hpp"
#include "sim/context.hpp"

namespace hyp::sim {

class Engine;

enum class FiberState {
  kReadyQueued,  // has a pending wakeup event in the queue
  kRunning,
  kParked,       // blocked until unpark()
  kSleeping,     // blocked until a timer event
  kDone,
};

// A cooperative thread of execution inside the simulation. Created via
// Engine::spawn; never instantiated directly.
class Fiber {
 public:
  const std::string& name() const { return name_; }
  bool done() const { return state_ == FiberState::kDone; }
  FiberState state() const { return state_; }

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

 private:
  friend class Engine;
  Fiber(Engine* engine, std::string name, UniqueFunction<void()> body, std::size_t stack_bytes,
        bool daemon);

  static void entry(void* self);

  Engine* engine_;
  std::string name_;
  UniqueFunction<void()> body_;
  StackAllocation stack_;
  Context context_{};
  FiberState state_ = FiberState::kParked;
  bool permit_ = false;  // a wakeup that arrived while not parked
  bool daemon_ = false;  // daemons may be parked at quiescence without error
  std::vector<Fiber*> joiners_;
};

class Engine {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Creates a fiber that becomes runnable at the current virtual time.
  // Callable both from outside run() (initial population) and from inside
  // fibers (dynamic thread creation).
  Fiber* spawn(std::string name, UniqueFunction<void()> body,
               std::size_t stack_bytes = kDefaultStackBytes);

  // Daemon fibers (message dispatchers, servers) are allowed to still be
  // blocked when the simulation quiesces.
  Fiber* spawn_daemon(std::string name, UniqueFunction<void()> body,
                      std::size_t stack_bytes = kDefaultStackBytes);

  // Schedules `fn` to run on the scheduler stack at time `at`. The callback
  // must not block; it typically deposits a message and unparks a fiber.
  void post(Time at, UniqueFunction<void()> fn);

  // Runs the simulation until no events remain. Returns the names of
  // non-daemon fibers that are still blocked (deadlock / lost wakeups);
  // an empty vector means clean quiescence.
  std::vector<std::string> run();

  Time now() const { return now_; }
  std::uint64_t context_switches() const { return switches_; }
  std::uint64_t events_processed() const { return events_processed_; }

  // --- Fiber-side API (must be called from inside a running fiber) ---
  void sleep_until(Time t);
  void sleep_for(TimeDelta dt) { sleep_until(now_ + dt); }
  // Re-queues the caller behind already-pending same-time events.
  void yield();
  // Blocks until unpark(). A permit delivered while runnable makes the next
  // park() return immediately (exactly once).
  void park();
  void unpark(Fiber* fiber);
  // Blocks until `fiber` completes. Joining a done fiber returns immediately.
  void join(Fiber* fiber);

  Fiber* current_fiber() const { return current_; }
  bool in_fiber() const { return current_ != nullptr; }

  // The engine currently executing run() on this OS thread, if any.
  static Engine* current();

 private:
  friend class Fiber;

  struct Event {
    Time at;
    std::uint64_t seq;
    Fiber* fiber;                 // nullptr for callback events
    UniqueFunction<void()> callback;
  };
  struct EventCompare {
    bool operator()(const std::unique_ptr<Event>& a, const std::unique_ptr<Event>& b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  void schedule_wakeup(Fiber* fiber, Time at, FiberState pending_state);
  void switch_to(Fiber* fiber);
  void switch_out();  // fiber -> scheduler
  void require_fiber_context(const char* what) const;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t events_processed_ = 0;
  bool running_ = false;
  Fiber* current_ = nullptr;
  Context scheduler_context_{};
  std::priority_queue<std::unique_ptr<Event>, std::vector<std::unique_ptr<Event>>, EventCompare>
      events_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
};

// Convenience accessors for code running inside fibers.
inline Time now() { return Engine::current()->now(); }
inline void sleep_for(TimeDelta dt) { Engine::current()->sleep_for(dt); }
inline void sleep_until(Time t) { Engine::current()->sleep_until(t); }
inline void yield() { Engine::current()->yield(); }

}  // namespace hyp::sim
