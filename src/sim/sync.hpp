// Fiber synchronization primitives in virtual time.
//
// These model the node-local synchronization PM2's Marcel thread library
// provided. They are *not* OS primitives: blocking suspends the fiber and
// advances the simulation. All queues are FIFO, which together with the
// engine's deterministic event ordering makes lock handoff reproducible.
#pragma once

#include <deque>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"

namespace hyp::sim {

class SimMutex {
 public:
  explicit SimMutex(Engine* engine) : engine_(engine) {}
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  void lock();
  void unlock();
  bool try_lock();
  bool held_by_current() const { return owner_ == engine_->current_fiber(); }

 private:
  Engine* engine_;
  Fiber* owner_ = nullptr;
  std::deque<Fiber*> waiters_;
};

// RAII guard matching std::lock_guard's shape.
class SimLockGuard {
 public:
  explicit SimLockGuard(SimMutex& m) : m_(m) { m_.lock(); }
  ~SimLockGuard() { m_.unlock(); }
  SimLockGuard(const SimLockGuard&) = delete;
  SimLockGuard& operator=(const SimLockGuard&) = delete;

 private:
  SimMutex& m_;
};

class SimCondVar {
 public:
  explicit SimCondVar(Engine* engine) : engine_(engine) {}
  SimCondVar(const SimCondVar&) = delete;
  SimCondVar& operator=(const SimCondVar&) = delete;

  // Atomically releases `m` and blocks; reacquires `m` before returning.
  void wait(SimMutex& m);
  void notify_one();
  void notify_all();

 private:
  struct Waiter {
    Fiber* fiber;
    bool signaled = false;
  };
  Engine* engine_;
  std::deque<Waiter*> waiters_;  // nodes live on the waiting fibers' stacks
};

class SimBarrier {
 public:
  SimBarrier(Engine* engine, int parties) : engine_(engine), parties_(parties) {
    HYP_CHECK(parties > 0);
  }
  SimBarrier(const SimBarrier&) = delete;
  SimBarrier& operator=(const SimBarrier&) = delete;

  // Blocks until `parties` fibers have arrived; reusable across generations.
  void arrive_and_wait();

 private:
  Engine* engine_;
  int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::deque<Fiber*> waiters_;
};

// A FIFO service resource with a given service discipline: callers occupy the
// server for a duration and block until their service completes. Models a
// node's DSM/RPC service capacity — a hot home node makes later requests
// queue behind earlier ones (the congestion effect in the paper's Barnes
// discussion). Because the simulation is single-threaded and cooperative,
// first-come-first-served falls directly out of the completion-time algebra.
class FifoServer {
 public:
  explicit FifoServer(Engine* engine) : engine_(engine) {}
  FifoServer(const FifoServer&) = delete;
  FifoServer& operator=(const FifoServer&) = delete;

  // Blocks the calling fiber until its service of length `duration`
  // completes; returns the virtual time at which service started.
  // Inline: CpuClock::flush calls this once per timeslice quantum, which
  // makes it one of the most frequently executed functions in a run.
  Time serve(TimeDelta duration) {
    const Time start = reserve(duration);
    engine_->sleep_until(start + duration);
    return start;
  }

  // Accounts for service occupancy without blocking the caller (used when
  // the "work" happens inside a handler fiber that is itself being timed).
  Time reserve(TimeDelta duration) {
    const Time now = engine_->now();
    const Time start = now > free_at_ ? now : free_at_;
    free_at_ = start + duration;
    ++jobs_;
    busy_ += duration;
    return start;
  }

  Time free_at() const { return free_at_; }
  std::uint64_t jobs_served() const { return jobs_; }
  TimeDelta busy_time() const { return busy_; }

 private:
  Engine* engine_;
  Time free_at_ = 0;
  std::uint64_t jobs_ = 0;
  TimeDelta busy_ = 0;
};

}  // namespace hyp::sim
