#include "sim/context.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>

#include "common/assert.hpp"

// AddressSanitizer support (-DHYP_SANITIZE=address): instrumented code
// running on a fiber stack leaves redzone poison in ASan's shadow memory.
// munmap does not clear shadow, so a later fiber whose stack mmap lands on
// the same addresses would inherit stale poison and report false
// stack-buffer-overflows. Explicitly unpoison stacks on both allocate and
// free.
#if defined(__SANITIZE_ADDRESS__)
#define HYP_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HYP_ASAN 1
#endif
#endif
#ifdef HYP_ASAN
#include <sanitizer/asan_interface.h>
#endif

#if !HYP_ASM_CONTEXT
#include <ucontext.h>
#endif

namespace hyp::sim {

#if HYP_ASM_CONTEXT

extern "C" {
void hyp_ctx_switch(void** save_sp, void* restore_sp);
void hyp_ctx_trampoline();
}

void context_switch(Context* from, Context* to) {
  hyp_ctx_switch(&from->sp, to->sp);
}

void context_make(Context* ctx, void* stack_base, std::size_t stack_size,
                  void (*entry)(void*), void* arg) {
  auto top = reinterpret_cast<std::uintptr_t>(stack_base) + stack_size;
  top &= ~std::uintptr_t{15};  // 16-byte aligned "base" the trampoline runs on

  auto* slots = reinterpret_cast<std::uint64_t*>(top);
  slots[-1] = reinterpret_cast<std::uint64_t>(&hyp_ctx_trampoline);  // ret addr
  slots[-2] = 0;                                                     // rbp
  slots[-3] = 0;                                                     // rbx
  slots[-4] = 0;                                                     // r12
  slots[-5] = 0;                                                     // r13
  slots[-6] = reinterpret_cast<std::uint64_t>(entry);                // r14
  slots[-7] = reinterpret_cast<std::uint64_t>(arg);                  // r15

  // FP control block: capture the caller's current control words so the
  // fiber starts with sane rounding/exception masks.
  std::uint32_t mxcsr;
  std::uint16_t fcw;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  auto* fpblock = reinterpret_cast<std::uint8_t*>(top - 8 * 8);
  std::memset(fpblock, 0, 8);
  std::memcpy(fpblock + 0, &fcw, sizeof(fcw));
  std::memcpy(fpblock + 4, &mxcsr, sizeof(mxcsr));

  ctx->sp = fpblock;
}

void context_destroy(Context* ctx) { ctx->sp = nullptr; }

#else  // ucontext fallback

namespace {
struct TrampolineArgs {
  void (*entry)(void*);
  void* arg;
};
// makecontext only passes ints portably; stash the call through a thread
// local instead.
thread_local TrampolineArgs t_pending{};

void ucontext_trampoline() {
  TrampolineArgs args = t_pending;
  args.entry(args.arg);
  HYP_PANIC("fiber entry returned");
}
}  // namespace

void context_switch(Context* from, Context* to) {
  auto* from_uc = static_cast<ucontext_t*>(from->impl);
  auto* to_uc = static_cast<ucontext_t*>(to->impl);
  HYP_CHECK(from_uc != nullptr && to_uc != nullptr);
  HYP_CHECK(swapcontext(from_uc, to_uc) == 0);
}

void context_make(Context* ctx, void* stack_base, std::size_t stack_size,
                  void (*entry)(void*), void* arg) {
  auto* uc = new ucontext_t;
  HYP_CHECK(getcontext(uc) == 0);
  uc->uc_stack.ss_sp = stack_base;
  uc->uc_stack.ss_size = stack_size;
  uc->uc_link = nullptr;
  t_pending = {entry, arg};
  makecontext(uc, ucontext_trampoline, 0);
  ctx->impl = uc;
}

void context_destroy(Context* ctx) {
  delete static_cast<ucontext_t*>(ctx->impl);
  ctx->impl = nullptr;
}

#endif  // HYP_ASM_CONTEXT

StackAllocation stack_allocate(std::size_t usable_size) {
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  usable_size = (usable_size + page - 1) / page * page;

  StackAllocation out;
  out.mapping_size = usable_size + page;  // one guard page below the stack
  void* mem = mmap(nullptr, out.mapping_size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  HYP_CHECK_MSG(mem != MAP_FAILED, "fiber stack mmap failed");
  HYP_CHECK(mprotect(mem, page, PROT_NONE) == 0);

  out.mapping = mem;
  out.usable_base = static_cast<std::byte*>(mem) + page;
  out.usable_size = usable_size;
#ifdef HYP_ASAN
  __asan_unpoison_memory_region(out.usable_base, out.usable_size);
#endif
  return out;
}

void stack_free(const StackAllocation& stack) {
  if (stack.mapping != nullptr) {
#ifdef HYP_ASAN
    __asan_unpoison_memory_region(stack.usable_base, stack.usable_size);
#endif
    HYP_CHECK(munmap(stack.mapping, stack.mapping_size) == 0);
  }
}

#if !HYP_ASM_CONTEXT
namespace {
// The ucontext fallback also needs a context object for the scheduler's own
// (OS-provided) context; ensure it is created lazily on first switch.
}  // namespace
#endif

// The scheduler's context has no stack of its own to prepare: the first
// context_switch() out of it captures whatever the OS thread is running on.
// For the ucontext backend we still need a ucontext_t to swap into.
void context_init_self(Context* ctx);

void context_init_self(Context* ctx) {
#if HYP_ASM_CONTEXT
  ctx->sp = nullptr;  // filled in by the first switch out
#else
  if (ctx->impl == nullptr) ctx->impl = new ucontext_t;
#endif
}

}  // namespace hyp::sim
