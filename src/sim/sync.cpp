#include "sim/sync.hpp"

namespace hyp::sim {

// ---------------------------------------------------------------------------
// SimMutex

void SimMutex::lock() {
  Fiber* self = engine_->current_fiber();
  HYP_CHECK_MSG(self != nullptr, "SimMutex::lock outside a fiber");
  HYP_CHECK_MSG(owner_ != self, "recursive SimMutex lock");
  if (owner_ == nullptr) {
    owner_ = self;
    return;
  }
  waiters_.push_back(self);
  // Direct handoff: unlock() transfers ownership to the FIFO head, so we
  // loop only to absorb stray permits.
  while (owner_ != self) engine_->park();
}

bool SimMutex::try_lock() {
  Fiber* self = engine_->current_fiber();
  HYP_CHECK_MSG(self != nullptr, "SimMutex::try_lock outside a fiber");
  if (owner_ != nullptr) return false;
  owner_ = self;
  return true;
}

void SimMutex::unlock() {
  HYP_CHECK_MSG(owner_ == engine_->current_fiber(), "unlock by non-owner");
  if (waiters_.empty()) {
    owner_ = nullptr;
    return;
  }
  owner_ = waiters_.front();
  waiters_.pop_front();
  engine_->unpark(owner_);
}

// ---------------------------------------------------------------------------
// SimCondVar

void SimCondVar::wait(SimMutex& m) {
  Fiber* self = engine_->current_fiber();
  HYP_CHECK_MSG(self != nullptr, "SimCondVar::wait outside a fiber");
  Waiter node{self};
  waiters_.push_back(&node);
  m.unlock();
  while (!node.signaled) engine_->park();
  m.lock();
}

void SimCondVar::notify_one() {
  if (waiters_.empty()) return;
  Waiter* w = waiters_.front();
  waiters_.pop_front();
  w->signaled = true;
  engine_->unpark(w->fiber);
}

void SimCondVar::notify_all() {
  while (!waiters_.empty()) notify_one();
}

// ---------------------------------------------------------------------------
// SimBarrier

void SimBarrier::arrive_and_wait() {
  Fiber* self = engine_->current_fiber();
  HYP_CHECK_MSG(self != nullptr, "SimBarrier outside a fiber");
  ++arrived_;
  if (arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    for (Fiber* f : waiters_) engine_->unpark(f);
    waiters_.clear();
    return;
  }
  const std::uint64_t my_generation = generation_;
  waiters_.push_back(self);
  while (generation_ == my_generation) engine_->park();
}

// FifoServer::serve / reserve are defined inline in sync.hpp: CpuClock
// presents batched compute in timeslice quanta, so serve() runs once per
// quantum and sits on the hottest scheduling path.

}  // namespace hyp::sim
