// Timed message channel between fibers.
//
// The network layer delivers messages by pushing them with a future ready
// time; receivers block until the earliest ready item. FIFO per channel by
// (ready time, push order), matching an in-order network such as Myrinet/BIP
// or SCI.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "sim/engine.hpp"

namespace hyp::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine* engine) : engine_(engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Item becomes visible to receivers immediately.
  void push(T item) {
    ready_.push_back(std::move(item));
    wake_one();
  }

  // Item becomes visible at virtual time `when` (>= now).
  void push_at(T item, Time when) {
    ++in_flight_;
    engine_->post(when, [this, moved = std::move(item)]() mutable {
      --in_flight_;
      ready_.push_back(std::move(moved));
      wake_one();
    });
  }

  // Blocks until an item is available or the channel is closed and drained.
  // nullopt means closed-and-empty.
  std::optional<T> pop() {
    Fiber* self = engine_->current_fiber();
    HYP_CHECK_MSG(self != nullptr, "Channel::pop outside a fiber");
    while (ready_.empty()) {
      if (closed_ && in_flight_ == 0) return std::nullopt;
      waiters_.push_back(self);
      engine_->park();
    }
    T item = std::move(ready_.front());
    ready_.pop_front();
    return item;
  }

  std::optional<T> try_pop() {
    if (ready_.empty()) return std::nullopt;
    T item = std::move(ready_.front());
    ready_.pop_front();
    return item;
  }

  // After close(), pops drain remaining (and in-flight) items, then return
  // nullopt. Used to shut down dispatcher daemons.
  void close() {
    closed_ = true;
    wake_all();
  }

  bool closed() const { return closed_; }
  std::size_t ready_count() const { return ready_.size(); }

 private:
  void wake_one() {
    if (waiters_.empty()) return;
    Fiber* f = waiters_.front();
    waiters_.pop_front();
    engine_->unpark(f);
  }
  void wake_all() {
    for (Fiber* f : waiters_) engine_->unpark(f);
    waiters_.clear();
  }

  Engine* engine_;
  std::deque<T> ready_;
  std::deque<Fiber*> waiters_;
  std::size_t in_flight_ = 0;
  bool closed_ = false;
};

}  // namespace hyp::sim
