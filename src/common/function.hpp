// UniqueFunction: a minimal move-only std::function<void(Args...)>.
//
// Simulator events must own their payloads (a message Buffer moves through
// the event queue exactly once); std::function requires copyable targets and
// std::move_only_function is C++23. This is the small subset we need.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace hyp {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  UniqueFunction(F&& f) : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  R operator()(Args... args) {
    HYP_CHECK_MSG(impl_ != nullptr, "calling empty UniqueFunction");
    return impl_->invoke(std::forward<Args>(args)...);
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R invoke(Args&&... args) = 0;
  };

  template <typename F>
  struct Model final : Concept {
    explicit Model(F&& f) : fn(std::move(f)) {}
    explicit Model(const F& f) : fn(f) {}
    R invoke(Args&&... args) override { return fn(std::forward<Args>(args)...); }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace hyp
