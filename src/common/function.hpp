// UniqueFunction: a minimal move-only std::function<void(Args...)> with a
// small-buffer optimisation.
//
// Simulator events must own their payloads (a message Buffer moves through
// the event queue exactly once); std::function requires copyable targets and
// std::move_only_function is C++23. This is the small subset we need.
//
// The small-buffer path matters for host performance: the engine's event
// pool stores callbacks by value, and the cluster's delivery closures
// (a few pointers + ids + a moved Buffer) fit comfortably inline, so the
// steady-state event path performs zero heap allocations per message hop
// (see docs/PERFORMANCE.md). Only nothrow-move-constructible callables are
// stored inline, keeping moves noexcept for container use.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace hyp {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  // Sized so the whole object is two cache lines; large enough for the
  // cluster's message-delivery closures (pointers, ids, one Buffer).
  static constexpr std::size_t kInlineBytes = 120;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    HYP_CHECK_MSG(ops_ != nullptr, "calling empty UniqueFunction");
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  // True when the currently held callable lives in the inline buffer
  // (diagnostic; used by the event-pool tests).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move-constructs the callable into `dst` and destroys the `src` copy.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* inline_ptr(void* s) {
    return std::launder(reinterpret_cast<D*>(s));
  }
  template <typename D>
  static D* heap_ptr(void* s) {
    return *std::launder(reinterpret_cast<D**>(s));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* s, Args&&... args) -> R {
        return (*inline_ptr<D>(s))(std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*inline_ptr<D>(src)));
        inline_ptr<D>(src)->~D();
      },
      /*destroy=*/[](void* s) noexcept { inline_ptr<D>(s)->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* s, Args&&... args) -> R {
        return (*heap_ptr<D>(s))(std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(heap_ptr<D>(src));
      },
      /*destroy=*/[](void* s) noexcept { delete heap_ptr<D>(s); },
      /*inline_storage=*/false,
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void move_from(UniqueFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace hyp
