#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace hyp {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

bool parse_log_level(const std::string& text, LogLevel* out) {
  if (text == "trace") *out = LogLevel::kTrace;
  else if (text == "debug") *out = LogLevel::kDebug;
  else if (text == "info") *out = LogLevel::kInfo;
  else if (text == "warn") *out = LogLevel::kWarn;
  else if (text == "error") *out = LogLevel::kError;
  else if (text == "off") *out = LogLevel::kOff;
  else return false;
  return true;
}

namespace detail {

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void log_emit(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip directories from the path for terse output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), base, line, msg.c_str());
}

}  // namespace detail
}  // namespace hyp
