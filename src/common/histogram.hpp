// Log2Histogram: fixed-size power-of-two-bucket histogram.
//
// The observability layer (src/obs, docs/OBSERVABILITY.md) records latencies
// and payload sizes at the same hook points that bump the Stats counters.
// Distributions matter where flat counters mislead: one hot home node shows
// up as a fat tail in page-fetch latency long before it moves the mean.
//
// Design constraints (shared with the rest of the record-side observability
// code):
//   - zero heap allocation on record(): the buckets are a fixed array, so a
//     Log2Histogram can be embedded in Stats and bumped from simulation hot
//     paths (asserted by tests/obs_alloc_test.cpp);
//   - pure accumulation: record() never reads the clock or yields, so an
//     attached histogram cannot perturb virtual time (the determinism-golden
//     contract of docs/PERFORMANCE.md);
//   - exact merging: per-node histograms aggregate by bucket-wise addition.
//
// Bucketing: value 0 lands in bucket 0; a nonzero value v lands in bucket
// bit_width(v), i.e. bucket k holds [2^(k-1), 2^k). The largest uint64 value
// lands in bucket 64, so kBuckets = 65 covers the full domain with no
// overflow bucket.
#pragma once

#include <bit>
#include <cstdint>

namespace hyp {

class Log2Histogram {
 public:
  static constexpr int kBuckets = 65;

  static constexpr int bucket_of(std::uint64_t v) {
    return v == 0 ? 0 : std::bit_width(v);
  }
  // Inclusive lower bound of bucket i (0 for buckets 0 and... bucket 1 is
  // exactly [1,2)); callers labeling buckets use [lower, upper) bounds.
  static constexpr std::uint64_t bucket_lower(int i) {
    return i <= 0 ? 0 : (std::uint64_t{1} << (i - 1));
  }
  // Exclusive upper bound; bucket 64's upper bound saturates to UINT64_MAX.
  static constexpr std::uint64_t bucket_upper(int i) {
    if (i <= 0) return 1;
    if (i >= 64) return ~std::uint64_t{0};
    return std::uint64_t{1} << i;
  }

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1) {
      min_ = v;
      max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  // min/max are only meaningful when count() > 0.
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket(int i) const { return buckets_[i]; }
  bool empty() const { return count_ == 0; }

  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  void merge(const Log2Histogram& other) {
    if (other.count_ == 0) return;
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void reset() { *this = Log2Histogram{}; }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace hyp
