// Log2Histogram: fixed-size power-of-two-bucket histogram.
//
// The observability layer (src/obs, docs/OBSERVABILITY.md) records latencies
// and payload sizes at the same hook points that bump the Stats counters.
// Distributions matter where flat counters mislead: one hot home node shows
// up as a fat tail in page-fetch latency long before it moves the mean.
//
// Design constraints (shared with the rest of the record-side observability
// code):
//   - zero heap allocation on record(): the buckets are a fixed array, so a
//     Log2Histogram can be embedded in Stats and bumped from simulation hot
//     paths (asserted by tests/obs_alloc_test.cpp);
//   - pure accumulation: record() never reads the clock or yields, so an
//     attached histogram cannot perturb virtual time (the determinism-golden
//     contract of docs/PERFORMANCE.md);
//   - exact merging: per-node histograms aggregate by bucket-wise addition.
//
// Bucketing: value 0 lands in bucket 0; a nonzero value v lands in bucket
// bit_width(v), i.e. bucket k (0 < k < 64) holds [2^(k-1), 2^k - 1] and the
// top bucket 64 saturates to [2^63, UINT64_MAX] — both bounds *inclusive*,
// so every bucket's bounds are themselves representable uint64 values and
// record(UINT64_MAX) lands inside (not past) bucket_upper(64). kBuckets = 65
// covers the full domain with no overflow bucket.
#pragma once

#include <bit>
#include <cstdint>

namespace hyp {

class Log2Histogram {
 public:
  static constexpr int kBuckets = 65;

  static constexpr int bucket_of(std::uint64_t v) {
    return v == 0 ? 0 : std::bit_width(v);
  }
  // Inclusive lower bound of bucket i: bucket 0 holds exactly {0}, bucket
  // k > 0 starts at 2^(k-1). Callers labeling buckets use the inclusive
  // [lower, upper] pair below.
  static constexpr std::uint64_t bucket_lower(int i) {
    return i <= 0 ? 0 : (std::uint64_t{1} << (i - 1));
  }
  // Inclusive upper bound of bucket i. Bucket 0 holds exactly {0}; bucket
  // k < 64 tops out at 2^k - 1; bucket 64 saturates to UINT64_MAX, which is
  // where record(UINT64_MAX) itself lands — an *exclusive* top bound here
  // used to claim UINT64_MAX was outside the bucket that counts it.
  static constexpr std::uint64_t bucket_upper(int i) {
    if (i <= 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1) {
      min_ = v;
      max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  // min/max are only meaningful when count() > 0.
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket(int i) const { return buckets_[i]; }
  bool empty() const { return count_ == 0; }

  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Smallest value v such that at least ceil(q * count) recorded samples are
  // <= v, estimated by linear interpolation within the covering bucket's
  // *inclusive* [bucket_lower, bucket_upper] range (the PR 5 bound fix
  // matters here: bucket 64's upper bound is UINT64_MAX itself, so
  // record(UINT64_MAX) interpolates inside its bucket instead of past it).
  // The estimate is clamped to the exact observed [min, max], which makes
  // single-bucket and extreme-quantile answers tight. q outside [0, 1] is
  // clamped; an empty histogram reports 0.
  std::uint64_t value_at_quantile(double q) const {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    // Rank of the sample we want, 1-based: ceil(q * count), at least 1.
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      if (seen + buckets_[i] < rank) {
        seen += buckets_[i];
        continue;
      }
      const std::uint64_t lo = bucket_lower(i);
      const std::uint64_t hi = bucket_upper(i);
      // Position of the target sample within this bucket, in (0, 1].
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets_[i]);
      std::uint64_t off = static_cast<std::uint64_t>(
          static_cast<double>(hi - lo) * frac);
      // double(hi - lo) rounds *up* for bucket 64 (2^63 - 1 -> 2^63), so the
      // scaled offset can overshoot the span and lo + off would wrap past
      // UINT64_MAX; clamp to the exact bucket width first.
      if (off > hi - lo) off = hi - lo;
      std::uint64_t v = lo + off;
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
    return max_;  // unreachable when counts are consistent
  }

  void merge(const Log2Histogram& other) {
    if (other.count_ == 0) return;
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void reset() { *this = Log2Histogram{}; }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace hyp
