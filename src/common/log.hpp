// Minimal leveled logger.
//
// The simulator is single-threaded (fibers), but the native backend logs from
// several OS threads, so emission takes a process-wide lock. Log level is a
// process-wide atomic read on the fast path; disabled levels cost one load
// and a predictable branch.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace hyp {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; returns false on junk.
bool parse_log_level(const std::string& text, LogLevel* out);

namespace detail {
void log_emit(LogLevel level, const char* file, int line, const std::string& msg);
bool log_enabled(LogLevel level);
}  // namespace detail

}  // namespace hyp

#define HYP_LOG(level, ...)                                                   \
  do {                                                                        \
    if (::hyp::detail::log_enabled(level)) {                                  \
      std::ostringstream hyp_log_oss_;                                        \
      hyp_log_oss_ << __VA_ARGS__;                                            \
      ::hyp::detail::log_emit(level, __FILE__, __LINE__, hyp_log_oss_.str()); \
    }                                                                         \
  } while (0)

#define HYP_TRACE(...) HYP_LOG(::hyp::LogLevel::kTrace, __VA_ARGS__)
#define HYP_DEBUG(...) HYP_LOG(::hyp::LogLevel::kDebug, __VA_ARGS__)
#define HYP_INFO(...) HYP_LOG(::hyp::LogLevel::kInfo, __VA_ARGS__)
#define HYP_WARN(...) HYP_LOG(::hyp::LogLevel::kWarn, __VA_ARGS__)
#define HYP_ERROR(...) HYP_LOG(::hyp::LogLevel::kError, __VA_ARGS__)
