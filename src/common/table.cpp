#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace hyp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  HYP_CHECK_MSG(cells.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

namespace {

// Minimal CSV escaping: quote when a cell contains a comma, quote or newline.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto write_line = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  write_line(header_);
  for (const auto& row : rows_) write_line(row);
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto write_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os << cells[i];
      for (std::size_t pad = cells[i].size(); pad < widths[i]; ++pad) os << ' ';
    }
    os << '\n';
  };
  write_line(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) rule.emplace_back(widths[i], '-');
  write_line(rule);
  for (const auto& row : rows_) write_line(row);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace hyp
