// Byte buffers used as RPC message payloads.
//
// Messages in the simulated cluster (and the native backend) carry real
// serialized bytes rather than closures-with-pointers wherever data crosses
// "the network": this keeps the simulation honest about message sizes (the
// bandwidth model charges Buffer::size()) and catches protocol bugs that a
// shared-pointer shortcut would hide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace hyp {

namespace detail {

// Recycles byte-vector backings between Buffer lifetimes so the steady-state
// RPC path (request out, page/ack back, millions of times per run) stops
// hitting the allocator once capacities warm up (docs/PERFORMANCE.md).
// thread_local because the native backend runs real std::threads; capacity
// handed back on a different thread simply lands in that thread's pool.
// Pooling changes capacity provenance only — never a buffer's size or
// contents — so simulated message sizes and timings are untouched.
class ByteVecPool {
 public:
  std::vector<std::byte> acquire() {
    if (!free_.empty()) {
      std::vector<std::byte> v = std::move(free_.back());
      free_.pop_back();
      v.clear();
      return v;
    }
    return {};
  }

  void release(std::vector<std::byte>&& v) {
    if (v.capacity() == 0) return;  // nothing worth keeping
    if (free_.size() < kMaxPooled) free_.push_back(std::move(v));
  }

  std::size_t pooled() const { return free_.size(); }

  static ByteVecPool& local() {
    thread_local ByteVecPool pool;
    return pool;
  }

 private:
  // Enough for the deepest in-flight fan-out we see (per-home updates on a
  // 12-node cluster plus nested replies); beyond this, just free.
  static constexpr std::size_t kMaxPooled = 64;
  std::vector<std::vector<std::byte>> free_;
};

}  // namespace detail

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t reserve_bytes) {
    bytes_ = detail::ByteVecPool::local().acquire();
    bytes_.reserve(reserve_bytes);
  }

  Buffer(Buffer&& other) noexcept = default;
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      detail::ByteVecPool::local().release(std::move(bytes_));
      bytes_ = std::move(other.bytes_);
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  ~Buffer() { detail::ByteVecPool::local().release(std::move(bytes_)); }

  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  const std::byte* data() const { return bytes_.data(); }
  std::byte* data() { return bytes_.data(); }
  void clear() { bytes_.clear(); }

  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = grow(sizeof(T));
    std::memcpy(bytes_.data() + at, &value, sizeof(T));
  }

  void put_bytes(const void* src, std::size_t n) {
    const std::size_t at = grow(n);
    if (n != 0) std::memcpy(bytes_.data() + at, src, n);
  }

  void put_string(const std::string& s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    put_bytes(s.data(), s.size());
  }

  std::span<const std::byte> span() const { return {bytes_.data(), bytes_.size()}; }

 private:
  // Extends the buffer by n bytes, adopting a pooled backing on first write.
  std::size_t grow(std::size_t n) {
    if (bytes_.capacity() == 0) bytes_ = detail::ByteVecPool::local().acquire();
    const std::size_t at = bytes_.size();
    bytes_.resize(at + n);
    return at;
  }

  std::vector<std::byte> bytes_;
};

// Sequential reader over a Buffer (or any byte span). Reads are
// bounds-checked: a malformed message aborts rather than reading garbage.
class BufferReader {
 public:
  explicit BufferReader(const Buffer& buf) : data_(buf.data()), size_(buf.size()) {}
  explicit BufferReader(std::span<const std::byte> bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    HYP_CHECK_MSG(pos_ + sizeof(T) <= size_, "buffer underrun");
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void get_bytes(void* dst, std::size_t n) {
    HYP_CHECK_MSG(pos_ + n <= size_, "buffer underrun");
    if (n != 0) std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    std::string s(n, '\0');
    get_bytes(s.data(), n);
    return s;
  }

  // Borrow n bytes in place (valid while the underlying buffer lives).
  std::span<const std::byte> get_span(std::size_t n) {
    HYP_CHECK_MSG(pos_ + n <= size_, "buffer underrun");
    std::span<const std::byte> out{data_ + pos_, n};
    pos_ += n;
    return out;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace hyp
