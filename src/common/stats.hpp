// Run statistics: named monotonic counters.
//
// The protocols under study differ in *which events they pay for* (in-line
// checks vs page faults vs mprotect calls), so the evaluation reports event
// counts alongside times — exactly the quantities the paper's §4.3 argues
// from ("the number of page faults being handled by java_pf ... grows").
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/histogram.hpp"

namespace hyp {

// Fixed, enumerated counters for the hot paths (array-indexed: incrementing
// one is a single add), plus a free-form map for occasional counters.
enum class Counter : int {
  kInlineChecks = 0,     // java_ic locality checks executed
  kPageFaults,           // java_pf simulated/real access faults
  kMprotectCalls,        // page (re)protection operations
  kPageFetches,          // pages copied from a home node
  kPageFetchBytes,       // bytes of page payload moved
  kWriteLogEntries,      // field-granularity put records (java_ic)
  kDiffWords,            // words found modified by twin comparison (java_pf)
  kUpdatesSent,          // updateMainMemory messages
  kUpdateBytes,          // bytes of modification payload shipped home
  kInvalidations,        // pages invalidated at monitor entry
  kMonitorEnters,
  kMonitorExits,
  kMessages,             // network messages of any kind
  kMessageBytes,
  kRemoteThreadSpawns,
  kThreadMigrations,     // PM2-style thread migrations between nodes
  kLocalHits,            // accesses satisfied without communication
  // --- fault injection / reliable transport (docs/FAULTS.md). All of these
  // are exactly zero when the FaultProfile is off — asserted by tests and by
  // the determinism goldens (no new nonzero counters on quiet runs). --------
  kNetDrops,             // packets the fault layer discarded (incl. corrupt)
  kNetDupes,             // packets the fault layer delivered twice
  kDupSuppressed,        // duplicate deliveries the dedup window absorbed
  kRetransmits,          // sender retransmissions (ack timer fired)
  kAcksSent,             // transport-level acknowledgements
  kRpcTimeouts,          // calls/replies that exhausted deadline or budget
  // --- high availability (docs/RECOVERY.md). Zero unless a crash window is
  // scheduled. ---------------------------------------------------------------
  kHaHeartbeats,         // heartbeats sent on the management path
  kHaPromotions,         // backup nodes that promoted for a dead home
  kHaReroutes,           // RPC attempts re-routed after a home moved
  kHaCheckpointBytes,    // checkpoint traffic bytes (piggyback accounting, or
                         // the exact sum of traced checkpoint message sizes
                         // when the modeled stream is on — docs/RECOVERY.md)
  kHaDeadSendsDropped,   // one-way sends to a confirmed-dead node discarded
  kHaCheckpointMsgs,     // checkpoint messages transmitted on the modeled
                         // stream (0 in piggyback mode)
  // --- race detection (docs/RACES.md). Zero unless --race-detect is on; the
  // five paper figures must stay at zero races (scripts/race_smoke.sh and
  // compare_metrics.py gate on it). --------------------------------------
  kRacesDetected,        // deduplicated data races reported
  kRaceAccessesChecked,  // get/put accesses the detector examined
  kRaceBenignSuppressed, // conflicts inside mark_benign ranges (not reported)
  kRaceClockMsgs,        // messages that would carry a piggybacked clock
  kRaceClockBytes,       // modeled vector-clock piggyback payload bytes
  // --- network partitions (docs/PARTITIONS.md). Zero unless the profile
  // schedules a partition/linkdrop; compare_metrics.py fails an A/B run whose
  // baseline shows fenced rejects or quorum reads without a partition. -------
  kHaPartitionDrops,     // packets eaten by an open partition window
  kHaFencedRejects,      // stale-epoch messages NACKed by the fencing check
  kHaQuorumReads,        // page reads served by quorum from chain backups
  kHaNoQuorumHolds,      // caller parks on RpcError::kNoQuorum (minority side)
  // --- serving workload (docs/SERVING.md). Zero unless a src/serve store
  // run is attached; the batch figures and their goldens never bump these. --
  kServeOps,             // store operations completed (reads + updates)
  kServeReads,           // get() operations completed
  kServeUpdates,         // update() operations completed (acked writes)
  kServeExcluded,        // ops outside the warmup/cooldown measurement window
  kServeFaultWinOps,     // ops whose lifetime overlapped a crash/partition
                         // window (the HA latency-attribution bucket)
  kCount_,
};

const char* counter_name(Counter c);

// Log2-bucket distributions recorded at the same hook points that bump the
// corresponding counters (see docs/OBSERVABILITY.md). Latencies are virtual
// picoseconds (the simulator's Time unit); sizes are bytes. Recording is
// allocation-free pure accumulation, so the histograms never perturb virtual
// time — the determinism goldens hold with or without anyone reading them.
enum class Hist : int {
  kPageFetchLatency = 0,  // ps from miss detection to page present (per miss)
  kMonitorAcquireWait,    // ps from monitor-enter request to grant
  kUpdatePayloadBytes,    // bytes per updateMainMemory message shipped home
  kRetryLatency,          // ps from first transmission to ack, for packets
                          // that needed >= 1 retransmit (faulty runs only)
  kRecoveryLatency,       // ps from crash-window start to backup promotion
  kHaRerouteWait,         // ps a failing-over RPC spent before its re-route
  kServeReadLatency,      // ps from scheduled (open-loop) arrival to get() done
  kServeUpdateLatency,    // ps from scheduled arrival to update() acked
  kServeFaultWinLatency,  // ps, the subset of op latencies that overlapped a
                          // crash/partition window (tail-spike attribution)
  kCount_,
};

const char* hist_name(Hist h);

class Stats {
 public:
  void add(Counter c, std::uint64_t n = 1) { fixed_[static_cast<int>(c)] += n; }
  std::uint64_t get(Counter c) const { return fixed_[static_cast<int>(c)]; }

  Log2Histogram& hist(Hist h) { return hists_[static_cast<int>(h)]; }
  const Log2Histogram& hist(Hist h) const { return hists_[static_cast<int>(h)]; }
  void record(Hist h, std::uint64_t v) { hists_[static_cast<int>(h)].record(v); }

  void add_named(const std::string& name, std::uint64_t n = 1) { named_[name] += n; }
  std::uint64_t get_named(const std::string& name) const;

  void reset();

  // Merges `other` into this (used to aggregate per-node stats). Histograms
  // merge bucket-wise.
  void merge(const Stats& other);

  // "name=value" lines, fixed counters first, zero-valued ones skipped.
  // Histograms are intentionally NOT included (the determinism goldens pin
  // this output; distributions are exported via obs::write_metrics_json).
  std::string to_string() const;

  // All nonzero counters as a name->value map (for CSV emission).
  std::map<std::string, std::uint64_t> nonzero() const;

 private:
  std::uint64_t fixed_[static_cast<int>(Counter::kCount_)] = {};
  Log2Histogram hists_[static_cast<int>(Hist::kCount_)];
  std::map<std::string, std::uint64_t> named_;
};

}  // namespace hyp
