// Text table and CSV emission for the benchmark harness.
//
// Every figure-reproducing benchmark prints (a) a CSV block that can be fed
// straight to a plotting tool and (b) an aligned human-readable table that
// mirrors the series of the corresponding paper figure.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hyp {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience for mixed cells built with format helpers below.
  std::size_t rows() const { return rows_.size(); }

  void write_csv(std::ostream& os) const;
  void write_pretty(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Format helpers (locale-independent).
std::string fmt_double(double v, int precision = 3);
std::string fmt_u64(std::uint64_t v);
std::string fmt_percent(double fraction, int precision = 1);  // 0.38 -> "38.0%"

}  // namespace hyp
