// Tiny command-line flag parser for the benchmark and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are an error (typos in a sweep silently running
// the default experiment would poison recorded results).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hyp {

class Cli {
 public:
  Cli(std::string program_description);

  // Registration. Returns *this for chaining.
  Cli& flag_int(const std::string& name, std::int64_t default_value, const std::string& help);
  Cli& flag_double(const std::string& name, double default_value, const std::string& help);
  Cli& flag_bool(const std::string& name, bool default_value, const std::string& help);
  Cli& flag_string(const std::string& name, const std::string& default_value,
                   const std::string& help);

  // Parses argv. On `--help` prints usage and returns false (caller exits 0).
  // On bad input prints the problem + usage to stderr and calls exit(2).
  bool parse(int argc, char** argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  void print_usage(std::ostream& os) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0;
    bool bool_value = false;
    std::string string_value;
  };

  const Flag& find(const std::string& name, Kind kind) const;
  [[noreturn]] void fail(const std::string& message) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;  // registration order for usage text
};

}  // namespace hyp
