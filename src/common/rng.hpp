// Deterministic random number generation.
//
// All randomness in the library flows through SplitMix64 (seeding) and
// xoshiro256** (bulk generation) so that simulations are reproducible across
// platforms and standard-library versions — std::mt19937 distributions are
// not portable across implementations, these are.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace hyp {

// SplitMix64: tiny, high-quality seed expander (public-domain algorithm).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** by Blackman & Vigna (public domain).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  // Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    HYP_DCHECK(bound > 0);
    // Debiased multiply-shift; the rejection loop terminates quickly.
    for (;;) {
      const std::uint64_t x = next();
      const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    HYP_DCHECK(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hyp
