#include "common/stats.hpp"

#include <sstream>

namespace hyp {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kInlineChecks: return "inline_checks";
    case Counter::kPageFaults: return "page_faults";
    case Counter::kMprotectCalls: return "mprotect_calls";
    case Counter::kPageFetches: return "page_fetches";
    case Counter::kPageFetchBytes: return "page_fetch_bytes";
    case Counter::kWriteLogEntries: return "write_log_entries";
    case Counter::kDiffWords: return "diff_words";
    case Counter::kUpdatesSent: return "updates_sent";
    case Counter::kUpdateBytes: return "update_bytes";
    case Counter::kInvalidations: return "invalidations";
    case Counter::kMonitorEnters: return "monitor_enters";
    case Counter::kMonitorExits: return "monitor_exits";
    case Counter::kMessages: return "messages";
    case Counter::kMessageBytes: return "message_bytes";
    case Counter::kRemoteThreadSpawns: return "remote_thread_spawns";
    case Counter::kThreadMigrations: return "thread_migrations";
    case Counter::kLocalHits: return "local_hits";
    case Counter::kNetDrops: return "net_drops";
    case Counter::kNetDupes: return "net_dupes";
    case Counter::kDupSuppressed: return "dup_suppressed";
    case Counter::kRetransmits: return "retransmits";
    case Counter::kAcksSent: return "acks_sent";
    case Counter::kRpcTimeouts: return "rpc_timeouts";
    case Counter::kHaHeartbeats: return "ha_heartbeats";
    case Counter::kHaPromotions: return "ha_promotions";
    case Counter::kHaReroutes: return "ha_reroutes";
    case Counter::kHaCheckpointBytes: return "ha_checkpoint_bytes";
    case Counter::kHaDeadSendsDropped: return "ha_dead_sends_dropped";
    case Counter::kHaCheckpointMsgs: return "ha_checkpoint_msgs";
    case Counter::kRacesDetected: return "races_detected";
    case Counter::kRaceAccessesChecked: return "race_accesses_checked";
    case Counter::kRaceBenignSuppressed: return "race_benign_suppressed";
    case Counter::kRaceClockMsgs: return "race_clock_msgs";
    case Counter::kRaceClockBytes: return "race_clock_bytes";
    case Counter::kHaPartitionDrops: return "ha_partition_drops";
    case Counter::kHaFencedRejects: return "ha_fenced_rejects";
    case Counter::kHaQuorumReads: return "ha_quorum_reads";
    case Counter::kHaNoQuorumHolds: return "ha_no_quorum_holds";
    case Counter::kServeOps: return "serve_ops";
    case Counter::kServeReads: return "serve_reads";
    case Counter::kServeUpdates: return "serve_updates";
    case Counter::kServeExcluded: return "serve_excluded";
    case Counter::kServeFaultWinOps: return "serve_faultwin_ops";
    case Counter::kCount_: break;
  }
  return "?";
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::kPageFetchLatency: return "page_fetch_latency_ps";
    case Hist::kMonitorAcquireWait: return "monitor_acquire_wait_ps";
    case Hist::kUpdatePayloadBytes: return "update_payload_bytes";
    case Hist::kRetryLatency: return "retry_latency_ps";
    case Hist::kRecoveryLatency: return "recovery_latency_ps";
    case Hist::kHaRerouteWait: return "ha_reroute_wait_ps";
    case Hist::kServeReadLatency: return "serve_read_latency_ps";
    case Hist::kServeUpdateLatency: return "serve_update_latency_ps";
    case Hist::kServeFaultWinLatency: return "serve_faultwin_latency_ps";
    case Hist::kCount_: break;
  }
  return "?";
}

std::uint64_t Stats::get_named(const std::string& name) const {
  auto it = named_.find(name);
  return it == named_.end() ? 0 : it->second;
}

void Stats::reset() {
  for (auto& v : fixed_) v = 0;
  for (auto& h : hists_) h.reset();
  named_.clear();
}

void Stats::merge(const Stats& other) {
  for (int i = 0; i < static_cast<int>(Counter::kCount_); ++i) {
    fixed_[i] += other.fixed_[i];
  }
  for (int i = 0; i < static_cast<int>(Hist::kCount_); ++i) {
    hists_[i].merge(other.hists_[i]);
  }
  for (const auto& [name, value] : other.named_) named_[name] += value;
}

std::string Stats::to_string() const {
  std::ostringstream oss;
  for (const auto& [name, value] : nonzero()) {
    oss << name << "=" << value << "\n";
  }
  return oss.str();
}

std::map<std::string, std::uint64_t> Stats::nonzero() const {
  std::map<std::string, std::uint64_t> out;
  for (int i = 0; i < static_cast<int>(Counter::kCount_); ++i) {
    if (fixed_[i] != 0) out[counter_name(static_cast<Counter>(i))] = fixed_[i];
  }
  for (const auto& [name, value] : named_) {
    if (value != 0) out[name] = value;
  }
  return out;
}

}  // namespace hyp
