#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>

#include "common/assert.hpp"

namespace hyp {

Cli::Cli(std::string program_description) : description_(std::move(program_description)) {}

Cli& Cli::flag_int(const std::string& name, std::int64_t default_value, const std::string& help) {
  Flag f;
  f.kind = Kind::kInt;
  f.help = help;
  f.int_value = default_value;
  HYP_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag");
  order_.push_back(name);
  return *this;
}

Cli& Cli::flag_double(const std::string& name, double default_value, const std::string& help) {
  Flag f;
  f.kind = Kind::kDouble;
  f.help = help;
  f.double_value = default_value;
  HYP_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag");
  order_.push_back(name);
  return *this;
}

Cli& Cli::flag_bool(const std::string& name, bool default_value, const std::string& help) {
  Flag f;
  f.kind = Kind::kBool;
  f.help = help;
  f.bool_value = default_value;
  HYP_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag");
  order_.push_back(name);
  return *this;
}

Cli& Cli::flag_string(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  Flag f;
  f.kind = Kind::kString;
  f.help = help;
  f.string_value = default_value;
  HYP_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag");
  order_.push_back(name);
  return *this;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) fail("positional arguments are not accepted: " + arg);
    arg = arg.substr(2);

    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }

    bool negated = false;
    auto it = flags_.find(name);
    if (it == flags_.end() && name.rfind("no-", 0) == 0) {
      it = flags_.find(name.substr(3));
      if (it != flags_.end() && it->second.kind == Kind::kBool) negated = true;
      else it = flags_.end();
    }
    if (it == flags_.end()) fail("unknown flag --" + name);
    Flag& f = it->second;

    if (f.kind == Kind::kBool) {
      if (negated) {
        if (have_value) fail("--no-" + it->first + " does not take a value");
        f.bool_value = false;
      } else if (have_value) {
        if (value == "true" || value == "1") f.bool_value = true;
        else if (value == "false" || value == "0") f.bool_value = false;
        else fail("bad boolean for --" + name + ": " + value);
      } else {
        f.bool_value = true;
      }
      continue;
    }

    if (!have_value) {
      if (i + 1 >= argc) fail("flag --" + name + " needs a value");
      value = argv[++i];
    }
    char* end = nullptr;
    switch (f.kind) {
      case Kind::kInt:
        f.int_value = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') fail("bad integer for --" + name + ": " + value);
        break;
      case Kind::kDouble:
        f.double_value = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') fail("bad number for --" + name + ": " + value);
        break;
      case Kind::kString:
        f.string_value = value;
        break;
      case Kind::kBool:
        break;  // handled above
    }
  }
  return true;
}

std::int64_t Cli::get_int(const std::string& name) const { return find(name, Kind::kInt).int_value; }
double Cli::get_double(const std::string& name) const { return find(name, Kind::kDouble).double_value; }
bool Cli::get_bool(const std::string& name) const { return find(name, Kind::kBool).bool_value; }
const std::string& Cli::get_string(const std::string& name) const {
  return find(name, Kind::kString).string_value;
}

const Cli::Flag& Cli::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  HYP_CHECK_MSG(it != flags_.end(), "flag not registered: " + name);
  HYP_CHECK_MSG(it->second.kind == kind, "flag accessed with wrong type: " + name);
  return it->second;
}

void Cli::print_usage(std::ostream& os) const {
  os << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    switch (f.kind) {
      case Kind::kInt: os << "=<int> (default " << f.int_value << ")"; break;
      case Kind::kDouble: os << "=<num> (default " << f.double_value << ")"; break;
      case Kind::kBool: os << " / --no-" << name << " (default " << (f.bool_value ? "true" : "false") << ")"; break;
      case Kind::kString: os << "=<str> (default \"" << f.string_value << "\")"; break;
    }
    os << "\n      " << f.help << "\n";
  }
}

void Cli::fail(const std::string& message) const {
  std::cerr << "error: " << message << "\n\n";
  print_usage(std::cerr);
  std::exit(2);
}

}  // namespace hyp
