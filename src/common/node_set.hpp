// Deterministic O(1) membership set over small non-negative integer ids
// (node ids, page sharers, directory copysets).
//
// Two structures in lock-step: an insertion-ordered vector (the only thing
// iteration ever touches, so the visit order is a pure function of the
// insert sequence — exactly what the determinism goldens pin) and a lazily
// grown bitmap for contains()/insert() in O(1). clear() is O(elements), not
// O(universe): it unsets only the bits of current members, so a set that
// drains and refills every round (the seqc directory copyset) never pays
// for the id space.
#pragma once

#include <cstdint>
#include <vector>

namespace hyp {

class NodeSet {
 public:
  using value_type = int;
  using const_iterator = std::vector<int>::const_iterator;

  // Adds `id` unless already present; returns true when newly inserted.
  bool insert(int id) {
    const std::size_t w = word(id);
    if (w >= bits_.size()) bits_.resize(w + 1, 0);
    const std::uint64_t m = mask(id);
    if ((bits_[w] & m) != 0) return false;
    bits_[w] |= m;
    items_.push_back(id);
    return true;
  }

  bool contains(int id) const {
    const std::size_t w = word(id);
    return w < bits_.size() && (bits_[w] & mask(id)) != 0;
  }

  // Members in insertion order.
  const std::vector<int>& items() const { return items_; }
  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void clear() {
    for (int id : items_) bits_[word(id)] &= ~mask(id);
    items_.clear();
  }

  // Moves the members (insertion order) into `out` and empties the set —
  // the "swap the copyset out, then fan out invalidations" drain, without
  // giving up the bitmap's capacity.
  void drain_into(std::vector<int>& out) {
    for (int id : items_) bits_[word(id)] &= ~mask(id);
    out.clear();
    out.swap(items_);
  }

 private:
  static std::size_t word(int id) { return static_cast<std::size_t>(id) >> 6; }
  static std::uint64_t mask(int id) {
    return std::uint64_t{1} << (static_cast<unsigned>(id) & 63u);
  }

  std::vector<int> items_;           // insertion order; drives iteration
  std::vector<std::uint64_t> bits_;  // membership; lazily sized to max id
};

}  // namespace hyp
