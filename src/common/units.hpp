// Virtual-time units.
//
// The simulator's clock is an unsigned 64-bit count of picoseconds. Picosecond
// resolution keeps every per-cycle cost an exact integer for the paper's CPUs
// (one cycle is 5000 ps at 200 MHz, 2222 ps at 450 MHz is rounded once, at
// configuration time) while still covering ~213 days of virtual time.
#pragma once

#include <cstdint>

namespace hyp {

using Time = std::uint64_t;  // picoseconds of virtual time
using TimeDelta = std::uint64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1000;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

constexpr Time nanoseconds(double n) {
  return static_cast<Time>(n * static_cast<double>(kNanosecond));
}
constexpr Time microseconds(double n) {
  return static_cast<Time>(n * static_cast<double>(kMicrosecond));
}
constexpr Time milliseconds(double n) {
  return static_cast<Time>(n * static_cast<double>(kMillisecond));
}
constexpr Time seconds(double n) {
  return static_cast<Time>(n * static_cast<double>(kSecond));
}

constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_micros(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

// Duration of `cycles` CPU cycles at `hz` (rounded to whole picoseconds, at
// least 1 ps per nonzero cycle count so costs never vanish entirely).
constexpr Time cycles_at_hz(std::uint64_t cycles, double hz) {
  if (cycles == 0) return 0;
  const double ps = static_cast<double>(cycles) * 1e12 / hz;
  const Time t = static_cast<Time>(ps);
  return t == 0 ? 1 : t;
}

}  // namespace hyp
