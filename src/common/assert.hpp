// Fatal-error and invariant-checking machinery used across the library.
//
// HYP_CHECK is always on (release builds included): in a DSM runtime a
// violated invariant means silent memory corruption, which is strictly worse
// than an abort. HYP_DCHECK compiles out in NDEBUG builds and is reserved for
// hot paths (the in-line access checks measured by the benchmarks).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

namespace hyp {

// Prints a formatted fatal-error message and aborts. Marked cold so the
// compiler keeps failure paths out of the hot instruction stream.
[[noreturn]] void panic(const char* file, int line, const std::string& msg);

namespace detail {
std::string format_check_failure(const char* expr, std::string_view extra);
}  // namespace detail

}  // namespace hyp

#define HYP_PANIC(msg) ::hyp::panic(__FILE__, __LINE__, (msg))

#define HYP_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::hyp::panic(__FILE__, __LINE__,                                      \
                   ::hyp::detail::format_check_failure(#expr, {}));         \
    }                                                                       \
  } while (0)

#define HYP_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::hyp::panic(__FILE__, __LINE__,                                      \
                   ::hyp::detail::format_check_failure(#expr, (msg)));      \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define HYP_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define HYP_DCHECK(expr) HYP_CHECK(expr)
#endif
