#include "common/assert.hpp"

namespace hyp {

void panic(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[hyperion-repro PANIC] %s:%d: %s\n", file, line,
               msg.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace detail {

std::string format_check_failure(const char* expr, std::string_view extra) {
  std::string out = "check failed: ";
  out += expr;
  if (!extra.empty()) {
    out += " — ";
    out += extra;
  }
  return out;
}

}  // namespace detail
}  // namespace hyp
