// The callback surface the high-availability subsystem (src/ha) installs on
// the cluster transport and the DSM/monitor layers.
//
// The dependency points downward only: cluster/dsm/hyperion know this tiny
// interface, src/ha implements it. With no hooks installed (the default, and
// the only possibility when the fault profile schedules no crash windows)
// every HA branch is a null-pointer test and the event sequence is
// bit-identical to the goldens (docs/RECOVERY.md).
#pragma once

#include <cstdint>

#include "cluster/params.hpp"

namespace hyp::cluster {

struct HaHooks {
  virtual ~HaHooks() = default;

  // Current owner of home zone `zone` (identity mapping until a promotion
  // moves the dead node's zone to its ring successor).
  virtual NodeId home_node(int zone) const = 0;

  // True from the instant the failure detector confirmed `node` dead until
  // the moment it rejoins after its restart.
  virtual bool confirmed_dead(NodeId node) const = 0;

  // Cluster-wide routing epoch; bumped on every promotion. Stale
  // presence/routing decisions made under an older epoch must re-resolve.
  virtual std::uint64_t epoch() const = 0;

  // Absolute virtual time until which a failing-over caller should hold
  // (sleep) before re-attempting an RPC whose last attempt failed against
  // `target`; any value <= now means "retry immediately". Returns a future
  // time while `target` is inside a crash window but not yet confirmed dead
  // (re-routing would be premature; the detector needs silence time).
  virtual Time retry_hold(NodeId target, Time now) const = 0;

  // Accounts home-state replication traffic (incremental checkpoints from
  // home `home` to its chain backups). In the classic piggyback mode the
  // bytes land in kHaCheckpointBytes directly; with the modeled checkpoint
  // stream enabled (replicas > 1 or ckpt_bw set) this emits real cluster
  // messages down the chain instead (docs/RECOVERY.md).
  virtual void note_checkpoint(NodeId home, std::uint64_t bytes) = 0;

  // Replication depth K (FaultProfile::replicas): each home's state is held
  // by its K ring successors. 1 = the classic single-failure model. The DSM
  // uses this to keep update batches zone-pure when K > 1 (two zones homed
  // at one node today may be re-elected to *different* nodes tomorrow).
  virtual std::uint32_t replicas() const = 0;

  // --- partition tolerance (docs/PARTITIONS.md) ----------------------------
  // The routing epoch as observed by `node`: epoch bumps propagate only to
  // the side of a partition that performed the promotion, so a stale home
  // keeps an older view until the heal catch-up. This is the fencing token
  // the DSM/monitor wire formats carry when partitions are configured.
  virtual std::uint64_t node_epoch(NodeId node) const = 0;

  // True while some watcher suspects `node` silent but has not confirmed it
  // dead — the window during which reads of its zones may be served by
  // quorum from the chain backups instead of waiting out the detector.
  virtual bool suspected(NodeId node) const = 0;

  // The i-th chain backup (0 <= i < replicas()) holding `home`'s state.
  virtual NodeId chain_backup(NodeId home, std::uint32_t i) const = 0;
};

}  // namespace hyp::cluster
