#include "cluster/params.hpp"

namespace hyp::cluster {

ClusterParams ClusterParams::myrinet200() {
  ClusterParams p;
  p.name = "myri200";
  p.default_nodes = 12;
  p.net.latency = microseconds(10);
  p.net.bandwidth_bytes_per_sec = 125e6;  // BIP/Myrinet ~125 MB/s
  p.net.send_overhead = microseconds(2);
  p.net.recv_overhead = microseconds(3);
  p.cpu.hz = 200e6;
  p.cpu.page_fault_cost = microseconds(22);  // paper §4.2
  p.cpu.mprotect_page_cost = microseconds(6);
  p.cpu.mprotect_region_cost = microseconds(8);
  p.cpu.check_cycles = 10;
  return p;
}

ClusterParams ClusterParams::sci450() {
  ClusterParams p;
  p.name = "sci450";
  p.default_nodes = 6;
  p.net.latency = microseconds(4);
  p.net.bandwidth_bytes_per_sec = 80e6;  // SISCI/SCI ~80 MB/s
  p.net.send_overhead = microseconds(1);
  p.net.recv_overhead = microseconds(1.5);
  p.cpu.hz = 450e6;
  p.cpu.page_fault_cost = microseconds(12);  // paper §4.2
  p.cpu.mprotect_page_cost = microseconds(3);
  p.cpu.mprotect_region_cost = microseconds(4);
  // The PII's deeper, better-predicted pipeline overlaps the in-line check
  // with neighbouring code (fewer effective cycles), while real application
  // code gains less than the 2.25x clock ratio over the PPro (memory-bound);
  // together these yield the paper's smaller SCI-side improvements (§4.3).
  p.cpu.check_cycles = 5;
  p.cpu.app_cycle_scale = 1.35;
  return p;
}

ClusterParams ClusterParams::by_name(const std::string& name) {
  if (name == "myri200") return myrinet200();
  if (name == "sci450") return sci450();
  HYP_PANIC("unknown cluster preset: " + name + " (expected myri200 or sci450)");
}

}  // namespace hyp::cluster
