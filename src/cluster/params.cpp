#include "cluster/params.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace hyp::cluster {

// ---------------------------------------------------------------------------
// FaultProfile grammar (docs/FAULTS.md)
//
//   profile   := token (',' token)*            (empty string = off)
//   token     := rate | reorder | window | crash | partition | linkdrop
//              | tuning
//   rate      := ('drop'|'dup'|'corrupt') FLOAT '%'
//   reorder   := 'reorder' FLOAT ('us'|'ms')
//   window    := ('stall'|'blackout') INT '@' FLOAT ('us'|'ms')
//                                       '+' FLOAT ('us'|'ms')
//   crash     := 'crash' INT '@' FLOAT ('us'|'ms') '+' FLOAT ('us'|'ms')
//   partition := 'partition@' FLOAT ('us'|'ms') '+' FLOAT ('us'|'ms')
//                ':' group '|' group          group := INT ('.' INT)*
//   linkdrop  := 'linkdrop=' INT '>' INT ':' FLOAT '%'
//   tuning    := 'seed=' INT | 'retries=' INT | 'backoff=' INT
//              | 'rto=' FLOAT ('us'|'ms') | 'timeout=' FLOAT ('us'|'ms')
//              | 'dedupwin=' INT | 'hb=' FLOAT ('us'|'ms')
//              | 'suspect=' FLOAT ('us'|'ms') | 'confirm=' FLOAT ('us'|'ms')
//              | 'replicas=' INT | 'ckpt_bw=' FLOAT        (MB/s)
//              | 'hbcoalesce=' INT                  (0 = never, 1 = always)
//
// Rejections are CLI errors: a diagnostic on stderr citing the grammar and
// exit(2), never a mid-run abort — the profile is fully validated (including
// the crash-schedule semantics the HA subsystem needs) before any simulation
// state exists.

namespace {

[[noreturn]] void bad_profile(const std::string& spec, const std::string& token,
                              const std::string& why) {
  std::fprintf(stderr,
               "malformed --fault-profile '%s' at token '%s': %s\n"
               "  grammar: drop2%%,dup1%%,corrupt0.5%%,reorder5us,stall1@300us+200us,"
               "blackout0@1ms+500us,crash2@1ms+800us,partition@2ms+1ms:0.1|2.3,"
               "linkdrop=0>2:25%%,seed=N,retries=N,backoff=N,"
               "rto=100us,timeout=5ms,dedupwin=N,hb=50us,suspect=200us,confirm=600us,"
               "replicas=K,ckpt_bw=8,hbcoalesce=N\n",
               spec.c_str(), token.c_str(), why.c_str());
  std::exit(2);
}

// Parses "<float><us|ms>" starting at `s`; panics via bad_profile on junk.
Time parse_duration(const std::string& spec, const std::string& token, const char* s,
                    const char** rest) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v < 0) bad_profile(spec, token, "expected a duration");
  Time unit;
  if (end[0] == 'u' && end[1] == 's') {
    unit = kMicrosecond;
    end += 2;
  } else if (end[0] == 'm' && end[1] == 's') {
    unit = kMillisecond;
    end += 2;
  } else {
    bad_profile(spec, token, "duration needs a us/ms suffix");
  }
  if (rest != nullptr) *rest = end;
  return static_cast<Time>(v * static_cast<double>(unit) + 0.5);
}

// Parses "<float>%" into parts-per-million.
std::uint32_t parse_percent_ppm(const std::string& spec, const std::string& token,
                                const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '%' || end[1] != '\0' || v < 0 || v > 100) {
    bad_profile(spec, token, "expected a percentage like 2% or 0.5%");
  }
  return static_cast<std::uint32_t>(v * 10000.0 + 0.5);
}

bool starts_with(const std::string& s, const char* prefix, std::size_t* len) {
  std::size_t i = 0;
  while (prefix[i] != '\0') {
    if (i >= s.size() || s[i] != prefix[i]) return false;
    ++i;
  }
  *len = i;
  return true;
}

}  // namespace

FaultProfile FaultProfile::parse(const std::string& spec) {
  FaultProfile p;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) continue;

    std::size_t n = 0;
    char* end = nullptr;
    if (starts_with(token, "seed=", &n)) {
      p.seed = std::strtoull(token.c_str() + n, &end, 10);
      if (*end != '\0') bad_profile(spec, token, "seed wants an integer");
    } else if (starts_with(token, "retries=", &n)) {
      p.max_retries = static_cast<std::uint32_t>(std::strtoul(token.c_str() + n, &end, 10));
      if (*end != '\0') bad_profile(spec, token, "retries wants an integer");
    } else if (starts_with(token, "backoff=", &n)) {
      p.rto_backoff = static_cast<std::uint32_t>(std::strtoul(token.c_str() + n, &end, 10));
      if (*end != '\0' || p.rto_backoff == 0) bad_profile(spec, token, "backoff wants >= 1");
    } else if (starts_with(token, "rto=", &n)) {
      const char* rest = nullptr;
      p.rto_initial = parse_duration(spec, token, token.c_str() + n, &rest);
      if (*rest != '\0') bad_profile(spec, token, "trailing junk");
    } else if (starts_with(token, "timeout=", &n)) {
      const char* rest = nullptr;
      p.call_timeout = parse_duration(spec, token, token.c_str() + n, &rest);
      if (*rest != '\0') bad_profile(spec, token, "trailing junk");
    } else if (starts_with(token, "dedupwin=", &n)) {
      p.dedup_window = static_cast<std::uint32_t>(std::strtoul(token.c_str() + n, &end, 10));
      if (*end != '\0' || p.dedup_window == 0) bad_profile(spec, token, "dedupwin wants >= 1");
    } else if (starts_with(token, "hb=", &n)) {
      const char* rest = nullptr;
      p.hb_interval = parse_duration(spec, token, token.c_str() + n, &rest);
      if (*rest != '\0' || p.hb_interval == 0) bad_profile(spec, token, "hb wants a duration > 0");
    } else if (starts_with(token, "suspect=", &n)) {
      const char* rest = nullptr;
      p.suspect_after = parse_duration(spec, token, token.c_str() + n, &rest);
      if (*rest != '\0' || p.suspect_after == 0) {
        bad_profile(spec, token, "suspect wants a duration > 0");
      }
    } else if (starts_with(token, "confirm=", &n)) {
      const char* rest = nullptr;
      p.confirm_after = parse_duration(spec, token, token.c_str() + n, &rest);
      if (*rest != '\0' || p.confirm_after == 0) {
        bad_profile(spec, token, "confirm wants a duration > 0");
      }
    } else if (starts_with(token, "replicas=", &n)) {
      p.replicas = static_cast<std::uint32_t>(std::strtoul(token.c_str() + n, &end, 10));
      if (*end != '\0' || p.replicas == 0) bad_profile(spec, token, "replicas wants >= 1");
    } else if (starts_with(token, "hbcoalesce=", &n)) {
      p.hb_coalesce = static_cast<std::uint32_t>(std::strtoul(token.c_str() + n, &end, 10));
      if (*end != '\0' || end == token.c_str() + n) {
        bad_profile(spec, token, "hbcoalesce wants an integer (0 = never, 1 = always)");
      }
    } else if (starts_with(token, "ckpt_bw=", &n)) {
      const double mbps = std::strtod(token.c_str() + n, &end);
      if (end == token.c_str() + n || *end != '\0' || mbps <= 0) {
        bad_profile(spec, token, "ckpt_bw wants a bandwidth in MB/s > 0");
      }
      p.ckpt_bw = static_cast<std::uint64_t>(mbps * 1e6 + 0.5);
    } else if (starts_with(token, "crash", &n)) {
      FaultWindow w;
      w.node = static_cast<NodeId>(std::strtol(token.c_str() + n, &end, 10));
      if (end == token.c_str() + n || *end != '@' || w.node < 0) {
        bad_profile(spec, token, "expected <node>@<start><us|ms>+<dur><us|ms>");
      }
      const char* rest = nullptr;
      w.start = parse_duration(spec, token, end + 1, &rest);
      if (*rest != '+') bad_profile(spec, token, "expected '+<dur>' after the window start");
      w.duration = parse_duration(spec, token, rest + 1, &rest);
      if (*rest != '\0' || w.duration <= 0) bad_profile(spec, token, "bad window duration");
      if (w.start <= 0) {
        bad_profile(spec, token, "crash window needs a positive start and duration");
      }
      p.crashes.push_back(w);
    } else if (starts_with(token, "partition@", &n)) {
      PartitionWindow w;
      const char* rest = nullptr;
      w.start = parse_duration(spec, token, token.c_str() + n, &rest);
      if (*rest != '+') bad_profile(spec, token, "expected '+<dur>' after the window start");
      w.duration = parse_duration(spec, token, rest + 1, &rest);
      if (*rest != ':' || w.duration <= 0) {
        bad_profile(spec, token, "expected ':<group>|<group>' after the window");
      }
      if (w.start <= 0) {
        bad_profile(spec, token, "partition window needs a positive start and duration");
      }
      const char* s = rest + 1;
      bool side_b = false;
      while (true) {
        const long v = std::strtol(s, &end, 10);
        if (end == s || v < 0) {
          bad_profile(spec, token, "partition groups want node ids like 0.1|2.3");
        }
        (side_b ? w.group_b : w.group_a).push_back(static_cast<NodeId>(v));
        s = end;
        if (*s == '.') {
          ++s;
          continue;
        }
        if (*s == '|') {
          if (side_b) bad_profile(spec, token, "exactly two groups, separated by one '|'");
          side_b = true;
          ++s;
          continue;
        }
        if (*s == '\0') break;
        bad_profile(spec, token, "trailing junk in partition groups");
      }
      if (!side_b || w.group_a.empty() || w.group_b.empty()) {
        bad_profile(spec, token, "both partition groups need at least one node");
      }
      std::vector<NodeId> all(w.group_a);
      all.insert(all.end(), w.group_b.begin(), w.group_b.end());
      for (std::size_t i = 0; i < all.size(); ++i) {
        for (std::size_t j = i + 1; j < all.size(); ++j) {
          if (all[i] == all[j]) {
            bad_profile(spec, token,
                        "a node may appear in at most one partition group, once");
          }
        }
      }
      p.partitions.push_back(w);
    } else if (starts_with(token, "linkdrop=", &n)) {
      LinkDrop l;
      l.from = static_cast<NodeId>(std::strtol(token.c_str() + n, &end, 10));
      if (end == token.c_str() + n || *end != '>' || l.from < 0) {
        bad_profile(spec, token, "expected <from>><to>:<pct>%");
      }
      const char* s = end + 1;
      l.to = static_cast<NodeId>(std::strtol(s, &end, 10));
      if (end == s || *end != ':' || l.to < 0) {
        bad_profile(spec, token, "expected <from>><to>:<pct>%");
      }
      if (l.from == l.to) bad_profile(spec, token, "linkdrop wants two distinct nodes");
      l.ppm = parse_percent_ppm(spec, token, end + 1);
      p.linkdrops.push_back(l);
    } else if (starts_with(token, "drop", &n)) {
      p.drop_ppm = parse_percent_ppm(spec, token, token.c_str() + n);
    } else if (starts_with(token, "dup", &n)) {
      p.dup_ppm = parse_percent_ppm(spec, token, token.c_str() + n);
    } else if (starts_with(token, "corrupt", &n)) {
      p.corrupt_ppm = parse_percent_ppm(spec, token, token.c_str() + n);
    } else if (starts_with(token, "reorder", &n)) {
      const char* rest = nullptr;
      p.reorder_max = parse_duration(spec, token, token.c_str() + n, &rest);
      if (*rest != '\0') bad_profile(spec, token, "trailing junk");
    } else if (starts_with(token, "stall", &n) || starts_with(token, "blackout", &n)) {
      FaultWindow w;
      w.blackout = token[0] == 'b';
      w.node = static_cast<NodeId>(std::strtol(token.c_str() + n, &end, 10));
      if (end == token.c_str() + n || *end != '@' || w.node < 0) {
        bad_profile(spec, token, "expected <node>@<start><us|ms>+<dur><us|ms>");
      }
      const char* rest = nullptr;
      w.start = parse_duration(spec, token, end + 1, &rest);
      if (*rest != '+') bad_profile(spec, token, "expected '+<dur>' after the window start");
      w.duration = parse_duration(spec, token, rest + 1, &rest);
      if (*rest != '\0' || w.duration <= 0) bad_profile(spec, token, "bad window duration");
      p.windows.push_back(w);
    } else if (token == "off") {
      // The display form of an empty profile (to_string of a default
      // profile), accepted so every to_string() output parses back.
    } else {
      bad_profile(spec, token, "unknown token");
    }
  }

  // --- cross-token semantic validation (still parse time: CLI error, not a
  // mid-run abort). The crash schedule is what the HA subsystem will execute
  // verbatim, so everything it used to HYP_CHECK in HaManager::start() is
  // rejected here instead.
  if (!p.crashes.empty() || !p.partitions.empty()) {
    // Partitions, like crashes, run through the failure detector (a cut
    // watcher is what confirms a cross-partition "death"), so both demand a
    // coherent detector tuning.
    if (!(p.hb_interval > 0 && p.suspect_after >= p.hb_interval &&
          p.confirm_after > p.suspect_after)) {
      bad_profile(spec, p.crashes.empty() ? "partition" : "crash",
                  "detector tuning wants hb <= suspect < confirm");
    }
  }
  if (!p.crashes.empty()) {
    for (std::size_t i = 0; i < p.crashes.size(); ++i) {
      for (std::size_t j = i + 1; j < p.crashes.size(); ++j) {
        const FaultWindow& a = p.crashes[i];
        const FaultWindow& b = p.crashes[j];
        if (a.node == b.node && a.start < b.end() && b.start < a.end()) {
          bad_profile(spec, "crash" + std::to_string(a.node),
                      "a node's crash windows must not overlap each other");
        }
      }
    }
  }
  return p;
}

std::string FaultProfile::to_string() const {
  auto pct = [](std::uint32_t ppm) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g%%", static_cast<double>(ppm) / 10000.0);
    return std::string(buf);
  };
  auto dur = [](Time t) {
    char buf[48];
    if (t % kMillisecond == 0 && t >= kMillisecond) {
      std::snprintf(buf, sizeof(buf), "%llums",
                    static_cast<unsigned long long>(t / kMillisecond));
    } else if (t % kMicrosecond == 0) {
      // Exact integer microseconds: %g would lose precision on large values,
      // breaking the to_string -> parse round-trip.
      std::snprintf(buf, sizeof(buf), "%lluus",
                    static_cast<unsigned long long>(t / kMicrosecond));
    } else {
      std::snprintf(buf, sizeof(buf), "%gus",
                    static_cast<double>(t) / static_cast<double>(kMicrosecond));
    }
    return std::string(buf);
  };
  std::string out;
  auto add = [&out](const std::string& tok) {
    if (!out.empty()) out += ',';
    out += tok;
  };
  if (drop_ppm != 0) add("drop" + pct(drop_ppm));
  if (dup_ppm != 0) add("dup" + pct(dup_ppm));
  if (corrupt_ppm != 0) add("corrupt" + pct(corrupt_ppm));
  if (reorder_max != 0) add("reorder" + dur(reorder_max));
  for (const FaultWindow& w : windows) {
    add((w.blackout ? "blackout" : "stall") + std::to_string(w.node) + "@" + dur(w.start) +
        "+" + dur(w.duration));
  }
  for (const FaultWindow& c : crashes) {
    add("crash" + std::to_string(c.node) + "@" + dur(c.start) + "+" + dur(c.duration));
  }
  for (const PartitionWindow& w : partitions) {
    std::string tok = "partition@" + dur(w.start) + "+" + dur(w.duration) + ":";
    for (std::size_t i = 0; i < w.group_a.size(); ++i) {
      if (i != 0) tok += '.';
      tok += std::to_string(w.group_a[i]);
    }
    tok += '|';
    for (std::size_t i = 0; i < w.group_b.size(); ++i) {
      if (i != 0) tok += '.';
      tok += std::to_string(w.group_b[i]);
    }
    add(tok);
  }
  for (const LinkDrop& l : linkdrops) {
    add("linkdrop=" + std::to_string(l.from) + ">" + std::to_string(l.to) + ":" +
        pct(l.ppm));
  }
  if (seed != 0) add("seed=" + std::to_string(seed));
  // Emit every field that differs from a default-constructed profile, so
  // parse(to_string()) reproduces the profile exactly for every token type
  // (pinned by fault_test's round-trip cases). The defaults stay implicit:
  // "off" round-trips to a default profile.
  const FaultProfile defaults;
  if (rto_initial != defaults.rto_initial || lossy()) add("rto=" + dur(rto_initial));
  if (max_retries != defaults.max_retries || lossy()) {
    add("retries=" + std::to_string(max_retries));
  }
  if (rto_backoff != defaults.rto_backoff) add("backoff=" + std::to_string(rto_backoff));
  if (call_timeout != 0) add("timeout=" + dur(call_timeout));
  if (dedup_window != 0) add("dedupwin=" + std::to_string(dedup_window));
  const bool detector = !crashes.empty() || !partitions.empty();
  if (hb_interval != defaults.hb_interval || detector) add("hb=" + dur(hb_interval));
  if (suspect_after != defaults.suspect_after || detector) {
    add("suspect=" + dur(suspect_after));
  }
  if (confirm_after != defaults.confirm_after || detector) {
    add("confirm=" + dur(confirm_after));
  }
  if (replicas != 1) add("replicas=" + std::to_string(replicas));
  if (hb_coalesce != defaults.hb_coalesce) {
    add("hbcoalesce=" + std::to_string(hb_coalesce));
  }
  if (ckpt_bw != 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "ckpt_bw=%g", static_cast<double>(ckpt_bw) / 1e6);
    add(buf);
  }
  return out.empty() ? "off" : out;
}

ClusterParams ClusterParams::myrinet200() {
  ClusterParams p;
  p.name = "myri200";
  p.default_nodes = 12;
  p.net.latency = microseconds(10);
  p.net.bandwidth_bytes_per_sec = 125e6;  // BIP/Myrinet ~125 MB/s
  p.net.send_overhead = microseconds(2);
  p.net.recv_overhead = microseconds(3);
  p.cpu.hz = 200e6;
  p.cpu.page_fault_cost = microseconds(22);  // paper §4.2
  p.cpu.mprotect_page_cost = microseconds(6);
  p.cpu.mprotect_region_cost = microseconds(8);
  p.cpu.check_cycles = 10;
  return p;
}

ClusterParams ClusterParams::sci450() {
  ClusterParams p;
  p.name = "sci450";
  p.default_nodes = 6;
  p.net.latency = microseconds(4);
  p.net.bandwidth_bytes_per_sec = 80e6;  // SISCI/SCI ~80 MB/s
  p.net.send_overhead = microseconds(1);
  p.net.recv_overhead = microseconds(1.5);
  p.cpu.hz = 450e6;
  p.cpu.page_fault_cost = microseconds(12);  // paper §4.2
  p.cpu.mprotect_page_cost = microseconds(3);
  p.cpu.mprotect_region_cost = microseconds(4);
  // The PII's deeper, better-predicted pipeline overlaps the in-line check
  // with neighbouring code (fewer effective cycles), while real application
  // code gains less than the 2.25x clock ratio over the PPro (memory-bound);
  // together these yield the paper's smaller SCI-side improvements (§4.3).
  p.cpu.check_cycles = 5;
  p.cpu.app_cycle_scale = 1.35;
  return p;
}

ClusterParams ClusterParams::by_name(const std::string& name) {
  if (name == "myri200") return myrinet200();
  if (name == "sci450") return sci450();
  HYP_PANIC("unknown cluster preset: " + name + " (expected myri200 or sci450)");
}

}  // namespace hyp::cluster
