// The callback surface the race detector (src/obs/race.hpp) installs on the
// cluster transport for message-carried vector-clock piggybacking.
//
// Same dependency discipline as ha_hooks.hpp: the cluster knows only this
// tiny interface, obs implements it. With no hooks installed (the default)
// the transport hook is a null-pointer test and the event sequence is
// bit-identical to the goldens. An installed hook only *accumulates* — it
// must never sleep, charge a clock or send messages of its own, so attaching
// the detector cannot shift virtual time (tests/race_test.cpp pins this).
#pragma once

#include <cstddef>

#include "cluster/params.hpp"

namespace hyp::cluster {

struct RaceHooks {
  virtual ~RaceHooks() = default;

  // One logical message (request or reply) departed `from` for `to`. The
  // detector joins the receiving node's clock with the sender's and accounts
  // the vector-clock piggyback bytes the message would carry on a real
  // implementation (docs/RACES.md). `service` is -1 for replies.
  virtual void on_message(NodeId from, NodeId to, int service, std::size_t bytes) = 0;
};

}  // namespace hyp::cluster
