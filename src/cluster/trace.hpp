// Protocol event tracing.
//
// A lightweight, allocation-free-at-record-time event log with virtual
// timestamps: each record is (time, node, kind, three integer arguments).
// The DSM and monitor subsystems emit events when a TraceLog is attached to
// the Cluster; with none attached the hooks cost one pointer test.
// Deterministic simulations make traces diffable run-to-run — the primary
// protocol-debugging tool of this repository (see protocol_tour --trace).
//
// Consumers: write_text() for human eyes, obs::write_perfetto_trace() for a
// Chrome/Perfetto trace_events JSON openable in ui.perfetto.dev
// (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace hyp::cluster {

enum class TraceKind : std::uint8_t {
  kPageFetch,        // a=page, b=home
  kPageFault,        // a=page (java_pf detection)
  kInvalidate,       // a=pages dropped
  kUpdateSent,       // a=dest(home), b=bytes
  kMonitorEnter,     // a=object gva, b=thread uid (request issued)
  kMonitorExit,      // a=object gva, b=thread uid
  kMonitorWait,      // a=object gva, b=thread uid
  kMonitorNotify,    // a=object gva, b=all?1:0
  kThreadStart,      // a=thread uid
  kThreadMigrate,    // a=from node, b=to node
  kMonitorAcquired,  // a=object gva, b=thread uid (grant received; pairs
                     // with kMonitorEnter for acquire-wait slices)
  kUpdateApplied,    // a=src node, b=bytes/entries applied (home side; pairs
                     // with kUpdateSent for cross-node flow events)
  // --- fault-injection / reliable transport (docs/FAULTS.md) ---------------
  kNetDrop,          // a=dst node, b=pair seq (injected drop/corrupt/blackout)
  kDupSuppressed,    // a=src node, b=pair seq (receiver dedup hit)
  kRetransmit,       // a=dst node, b=pair seq (sender timer fired)
  kRpcTimeout,       // a=peer node, b=service (call deadline or retry budget)
  // --- high availability (docs/RECOVERY.md) --------------------------------
  kNodeCrash,        // a=restart time (us), b=0 (node field = dying node)
  kNodeRestart,      // a=epoch at restart
  kHaSuspected,      // a=suspect node, b=silence (us) (node = watcher)
  kHaDeadConfirmed,  // a=dead node, b=silence (us) (node = watcher)
  kHomePromoted,     // a=dead node whose zone moved, b=zone bytes (node = backup)
  kEpochBump,        // a=new epoch, b=dead node
  kHaRejoined,       // a=epoch at rejoin (node = restarted node)
  kHaNack,           // a=requesting node, b=service (stale-home request refused)
  kCheckpoint,       // a=dest (chain member), b=message bytes (home-state
                     // replication traffic; one event per checkpoint message
                     // transmitted, or per piggyback batch in legacy mode)
  kCheckpointApplied,// a=origin home, b=message bytes (chain member absorbed
                     // a checkpoint message from the modeled stream)
  // --- race detection (docs/RACES.md) --------------------------------------
  kRaceDetected,     // a=address, b=(tid_prev<<34)|(tid_cur<<4)|kind; emitted
                     // once per deduplicated race (node = detecting access)
  // --- network partitions (docs/PARTITIONS.md) -----------------------------
  kHaPartition,      // a=1 open / 0 heal, b=partition window index
  kHaFencedReject,   // a=stale epoch seen, b=service (node = rejecting side)
  kHaQuorumRead,     // a=page, b=serving chain backup (node = reader)
  // --- serving workload (docs/SERVING.md) ----------------------------------
  kServeOp,          // a=key, b=(latency_ps<<1)|is_update; emitted at op
                     // completion (node = client node) — the Perfetto
                     // exporter turns this into a retrospective `serve` slice
                     // spanning [scheduled arrival, completion]
  // --- adaptive hybrid protocol (docs/PROTOCOLS.md §hybrid) ----------------
  kModeSwitch,       // a=page, b=1 switched to ic-mode / 0 to pf-mode
                     // (node = the node whose per-page mode flipped)
  kHomeMigrated,     // a=page, b=new home node (node = old home)
};

// Keep in sync with the enum above (drop accounting is per kind).
inline constexpr int kTraceKindCount = 33;

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  Time at;
  int node;
  TraceKind kind;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

class TraceLog {
 public:
  // Bounded: recording beyond the capacity drops the *newest* events —
  // oldest-first semantics are NOT wanted for debugging; instead recording
  // stops (and drops are counted, totals and per kind) so the beginning of
  // the run — usually what matters — is kept. The backing store is reserved
  // up front so record() never allocates (tests/obs_alloc_test.cpp).
  //
  // Streaming mode (set_sink) lifts the bound: when the front buffer fills,
  // it is swapped with an equally pre-reserved back buffer and handed to the
  // sink — the classic double-buffered logger shape (cf. rDSN's hpc_logger).
  // Nothing is ever dropped in streaming mode, and record() still never
  // allocates once both buffers are reserved.
  explicit TraceLog(std::size_t capacity = 1 << 16) : capacity_(capacity) {
    events_.reserve(capacity);
  }

  using Sink = std::function<void(const std::vector<TraceEvent>&)>;

  // Attaches an incremental consumer and reserves the back buffer. The sink
  // is called with each full buffer in record order; flush_sink() hands over
  // whatever remains. Call before recording starts.
  void set_sink(Sink sink) {
    sink_ = std::move(sink);
    spare_.reserve(capacity_);
  }
  bool streaming() const { return static_cast<bool>(sink_); }

  // Drains the partially-filled front buffer to the sink (end of run).
  void flush_sink() {
    if (!sink_ || events_.empty()) return;
    events_.swap(spare_);
    sink_(spare_);
    spare_.clear();
  }

  void record(Time at, int node, TraceKind kind, std::int64_t a, std::int64_t b) {
    if (events_.size() >= capacity_) {
      if (sink_) {
        // Swap-and-drain: the filled buffer goes out, recording continues
        // into the (already reserved) other buffer.
        events_.swap(spare_);
        sink_(spare_);
        spare_.clear();
      } else {
        ++dropped_;
        ++dropped_by_kind_[static_cast<int>(kind)];
        return;
      }
    }
    events_.push_back({at, node, kind, a, b});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t dropped(TraceKind kind) const {
    return dropped_by_kind_[static_cast<int>(kind)];
  }
  void clear() {
    events_.clear();
    spare_.clear();
    dropped_ = 0;
    for (auto& d : dropped_by_kind_) d = 0;
  }

  // Count of events of one kind *observed*, including any dropped at
  // capacity — a saturated trace must not silently skew event totals.
  // recorded() gives just the events retained in the log.
  std::size_t count(TraceKind kind) const {
    return recorded(kind) + static_cast<std::size_t>(dropped(kind));
  }
  std::size_t recorded(TraceKind kind) const;

  // Human-readable dump: one event per line, virtual microsecond timestamps.
  // Always ends with the drop count when any event was dropped.
  void write_text(std::ostream& os, std::size_t limit = ~std::size_t{0}) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::vector<TraceEvent> spare_;  // back buffer (streaming mode only)
  Sink sink_;
  std::uint64_t dropped_ = 0;
  std::uint64_t dropped_by_kind_[kTraceKindCount] = {};
};

}  // namespace hyp::cluster
