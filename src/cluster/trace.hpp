// Protocol event tracing.
//
// A lightweight, allocation-free-at-record-time event log with virtual
// timestamps: each record is (time, node, kind, three integer arguments).
// The DSM and monitor subsystems emit events when a TraceLog is attached to
// the Cluster; with none attached the hooks cost one pointer test.
// Deterministic simulations make traces diffable run-to-run — the primary
// protocol-debugging tool of this repository (see protocol_tour --trace).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hyp::cluster {

enum class TraceKind : std::uint8_t {
  kPageFetch,      // a=page, b=home
  kPageFault,      // a=page (java_pf detection)
  kInvalidate,     // a=pages dropped
  kUpdateSent,     // a=dest(home), b=bytes
  kMonitorEnter,   // a=object gva, b=thread uid
  kMonitorExit,    // a=object gva, b=thread uid
  kMonitorWait,    // a=object gva, b=thread uid
  kMonitorNotify,  // a=object gva, b=all?1:0
  kThreadStart,    // a=thread uid
  kThreadMigrate,  // a=from node, b=to node
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  Time at;
  int node;
  TraceKind kind;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

class TraceLog {
 public:
  // Bounded: recording beyond the capacity drops the oldest semantics are
  // NOT wanted for debugging; instead recording stops (and drops are
  // counted) so the beginning of the run — usually what matters — is kept.
  explicit TraceLog(std::size_t capacity = 1 << 16) : capacity_(capacity) {
    events_.reserve(capacity < 4096 ? capacity : 4096);
  }

  void record(Time at, int node, TraceKind kind, std::int64_t a, std::int64_t b) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back({at, node, kind, a, b});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  // Count of events of one kind (test convenience).
  std::size_t count(TraceKind kind) const;

  // Human-readable dump: one event per line, virtual microsecond timestamps.
  void write_text(std::ostream& os, std::size_t limit = ~std::size_t{0}) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace hyp::cluster
