// Cluster cost-model parameters.
//
// The paper evaluates on two testbeds; their published constants anchor the
// model. Constants the paper states directly:
//   * 12x 200 MHz Pentium Pro, Myrinet/BIP, page fault cost 22 us
//   * 6x 450 MHz Pentium II, SCI/SISCI,   page fault cost 12 us
// Network figures come from the cited BIP paper (~10 us latency, ~125 MB/s)
// and contemporary SISCI measurements (~4 us, ~80 MB/s). The in-line check
// cost is expressed in CPU cycles so that it scales with the CPU clock the
// way the paper's discussion requires ("the faster speed of the processors
// ... makes the removal of the in-line checks relatively less important").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace hyp::cluster {

using NodeId = int;

struct NetworkParams {
  Time latency = 0;                    // one-way wire + NIC latency
  double bandwidth_bytes_per_sec = 0;  // payload streaming rate
  Time send_overhead = 0;              // sender-side protocol stack cost
  Time recv_overhead = 0;              // receiver-side dispatch cost

  // Legacy failure-injection knob, kept as an alias: per-message latency
  // jitter up to this many picoseconds. The Cluster constructor folds it into
  // FaultProfile::reorder_max, where all network perturbation now lives
  // behind one seeded interface (docs/FAULTS.md). 0 = off (default).
  Time jitter_max = 0;

  // Wire time for a message of `bytes` payload (excluding end-point
  // overheads, which are charged to the respective CPUs/service queues).
  Time wire_time(std::size_t bytes) const {
    HYP_DCHECK(bandwidth_bytes_per_sec > 0);
    const double ps = static_cast<double>(bytes) * 1e12 / bandwidth_bytes_per_sec;
    return latency + static_cast<Time>(ps);
  }
};

// One scheduled service-degradation window on a node: while it is open the
// node's NIC either delays every arriving packet to the window's end (stall)
// or drops them outright (blackout). Deterministic by construction: windows
// are explicit virtual-time intervals, not sampled.
struct FaultWindow {
  NodeId node = -1;
  Time start = 0;
  Time duration = 0;
  bool blackout = false;  // false = stall (delay to end), true = drop
  Time end() const { return start + duration; }
  bool covers(Time at) const { return at >= start && at < end(); }
};

// One scheduled network partition: while the window is open, every packet
// between a node of group_a and a node of group_b (either direction) vanishes
// on the wire; traffic within a group — and to/from nodes in neither group —
// is untouched. Deterministic by construction: explicit virtual-time
// intervals, not sampled (docs/PARTITIONS.md).
struct PartitionWindow {
  Time start = 0;
  Time duration = 0;
  std::vector<NodeId> group_a;
  std::vector<NodeId> group_b;
  Time end() const { return start + duration; }
  bool covers(Time at) const { return at >= start && at < end(); }
  // 0 = group_a, 1 = group_b, -1 = not named by this window.
  int side_of(NodeId n) const {
    for (NodeId a : group_a) {
      if (a == n) return 0;
    }
    for (NodeId b : group_b) {
      if (b == n) return 1;
    }
    return -1;
  }
  bool severs(NodeId from, NodeId to, Time at) const {
    if (!covers(at)) return false;
    const int sf = side_of(from);
    const int st = side_of(to);
    return sf >= 0 && st >= 0 && sf != st;
  }
};

// A per-direction (asymmetric) link loss rate: packets from -> to drop with
// probability ppm, independent of the symmetric drop_ppm. The reverse
// direction is a separate token (docs/PARTITIONS.md).
struct LinkDrop {
  NodeId from = -1;
  NodeId to = -1;
  std::uint32_t ppm = 0;
};

// Deterministic fault-injection profile for the cluster's network layer.
//
// Every probabilistic decision is hash-derived (SplitMix64 finalizer) from
// (seed, endpoints, per-pair sequence number, transmission attempt, salt), so
// a faulty run is exactly as reproducible as a quiet one: the same seed gives
// byte-identical traces, a different seed gives an independent schedule of
// drops/dups/delays. All knobs default to off; a default-constructed profile
// leaves the delivery path bit-identical to the paper's lossless testbeds.
//
// Parsed from the `--fault-profile` grammar (docs/FAULTS.md), e.g.
//   drop2%,dup1%,reorder5us,seed=7
//   corrupt0.5%,retries=6,rto=100us
//   blackout2@300us+150us,stall0@1ms+200us
//   partition@2ms+1ms:0.1|2.3,linkdrop=0>2:25%
struct FaultProfile {
  // Per-transmission perturbation rates in parts-per-million (integers keep
  // parsing and cross-platform arithmetic exact).
  std::uint32_t drop_ppm = 0;     // message vanishes on the wire
  std::uint32_t dup_ppm = 0;      // message is delivered twice
  std::uint32_t corrupt_ppm = 0;  // payload corrupted; checksum drops it
  Time reorder_max = 0;           // extra delivery delay in [0, reorder_max]
  std::uint64_t seed = 0;
  std::vector<FaultWindow> windows;  // node stall/blackout intervals
  // Crash/restart windows: while open the node's CPU and NIC are dead — every
  // arriving packet vanishes and the node executes nothing; at window end the
  // node restarts with no home authority (docs/RECOVERY.md). Parsed from
  // `crashN@Sus+Dus`. A crash window engages the HA subsystem (src/ha).
  std::vector<FaultWindow> crashes;
  // Network-partition windows (`partition@S+D:a.a|b.b`) and asymmetric link
  // loss rates (`linkdrop=F>T:P%`); see docs/PARTITIONS.md. A partition that
  // splits in-range nodes engages the HA subsystem with quorum promotion and
  // epoch fencing.
  std::vector<PartitionWindow> partitions;
  std::vector<LinkDrop> linkdrops;

  // Reliable-transport tuning (engaged only when lossy()).
  Time rto_initial = 200 * kMicrosecond;  // first retransmit timeout
  std::uint32_t rto_backoff = 2;          // exponential backoff factor
  std::uint32_t max_retries = 10;         // retransmits before giving up
  // Optional end-to-end deadline on blocking call(); 0 = rely on the
  // per-packet retry budget alone (a contended monitor may legitimately be
  // granted arbitrarily late, so this is off by default).
  Time call_timeout = 0;

  // Receiver-side duplicate-suppression window: how many out-of-order
  // sequence numbers above the contiguous watermark each (src,dst) pair
  // remembers. 0 = unbounded (exact dedup, the default). A too-small window
  // can forget a seen seq and re-deliver a duplicate — the runtime stays
  // correct (monitor op ids / idempotent DSM applies absorb it), which
  // tests/fault_test.cpp pins. Token `dedupwin=N`; bench `--rpc-dedup-window`.
  std::uint32_t dedup_window = 0;

  // Failure-detector tuning (engaged only when crashes are scheduled).
  // Heartbeats ride an out-of-band management path (not the faultable data
  // transport); their latency is folded into suspect_after. Each node
  // heartbeats its ring successor every hb_interval; every chain watcher
  // suspects a silent predecessor after suspect_after and confirms it dead —
  // triggering re-election of its home zones — after confirm_after.
  Time hb_interval = 50 * kMicrosecond;
  Time suspect_after = 200 * kMicrosecond;
  Time confirm_after = 600 * kMicrosecond;

  // Detector coalescing threshold (docs/RECOVERY.md): clusters with at least
  // this many nodes run ONE sweep event per hb_interval that ticks every node
  // in ascending id order, instead of one self-chaining tick event per node —
  // O(1) events per interval instead of O(n), same side effects in the same
  // order. Below the threshold the classic per-node chains are kept (they are
  // what the recovery goldens' event counts pin). 0 = never coalesce,
  // 1 = always. Token `hbcoalesce=N`.
  std::uint32_t hb_coalesce = 64;

  // Replication depth for HA home-state backups (docs/RECOVERY.md): each
  // home's zone is checkpointed to its `replicas` ring successors in chain
  // order, so any K simultaneous failures that leave one of the K+1 copies
  // alive are survivable. 1 (the default) is the classic single-failure
  // ring-successor model. Token `replicas=K` (K >= 1).
  std::uint32_t replicas = 1;

  // Checkpoint-stream bandwidth budget in bytes/second; 0 (default) keeps
  // the incremental checkpoints as piggyback accounting on the consistency
  // traffic. Non-zero (or replicas > 1) turns the checkpoint stream into
  // real cluster messages — traced, faultable, and paced so consecutive
  // checkpoints from one home never exceed this rate. Token `ckpt_bw=<MB/s>`.
  std::uint64_t ckpt_bw = 0;

  // Lossy features require the ack/retransmit transport; pure reorder (the
  // old jitter knob) is delay-only and keeps the one-event-per-message path.
  bool lossy() const {
    return drop_ppm != 0 || dup_ppm != 0 || corrupt_ppm != 0 || !windows.empty() ||
           !crashes.empty() || !partitions.empty() || !linkdrops.empty();
  }
  bool any() const { return lossy() || reorder_max != 0; }

  // SplitMix64 finalizer — the same deterministic hash jitter_for used.
  static std::uint64_t mix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t hash(std::uint64_t key, std::uint64_t salt) const {
    return mix(mix(key ^ seed) + salt);
  }
  // One hash key per physical transmission attempt of one packet.
  static std::uint64_t packet_key(NodeId from, NodeId to, std::uint64_t seq,
                                  std::uint32_t attempt) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 48) ^
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(to)) << 40) ^
           (static_cast<std::uint64_t>(attempt) << 32) ^ mix(seq);
  }

  bool roll(std::uint32_t ppm, std::uint64_t key, std::uint64_t salt) const {
    if (ppm == 0) return false;
    return hash(key, salt) % 1000000u < ppm;
  }
  // Extra hash-derived delivery delay (the reorder / legacy-jitter knob).
  Time extra_delay(std::uint64_t key) const {
    if (reorder_max == 0) return 0;
    return static_cast<Time>(hash(key, kSaltReorder) %
                             static_cast<std::uint64_t>(reorder_max + 1));
  }

  // Sentinel returned by apply_windows when a blackout eats the packet
  // (Time is unsigned, so a negative sentinel cannot exist).
  static constexpr Time kDropped = ~Time{0};

  // Window adjustment for a packet arriving at `node` at `arrival`.
  // Returns the adjusted arrival time, or kDropped if a blackout (or a crash
  // window — a dead NIC receives nothing) eats it.
  Time apply_windows(NodeId node, Time arrival) const {
    for (const FaultWindow& w : windows) {
      if (w.node != node || !w.covers(arrival)) continue;
      if (w.blackout) return kDropped;
      arrival = w.end();  // stalled NICs deliver at window end; re-check
    }
    for (const FaultWindow& c : crashes) {
      if (c.node == node && c.covers(arrival)) return kDropped;
    }
    return arrival;
  }

  // If `node` is inside a crash window at `at`, returns the window end (the
  // restart instant); otherwise 0. Used to hold a crashed node's outbound
  // transmissions and to pace failover retries.
  Time crash_release(NodeId node, Time at) const {
    for (const FaultWindow& c : crashes) {
      if (c.node == node && c.covers(at)) return c.end();
    }
    return 0;
  }

  // True when a partition window open at `at` puts from/to on opposite sides:
  // the wire between them is cut and the packet vanishes.
  bool severed(NodeId from, NodeId to, Time at) const {
    for (const PartitionWindow& p : partitions) {
      if (p.severs(from, to, at)) return true;
    }
    return false;
  }
  // End of the last partition window severing from<->to that covers `at`
  // (the deterministic heal instant); 0 when the pair is not severed at `at`.
  Time severed_until(NodeId from, NodeId to, Time at) const {
    Time until = 0;
    for (const PartitionWindow& p : partitions) {
      if (p.severs(from, to, at) && p.end() > until) until = p.end();
    }
    return until;
  }
  // Start of the earliest partition window severing from<->to that covers
  // `at`; 0 when the pair is not severed at `at`. Paired with confirm_after
  // to bound how long a caller parks before the surviving side has promoted.
  Time severed_since(NodeId from, NodeId to, Time at) const {
    Time since = 0;
    for (const PartitionWindow& p : partitions) {
      if (p.severs(from, to, at) && (since == 0 || p.start < since)) since = p.start;
    }
    return since;
  }
  // Latest heal instant among open partition windows naming `node`; 0 when no
  // open window lists it. While such a window is open the node's routing
  // epoch may be stale (the heal catch-up is what un-fences it), so a caller
  // whose requests are being epoch-fenced holds until this instant instead of
  // burning its retry budget against NACKs.
  Time partition_release(NodeId node, Time at) const {
    Time until = 0;
    for (const PartitionWindow& p : partitions) {
      if (p.covers(at) && p.side_of(node) >= 0 && p.end() > until) until = p.end();
    }
    return until;
  }
  // Asymmetric per-direction loss rate for from -> to (sums all matching
  // linkdrop tokens, saturating at certain loss).
  std::uint32_t linkdrop_ppm(NodeId from, NodeId to) const {
    std::uint64_t ppm = 0;
    for (const LinkDrop& l : linkdrops) {
      if (l.from == from && l.to == to) ppm += l.ppm;
    }
    return static_cast<std::uint32_t>(ppm < 1000000u ? ppm : 1000000u);
  }

  // Salts for the independent decision streams.
  static constexpr std::uint64_t kSaltDrop = 0x01;
  static constexpr std::uint64_t kSaltDup = 0x02;
  static constexpr std::uint64_t kSaltCorrupt = 0x03;
  static constexpr std::uint64_t kSaltReorder = 0x04;
  static constexpr std::uint64_t kSaltDupDelay = 0x05;
  static constexpr std::uint64_t kSaltLinkDrop = 0x06;

  // Parses the --fault-profile grammar. Malformed or semantically invalid
  // specs (zero-start crash windows, detector tunings that violate
  // hb <= suspect < confirm, overlapping same-node crash windows,
  // replicas=0, partition groups that overlap or are empty, ...) are rejected
  // at parse time: a clear CLI diagnostic on stderr citing the grammar, then
  // exit(2) — never a mid-run abort. An empty spec yields the default (off).
  static FaultProfile parse(const std::string& spec);
  // Canonical round-trippable rendering (diagnostics, bench banners).
  std::string to_string() const;
};

struct CpuParams {
  double hz = 0;                  // CPU clock
  Time page_fault_cost = 0;       // trap + kernel + SIGSEGV dispatch (paper §4.2)
  Time mprotect_page_cost = 0;    // mprotect(2) on a single page
  Time mprotect_region_cost = 0;  // one mprotect spanning the whole DSM region
  std::uint64_t check_cycles = 0; // java_ic in-line locality check

  // Memory-subsystem work constants (cycles, scaled by the CPU clock).
  double copy_cycles_per_byte = 0.25;    // page memcpy (fetch, twin, apply)
  double diff_cycles_per_byte = 0.5;     // twin comparison at updateMainMemory
  std::uint64_t update_entry_cycles = 12;   // pack/apply one write-log field
  std::uint64_t invalidate_page_cycles = 2; // drop one cached page (bitmap)

  // Application compute does not speed up linearly with the clock (memory
  // stalls do not scale); charged app cycles are inflated by this factor.
  // The in-line check itself is register/L1 work and stays at check_cycles.
  // This is what makes check removal "relatively less important" on the
  // faster CPUs (paper §4.3).
  double app_cycle_scale = 1.0;

  // Scheduler timeslice: batched compute is presented to the node CPU in
  // slices of at most this length, so a co-resident thread's small burst is
  // delayed by one quantum, not by a sibling's entire batch — the
  // preemption real kernels provide.
  Time timeslice = 100 * kMicrosecond;

  Time cycles(std::uint64_t n) const { return cycles_at_hz(n, hz); }
  // App-code cycles, including the sub-linear clock scaling.
  Time app_cycles(std::uint64_t n) const {
    return cycles_f(app_cycle_scale * static_cast<double>(n));
  }
  // Fractional cycle totals (per-byte constants) rounded once at the end.
  Time cycles_f(double n) const {
    return n <= 0 ? 0 : cycles_at_hz(static_cast<std::uint64_t>(n + 0.5), hz);
  }
  Time check_cost() const { return cycles(check_cycles); }
  Time copy_cost(std::size_t bytes) const {
    return cycles_f(copy_cycles_per_byte * static_cast<double>(bytes));
  }
  Time diff_cost(std::size_t bytes) const {
    return cycles_f(diff_cycles_per_byte * static_cast<double>(bytes));
  }
};

struct ClusterParams {
  std::string name;
  int default_nodes = 0;  // cluster size used in the paper's figures
  NetworkParams net;
  CpuParams cpu;
  // Deterministic network fault injection; default-off (the paper's
  // interconnects were dedicated and lossless). The Cluster constructor
  // folds the legacy net.jitter_max alias into fault.reorder_max.
  FaultProfile fault;
  std::size_t page_bytes = 4096;

  // The two testbeds of the paper.
  static ClusterParams myrinet200();
  static ClusterParams sci450();
  // Resolves "myri200" / "sci450" by name (benchmark CLI).
  static ClusterParams by_name(const std::string& name);
};

}  // namespace hyp::cluster
