// Cluster cost-model parameters.
//
// The paper evaluates on two testbeds; their published constants anchor the
// model. Constants the paper states directly:
//   * 12x 200 MHz Pentium Pro, Myrinet/BIP, page fault cost 22 us
//   * 6x 450 MHz Pentium II, SCI/SISCI,   page fault cost 12 us
// Network figures come from the cited BIP paper (~10 us latency, ~125 MB/s)
// and contemporary SISCI measurements (~4 us, ~80 MB/s). The in-line check
// cost is expressed in CPU cycles so that it scales with the CPU clock the
// way the paper's discussion requires ("the faster speed of the processors
// ... makes the removal of the in-line checks relatively less important").
#pragma once

#include <cstdint>
#include <string>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace hyp::cluster {

using NodeId = int;

struct NetworkParams {
  Time latency = 0;                    // one-way wire + NIC latency
  double bandwidth_bytes_per_sec = 0;  // payload streaming rate
  Time send_overhead = 0;              // sender-side protocol stack cost
  Time recv_overhead = 0;              // receiver-side dispatch cost

  // Failure-injection knob: per-message latency jitter, up to this many
  // picoseconds added deterministically (hashed from the message sequence
  // number — two runs of the same program still produce identical traces,
  // but message timing is no longer metronomic). 0 = off (default; the
  // paper's interconnects were dedicated and quiet).
  Time jitter_max = 0;

  // Wire time for a message of `bytes` payload (excluding end-point
  // overheads, which are charged to the respective CPUs/service queues).
  Time wire_time(std::size_t bytes) const {
    HYP_DCHECK(bandwidth_bytes_per_sec > 0);
    const double ps = static_cast<double>(bytes) * 1e12 / bandwidth_bytes_per_sec;
    return latency + static_cast<Time>(ps);
  }

  // Deterministic jitter for the message with this sequence number.
  Time jitter_for(std::uint64_t seq) const {
    if (jitter_max == 0) return 0;
    // SplitMix64 finalizer as the hash.
    std::uint64_t z = seq + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z % (jitter_max + 1);
  }
};

struct CpuParams {
  double hz = 0;                  // CPU clock
  Time page_fault_cost = 0;       // trap + kernel + SIGSEGV dispatch (paper §4.2)
  Time mprotect_page_cost = 0;    // mprotect(2) on a single page
  Time mprotect_region_cost = 0;  // one mprotect spanning the whole DSM region
  std::uint64_t check_cycles = 0; // java_ic in-line locality check

  // Memory-subsystem work constants (cycles, scaled by the CPU clock).
  double copy_cycles_per_byte = 0.25;    // page memcpy (fetch, twin, apply)
  double diff_cycles_per_byte = 0.5;     // twin comparison at updateMainMemory
  std::uint64_t update_entry_cycles = 12;   // pack/apply one write-log field
  std::uint64_t invalidate_page_cycles = 2; // drop one cached page (bitmap)

  // Application compute does not speed up linearly with the clock (memory
  // stalls do not scale); charged app cycles are inflated by this factor.
  // The in-line check itself is register/L1 work and stays at check_cycles.
  // This is what makes check removal "relatively less important" on the
  // faster CPUs (paper §4.3).
  double app_cycle_scale = 1.0;

  // Scheduler timeslice: batched compute is presented to the node CPU in
  // slices of at most this length, so a co-resident thread's small burst is
  // delayed by one quantum, not by a sibling's entire batch — the
  // preemption real kernels provide.
  Time timeslice = 100 * kMicrosecond;

  Time cycles(std::uint64_t n) const { return cycles_at_hz(n, hz); }
  // App-code cycles, including the sub-linear clock scaling.
  Time app_cycles(std::uint64_t n) const {
    return cycles_f(app_cycle_scale * static_cast<double>(n));
  }
  // Fractional cycle totals (per-byte constants) rounded once at the end.
  Time cycles_f(double n) const {
    return n <= 0 ? 0 : cycles_at_hz(static_cast<std::uint64_t>(n + 0.5), hz);
  }
  Time check_cost() const { return cycles(check_cycles); }
  Time copy_cost(std::size_t bytes) const {
    return cycles_f(copy_cycles_per_byte * static_cast<double>(bytes));
  }
  Time diff_cost(std::size_t bytes) const {
    return cycles_f(diff_cycles_per_byte * static_cast<double>(bytes));
  }
};

struct ClusterParams {
  std::string name;
  int default_nodes = 0;  // cluster size used in the paper's figures
  NetworkParams net;
  CpuParams cpu;
  std::size_t page_bytes = 4096;

  // The two testbeds of the paper.
  static ClusterParams myrinet200();
  static ClusterParams sci450();
  // Resolves "myri200" / "sci450" by name (benchmark CLI).
  static ClusterParams by_name(const std::string& name);
};

}  // namespace hyp::cluster
