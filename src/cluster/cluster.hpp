// The simulated cluster and its PM2-like communication layer.
//
// PM2's communication subsystem exposes RPCs: "message handlers being
// asynchronously invoked on the receiving end" (paper, Table 1). We model
// exactly that: a node registers handlers for service ids; send() delivers a
// payload after the network delay; handlers run as event-driven state
// machines on the receiving node and may answer request/reply invocations
// with reply(). call() gives the Hyperion runtime the blocking LRPC shape it
// is built from.
//
// Timing model:
//   departure  = now + send_overhead                 (sender NIC/stack)
//   arrival    = departure + latency + bytes/bandwidth
//   exec start = max(arrival, node service queue free) + recv_overhead
// The per-node FIFO service queue makes hot homes a contention point, which
// the paper's Barnes discussion depends on. Handlers must not block; they
// queue state and reply later instead (see hyperion/monitor.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/params.hpp"
#include "cluster/trace.hpp"
#include "common/buffer.hpp"
#include "common/stats.hpp"
#include "obs/phase.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace hyp::cluster {

using ServiceId = int;

class Cluster;
struct HaHooks;
struct RaceHooks;

// An incoming RPC invocation as seen by a handler.
struct Incoming {
  NodeId from = -1;
  NodeId to = -1;
  BufferReader reader;        // positioned at the start of the payload
  std::uint64_t reply_token;  // 0 for one-way sends
};

using Handler = std::function<void(Incoming&)>;

// --- typed RPC failure (docs/FAULTS.md) -------------------------------------
//
// On a lossless network (FaultProfile off) RPCs cannot fail and call() keeps
// its historical always-succeeds contract. Under an active fault profile a
// blocking call can fail in bounded, *typed* ways instead of hanging the
// fiber or tripping the engine's generic deadlock abort.
enum class RpcStatus : std::uint8_t {
  kOk = 0,
  kBudgetExhausted,  // request packet unacked after max_retries retransmits
  kTimeout,          // FaultProfile::call_timeout elapsed without a reply
  kNoQuorum,         // the peer sits across an open partition window; the
                     // caller should park and retry at the heal instant
                     // (docs/PARTITIONS.md)
};

const char* rpc_status_name(RpcStatus s);

struct RpcError {
  RpcStatus status = RpcStatus::kOk;
  NodeId from = -1;
  NodeId to = -1;
  ServiceId service = -1;
  std::uint32_t retransmits = 0;  // transport attempts burned on the request
  Time waited = 0;                // virtual time from call start to failure
  std::string message;            // human diagnostic naming node + service

  bool ok() const { return status == RpcStatus::kOk; }
};

// Result of a non-aborting blocking call. `error` is meaningful iff !ok().
struct RpcResult {
  RpcStatus status = RpcStatus::kOk;
  Buffer payload;
  RpcError error;

  bool ok() const { return status == RpcStatus::kOk; }
};

// One machine of the cluster.
class Node {
 public:
  Node(Cluster* cluster, NodeId id);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  Cluster& cluster() { return *cluster_; }

  // Registers the handler for `service` on this node. One handler per id.
  // The named overload also records a cluster-wide human label for the id,
  // used by RPC failure diagnostics ("monitor_enter" beats "service 20").
  void register_service(ServiceId service, Handler handler);
  void register_service(ServiceId service, const char* name, Handler handler);

  // Extends the current service occupancy (e.g. a page-copy memcpy performed
  // by the DSM server). Returns the time at which the extended service ends;
  // replies that depend on that work should be sent with that delay.
  Time extend_service(TimeDelta duration);

  sim::FifoServer& service_queue() { return service_; }
  // The node's application CPU: threads of one node serialize their compute
  // through this (one processor per node, as on the paper's testbeds), which
  // is what makes the >1-thread-per-node extension study meaningful —
  // extra threads can only overlap *communication*, not computation.
  sim::FifoServer& app_cpu() { return app_cpu_; }
  Stats& stats() { return stats_; }

 private:
  friend class Cluster;
  Cluster* cluster_;
  NodeId id_;
  sim::FifoServer service_;
  sim::FifoServer app_cpu_;
  // Flat table indexed by service id (ids are small dense constants); an
  // empty Handler slot means "not registered". Dispatch is one bounds check
  // and one indexed load instead of a std::map walk per message.
  std::vector<Handler> handlers_;
  Stats stats_;
};

// Charges CPU time to the calling fiber, batched: hot paths accumulate into
// a counter and flush() converts the total into one virtual-time sleep at
// the next synchronization or communication point. Exact for data-race-free
// programs (the only ones the Java Memory Model gives determinate answers
// for anyway).
class CpuClock {
 public:
  explicit CpuClock(const CpuParams* cpu) : cpu_(cpu) {}

  void charge(Time t) { pending_ += t; }
  // Application compute: subject to the sub-linear clock scaling. App loops
  // charge the same constant cycle count once per element, so the
  // cycles->time conversion (double multiply + divide in app_cycles) is
  // memoized on the last argument; app_cycles is a pure function of n, so
  // the cached value is exactly what the call would have produced.
  void charge_cycles(std::uint64_t n) {
    if (n != memo_cycles_) {
      memo_cycles_ = n;
      memo_time_ = cpu_->app_cycles(n);
    }
    pending_ += memo_time_;
  }

  // Binds the clock to a node CPU: flushes then contend for the processor
  // FIFO instead of advancing free-running (multiple threads per node).
  void bind_cpu(sim::FifoServer* cpu_server) { cpu_server_ = cpu_server; }

  void flush() {
    if (pending_ == 0) return;
    total_ += pending_;
    if (cpu_server_ == nullptr) {
      sim::Engine::current()->sleep_for(pending_);
      pending_ = 0;
      return;
    }
    // Present the batch to the node CPU in timeslice quanta so co-resident
    // threads interleave as they would under a preemptive scheduler.
    const Time quantum = cpu_->timeslice > 0 ? cpu_->timeslice : pending_;
    while (pending_ != 0) {
      const Time slice = pending_ < quantum ? pending_ : quantum;
      pending_ -= slice;
      cpu_server_->serve(slice);
    }
  }

  Time pending() const { return pending_; }
  Time total_charged() const { return total_; }
  const CpuParams& cpu() const { return *cpu_; }

 private:
  const CpuParams* cpu_;
  sim::FifoServer* cpu_server_ = nullptr;
  Time pending_ = 0;
  Time total_ = 0;
  // charge_cycles memo (app_cycles(0) == 0, so the zero init is consistent).
  std::uint64_t memo_cycles_ = 0;
  Time memo_time_ = 0;
};

class Cluster {
 public:
  // `nodes` <= 0 selects the preset's paper-figure size.
  explicit Cluster(ClusterParams params, int nodes = 0);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  Node& node(NodeId id);
  const ClusterParams& params() const { return params_; }
  sim::Engine& engine() { return engine_; }

  // One-way asynchronous RPC (PM2 "RPC with no waiting").
  void send(NodeId from, NodeId to, ServiceId service, Buffer payload);

  // As send(), but the message departs `depart_delay` after now — used by
  // handlers whose reply depends on service work they just reserved.
  void send_after(TimeDelta depart_delay, NodeId from, NodeId to, ServiceId service,
                  Buffer payload);

  // Blocking request/reply (PM2 LRPC). Must be called from a fiber; the
  // fiber sleeps in virtual time until the reply arrives. Under an active
  // lossy fault profile a failed call (retry budget exhausted / deadline)
  // aborts with a diagnostic naming the peer node and service; callers that
  // can degrade gracefully use call_result() instead.
  Buffer call(NodeId from, NodeId to, ServiceId service, Buffer payload);

  // As call(), but failures come back as a typed RpcError instead of
  // aborting. On a lossless network this is exactly call() (it cannot fail,
  // and compiles to the same event sequence — the determinism goldens hold).
  RpcResult call_result(NodeId from, NodeId to, ServiceId service, Buffer payload);

  // Human label for a service id ("page_request", or "service 17" when the
  // registrant did not name it).
  std::string service_label(ServiceId service) const;

  // True when the configured fault profile engages the reliable transport.
  bool transport_active() const { return lossy_; }

  // --- event-queue sharding (docs/SCALING.md) ------------------------------
  // At/above this node count the constructor splits the engine's event queue
  // into one shard per node and pins each node's handler executions, thread
  // fibers and arrival events to its shard. Purely an executor-layout choice:
  // the (at, seq) pop order — and therefore every golden — is bit-identical
  // with or without sharding; small clusters keep the flat single-heap path.
  static constexpr int kShardNodeThreshold = 64;
  bool sharded() const { return sharded_; }
  std::uint32_t node_shard(NodeId id) const {
    return sharded_ ? static_cast<std::uint32_t>(id) : 0;
  }

  // --- high availability (optional; nullptr = off, docs/RECOVERY.md) -------
  // With hooks installed the transport (1) holds a crashed node's outbound
  // transmissions until its restart, (2) gives up fast on packets addressed
  // to a confirmed-dead node, (3) discards rather than panics on one-way
  // sends to a confirmed-dead node, and (4) permits loopback RPCs (after a
  // promotion a node may be its own home and retried ops must still flow
  // through the handler-side dedup).
  void set_ha_hooks(HaHooks* ha) { ha_ = ha; }
  HaHooks* ha_hooks() { return ha_; }
  // Heat-driven home migration (hybrid protocol) can make a node its own
  // home mid-call, exactly like an HA promotion — the reroute then needs the
  // same loopback allowance even with no HA manager installed.
  void allow_loopback() { loopback_ok_ = true; }
  // Fails over in-flight traffic around a confirmed-dead node: every
  // outstanding packet addressed to it gives up now (typed errors reach the
  // parked callers, which re-route), and every reply packet it still owed
  // fails its caller likewise. The dead node's own outstanding *requests*
  // stay queued — they ride the outbound hold until its restart.
  void ha_fail_traffic_to(NodeId dead);

  // Sends the reply for `incoming.reply_token`; `depart_delay` delays the
  // departure (e.g. until reserved service work completes).
  void reply(const Incoming& incoming, Buffer payload, TimeDelta depart_delay = 0);

  // As reply(), for handlers that stored the caller's coordinates and answer
  // long after the Incoming is gone (e.g. a monitor granting a queued enter).
  void reply_to(NodeId replier, NodeId requester, std::uint64_t reply_token, Buffer payload,
                TimeDelta depart_delay = 0);

  // Runs `body` as a fiber logically placed on node `on`; PM2 remote thread
  // creation. Returns the fiber for joining.
  sim::Fiber* spawn_thread(NodeId on, std::string name, UniqueFunction<void()> body);

  // Drives the simulation to quiescence; aborts on deadlocked fibers.
  void run();

  // Aggregated statistics over all nodes.
  Stats total_stats() const;

  // --- protocol event tracing (optional; nullptr = off) --------------------
  void set_trace(TraceLog* trace) { trace_ = trace; }
  TraceLog* trace() { return trace_; }
  void trace_event(NodeId node, TraceKind kind, std::int64_t a = 0, std::int64_t b = 0) {
    if (trace_ != nullptr) [[unlikely]] {
      trace_->record(engine_.now(), node, kind, a, b);
    }
  }

  // --- race-detector message hook (optional; nullptr = off) ----------------
  // Same attachment discipline as tracing: one pointer test when detached;
  // an installed hook only accumulates (cluster/race_hooks.hpp), so the
  // event sequence and every golden are unchanged either way.
  void set_race_hooks(RaceHooks* race) { race_ = race; }
  RaceHooks* race_hooks() { return race_; }

  // --- phase accounting (optional; nullptr = off) ---------------------------
  // Same attachment discipline as tracing: a nullptr pointer costs one test
  // on the hook path, and an attached table only *accumulates* (obs/phase.hpp)
  // so virtual time is unperturbed either way.
  void set_phases(obs::PhaseAccounting* phases) { phases_ = phases; }
  obs::PhaseAccounting* phases() { return phases_; }
  void phase_add(NodeId node, obs::Phase phase, TimeDelta dt) {
    if (phases_ != nullptr) [[unlikely]] {
      phases_->add(node, phase, dt);
    }
  }

 private:
  struct PendingReply {
    sim::Fiber* waiter = nullptr;
    Buffer payload;
    bool done = false;
  };

  // Computes arrival and schedules handler execution.
  void deliver(TimeDelta depart_delay, NodeId from, NodeId to, ServiceId service, Buffer payload,
               std::uint64_t reply_token);
  void deliver_reply(TimeDelta depart_delay, NodeId from, NodeId to, std::uint64_t token,
                     Buffer payload);

  // --- reliable transport (engaged only when the fault profile is lossy) ---
  //
  // Beneath send()/call(), every logical message becomes a transport packet
  // with a per-(src,dst) sequence number. The sender keeps the payload until
  // the receiver's ack arrives, retransmitting on a timer with exponential
  // backoff up to FaultProfile::max_retries; the receiver suppresses
  // duplicates with a per-pair watermark + sparse-set window and re-acks
  // them (the original ack may itself have been lost). Quiet networks never
  // reach this code: deliver()/deliver_reply() keep the historical
  // one-event-per-message path, bit-identical to the goldens.
  struct PendingCall {
    sim::Fiber* waiter = nullptr;
    Buffer payload;
    bool done = false;
    RpcError error;  // status != kOk on failure
    // Identity + request-packet coordinates, for deadlines and diagnostics.
    NodeId from = -1;
    NodeId to = -1;
    ServiceId service = -1;
    Time started = 0;
    std::uint64_t req_seq = 0;  // request packet seq in pair (from,to)
  };

  struct TxPacket {
    NodeId from = -1;
    NodeId to = -1;
    ServiceId service = -1;        // -1 for reply packets
    std::uint64_t token = 0;       // call token (request) / reply token (reply)
    bool is_reply = false;
    Buffer payload;                // retained for retransmission
    std::uint64_t seq = 0;         // per-(from,to) sequence number
    std::uint32_t retransmits = 0;
    Time first_sent = 0;
    Time rto = 0;                  // current retransmit timeout
  };

  struct PairState {
    NodeId from = -1;  // identity (the sparse store iterates slots)
    NodeId to = -1;
    std::uint64_t next_seq = 0;  // sender side
    // seq -> packet, ordered (deterministic iteration for diagnostics).
    std::map<std::uint64_t, TxPacket> outstanding;
    // Receiver-side dedup window: everything below the watermark has been
    // delivered; sparse seqs at/above it live in the ordered set.
    std::uint64_t seen_watermark = 0;
    std::set<std::uint64_t> seen_above;
  };

  // Sparse pair-state lookup: creates the (from,to) entry on first use.
  // pair_find() never creates (recovery paths probing both directions).
  PairState& pair(NodeId from, NodeId to);
  PairState* pair_find(NodeId from, NodeId to);
  void pair_rehash(std::size_t new_size);
  static std::uint64_t pair_packed(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }
  // Enqueues a packet on the reliable transport and transmits it. Returns the
  // per-pair sequence number assigned (callers needing cancellation keep it).
  std::uint64_t tx_enqueue(TimeDelta depart_delay, NodeId from, NodeId to, ServiceId service,
                           std::uint64_t token, bool is_reply, Buffer payload);
  // One physical transmission attempt (first send and retransmits).
  void tx_transmit(NodeId from, NodeId to, std::uint64_t seq, TimeDelta depart_delay);
  void tx_schedule_arrival(const TxPacket& p, Time arrival, bool injected_dup);
  void tx_on_arrival(NodeId from, NodeId to, ServiceId service, std::uint64_t token,
                     bool is_reply, Buffer payload, std::uint64_t seq);
  void tx_send_ack(NodeId from, NodeId to, std::uint64_t seq);
  void tx_on_ack(NodeId from, NodeId to, std::uint64_t seq);
  void tx_on_timer(NodeId from, NodeId to, std::uint64_t seq);
  void tx_give_up(TxPacket packet, bool no_quorum = false);
  void complete_call(std::uint64_t token, Buffer payload);
  void fail_call(PendingCall& call, std::uint64_t token, RpcStatus status,
                 std::uint32_t retransmits);
  RpcError make_error(RpcStatus status, NodeId from, NodeId to, ServiceId service,
                      std::uint32_t retransmits, Time waited) const;
  void record_service_name(ServiceId service, const char* name);
  friend class Node;

  ClusterParams params_;
  sim::Engine engine_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Call/reply matching: token = slot index + 1 into reply_slots_; freed
  // indices recycle through reply_free_, so steady-state call() never
  // allocates. Safe because the protocol delivers exactly one reply per call
  // and the slot is only freed after that reply has been consumed.
  std::vector<PendingReply*> reply_slots_;
  std::vector<std::uint32_t> reply_free_;
  std::uint64_t message_seq_ = 0;  // drives deterministic jitter
  TraceLog* trace_ = nullptr;
  obs::PhaseAccounting* phases_ = nullptr;
  HaHooks* ha_ = nullptr;
  RaceHooks* race_ = nullptr;
  bool loopback_ok_ = false;  // see allow_loopback()

  bool sharded_ = false;  // event queue split one-shard-per-node

  // Reliable-transport state (empty/idle unless lossy_).
  //
  // The pair store is sparse: slots are created on first communication, in
  // creation order — that vector doubles as the occupancy index (exactly the
  // pairs that have ever carried traffic), and an open-addressing table maps
  // packed (from,to) to its slot. Memory is linear in communicating pairs,
  // not quadratic in the node count; PairState references stay stable across
  // insertions because slots are unique_ptrs.
  bool lossy_ = false;
  std::vector<std::unique_ptr<PairState>> pair_slots_;  // creation order
  std::vector<std::uint32_t> pair_table_;  // open addressing: slot+1, 0 empty
  // Lossy-mode call matching: monotonically increasing tokens are never
  // recycled, so a reply that limps in after its call failed can only miss
  // the map (and be suppressed) — it can never corrupt an unrelated call.
  std::uint64_t next_call_token_ = 1;
  std::map<std::uint64_t, PendingCall*> pending_calls_;
  std::vector<std::string> service_names_;  // [service id] -> label ("" = unnamed)
};

}  // namespace hyp::cluster
