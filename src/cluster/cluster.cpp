#include "cluster/cluster.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace hyp::cluster {

// ---------------------------------------------------------------------------
// Node

Node::Node(Cluster* cluster, NodeId id)
    : cluster_(cluster), id_(id), service_(&cluster->engine()), app_cpu_(&cluster->engine()) {}

void Node::register_service(ServiceId service, Handler handler) {
  HYP_CHECK_MSG(service >= 0, "service ids must be non-negative");
  const auto idx = static_cast<std::size_t>(service);
  if (idx >= handlers_.size()) handlers_.resize(idx + 1);
  HYP_CHECK_MSG(!handlers_[idx], "service already registered on this node");
  handlers_[idx] = std::move(handler);
}

Time Node::extend_service(TimeDelta duration) {
  service_.reserve(duration);
  return service_.free_at();
}

// ---------------------------------------------------------------------------
// Cluster

Cluster::Cluster(ClusterParams params, int nodes) : params_(std::move(params)) {
  const int n = nodes > 0 ? nodes : params_.default_nodes;
  HYP_CHECK_MSG(n > 0, "cluster must have at least one node");
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(this, i));
  }
}

Node& Cluster::node(NodeId id) {
  HYP_CHECK_MSG(id >= 0 && id < node_count(), "node id out of range");
  return *nodes_[static_cast<std::size_t>(id)];
}

void Cluster::send(NodeId from, NodeId to, ServiceId service, Buffer payload) {
  deliver(0, from, to, service, std::move(payload), /*reply_token=*/0);
}

void Cluster::send_after(TimeDelta depart_delay, NodeId from, NodeId to, ServiceId service,
                         Buffer payload) {
  deliver(depart_delay, from, to, service, std::move(payload), /*reply_token=*/0);
}

Buffer Cluster::call(NodeId from, NodeId to, ServiceId service, Buffer payload) {
  sim::Engine* eng = &engine_;
  HYP_CHECK_MSG(eng->in_fiber(), "Cluster::call must run on a fiber");
  PendingReply slot;
  slot.waiter = eng->current_fiber();
  // Recycle a reply slot index; the token is index+1 so 0 stays "one-way".
  std::uint32_t idx;
  if (!reply_free_.empty()) {
    idx = reply_free_.back();
    reply_free_.pop_back();
    reply_slots_[idx] = &slot;
  } else {
    idx = static_cast<std::uint32_t>(reply_slots_.size());
    reply_slots_.push_back(&slot);
  }
  deliver(0, from, to, service, std::move(payload), idx + 1);
  while (!slot.done) eng->park();
  reply_slots_[idx] = nullptr;
  reply_free_.push_back(idx);
  return std::move(slot.payload);
}

void Cluster::reply(const Incoming& incoming, Buffer payload, TimeDelta depart_delay) {
  HYP_CHECK_MSG(incoming.reply_token != 0, "reply() to a one-way message");
  deliver_reply(depart_delay, incoming.to, incoming.from, incoming.reply_token,
                std::move(payload));
}

void Cluster::reply_to(NodeId replier, NodeId requester, std::uint64_t reply_token,
                       Buffer payload, TimeDelta depart_delay) {
  HYP_CHECK_MSG(reply_token != 0, "reply_to() needs a call token");
  deliver_reply(depart_delay, replier, requester, reply_token, std::move(payload));
}

void Cluster::deliver(TimeDelta depart_delay, NodeId from, NodeId to, ServiceId service,
                      Buffer payload, std::uint64_t reply_token) {
  Node& src = node(from);
  Node& dst = node(to);
  HYP_CHECK_MSG(from != to, "loopback RPC: callers handle the local case directly");

  src.stats().add(Counter::kMessages);
  src.stats().add(Counter::kMessageBytes, payload.size());

  const std::uint64_t msg_seq = message_seq_++;
  const Time depart = engine_.now() + depart_delay + params_.net.send_overhead;
  const Time arrival =
      depart + params_.net.wire_time(payload.size()) + params_.net.jitter_for(msg_seq);

  engine_.post(arrival, [this, &dst, from, to, service, reply_token,
                         moved = std::move(payload)]() mutable {
    // Arrived: contend for the receiving node's service queue.
    const Time begin = dst.service_queue().reserve(params_.net.recv_overhead);
    const Time exec_at = begin + params_.net.recv_overhead;
    engine_.post(exec_at, [this, &dst, from, to, service, reply_token,
                           payload2 = std::move(moved)]() mutable {
      const auto idx = static_cast<std::size_t>(service);
      HYP_CHECK_MSG(idx < dst.handlers_.size() && dst.handlers_[idx],
                    "no handler for service " + std::to_string(service) + " on node " +
                        std::to_string(to));
      Incoming incoming{from, to, BufferReader(payload2), reply_token};
      dst.handlers_[idx](incoming);
    });
  });
}

void Cluster::deliver_reply(TimeDelta depart_delay, NodeId from, NodeId to, std::uint64_t token,
                            Buffer payload) {
  Node& src = node(from);
  src.stats().add(Counter::kMessages);
  src.stats().add(Counter::kMessageBytes, payload.size());

  const std::uint64_t msg_seq = message_seq_++;
  const Time depart = engine_.now() + depart_delay + params_.net.send_overhead;
  // Replies bypass the receiver's service queue: the destination fiber is
  // blocked waiting, so only dispatch overhead applies.
  const Time wakeup = depart + params_.net.wire_time(payload.size()) +
                      params_.net.recv_overhead + params_.net.jitter_for(msg_seq);

  engine_.post(wakeup, [this, token, moved = std::move(payload)]() mutable {
    HYP_CHECK_MSG(token >= 1 && token <= reply_slots_.size(),
                  "reply for unknown or completed call");
    PendingReply* slot = reply_slots_[token - 1];
    HYP_CHECK_MSG(slot != nullptr, "reply for unknown or completed call");
    slot->payload = std::move(moved);
    slot->done = true;
    engine_.unpark(slot->waiter);
  });
}

sim::Fiber* Cluster::spawn_thread(NodeId on, std::string name, UniqueFunction<void()> body) {
  Node& target = node(on);
  target.stats().add(Counter::kRemoteThreadSpawns);
  return engine_.spawn(std::move(name), std::move(body));
}

void Cluster::run() {
  auto stuck = engine_.run();
  if (!stuck.empty()) {
    std::string names;
    for (const auto& n : stuck) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    HYP_PANIC("cluster simulation deadlocked; blocked fibers: " + names);
  }
}

Stats Cluster::total_stats() const {
  Stats total;
  for (const auto& n : nodes_) total.merge(n->stats_);
  return total;
}

}  // namespace hyp::cluster
