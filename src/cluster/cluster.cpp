#include "cluster/cluster.hpp"

#include <algorithm>
#include <utility>

#include "cluster/ha_hooks.hpp"
#include "cluster/race_hooks.hpp"
#include "common/assert.hpp"
#include "common/log.hpp"

namespace hyp::cluster {

namespace {

// Buffers are move-only (pooled backings); the reliable transport retains the
// payload for retransmission and ships copies onto the wire.
Buffer clone_buffer(const Buffer& b) {
  Buffer out(b.size());
  out.put_bytes(b.data(), b.size());
  return out;
}

}  // namespace

const char* rpc_status_name(RpcStatus s) {
  switch (s) {
    case RpcStatus::kOk: return "ok";
    case RpcStatus::kBudgetExhausted: return "budget_exhausted";
    case RpcStatus::kTimeout: return "timeout";
    case RpcStatus::kNoQuorum: return "no_quorum";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Node

Node::Node(Cluster* cluster, NodeId id)
    : cluster_(cluster), id_(id), service_(&cluster->engine()), app_cpu_(&cluster->engine()) {}

void Node::register_service(ServiceId service, Handler handler) {
  HYP_CHECK_MSG(service >= 0, "service ids must be non-negative");
  const auto idx = static_cast<std::size_t>(service);
  if (idx >= handlers_.size()) handlers_.resize(idx + 1);
  HYP_CHECK_MSG(!handlers_[idx], "service already registered on this node");
  handlers_[idx] = std::move(handler);
}

void Node::register_service(ServiceId service, const char* name, Handler handler) {
  register_service(service, std::move(handler));
  cluster_->record_service_name(service, name);
}

Time Node::extend_service(TimeDelta duration) {
  service_.reserve(duration);
  return service_.free_at();
}

// ---------------------------------------------------------------------------
// Cluster

Cluster::Cluster(ClusterParams params, int nodes) : params_(std::move(params)) {
  const int n = nodes > 0 ? nodes : params_.default_nodes;
  HYP_CHECK_MSG(n > 0, "cluster must have at least one node");
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(this, i));
  }
  // Fold the legacy NetworkParams::jitter_max alias into the fault profile:
  // all network perturbation lives behind one seeded interface now.
  if (params_.fault.reorder_max == 0) params_.fault.reorder_max = params_.net.jitter_max;
  lossy_ = params_.fault.lossy();
  // Big clusters shard the event queue per node (no events exist yet — the
  // engine was just constructed, so configure_shards' precondition holds).
  sharded_ = n >= kShardNodeThreshold;
  if (sharded_) engine_.configure_shards(static_cast<std::uint32_t>(n));
}

// ---------------------------------------------------------------------------
// Sparse pair-state store (reliable transport; see the header comment).

namespace {
std::size_t pair_hash(std::uint64_t k) {
  // splitmix64 finalizer: full-avalanche mix of the packed (from,to) key.
  k ^= k >> 30;
  k *= 0xbf58476d1ce4e5b9ull;
  k ^= k >> 27;
  k *= 0x94d049bb133111ebull;
  k ^= k >> 31;
  return static_cast<std::size_t>(k);
}
}  // namespace

Cluster::PairState& Cluster::pair(NodeId from, NodeId to) {
  if (pair_table_.empty()) pair_rehash(16);
  const std::uint64_t key = pair_packed(from, to);
  const std::size_t mask = pair_table_.size() - 1;
  std::size_t i = pair_hash(key) & mask;
  while (true) {
    const std::uint32_t slot = pair_table_[i];
    if (slot == 0) break;
    PairState& ps = *pair_slots_[slot - 1];
    if (ps.from == from && ps.to == to) return ps;
    i = (i + 1) & mask;
  }
  auto created = std::make_unique<PairState>();
  created->from = from;
  created->to = to;
  pair_slots_.push_back(std::move(created));
  pair_table_[i] = static_cast<std::uint32_t>(pair_slots_.size());
  if (pair_slots_.size() * 10 >= pair_table_.size() * 7) {
    pair_rehash(pair_table_.size() * 2);  // keep the load factor under 0.7
  }
  return *pair_slots_.back();
}

Cluster::PairState* Cluster::pair_find(NodeId from, NodeId to) {
  if (pair_table_.empty()) return nullptr;
  const std::uint64_t key = pair_packed(from, to);
  const std::size_t mask = pair_table_.size() - 1;
  std::size_t i = pair_hash(key) & mask;
  while (true) {
    const std::uint32_t slot = pair_table_[i];
    if (slot == 0) return nullptr;
    PairState& ps = *pair_slots_[slot - 1];
    if (ps.from == from && ps.to == to) return &ps;
    i = (i + 1) & mask;
  }
}

void Cluster::pair_rehash(std::size_t new_size) {
  pair_table_.assign(new_size, 0);
  const std::size_t mask = new_size - 1;
  for (std::size_t s = 0; s < pair_slots_.size(); ++s) {
    std::size_t i = pair_hash(pair_packed(pair_slots_[s]->from, pair_slots_[s]->to)) & mask;
    while (pair_table_[i] != 0) i = (i + 1) & mask;
    pair_table_[i] = static_cast<std::uint32_t>(s + 1);
  }
}

void Cluster::record_service_name(ServiceId service, const char* name) {
  const auto idx = static_cast<std::size_t>(service);
  if (idx >= service_names_.size()) service_names_.resize(idx + 1);
  if (service_names_[idx].empty()) service_names_[idx] = name;
}

std::string Cluster::service_label(ServiceId service) const {
  const auto idx = static_cast<std::size_t>(service);
  if (service >= 0 && idx < service_names_.size() && !service_names_[idx].empty()) {
    return service_names_[idx];
  }
  return "service " + std::to_string(service);
}

Node& Cluster::node(NodeId id) {
  HYP_CHECK_MSG(id >= 0 && id < node_count(), "node id out of range");
  return *nodes_[static_cast<std::size_t>(id)];
}

void Cluster::send(NodeId from, NodeId to, ServiceId service, Buffer payload) {
  deliver(0, from, to, service, std::move(payload), /*reply_token=*/0);
}

void Cluster::send_after(TimeDelta depart_delay, NodeId from, NodeId to, ServiceId service,
                         Buffer payload) {
  deliver(depart_delay, from, to, service, std::move(payload), /*reply_token=*/0);
}

Buffer Cluster::call(NodeId from, NodeId to, ServiceId service, Buffer payload) {
  RpcResult result = call_result(from, to, service, std::move(payload));
  if (!result.ok()) HYP_PANIC(result.error.message);
  return std::move(result.payload);
}

RpcResult Cluster::call_result(NodeId from, NodeId to, ServiceId service, Buffer payload) {
  sim::Engine* eng = &engine_;
  HYP_CHECK_MSG(eng->in_fiber(), "Cluster::call must run on a fiber");

  if (!lossy_) {
    // Historical lossless path, preserved event-for-event: recycled reply
    // slots, no transport state, cannot fail (the determinism goldens pin
    // this exact event sequence).
    PendingReply slot;
    slot.waiter = eng->current_fiber();
    // Recycle a reply slot index; the token is index+1 so 0 stays "one-way".
    std::uint32_t idx;
    if (!reply_free_.empty()) {
      idx = reply_free_.back();
      reply_free_.pop_back();
      reply_slots_[idx] = &slot;
    } else {
      idx = static_cast<std::uint32_t>(reply_slots_.size());
      reply_slots_.push_back(&slot);
    }
    deliver(0, from, to, service, std::move(payload), idx + 1);
    while (!slot.done) eng->park();
    reply_slots_[idx] = nullptr;
    reply_free_.push_back(idx);
    RpcResult out;
    out.payload = std::move(slot.payload);
    return out;
  }

  // Lossy path: monotonically increasing tokens are never recycled, so a
  // reply that limps in after its call has failed can only miss the map.
  PendingCall pc;
  pc.waiter = eng->current_fiber();
  pc.from = from;
  pc.to = to;
  pc.service = service;
  pc.started = engine_.now();
  const std::uint64_t token = next_call_token_++;
  pending_calls_[token] = &pc;
  pc.req_seq = tx_enqueue(0, from, to, service, token, /*is_reply=*/false, std::move(payload));

  if (params_.fault.call_timeout > 0) {
    engine_.post_on(node_shard(from), pc.started + params_.fault.call_timeout, [this, token]() {
      auto it = pending_calls_.find(token);
      if (it == pending_calls_.end() || it->second->done) return;
      PendingCall& timed_out = *it->second;
      // Cancel the request packet so its retransmit timers become no-ops.
      PairState& ps = pair(timed_out.from, timed_out.to);
      std::uint32_t retransmits = 0;
      auto pit = ps.outstanding.find(timed_out.req_seq);
      if (pit != ps.outstanding.end()) {
        retransmits = pit->second.retransmits;
        ps.outstanding.erase(pit);
      }
      fail_call(timed_out, token, RpcStatus::kTimeout, retransmits);
    });
  }

  while (!pc.done) eng->park();
  pending_calls_.erase(token);

  RpcResult out;
  out.status = pc.error.status;
  if (pc.error.ok()) {
    out.payload = std::move(pc.payload);
  } else {
    out.error = std::move(pc.error);
  }
  return out;
}

void Cluster::reply(const Incoming& incoming, Buffer payload, TimeDelta depart_delay) {
  HYP_CHECK_MSG(incoming.reply_token != 0, "reply() to a one-way message");
  deliver_reply(depart_delay, incoming.to, incoming.from, incoming.reply_token,
                std::move(payload));
}

void Cluster::reply_to(NodeId replier, NodeId requester, std::uint64_t reply_token,
                       Buffer payload, TimeDelta depart_delay) {
  HYP_CHECK_MSG(reply_token != 0, "reply_to() needs a call token");
  deliver_reply(depart_delay, replier, requester, reply_token, std::move(payload));
}

void Cluster::deliver(TimeDelta depart_delay, NodeId from, NodeId to, ServiceId service,
                      Buffer payload, std::uint64_t reply_token) {
  Node& src = node(from);
  Node& dst = node(to);
  // Loopback is normally a protocol bug (callers short-circuit the local
  // case), but after an HA promotion or a heat-driven home migration a node
  // can be its own home and a retried op must still flow through the
  // handler-side dedup — so it is allowed, through the transport, when
  // either machinery is active.
  HYP_CHECK_MSG(from != to || ha_ != nullptr || loopback_ok_,
                "loopback RPC: callers handle the local case directly");

  if (race_ != nullptr) [[unlikely]] race_->on_message(from, to, service, payload.size());

  if (lossy_) {
    tx_enqueue(depart_delay, from, to, service, reply_token, /*is_reply=*/false,
               std::move(payload));
    return;
  }

  src.stats().add(Counter::kMessages);
  src.stats().add(Counter::kMessageBytes, payload.size());

  const std::uint64_t msg_seq = message_seq_++;
  const Time depart = engine_.now() + depart_delay + params_.net.send_overhead;
  const Time arrival =
      depart + params_.net.wire_time(payload.size()) + params_.fault.extra_delay(msg_seq);

  // Arrival and execution belong to the destination node: route them to its
  // queue shard (the nested exec post inherits it via active_shard_).
  engine_.post_on(node_shard(to), arrival, [this, &dst, from, to, service, reply_token,
                                            moved = std::move(payload)]() mutable {
    // Arrived: contend for the receiving node's service queue.
    const Time begin = dst.service_queue().reserve(params_.net.recv_overhead);
    const Time exec_at = begin + params_.net.recv_overhead;
    engine_.post(exec_at, [this, &dst, from, to, service, reply_token,
                           payload2 = std::move(moved)]() mutable {
      const auto idx = static_cast<std::size_t>(service);
      HYP_CHECK_MSG(idx < dst.handlers_.size() && dst.handlers_[idx],
                    "no handler for service " + std::to_string(service) + " on node " +
                        std::to_string(to));
      Incoming incoming{from, to, BufferReader(payload2), reply_token};
      dst.handlers_[idx](incoming);
    });
  });
}

void Cluster::deliver_reply(TimeDelta depart_delay, NodeId from, NodeId to, std::uint64_t token,
                            Buffer payload) {
  if (race_ != nullptr) [[unlikely]] race_->on_message(from, to, /*service=*/-1, payload.size());
  if (lossy_) {
    tx_enqueue(depart_delay, from, to, /*service=*/-1, token, /*is_reply=*/true,
               std::move(payload));
    return;
  }

  Node& src = node(from);
  src.stats().add(Counter::kMessages);
  src.stats().add(Counter::kMessageBytes, payload.size());

  const std::uint64_t msg_seq = message_seq_++;
  const Time depart = engine_.now() + depart_delay + params_.net.send_overhead;
  // Replies bypass the receiver's service queue: the destination fiber is
  // blocked waiting, so only dispatch overhead applies.
  const Time wakeup = depart + params_.net.wire_time(payload.size()) +
                      params_.net.recv_overhead + params_.fault.extra_delay(msg_seq);

  engine_.post_on(node_shard(to), wakeup, [this, token, moved = std::move(payload)]() mutable {
    HYP_CHECK_MSG(token >= 1 && token <= reply_slots_.size(),
                  "reply for unknown or completed call");
    PendingReply* slot = reply_slots_[token - 1];
    HYP_CHECK_MSG(slot != nullptr, "reply for unknown or completed call");
    slot->payload = std::move(moved);
    slot->done = true;
    engine_.unpark(slot->waiter);
  });
}

// ---------------------------------------------------------------------------
// Reliable transport (docs/FAULTS.md). Only reached when lossy_.

std::uint64_t Cluster::tx_enqueue(TimeDelta depart_delay, NodeId from, NodeId to,
                                  ServiceId service, std::uint64_t token, bool is_reply,
                                  Buffer payload) {
  HYP_CHECK_MSG(from != to || ha_ != nullptr || loopback_ok_,
                "loopback RPC: callers handle the local case directly");
  PairState& ps = pair(from, to);
  const std::uint64_t seq = ps.next_seq++;
  TxPacket p;
  p.from = from;
  p.to = to;
  p.service = service;
  p.token = token;
  p.is_reply = is_reply;
  p.payload = std::move(payload);
  p.seq = seq;
  p.first_sent = engine_.now() + depart_delay;
  p.rto = params_.fault.rto_initial;
  ps.outstanding.emplace(seq, std::move(p));
  tx_transmit(from, to, seq, depart_delay);
  return seq;
}

void Cluster::tx_transmit(NodeId from, NodeId to, std::uint64_t seq, TimeDelta depart_delay) {
  PairState& ps = pair(from, to);
  auto it = ps.outstanding.find(seq);
  if (it == ps.outstanding.end()) return;  // acked or cancelled meanwhile
  TxPacket& p = it->second;

  // A crashed node transmits nothing: its NIC holds every outbound packet
  // until the restart instant (fibers, stacks and queued sends all survive a
  // crash under the thread-checkpoint model — only home authority is lost).
  if (ha_ != nullptr) {
    const Time release = params_.fault.crash_release(from, engine_.now() + depart_delay);
    if (release != 0) {
      engine_.post_on(node_shard(from), release,
                      [this, from, to, seq]() { tx_transmit(from, to, seq, 0); });
      return;
    }
  }

  Node& src = node(from);
  src.stats().add(Counter::kMessages);
  src.stats().add(Counter::kMessageBytes, p.payload.size());

  const FaultProfile& f = params_.fault;
  const std::uint64_t key = FaultProfile::packet_key(from, to, seq, p.retransmits);
  const Time depart = engine_.now() + depart_delay + params_.net.send_overhead;

  // Arm the retransmit timer no matter what the wire does to this attempt:
  // the sender cannot observe drops, only missing acks.
  engine_.post_on(node_shard(from), depart + p.rto,
                  [this, from, to, seq]() { tx_on_timer(from, to, seq); });

  // Corruption is detected by the receiver checksum and counts as a drop.
  // Asymmetric linkdrop rates stack on the symmetric rate with their own
  // decision stream.
  if (f.roll(f.corrupt_ppm, key, FaultProfile::kSaltCorrupt) ||
      f.roll(f.drop_ppm, key, FaultProfile::kSaltDrop) ||
      f.roll(f.linkdrop_ppm(from, to), key, FaultProfile::kSaltLinkDrop)) {
    src.stats().add(Counter::kNetDrops);
    trace_event(from, TraceKind::kNetDrop, to, static_cast<std::int64_t>(seq));
    return;
  }

  const Time base_arrival = depart + params_.net.wire_time(p.payload.size()) + f.extra_delay(key);
  // An open partition window cuts the wire itself: judged at the departure
  // instant (a packet cannot outrun the cut), deterministic by construction.
  if (f.severed(from, to, depart)) {
    src.stats().add(Counter::kNetDrops);
    src.stats().add(Counter::kHaPartitionDrops);
    trace_event(from, TraceKind::kNetDrop, to, static_cast<std::int64_t>(seq));
    return;
  }
  const Time arrival = f.apply_windows(to, base_arrival);
  if (arrival == FaultProfile::kDropped) {
    src.stats().add(Counter::kNetDrops);
    trace_event(from, TraceKind::kNetDrop, to, static_cast<std::int64_t>(seq));
  } else {
    tx_schedule_arrival(p, arrival, /*injected_dup=*/false);
  }

  if (f.roll(f.dup_ppm, key, FaultProfile::kSaltDup)) {
    src.stats().add(Counter::kNetDupes);
    // The duplicate trails the original by a hash-derived gap so the receiver
    // sees genuinely reordered copies, then runs the same window gauntlet.
    const Time window = f.reorder_max > 0 ? f.reorder_max : 10 * kMicrosecond;
    const Time gap = 1 + static_cast<Time>(f.hash(key, FaultProfile::kSaltDupDelay) %
                                           static_cast<std::uint64_t>(window));
    const Time dup_arrival = f.apply_windows(to, base_arrival + gap);
    if (dup_arrival != FaultProfile::kDropped) {
      tx_schedule_arrival(p, dup_arrival, /*injected_dup=*/true);
    }
  }
}

void Cluster::tx_schedule_arrival(const TxPacket& p, Time arrival, bool /*injected_dup*/) {
  // The packet may be acked (erased) before this event fires; ship a copy.
  Buffer copy = clone_buffer(p.payload);
  engine_.post_on(node_shard(p.to), arrival,
                  [this, from = p.from, to = p.to, service = p.service, token = p.token,
                   is_reply = p.is_reply, seq = p.seq, moved = std::move(copy)]() mutable {
                    tx_on_arrival(from, to, service, token, is_reply, std::move(moved), seq);
                  });
}

void Cluster::tx_on_arrival(NodeId from, NodeId to, ServiceId service, std::uint64_t token,
                            bool is_reply, Buffer payload, std::uint64_t seq) {
  Node& dst = node(to);
  PairState& ps = pair(from, to);

  // Receiver-side dedup: everything below the watermark was delivered;
  // sparse seqs at/above it live in the ordered set.
  const bool duplicate = seq < ps.seen_watermark || ps.seen_above.count(seq) != 0;
  if (duplicate) {
    dst.stats().add(Counter::kDupSuppressed);
    trace_event(to, TraceKind::kDupSuppressed, from, static_cast<std::int64_t>(seq));
    // Re-ack: the original ack may be what got lost.
    tx_send_ack(to, from, seq);
    return;
  }
  if (seq == ps.seen_watermark) {
    ++ps.seen_watermark;
    while (!ps.seen_above.empty() && *ps.seen_above.begin() == ps.seen_watermark) {
      ps.seen_above.erase(ps.seen_above.begin());
      ++ps.seen_watermark;
    }
  } else {
    ps.seen_above.insert(seq);
    // Bounded dedup window (`dedupwin=N`): forget the oldest sparse seq once
    // over budget. A forgotten seq can be re-delivered as a fresh message —
    // the op-id / idempotence layers above absorb it (docs/FAULTS.md).
    const std::uint32_t win = params_.fault.dedup_window;
    if (win != 0 && ps.seen_above.size() > win) {
      ps.seen_above.erase(ps.seen_above.begin());
    }
  }
  tx_send_ack(to, from, seq);

  if (is_reply) {
    // Replies bypass the service queue (the caller fiber is parked); only
    // dispatch overhead applies — mirrors the lossless path's shape.
    engine_.post(engine_.now() + params_.net.recv_overhead,
                 [this, token, moved = std::move(payload)]() mutable {
                   complete_call(token, std::move(moved));
                 });
    return;
  }

  // Request: contend for the receiving node's service queue, then dispatch.
  const Time begin = dst.service_queue().reserve(params_.net.recv_overhead);
  const Time exec_at = begin + params_.net.recv_overhead;
  engine_.post(exec_at, [this, &dst, from, to, service, token,
                         payload2 = std::move(payload)]() mutable {
    const auto idx = static_cast<std::size_t>(service);
    HYP_CHECK_MSG(idx < dst.handlers_.size() && dst.handlers_[idx],
                  "no handler for service " + std::to_string(service) + " on node " +
                      std::to_string(to));
    Incoming incoming{from, to, BufferReader(payload2), token};
    dst.handlers_[idx](incoming);
  });
}

void Cluster::tx_send_ack(NodeId from, NodeId to, std::uint64_t seq) {
  // `from` is the ack sender (= the data receiver); the acked data packet
  // travelled (to -> from). Acks are fire-and-forget control packets: they
  // run the same fault gauntlet but are never themselves acked — a lost ack
  // is recovered by the data sender's retransmit.
  Node& src = node(from);
  src.stats().add(Counter::kAcksSent);

  const FaultProfile& f = params_.fault;
  // Keyed off the global message sequence (attempt field tagged) so every
  // ack transmission rolls independently of data packets.
  const std::uint64_t key =
      FaultProfile::packet_key(from, to, message_seq_++, /*attempt=*/0x80000000u);
  if (f.roll(f.corrupt_ppm, key, FaultProfile::kSaltCorrupt) ||
      f.roll(f.drop_ppm, key, FaultProfile::kSaltDrop) ||
      f.roll(f.linkdrop_ppm(from, to), key, FaultProfile::kSaltLinkDrop)) {
    src.stats().add(Counter::kNetDrops);
    trace_event(from, TraceKind::kNetDrop, to, static_cast<std::int64_t>(seq));
    return;
  }
  if (f.severed(from, to, engine_.now())) {
    src.stats().add(Counter::kNetDrops);
    src.stats().add(Counter::kHaPartitionDrops);
    trace_event(from, TraceKind::kNetDrop, to, static_cast<std::int64_t>(seq));
    return;
  }
  Time arrival =
      engine_.now() + params_.net.send_overhead + params_.net.wire_time(0) + f.extra_delay(key);
  arrival = f.apply_windows(to, arrival);
  if (arrival == FaultProfile::kDropped) {
    src.stats().add(Counter::kNetDrops);
    trace_event(from, TraceKind::kNetDrop, to, static_cast<std::int64_t>(seq));
    return;
  }
  // Ack for data direction (to -> from); lands on the data sender's shard.
  engine_.post_on(node_shard(to), arrival, [this, to, from, seq]() { tx_on_ack(to, from, seq); });
}

void Cluster::tx_on_ack(NodeId from, NodeId to, std::uint64_t seq) {
  PairState& ps = pair(from, to);
  auto it = ps.outstanding.find(seq);
  if (it == ps.outstanding.end()) return;  // stale or duplicate ack
  TxPacket& p = it->second;
  if (p.retransmits > 0) {
    const Time waited = engine_.now() - p.first_sent;
    node(from).stats().record(Hist::kRetryLatency, static_cast<std::uint64_t>(waited));
  }
  ps.outstanding.erase(it);
}

void Cluster::tx_on_timer(NodeId from, NodeId to, std::uint64_t seq) {
  PairState& ps = pair(from, to);
  auto it = ps.outstanding.find(seq);
  if (it == ps.outstanding.end()) return;  // acked or cancelled: timer is moot
  TxPacket& p = it->second;
  // Fast give-up: once the failure detector confirmed the destination dead —
  // or an open partition window severs the pair — there is no point burning
  // the rest of the retry budget against it. The severed case surfaces the
  // typed kNoQuorum status so callers park until the heal instant instead of
  // treating the peer as gone.
  const bool cut = ha_ != nullptr && params_.fault.severed(from, to, engine_.now());
  if (cut || p.retransmits >= params_.fault.max_retries ||
      (ha_ != nullptr && ha_->confirmed_dead(to))) {
    TxPacket packet = std::move(p);
    ps.outstanding.erase(it);
    tx_give_up(std::move(packet), /*no_quorum=*/cut);
    return;
  }
  ++p.retransmits;
  p.rto *= params_.fault.rto_backoff;
  node(from).stats().add(Counter::kRetransmits);
  trace_event(from, TraceKind::kRetransmit, to, static_cast<std::int64_t>(seq));
  tx_transmit(from, to, seq, /*depart_delay=*/0);
}

void Cluster::tx_give_up(TxPacket packet, bool no_quorum) {
  if (!packet.is_reply) {
    if (packet.token != 0) {
      // Request packet of a blocking call: surface a typed failure to the
      // parked caller instead of letting the run end in a generic deadlock.
      auto it = pending_calls_.find(packet.token);
      if (it != pending_calls_.end() && !it->second->done) {
        fail_call(*it->second, packet.token,
                  no_quorum ? RpcStatus::kNoQuorum : RpcStatus::kBudgetExhausted,
                  packet.retransmits);
      }
      return;
    }
    // One-way send to a node the detector has confirmed dead — or sitting
    // across an open partition window: the HA layer has (or will have)
    // failed over its state, so the message is moot — discard it instead of
    // declaring the cluster broken.
    if (ha_ != nullptr && (no_quorum || ha_->confirmed_dead(packet.to))) {
      node(packet.from).stats().add(Counter::kHaDeadSendsDropped);
      trace_event(packet.from, TraceKind::kRpcTimeout, packet.to, packet.service);
      return;
    }
    // One-way send: no caller to inform, and protocol state on the receiver
    // now diverges irrecoverably — abort naming the coordinates.
    HYP_PANIC("one-way rpc from node " + std::to_string(packet.from) + " to node " +
              std::to_string(packet.to) + " service " + service_label(packet.service) +
              ": retry budget exhausted after " + std::to_string(packet.retransmits) +
              " retransmits (node unreachable?)");
  }

  // Reply packet: the replier cannot reach the caller. Fail the caller's
  // pending call (the simulator sees both ends) so the fiber wakes with a
  // typed error instead of parking forever.
  auto it = pending_calls_.find(packet.token);
  if (it != pending_calls_.end() && !it->second->done) {
    PendingCall& pc = *it->second;
    fail_call(pc, packet.token, no_quorum ? RpcStatus::kNoQuorum : RpcStatus::kTimeout,
              packet.retransmits);
    pc.error.message +=
        " (reply from node " + std::to_string(packet.from) + " was undeliverable)";
  } else {
    // Caller already gone (deadline fired first); account the give-up here.
    node(packet.from).stats().add(Counter::kRpcTimeouts);
    trace_event(packet.from, TraceKind::kRpcTimeout, packet.to, packet.service);
  }
}

void Cluster::complete_call(std::uint64_t token, Buffer payload) {
  auto it = pending_calls_.find(token);
  if (it == pending_calls_.end() || it->second->done) return;  // stale reply: call failed
  PendingCall& pc = *it->second;
  pc.payload = std::move(payload);
  pc.done = true;
  engine_.unpark(pc.waiter);
}

void Cluster::fail_call(PendingCall& call, std::uint64_t token, RpcStatus status,
                        std::uint32_t retransmits) {
  (void)token;
  call.error =
      make_error(status, call.from, call.to, call.service, retransmits,
                 engine_.now() - call.started);
  call.done = true;
  node(call.from).stats().add(Counter::kRpcTimeouts);
  trace_event(call.from, TraceKind::kRpcTimeout, call.to, call.service);
  engine_.unpark(call.waiter);
}

RpcError Cluster::make_error(RpcStatus status, NodeId from, NodeId to, ServiceId service,
                             std::uint32_t retransmits, Time waited) const {
  RpcError e;
  e.status = status;
  e.from = from;
  e.to = to;
  e.service = service;
  e.retransmits = retransmits;
  e.waited = waited;
  std::string reason;
  switch (status) {
    case RpcStatus::kBudgetExhausted:
      reason = "retry budget exhausted after " + std::to_string(retransmits) + " retransmits";
      break;
    case RpcStatus::kTimeout:
      reason = "timed out after " + std::to_string(to_micros(waited)) + " us";
      break;
    case RpcStatus::kNoQuorum:
      reason = "peer unreachable across an open partition window";
      break;
    case RpcStatus::kOk:
      reason = "ok";
      break;
  }
  e.message = "rpc from node " + std::to_string(from) + " to node " + std::to_string(to) +
              " service " + service_label(service) + ": " + reason;
  return e;
}

void Cluster::ha_fail_traffic_to(NodeId dead) {
  HYP_CHECK_MSG(ha_ != nullptr && ha_->confirmed_dead(dead),
                "ha_fail_traffic_to wants a confirmed-dead node");
  // Collect peers with in-flight traffic involving the dead node from the
  // sparse store's occupancy index — O(communicating pairs), not O(n) — then
  // process them in ascending node order, which is exactly the order the old
  // 0..n-1 full scan visited them in (pairs with empty outstanding were
  // no-ops there), so the recovery goldens are byte-identical.
  std::vector<NodeId> peers;
  for (const auto& ps : pair_slots_) {
    if (ps->outstanding.empty()) continue;
    if (ps->to == dead && ps->from != dead) {
      peers.push_back(ps->from);
    } else if (ps->from == dead && ps->to != dead) {
      peers.push_back(ps->to);
    }
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  for (NodeId other : peers) {
    // Everything still outstanding *to* the dead node gives up now: blocking
    // calls wake with kBudgetExhausted and re-route; one-way sends are
    // discarded (the confirmed_dead branch of tx_give_up).
    if (PairState* to_dead = pair_find(other, dead)) {
      while (!to_dead->outstanding.empty()) {
        TxPacket packet = std::move(to_dead->outstanding.begin()->second);
        to_dead->outstanding.erase(to_dead->outstanding.begin());
        tx_give_up(std::move(packet));
      }
    }
    // Replies the dead node still owed: fail the parked callers (kTimeout)
    // so they re-route too. Its outstanding *requests* are left alone — the
    // node itself is merely frozen and its sends resume after the restart.
    if (PairState* from_dead = pair_find(dead, other)) {
      for (auto it = from_dead->outstanding.begin(); it != from_dead->outstanding.end();) {
        if (it->second.is_reply) {
          TxPacket packet = std::move(it->second);
          it = from_dead->outstanding.erase(it);
          tx_give_up(std::move(packet));
        } else {
          ++it;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------

sim::Fiber* Cluster::spawn_thread(NodeId on, std::string name, UniqueFunction<void()> body) {
  Node& target = node(on);
  target.stats().add(Counter::kRemoteThreadSpawns);
  // Pin the fiber to its node's queue shard: all its sleeps/yields/wakeups
  // stay in that node's heap.
  return engine_.spawn_on(node_shard(on), std::move(name), std::move(body));
}

void Cluster::run() {
  auto stuck = engine_.run();
  if (!stuck.empty()) {
    std::string names;
    for (const auto& n : stuck) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    // Name any still-pending RPCs: "which node/service is stuck" is the
    // question a deadlock under fault injection actually poses.
    std::string detail;
    for (const auto& [token, pc] : pending_calls_) {
      if (pc->done) continue;
      detail += "\n  pending rpc: node " + std::to_string(pc->from) + " -> node " +
                std::to_string(pc->to) + " service " + service_label(pc->service) +
                " (waiting " + std::to_string(to_micros(engine_.now() - pc->started)) + " us)";
    }
    HYP_PANIC("cluster simulation deadlocked; blocked fibers: " + names + detail);
  }
}

Stats Cluster::total_stats() const {
  Stats total;
  for (const auto& n : nodes_) total.merge(n->stats_);
  return total;
}

}  // namespace hyp::cluster
