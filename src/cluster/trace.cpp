#include "cluster/trace.hpp"

#include <cstdio>

namespace hyp::cluster {

static_assert(static_cast<int>(TraceKind::kHomeMigrated) + 1 == kTraceKindCount,
              "kTraceKindCount out of sync with TraceKind");

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPageFetch: return "page_fetch";
    case TraceKind::kPageFault: return "page_fault";
    case TraceKind::kInvalidate: return "invalidate";
    case TraceKind::kUpdateSent: return "update_sent";
    case TraceKind::kMonitorEnter: return "monitor_enter";
    case TraceKind::kMonitorExit: return "monitor_exit";
    case TraceKind::kMonitorWait: return "monitor_wait";
    case TraceKind::kMonitorNotify: return "monitor_notify";
    case TraceKind::kThreadStart: return "thread_start";
    case TraceKind::kThreadMigrate: return "thread_migrate";
    case TraceKind::kMonitorAcquired: return "monitor_acquired";
    case TraceKind::kUpdateApplied: return "update_applied";
    case TraceKind::kNetDrop: return "net_drop";
    case TraceKind::kDupSuppressed: return "dup_suppressed";
    case TraceKind::kRetransmit: return "retransmit";
    case TraceKind::kRpcTimeout: return "rpc_timeout";
    case TraceKind::kNodeCrash: return "node_crash";
    case TraceKind::kNodeRestart: return "node_restart";
    case TraceKind::kHaSuspected: return "ha_suspected";
    case TraceKind::kHaDeadConfirmed: return "ha_dead_confirmed";
    case TraceKind::kHomePromoted: return "home_promoted";
    case TraceKind::kEpochBump: return "epoch_bump";
    case TraceKind::kHaRejoined: return "ha_rejoined";
    case TraceKind::kHaNack: return "ha_nack";
    case TraceKind::kCheckpoint: return "checkpoint";
    case TraceKind::kCheckpointApplied: return "checkpoint_applied";
    case TraceKind::kRaceDetected: return "race_detected";
    case TraceKind::kHaPartition: return "ha_partition";
    case TraceKind::kHaFencedReject: return "ha_fenced_reject";
    case TraceKind::kHaQuorumRead: return "ha_quorum_read";
    case TraceKind::kServeOp: return "serve_op";
    case TraceKind::kModeSwitch: return "mode_switch";
    case TraceKind::kHomeMigrated: return "home_migrated";
  }
  return "?";
}

std::size_t TraceLog::recorded(TraceKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += (e.kind == kind);
  return n;
}

void TraceLog::write_text(std::ostream& os, std::size_t limit) const {
  std::size_t shown = 0;
  for (const auto& e : events_) {
    if (shown++ >= limit) break;
    char line[160];
    std::snprintf(line, sizeof(line), "%12.3f us  n%-2d %-16s a=%lld b=%lld\n",
                  to_micros(e.at), e.node, trace_kind_name(e.kind),
                  static_cast<long long>(e.a), static_cast<long long>(e.b));
    os << line;
  }
  if (events_.size() > limit) {
    os << "... (" << (events_.size() - limit) << " more events)\n";
  }
  if (dropped_ != 0) {
    os << "... (" << dropped_ << " events dropped at capacity:";
    for (int k = 0; k < kTraceKindCount; ++k) {
      if (dropped_by_kind_[k] != 0) {
        os << ' ' << trace_kind_name(static_cast<TraceKind>(k)) << '='
           << dropped_by_kind_[k];
      }
    }
    os << ")\n";
  }
}

}  // namespace hyp::cluster
