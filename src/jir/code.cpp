#include "jir/code.hpp"

#include <deque>
#include <map>

namespace hyp::jir {

const char* op_name(Op op) {
  switch (op) {
    case Op::kLConst: return "lconst";
    case Op::kDConst: return "dconst";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kPop: return "pop";
    case Op::kDup: return "dup";
    case Op::kLAdd: return "ladd";
    case Op::kLSub: return "lsub";
    case Op::kLMul: return "lmul";
    case Op::kLDiv: return "ldiv";
    case Op::kLRem: return "lrem";
    case Op::kLNeg: return "lneg";
    case Op::kLCmp: return "lcmp";
    case Op::kDAdd: return "dadd";
    case Op::kDSub: return "dsub";
    case Op::kDMul: return "dmul";
    case Op::kDDiv: return "ddiv";
    case Op::kDNeg: return "dneg";
    case Op::kDCmp: return "dcmp";
    case Op::kL2D: return "l2d";
    case Op::kD2L: return "d2l";
    case Op::kGoto: return "goto";
    case Op::kIfEq: return "ifeq";
    case Op::kIfNe: return "ifne";
    case Op::kIfLt: return "iflt";
    case Op::kIfGe: return "ifge";
    case Op::kNewArrayL: return "newarray_l";
    case Op::kNewArrayD: return "newarray_d";
    case Op::kALoadL: return "aload_l";
    case Op::kAStoreL: return "astore_l";
    case Op::kALoadD: return "aload_d";
    case Op::kAStoreD: return "astore_d";
    case Op::kArrayLen: return "arraylen";
    case Op::kMonitorEnter: return "monitorenter";
    case Op::kMonitorExit: return "monitorexit";
    case Op::kWait: return "wait";
    case Op::kNotify: return "notify";
    case Op::kNotifyAll: return "notifyall";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kRetVoid: return "retvoid";
    case Op::kSpawn: return "spawn";
    case Op::kJoinAll: return "joinall";
    case Op::kChargeCycles: return "charge";
  }
  return "?";
}

namespace {

// Net stack effect and minimum required depth per op; branch/terminal info.
struct Effect {
  int need;      // minimum stack depth before the instruction
  int delta;     // stack growth after execution
  bool branches; // has a branch target operand
  bool terminal; // never falls through (ret / retvoid)
  bool jumps_always;  // goto: falls through never, branch always
};

Effect effect_of(const Insn& insn, const Program& program, std::string* error) {
  switch (insn.op) {
    case Op::kLConst:
    case Op::kDConst:
    case Op::kLoad: return {0, +1, false, false, false};
    case Op::kStore:
    case Op::kPop: return {1, -1, false, false, false};
    case Op::kDup: return {1, +1, false, false, false};
    case Op::kLAdd: case Op::kLSub: case Op::kLMul: case Op::kLDiv: case Op::kLRem:
    case Op::kLCmp:
    case Op::kDAdd: case Op::kDSub: case Op::kDMul: case Op::kDDiv:
    case Op::kDCmp: return {2, -1, false, false, false};
    case Op::kLNeg: case Op::kDNeg: case Op::kL2D: case Op::kD2L:
      return {1, 0, false, false, false};
    case Op::kGoto: return {0, 0, true, false, true};
    case Op::kIfEq: case Op::kIfNe: case Op::kIfLt: case Op::kIfGe:
      return {1, -1, true, false, false};
    case Op::kNewArrayL: case Op::kNewArrayD: return {1, 0, false, false, false};
    case Op::kALoadL: case Op::kALoadD: return {2, -1, false, false, false};
    case Op::kAStoreL: case Op::kAStoreD: return {3, -3, false, false, false};
    case Op::kArrayLen: return {1, 0, false, false, false};
    case Op::kMonitorEnter: case Op::kMonitorExit:
    case Op::kWait: case Op::kNotify: case Op::kNotifyAll:
      return {1, -1, false, false, false};
    case Op::kCall: {
      const auto target = insn.operand;
      if (target < 0 || target >= static_cast<std::int64_t>(program.functions.size())) {
        *error = "call to unknown function index";
        return {0, 0, false, false, false};
      }
      const int nargs = program.functions[static_cast<std::size_t>(target)].args;
      return {nargs, -nargs + 1, false, false, false};
    }
    case Op::kSpawn: {
      const auto target = insn.operand;
      if (target < 0 || target >= static_cast<std::int64_t>(program.functions.size())) {
        *error = "spawn of unknown function index";
        return {0, 0, false, false, false};
      }
      const int nargs = program.functions[static_cast<std::size_t>(target)].args;
      return {nargs, -nargs, false, false, false};
    }
    case Op::kRet: return {1, -1, false, true, false};
    case Op::kRetVoid: return {0, 0, false, true, false};
    case Op::kJoinAll:
    case Op::kChargeCycles: return {0, 0, false, false, false};
  }
  *error = "unknown opcode";
  return {0, 0, false, false, false};
}

std::string verify_function(const Program& program, const Function& fn) {
  if (fn.args < 0 || fn.locals < fn.args) return fn.name + ": locals < args";
  if (fn.code.empty()) return fn.name + ": empty body";

  const auto size = static_cast<std::int64_t>(fn.code.size());
  std::map<std::int64_t, int> depth_at;  // instruction -> entry stack depth
  std::deque<std::int64_t> worklist;
  depth_at[0] = 0;
  worklist.push_back(0);

  while (!worklist.empty()) {
    const std::int64_t pc = worklist.front();
    worklist.pop_front();
    const int depth = depth_at.at(pc);
    const Insn& insn = fn.code[static_cast<std::size_t>(pc)];

    std::string error;
    const Effect e = effect_of(insn, program, &error);
    if (!error.empty()) return fn.name + ": " + error;
    if (depth < e.need) {
      return fn.name + ": stack underflow at " + std::to_string(pc) + " (" +
             op_name(insn.op) + ")";
    }
    if ((insn.op == Op::kLoad || insn.op == Op::kStore) &&
        (insn.operand < 0 || insn.operand >= fn.locals)) {
      return fn.name + ": local index out of range at " + std::to_string(pc);
    }
    const int after = depth + e.delta;

    auto flow_to = [&](std::int64_t target) -> std::string {
      if (target < 0 || target >= size) {
        return fn.name + ": branch target out of range at " + std::to_string(pc);
      }
      auto it = depth_at.find(target);
      if (it == depth_at.end()) {
        depth_at[target] = after;
        worklist.push_back(target);
      } else if (it->second != after) {
        return fn.name + ": inconsistent stack depth at " + std::to_string(target);
      }
      return {};
    };

    if (e.branches) {
      if (auto err = flow_to(insn.operand); !err.empty()) return err;
    }
    if (!e.terminal && !e.jumps_always) {
      if (pc + 1 >= size) {
        return fn.name + ": control falls off the end";
      }
      if (auto err = flow_to(pc + 1); !err.empty()) return err;
    }
  }
  return {};
}

}  // namespace

std::string verify(const Program& program) {
  if (program.functions.empty()) return "program has no functions";
  for (const Function& fn : program.functions) {
    if (auto err = verify_function(program, fn); !err.empty()) return err;
  }
  return {};
}

}  // namespace hyp::jir
