// Text assembler for JIR programs.
//
// Grammar (line-oriented; `#` starts a comment):
//   func <name> args=<n> locals=<n>
//     <label>:
//     <op> [operand]
//   end
// Branch operands are labels; call/spawn operands are function names
// (forward references allowed). Numeric operands accept i64 or, for dconst,
// a floating literal.
#pragma once

#include <string>

#include "jir/code.hpp"

namespace hyp::jir {

struct AssembleResult {
  Program program;
  std::string error;  // empty on success (error includes a line number)
  bool ok() const { return error.empty(); }
};

AssembleResult assemble(const std::string& source);

// Inverse of assemble(): emits assembler text that re-assembles to an
// identical program (labels are synthesized as L<index>). Useful for
// inspecting generated programs and for round-trip testing.
std::string disassemble(const Program& program);

}  // namespace hyp::jir
