// The JIR interpreter: executes verified bytecode on the cluster JVM.
//
// Every array access goes through the configured protocol's get/put
// primitives (so interpreted code pays checks under java_ic and faults under
// java_pf, like compiled code), monitorenter/exit drive the Java-consistency
// actions, and spawn places threads through the VM's load balancer.
#pragma once

#include <cstdint>
#include <vector>

#include "hyperion/vm.hpp"
#include "jir/code.hpp"

namespace hyp::jir {

// Per-instruction dispatch cost modeled for interpreted execution; the
// paper's argument for compiling ("we expect the cost of compiling to native
// code will be recovered many times over") is visible as this constant.
inline constexpr std::uint64_t kDispatchCycles = 12;

class Interpreter {
 public:
  // The program must outlive the interpreter and every thread it spawns.
  Interpreter(const Program* program, hyperion::JavaEnv* env);

  // Runs `function` with the given arguments (raw 64-bit slots) to
  // completion; returns the raw returned slot (0 for retvoid).
  std::int64_t run(int function, std::vector<std::int64_t> args = {});
  std::int64_t run(const std::string& function, std::vector<std::int64_t> args = {});

  // Convenience bit casts for arguments/results.
  static std::int64_t from_double(double d);
  static double to_double(std::int64_t bits);

 private:
  std::int64_t exec(int function, std::vector<std::int64_t> locals);

  const Program* program_;
  hyperion::JavaEnv* env_;
};

}  // namespace hyp::jir
