// JIR — a small Java-flavoured stack bytecode for the cluster JVM.
//
// The paper's vision (§2.1): "programmers will push bytecode to the
// high-performance server for remote execution". Hyperion translated that
// bytecode to C; the five benchmark apps in src/apps are this repository's
// stand-in for the translator's *output*. JIR closes the loop from the other
// side: a verifiable stack bytecode whose interpreter executes against the
// same runtime (policies, monitors, arrays, threads), demonstrating that the
// runtime API is sufficient for Java semantics delivered as portable code.
//
// The machine: 64-bit value slots (long, double or array reference), typed
// arithmetic (l* = integer, d* = floating), local variables, Java arrays in
// the cluster-wide shared memory, monitorenter/exit, and thread spawn/join.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace hyp::jir {

enum class Op : std::uint8_t {
  // constants / locals
  kLConst,   // push immediate i64 (operand)
  kDConst,   // push immediate f64 (operand bit-cast)
  kLoad,     // push locals[operand]
  kStore,    // locals[operand] = pop
  kPop,
  kDup,
  // long arithmetic / comparison
  kLAdd, kLSub, kLMul, kLDiv, kLRem, kLNeg, kLCmp,  // lcmp: push -1/0/1
  // double arithmetic
  kDAdd, kDSub, kDMul, kDDiv, kDNeg, kDCmp,
  // conversions
  kL2D, kD2L,
  // control flow (operand = absolute code index)
  kGoto,
  kIfEq,   // pop; branch if == 0
  kIfNe,
  kIfLt,
  kIfGe,
  // arrays in the DSM (Java arrays: long[] and double[])
  kNewArrayL,  // pop length; push ref
  kNewArrayD,
  kALoadL,     // pop index, ref; push value
  kAStoreL,    // pop value, index, ref
  kALoadD,
  kAStoreD,
  kArrayLen,   // pop ref; push length
  // synchronization (operand-less; object = popped array ref)
  kMonitorEnter,
  kMonitorExit,
  kWait,
  kNotify,
  kNotifyAll,
  // methods and threads
  kCall,    // operand = function index; args: callee's first nargs locals
            // popped from the stack (last arg on top); result pushed
  kRet,     // pop return value, leave frame
  kRetVoid,
  kSpawn,   // operand = function index; pops nargs args; starts a Java thread
  kJoinAll, // joins every thread this frame spawned
  // miscellaneous
  kChargeCycles,  // operand = cycles; models the compiled code's work
};

const char* op_name(Op op);

struct Insn {
  Op op;
  std::int64_t operand = 0;
};

struct Function {
  std::string name;
  int args = 0;    // locals [0, args) are parameters
  int locals = 0;  // total local slots (>= args)
  std::vector<Insn> code;
};

struct Program {
  std::vector<Function> functions;

  int find(const std::string& name) const {
    for (std::size_t i = 0; i < functions.size(); ++i) {
      if (functions[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

// Static verification: branch targets in range, stack depth consistent and
// non-negative along every path, locals in range, call/spawn indices valid.
// Returns an empty string when valid, else a diagnostic.
std::string verify(const Program& program);

}  // namespace hyp::jir
