#include "jir/interp.hpp"

#include <cstring>

#include "hyperion/object.hpp"

namespace hyp::jir {

namespace {

double as_double(std::int64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::int64_t as_bits(double d) {
  std::int64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

Interpreter::Interpreter(const Program* program, hyperion::JavaEnv* env)
    : program_(program), env_(env) {
  HYP_CHECK(program != nullptr && env != nullptr);
}

std::int64_t Interpreter::from_double(double d) { return as_bits(d); }
double Interpreter::to_double(std::int64_t bits) { return as_double(bits); }

std::int64_t Interpreter::run(int function, std::vector<std::int64_t> args) {
  HYP_CHECK_MSG(function >= 0 &&
                    function < static_cast<int>(program_->functions.size()),
                "unknown function index");
  const Function& fn = program_->functions[static_cast<std::size_t>(function)];
  HYP_CHECK_MSG(static_cast<int>(args.size()) == fn.args, "argument count mismatch");
  args.resize(static_cast<std::size_t>(fn.locals), 0);
  return exec(function, std::move(args));
}

std::int64_t Interpreter::run(const std::string& function, std::vector<std::int64_t> args) {
  const int idx = program_->find(function);
  HYP_CHECK_MSG(idx >= 0, "unknown function: " + function);
  return run(idx, std::move(args));
}

std::int64_t Interpreter::exec(int function, std::vector<std::int64_t> locals) {
  const Function& fn = program_->functions[static_cast<std::size_t>(function)];
  std::vector<std::int64_t> stack;
  stack.reserve(16);
  std::vector<hyperion::JThread> spawned;

  const auto kind = env_->vm().protocol();
  // Java array semantics: every access is bounds-checked at runtime (the
  // verifier cannot see indices). A violation is an error, as
  // ArrayIndexOutOfBoundsException would be.
  auto check_bounds = [&](dsm::Gva header, std::int64_t i) {
    hyperion::GArray<std::int64_t> a{header};
    const auto len = dsm::with_policy(kind, [&](auto policy) {
      using P = decltype(policy);
      return static_cast<std::int64_t>(hyperion::Mem<P>(env_->ctx()).alen(a));
    });
    HYP_CHECK_MSG(i >= 0 && i < len,
                  "array index out of bounds: " + std::to_string(i) + " not in [0, " +
                      std::to_string(len) + ")");
  };
  auto aget_l = [&](dsm::Gva header, std::int64_t i) {
    check_bounds(header, i);
    hyperion::GArray<std::int64_t> a{header};
    return dsm::with_policy(kind, [&](auto policy) {
      using P = decltype(policy);
      return hyperion::Mem<P>(env_->ctx()).aget(a, i);
    });
  };
  auto aput_l = [&](dsm::Gva header, std::int64_t i, std::int64_t v) {
    check_bounds(header, i);
    hyperion::GArray<std::int64_t> a{header};
    dsm::with_policy(kind, [&](auto policy) {
      using P = decltype(policy);
      hyperion::Mem<P>(env_->ctx()).aput(a, i, v);
    });
  };
  auto aget_d = [&](dsm::Gva header, std::int64_t i) {
    check_bounds(header, i);
    hyperion::GArray<double> a{header};
    return dsm::with_policy(kind, [&](auto policy) {
      using P = decltype(policy);
      return hyperion::Mem<P>(env_->ctx()).aget(a, i);
    });
  };
  auto aput_d = [&](dsm::Gva header, std::int64_t i, double v) {
    check_bounds(header, i);
    hyperion::GArray<double> a{header};
    dsm::with_policy(kind, [&](auto policy) {
      using P = decltype(policy);
      hyperion::Mem<P>(env_->ctx()).aput(a, i, v);
    });
  };
  auto alen = [&](dsm::Gva header) {
    hyperion::GArray<std::int64_t> a{header};
    return dsm::with_policy(kind, [&](auto policy) {
      using P = decltype(policy);
      return static_cast<std::int64_t>(hyperion::Mem<P>(env_->ctx()).alen(a));
    });
  };

  auto pop = [&] {
    HYP_CHECK_MSG(!stack.empty(), "operand stack underflow (unverified code?)");
    const std::int64_t v = stack.back();
    stack.pop_back();
    return v;
  };
  auto push = [&](std::int64_t v) { stack.push_back(v); };

  std::int64_t pc = 0;
  for (;;) {
    HYP_CHECK_MSG(pc >= 0 && pc < static_cast<std::int64_t>(fn.code.size()),
                  "pc out of range (unverified code?)");
    const Insn& insn = fn.code[static_cast<std::size_t>(pc)];
    env_->charge_cycles(kDispatchCycles);
    std::int64_t next = pc + 1;

    switch (insn.op) {
      case Op::kLConst:
      case Op::kDConst: push(insn.operand); break;
      case Op::kLoad: push(locals[static_cast<std::size_t>(insn.operand)]); break;
      case Op::kStore: locals[static_cast<std::size_t>(insn.operand)] = pop(); break;
      case Op::kPop: pop(); break;
      case Op::kDup: {
        const auto v = pop();
        push(v);
        push(v);
        break;
      }
      case Op::kLAdd: { const auto b = pop(), a = pop(); push(a + b); break; }
      case Op::kLSub: { const auto b = pop(), a = pop(); push(a - b); break; }
      case Op::kLMul: { const auto b = pop(), a = pop(); push(a * b); break; }
      case Op::kLDiv: {
        const auto b = pop(), a = pop();
        HYP_CHECK_MSG(b != 0, "division by zero");
        push(a / b);
        break;
      }
      case Op::kLRem: {
        const auto b = pop(), a = pop();
        HYP_CHECK_MSG(b != 0, "remainder by zero");
        push(a % b);
        break;
      }
      case Op::kLNeg: push(-pop()); break;
      case Op::kLCmp: {
        const auto b = pop(), a = pop();
        push(a < b ? -1 : (a > b ? 1 : 0));
        break;
      }
      case Op::kDAdd: { const auto b = pop(), a = pop(); push(as_bits(as_double(a) + as_double(b))); break; }
      case Op::kDSub: { const auto b = pop(), a = pop(); push(as_bits(as_double(a) - as_double(b))); break; }
      case Op::kDMul: { const auto b = pop(), a = pop(); push(as_bits(as_double(a) * as_double(b))); break; }
      case Op::kDDiv: { const auto b = pop(), a = pop(); push(as_bits(as_double(a) / as_double(b))); break; }
      case Op::kDNeg: push(as_bits(-as_double(pop()))); break;
      case Op::kDCmp: {
        const auto b = as_double(pop()), a = as_double(pop());
        push(a < b ? -1 : (a > b ? 1 : 0));
        break;
      }
      case Op::kL2D: push(as_bits(static_cast<double>(pop()))); break;
      case Op::kD2L: push(static_cast<std::int64_t>(as_double(pop()))); break;
      case Op::kGoto: next = insn.operand; break;
      case Op::kIfEq: if (pop() == 0) next = insn.operand; break;
      case Op::kIfNe: if (pop() != 0) next = insn.operand; break;
      case Op::kIfLt: if (pop() < 0) next = insn.operand; break;
      case Op::kIfGe: if (pop() >= 0) next = insn.operand; break;
      case Op::kNewArrayL: {
        const auto n = pop();
        push(static_cast<std::int64_t>(env_->new_array<std::int64_t>(n).header));
        break;
      }
      case Op::kNewArrayD: {
        const auto n = pop();
        push(static_cast<std::int64_t>(env_->new_array<double>(n).header));
        break;
      }
      case Op::kALoadL: {
        const auto i = pop();
        const auto ref = static_cast<dsm::Gva>(pop());
        push(aget_l(ref, i));
        break;
      }
      case Op::kAStoreL: {
        const auto v = pop();
        const auto i = pop();
        const auto ref = static_cast<dsm::Gva>(pop());
        aput_l(ref, i, v);
        break;
      }
      case Op::kALoadD: {
        const auto i = pop();
        const auto ref = static_cast<dsm::Gva>(pop());
        push(as_bits(aget_d(ref, i)));
        break;
      }
      case Op::kAStoreD: {
        const auto v = as_double(pop());
        const auto i = pop();
        const auto ref = static_cast<dsm::Gva>(pop());
        aput_d(ref, i, v);
        break;
      }
      case Op::kArrayLen: push(alen(static_cast<dsm::Gva>(pop()))); break;
      case Op::kMonitorEnter: env_->monitor_enter(static_cast<dsm::Gva>(pop())); break;
      case Op::kMonitorExit: env_->monitor_exit(static_cast<dsm::Gva>(pop())); break;
      case Op::kWait: env_->wait(static_cast<dsm::Gva>(pop())); break;
      case Op::kNotify: env_->notify(static_cast<dsm::Gva>(pop())); break;
      case Op::kNotifyAll: env_->notify_all(static_cast<dsm::Gva>(pop())); break;
      case Op::kCall: {
        const auto callee = static_cast<int>(insn.operand);
        const Function& target = program_->functions[static_cast<std::size_t>(callee)];
        std::vector<std::int64_t> args(static_cast<std::size_t>(target.locals), 0);
        for (int a = target.args - 1; a >= 0; --a) args[static_cast<std::size_t>(a)] = pop();
        push(exec(callee, std::move(args)));
        break;
      }
      case Op::kSpawn: {
        const auto callee = static_cast<int>(insn.operand);
        const Function& target = program_->functions[static_cast<std::size_t>(callee)];
        std::vector<std::int64_t> args(static_cast<std::size_t>(target.args), 0);
        for (int a = target.args - 1; a >= 0; --a) args[static_cast<std::size_t>(a)] = pop();
        const Program* program = program_;
        spawned.push_back(env_->start_thread(
            "jir:" + target.name, [program, callee, moved = std::move(args)](
                                      hyperion::JavaEnv& thread_env) mutable {
              Interpreter child(program, &thread_env);
              child.run(callee, std::move(moved));
            }));
        break;
      }
      case Op::kJoinAll:
        for (auto& t : spawned) env_->join(t);
        spawned.clear();
        break;
      case Op::kChargeCycles:
        env_->charge_cycles(static_cast<std::uint64_t>(insn.operand));
        break;
      case Op::kRet: return pop();
      case Op::kRetVoid: return 0;
    }
    pc = next;
  }
}

}  // namespace hyp::jir
