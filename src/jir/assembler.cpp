#include "jir/assembler.hpp"

#include <cstring>
#include <map>
#include <sstream>
#include <vector>

namespace hyp::jir {

namespace {

// Reverse op table built once from op_name.
const std::map<std::string, Op>& mnemonic_table() {
  static const std::map<std::string, Op>* table = [] {
    auto* t = new std::map<std::string, Op>;
    for (int i = 0; i <= static_cast<int>(Op::kChargeCycles); ++i) {
      const Op op = static_cast<Op>(i);
      (*t)[op_name(op)] = op;
    }
    return t;
  }();
  return *table;
}

bool needs_label(Op op) {
  return op == Op::kGoto || op == Op::kIfEq || op == Op::kIfNe || op == Op::kIfLt ||
         op == Op::kIfGe;
}

bool needs_function(Op op) { return op == Op::kCall || op == Op::kSpawn; }

bool needs_int(Op op) {
  return op == Op::kLConst || op == Op::kLoad || op == Op::kStore || op == Op::kChargeCycles;
}

struct Fixup {
  std::size_t function;
  std::size_t insn;
  std::string symbol;  // label or function name
  bool is_function;
  int line;
};

}  // namespace

AssembleResult assemble(const std::string& source) {
  AssembleResult result;
  Program& program = result.program;
  std::vector<Fixup> fixups;
  std::map<std::string, std::int64_t> labels;  // current function's labels
  bool in_function = false;

  auto fail = [&](int line, const std::string& message) {
    result.error = "line " + std::to_string(line) + ": " + message;
    return result;
  };

  std::istringstream in(source);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (auto hash = raw.find('#'); hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string word;
    if (!(line >> word)) continue;  // blank

    if (word == "func") {
      if (in_function) return fail(line_no, "nested func");
      std::string name, args_kv, locals_kv;
      if (!(line >> name >> args_kv >> locals_kv)) {
        return fail(line_no, "expected: func <name> args=<n> locals=<n>");
      }
      Function fn;
      fn.name = name;
      if (std::sscanf(args_kv.c_str(), "args=%d", &fn.args) != 1 ||
          std::sscanf(locals_kv.c_str(), "locals=%d", &fn.locals) != 1) {
        return fail(line_no, "bad args=/locals=");
      }
      if (program.find(name) >= 0) return fail(line_no, "duplicate function " + name);
      program.functions.push_back(std::move(fn));
      labels.clear();
      in_function = true;
      continue;
    }
    if (word == "end") {
      if (!in_function) return fail(line_no, "end outside func");
      // Resolve this function's label fixups now (labels are local).
      Function& fn = program.functions.back();
      for (auto it = fixups.begin(); it != fixups.end();) {
        if (it->is_function || it->function != program.functions.size() - 1) {
          ++it;
          continue;
        }
        auto label = labels.find(it->symbol);
        if (label == labels.end()) return fail(it->line, "unknown label " + it->symbol);
        fn.code[it->insn].operand = label->second;
        it = fixups.erase(it);
      }
      in_function = false;
      continue;
    }
    if (!in_function) return fail(line_no, "instruction outside func");

    Function& fn = program.functions.back();
    if (word.size() > 1 && word.back() == ':') {
      const std::string label = word.substr(0, word.size() - 1);
      if (!labels.emplace(label, static_cast<std::int64_t>(fn.code.size())).second) {
        return fail(line_no, "duplicate label " + label);
      }
      // A label line may also carry an instruction; re-read.
      if (!(line >> word)) continue;
    }

    auto op_it = mnemonic_table().find(word);
    if (op_it == mnemonic_table().end()) return fail(line_no, "unknown opcode " + word);
    Insn insn{op_it->second, 0};

    if (needs_label(insn.op) || needs_function(insn.op)) {
      std::string symbol;
      if (!(line >> symbol)) return fail(line_no, word + " needs an operand");
      fixups.push_back({program.functions.size() - 1, fn.code.size(), symbol,
                        needs_function(insn.op), line_no});
    } else if (insn.op == Op::kDConst) {
      double value;
      if (!(line >> value)) return fail(line_no, "dconst needs a number");
      std::memcpy(&insn.operand, &value, sizeof(value));
    } else if (needs_int(insn.op)) {
      if (!(line >> insn.operand)) return fail(line_no, word + " needs an integer");
    }
    std::string extra;
    if (line >> extra) return fail(line_no, "trailing junk: " + extra);
    fn.code.push_back(insn);
  }
  if (in_function) return fail(line_no, "missing end");

  // Resolve function-name fixups (forward references allowed).
  for (const Fixup& fixup : fixups) {
    HYP_CHECK(fixup.is_function);
    const int idx = program.find(fixup.symbol);
    if (idx < 0) {
      result.error = "line " + std::to_string(fixup.line) + ": unknown function " + fixup.symbol;
      return result;
    }
    program.functions[fixup.function].code[fixup.insn].operand = idx;
  }

  if (auto err = verify(program); !err.empty()) {
    result.error = "verify: " + err;
  }
  return result;
}

std::string disassemble(const Program& program) {
  std::ostringstream out;
  for (const Function& fn : program.functions) {
    out << "func " << fn.name << " args=" << fn.args << " locals=" << fn.locals << "\n";
    // Collect branch targets so labels can be emitted.
    std::map<std::int64_t, std::string> labels;
    for (const Insn& insn : fn.code) {
      if (needs_label(insn.op) && labels.find(insn.operand) == labels.end()) {
        labels[insn.operand] = "L" + std::to_string(insn.operand);
      }
    }
    for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
      if (auto it = labels.find(static_cast<std::int64_t>(pc)); it != labels.end()) {
        out << it->second << ":\n";
      }
      const Insn& insn = fn.code[pc];
      out << "  " << op_name(insn.op);
      if (needs_label(insn.op)) {
        out << " " << labels.at(insn.operand);
      } else if (needs_function(insn.op)) {
        out << " " << program.functions[static_cast<std::size_t>(insn.operand)].name;
      } else if (insn.op == Op::kDConst) {
        double value;
        std::memcpy(&value, &insn.operand, sizeof(value));
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        out << " " << buf;
      } else if (needs_int(insn.op)) {
        out << " " << insn.operand;
      }
      out << "\n";
    }
    out << "end\n";
  }
  return out.str();
}

}  // namespace hyp::jir
