#include "obs/heat.hpp"

#include <algorithm>
#include <cstdio>

namespace hyp::obs {

std::vector<PageHeatTable::Row> PageHeatTable::top(std::size_t n) const {
  std::vector<Row> rows;
  for (std::size_t p = 0; p < fetches_.size(); ++p) {
    if (fetches_[p] == 0 && faults_[p] == 0 && update_bytes_[p] == 0) continue;
    rows.push_back({p, fetches_[p], faults_[p], update_bytes_[p]});
  }
  auto hotter = [](const Row& a, const Row& b) {
    const std::uint64_t ea = a.fetches + a.faults;
    const std::uint64_t eb = b.fetches + b.faults;
    if (ea != eb) return ea > eb;
    if (a.update_bytes != b.update_bytes) return a.update_bytes > b.update_bytes;
    return a.page < b.page;
  };
  if (rows.size() > n) {
    std::partial_sort(rows.begin(), rows.begin() + static_cast<std::ptrdiff_t>(n), rows.end(),
                      hotter);
    rows.resize(n);
  } else {
    std::sort(rows.begin(), rows.end(), hotter);
  }
  return rows;
}

void PageHeatTable::write_report(std::ostream& os, std::size_t n) const {
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %10s %10s %14s\n", "page", "fetches", "faults",
                "update bytes");
  os << line;
  std::uint64_t tf = 0, tp = 0, tb = 0;
  std::size_t active = 0;
  for (std::size_t p = 0; p < fetches_.size(); ++p) {
    tf += fetches_[p];
    tp += faults_[p];
    tb += update_bytes_[p];
    active += (fetches_[p] != 0 || faults_[p] != 0 || update_bytes_[p] != 0);
  }
  for (const Row& r : top(n)) {
    std::snprintf(line, sizeof(line), "%-10llu %10llu %10llu %14llu\n",
                  static_cast<unsigned long long>(r.page),
                  static_cast<unsigned long long>(r.fetches),
                  static_cast<unsigned long long>(r.faults),
                  static_cast<unsigned long long>(r.update_bytes));
    os << line;
  }
  std::snprintf(line, sizeof(line), "%-10s %10llu %10llu %14llu  (%zu active pages)\n",
                "all", static_cast<unsigned long long>(tf),
                static_cast<unsigned long long>(tp), static_cast<unsigned long long>(tb),
                active);
  os << line;
}

}  // namespace hyp::obs
