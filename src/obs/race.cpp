#include "obs/race.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cluster/cluster.hpp"
#include "common/assert.hpp"

namespace hyp::obs {

const char* race_gran_name(RaceGran g) {
  switch (g) {
    case RaceGran::kField: return "field";
    case RaceGran::kPage: return "page";
  }
  return "?";
}

const char* race_kind_name(RaceRecord::Kind k) {
  switch (k) {
    case RaceRecord::Kind::kWriteWrite: return "write-write";
    case RaceRecord::Kind::kReadWrite: return "read-write";
    case RaceRecord::Kind::kWriteRead: return "write-read";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// RaceConfig

namespace {

[[noreturn]] void bad_race_spec(const std::string& spec, const std::string& token,
                                const char* why) {
  std::fprintf(stderr, "malformed --race-detect '%s' at token '%s': %s\n"
                       "  grammar: on|off[,racegran=field|page]\n",
               spec.c_str(), token.c_str(), why);
  std::exit(2);
}

bool starts_with(const std::string& s, const char* prefix, std::size_t* n) {
  const std::size_t len = std::strlen(prefix);
  if (s.compare(0, len, prefix) != 0) return false;
  *n = len;
  return true;
}

}  // namespace

RaceConfig RaceConfig::parse(const std::string& spec) {
  RaceConfig cfg;
  bool saw_mode = false;
  if (!spec.empty() && spec.back() == ',') bad_race_spec(spec, "", "empty token");
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) bad_race_spec(spec, token, "empty token");
    std::size_t n = 0;
    if (token == "on") {
      if (saw_mode) bad_race_spec(spec, token, "duplicate on/off");
      cfg.enabled = true;
      saw_mode = true;
    } else if (token == "off") {
      if (saw_mode) bad_race_spec(spec, token, "duplicate on/off");
      cfg.enabled = false;
      saw_mode = true;
    } else if (starts_with(token, "racegran=", &n)) {
      const std::string v = token.substr(n);
      if (v == "field") {
        cfg.gran = RaceGran::kField;
      } else if (v == "page") {
        cfg.gran = RaceGran::kPage;
      } else {
        bad_race_spec(spec, token, "expected racegran=field or racegran=page");
      }
    } else {
      bad_race_spec(spec, token, "unknown token");
    }
  }
  if (!saw_mode) bad_race_spec(spec, spec, "spec must start with on or off");
  return cfg;
}

std::string RaceConfig::to_string() const {
  if (!enabled) return "off";
  return std::string("on,racegran=") + race_gran_name(gran);
}

// ---------------------------------------------------------------------------
// RaceDetector

void RaceDetector::begin_run(cluster::Cluster* cluster, unsigned page_shift) {
  cluster_ = cluster;
  page_shift_ = page_shift;
  thread_vc_.clear();
  thread_node_.clear();
  lock_vc_.clear();
  fork_tokens_.clear();
  cells_.clear();
  node_vc_.clear();
  benign_.clear();
  allocs_.clear();
  races_.clear();
  seen_.clear();
  accesses_checked_ = 0;
  benign_suppressed_ = 0;
  clock_msgs_ = 0;
  clock_bytes_ = 0;
}

RaceDetector::Vc& RaceDetector::clock_of(std::uint64_t tid) {
  if (tid >= thread_vc_.size()) {
    thread_vc_.resize(tid + 1);
    thread_node_.resize(tid + 1, -1);
  }
  return thread_vc_[tid];
}

void RaceDetector::join_into(Vc& dst, const Vc& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

void RaceDetector::register_thread(std::uint64_t tid, int node) {
  Vc& c = clock_of(tid);
  if (c.size() <= tid) c.resize(tid + 1, 0);
  if (c[tid] == 0) c[tid] = 1;  // epochs start at 1; clk 0 means "never"
  thread_node_[tid] = node;
}

void RaceDetector::set_thread_node(std::uint64_t tid, int node) {
  clock_of(tid);
  thread_node_[tid] = node;
}

std::uint64_t RaceDetector::prepare_fork(std::uint64_t parent_tid) {
  Vc& c = clock_of(parent_tid);
  const std::uint64_t token = fork_tokens_.size();
  fork_tokens_.push_back(c);  // snapshot
  if (c.size() <= parent_tid) c.resize(parent_tid + 1, 0);
  ++c[parent_tid];
  return token;
}

void RaceDetector::adopt_fork(std::uint64_t token, std::uint64_t child_tid) {
  HYP_CHECK(token < fork_tokens_.size());
  join_into(clock_of(child_tid), fork_tokens_[token]);
}

void RaceDetector::thread_exit(std::uint64_t token, std::uint64_t tid) {
  HYP_CHECK(token < fork_tokens_.size());
  fork_tokens_[token] = clock_of(tid);  // publish the final clock
}

void RaceDetector::join(std::uint64_t joiner_tid, std::uint64_t token) {
  HYP_CHECK(token < fork_tokens_.size());
  join_into(clock_of(joiner_tid), fork_tokens_[token]);
}

void RaceDetector::lock_acquire(std::uint64_t tid, std::uint64_t obj) {
  auto it = lock_vc_.find(obj);
  if (it != lock_vc_.end()) join_into(clock_of(tid), it->second);
}

void RaceDetector::lock_release(std::uint64_t tid, std::uint64_t obj) {
  Vc& c = clock_of(tid);
  lock_vc_[obj] = c;
  // Piggyback bookkeeping: the releasing thread's node clock advances with it
  // (a real implementation ships this clock with the release message).
  const int node = thread_node_[tid];
  if (node >= 0) {
    if (static_cast<std::size_t>(node) >= node_vc_.size()) node_vc_.resize(node + 1);
    join_into(node_vc_[static_cast<std::size_t>(node)], c);
  }
  if (c.size() <= tid) c.resize(tid + 1, 0);
  ++c[tid];
}

bool RaceDetector::is_benign(std::uint64_t addr) const {
  for (const auto& [begin, end] : benign_) {
    if (addr >= begin && addr < end) return true;
  }
  return false;
}

const RaceDetector::AllocSite* RaceDetector::alloc_of(std::uint64_t addr) const {
  // allocs_ is sorted by base (allocation pointers are monotone per zone,
  // and note_alloc keeps the vector sorted across zones).
  auto it = std::upper_bound(allocs_.begin(), allocs_.end(), addr,
                             [](std::uint64_t a, const AllocSite& s) { return a < s.base; });
  if (it == allocs_.begin()) return nullptr;
  --it;
  return addr < it->base + it->bytes ? &*it : nullptr;
}

void RaceDetector::record_race(RaceRecord::Kind kind, std::uint64_t addr, std::uint64_t key,
                               std::uint64_t tid_prev, std::uint64_t tid_cur, unsigned size) {
  if (is_benign(addr)) {
    ++benign_suppressed_;
    return;
  }
  if (!seen_.emplace(key, static_cast<std::uint8_t>(kind), tid_prev, tid_cur).second) {
    return;  // already reported this (cell, kind, thread-pair)
  }
  RaceRecord r;
  r.addr = addr;
  r.key = key;
  r.kind = kind;
  r.tid_prev = tid_prev;
  r.tid_cur = tid_cur;
  r.node_prev = tid_prev < thread_node_.size() ? thread_node_[tid_prev] : -1;
  r.node_cur = tid_cur < thread_node_.size() ? thread_node_[tid_cur] : -1;
  r.size = size;
  r.at = cluster_ != nullptr ? cluster_->engine().now() : 0;
  races_.push_back(r);
  if (cluster_ != nullptr && r.node_cur >= 0) {
    // b packs the participants: (tid_prev << 34) | (tid_cur << 4) | kind.
    const auto packed = static_cast<std::int64_t>((tid_prev << 34) | (tid_cur << 4) |
                                                  static_cast<std::uint64_t>(kind));
    cluster_->trace_event(r.node_cur, cluster::TraceKind::kRaceDetected,
                          static_cast<std::int64_t>(addr), packed);
  }
}

void RaceDetector::on_read(std::uint64_t tid, std::uint64_t addr, unsigned size) {
  ++accesses_checked_;
  Vc& c = clock_of(tid);
  CellState& cell = cells_[key_of(addr)];
  if (cell.w_clk != 0 && cell.w_tid != tid &&
      (cell.w_tid >= c.size() || c[cell.w_tid] < cell.w_clk)) {
    record_race(RaceRecord::Kind::kWriteRead, addr, key_of(addr), cell.w_tid, tid, size);
  }
  if (cell.reads.size() <= tid) cell.reads.resize(tid + 1, 0);
  cell.reads[tid] = tid < c.size() ? c[tid] : 0;
}

void RaceDetector::on_write(std::uint64_t tid, std::uint64_t addr, unsigned size) {
  ++accesses_checked_;
  Vc& c = clock_of(tid);
  const std::uint64_t key = key_of(addr);
  CellState& cell = cells_[key];
  if (cell.w_clk != 0 && cell.w_tid != tid &&
      (cell.w_tid >= c.size() || c[cell.w_tid] < cell.w_clk)) {
    record_race(RaceRecord::Kind::kWriteWrite, addr, key, cell.w_tid, tid, size);
  }
  for (std::uint64_t u = 0; u < cell.reads.size(); ++u) {
    if (cell.reads[u] == 0 || u == tid) continue;
    if (u >= c.size() || c[u] < cell.reads[u]) {
      record_race(RaceRecord::Kind::kReadWrite, addr, key, u, tid, size);
    }
  }
  cell.w_tid = tid;
  cell.w_clk = tid < c.size() ? c[tid] : 0;
  cell.w_size = size;
}

void RaceDetector::mark_benign(std::uint64_t begin, std::uint64_t end) {
  benign_.emplace_back(begin, end);
}

void RaceDetector::note_alloc(int home, std::uint64_t base, std::uint64_t bytes) {
  AllocSite s;
  s.base = base;
  s.bytes = bytes;
  s.home = home;
  s.ordinal = allocs_.size();
  // Per-zone bump allocation is monotone, but zones interleave: keep the
  // vector sorted by base so attribution stays a binary search.
  auto it = std::upper_bound(allocs_.begin(), allocs_.end(), s,
                             [](const AllocSite& a, const AllocSite& b) {
                               return a.base < b.base;
                             });
  allocs_.insert(it, s);
}

void RaceDetector::on_message(int from, int to, int /*service*/, std::size_t /*bytes*/) {
  ++clock_msgs_;
  // A real implementation piggybacks the sender node's vector clock on every
  // protocol message: count (u32 entries header + one u64 per thread slot).
  const std::size_t entries = thread_vc_.empty() ? 0 : thread_vc_.size() - 1;
  clock_bytes_ += 4 + 8 * entries;
  const auto hi = static_cast<std::size_t>(std::max(from, to));
  if (hi >= node_vc_.size()) node_vc_.resize(hi + 1);
  // Bookkeeping join only — deliberately NOT a happens-before edge: update
  // application is protocol plumbing, not program synchronization, and an
  // edge here would mask exactly the races being hunted (docs/RACES.md).
  join_into(node_vc_[static_cast<std::size_t>(to)], node_vc_[static_cast<std::size_t>(from)]);
}

void RaceDetector::write_report(std::ostream& os) const {
  std::vector<RaceRecord> rows = races_;
  std::sort(rows.begin(), rows.end(), [](const RaceRecord& a, const RaceRecord& b) {
    if (a.addr != b.addr) return a.addr < b.addr;
    if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    if (a.tid_prev != b.tid_prev) return a.tid_prev < b.tid_prev;
    return a.tid_cur < b.tid_cur;
  });

  char line[256];
  std::snprintf(line, sizeof(line),
                "race report (granularity: %s)\n"
                "  races: %llu  accesses checked: %llu  benign suppressed: %llu\n"
                "  clock piggyback: %llu msgs, %llu bytes\n",
                race_gran_name(config_.gran), static_cast<unsigned long long>(rows.size()),
                static_cast<unsigned long long>(accesses_checked_),
                static_cast<unsigned long long>(benign_suppressed_),
                static_cast<unsigned long long>(clock_msgs_),
                static_cast<unsigned long long>(clock_bytes_));
  os << line;
  for (const RaceRecord& r : rows) {
    const AllocSite* site = alloc_of(r.addr);
    char attrib[64];
    if (site != nullptr) {
      std::snprintf(attrib, sizeof(attrib), "alloc #%llu+0x%llx home n%d",
                    static_cast<unsigned long long>(site->ordinal),
                    static_cast<unsigned long long>(r.addr - site->base), site->home);
    } else {
      std::snprintf(attrib, sizeof(attrib), "unattributed");
    }
    std::snprintf(line, sizeof(line),
                  "  addr 0x%08llx page %llu  %-11s  T%llu@n%d vs T%llu@n%d  size %u  "
                  "%s  first at %.3f us\n",
                  static_cast<unsigned long long>(r.addr),
                  static_cast<unsigned long long>(r.addr >> page_shift_),
                  race_kind_name(r.kind), static_cast<unsigned long long>(r.tid_prev),
                  r.node_prev, static_cast<unsigned long long>(r.tid_cur), r.node_cur,
                  r.size, attrib, to_micros(r.at));
    os << line;
  }
}

}  // namespace hyp::obs
