// Per-thread virtual-time phase accounting, aggregated per node.
//
// The paper argues from *where virtual time goes* (§4.3: faults vs in-line
// checks, communication growth with node count); this module splits every
// node's thread-time into four phases so that argument can be made from one
// report instead of from counter archaeology:
//
//   compute         — CPU cycles charged through CpuClock (app + protocol
//                     in-line costs), attributed when a thread finishes;
//   blocked_fetch   — waiting for a remote page (miss detection to install);
//   blocked_monitor — waiting for a monitor-enter grant (lock contention);
//   barrier         — waiting in Object.wait / thread join (the monitor-based
//                     barriers every §4.1 application is built from).
//
// Recording discipline (shared with Log2Histogram, see common/histogram.hpp):
// add() is pure accumulation into a preallocated table — no clock reads, no
// yields, no allocation — so an attached PhaseAccounting cannot shift virtual
// time. The Cluster holds an optional pointer; detached cost is one pointer
// test (Cluster::phase_add).
//
// Phases are wall-clock *thread* time, so with >1 thread per node the phase
// sum exceeds the node's elapsed time — that overlap is exactly what the
// ext_threads_per_node study measures.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/units.hpp"

namespace hyp::obs {

enum class Phase : int {
  kCompute = 0,
  kBlockedFetch,
  kBlockedMonitor,
  kBarrier,
  kCount_,
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount_);

const char* phase_name(Phase p);

class PhaseAccounting {
 public:
  // (Re)initializes for `nodes` nodes; all accumulators reset to zero. The
  // only allocating call — record-side add() touches preallocated slots.
  void init(int nodes) {
    per_node_.assign(static_cast<std::size_t>(nodes) * kPhaseCount, 0);
    nodes_ = nodes;
  }

  bool initialized() const { return nodes_ > 0; }
  int nodes() const { return nodes_; }

  void add(int node, Phase phase, TimeDelta dt) {
    per_node_[static_cast<std::size_t>(node) * kPhaseCount + static_cast<int>(phase)] += dt;
  }

  Time get(int node, Phase phase) const {
    return per_node_[static_cast<std::size_t>(node) * kPhaseCount + static_cast<int>(phase)];
  }

  Time total(Phase phase) const {
    Time t = 0;
    for (int n = 0; n < nodes_; ++n) t += get(n, phase);
    return t;
  }

  // Pretty per-node table with a totals row (virtual milliseconds).
  void write_report(std::ostream& os) const;

 private:
  int nodes_ = 0;
  std::vector<Time> per_node_;  // [node * kPhaseCount + phase]
};

}  // namespace hyp::obs
