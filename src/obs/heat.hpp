// Per-page protocol heat: fetches / faults / update-bytes by page.
//
// The §3.1 prefetch claim ("fetching a whole page prefetches the rest of its
// objects") and false sharing both live *below* the flat counters: a run with
// few fetches but one page absorbing most update traffic is a false-sharing
// run; a run whose fetches concentrate on consecutively allocated pages is
// the prefetch effect working. This table makes both visible per benchmark.
//
// Recording discipline: init() preallocates three flat arrays (one slot per
// page of the shared region); record_*() is a bounds check plus an indexed
// add — no allocation, no clock access, no perturbation of virtual time.
// DsmSystem holds an optional pointer; detached cost is one pointer test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

namespace hyp::obs {

class PageHeatTable {
 public:
  struct Row {
    std::uint64_t page = 0;
    std::uint64_t fetches = 0;
    std::uint64_t faults = 0;
    std::uint64_t update_bytes = 0;
  };

  // (Re)sizes for a region of `total_pages` pages and zeroes all heat. The
  // only allocating call; record_*() never allocates.
  void init(std::size_t total_pages, std::size_t page_bytes) {
    fetches_.assign(total_pages, 0);
    faults_.assign(total_pages, 0);
    update_bytes_.assign(total_pages, 0);
    page_bytes_ = page_bytes;
  }

  bool initialized() const { return !fetches_.empty(); }
  std::size_t total_pages() const { return fetches_.size(); }
  std::size_t page_bytes() const { return page_bytes_; }

  void record_fetch(std::uint64_t page) {
    if (page < fetches_.size()) ++fetches_[page];
  }
  void record_fault(std::uint64_t page) {
    if (page < faults_.size()) ++faults_[page];
  }
  void record_update(std::uint64_t page, std::uint64_t bytes) {
    if (page < update_bytes_.size()) update_bytes_[page] += bytes;
  }

  // Out-of-range pages read as 0 (mirroring the record_* guards): reading
  // heat after a region resize — or for a page id from a stale report — must
  // not index past the arrays.
  std::uint64_t fetches(std::uint64_t page) const {
    return page < fetches_.size() ? fetches_[page] : 0;
  }
  std::uint64_t faults(std::uint64_t page) const {
    return page < faults_.size() ? faults_[page] : 0;
  }
  std::uint64_t update_bytes(std::uint64_t page) const {
    return page < update_bytes_.size() ? update_bytes_[page] : 0;
  }

  // The `n` hottest pages, hottest first. Ordering: coherence events
  // (fetches + faults) descending, then update_bytes descending, then page
  // ascending — deterministic, so reports are diffable run-to-run. Pages
  // with zero activity are excluded (the table may return fewer than n).
  std::vector<Row> top(std::size_t n) const;

  // Pretty top-N report (plus a totals line) for terminal consumption.
  void write_report(std::ostream& os, std::size_t n) const;

 private:
  std::vector<std::uint64_t> fetches_;
  std::vector<std::uint64_t> faults_;
  std::vector<std::uint64_t> update_bytes_;
  std::size_t page_bytes_ = 0;
};

// Windowed per-page heat with epoch decay — the decision signal of the
// `hybrid` protocol (docs/PROTOCOLS.md §hybrid).
//
// The flat PageHeatTable above accumulates run totals; switching decisions
// must track *recent* behavior, so this table keeps per-page access and miss
// counters that halve once per elapsed epoch. The fold is lazy: each page
// carries the epoch its window was last touched in, and fold() shifts the
// decayed counters by the number of epochs that passed since — integer-only,
// so same-seed runs make byte-identical decisions.
//
// Hot-path discipline: the access fast paths bump raw_accesses()[page]
// directly (one indexed increment, host cost only — same contract as
// record_*); the raw tally is folded into the decayed window only on the
// miss cold path, where the switching decision is made anyway.
class WindowedHeat {
 public:
  void init(std::size_t total_pages) {
    raw_.assign(total_pages, 0);
    acc_.assign(total_pages, 0);
    miss_.assign(total_pages, 0);
    stamp_.assign(total_pages, 0);
  }

  std::size_t total_pages() const { return raw_.size(); }

  // Raw access tally, indexed by page; cached on the access fast path.
  std::uint64_t* raw_accesses() { return raw_.data(); }

  // Folds the raw tally into the decayed window, decaying both counters by
  // half per epoch elapsed since the page was last folded.
  void fold(std::uint64_t page, std::uint64_t epoch) {
    if (page >= raw_.size()) return;
    const std::uint64_t last = stamp_[page];
    if (epoch > last) {
      const std::uint64_t shift = epoch - last < 63 ? epoch - last : 63;
      acc_[page] >>= shift;
      miss_[page] >>= shift;
      stamp_[page] = epoch;
    }
    acc_[page] += raw_[page];
    raw_[page] = 0;
  }

  void note_miss(std::uint64_t page, std::uint64_t epoch) {
    fold(page, epoch);
    if (page < miss_.size()) ++miss_[page];
  }

  std::uint64_t accesses(std::uint64_t page) const {
    return page < acc_.size() ? acc_[page] : 0;
  }
  std::uint64_t misses(std::uint64_t page) const {
    return page < miss_.size() ? miss_[page] : 0;
  }

 private:
  std::vector<std::uint64_t> raw_;    // accesses since the last fold
  std::vector<std::uint64_t> acc_;    // decayed access window
  std::vector<std::uint64_t> miss_;   // decayed miss window
  std::vector<std::uint64_t> stamp_;  // epoch of the last fold, per page
};

}  // namespace hyp::obs
