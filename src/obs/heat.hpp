// Per-page protocol heat: fetches / faults / update-bytes by page.
//
// The §3.1 prefetch claim ("fetching a whole page prefetches the rest of its
// objects") and false sharing both live *below* the flat counters: a run with
// few fetches but one page absorbing most update traffic is a false-sharing
// run; a run whose fetches concentrate on consecutively allocated pages is
// the prefetch effect working. This table makes both visible per benchmark.
//
// Recording discipline: init() preallocates three flat arrays (one slot per
// page of the shared region); record_*() is a bounds check plus an indexed
// add — no allocation, no clock access, no perturbation of virtual time.
// DsmSystem holds an optional pointer; detached cost is one pointer test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

namespace hyp::obs {

class PageHeatTable {
 public:
  struct Row {
    std::uint64_t page = 0;
    std::uint64_t fetches = 0;
    std::uint64_t faults = 0;
    std::uint64_t update_bytes = 0;
  };

  // (Re)sizes for a region of `total_pages` pages and zeroes all heat. The
  // only allocating call; record_*() never allocates.
  void init(std::size_t total_pages, std::size_t page_bytes) {
    fetches_.assign(total_pages, 0);
    faults_.assign(total_pages, 0);
    update_bytes_.assign(total_pages, 0);
    page_bytes_ = page_bytes;
  }

  bool initialized() const { return !fetches_.empty(); }
  std::size_t total_pages() const { return fetches_.size(); }
  std::size_t page_bytes() const { return page_bytes_; }

  void record_fetch(std::uint64_t page) {
    if (page < fetches_.size()) ++fetches_[page];
  }
  void record_fault(std::uint64_t page) {
    if (page < faults_.size()) ++faults_[page];
  }
  void record_update(std::uint64_t page, std::uint64_t bytes) {
    if (page < update_bytes_.size()) update_bytes_[page] += bytes;
  }

  std::uint64_t fetches(std::uint64_t page) const { return fetches_[page]; }
  std::uint64_t faults(std::uint64_t page) const { return faults_[page]; }
  std::uint64_t update_bytes(std::uint64_t page) const { return update_bytes_[page]; }

  // The `n` hottest pages, hottest first. Ordering: coherence events
  // (fetches + faults) descending, then update_bytes descending, then page
  // ascending — deterministic, so reports are diffable run-to-run. Pages
  // with zero activity are excluded (the table may return fewer than n).
  std::vector<Row> top(std::size_t n) const;

  // Pretty top-N report (plus a totals line) for terminal consumption.
  void write_report(std::ostream& os, std::size_t n) const;

 private:
  std::vector<std::uint64_t> fetches_;
  std::vector<std::uint64_t> faults_;
  std::vector<std::uint64_t> update_bytes_;
  std::size_t page_bytes_ = 0;
};

}  // namespace hyp::obs
