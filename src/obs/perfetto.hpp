// Perfetto / Chrome trace_events JSON export for TraceLog.
//
// Converts the protocol event log into the Chrome trace-event JSON format
// (the `traceEvents` array form), directly openable in ui.perfetto.dev or
// chrome://tracing. Layout:
//
//   - one "process" per cluster node (pid = node id, named "node N");
//   - tid 0 "protocol": every raw TraceLog event as an instant, with its
//     payload decoded into named args (page/home/object/thread/bytes/...);
//   - tid = thread uid: "monitor_acquire" duration slices derived by pairing
//     kMonitorEnter with kMonitorAcquired (same node, object, uid) — lock
//     contention becomes visible as slice width;
//   - tid 999 "dsm fetch": "page_fetch" duration slices derived by pairing
//     kPageFault with the kPageFetch that services it (same node, page) —
//     java_pf remote-object detection latency as slice width. java_ic runs
//     have no fault events, so they produce instants only.
//
// Timestamps are virtual microseconds with picosecond fractions, printed
// with fixed-width integer arithmetic: the same TraceLog always serializes
// to byte-identical JSON (pinned by tests/goldens/perfetto_golden.json).
// The drop count (total and per kind) is always emitted in `otherData` so a
// saturated trace is never mistaken for a quiet run.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "cluster/trace.hpp"

namespace hyp::obs {

struct PerfettoOptions {
  bool derive_slices = true;  // emit the paired duration slices
};

void write_perfetto_trace(std::ostream& os, const cluster::TraceLog& log,
                          const PerfettoOptions& opts = {});

// Incremental writer for TraceLog's double-buffered sink mode (--trace-out
// with --trace-stream): the JSON header goes out up front, each drained
// buffer appends its events immediately (so memory stays bounded by the two
// log buffers however long the run), and finish() closes the file with the
// run totals. Track metadata is emitted lazily, the first time a node or
// java thread appears; `otherData` trails the event array (its counts are
// only known at the end). The one-shot write_perfetto_trace above is
// untouched byte-for-byte — tests/goldens/perfetto_golden.json pins it.
class PerfettoStreamWriter {
 public:
  explicit PerfettoStreamWriter(std::ostream& os, PerfettoOptions opts = {});
  ~PerfettoStreamWriter();
  PerfettoStreamWriter(const PerfettoStreamWriter&) = delete;
  PerfettoStreamWriter& operator=(const PerfettoStreamWriter&) = delete;

  // Sink target for TraceLog::set_sink: appends one drained buffer.
  void consume(const std::vector<cluster::TraceEvent>& batch);

  // Closes the JSON (call TraceLog::flush_sink() first so the tail buffer
  // has been consumed). `log` supplies the drop counters for `otherData` —
  // necessarily 0 in streaming mode, but emitted so consumers can assert it.
  void finish(const cluster::TraceLog& log);

  std::uint64_t events_written() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hyp::obs
