// Run-metrics JSON export: counters + histograms + page heat + phases.
//
// One `--metrics-out FILE` per bench binary (bench/fig_common wires the
// flag) produces a machine-readable record of every experiment point:
//
//   {"schema":"hyp-metrics-v1","tool":"fig2","points":[ {...}, ... ]}
//
// Each point carries the identifying labels (cluster/protocol/nodes or a
// free-form label for the ablation tools), the elapsed virtual time and
// result value, every nonzero Stats counter, the log2 histograms (nonzero
// buckets as [lower, upper) ranges), the hottest pages, the per-node phase
// split, and — when a trace was attached — the trace drop accounting, so a
// truncated trace can never silently masquerade as a complete one.
//
// All numeric output is integer or fixed-precision, making files diffable
// across runs of a deterministic simulation.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/heat.hpp"
#include "obs/phase.hpp"

namespace hyp::obs {

struct MetricsPoint {
  // Identity (empty/-1 fields are omitted from the JSON).
  std::string cluster;
  std::string protocol;
  int nodes = -1;
  std::string label;  // free-form (ablation axis value, workload name, ...)

  // Results.
  Time elapsed = 0;
  double value = 0;
  bool has_value = false;
  Stats stats;

  // Optional sections.
  bool has_heat = false;
  std::size_t heat_page_bytes = 0;
  std::vector<PageHeatTable::Row> heat_top;

  bool has_phases = false;
  int phase_nodes = 0;
  std::vector<std::uint64_t> phases;  // [node * kPhaseCount + phase]

  bool has_trace = false;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  std::map<std::string, std::uint64_t> trace_dropped_by_kind;

  // Measurement window (open-loop benches, docs/SERVING.md): the span of
  // virtual time whose ops were *included* in the latency histograms, after
  // warmup/cooldown exclusion, plus how many ops fell outside it. Off by
  // default — batch figures never set it, so their JSON is byte-unchanged.
  bool has_window = false;
  Time window_start = 0;
  Time window_end = 0;
  std::uint64_t window_excluded_ops = 0;

  // Host-side measurements (bench/sweep_scale): wall clock, engine event
  // throughput and the process peak RSS after the point ran. ru_maxrss is a
  // process-lifetime high-water mark, so a sweep that wants per-point
  // meaning must run its points in ascending cost order.
  bool has_host = false;
  double host_wall_s = 0;
  std::uint64_t host_events = 0;
  std::uint64_t host_events_per_sec = 0;
  std::uint64_t host_peak_rss_kb = 0;
};

// Snapshot helpers for the optional sections.
void fill_heat(MetricsPoint& mp, const PageHeatTable& heat, std::size_t top_n);
void fill_phases(MetricsPoint& mp, const PhaseAccounting& phases);

void write_metrics_json(std::ostream& os, const std::string& tool,
                        const std::vector<MetricsPoint>& points);

}  // namespace hyp::obs
