#include "obs/perfetto.hpp"

#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

namespace hyp::obs {

namespace {

using cluster::TraceEvent;
using cluster::TraceKind;
using cluster::TraceLog;

// tid hosting the derived page-fetch slices (clear of real thread uids,
// which are small dense integers).
constexpr int kFetchTid = 999;

// tid hosting the derived serve-op slices (one track per client node).
constexpr int kServeTid = 998;

// ts in virtual microseconds with picosecond fraction, integer arithmetic
// only: byte-stable across platforms/compilers.
std::string format_ts(Time at) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64, at / kMicrosecond,
                at % kMicrosecond);
  return buf;
}

// Decoded args for one raw event, as a ready-to-embed JSON object body.
std::string event_args(const TraceEvent& e) {
  char buf[96];
  const auto a = static_cast<long long>(e.a);
  const auto b = static_cast<long long>(e.b);
  switch (e.kind) {
    case TraceKind::kPageFetch:
      std::snprintf(buf, sizeof(buf), "{\"page\":%lld,\"home\":%lld}", a, b);
      break;
    case TraceKind::kPageFault:
      std::snprintf(buf, sizeof(buf), "{\"page\":%lld}", a);
      break;
    case TraceKind::kInvalidate:
      std::snprintf(buf, sizeof(buf), "{\"pages\":%lld}", a);
      break;
    case TraceKind::kUpdateSent:
      std::snprintf(buf, sizeof(buf), "{\"home\":%lld,\"bytes\":%lld}", a, b);
      break;
    case TraceKind::kMonitorEnter:
    case TraceKind::kMonitorExit:
    case TraceKind::kMonitorWait:
    case TraceKind::kMonitorAcquired:
      std::snprintf(buf, sizeof(buf), "{\"object\":%lld,\"thread\":%lld}", a, b);
      break;
    case TraceKind::kMonitorNotify:
      std::snprintf(buf, sizeof(buf), "{\"object\":%lld,\"all\":%lld}", a, b);
      break;
    case TraceKind::kThreadStart:
      std::snprintf(buf, sizeof(buf), "{\"thread\":%lld}", a);
      break;
    case TraceKind::kThreadMigrate:
      std::snprintf(buf, sizeof(buf), "{\"from\":%lld,\"to\":%lld}", a, b);
      break;
    case TraceKind::kUpdateApplied:
      std::snprintf(buf, sizeof(buf), "{\"src\":%lld,\"bytes\":%lld}", a, b);
      break;
    case TraceKind::kNetDrop:
    case TraceKind::kRetransmit:
      std::snprintf(buf, sizeof(buf), "{\"dst\":%lld,\"seq\":%lld}", a, b);
      break;
    case TraceKind::kDupSuppressed:
      std::snprintf(buf, sizeof(buf), "{\"src\":%lld,\"seq\":%lld}", a, b);
      break;
    case TraceKind::kRpcTimeout:
      std::snprintf(buf, sizeof(buf), "{\"peer\":%lld,\"service\":%lld}", a, b);
      break;
    case TraceKind::kNodeCrash:
      std::snprintf(buf, sizeof(buf), "{\"restart_us\":%lld}", a);
      break;
    case TraceKind::kNodeRestart:
    case TraceKind::kHaRejoined:
      std::snprintf(buf, sizeof(buf), "{\"epoch\":%lld}", a);
      break;
    case TraceKind::kHaSuspected:
    case TraceKind::kHaDeadConfirmed:
      std::snprintf(buf, sizeof(buf), "{\"peer\":%lld,\"silence_us\":%lld}", a, b);
      break;
    case TraceKind::kHomePromoted:
      std::snprintf(buf, sizeof(buf), "{\"dead\":%lld,\"zone_bytes\":%lld}", a, b);
      break;
    case TraceKind::kEpochBump:
      std::snprintf(buf, sizeof(buf), "{\"epoch\":%lld,\"dead\":%lld}", a, b);
      break;
    case TraceKind::kHaNack:
      std::snprintf(buf, sizeof(buf), "{\"from\":%lld,\"service\":%lld}", a, b);
      break;
    case TraceKind::kCheckpoint:
      std::snprintf(buf, sizeof(buf), "{\"backup\":%lld,\"bytes\":%lld}", a, b);
      break;
    case TraceKind::kCheckpointApplied:
      std::snprintf(buf, sizeof(buf), "{\"origin\":%lld,\"bytes\":%lld}", a, b);
      break;
    case TraceKind::kRaceDetected:
      // b packs (tid_prev << 34) | (tid_cur << 4) | kind (obs/race.cpp).
      std::snprintf(buf, sizeof(buf),
                    "{\"addr\":%lld,\"tid_prev\":%lld,\"tid_cur\":%lld,\"kind\":%lld}", a,
                    static_cast<long long>(b >> 34),
                    static_cast<long long>((b >> 4) & 0x3fffffff),
                    static_cast<long long>(b & 0xf));
      break;
    case TraceKind::kHaPartition:
      std::snprintf(buf, sizeof(buf), "{\"open\":%lld,\"window\":%lld}", a, b);
      break;
    case TraceKind::kHaFencedReject:
      std::snprintf(buf, sizeof(buf), "{\"stale_epoch\":%lld,\"service\":%lld}", a, b);
      break;
    case TraceKind::kHaQuorumRead:
      std::snprintf(buf, sizeof(buf), "{\"page\":%lld,\"backup\":%lld}", a, b);
      break;
    case TraceKind::kServeOp:
      // b packs (latency_ps << 1) | is_update (src/serve/serve.cpp).
      std::snprintf(buf, sizeof(buf),
                    "{\"key\":%lld,\"latency_ps\":%lld,\"update\":%lld}", a,
                    static_cast<long long>(b >> 1),
                    static_cast<long long>(b & 1));
      break;
    case TraceKind::kModeSwitch:
      std::snprintf(buf, sizeof(buf), "{\"page\":%lld,\"to_ic\":%lld}", a, b);
      break;
    case TraceKind::kHomeMigrated:
      std::snprintf(buf, sizeof(buf), "{\"page\":%lld,\"new_home\":%lld}", a, b);
      break;
    default:
      std::snprintf(buf, sizeof(buf), "{\"a\":%lld,\"b\":%lld}", a, b);
      break;
  }
  return buf;
}

const char* event_category(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPageFetch:
    case TraceKind::kPageFault:
    case TraceKind::kInvalidate:
    case TraceKind::kUpdateSent:
    case TraceKind::kUpdateApplied:
    case TraceKind::kModeSwitch:
    case TraceKind::kHomeMigrated:
      return "dsm";
    case TraceKind::kNetDrop:
    case TraceKind::kDupSuppressed:
    case TraceKind::kRetransmit:
    case TraceKind::kRpcTimeout:
      return "fault";
    case TraceKind::kMonitorEnter:
    case TraceKind::kMonitorExit:
    case TraceKind::kMonitorWait:
    case TraceKind::kMonitorNotify:
    case TraceKind::kMonitorAcquired:
      return "monitor";
    case TraceKind::kThreadStart:
    case TraceKind::kThreadMigrate:
      return "thread";
    case TraceKind::kNodeCrash:
    case TraceKind::kNodeRestart:
    case TraceKind::kHaSuspected:
    case TraceKind::kHaDeadConfirmed:
    case TraceKind::kHomePromoted:
    case TraceKind::kEpochBump:
    case TraceKind::kHaRejoined:
    case TraceKind::kHaNack:
    case TraceKind::kCheckpoint:
    case TraceKind::kCheckpointApplied:
    case TraceKind::kHaPartition:
    case TraceKind::kHaFencedReject:
    case TraceKind::kHaQuorumRead:
      return "ha";
    case TraceKind::kRaceDetected:
      return "race";
    case TraceKind::kServeOp:
      return "serve";
  }
  return "protocol";
}

class Emitter {
 public:
  explicit Emitter(std::ostream& os) : os_(os) {}

  void raw(const std::string& json_object) {
    os_ << (first_ ? "\n  " : ",\n  ") << json_object;
    first_ = false;
  }

  void metadata(int pid, int tid, const char* what, const std::string& name) {
    char buf[160];
    if (tid < 0) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}",
                    what, pid, name.c_str());
    } else {
      std::snprintf(
          buf, sizeof(buf),
          "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
          what, pid, tid, name.c_str());
    }
    raw(buf);
  }

  void instant(const TraceEvent& e) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,"
                  "\"pid\":%d,\"tid\":0,\"args\":%s}",
                  trace_kind_name(e.kind), event_category(e.kind),
                  format_ts(e.at).c_str(), e.node, event_args(e).c_str());
    raw(buf);
  }

  void slice(const char* name, const char* cat, Time begin, Time end, int pid, int tid,
             const std::string& args) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,"
                  "\"pid\":%d,\"tid\":%d,\"args\":%s}",
                  name, cat, format_ts(begin).c_str(), format_ts(end - begin).c_str(), pid,
                  tid, args.c_str());
    raw(buf);
  }

  // Counter track sample (ph "C"): one numeric series per (pid, name).
  void counter(const char* name, Time at, int pid, const char* series,
               std::int64_t value) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%s,\"pid\":%d,"
                  "\"args\":{\"%s\":%lld}}",
                  name, format_ts(at).c_str(), pid, series,
                  static_cast<long long>(value));
    raw(buf);
  }

  // Flow event endpoints (ph "s"/"f"): an arrow from the sender's track to
  // the receiver's track with a shared numeric id. The finish carries
  // bp:"e" so Perfetto binds it to the enclosing instant/slice.
  void flow(const char* name, const char* cat, char phase, std::uint64_t id, Time at, int pid,
            int tid) {
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",%s\"id\":%" PRIu64
                  ",\"ts\":%s,\"pid\":%d,\"tid\":%d}",
                  name, cat, phase, phase == 'f' ? "\"bp\":\"e\"," : "", id,
                  format_ts(at).c_str(), pid, tid);
    raw(buf);
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void write_perfetto_trace(std::ostream& os, const TraceLog& log, const PerfettoOptions& opts) {
  os << "{\"displayTimeUnit\":\"ns\",\n\"otherData\":{";
  os << "\"generator\":\"hyperion-repro obs (virtual time)\"";
  os << ",\"events_recorded\":" << log.events().size();
  os << ",\"trace_dropped\":" << log.dropped();
  {
    bool any = false;
    for (int k = 0; k < cluster::kTraceKindCount; ++k) {
      const auto kind = static_cast<TraceKind>(k);
      if (log.dropped(kind) == 0) continue;
      os << (any ? "," : ",\"trace_dropped_by_kind\":{");
      os << '"' << trace_kind_name(kind) << "\":" << log.dropped(kind);
      any = true;
    }
    if (any) os << '}';
  }
  os << "},\n\"traceEvents\":[";

  Emitter emit(os);

  // --- track metadata -------------------------------------------------------
  std::set<int> nodes;
  std::set<std::pair<int, std::int64_t>> monitor_threads;  // (node, uid)
  bool any_fault = false;
  bool any_serve = false;
  for (const TraceEvent& e : log.events()) {
    nodes.insert(e.node);
    if (e.kind == TraceKind::kPageFault) any_fault = true;
    if (e.kind == TraceKind::kServeOp) any_serve = true;
    if (e.kind == TraceKind::kMonitorEnter || e.kind == TraceKind::kMonitorAcquired) {
      monitor_threads.insert({e.node, e.b});
    }
  }
  for (int n : nodes) {
    emit.metadata(n, -1, "process_name", "node " + std::to_string(n));
    emit.metadata(n, 0, "thread_name", "protocol events");
    if (opts.derive_slices && any_fault) {
      emit.metadata(n, kFetchTid, "thread_name", "dsm fetch");
    }
    if (opts.derive_slices && any_serve) {
      emit.metadata(n, kServeTid, "thread_name", "serve ops");
    }
  }
  if (opts.derive_slices) {
    for (const auto& [node, uid] : monitor_threads) {
      emit.metadata(node, static_cast<int>(uid), "thread_name",
                    "java thread " + std::to_string(uid));
    }
  }

  // --- instants + derived slices, in event order ----------------------------
  // page_fetch slice: last unmatched kPageFault on (node, page) -> kPageFetch.
  // monitor_acquire slice: kMonitorEnter -> kMonitorAcquired on
  // (node, object, uid).
  // update_flow arrows: each kUpdateSent on node S toward home H opens a flow
  // that the next kUpdateApplied on H from S closes. The cluster's per-pair
  // delivery is FIFO in virtual time, so a per-(src,home) id queue pairs them
  // exactly; an unmatched tail (trace capacity cut) simply leaves open flows.
  std::map<std::pair<int, int>, std::deque<std::uint64_t>> update_flows;
  std::uint64_t next_flow_id = 1;
  std::map<std::pair<int, std::int64_t>, Time> pending_fault;
  std::map<std::tuple<int, std::int64_t, std::int64_t>, Time> pending_enter;
  for (const TraceEvent& e : log.events()) {
    emit.instant(e);
    // Epoch counter track: every kEpochBump bumps the cluster-wide routing
    // epoch; a "C" sample on the promoting node's process makes the step
    // visible as a staircase. HA-off runs record no such events, so the
    // golden trace is unaffected.
    if (e.kind == TraceKind::kEpochBump) {
      emit.counter("cluster_epoch", e.at, e.node, "epoch", e.a);
    }
    if (!opts.derive_slices) continue;
    // node_down slice: kNodeCrash carries the scheduled restart time, so the
    // whole outage window is known at crash time.
    if (e.kind == TraceKind::kNodeCrash && e.a > 0) {
      const Time up_at = static_cast<Time>(e.a) * kMicrosecond;
      if (up_at > e.at) {
        emit.slice("node_down", "ha", e.at, up_at, e.node, 0, event_args(e));
      }
    }
    if (e.kind == TraceKind::kUpdateSent) {
      const std::uint64_t id = next_flow_id++;
      update_flows[{e.node, static_cast<int>(e.a)}].push_back(id);
      emit.flow("update_flow", "dsm", 's', id, e.at, e.node, 0);
    } else if (e.kind == TraceKind::kUpdateApplied) {
      auto it = update_flows.find({static_cast<int>(e.a), e.node});
      if (it != update_flows.end() && !it->second.empty()) {
        const std::uint64_t id = it->second.front();
        it->second.pop_front();
        emit.flow("update_flow", "dsm", 'f', id, e.at, e.node, 0);
      }
    }
    switch (e.kind) {
      case TraceKind::kPageFault:
        pending_fault[{e.node, e.a}] = e.at;
        break;
      case TraceKind::kPageFetch: {
        auto it = pending_fault.find({e.node, e.a});
        if (it != pending_fault.end()) {
          emit.slice("page_fetch", "dsm", it->second, e.at, e.node, kFetchTid,
                     event_args(e));
          pending_fault.erase(it);
        }
        break;
      }
      case TraceKind::kMonitorEnter:
        pending_enter[{e.node, e.a, e.b}] = e.at;
        break;
      case TraceKind::kMonitorAcquired: {
        auto it = pending_enter.find({e.node, e.a, e.b});
        if (it != pending_enter.end()) {
          emit.slice("monitor_acquire", "monitor", it->second, e.at, e.node,
                     static_cast<int>(e.b), event_args(e));
          pending_enter.erase(it);
        }
        break;
      }
      case TraceKind::kServeOp: {
        // Retrospective: the completion event carries the open-loop latency,
        // so the [scheduled arrival, completion] span is known here.
        const Time latency = static_cast<Time>(e.b >> 1);
        const Time begin = latency > e.at ? Time{0} : e.at - latency;
        emit.slice((e.b & 1) ? "serve_put" : "serve_get", "serve", begin, e.at,
                   e.node, kServeTid, event_args(e));
        break;
      }
      default:
        break;
    }
  }

  os << "\n]}\n";
}

// ---------------------------------------------------------------------------
// PerfettoStreamWriter

struct PerfettoStreamWriter::Impl {
  Impl(std::ostream& out, PerfettoOptions options) : os(out), opts(options), emit(out) {
    out << "{\"displayTimeUnit\":\"ns\",\n\"traceEvents\":[";
  }

  // Lazily announces tracks the one-shot writer pre-scans for: process/
  // protocol-track names on first sight of a node, fetch/java-thread tracks
  // on first sight of the events that populate them.
  void ensure_node(int node) {
    if (!nodes_seen.insert(node).second) return;
    emit.metadata(node, -1, "process_name", "node " + std::to_string(node));
    emit.metadata(node, 0, "thread_name", "protocol events");
  }
  void ensure_fetch_track(int node) {
    if (!fetch_tracks_seen.insert(node).second) return;
    emit.metadata(node, kFetchTid, "thread_name", "dsm fetch");
  }
  void ensure_serve_track(int node) {
    if (!serve_tracks_seen.insert(node).second) return;
    emit.metadata(node, kServeTid, "thread_name", "serve ops");
  }
  void ensure_java_thread(int node, std::int64_t uid) {
    if (!monitor_threads_seen.insert({node, uid}).second) return;
    emit.metadata(node, static_cast<int>(uid), "thread_name",
                  "java thread " + std::to_string(uid));
  }

  void consume_one(const TraceEvent& e) {
    ensure_node(e.node);
    emit.instant(e);
    ++events_written;
    if (e.kind == TraceKind::kEpochBump) {
      emit.counter("cluster_epoch", e.at, e.node, "epoch", e.a);
    }
    if (!opts.derive_slices) return;
    if (e.kind == TraceKind::kNodeCrash && e.a > 0) {
      const Time up_at = static_cast<Time>(e.a) * kMicrosecond;
      if (up_at > e.at) {
        emit.slice("node_down", "ha", e.at, up_at, e.node, 0, event_args(e));
      }
    }
    if (e.kind == TraceKind::kUpdateSent) {
      const std::uint64_t id = next_flow_id++;
      update_flows[{e.node, static_cast<int>(e.a)}].push_back(id);
      emit.flow("update_flow", "dsm", 's', id, e.at, e.node, 0);
    } else if (e.kind == TraceKind::kUpdateApplied) {
      auto it = update_flows.find({static_cast<int>(e.a), e.node});
      if (it != update_flows.end() && !it->second.empty()) {
        const std::uint64_t id = it->second.front();
        it->second.pop_front();
        emit.flow("update_flow", "dsm", 'f', id, e.at, e.node, 0);
      }
    }
    switch (e.kind) {
      case TraceKind::kPageFault:
        pending_fault[{e.node, e.a}] = e.at;
        break;
      case TraceKind::kPageFetch: {
        auto it = pending_fault.find({e.node, e.a});
        if (it != pending_fault.end()) {
          ensure_fetch_track(e.node);
          emit.slice("page_fetch", "dsm", it->second, e.at, e.node, kFetchTid,
                     event_args(e));
          pending_fault.erase(it);
        }
        break;
      }
      case TraceKind::kMonitorEnter:
        pending_enter[{e.node, e.a, e.b}] = e.at;
        ensure_java_thread(e.node, e.b);
        break;
      case TraceKind::kMonitorAcquired: {
        ensure_java_thread(e.node, e.b);
        auto it = pending_enter.find({e.node, e.a, e.b});
        if (it != pending_enter.end()) {
          emit.slice("monitor_acquire", "monitor", it->second, e.at, e.node,
                     static_cast<int>(e.b), event_args(e));
          pending_enter.erase(it);
        }
        break;
      }
      case TraceKind::kServeOp: {
        ensure_serve_track(e.node);
        const Time latency = static_cast<Time>(e.b >> 1);
        const Time begin = latency > e.at ? Time{0} : e.at - latency;
        emit.slice((e.b & 1) ? "serve_put" : "serve_get", "serve", begin, e.at,
                   e.node, kServeTid, event_args(e));
        break;
      }
      default:
        break;
    }
  }

  std::ostream& os;
  PerfettoOptions opts;
  Emitter emit;
  bool finished = false;
  std::uint64_t events_written = 0;
  std::set<int> nodes_seen;
  std::set<int> fetch_tracks_seen;
  std::set<int> serve_tracks_seen;
  std::set<std::pair<int, std::int64_t>> monitor_threads_seen;
  std::map<std::pair<int, int>, std::deque<std::uint64_t>> update_flows;
  std::uint64_t next_flow_id = 1;
  std::map<std::pair<int, std::int64_t>, Time> pending_fault;
  std::map<std::tuple<int, std::int64_t, std::int64_t>, Time> pending_enter;
};

PerfettoStreamWriter::PerfettoStreamWriter(std::ostream& os, PerfettoOptions opts)
    : impl_(std::make_unique<Impl>(os, opts)) {}

PerfettoStreamWriter::~PerfettoStreamWriter() = default;

void PerfettoStreamWriter::consume(const std::vector<TraceEvent>& batch) {
  for (const TraceEvent& e : batch) impl_->consume_one(e);
}

void PerfettoStreamWriter::finish(const TraceLog& log) {
  if (impl_->finished) return;
  impl_->finished = true;
  std::ostream& os = impl_->os;
  os << "\n],\n\"otherData\":{";
  os << "\"generator\":\"hyperion-repro obs (virtual time, streamed)\"";
  os << ",\"events_recorded\":" << impl_->events_written;
  os << ",\"trace_dropped\":" << log.dropped();
  os << "}}\n";
}

std::uint64_t PerfettoStreamWriter::events_written() const { return impl_->events_written; }

}  // namespace hyp::obs
