// Vector-clock data-race detection over the DSM (docs/RACES.md).
//
// The paper's two detection mechanisms already materialize exactly what a
// race detector needs — java_ic records every non-home store field-by-field
// in a write log, java_pf's twin diffs recover modified words page-by-page —
// and the JMM consistency actions (monitor enter/exit/wait, thread
// start/join) are the *only* sources of happens-before order a cluster Java
// program has. This detector reproduces the classic FastTrack shape on top
// of that structure (see PAPERS.md, arXiv:1101.4193):
//
//   - one vector clock per Java thread, indexed by DSM thread uid;
//   - one vector clock per monitor object: acquire joins it into the
//     acquirer, release stores the releaser's clock and advances its epoch;
//   - Thread.start/join carry fork/join edges through snapshot tokens;
//   - every get/put is checked against the accessed cell's last-writer epoch
//     and read clocks — at field granularity (exact address, what the
//     java_ic write log sees) or page granularity (address >> page_shift,
//     what a java_pf twin diff can attribute).
//
// DSM update application and message delivery deliberately do NOT create
// happens-before edges: the home applying a flushed write is an artifact of
// the consistency protocol, not of program synchronization, and treating it
// as an edge would mask exactly the races the detector exists to find. The
// per-node clocks joined at message delivery are pure piggyback-cost
// bookkeeping (how many clock bytes a real implementation would ship).
//
// Attachment discipline matches heat/phases/trace: the detector only ever
// accumulates — no clock access, no sleeps, no messages — so attaching it
// cannot change the virtual time or the answers of a run, and the report of
// a seeded run is byte-identical run-to-run (the simulation is
// deterministic and report rows are sorted).
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "cluster/race_hooks.hpp"
#include "common/units.hpp"

namespace hyp::cluster {
class Cluster;
}

namespace hyp::obs {

// Detection granularity: field = the exact accessed address (java_ic
// write-log precision); page = the containing page (the most a java_pf twin
// diff can pin down; false sharing shows up as page-granularity conflicts).
enum class RaceGran : std::uint8_t { kField = 0, kPage };

const char* race_gran_name(RaceGran g);

// Parsed form of --race-detect. Grammar (docs/RACES.md):
//   on|off[,racegran=field|page]
struct RaceConfig {
  bool enabled = false;
  RaceGran gran = RaceGran::kField;

  // Parses a spec string; malformed input prints a diagnostic naming the
  // offending token (plus the grammar) to stderr and exits with status 2 —
  // same contract as FaultProfile::parse (cluster/params.cpp).
  static RaceConfig parse(const std::string& spec);
  std::string to_string() const;
};

// One detected (deduplicated) race. `prev`/`cur` name the two conflicting
// accesses: prev is the access recorded in the cell state, cur the access
// that found it unordered.
struct RaceRecord {
  enum class Kind : std::uint8_t {
    kWriteWrite = 0,  // prev write vs cur write
    kReadWrite,       // prev read  vs cur write
    kWriteRead,       // prev write vs cur read
  };

  std::uint64_t addr = 0;  // representative conflicting address (first seen)
  std::uint64_t key = 0;   // dedup key: addr (field) or page id (page gran)
  Kind kind = Kind::kWriteWrite;
  std::uint64_t tid_prev = 0;
  std::uint64_t tid_cur = 0;
  int node_prev = -1;
  int node_cur = -1;
  unsigned size = 0;  // access width of the detecting access
  Time at = 0;        // virtual time of first detection
};

const char* race_kind_name(RaceRecord::Kind k);

class RaceDetector : public cluster::RaceHooks {
 public:
  explicit RaceDetector(RaceConfig config) : config_(config) {}

  const RaceConfig& config() const { return config_; }

  // Binds the detector to a run: the cluster (trace events + node stats)
  // and the region's page shift (page-granularity keys). Resets all state,
  // so one detector object can observe several runs in sequence.
  void begin_run(cluster::Cluster* cluster, unsigned page_shift);

  // --- thread lifecycle (tids are DSM thread uids, dense from 1) -----------
  void register_thread(std::uint64_t tid, int node);
  void set_thread_node(std::uint64_t tid, int node);  // migration

  // Thread.start(): the parent snapshots its clock into a token the child
  // adopts (the fork edge), then advances its own epoch.
  std::uint64_t prepare_fork(std::uint64_t parent_tid);
  void adopt_fork(std::uint64_t token, std::uint64_t child_tid);

  // Thread termination publishes the final clock under the thread's fork
  // token; join() joins it into the joining thread (the join edge).
  void thread_exit(std::uint64_t token, std::uint64_t tid);
  void join(std::uint64_t joiner_tid, std::uint64_t token);

  // --- happens-before edges from monitors ----------------------------------
  void lock_acquire(std::uint64_t tid, std::uint64_t obj);
  void lock_release(std::uint64_t tid, std::uint64_t obj);

  // --- access checks (the hot path; pure accumulation) ---------------------
  void on_read(std::uint64_t tid, std::uint64_t addr, unsigned size);
  void on_write(std::uint64_t tid, std::uint64_t addr, unsigned size);

  // --- annotations and attribution -----------------------------------------
  // Declares [begin, end) a deliberate benign race (e.g. TSP's stale
  // best-bound reads, §4.1): conflicts there are tallied, not reported.
  void mark_benign(std::uint64_t begin, std::uint64_t end);
  // Records an allocation for report attribution ("alloc #12 +0x40").
  void note_alloc(int home, std::uint64_t base, std::uint64_t bytes);

  // --- cluster::RaceHooks ---------------------------------------------------
  void on_message(int from, int to, int service, std::size_t bytes) override;

  // --- results --------------------------------------------------------------
  std::uint64_t races() const { return static_cast<std::uint64_t>(races_.size()); }
  const std::vector<RaceRecord>& race_records() const { return races_; }
  std::uint64_t accesses_checked() const { return accesses_checked_; }
  std::uint64_t benign_suppressed() const { return benign_suppressed_; }
  std::uint64_t clock_msgs() const { return clock_msgs_; }
  std::uint64_t clock_bytes() const { return clock_bytes_; }

  // The human-readable --race-out table: a fixed header (config + tallies)
  // followed by one row per race, sorted by (addr, kind, tids) — byte-
  // identical for identical seeded runs.
  void write_report(std::ostream& os) const;

 private:
  using Vc = std::vector<std::uint64_t>;  // indexed by tid

  struct CellState {
    std::uint64_t w_tid = 0;
    std::uint64_t w_clk = 0;  // 0 = never written
    unsigned w_size = 0;
    Vc reads;  // reads[tid] = reader's epoch at its last read (0 = none)
  };

  struct AllocSite {
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
    int home = -1;
    std::uint64_t ordinal = 0;
  };

  std::uint64_t key_of(std::uint64_t addr) const {
    return config_.gran == RaceGran::kField ? addr : addr >> page_shift_;
  }
  Vc& clock_of(std::uint64_t tid);
  static void join_into(Vc& dst, const Vc& src);
  bool is_benign(std::uint64_t addr) const;
  const AllocSite* alloc_of(std::uint64_t addr) const;
  void record_race(RaceRecord::Kind kind, std::uint64_t addr, std::uint64_t key,
                   std::uint64_t tid_prev, std::uint64_t tid_cur, unsigned size);

  RaceConfig config_;
  cluster::Cluster* cluster_ = nullptr;
  unsigned page_shift_ = 12;

  std::vector<Vc> thread_vc_;       // [tid]
  std::vector<int> thread_node_;    // [tid] current node (report attribution)
  std::unordered_map<std::uint64_t, Vc> lock_vc_;  // [object gva]
  std::vector<Vc> fork_tokens_;     // [token] snapshot (fork), final VC (exit)
  std::unordered_map<std::uint64_t, CellState> cells_;  // [key]
  std::vector<Vc> node_vc_;  // piggyback bookkeeping (see on_message)

  std::vector<std::pair<std::uint64_t, std::uint64_t>> benign_;  // [begin,end)
  std::vector<AllocSite> allocs_;  // sorted by base (allocation is monotone)

  std::vector<RaceRecord> races_;
  // Dedup: one report row per (key, kind, tid_prev, tid_cur).
  std::set<std::tuple<std::uint64_t, std::uint8_t, std::uint64_t, std::uint64_t>> seen_;

  std::uint64_t accesses_checked_ = 0;
  std::uint64_t benign_suppressed_ = 0;
  std::uint64_t clock_msgs_ = 0;
  std::uint64_t clock_bytes_ = 0;
};

}  // namespace hyp::obs
