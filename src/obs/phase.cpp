#include "obs/phase.hpp"

#include <cstdio>

namespace hyp::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kCompute: return "compute";
    case Phase::kBlockedFetch: return "blocked_fetch";
    case Phase::kBlockedMonitor: return "blocked_monitor";
    case Phase::kBarrier: return "barrier";
    case Phase::kCount_: break;
  }
  return "?";
}

void PhaseAccounting::write_report(std::ostream& os) const {
  char line[192];
  std::snprintf(line, sizeof(line), "%-6s %14s %14s %16s %14s\n", "node", "compute (ms)",
                "fetch (ms)", "monitor (ms)", "barrier (ms)");
  os << line;
  auto ms = [](Time t) { return static_cast<double>(t) / static_cast<double>(kMillisecond); };
  for (int n = 0; n < nodes_; ++n) {
    std::snprintf(line, sizeof(line), "n%-5d %14.3f %14.3f %16.3f %14.3f\n", n,
                  ms(get(n, Phase::kCompute)), ms(get(n, Phase::kBlockedFetch)),
                  ms(get(n, Phase::kBlockedMonitor)), ms(get(n, Phase::kBarrier)));
    os << line;
  }
  std::snprintf(line, sizeof(line), "%-6s %14.3f %14.3f %16.3f %14.3f\n", "total",
                ms(total(Phase::kCompute)), ms(total(Phase::kBlockedFetch)),
                ms(total(Phase::kBlockedMonitor)), ms(total(Phase::kBarrier)));
  os << line;
}

}  // namespace hyp::obs
