#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

namespace hyp::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fixed6(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void write_histogram(std::ostream& os, const Log2Histogram& h) {
  os << "{\"count\":" << h.count() << ",\"sum\":" << h.sum();
  if (!h.empty()) os << ",\"min\":" << h.min() << ",\"max\":" << h.max();
  os << ",\"buckets\":[";
  bool first = true;
  for (int i = 0; i < Log2Histogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    if (!first) os << ',';
    first = false;
    // Inclusive bounds ("le", not "lt"): bucket 64's top bound is UINT64_MAX
    // and values equal to it land *in* the bucket (histogram.hpp).
    os << "{\"ge\":" << Log2Histogram::bucket_lower(i)
       << ",\"le\":" << Log2Histogram::bucket_upper(i) << ",\"count\":" << h.bucket(i) << '}';
  }
  os << "]}";
}

void write_point(std::ostream& os, const MetricsPoint& mp) {
  os << "    {";
  bool first = true;
  auto field = [&](const std::string& body) {
    os << (first ? "" : ",") << "\n      " << body;
    first = false;
  };

  if (!mp.cluster.empty()) field("\"cluster\":\"" + json_escape(mp.cluster) + '"');
  if (!mp.protocol.empty()) field("\"protocol\":\"" + json_escape(mp.protocol) + '"');
  if (mp.nodes >= 0) field("\"nodes\":" + std::to_string(mp.nodes));
  if (!mp.label.empty()) field("\"label\":\"" + json_escape(mp.label) + '"');
  field("\"elapsed_ps\":" + std::to_string(mp.elapsed));
  field("\"seconds\":" + fixed6(to_seconds(mp.elapsed)));
  if (mp.has_value) field("\"value\":" + fixed6(mp.value));

  // Counters (nonzero only, sorted by name — Stats::nonzero is a std::map).
  {
    std::string body = "\"counters\":{";
    bool f2 = true;
    for (const auto& [name, v] : mp.stats.nonzero()) {
      if (!f2) body += ',';
      f2 = false;
      body += '"' + json_escape(name) + "\":" + std::to_string(v);
    }
    body += '}';
    field(body);
  }

  // Histograms (only ones with samples).
  {
    bool any = false;
    for (int i = 0; i < static_cast<int>(Hist::kCount_); ++i) {
      if (!mp.stats.hist(static_cast<Hist>(i)).empty()) any = true;
    }
    if (any) {
      os << (first ? "" : ",") << "\n      \"histograms\":{";
      first = false;
      bool f2 = true;
      for (int i = 0; i < static_cast<int>(Hist::kCount_); ++i) {
        const auto h = static_cast<Hist>(i);
        if (mp.stats.hist(h).empty()) continue;
        if (!f2) os << ',';
        f2 = false;
        os << "\n        \"" << hist_name(h) << "\":";
        write_histogram(os, mp.stats.hist(h));
      }
      os << "\n      }";
    }
  }

  if (mp.has_heat) {
    os << (first ? "" : ",") << "\n      \"page_heat\":{\"page_bytes\":" << mp.heat_page_bytes
       << ",\"top\":[";
    first = false;
    bool f2 = true;
    for (const auto& r : mp.heat_top) {
      if (!f2) os << ',';
      f2 = false;
      os << "\n        {\"page\":" << r.page << ",\"fetches\":" << r.fetches
         << ",\"faults\":" << r.faults << ",\"update_bytes\":" << r.update_bytes << '}';
    }
    os << "\n      ]}";
  }

  if (mp.has_phases) {
    os << (first ? "" : ",") << "\n      \"phases_ps\":{\"per_node\":[";
    first = false;
    for (int n = 0; n < mp.phase_nodes; ++n) {
      if (n != 0) os << ',';
      os << "\n        {\"node\":" << n;
      for (int p = 0; p < kPhaseCount; ++p) {
        os << ",\"" << phase_name(static_cast<Phase>(p))
           << "\":" << mp.phases[static_cast<std::size_t>(n) * kPhaseCount + p];
      }
      os << '}';
    }
    os << "\n      ]}";
  }

  if (mp.has_host) {
    char wall[48];
    std::snprintf(wall, sizeof(wall), "%.3f", mp.host_wall_s);
    field("\"host\":{\"wall_s\":" + std::string(wall) +
          ",\"events\":" + std::to_string(mp.host_events) +
          ",\"events_per_sec\":" + std::to_string(mp.host_events_per_sec) +
          ",\"peak_rss_kb\":" + std::to_string(mp.host_peak_rss_kb) + '}');
  }

  if (mp.has_window) {
    field("\"window\":{\"start_ps\":" + std::to_string(mp.window_start) +
          ",\"end_ps\":" + std::to_string(mp.window_end) +
          ",\"excluded_ops\":" + std::to_string(mp.window_excluded_ops) + '}');
  }

  if (mp.has_trace) {
    std::string body = "\"trace\":{\"events\":" + std::to_string(mp.trace_events) +
                       ",\"dropped\":" + std::to_string(mp.trace_dropped);
    if (!mp.trace_dropped_by_kind.empty()) {
      body += ",\"dropped_by_kind\":{";
      bool f2 = true;
      for (const auto& [name, v] : mp.trace_dropped_by_kind) {
        if (!f2) body += ',';
        f2 = false;
        body += '"' + json_escape(name) + "\":" + std::to_string(v);
      }
      body += '}';
    }
    body += '}';
    field(body);
  }

  os << "\n    }";
}

}  // namespace

void fill_heat(MetricsPoint& mp, const PageHeatTable& heat, std::size_t top_n) {
  mp.has_heat = true;
  mp.heat_page_bytes = heat.page_bytes();
  mp.heat_top = heat.top(top_n);
}

void fill_phases(MetricsPoint& mp, const PhaseAccounting& phases) {
  mp.has_phases = true;
  mp.phase_nodes = phases.nodes();
  mp.phases.assign(static_cast<std::size_t>(phases.nodes()) * kPhaseCount, 0);
  for (int n = 0; n < phases.nodes(); ++n) {
    for (int p = 0; p < kPhaseCount; ++p) {
      mp.phases[static_cast<std::size_t>(n) * kPhaseCount + p] =
          phases.get(n, static_cast<Phase>(p));
    }
  }
}

void write_metrics_json(std::ostream& os, const std::string& tool,
                        const std::vector<MetricsPoint>& points) {
  os << "{\n  \"schema\":\"hyp-metrics-v1\",\n  \"tool\":\"" << json_escape(tool)
     << "\",\n  \"points\":[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    write_point(os, points[i]);
    os << (i + 1 < points.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace hyp::obs
