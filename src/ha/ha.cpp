#include "ha/ha.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace hyp::ha {

using cluster::FaultWindow;
using cluster::NodeId;
using cluster::TraceKind;

HaManager::HaManager(cluster::Cluster* cluster, dsm::DsmSystem* dsm,
                     hyperion::MonitorSubsystem* monitors)
    : cluster_(cluster), dsm_(dsm), monitors_(monitors) {
  const auto n = static_cast<std::size_t>(cluster_->node_count());
  zone_home_.resize(n);
  for (std::size_t i = 0; i < n; ++i) zone_home_[i] = static_cast<NodeId>(i);
  health_.resize(n);
}

void HaManager::zone_pages(NodeId node, dsm::PageId* first, dsm::PageId* last) const {
  const dsm::Layout& layout = dsm_->layout();
  *first = static_cast<dsm::PageId>(layout.zone_begin(node) / layout.page_bytes());
  *last = static_cast<dsm::PageId>(layout.zone_end(node) / layout.page_bytes());
}

void HaManager::start() {
  const auto& f = cluster_->params().fault;
  const int count = cluster_->node_count();
  // Windows naming nodes this run does not have are inert (sweeps reuse one
  // profile across cluster sizes); exactly one window may apply.
  const FaultWindow* applicable = nullptr;
  int applying = 0;
  for (const FaultWindow& c : f.crashes) {
    HYP_CHECK_MSG(c.node != 0, "node 0 hosts the Java main thread and cannot crash");
    if (c.node < count) {
      applicable = &c;
      ++applying;
    }
  }
  HYP_CHECK_MSG(applying == 1,
                "the HA subsystem implements the single-failure model: exactly one "
                "applicable crash window per run (got " +
                    std::to_string(applying) + ")");
  const FaultWindow& c = *applicable;
  HYP_CHECK_MSG(c.start > 0 && c.duration > 0, "crash window needs a positive start and duration");
  HYP_CHECK_MSG(f.hb_interval > 0 && f.suspect_after >= f.hb_interval &&
                    f.confirm_after > f.suspect_after,
                "detector tuning wants hb <= suspect < confirm");

  auto& eng = cluster_->engine();
  const Time now = eng.now();
  for (auto& h : health_) h.last_heard = now;
  for (NodeId n = 0; n < count; ++n) {
    eng.post(now + f.hb_interval, [this, n]() { tick(n); });
  }
  eng.post(c.start, [this, c]() { on_crash(c); });
  eng.post(c.end(), [this, c]() { on_restart(c); });
}

void HaManager::stop() { stopped_ = true; }

void HaManager::tick(NodeId n) {
  if (stopped_) return;
  auto& eng = cluster_->engine();
  const Time now = eng.now();
  const auto& f = cluster_->params().fault;
  // A crashed node's CPU is dead: it neither heartbeats nor watches. Its
  // silence is exactly what the successor's watcher duty measures.
  if (f.crash_release(n, now) == 0) {
    health_[static_cast<std::size_t>(n)].last_heard = now;
    cluster_->node(n).stats().add(Counter::kHaHeartbeats);

    const int count = cluster_->node_count();
    const NodeId pred = (n - 1 + count) % count;
    Health& h = health_[static_cast<std::size_t>(pred)];
    if (!h.confirmed) {
      const Time silence = now - h.last_heard;
      if (silence >= f.suspect_after && !h.suspected) {
        h.suspected = true;
        cluster_->trace_event(n, TraceKind::kHaSuspected, pred,
                              static_cast<std::int64_t>(silence / kMicrosecond));
      }
      if (h.suspected && silence >= f.confirm_after) {
        promote(pred, n, silence);
      }
    }
  }
  eng.post(now + f.hb_interval, [this, n]() { tick(n); });
}

void HaManager::on_crash(const FaultWindow& c) {
  auto& eng = cluster_->engine();
  const Time now = eng.now();
  crash_started_ = now;
  cluster_->trace_event(c.node, TraceKind::kNodeCrash,
                        static_cast<std::int64_t>(c.end() / kMicrosecond), 0);
  // Freeze the node's execution resources until the restart: compute already
  // queued behind the reservation lands after the window, so no virtual-time
  // work is attributed to a dead CPU. (The transport side is handled by
  // FaultProfile::apply_windows — arrivals vanish — and the outbound hold in
  // Cluster::tx_transmit.)
  auto freeze = [&](sim::FifoServer& server) {
    const Time base = now > server.free_at() ? now : server.free_at();
    if (base < c.end()) server.reserve(c.end() - base);
  };
  cluster::Node& node = cluster_->node(c.node);
  freeze(node.app_cpu());
  freeze(node.service_queue());
}

void HaManager::promote(NodeId dead, NodeId watcher, Time silence) {
  if (promoted_for_ != -1) return;  // single-failure model
  Health& h = health_[static_cast<std::size_t>(dead)];
  h.confirmed = true;
  promoted_for_ = dead;
  ++epoch_;
  const NodeId backup = backup_of(dead);
  auto& eng = cluster_->engine();
  const Time now = eng.now();

  cluster_->trace_event(watcher, TraceKind::kHaDeadConfirmed, dead,
                        static_cast<std::int64_t>(silence / kMicrosecond));
  cluster_->trace_event(backup, TraceKind::kEpochBump, static_cast<std::int64_t>(epoch_), dead);

  // Route the dead zone at its backup from this instant: stale presence is
  // impossible to *hold* (the routing table is the single source of truth;
  // java_ic checks and java_pf re-protection resolve through it on the next
  // consistency action) and stale *requests* are NACKed by the handlers.
  zone_home_[static_cast<std::size_t>(dead)] = backup;

  // --- checkpoint realization ---------------------------------------------
  // The incremental replication stream has been mirroring the dead home's
  // state all along (note_checkpoint accounts it); the simulator realizes
  // the mirrored copy here, in three steps that keep the backup's own
  // unflushed working-memory modifications intact.
  const dsm::Layout& layout = dsm_->layout();
  dsm::PageId first = 0;
  dsm::PageId last = 0;
  zone_pages(dead, &first, &last);
  const dsm::Gva zbegin = layout.zone_begin(dead);
  const dsm::Gva zend = layout.zone_end(dead);
  const std::size_t zbytes = static_cast<std::size_t>(zend - zbegin);
  dsm::NodeDsm& dnd = dsm_->node_dsm(dead);
  dsm::NodeDsm& bnd = dsm_->node_dsm(backup);

  // (1) Extract the backup's pending java_pf diffs (cur vs twin) for cached
  //     pages of the zone — promote_to_home drops the twins below.
  struct SavedRun {
    dsm::Gva at;
    std::vector<std::byte> bytes;
  };
  std::vector<SavedRun> pending;
  const std::size_t page_bytes = layout.page_bytes();
  for (dsm::PageId p : bnd.cached_pages()) {
    if (p < first || p >= last || !bnd.has_twin(p)) continue;
    const std::byte* cur = bnd.page_ptr(p);
    const std::byte* tw = bnd.twin(p);
    std::size_t i = 0;
    while (i < page_bytes) {
      if (cur[i] == tw[i]) {
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < page_bytes && cur[j] != tw[j]) ++j;
      pending.push_back({layout.page_base(p) + i, std::vector<std::byte>(cur + i, cur + j)});
      i = j;
    }
  }

  // (2) Realize the mirror and take home authority. The pristine snapshot
  //     feeds the restart-side final-checkpoint diff (see on_restart).
  zone_snapshot_.assign(dnd.arena() + zbegin, dnd.arena() + zend);
  std::memcpy(bnd.arena() + zbegin, dnd.arena() + zbegin, zbytes);
  bnd.promote_to_home(first, last);

  // (3) The backup's own unflushed modifications win over the mirrored base
  //     (they are exactly what its next updateMainMemory would apply here).
  for (const SavedRun& r : pending) {
    std::memcpy(bnd.arena() + r.at, r.bytes.data(), r.bytes.size());
  }
  dsm_->replay_logged_writes(backup, zbegin, zend);  // java_ic pending stores

  // Monitor tables and the applied-op-id set move with the zone.
  monitors_->fail_over_home(dead, backup);

  cluster_->trace_event(backup, TraceKind::kHomePromoted, dead,
                        static_cast<std::int64_t>(zbytes));

  // Installing the final checkpoint delta occupies the backup's service
  // queue: requests against the new home serve after it. Charged over the
  // zone's *live* bytes — the page frames themselves were already mirrored.
  const std::size_t live = dnd.allocated_bytes();
  if (live > 0) {
    cluster_->node(backup).service_queue().reserve(cluster_->params().cpu.copy_cost(live));
  }

  Stats& bs = cluster_->node(backup).stats();
  bs.add(Counter::kHaPromotions);
  bs.record(Hist::kRecoveryLatency, static_cast<std::uint64_t>(now - crash_started_));

  // Wake every caller still parked on the dead node with a typed failure so
  // it re-resolves under the new epoch. Runs last: by the time a woken fiber
  // retries, the routing table above is already in place.
  cluster_->ha_fail_traffic_to(dead);
}

void HaManager::on_restart(const FaultWindow& c) {
  auto& eng = cluster_->engine();
  const Time now = eng.now();
  const NodeId n = c.node;
  cluster_->trace_event(n, TraceKind::kNodeRestart, static_cast<std::int64_t>(epoch_), 0);

  if (promoted_for_ == n) {
    // Final incremental checkpoint: stores by the node's own threads whose
    // compute was initiated before the crash can carry freeze-model
    // timestamps inside the window; diff the zone against the promotion-time
    // snapshot and fold the deltas into the new home. Under data-race-free
    // programs these bytes are disjoint from anything the backup served in
    // the meantime (the writers still hold their monitors).
    const dsm::Layout& layout = dsm_->layout();
    dsm::PageId first = 0;
    dsm::PageId last = 0;
    zone_pages(n, &first, &last);
    const dsm::Gva zbegin = layout.zone_begin(n);
    const std::size_t zbytes = zone_snapshot_.size();
    dsm::NodeDsm& dnd = dsm_->node_dsm(n);
    dsm::NodeDsm& bnd = dsm_->node_dsm(zone_home_[static_cast<std::size_t>(n)]);
    const std::byte* cur = dnd.arena() + zbegin;
    const std::byte* snap = zone_snapshot_.data();
    std::size_t i = 0;
    while (i < zbytes) {
      if (cur[i] == snap[i]) {
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < zbytes && cur[j] != snap[j]) ++j;
      std::memcpy(bnd.arena() + zbegin + i, cur + i, j - i);
      i = j;
    }
    zone_snapshot_.clear();
    zone_snapshot_.shrink_to_fit();

    // The node rejoins with no home authority: its zone stays at the backup
    // for the rest of the run and its pre-crash copies are stale — it
    // resumes as a cacher and re-syncs on demand through ordinary fetches.
    dnd.demote_home(first, last);
    cluster_->trace_event(n, TraceKind::kHaRejoined, static_cast<std::int64_t>(epoch_), 0);
  }

  Health& h = health_[static_cast<std::size_t>(n)];
  h.last_heard = now;
  h.suspected = false;
  h.confirmed = false;
}

Time HaManager::retry_hold(NodeId target, Time now) const {
  if (health_[static_cast<std::size_t>(target)].confirmed) return 0;
  const auto& f = cluster_->params().fault;
  const Time release = f.crash_release(target, now);
  if (release == 0) return 0;
  // The target is inside a crash window but the detector has not confirmed it
  // yet: re-routing would be premature (there is no new home), and retrying
  // immediately burns whole-call budgets against a black hole. Hold until the
  // detector can have confirmed (crash start + confirm_after, plus a tick of
  // watcher slack) or the restart, whichever comes first.
  Time confirmed_by = release;
  for (const FaultWindow& c : f.crashes) {
    if (c.node == target && c.covers(now)) {
      confirmed_by = c.start + f.confirm_after + 2 * f.hb_interval;
      break;
    }
  }
  return confirmed_by < release ? confirmed_by : release;
}

void HaManager::note_checkpoint(NodeId home, std::uint64_t bytes) {
  cluster_->node(home).stats().add(Counter::kHaCheckpointBytes, bytes);
  cluster_->trace_event(home, TraceKind::kCheckpoint, backup_of(home),
                        static_cast<std::int64_t>(bytes));
}

}  // namespace hyp::ha
