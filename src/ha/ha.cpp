#include "ha/ha.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/assert.hpp"

namespace hyp::ha {

using cluster::FaultWindow;
using cluster::NodeId;
using cluster::TraceKind;

namespace {
// Wire header of one checkpoint-stream message: origin home, hop index,
// delta byte count, reserved. The delta itself rides as padding so the
// network model charges the real checkpoint size (common/buffer.hpp).
constexpr std::size_t kCkptHeaderBytes = 4 * sizeof(std::uint32_t);

// Sorted-unique insertion into an ascending zone list (the reverse indexes
// iterate in ascending zone order, matching the old full scans).
void insert_sorted(std::vector<NodeId>& v, NodeId x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}
}  // namespace

HaManager::HaManager(cluster::Cluster* cluster, dsm::DsmSystem* dsm,
                     hyperion::MonitorSubsystem* monitors)
    : cluster_(cluster), dsm_(dsm), monitors_(monitors) {
  const auto n = static_cast<std::size_t>(cluster_->node_count());
  zone_home_.resize(n);
  home_zones_.resize(n);
  snap_zones_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    zone_home_[i] = static_cast<NodeId>(i);
    home_zones_[i].push_back(static_cast<NodeId>(i));
  }
  health_.resize(n);
  zone_snaps_.resize(n);
  ckpt_busy_until_.resize(n, 0);
  const auto& f = cluster_->params().fault;
  const auto max_depth =
      static_cast<std::uint32_t>(cluster_->node_count() > 0 ? cluster_->node_count() - 1 : 0);
  chain_depth_ = std::min(f.replicas, max_depth);
  // The stream gets its own identity as soon as it is given chain depth or a
  // bandwidth budget; plain replicas=1 keeps the classic piggyback
  // accounting (and the recovery golden) byte-identical.
  stream_enabled_ = f.replicas > 1 || f.ckpt_bw != 0;
  // Partition machinery (per-watcher heartbeat views, quorum promotion,
  // per-node epochs) engages only when the profile schedules partitions;
  // crash-only runs keep the exact detector the recovery goldens pin.
  partitions_cfg_ = !f.partitions.empty();
  node_epoch_.resize(n, 0);
  if (partitions_cfg_) {
    heard_.assign(n, std::vector<Time>(n, 0));
  }
}

void HaManager::zone_pages(NodeId zone, dsm::PageId* first, dsm::PageId* last) const {
  const dsm::Layout& layout = dsm_->layout();
  *first = static_cast<dsm::PageId>(layout.zone_begin(zone) / layout.page_bytes());
  *last = static_cast<dsm::PageId>(layout.zone_end(zone) / layout.page_bytes());
}

void HaManager::start() {
  const auto& f = cluster_->params().fault;
  const int count = cluster_->node_count();
  // Profile validity (node 0, window shapes, detector tuning, same-node
  // overlap) was enforced at parse time (cluster/params.cpp). What remains
  // here is the one check that needs the actual cluster size and placement:
  // a zone must never lose all of its K+1 copies at once. Windows naming
  // nodes this run does not have are inert (sweeps reuse one profile across
  // cluster sizes).
  for (const FaultWindow& c : f.crashes) {
    if (c.node >= count) continue;
    bool recoverable = chain_depth_ > 0;
    if (recoverable) {
      recoverable = false;
      for (std::uint32_t i = 0; i < chain_depth_ && !recoverable; ++i) {
        const NodeId m = chain_member(c.node, i);
        bool covered = false;
        for (const FaultWindow& w : f.crashes) {
          if (w.node == m && w.node < count && w.start < c.end() && c.start < w.end()) {
            covered = true;
            break;
          }
        }
        recoverable = !covered;
      }
    }
    HYP_CHECK_MSG(recoverable,
                  "unrecoverable crash schedule: node " + std::to_string(c.node) +
                      "'s home zone would lose all " + std::to_string(chain_depth_ + 1) +
                      " copies (the home and its " + std::to_string(chain_depth_) +
                      " chain backups are down together) — raise replicas= or separate "
                      "the crash windows (docs/RECOVERY.md)");
  }

  auto& eng = cluster_->engine();
  const Time now = eng.now();
  for (auto& h : health_) h.last_heard = now;
  for (auto& row : heard_) {
    for (Time& t : row) t = now;
  }
  // Big clusters coalesce the detector into one sweep event per interval
  // (same side effects in the same order — see sweep()); small clusters keep
  // the per-node tick chains the recovery goldens' event counts pin.
  if (f.hb_coalesce != 0 && static_cast<std::uint32_t>(count) >= f.hb_coalesce) {
    eng.post(now + f.hb_interval, [this]() { sweep(); });
  } else {
    for (NodeId n = 0; n < count; ++n) {
      eng.post(now + f.hb_interval, [this, n]() { tick(n); });
    }
  }
  for (const FaultWindow& c : f.crashes) {
    if (c.node >= count) continue;
    eng.post(c.start, [this, c]() { on_crash(c); });
    eng.post(c.end(), [this, c]() { on_restart(c); });
  }
  // A partition window applies only if it actually splits this run's nodes:
  // both groups need at least one in-range member (sweeps reuse one profile
  // across cluster sizes, like the crash windows above).
  for (std::size_t i = 0; i < f.partitions.size(); ++i) {
    const cluster::PartitionWindow& w = f.partitions[i];
    bool a_in = false;
    bool b_in = false;
    for (NodeId a : w.group_a) a_in = a_in || a < count;
    for (NodeId b : w.group_b) b_in = b_in || b < count;
    if (!a_in || !b_in) continue;
    eng.post(w.start, [this, i]() { on_partition(i, /*open=*/true); });
    eng.post(w.end(), [this, i]() { on_partition(i, /*open=*/false); });
  }

  if (stream_enabled_) {
    for (NodeId n = 0; n < count; ++n) {
      cluster_->node(n).register_service(
          svc::kHaCheckpoint, "ha_checkpoint",
          [this, n](cluster::Incoming& in) { handle_checkpoint(in, n); });
    }
  }
}

void HaManager::stop() { stopped_ = true; }

void HaManager::tick_node(NodeId n, Time now, const cluster::FaultProfile& f) {
  // A crashed node's CPU is dead: it neither heartbeats nor watches. Its
  // silence is exactly what its chain watchers measure.
  if (f.crash_release(n, now) != 0) return;
  health_[static_cast<std::size_t>(n)].last_heard = now;
  cluster_->node(n).stats().add(Counter::kHaHeartbeats);
  if (partitions_cfg_) {
    // The management path is cut by partitions too: a heartbeat reaches only
    // the chain watchers on the sender's side of every open window.
    for (std::uint32_t i = 0; i < chain_depth_; ++i) {
      const NodeId w = chain_member(n, i);
      if (!f.severed(n, w, now)) heard_[static_cast<std::size_t>(w)][static_cast<std::size_t>(n)] = now;
    }
  }

  const int count = cluster_->node_count();
  // Watcher duty over the K watched ring predecessors: node n is chain
  // member i of predecessor (n - 1 - i), so between them the chain
  // members cover every node whose state they mirror. With replicas=1
  // this is exactly the classic single-predecessor watch.
  for (std::uint32_t i = 0; i < chain_depth_; ++i) {
    const NodeId pred =
        static_cast<NodeId>(((n - 1 - static_cast<int>(i)) % count + count) % count);
    Health& h = health_[static_cast<std::size_t>(pred)];
    if (h.confirmed) continue;
    const Time heard = partitions_cfg_
                           ? heard_[static_cast<std::size_t>(n)][static_cast<std::size_t>(pred)]
                           : h.last_heard;
    const Time silence = now - heard;
    if (partitions_cfg_ && h.suspected && silence < f.suspect_after) {
      // This watcher hears the suspect fine: the suspicion came from a cut
      // watcher on the other side, not from a death. Keeping it cleared here
      // is what blocks cross-cut confirmations when the suspect's chain is
      // split (the chain-majority vote would fail anyway); a genuinely dead
      // node is silent toward every watcher, so this never fires for one.
      h.suspected = false;
    }
    if (silence >= f.suspect_after && !h.suspected) {
      h.suspected = true;
      cluster_->trace_event(n, TraceKind::kHaSuspected, pred,
                            static_cast<std::int64_t>(silence / kMicrosecond));
    }
    if (h.suspected && silence >= f.confirm_after) {
      confirm_death(pred, n, silence);
    }
  }
}

void HaManager::tick(NodeId n) {
  if (stopped_) return;
  auto& eng = cluster_->engine();
  const Time now = eng.now();
  const auto& f = cluster_->params().fault;
  tick_node(n, now, f);
  eng.post(now + f.hb_interval, [this, n]() { tick(n); });
}

void HaManager::sweep() {
  if (stopped_) return;
  auto& eng = cluster_->engine();
  const Time now = eng.now();
  const auto& f = cluster_->params().fault;
  const int count = cluster_->node_count();
  // Ascending node order = the seq order the per-node tick chains fire in at
  // every interval (posted ascending at start, re-posted in firing order).
  for (NodeId n = 0; n < count; ++n) tick_node(n, now, f);
  eng.post(now + f.hb_interval, [this]() { sweep(); });
}

void HaManager::on_crash(const FaultWindow& c) {
  auto& eng = cluster_->engine();
  const Time now = eng.now();
  health_[static_cast<std::size_t>(c.node)].crash_started = now;
  cluster_->trace_event(c.node, TraceKind::kNodeCrash,
                        static_cast<std::int64_t>(c.end() / kMicrosecond), 0);
  // Freeze the node's execution resources until the restart: compute already
  // queued behind the reservation lands after the window, so no virtual-time
  // work is attributed to a dead CPU. (The transport side is handled by
  // FaultProfile::apply_windows — arrivals vanish — and the outbound hold in
  // Cluster::tx_transmit.)
  auto freeze = [&](sim::FifoServer& server) {
    const Time base = now > server.free_at() ? now : server.free_at();
    if (base < c.end()) server.reserve(c.end() - base);
  };
  cluster::Node& node = cluster_->node(c.node);
  freeze(node.app_cpu());
  freeze(node.service_queue());
}

cluster::NodeId HaManager::elect_home(NodeId zone, NodeId dead, NodeId watcher,
                                      Time now) const {
  const auto& f = cluster_->params().fault;
  for (std::uint32_t i = 0; i < chain_depth_; ++i) {
    const NodeId cand = chain_member(dead, i);
    if (health_[static_cast<std::size_t>(cand)].confirmed) continue;
    if (f.crash_release(cand, now) != 0) continue;  // down, even if unconfirmed
    // Never elect a home the promoting side cannot reach: the promotion
    // quorum guarantees at least one chain member is alive on this side.
    if (partitions_cfg_ && cand != watcher &&
        (f.severed(watcher, cand, now) || f.severed(cand, watcher, now))) {
      continue;
    }
    return cand;
  }
  HYP_PANIC("HA: zone " + std::to_string(zone) + " lost all " +
            std::to_string(chain_depth_ + 1) + " copies — home node " + std::to_string(dead) +
            " and its " + std::to_string(chain_depth_) +
            " chain backups are all down; raise replicas= or separate the crash windows "
            "(docs/RECOVERY.md)");
}

bool HaManager::promotion_quorum(NodeId dead, NodeId watcher, Time now) const {
  if (!partitions_cfg_) return true;
  const auto& f = cluster_->params().fault;
  const int count = cluster_->node_count();
  // (1) Corroborated majority: the watcher polls every peer it can reach
  // (alive, both directions unsevered) and a strict majority of the CLUSTER
  // must corroborate that it, too, cannot reach the suspect. Reaching a
  // majority is not enough on its own: under an asymmetric cut the bystander
  // links are whole, so BOTH sides of the cut reach a majority through them —
  // a connectivity-only vote would let an isolated-but-alive watcher steal a
  // healthy peer's zones (split brain). A peer's probe of the suspect
  // succeeds iff the suspect is up and the link is whole both ways; a
  // genuinely crashed node answers nobody, so for pure crash windows this is
  // exactly the classic reach-majority vote. A minority or even split still
  // cannot promote — its requests park with kNoQuorum and drain at heal.
  int reach = 0;
  int corroborate = 0;
  for (NodeId m = 0; m < count; ++m) {
    if (f.crash_release(m, now) != 0 || health_[static_cast<std::size_t>(m)].confirmed) {
      continue;
    }
    if (m != watcher && (f.severed(watcher, m, now) || f.severed(m, watcher, now))) continue;
    ++reach;
    const bool probe_ok = f.crash_release(dead, now) == 0 && !f.severed(m, dead, now) &&
                          !f.severed(dead, m, now);
    if (!probe_ok) ++corroborate;
  }
  if (reach * 2 <= count) return false;
  if (corroborate * 2 <= count) return false;
  // (2) Chain acknowledgement: a majority of the dead home's replica chain —
  // the nodes holding the mirrored state — must themselves have lost contact
  // with it. One same-side chain member that still hears the "dead" node
  // vetoes a chain of depth <= 2.
  std::uint32_t votes = 0;
  for (std::uint32_t i = 0; i < chain_depth_; ++i) {
    const NodeId m = chain_member(dead, i);
    if (f.crash_release(m, now) != 0 || health_[static_cast<std::size_t>(m)].confirmed) {
      continue;
    }
    if (m != watcher && (f.severed(watcher, m, now) || f.severed(m, watcher, now))) continue;
    if (now - heard_[static_cast<std::size_t>(m)][static_cast<std::size_t>(dead)] <
        f.suspect_after) {
      continue;  // this chain member still hears the suspect
    }
    ++votes;
  }
  return votes * 2 > chain_depth_;
}

void HaManager::confirm_death(NodeId dead, NodeId watcher, Time silence) {
  Health& h = health_[static_cast<std::size_t>(dead)];
  if (h.confirmed) return;
  auto& eng = cluster_->engine();
  const Time now = eng.now();
  // Quorum gate (trivially true without partitions): an unconfirmable death
  // stays suspected and is re-judged at the next watcher tick.
  if (!promotion_quorum(dead, watcher, now)) return;
  h.confirmed = true;
  promoted_for_ = dead;
  ++promotions_;
  ++epoch_;
  // Epoch fencing: the bump propagates to the promoting side only. Nodes
  // severed from the watcher keep their stale view — their fenced wire
  // messages are NACKed until the heal catch-up (docs/PARTITIONS.md).
  if (!partitions_cfg_) {
    for (std::uint64_t& e : node_epoch_) e = epoch_;
  } else {
    const auto& f = cluster_->params().fault;
    const int count = cluster_->node_count();
    for (NodeId m = 0; m < count; ++m) {
      if (m == watcher || (!f.severed(watcher, m, now) && !f.severed(m, watcher, now))) {
        node_epoch_[static_cast<std::size_t>(m)] = epoch_;
      }
    }
  }

  cluster_->trace_event(watcher, TraceKind::kHaDeadConfirmed, dead,
                        static_cast<std::int64_t>(silence / kMicrosecond));

  // Heat-driven migration overrides pointing AT the dead node revert first
  // (each page re-realizes at its fallback home), so the zone failover below
  // never routes a page to a cleared-but-dead override target.
  dsm_->on_node_dead(dead);

  // Every zone currently homed at the dead node is re-elected to the first
  // live member of the dead home's chain. The incremental reverse index
  // hands us the zones directly — in the ascending zone order the old
  // all-zones scan produced, keeping the event sequence hash-deterministic.
  std::vector<NodeId> zones = home_zones_[static_cast<std::size_t>(dead)];
  home_zones_[static_cast<std::size_t>(dead)].clear();

  NodeId first_home = watcher;  // epoch-bump track when no zone moves
  std::vector<NodeId> new_homes(zones.size());
  for (std::size_t i = 0; i < zones.size(); ++i) {
    new_homes[i] = elect_home(zones[i], dead, watcher, now);
    if (i == 0) first_home = new_homes[0];
  }

  cluster_->trace_event(first_home, TraceKind::kEpochBump,
                        static_cast<std::int64_t>(epoch_), dead);

  for (std::size_t i = 0; i < zones.size(); ++i) {
    // Route the zone at its new home from this instant: stale presence is
    // impossible to *hold* (the routing table is the single source of truth;
    // java_ic checks and java_pf re-protection resolve through it on the
    // next consistency action) and stale *requests* are NACKed by the
    // handlers.
    zone_home_[static_cast<std::size_t>(zones[i])] = new_homes[i];
    insert_sorted(home_zones_[static_cast<std::size_t>(new_homes[i])], zones[i]);
    move_zone(zones[i], dead, new_homes[i]);
  }

  if (!zones.empty() && h.crash_started != 0) {
    // crash_started == 0 means a partition-confirmed node: it never crashed,
    // so there is no crash-to-promotion latency to record.
    cluster_->node(first_home)
        .stats()
        .record(Hist::kRecoveryLatency, static_cast<std::uint64_t>(now - h.crash_started));
  }

  // Wake every caller still parked on the dead node with a typed failure so
  // it re-resolves under the new epoch. Runs last: by the time a woken fiber
  // retries, the routing table above is already in place.
  cluster_->ha_fail_traffic_to(dead);
}

void HaManager::move_zone(NodeId zone, NodeId dead, NodeId new_home) {
  // --- checkpoint realization ---------------------------------------------
  // The incremental replication stream has been mirroring the dying home's
  // state all along (note_checkpoint accounts it — piggybacked or as real
  // chain messages); the simulator realizes the mirrored copy here, in three
  // steps that keep the new home's own unflushed working-memory
  // modifications intact.
  const dsm::Layout& layout = dsm_->layout();
  dsm::PageId first = 0;
  dsm::PageId last = 0;
  zone_pages(zone, &first, &last);
  const dsm::Gva zbegin = layout.zone_begin(zone);
  const dsm::Gva zend = layout.zone_end(zone);
  const std::size_t zbytes = static_cast<std::size_t>(zend - zbegin);
  // The dying home's arena holds the zone's authoritative bytes (for a zone
  // that had moved before, the previous promotion copied them there).
  dsm::NodeDsm& dnd = dsm_->node_dsm(dead);
  dsm::NodeDsm& bnd = dsm_->node_dsm(new_home);

  // (1) Extract the new home's pending java_pf diffs (cur vs twin) for
  //     cached pages of the zone — promote_to_home drops the twins below.
  struct SavedRun {
    dsm::Gva at;
    std::vector<std::byte> bytes;
  };
  std::vector<SavedRun> pending;
  const std::size_t page_bytes = layout.page_bytes();
  for (dsm::PageId p : bnd.cached_pages()) {
    if (p < first || p >= last || !bnd.has_twin(p)) continue;
    const std::byte* cur = bnd.page_ptr(p);
    const std::byte* tw = bnd.twin(p);
    std::size_t i = 0;
    while (i < page_bytes) {
      if (cur[i] == tw[i]) {
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < page_bytes && cur[j] != tw[j]) ++j;
      pending.push_back({layout.page_base(p) + i, std::vector<std::byte>(cur + i, cur + j)});
      i = j;
    }
  }

  // (2) Realize the mirror and take home authority. The pristine snapshot
  //     feeds the restart-side final-checkpoint diff (see on_restart).
  ZoneSnap& snap = zone_snaps_[static_cast<std::size_t>(zone)];
  snap.from = dead;
  insert_sorted(snap_zones_[static_cast<std::size_t>(dead)], zone);
  snap.bytes.assign(dnd.arena() + zbegin, dnd.arena() + zend);
  std::memcpy(bnd.arena() + zbegin, dnd.arena() + zbegin, zbytes);
  bnd.promote_to_home(first, last);

  // (3) The new home's own unflushed modifications win over the mirrored
  //     base (they are exactly what its next updateMainMemory would apply).
  for (const SavedRun& r : pending) {
    std::memcpy(bnd.arena() + r.at, r.bytes.data(), r.bytes.size());
  }
  dsm_->replay_logged_writes(new_home, zbegin, zend);  // java_ic pending stores

  // Monitor tables of objects in the zone (and the applied-op-id set) move
  // with it.
  monitors_->fail_over_home(dead, new_home, static_cast<std::uint64_t>(zbegin),
                            static_cast<std::uint64_t>(zend));

  cluster_->trace_event(new_home, TraceKind::kHomePromoted, zone,
                        static_cast<std::int64_t>(zbytes));

  // Installing the final checkpoint delta occupies the new home's service
  // queue: requests against it serve after the install. Charged over the
  // zone's *live* bytes — the page frames themselves were already mirrored.
  const std::size_t live = dsm_->node_dsm(zone).allocated_bytes();
  if (live > 0) {
    cluster_->node(new_home).service_queue().reserve(cluster_->params().cpu.copy_cost(live));
  }

  cluster_->node(new_home).stats().add(Counter::kHaPromotions);
}

void HaManager::on_restart(const FaultWindow& c) {
  auto& eng = cluster_->engine();
  const Time now = eng.now();
  const NodeId n = c.node;
  cluster_->trace_event(n, TraceKind::kNodeRestart, static_cast<std::int64_t>(epoch_), 0);
  rejoin_node(n, now);
}

void HaManager::rejoin_node(NodeId n, Time now) {
  // A node that was confirmed dead rejoins even when it has no zone state to
  // fold back (a re-confirmed node's authority already lives elsewhere); an
  // unconfirmed restart only counts as a rejoin if a snapshot says otherwise.
  bool rejoined = health_[static_cast<std::size_t>(n)].confirmed;
  // Only the zones snapshotted from this node (reverse index, ascending zone
  // order like the old all-zones scan). An entry can be stale — the zone may
  // have moved on to yet another home since — hence the snap.from re-check.
  std::vector<NodeId> snapped;
  snapped.swap(snap_zones_[static_cast<std::size_t>(n)]);
  for (NodeId z : snapped) {
    ZoneSnap& snap = zone_snaps_[static_cast<std::size_t>(z)];
    if (snap.from != n) continue;
    // Final incremental checkpoint: stores by the node's own threads whose
    // compute was initiated before the crash can carry freeze-model
    // timestamps inside the window; diff the zone against the promotion-time
    // snapshot and fold the deltas into the current home. Under
    // data-race-free programs these bytes are disjoint from anything the new
    // home served in the meantime (the writers still hold their monitors).
    const dsm::Layout& layout = dsm_->layout();
    dsm::PageId first = 0;
    dsm::PageId last = 0;
    zone_pages(z, &first, &last);
    const dsm::Gva zbegin = layout.zone_begin(z);
    const std::size_t zbytes = snap.bytes.size();
    dsm::NodeDsm& dnd = dsm_->node_dsm(n);
    dsm::NodeDsm& hnd = dsm_->node_dsm(zone_home_[static_cast<std::size_t>(z)]);
    const std::byte* cur = dnd.arena() + zbegin;
    const std::byte* base = snap.bytes.data();
    std::size_t i = 0;
    while (i < zbytes) {
      if (cur[i] == base[i]) {
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < zbytes && cur[j] != base[j]) ++j;
      std::memcpy(hnd.arena() + zbegin + i, cur + i, j - i);
      i = j;
    }
    snap.from = -1;
    snap.bytes.clear();
    snap.bytes.shrink_to_fit();

    // The node rejoins with no authority over this zone: it stays at the
    // elected home for the rest of the run and the restarted node's
    // pre-crash copies are stale — it resumes as a cacher and re-syncs on
    // demand through ordinary fetches.
    dnd.demote_home(first, last);
    rejoined = true;
  }
  if (rejoined) {
    cluster_->trace_event(n, TraceKind::kHaRejoined, static_cast<std::int64_t>(epoch_), 0);
  }

  // Fresh detector state: a later crash window on this node is a new,
  // independently detected failure.
  Health& h = health_[static_cast<std::size_t>(n)];
  h.last_heard = now;
  h.crash_started = 0;
  h.suspected = false;
  h.confirmed = false;
  if (partitions_cfg_) {
    // Re-arm every watcher's view of n so the pre-rejoin silence cannot
    // instantly re-confirm it.
    for (auto& row : heard_) row[static_cast<std::size_t>(n)] = now;
  }
}

void HaManager::on_partition(std::size_t idx, bool open) {
  auto& eng = cluster_->engine();
  const Time now = eng.now();
  const auto& f = cluster_->params().fault;
  const int count = cluster_->node_count();
  const cluster::PartitionWindow& w = f.partitions[idx];
  // Trace on the first in-range node of group_a (the window applies, so one
  // exists).
  NodeId tn = 0;
  for (NodeId a : w.group_a) {
    if (a < count) {
      tn = a;
      break;
    }
  }
  cluster_->trace_event(tn, TraceKind::kHaPartition, open ? 1 : 0,
                        static_cast<std::int64_t>(idx));
  if (open) return;

  // --- heal ----------------------------------------------------------------
  // (1) Nodes the cut made "dead" are actually alive: fold their
  // post-promotion deltas into the current homes (final-checkpoint replay,
  // same machinery as a crash restart), demote their stale authority and
  // reset their detector state. A node still inside a crash window is
  // skipped — its own on_restart handles it at the window end.
  for (NodeId n = 0; n < count; ++n) {
    Health& h = health_[static_cast<std::size_t>(n)];
    if (f.crash_release(n, now) != 0) continue;
    if (h.confirmed && h.crash_started == 0) {
      rejoin_node(n, now);
    } else if (h.suspected && !h.confirmed) {
      // A suspicion created only by the cut heals with it.
      h.suspected = false;
    }
  }
  // (2) Detector re-arm: nothing crossed the cut, so every stale view would
  // otherwise instantly re-suspect a healthy peer. A node inside a crash
  // window is NOT re-armed — it sends no heartbeat at the heal, and bumping
  // its column would mask a real death that overlaps the partition.
  for (NodeId n = 0; n < count; ++n) {
    if (f.crash_release(n, now) != 0) continue;
    for (auto& row : heard_) {
      Time& t = row[static_cast<std::size_t>(n)];
      if (t < now) t = now;
    }
  }
  // (3) Epoch catch-up: the healed side adopts the promoting side's routing
  // epoch, un-fencing its traffic.
  for (std::uint64_t& e : node_epoch_) e = epoch_;
}

Time HaManager::retry_hold(NodeId target, Time now) const {
  if (health_[static_cast<std::size_t>(target)].confirmed) return 0;
  const auto& f = cluster_->params().fault;
  const Time release = f.crash_release(target, now);
  if (release == 0) return 0;
  // The target is inside a crash window but the detector has not confirmed it
  // yet: re-routing would be premature (there is no new home), and retrying
  // immediately burns whole-call budgets against a black hole. Hold until the
  // detector can have confirmed (crash start + confirm_after, plus a tick of
  // watcher slack) or the restart, whichever comes first.
  Time confirmed_by = release;
  for (const FaultWindow& c : f.crashes) {
    if (c.node == target && c.covers(now)) {
      confirmed_by = c.start + f.confirm_after + 2 * f.hb_interval;
      break;
    }
  }
  return confirmed_by < release ? confirmed_by : release;
}

// ---------------------------------------------------------------------------
// Checkpoint traffic (docs/RECOVERY.md §checkpoint bandwidth)

void HaManager::note_checkpoint(NodeId home, std::uint64_t bytes) {
  if (!stream_enabled_) {
    // Classic piggyback accounting: the checkpoint rides the update/ack
    // traffic the consistency protocol already generates; only the byte
    // count (and one trace event toward the first chain member) is modeled.
    cluster_->node(home).stats().add(Counter::kHaCheckpointBytes, bytes);
    cluster_->trace_event(home, TraceKind::kCheckpoint, backup_of(home),
                          static_cast<std::int64_t>(bytes));
    return;
  }
  if (chain_depth_ == 0) return;
  send_checkpoint(home, home, 0, static_cast<std::uint32_t>(bytes));
}

void HaManager::send_checkpoint(NodeId from, NodeId origin, std::uint32_t hop,
                                std::uint32_t delta_bytes) {
  const NodeId dest = chain_member(origin, hop);
  Buffer msg(kCkptHeaderBytes + delta_bytes);
  msg.put<std::uint32_t>(static_cast<std::uint32_t>(origin));
  msg.put<std::uint32_t>(hop);
  msg.put<std::uint32_t>(delta_bytes);
  msg.put<std::uint32_t>(0);  // reserved
  // The delta rides as payload padding so the bandwidth model and the fault
  // injector charge/see the real checkpoint size.
  static constexpr std::byte kZeros[256] = {};
  for (std::size_t left = delta_bytes; left > 0;) {
    const std::size_t chunk = left < sizeof(kZeros) ? left : sizeof(kZeros);
    msg.put_bytes(kZeros, chunk);
    left -= chunk;
  }
  const std::uint64_t size = msg.size();

  // Invariant pinned by tests and the acceptance criteria: the
  // ha_checkpoint_bytes counter equals the sum of traced checkpoint message
  // sizes (one kCheckpoint event per transmitted message).
  Stats& s = cluster_->node(from).stats();
  s.add(Counter::kHaCheckpointBytes, size);
  s.add(Counter::kHaCheckpointMsgs);
  cluster_->trace_event(from, TraceKind::kCheckpoint, dest, static_cast<std::int64_t>(size));

  // ckpt_bw pacing: consecutive checkpoints from one node serialize through
  // its replication-stream budget; the message departs when the budget
  // frees. Deterministic: pure arithmetic on virtual time.
  Time depart_delay = 0;
  const std::uint64_t bw = cluster_->params().fault.ckpt_bw;
  if (bw != 0) {
    const Time now = cluster_->engine().now();
    Time& busy = ckpt_busy_until_[static_cast<std::size_t>(from)];
    const Time start = busy > now ? busy : now;
    depart_delay = start - now;
    const Time tx = static_cast<Time>(size * 1'000'000'000'000ULL / bw);  // ps on the budget
    busy = start + tx;
  }
  if (depart_delay == 0) {
    cluster_->send(from, dest, svc::kHaCheckpoint, std::move(msg));
  } else {
    cluster_->send_after(depart_delay, from, dest, svc::kHaCheckpoint, std::move(msg));
  }
}

void HaManager::handle_checkpoint(cluster::Incoming& in, NodeId self) {
  const auto origin = static_cast<NodeId>(in.reader.get<std::uint32_t>());
  const auto hop = in.reader.get<std::uint32_t>();
  const auto delta_bytes = in.reader.get<std::uint32_t>();
  (void)in.reader.get<std::uint32_t>();  // reserved
  const std::uint64_t size = kCkptHeaderBytes + delta_bytes;
  // Absorbing the delta into the mirror occupies the chain member's service
  // queue like any other apply.
  cluster_->node(self).extend_service(cluster_->params().cpu.copy_cost(delta_bytes));
  cluster_->trace_event(self, TraceKind::kCheckpointApplied, origin,
                        static_cast<std::int64_t>(size));
  // Chain order: member i forwards to member i+1 until the chain is full.
  if (hop + 1 < chain_depth_) send_checkpoint(self, origin, hop + 1, delta_bytes);
}

}  // namespace hyp::ha
