// High availability: failure detection, home-state replication, re-election.
//
// The paper's model is a dedicated, lossless cluster; this subsystem asks the
// complementary question the roadmap leaves open: what must a *centralized*
// home-based protocol add to survive the loss of home nodes? The answer
// implemented here (docs/RECOVERY.md):
//
//   1. Failure detection — every node heartbeats on an out-of-band management
//      path each `hb_interval`; each node runs watcher duty over its K ring
//      predecessors (K = FaultProfile::replicas), suspecting a silent one
//      after `suspect_after` and confirming it dead after `confirm_after`.
//      All timeouts are virtual-time constants, so detection latency is
//      deterministic.
//   2. Replicated home state — every zone currently homed at node N has K
//      chain backups: N's ring successors C(N, i) = (N+1+i) mod n, in chain
//      order. Incremental checkpoints either piggyback on the update/ack
//      traffic the consistency protocol already generates (the classic
//      accounting via note_checkpoint -> kHaCheckpointBytes) or — when the
//      stream is given its own identity (replicas > 1 or ckpt_bw set) —
//      flow down the chain as *real cluster messages* on service
//      svc::kHaCheckpoint: traced, faultable, byte-charged by the network
//      model and paced by the ckpt_bw bandwidth budget. The simulator
//      realizes the mirrored state at promotion time, which is
//      observationally equivalent to a synchronous mirror (zero loss).
//   3. Home re-election — on confirmed death of a home, every zone it owned
//      is promoted to the *first live member of the home's chain*:
//      cluster-wide epoch bump, the HA routing table repoints each zone,
//      in-flight RPCs against the dead node fail over through the
//      typed-error retry paths (same op id => the monitor reattach/dedup
//      machinery absorbs previously applied attempts), and stale-home
//      stragglers are NACKed. Multiple (sequential or overlapping) crash
//      windows are tolerated as long as no zone loses all K+1 copies; a run
//      that would lose a zone fails fast with a diagnosable error instead of
//      hanging or computing a wrong answer.
//   4. Restart/rejoin — at each crash window's end the node returns with no
//      home authority (zones it owned stay at their new homes for the rest
//      of the run) and resumes as a cacher; its threads survive under the
//      thread-checkpoint model. Its detector state is reset, so a later
//      crash window on the same node is a fresh failure.
//   5. Partition tolerance (docs/PARTITIONS.md) — when the profile schedules
//      partition windows the detector runs per-watcher heartbeat views (a
//      cut watcher goes silent on its side only), promotions demand a quorum
//      (the watcher must reach a strict majority of the live cluster AND a
//      majority of the dead home's chain must ack the silence), epoch bumps
//      propagate only to the promoting side so every fenced wire message
//      from the stale side is NACKed, and the heal instant performs epoch
//      catch-up plus checkpoint-replay rejoin of partition-"dead" nodes.
//      Minority-side requests park on RpcError::kNoQuorum and drain at heal.
//
// With replicas=1 (the default) the placement, detection and promotion paths
// reduce exactly to the former single-failure ring-successor model — the
// kill-and-recover golden (tests/goldens/recovery_golden.txt) is byte-
// identical. When the fault profile schedules no crash window the VM never
// constructs a HaManager and every hook in cluster/dsm/hyperion is a
// null-pointer test — the event sequence stays bit-identical to the goldens.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/ha_hooks.hpp"
#include "dsm/dsm.hpp"
#include "hyperion/monitor.hpp"

namespace hyp::ha {

// RPC service id used by the modeled checkpoint stream (registered on every
// node only when the stream is enabled; see HaManager::stream_enabled()).
namespace svc {
inline constexpr cluster::ServiceId kHaCheckpoint = 30;
}  // namespace svc

class HaManager final : public cluster::HaHooks {
 public:
  HaManager(cluster::Cluster* cluster, dsm::DsmSystem* dsm,
            hyperion::MonitorSubsystem* monitors);
  HaManager(const HaManager&) = delete;
  HaManager& operator=(const HaManager&) = delete;

  // Fails fast on statically unrecoverable crash schedules (a zone whose
  // home and all chain backups are down at once), posts the heartbeat tick
  // chains, every applicable crash/restart event and every applicable
  // partition open/heal event, and registers the checkpoint-stream service
  // when the stream is enabled. Call once, before Cluster::run(). (Profile
  // *validity* — window shapes, detector tuning, partition groups — is
  // enforced at parse time in cluster/params.cpp.)
  void start();
  // Ends the self-chaining detector ticks so the engine can quiesce. Called
  // when the Java main thread finishes (HyperionVM::run_main).
  void stop();

  // Deterministic chain placement: member i of node n's backup chain is its
  // (i+1)-th ring successor. chain_depth() clamps replicas to the nodes
  // actually available.
  cluster::NodeId chain_member(cluster::NodeId n, std::uint32_t i) const {
    const int count = cluster_->node_count();
    return static_cast<cluster::NodeId>((n + 1 + static_cast<int>(i)) % count);
  }
  std::uint32_t chain_depth() const { return chain_depth_; }
  // The first chain member — the classic single-failure backup placement.
  cluster::NodeId backup_of(cluster::NodeId n) const { return chain_member(n, 0); }
  // True when checkpoints travel as real cluster messages instead of
  // piggyback accounting (replicas > 1 or a ckpt_bw budget was given).
  bool stream_enabled() const { return stream_enabled_; }

  // --- cluster::HaHooks ----------------------------------------------------
  cluster::NodeId home_node(int zone) const override {
    return zone_home_[static_cast<std::size_t>(zone)];
  }
  bool confirmed_dead(cluster::NodeId node) const override {
    return health_[static_cast<std::size_t>(node)].confirmed;
  }
  std::uint64_t epoch() const override { return epoch_; }
  Time retry_hold(cluster::NodeId target, Time now) const override;
  void note_checkpoint(cluster::NodeId home, std::uint64_t bytes) override;
  std::uint32_t replicas() const override { return chain_depth_; }
  std::uint64_t node_epoch(cluster::NodeId node) const override {
    return node_epoch_[static_cast<std::size_t>(node)];
  }
  bool suspected(cluster::NodeId node) const override {
    const Health& h = health_[static_cast<std::size_t>(node)];
    return h.suspected && !h.confirmed;
  }
  cluster::NodeId chain_backup(cluster::NodeId home, std::uint32_t i) const override {
    return chain_member(home, i);
  }

  // --- introspection (tests) ----------------------------------------------
  bool promoted() const { return promotions_ != 0; }
  // The dead node of the most recent confirmed failure; -1 = none yet.
  cluster::NodeId promoted_for() const { return promoted_for_; }
  std::uint64_t promotions() const { return promotions_; }

 private:
  struct Health {
    Time last_heard = 0;   // virtual time of the last heartbeat received
    Time crash_started = 0;  // start of the current crash window (0 = alive)
    bool suspected = false;
    bool confirmed = false;
  };

  // Per-zone snapshot taken at promotion time from the dying home's arena;
  // the restart event diffs against it to realize the *final* checkpoint
  // (see on_restart). `from` is the node the zone moved away from.
  struct ZoneSnap {
    cluster::NodeId from = -1;
    std::vector<std::byte> bytes;
  };

  // One self-chaining detector tick per node: emit the heartbeat (if alive),
  // run watcher duty over the K watched ring predecessors.
  void tick(cluster::NodeId n);
  // Coalesced detector (node_count >= FaultProfile::hb_coalesce): ONE
  // self-chaining sweep event per hb_interval ticks every node in ascending
  // id order — the exact order the per-node chains fire in (they are posted,
  // and so seq-ordered, ascending at every interval) — so the side effects
  // are identical while the event heap carries O(1) detector events per
  // interval instead of O(n).
  void sweep();
  // The shared per-node tick body (heartbeat + watcher duty, no re-post).
  void tick_node(cluster::NodeId n, Time now, const cluster::FaultProfile& f);
  void on_crash(const cluster::FaultWindow& c);
  void on_restart(const cluster::FaultWindow& c);
  // Partition window `idx` opening (open=true) or healing. The heal performs
  // epoch catch-up, checkpoint-replay rejoin of partition-confirmed nodes
  // that are actually alive, and a detector re-arm.
  void on_partition(std::size_t idx, bool open);
  // The rejoin body shared by crash restarts and partition heals: fold the
  // node's post-snapshot deltas into the current homes, demote its stale
  // authority, reset its detector state.
  void rejoin_node(cluster::NodeId n, Time now);
  // Confirmed death of `dead`: epoch bump, re-election of every zone homed
  // there to the first live chain member, checkpoint realization, in-flight
  // traffic failover.
  void confirm_death(cluster::NodeId dead, cluster::NodeId watcher, Time silence);
  // Quorum gate for confirm_death under partitions: the watcher must reach a
  // strict majority of the live cluster (no minority-side promotions) and a
  // majority of the dead home's chain members must themselves have lost
  // contact with it. Trivially true when no partitions are configured — the
  // crash-only recovery goldens stay byte-identical.
  bool promotion_quorum(cluster::NodeId dead, cluster::NodeId watcher, Time now) const;
  // First live member of `dead`'s chain reachable from the promoting
  // watcher; fails fast (diagnosable HYP_PANIC) when the zone has lost all
  // K+1 copies.
  cluster::NodeId elect_home(cluster::NodeId zone, cluster::NodeId dead,
                             cluster::NodeId watcher, Time now) const;
  // Moves zone `zone` from dying home `dead` to `new_home`: realizes the
  // mirrored bytes, transfers home authority + monitor tables, charges the
  // final-checkpoint install on the new home's service queue.
  void move_zone(cluster::NodeId zone, cluster::NodeId dead, cluster::NodeId new_home);
  // Zone page range of `zone` as [first, last).
  void zone_pages(cluster::NodeId zone, dsm::PageId* first, dsm::PageId* last) const;
  // Emits (or forwards) one checkpoint message of the modeled stream:
  // `from` -> chain_member(origin, hop), paced by the ckpt_bw budget.
  void send_checkpoint(cluster::NodeId from, cluster::NodeId origin, std::uint32_t hop,
                       std::uint32_t delta_bytes);
  void handle_checkpoint(cluster::Incoming& in, cluster::NodeId self);

  cluster::Cluster* cluster_;
  dsm::DsmSystem* dsm_;
  hyperion::MonitorSubsystem* monitors_;
  std::vector<cluster::NodeId> zone_home_;  // routing table (identity until promotion)
  // Incremental reverse indexes so re-election and restart never scan all
  // zones: home_zones_[n] = zones currently homed at n; snap_zones_[n] =
  // zones whose promotion-time snapshot was taken from n. Both kept in
  // ascending zone order — the order the old 0..n-1 full scans visited.
  std::vector<std::vector<cluster::NodeId>> home_zones_;
  std::vector<std::vector<cluster::NodeId>> snap_zones_;
  std::vector<Health> health_;
  std::vector<ZoneSnap> zone_snaps_;  // indexed by zone
  std::uint32_t chain_depth_ = 1;     // min(replicas, node_count - 1)
  bool stream_enabled_ = false;
  // True when the profile schedules partition windows: per-watcher heartbeat
  // views, quorum-gated promotion and per-node epoch propagation engage.
  // False keeps every detector/promotion path byte-identical to the
  // crash-only model the recovery goldens pin.
  bool partitions_cfg_ = false;
  // heard_[w][t]: the last virtual time watcher w received node t's
  // heartbeat (allocated only when partitions_cfg_ — a cut watcher's view
  // diverges from the global last_heard).
  std::vector<std::vector<Time>> heard_;
  // Per-node view of the routing epoch: promotions update only the nodes
  // reachable from the promoting watcher; heals catch everyone up. This is
  // the fencing token source (HaHooks::node_epoch).
  std::vector<std::uint64_t> node_epoch_;
  std::uint64_t epoch_ = 0;
  std::uint64_t promotions_ = 0;  // confirmed failures handled so far
  bool stopped_ = false;
  cluster::NodeId promoted_for_ = -1;  // most recent confirmed dead node
  // Per-node virtual time until which the checkpoint stream's bandwidth
  // budget is spoken for (ckpt_bw pacing; unused when ckpt_bw == 0).
  std::vector<Time> ckpt_busy_until_;
};

}  // namespace hyp::ha
