// High availability: failure detection, home-state replication, re-election.
//
// The paper's model is a dedicated, lossless cluster; this subsystem asks the
// complementary question the roadmap leaves open: what must a *centralized*
// home-based protocol add to survive the loss of a home node? The answer
// implemented here (docs/RECOVERY.md):
//
//   1. Failure detection — every node heartbeats its ring successor on an
//      out-of-band management path each `hb_interval`; the successor suspects
//      its predecessor after `suspect_after` of silence and confirms it dead
//      after `confirm_after`. All timeouts are virtual-time constants from
//      the FaultProfile, so detection latency is deterministic.
//   2. Replicated home state — each home zone (pages + monitor tables) has a
//      deterministic backup: the ring successor B(N) = (N+1) mod n, the same
//      node that watches N. Incremental checkpoints piggyback on the update/
//      ack traffic the consistency protocol already generates (accounted via
//      note_checkpoint -> kHaCheckpointBytes); the simulator realizes the
//      mirrored state at promotion time, which is observationally equivalent
//      to a synchronous mirror (zero loss).
//   3. Home re-election — on confirmed death the backup promotes itself:
//      cluster-wide epoch bump, the HA routing table points the dead zone at
//      the backup, in-flight RPCs against the dead node fail over through the
//      typed-error retry paths (same op id => the monitor reattach/dedup
//      machinery absorbs previously applied attempts), and stale-home
//      stragglers are NACKed.
//   4. Restart/rejoin — at the crash window's end the node returns with no
//      home authority (its zone stays at the backup for the rest of the run)
//      and resumes as a cacher; its threads survive under the
//      thread-checkpoint model (fibers, write logs and cached pages are part
//      of the mirrored state).
//
// Single-failure model: exactly one crash window per run (HYP_CHECKed). This
// is what makes per-message NACKs and representative-page re-resolution
// sound; tolerating concurrent failures would need quorum placement.
//
// When the fault profile schedules no crash window the VM never constructs a
// HaManager and every hook in cluster/dsm/hyperion is a null-pointer test —
// the event sequence stays bit-identical to the goldens.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/ha_hooks.hpp"
#include "dsm/dsm.hpp"
#include "hyperion/monitor.hpp"

namespace hyp::ha {

class HaManager final : public cluster::HaHooks {
 public:
  HaManager(cluster::Cluster* cluster, dsm::DsmSystem* dsm,
            hyperion::MonitorSubsystem* monitors);
  HaManager(const HaManager&) = delete;
  HaManager& operator=(const HaManager&) = delete;

  // Validates the profile's crash schedule, posts the heartbeat tick chains
  // and the crash/restart events. Call once, before Cluster::run().
  void start();
  // Ends the self-chaining detector ticks so the engine can quiesce. Called
  // when the Java main thread finishes (HyperionVM::run_main).
  void stop();

  // Deterministic backup placement: the ring successor.
  cluster::NodeId backup_of(cluster::NodeId n) const {
    return (n + 1) % cluster_->node_count();
  }

  // --- cluster::HaHooks ----------------------------------------------------
  cluster::NodeId home_node(int zone) const override {
    return zone_home_[static_cast<std::size_t>(zone)];
  }
  bool confirmed_dead(cluster::NodeId node) const override {
    return health_[static_cast<std::size_t>(node)].confirmed;
  }
  std::uint64_t epoch() const override { return epoch_; }
  Time retry_hold(cluster::NodeId target, Time now) const override;
  void note_checkpoint(cluster::NodeId home, std::uint64_t bytes) override;

  // --- introspection (tests) ----------------------------------------------
  bool promoted() const { return promoted_for_ != -1; }
  cluster::NodeId promoted_for() const { return promoted_for_; }

 private:
  struct Health {
    Time last_heard = 0;  // virtual time of the last heartbeat received
    bool suspected = false;
    bool confirmed = false;
  };

  // One self-chaining detector tick per node: emit the heartbeat to the ring
  // successor (if alive), run watcher duty over the ring predecessor.
  void tick(cluster::NodeId n);
  void on_crash(const cluster::FaultWindow& c);
  void on_restart(const cluster::FaultWindow& c);
  // Confirmed death: epoch bump, routing-table update, checkpoint
  // realization (zone bytes + monitor tables to the backup), in-flight
  // traffic failover.
  void promote(cluster::NodeId dead, cluster::NodeId watcher, Time silence);
  // Zone page range of `node` as [first, last).
  void zone_pages(cluster::NodeId node, dsm::PageId* first, dsm::PageId* last) const;

  cluster::Cluster* cluster_;
  dsm::DsmSystem* dsm_;
  hyperion::MonitorSubsystem* monitors_;
  std::vector<cluster::NodeId> zone_home_;  // routing table (identity until promotion)
  std::vector<Health> health_;
  std::uint64_t epoch_ = 0;
  bool stopped_ = false;
  cluster::NodeId promoted_for_ = -1;  // dead node whose zone moved; -1 = none
  Time crash_started_ = 0;
  // Pristine copy of the dead zone taken at promotion. The restart event
  // diffs the dead node's arena against it to realize the *final* checkpoint:
  // stores by the dead node's own threads that the engine's freeze model
  // timestamps inside the crash window (compute initiated before the crash)
  // still reach the mirrored copy, as they would on a real machine.
  std::vector<std::byte> zone_snapshot_;
};

}  // namespace hyp::ha
