// HyperionVM: the single JVM image spanning the cluster.
//
// "We view a cluster as executing a single Java Virtual Machine, where the
// nodes are resources for the distributed execution of Java threads with
// true concurrency" (§1). The VM owns the simulated cluster, the DSM, the
// monitor subsystem and the load balancer; run_main() executes a program as
// the primary Java thread and returns the virtual execution time — the
// quantity plotted in Figures 1-5.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cluster/cluster.hpp"
#include "dsm/access.hpp"
#include "dsm/dsm.hpp"
#include "hyperion/load_balancer.hpp"
#include "hyperion/monitor.hpp"
#include "hyperion/object.hpp"

namespace hyp::ha {
class HaManager;
}

namespace hyp::hyperion {

using cluster::NodeId;

struct VmConfig {
  cluster::ClusterParams cluster = cluster::ClusterParams::myrinet200();
  int nodes = 0;  // 0 = the preset's paper-figure size
  dsm::ProtocolKind protocol = dsm::ProtocolKind::kJavaPf;
  std::size_t region_bytes = std::size_t{256} << 20;

  // --- observability attachments (optional; nullptr = off) -----------------
  // All three observe without perturbing: attaching them cannot change the
  // virtual time of a run (tests/determinism_golden_test.cpp pins this).
  // The caller owns the objects and must keep them alive for the VM's
  // lifetime; heat/phases are (re)initialized by the VM constructor to the
  // run's region layout and node count.
  cluster::TraceLog* trace = nullptr;     // protocol event log
  obs::PageHeatTable* heat = nullptr;     // per-page fetch/fault/update heat
  obs::PhaseAccounting* phases = nullptr; // per-node thread-time phase split
  obs::RaceDetector* race = nullptr;      // vector-clock race detection
};

class HyperionVM;
class JavaEnv;

// Handle to a started Java thread.
class JThread {
 public:
  JThread() = default;
  bool valid() const { return fiber_ != nullptr; }
  NodeId node() const { return node_; }

 private:
  friend class JavaEnv;
  friend class HyperionVM;
  sim::Fiber* fiber_ = nullptr;
  NodeId node_ = -1;
  // Race-detector fork token: the parent's clock snapshot the child adopts
  // (start edge) and the child's final clock at exit (join edge). Only
  // meaningful when a detector is attached (docs/RACES.md).
  std::uint64_t race_token_ = 0;
};

// The execution environment of one running Java thread (its ThreadCtx plus
// the VM services compiled code calls into).
class JavaEnv {
 public:
  JavaEnv(HyperionVM* vm, std::unique_ptr<dsm::ThreadCtx> ctx);
  JavaEnv(const JavaEnv&) = delete;
  JavaEnv& operator=(const JavaEnv&) = delete;

  dsm::ThreadCtx& ctx() { return *ctx_; }
  NodeId node() const { return ctx_->node; }
  HyperionVM& vm() { return *vm_; }

  // --- allocation (home = this thread's node, as in Hyperion) -------------
  dsm::Gva alloc_raw(std::size_t bytes, std::size_t align = 8);

  // A shared scalar cell, initialized before publication.
  template <typename T>
  GRef<T> new_cell(T init) {
    GRef<T> r{alloc_raw(sizeof(T), alignof(T) < 8 ? sizeof(T) : 8)};
    ctx_->dsm->poke_home<T>(r.addr, init);
    return r;
  }

  // A Java array (zeroed, with its length header), allocated contiguously so
  // consecutive allocations share pages (§3.1 prefetch effect).
  template <typename T>
  GArray<T> new_array(std::int64_t length) {
    HYP_CHECK(length >= 0);
    GArray<T> a{alloc_raw(GArray<T>::footprint(length), 8)};
    ctx_->dsm->poke_home<std::int32_t>(a.header, static_cast<std::int32_t>(length));
    return a;
  }

  // --- monitors ------------------------------------------------------------
  void monitor_enter(dsm::Gva obj);
  void monitor_exit(dsm::Gva obj);
  void wait(dsm::Gva obj);
  void notify(dsm::Gva obj);
  void notify_all(dsm::Gva obj);

  template <typename Fn>
  void synchronized(dsm::Gva obj, Fn&& fn) {
    monitor_enter(obj);
    fn();
    monitor_exit(obj);
  }

  // --- threads ---------------------------------------------------------------
  // Starts a Java thread; the load balancer picks its node. Thread start and
  // join carry the JMM happens-before edges (flush on start, invalidate
  // after join).
  JThread start_thread(std::string name, std::function<void(JavaEnv&)> body);
  void join(JThread& thread);

  // --- thread migration (PM2's signature feature; paper §5 future work) ----
  // Moves this thread to `target`: the working memory is flushed (release
  // semantics), the thread state travels over the network, and execution
  // resumes on the target node with a clean cache (acquire semantics).
  // Iso-addressing means every GRef/GArray the thread holds stays valid —
  // exactly PM2's "pointer validity under migration" guarantee (§3.1).
  // `state_bytes` models the thread's stack + descriptor payload.
  void migrate_to(NodeId target, std::size_t state_bytes = 8192);

  // --- race-detector annotation (no-op when no detector is attached) -------
  // Declares [addr, addr + bytes) a deliberate benign race: TSP-style stale
  // reads of a monotonic bound are real JMM races the program tolerates by
  // design, and the detector tallies rather than reports them. Zero virtual
  // time either way (docs/RACES.md).
  void mark_benign(dsm::Gva addr, std::size_t bytes);

  // --- compute accounting ---------------------------------------------------
  void charge_cycles(std::uint64_t n) { ctx_->clock.charge_cycles(n); }
  Time now() const;

 private:
  HyperionVM* vm_;
  std::unique_ptr<dsm::ThreadCtx> ctx_;
};

class HyperionVM {
 public:
  explicit HyperionVM(VmConfig config);
  ~HyperionVM();  // out-of-line: ha_ holds a forward-declared HaManager
  HyperionVM(const HyperionVM&) = delete;
  HyperionVM& operator=(const HyperionVM&) = delete;

  // Runs `main_fn` as the primary Java thread on node 0 and drives the
  // simulation to completion. Returns the virtual time at which main (and
  // everything it joined) finished.
  Time run_main(std::function<void(JavaEnv&)> main_fn);

  int nodes() const { return cluster_.node_count(); }
  dsm::ProtocolKind protocol() const { return config_.protocol; }
  cluster::Cluster& cluster() { return cluster_; }
  dsm::DsmSystem& dsm() { return dsm_; }
  MonitorSubsystem& monitors() { return monitors_; }
  // The high-availability manager; non-null iff the fault profile schedules
  // a crash window or a partition window that splits this run's nodes
  // (docs/RECOVERY.md, docs/PARTITIONS.md). Constructed and wired
  // automatically.
  ha::HaManager* ha() { return ha_.get(); }
  LoadBalancer& balancer() { return *balancer_; }
  void set_balancer(std::unique_ptr<LoadBalancer> b) { balancer_ = std::move(b); }

  Stats stats() const { return cluster_.total_stats(); }
  Time elapsed() const { return elapsed_; }

 private:
  friend class JavaEnv;
  VmConfig config_;
  cluster::Cluster cluster_;
  dsm::DsmSystem dsm_;
  MonitorSubsystem monitors_;
  std::unique_ptr<ha::HaManager> ha_;
  std::unique_ptr<LoadBalancer> balancer_;
  int threads_started_ = 0;
  Time elapsed_ = 0;
};

}  // namespace hyp::hyperion
