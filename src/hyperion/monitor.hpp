// Object monitors (Java `synchronized`, wait/notify).
//
// Every shared object has a monitor managed at the object's home node,
// matching Hyperion's centralized object management: entering a monitor from
// a remote node is an RPC to the home; the home's manager is an event-driven
// state machine (handlers never block) that queues contenders FIFO and
// grants by deferred reply. Local threads use the same state machine
// directly, paying a cycles-only cost.
//
// The memory subsystem's consistency hooks are driven from the caller side:
//   enter: (grant) -> DsmSystem::on_acquire  (flush + invalidate)
//   exit:  DsmSystem::on_release (flush) -> release message
//   wait:  release-side flush, then blocks; acquire effects after re-grant
// This is the §3.1 protocol skeleton shared by java_ic and java_pf.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "dsm/dsm.hpp"

namespace hyp::hyperion {

namespace svc {
inline constexpr cluster::ServiceId kMonitorEnter = 20;
inline constexpr cluster::ServiceId kMonitorExit = 21;
inline constexpr cluster::ServiceId kMonitorWait = 22;
inline constexpr cluster::ServiceId kMonitorNotify = 23;
}  // namespace svc

class MonitorSubsystem {
 public:
  MonitorSubsystem(cluster::Cluster* cluster, dsm::DsmSystem* dsm);
  MonitorSubsystem(const MonitorSubsystem&) = delete;
  MonitorSubsystem& operator=(const MonitorSubsystem&) = delete;

  // Blocking caller-side operations (run on Java-thread fibers). `obj` is
  // the object's global address; its monitor lives at the object's home.
  void enter(dsm::ThreadCtx& t, dsm::Gva obj);
  void exit(dsm::ThreadCtx& t, dsm::Gva obj);
  // Java Object.wait(): caller must hold the monitor (any depth; fully
  // released while waiting, restored on return).
  void wait(dsm::ThreadCtx& t, dsm::Gva obj);
  void notify_one(dsm::ThreadCtx& t, dsm::Gva obj);
  void notify_all(dsm::ThreadCtx& t, dsm::Gva obj);

  // --- high availability (optional; nullptr = off, docs/RECOVERY.md) -------
  // With hooks installed, monitor homes resolve through the HA routing table,
  // remote ops re-resolve the home per attempt (carrying the SAME op id, so
  // the new home's reattach/dedup absorbs a previously applied attempt), and
  // stale-home requests are NACKed (1-byte reply) instead of asserting.
  // When the fault profile also schedules partition windows, every remote op
  // additionally carries the caller's epoch view and every success reply the
  // home's (epoch fencing, docs/PARTITIONS.md): a stale-epoch request is
  // NACKed before it can mutate monitor state, and a stale-epoch reply is
  // discarded by the caller like a NACK.
  void set_ha(cluster::HaHooks* ha) {
    ha_ = ha;
    fencing_ = ha != nullptr && !cluster_->params().fault.partitions.empty();
  }
  // Moves the monitors of objects in the global-address range [zbegin, zend)
  // from the dead node's table to the backup's (the simulator realizes the
  // checkpointed state the incremental replication stream has been
  // mirroring). Called once per re-elected zone: with replicas > 1 the dead
  // node's zones may be promoted to *different* chain members, so the move is
  // range-filtered rather than wholesale. The dead home's applied-op-id set
  // is copied (not cleared) into the backup's so a retry of an op the dead
  // home had applied re-attaches instead of double-applying. Local
  // contenders' fiber pointers stay valid: fibers survive a crash under the
  // thread-checkpoint model.
  void fail_over_home(cluster::NodeId dead, cluster::NodeId backup,
                      std::uint64_t zbegin, std::uint64_t zend);

 private:
  // A thread waiting for a grant: either a local fiber to unpark or a remote
  // caller to answer by token.
  struct Contender {
    std::uint64_t uid;   // thread uid (becomes the owner on grant)
    bool local;
    sim::Fiber* fiber = nullptr;       // local: fiber to unpark on grant
    bool* granted_flag = nullptr;      // local: set true on grant
    cluster::NodeId from = -1;         // contender's node (grants defer while it
                                       // is inside a crash window)
    std::uint64_t reply_token = 0;     // remote
    std::uint32_t grant_depth = 1;     // depth restored on grant (wait=saved)
  };

  struct MonitorState {
    std::uint64_t owner_uid = 0;  // 0 = free
    std::uint32_t depth = 0;
    std::deque<Contender> queue;     // FIFO enter queue
    std::vector<Contender> wait_set; // waiting for notify
  };

  // State-machine transitions (run at the home node).
  void do_enter(cluster::NodeId home, dsm::Gva obj, Contender contender);
  void do_exit(cluster::NodeId home, dsm::Gva obj, std::uint64_t uid);
  void do_wait(cluster::NodeId home, dsm::Gva obj, Contender contender);
  void do_notify(cluster::NodeId home, dsm::Gva obj, std::uint64_t uid, bool all);
  void grant_next_if_free(cluster::NodeId home, MonitorState& m);
  void grant(cluster::NodeId home, MonitorState& m, Contender contender);

  // RPC handlers (home side).
  void handle_enter(cluster::Incoming& in, cluster::NodeId self);
  void handle_exit(cluster::Incoming& in, cluster::NodeId self);
  void handle_wait(cluster::Incoming& in, cluster::NodeId self);
  void handle_notify(cluster::Incoming& in, cluster::NodeId self);

  MonitorState& state(cluster::NodeId home, dsm::Gva obj);

  // --- transport-failure degradation (docs/FAULTS.md) -----------------------
  //
  // Monitor transitions are NOT naturally idempotent (a doubled exit corrupts
  // the depth count), so under an active lossy transport every remote op
  // carries a cluster-unique op id; the home records applied ids and treats a
  // retried-but-applied op as "re-attach": re-grant to the owner, repoint a
  // queued/waiting contender's reply coordinates at the live call, or re-ack.
  // Quiet networks keep the historical wire format byte-for-byte (the op id
  // is only appended when Cluster::transport_active()).
  //
  // `all_flag` >= 0 appends the notify one/all byte. Retries the whole call
  // up to kRpcAttempts times on typed transport failure, then aborts with the
  // transport's diagnostic naming the home node and service.
  Buffer remote_invoke(dsm::ThreadCtx& t, cluster::NodeId home, cluster::ServiceId service,
                       dsm::Gva obj, int all_flag = -1);
  // Parses the op id (lossy runs only) and dedups it. Returns true when the
  // message is a retry of an op the home has already applied.
  bool op_already_applied(cluster::Incoming& in, cluster::NodeId self);
  void reattach_enter(cluster::Incoming& in, cluster::NodeId self, dsm::Gva obj,
                      std::uint64_t uid);
  void reattach_wait(cluster::Incoming& in, cluster::NodeId self, dsm::Gva obj,
                     std::uint64_t uid);
  // HA: answers a stale-home straggler with a 1-byte NACK (before the op id
  // is recorded) and returns true; false = this node owns the monitor.
  bool nack_if_stale(cluster::Incoming& in, cluster::NodeId self, dsm::Gva obj,
                     cluster::ServiceId service);
  // Epoch fencing (partitions only): consumes the request's epoch token and,
  // when it predates this node's view, NACKs (1 byte) and returns true.
  bool fenced(cluster::Incoming& in, cluster::NodeId self, cluster::ServiceId service);
  // Success reply body: empty historically, the home's 8-byte epoch view
  // under fencing (the caller validates it against its own).
  Buffer make_ack(cluster::NodeId self) const;

  cluster::Cluster* cluster_;
  dsm::DsmSystem* dsm_;
  cluster::HaHooks* ha_ = nullptr;
  bool fencing_ = false;  // ha_ installed AND partition windows scheduled
  // monitors_[home] maps object address -> state.
  std::vector<std::map<dsm::Gva, MonitorState>> monitors_;
  // Lossy-transport idempotence state (empty on quiet networks): the next
  // cluster-unique op id, and per home node the set of applied op ids.
  std::uint64_t next_op_id_ = 1;
  std::vector<std::set<std::uint64_t>> applied_ops_;
  static constexpr int kRpcAttempts = 3;

  // Cycle costs for the manager's bookkeeping (charged to the home service
  // for remote callers, to the caller's clock for local ones).
  static constexpr std::uint64_t kManagerCycles = 60;
  static constexpr std::uint64_t kLocalLockCycles = 40;
};

}  // namespace hyp::hyperion
