#include "hyperion/monitor.hpp"

#include <cstring>

#include "cluster/ha_hooks.hpp"
#include "common/assert.hpp"

namespace hyp::hyperion {

// Wire format: every monitor message starts (u64 obj, u64 uid); with epoch
// fencing on (partition windows scheduled) the caller's u64 epoch view
// follows; under an active lossy transport a u64 op id follows that
// (remote_invoke/op_already_applied below); notify appends a one/all byte.
// Success replies are empty historically, the home's 8-byte epoch view under
// fencing; a 1-byte reply is always a NACK.

MonitorSubsystem::MonitorSubsystem(cluster::Cluster* cluster, dsm::DsmSystem* dsm)
    : cluster_(cluster),
      dsm_(dsm),
      monitors_(static_cast<std::size_t>(cluster->node_count())),
      applied_ops_(static_cast<std::size_t>(cluster->node_count())) {
  for (cluster::NodeId n = 0; n < cluster->node_count(); ++n) {
    auto& node = cluster_->node(n);
    node.register_service(svc::kMonitorEnter, "monitor_enter",
                          [this, n](cluster::Incoming& in) { handle_enter(in, n); });
    node.register_service(svc::kMonitorExit, "monitor_exit",
                          [this, n](cluster::Incoming& in) { handle_exit(in, n); });
    node.register_service(svc::kMonitorWait, "monitor_wait",
                          [this, n](cluster::Incoming& in) { handle_wait(in, n); });
    node.register_service(svc::kMonitorNotify, "monitor_notify",
                          [this, n](cluster::Incoming& in) { handle_notify(in, n); });
  }
}

// ---------------------------------------------------------------------------
// Transport-failure degradation (docs/FAULTS.md)

Buffer MonitorSubsystem::remote_invoke(dsm::ThreadCtx& t, cluster::NodeId home,
                                       cluster::ServiceId service, dsm::Gva obj, int all_flag) {
  const bool lossy = cluster_->transport_active();
  const std::uint64_t op = lossy ? next_op_id_++ : 0;
  auto build = [&]() {
    Buffer b;
    b.put<std::uint64_t>(obj);
    b.put<std::uint64_t>(t.uid);
    // Per-attempt epoch token: a retry after a promotion carries the caller's
    // caught-up view, so only genuinely stale attempts get fenced.
    if (fencing_) b.put<std::uint64_t>(ha_->node_epoch(t.node));
    if (lossy) b.put<std::uint64_t>(op);
    if (all_flag >= 0) b.put<std::uint8_t>(static_cast<std::uint8_t>(all_flag));
    return b;
  };
  if (!lossy) {
    if (!dsm_->migrations_enabled()) {
      // Lossless network: the historical always-succeeds path, byte-identical
      // wire format (no op id).
      return cluster_->call(t.node, home, service, build());
    }
    // Heat-driven home migration (docs/PROTOCOLS.md §hybrid) can move the
    // monitor while this call is in flight; the old home answers with a
    // 1-byte NACK *before* touching monitor state, so a plain re-resolve and
    // resend is a fresh first apply. The new home may be this node itself
    // (the dominant writer), which the loopback path handles.
    cluster::NodeId target = home;
    for (int guard = 0; guard < 64; ++guard) {
      Buffer reply = cluster_->call(t.node, target, service, build());
      if (reply.size() != 1) return reply;
      t.stats->add(Counter::kHaReroutes);
      target = dsm_->effective_home_of(obj);
    }
    HYP_PANIC("monitor home migration reroute did not converge");
  }
  if (ha_ == nullptr) {
    cluster::NodeId target = home;
    int failures = 0;
    for (int guard = 0; guard < 256; ++guard) {
      cluster::RpcResult r = cluster_->call_result(t.node, target, service, build());
      if (r.ok()) {
        if (!dsm_->migrations_enabled() || r.payload.size() != 1) {
          return std::move(r.payload);
        }
        // Migration NACK under a lossy transport: retry at the current home
        // with the SAME op id, so an op an earlier home did apply (ack lost)
        // reattaches instead of double-applying.
        t.stats->add(Counter::kHaReroutes);
        target = dsm_->effective_home_of(obj);
        failures = 0;
        continue;
      }
      if (++failures >= kRpcAttempts) {
        HYP_PANIC("monitor operation abandoned after " + std::to_string(failures) +
                  " attempts: " + r.error.message);
      }
    }
    HYP_PANIC("monitor home migration reroute did not converge");
  }
  // HA path: re-resolve the monitor's home per attempt. Every attempt carries
  // the SAME op id, so whichever home finally applies the op absorbs earlier
  // attempts through its reattach/dedup machinery (a previously applied
  // enter/wait re-grants or repoints; exit/notify re-ack). A 1-byte reply is
  // a stale-home NACK: loop and re-resolve. Success is an empty reply, or the
  // home's 8-byte epoch view under fencing.
  const std::size_t ok_size = fencing_ ? sizeof(std::uint64_t) : 0;
  auto* eng = sim::Engine::current();
  const Time started = eng->now();
  cluster::NodeId target = home;
  int attempts_at_target = 0;
  bool rerouted = false;
  for (int guard = 0; guard < 64; ++guard) {
    const cluster::NodeId now_home = dsm_->effective_home_of(obj);
    if (now_home != target) {
      target = now_home;
      attempts_at_target = 0;
      rerouted = true;
      t.stats->add(Counter::kHaReroutes);
    }
    ++attempts_at_target;
    cluster::RpcResult r = cluster_->call_result(t.node, target, service, build());
    if (r.ok() && r.payload.size() == ok_size) {
      if (fencing_) {
        // A success reply stamped under an epoch this side has fenced off is
        // discarded like a NACK: re-resolve and retry (the same op id makes
        // the retry reattach if the op did land somewhere authoritative).
        std::uint64_t reply_epoch = 0;
        std::memcpy(&reply_epoch, r.payload.data(), sizeof(reply_epoch));
        if (reply_epoch < ha_->node_epoch(t.node)) {
          t.stats->add(Counter::kHaFencedRejects);
          cluster_->trace_event(t.node, cluster::TraceKind::kHaFencedReject,
                                static_cast<std::int64_t>(reply_epoch), service);
          continue;
        }
      }
      if (rerouted) t.stats->record(Hist::kHaRerouteWait, eng->now() - started);
      return Buffer{};
    }
    if (!r.ok() && r.error.status == cluster::RpcStatus::kNoQuorum) {
      // Minority-side degradation (see DsmSystem::ha_rpc_home): park until
      // the surviving side can have re-homed the monitor or the heal instant.
      attempts_at_target = 0;
      t.stats->add(Counter::kHaNoQuorumHolds);
      const auto& f = cluster_->params().fault;
      const Time at = eng->now();
      const Time heal = f.severed_until(t.node, target, at);
      if (heal > at) {
        Time wake = heal;
        const Time confirm_by =
            f.severed_since(t.node, target, at) + f.confirm_after + 2 * f.hb_interval;
        if (confirm_by > at && confirm_by < wake) wake = confirm_by;
        eng->sleep_until(wake);
      }
      continue;
    }
    // r.ok() with a non-empty payload is a stale-home NACK; fall through to
    // re-resolve. A typed failure against a node the detector has not (yet)
    // confirmed dead is a genuine transport exhaustion: abort as before.
    if (!r.ok() && attempts_at_target >= kRpcAttempts && !ha_->confirmed_dead(target)) {
      HYP_PANIC("monitor operation abandoned after " + std::to_string(attempts_at_target) +
                " attempts: " + r.error.message);
    }
    const Time now = eng->now();
    Time hold = ha_->retry_hold(target, now);
    if (fencing_ && r.ok()) {
      // The NACK may mean OUR epoch is stale (see DsmSystem::ha_rpc_home):
      // a node inside an open partition window catches up only at the heal.
      const Time release = cluster_->params().fault.partition_release(t.node, now);
      if (release > hold) hold = release;
    }
    if (hold > now) eng->sleep_until(hold);
  }
  HYP_PANIC("monitor home failover did not converge (epoch " +
            std::to_string(ha_->epoch()) + ")");
}

bool MonitorSubsystem::op_already_applied(cluster::Incoming& in, cluster::NodeId self) {
  if (!cluster_->transport_active()) return false;
  const auto op = in.reader.get<std::uint64_t>();
  return !applied_ops_[static_cast<std::size_t>(self)].insert(op).second;
}

void MonitorSubsystem::reattach_enter(cluster::Incoming& in, cluster::NodeId self, dsm::Gva obj,
                                      std::uint64_t uid) {
  // The original enter was applied but its grant (or queue position) was cut
  // off from the caller; the caller is still parked in the retried call.
  MonitorState& m = state(self, obj);
  if (m.owner_uid == uid) {
    cluster_->reply(in, make_ack(self));  // the lost grant, re-issued
    return;
  }
  for (Contender& c : m.queue) {
    if (!c.local && c.uid == uid) {
      c.from = in.from;
      c.reply_token = in.reply_token;  // grant will answer the live call
      return;
    }
  }
  HYP_PANIC("monitor enter retry from uid " + std::to_string(uid) +
            " found neither ownership nor a queued contender (home node " +
            std::to_string(self) + ")");
}

void MonitorSubsystem::reattach_wait(cluster::Incoming& in, cluster::NodeId self, dsm::Gva obj,
                                     std::uint64_t uid) {
  MonitorState& m = state(self, obj);
  if (m.owner_uid == uid) {
    cluster_->reply(in, make_ack(self));  // notify + re-grant already happened
    return;
  }
  for (Contender& c : m.queue) {
    if (!c.local && c.uid == uid) {
      c.from = in.from;
      c.reply_token = in.reply_token;
      return;
    }
  }
  for (Contender& c : m.wait_set) {
    if (!c.local && c.uid == uid) {
      c.from = in.from;
      c.reply_token = in.reply_token;
      return;
    }
  }
  HYP_PANIC("monitor wait retry from uid " + std::to_string(uid) +
            " found no waiting contender (home node " + std::to_string(self) + ")");
}

MonitorSubsystem::MonitorState& MonitorSubsystem::state(cluster::NodeId home, dsm::Gva obj) {
  return monitors_[static_cast<std::size_t>(home)][obj];
}

// ---------------------------------------------------------------------------
// High availability (docs/RECOVERY.md)

bool MonitorSubsystem::nack_if_stale(cluster::Incoming& in, cluster::NodeId self, dsm::Gva obj,
                                     cluster::ServiceId service) {
  // Stale routing arises from HA promotions and from heat-driven home
  // migration (the two share this NACK discipline); with neither active the
  // static home can never be wrong and the check costs nothing.
  if (ha_ == nullptr && !dsm_->migrations_enabled()) return false;
  if (dsm_->effective_home_of(obj) == self) return false;
  // A straggler routed under an older epoch. Answer with a 1-byte NACK (all
  // monitor successes are empty replies) BEFORE the op id is recorded, so the
  // caller's retry at the promoted home is a fresh apply, not a reattach.
  cluster_->trace_event(self, cluster::TraceKind::kHaNack, in.from, service);
  Buffer nack;
  nack.put<std::uint8_t>(1);
  cluster_->reply(in, std::move(nack));
  return true;
}

bool MonitorSubsystem::fenced(cluster::Incoming& in, cluster::NodeId self,
                              cluster::ServiceId service) {
  const auto msg_epoch = in.reader.get<std::uint64_t>();
  if (msg_epoch >= ha_->node_epoch(self)) return false;
  // The request was built under a routing view this node has superseded:
  // reject it before it can touch monitor state or record its op id (the
  // caller's retry under the fresh epoch is then an ordinary first apply).
  cluster_->node(self).stats().add(Counter::kHaFencedRejects);
  cluster_->trace_event(self, cluster::TraceKind::kHaFencedReject,
                        static_cast<std::int64_t>(msg_epoch), service);
  Buffer nack;
  nack.put<std::uint8_t>(1);
  cluster_->reply(in, std::move(nack));
  return true;
}

Buffer MonitorSubsystem::make_ack(cluster::NodeId self) const {
  Buffer ack;
  if (fencing_) ack.put<std::uint64_t>(ha_->node_epoch(self));
  return ack;
}

void MonitorSubsystem::fail_over_home(cluster::NodeId dead, cluster::NodeId backup,
                                      std::uint64_t zbegin, std::uint64_t zend) {
  auto& src = monitors_[static_cast<std::size_t>(dead)];
  auto& dst = monitors_[static_cast<std::size_t>(backup)];
  // Range-filtered move: only this zone's objects follow the promotion (other
  // zones homed at `dead` may be elected to different chain members).
  for (auto it = src.lower_bound(static_cast<dsm::Gva>(zbegin)); it != src.end();) {
    if (it->first >= static_cast<dsm::Gva>(zend)) break;
    const bool fresh = dst.emplace(it->first, std::move(it->second)).second;
    HYP_CHECK_MSG(fresh, "monitor failover collision: backup already manages the object");
    it = src.erase(it);
  }
  // The applied-op-id set is copied (not cleared: another zone's promotion
  // may still need it) so a retry of an op the dead home had applied (but
  // whose ack was lost) re-attaches at the backup instead of double-applying.
  auto& sops = applied_ops_[static_cast<std::size_t>(dead)];
  applied_ops_[static_cast<std::size_t>(backup)].insert(sops.begin(), sops.end());
}

// ---------------------------------------------------------------------------
// Caller side

void MonitorSubsystem::enter(dsm::ThreadCtx& t, dsm::Gva obj) {
  t.stats->add(Counter::kMonitorEnters);
  cluster_->trace_event(t.node, cluster::TraceKind::kMonitorEnter,
                        static_cast<std::int64_t>(obj), static_cast<std::int64_t>(t.uid));
  cluster::NodeId home = dsm_->effective_home_of(obj);
  // Acquire-wait observation: measured from after the thread's batched
  // compute is materialized (so pending cycles are not misattributed to lock
  // contention) until the grant arrives. Recording is pure accumulation plus
  // clock reads — attaching it cannot shift virtual time.
  Time requested_at;
  if (home == t.node) {
    t.clock.charge_cycles(kLocalLockCycles);
    t.clock.flush();
    // flush() parks this fiber; a heat migration can move the monitor away
    // meanwhile (an update handler fires it). Re-resolve, or the local path
    // below would mutate the stale map whose state already moved.
    if (dsm_->migrations_enabled()) home = dsm_->effective_home_of(obj);
  }
  if (home == t.node) {
    requested_at = cluster_->engine().now();
    bool granted = false;
    Contender c;
    c.uid = t.uid;
    c.local = true;
    c.fiber = sim::Engine::current()->current_fiber();
    c.granted_flag = &granted;
    c.from = t.node;  // the grant defers while this node is in a crash window
    do_enter(home, obj, std::move(c));
    while (!granted) sim::Engine::current()->park();
  } else {
    t.clock.flush();
    requested_at = cluster_->engine().now();
    Buffer grant_msg = remote_invoke(t, home, svc::kMonitorEnter, obj);
    HYP_CHECK(grant_msg.empty());
  }
  const TimeDelta waited = cluster_->engine().now() - requested_at;
  t.stats->record(Hist::kMonitorAcquireWait, waited);
  cluster_->phase_add(t.node, obs::Phase::kBlockedMonitor, waited);
  cluster_->trace_event(t.node, cluster::TraceKind::kMonitorAcquired,
                        static_cast<std::int64_t>(obj), static_cast<std::int64_t>(t.uid));
  // Happens-before: the acquirer inherits the clock the last releaser left
  // on this monitor (the detector only accumulates; docs/RACES.md).
  if (t.race != nullptr) [[unlikely]] t.race->lock_acquire(t.race_tid, obj);
  dsm_->on_acquire(t);
}

void MonitorSubsystem::exit(dsm::ThreadCtx& t, dsm::Gva obj) {
  t.stats->add(Counter::kMonitorExits);
  cluster_->trace_event(t.node, cluster::TraceKind::kMonitorExit,
                        static_cast<std::int64_t>(obj), static_cast<std::int64_t>(t.uid));
  // Happens-before: publish this thread's clock on the monitor for the next
  // acquirer, then advance the epoch.
  if (t.race != nullptr) [[unlikely]] t.race->lock_release(t.race_tid, obj);
  // Release semantics: modifications must reach central memory before the
  // lock can be taken by anyone else (§3.1, updateMainMemory on exit).
  dsm_->on_release(t);
  cluster::NodeId home = dsm_->effective_home_of(obj);
  if (home == t.node) {
    t.clock.charge_cycles(kLocalLockCycles);
    t.clock.flush();
    // Same mid-flush migration hazard as enter(): re-resolve after parking.
    if (dsm_->migrations_enabled()) home = dsm_->effective_home_of(obj);
  }
  if (home == t.node) {
    do_exit(home, obj, t.uid);
  } else {
    Buffer ack = remote_invoke(t, home, svc::kMonitorExit, obj);
    HYP_CHECK(ack.empty());
  }
}

void MonitorSubsystem::wait(dsm::ThreadCtx& t, dsm::Gva obj) {
  cluster_->trace_event(t.node, cluster::TraceKind::kMonitorWait,
                        static_cast<std::int64_t>(obj), static_cast<std::int64_t>(t.uid));
  // wait() is a release followed (after notify) by an acquire.
  if (t.race != nullptr) [[unlikely]] t.race->lock_release(t.race_tid, obj);
  dsm_->on_release(t);
  cluster::NodeId home = dsm_->effective_home_of(obj);
  // Object.wait is how every §4.1 application builds its barriers: the time
  // from release to re-grant is attributed to Phase::kBarrier.
  Time requested_at;
  if (home == t.node) {
    t.clock.charge_cycles(kLocalLockCycles);
    t.clock.flush();
    // Same mid-flush migration hazard as enter(): re-resolve after parking.
    if (dsm_->migrations_enabled()) home = dsm_->effective_home_of(obj);
  }
  if (home == t.node) {
    requested_at = cluster_->engine().now();
    bool granted = false;
    Contender c;
    c.uid = t.uid;
    c.local = true;
    c.fiber = sim::Engine::current()->current_fiber();
    c.granted_flag = &granted;
    c.from = t.node;  // the grant defers while this node is in a crash window
    do_wait(home, obj, std::move(c));
    while (!granted) sim::Engine::current()->park();
  } else {
    t.clock.flush();
    requested_at = cluster_->engine().now();
    // The reply arrives only after notify + re-grant.
    Buffer grant_msg = remote_invoke(t, home, svc::kMonitorWait, obj);
    HYP_CHECK(grant_msg.empty());
  }
  cluster_->phase_add(t.node, obs::Phase::kBarrier,
                      cluster_->engine().now() - requested_at);
  // Re-acquire side of wait(): inherit the notifier's released clock.
  if (t.race != nullptr) [[unlikely]] t.race->lock_acquire(t.race_tid, obj);
  dsm_->on_acquire(t);
}

void MonitorSubsystem::notify_one(dsm::ThreadCtx& t, dsm::Gva obj) {
  cluster_->trace_event(t.node, cluster::TraceKind::kMonitorNotify,
                        static_cast<std::int64_t>(obj), 0);
  cluster::NodeId home = dsm_->effective_home_of(obj);
  if (home == t.node) {
    t.clock.charge_cycles(kLocalLockCycles);
    t.clock.flush();
    // Same mid-flush migration hazard as enter(): re-resolve after parking.
    if (dsm_->migrations_enabled()) home = dsm_->effective_home_of(obj);
  }
  if (home == t.node) {
    do_notify(home, obj, t.uid, /*all=*/false);
  } else {
    t.clock.flush();
    Buffer ack = remote_invoke(t, home, svc::kMonitorNotify, obj, /*all_flag=*/0);
    HYP_CHECK(ack.empty());
  }
}

void MonitorSubsystem::notify_all(dsm::ThreadCtx& t, dsm::Gva obj) {
  cluster_->trace_event(t.node, cluster::TraceKind::kMonitorNotify,
                        static_cast<std::int64_t>(obj), 1);
  cluster::NodeId home = dsm_->effective_home_of(obj);
  if (home == t.node) {
    t.clock.charge_cycles(kLocalLockCycles);
    t.clock.flush();
    // Same mid-flush migration hazard as enter(): re-resolve after parking.
    if (dsm_->migrations_enabled()) home = dsm_->effective_home_of(obj);
  }
  if (home == t.node) {
    do_notify(home, obj, t.uid, /*all=*/true);
  } else {
    t.clock.flush();
    Buffer ack = remote_invoke(t, home, svc::kMonitorNotify, obj, /*all_flag=*/1);
    HYP_CHECK(ack.empty());
  }
}

// ---------------------------------------------------------------------------
// Home-side state machine

void MonitorSubsystem::do_enter(cluster::NodeId home, dsm::Gva obj, Contender c) {
  MonitorState& m = state(home, obj);
  if (m.owner_uid == c.uid) {  // reentrant acquisition
    ++m.depth;
    grant(home, m, std::move(c));
    return;
  }
  m.queue.push_back(std::move(c));
  grant_next_if_free(home, m);
}

void MonitorSubsystem::do_exit(cluster::NodeId home, dsm::Gva obj, std::uint64_t uid) {
  MonitorState& m = state(home, obj);
  HYP_CHECK_MSG(m.owner_uid == uid, "monitor exit by a thread that does not own it");
  HYP_CHECK(m.depth > 0);
  if (--m.depth == 0) {
    m.owner_uid = 0;
    grant_next_if_free(home, m);
  }
}

void MonitorSubsystem::do_wait(cluster::NodeId home, dsm::Gva obj, Contender c) {
  MonitorState& m = state(home, obj);
  HYP_CHECK_MSG(m.owner_uid == c.uid, "Object.wait without owning the monitor");
  c.grant_depth = m.depth;  // full release; depth restored on re-grant
  m.wait_set.push_back(std::move(c));
  m.owner_uid = 0;
  m.depth = 0;
  grant_next_if_free(home, m);
}

void MonitorSubsystem::do_notify(cluster::NodeId home, dsm::Gva obj, std::uint64_t uid,
                                 bool all) {
  MonitorState& m = state(home, obj);
  HYP_CHECK_MSG(m.owner_uid == uid, "Object.notify without owning the monitor");
  const std::size_t moved = all ? m.wait_set.size() : (m.wait_set.empty() ? 0 : 1);
  for (std::size_t i = 0; i < moved; ++i) {
    m.queue.push_back(std::move(m.wait_set[i]));
  }
  m.wait_set.erase(m.wait_set.begin(),
                   m.wait_set.begin() + static_cast<std::ptrdiff_t>(moved));
  // The notifier still holds the monitor; the moved threads are granted at
  // its exit via grant_next_if_free.
}

void MonitorSubsystem::grant_next_if_free(cluster::NodeId home, MonitorState& m) {
  if (m.owner_uid != 0 || m.queue.empty()) return;
  Contender next = std::move(m.queue.front());
  m.queue.pop_front();
  m.owner_uid = next.uid;
  m.depth = next.grant_depth;
  grant(home, m, std::move(next));
}

void MonitorSubsystem::grant(cluster::NodeId home, MonitorState&, Contender c) {
  if (ha_ != nullptr && c.from >= 0) {
    // A grant must never land on a node that is inside a crash window: a dead
    // node processes nothing until its restart. This matters for contenders
    // that were queued at a home which then died — the failover moves the
    // queue to the elected home, which may reach this contender's turn while
    // its node is still down (local contenders would otherwise be unparked
    // directly, bypassing the network's crash windows entirely, read their
    // node's stale demoted-at-restart arena as if it were still home, and
    // feed the stale bytes back through the restart-side final-checkpoint
    // fold — a lost-update bug caught by ha_test's multi-failure matrix).
    // The contender already owns the monitor (grant order is decided by the
    // caller); only the wake/reply is deferred to the window's end, which by
    // the engine's (time, seq) order runs *after* the restart hook has
    // demoted the node's stale home authority.
    const Time now = cluster_->engine().now();
    const Time release = cluster_->params().fault.crash_release(c.from, now);
    if (release > now) {
      cluster_->engine().post(release, [this, home, c]() mutable {
        MonitorState unused;
        grant(home, unused, std::move(c));  // re-checks a back-to-back window
      });
      return;
    }
  }
  if (c.local) {
    *c.granted_flag = true;
    sim::Engine::current()->unpark(c.fiber);
  } else {
    cluster_->reply_to(home, c.from, c.reply_token, make_ack(home));
  }
}

// ---------------------------------------------------------------------------
// RPC handlers

void MonitorSubsystem::handle_enter(cluster::Incoming& in, cluster::NodeId self) {
  const auto obj = in.reader.get<std::uint64_t>();
  const auto uid = in.reader.get<std::uint64_t>();
  if (fencing_ && fenced(in, self, svc::kMonitorEnter)) return;
  if (nack_if_stale(in, self, obj, svc::kMonitorEnter)) return;
  const bool retry = op_already_applied(in, self);
  cluster_->node(self).extend_service(cluster_->params().cpu.cycles(kManagerCycles));
  if (retry) {
    reattach_enter(in, self, obj, uid);
    return;
  }
  Contender c;
  c.uid = uid;
  c.local = false;
  c.from = in.from;
  c.reply_token = in.reply_token;
  do_enter(self, obj, std::move(c));
}

void MonitorSubsystem::handle_exit(cluster::Incoming& in, cluster::NodeId self) {
  const auto obj = in.reader.get<std::uint64_t>();
  const auto uid = in.reader.get<std::uint64_t>();
  if (fencing_ && fenced(in, self, svc::kMonitorExit)) return;
  if (nack_if_stale(in, self, obj, svc::kMonitorExit)) return;
  const bool retry = op_already_applied(in, self);
  cluster_->node(self).extend_service(cluster_->params().cpu.cycles(kManagerCycles));
  if (!retry) do_exit(self, obj, uid);  // retry of an applied exit: just re-ack
  cluster_->reply(in, make_ack(self));
}

void MonitorSubsystem::handle_wait(cluster::Incoming& in, cluster::NodeId self) {
  const auto obj = in.reader.get<std::uint64_t>();
  const auto uid = in.reader.get<std::uint64_t>();
  if (fencing_ && fenced(in, self, svc::kMonitorWait)) return;
  if (nack_if_stale(in, self, obj, svc::kMonitorWait)) return;
  const bool retry = op_already_applied(in, self);
  cluster_->node(self).extend_service(cluster_->params().cpu.cycles(kManagerCycles));
  if (retry) {
    reattach_wait(in, self, obj, uid);
    return;
  }
  Contender c;
  c.uid = uid;
  c.local = false;
  c.from = in.from;
  c.reply_token = in.reply_token;  // answered on re-grant
  do_wait(self, obj, std::move(c));
}

void MonitorSubsystem::handle_notify(cluster::Incoming& in, cluster::NodeId self) {
  const auto obj = in.reader.get<std::uint64_t>();
  const auto uid = in.reader.get<std::uint64_t>();
  if (fencing_ && fenced(in, self, svc::kMonitorNotify)) return;
  if (nack_if_stale(in, self, obj, svc::kMonitorNotify)) return;
  const bool retry = op_already_applied(in, self);
  const bool all = in.reader.get<std::uint8_t>() != 0;
  cluster_->node(self).extend_service(cluster_->params().cpu.cycles(kManagerCycles));
  if (!retry) do_notify(self, obj, uid, all);  // applied already: just re-ack
  cluster_->reply(in, make_ack(self));
}

}  // namespace hyp::hyperion
