// The Hyperion object model as seen by compiled Java code.
//
// java2c-generated code manipulates objects through typed references and the
// get/put access primitives. We mirror that: a GRef<T> is a typed shared
// cell (an object field), a GArray<T> is a Java array (32-bit length header
// + elements), and Mem<Policy> binds a thread's DSM context to the access
// primitives of the configured protocol. Objects allocated consecutively by
// one thread share pages, giving the prefetch effect of §3.1.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "dsm/access.hpp"

namespace hyp::hyperion {

using dsm::Gva;

// A typed reference to one shared scalar field.
template <typename T>
struct GRef {
  Gva addr = dsm::kNullGva;
  bool null() const { return addr == dsm::kNullGva; }
};

// A Java array: [ i32 length | 4 bytes pad | elements... ]. The header is
// written once at allocation time (arrays are fixed-length in Java) and the
// pad keeps elements 8-aligned.
template <typename T>
struct GArray {
  static constexpr std::size_t kHeaderBytes = 8;

  Gva header = dsm::kNullGva;
  bool null() const { return header == dsm::kNullGva; }
  Gva data() const { return header + kHeaderBytes; }
  Gva elem(std::int64_t i) const { return data() + static_cast<Gva>(i) * sizeof(T); }
  static std::size_t footprint(std::int64_t length) {
    return kHeaderBytes + static_cast<std::size_t>(length) * sizeof(T);
  }
};

// Protocol-bound accessor: what the body of a compiled Java method works
// with. All methods are forwarding inlines over the policy fast paths.
template <typename Policy>
class Mem {
 public:
  explicit Mem(dsm::ThreadCtx& t) : t_(&t) {}

  template <typename T>
  T get(GRef<T> r) const {
    HYP_DCHECK(!r.null());
    return Policy::template get<T>(*t_, r.addr);
  }
  template <typename T>
  void put(GRef<T> r, T v) const {
    HYP_DCHECK(!r.null());
    Policy::template put<T>(*t_, r.addr, v);
  }

  // Array element access. Bounds are checked in debug builds; in measured
  // runs the bounds check is part of the (charged) application compute, the
  // same for both protocols.
  template <typename T>
  T aget(GArray<T> a, std::int64_t i) const {
    HYP_DCHECK(!a.null());
    HYP_DCHECK(i >= 0 && i < alen(a));
    return Policy::template get<T>(*t_, a.elem(i));
  }
  template <typename T>
  void aput(GArray<T> a, std::int64_t i, T v) const {
    HYP_DCHECK(!a.null());
    HYP_DCHECK(i >= 0 && i < alen(a));
    Policy::template put<T>(*t_, a.elem(i), v);
  }

  template <typename T>
  std::int32_t alen(GArray<T> a) const {
    return Policy::template get<std::int32_t>(*t_, a.header);
  }

  dsm::ThreadCtx& ctx() const { return *t_; }

 private:
  dsm::ThreadCtx* t_;
};

}  // namespace hyp::hyperion
