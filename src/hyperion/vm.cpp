#include "hyperion/vm.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "ha/ha.hpp"

namespace hyp::hyperion {

namespace {
// Modeled cost of the allocation fast path (bump pointer + zeroing already
// done by the OS; header write).
constexpr std::uint64_t kAllocCycles = 40;
}  // namespace

// ---------------------------------------------------------------------------
// JavaEnv

JavaEnv::JavaEnv(HyperionVM* vm, std::unique_ptr<dsm::ThreadCtx> ctx)
    : vm_(vm), ctx_(std::move(ctx)) {}

dsm::Gva JavaEnv::alloc_raw(std::size_t bytes, std::size_t align) {
  ctx_->clock.charge_cycles(kAllocCycles);
  return vm_->dsm_.alloc(ctx_->node, bytes, align);
}

void JavaEnv::monitor_enter(dsm::Gva obj) { vm_->monitors_.enter(*ctx_, obj); }
void JavaEnv::monitor_exit(dsm::Gva obj) { vm_->monitors_.exit(*ctx_, obj); }
void JavaEnv::wait(dsm::Gva obj) { vm_->monitors_.wait(*ctx_, obj); }
void JavaEnv::notify(dsm::Gva obj) { vm_->monitors_.notify_one(*ctx_, obj); }
void JavaEnv::notify_all(dsm::Gva obj) { vm_->monitors_.notify_all(*ctx_, obj); }

Time JavaEnv::now() const { return vm_->cluster_.engine().now(); }

void JavaEnv::mark_benign(dsm::Gva addr, std::size_t bytes) {
  if (ctx_->race != nullptr) ctx_->race->mark_benign(addr, addr + bytes);
}

void JavaEnv::migrate_to(NodeId target, std::size_t state_bytes) {
  HYP_CHECK_MSG(target >= 0 && target < vm_->nodes(), "migration target out of range");
  const NodeId source = ctx_->node;
  if (target == source) return;

  // Leaving: push working memory home (the thread may not revisit this node).
  vm_->dsm_.on_release(*ctx_);
  ctx_->clock.flush();

  // The thread itself is the payload: sleep for the transfer of its state.
  const auto& net = vm_->cluster_.params().net;
  cluster::Node& src = vm_->cluster_.node(source);
  vm_->cluster_.trace_event(source, cluster::TraceKind::kThreadMigrate, source, target);
  src.stats().add(Counter::kThreadMigrations);
  src.stats().add(Counter::kMessages);
  src.stats().add(Counter::kMessageBytes, state_bytes);
  sim::Engine::current()->sleep_for(net.send_overhead + net.wire_time(state_bytes) +
                                    net.recv_overhead);

  // Rebind the execution context to the target node. The fiber (the "stack")
  // does not move in the simulation — iso-addressing made that a no-op in
  // PM2 as well.
  ctx_->node = target;
  ctx_->nd = &vm_->dsm_.node_dsm(target);
  ctx_->base = ctx_->nd->arena();
  ctx_->presence = ctx_->nd->presence_data();
  ctx_->stats = &vm_->cluster_.node(target).stats();
  if (ctx_->awin != nullptr) ctx_->awin = vm_->dsm_.access_window(target);
  ctx_->clock.bind_cpu(&vm_->cluster_.node(target).app_cpu());
  // The thread's clock travels with it; only the report attribution moves.
  if (ctx_->race != nullptr) ctx_->race->set_thread_node(ctx_->race_tid, target);

  // Arriving: start with a coherent view (and flush the empty log state).
  vm_->dsm_.on_acquire(*ctx_);
}

JThread JavaEnv::start_thread(std::string name, std::function<void(JavaEnv&)> body) {
  // Thread.start() happens-before the thread body: push our modifications to
  // central memory first.
  vm_->dsm_.on_release(*ctx_);

  const NodeId target = vm_->balancer_->place(vm_->threads_started_++, vm_->nodes());
  HyperionVM* vm = vm_;
  JThread handle;
  handle.node_ = target;
  // Fork edge for the race detector: snapshot the parent's clock into a
  // token; the child joins it on startup, and publishes its final clock
  // under the same token at exit for join() (docs/RACES.md).
  obs::RaceDetector* race = vm_->dsm_.race();
  const std::uint64_t token =
      race != nullptr ? race->prepare_fork(ctx_->race_tid) : 0;
  handle.race_token_ = token;
  handle.fiber_ = vm_->cluster_.spawn_thread(
      target, std::move(name), [vm, target, token, fn = std::move(body)]() mutable {
        JavaEnv env(vm, vm->dsm_.make_thread(target));
        vm->cluster_.trace_event(target, cluster::TraceKind::kThreadStart,
                                 static_cast<std::int64_t>(env.ctx().uid));
        if (env.ctx().race != nullptr) env.ctx().race->adopt_fork(token, env.ctx().race_tid);
        // Acquire side of the start() edge: begin with a clean cache.
        vm->dsm_.on_acquire(env.ctx());
        fn(env);
        // Thread termination happens-before join(): flush working memory.
        vm->dsm_.on_release(env.ctx());
        if (env.ctx().race != nullptr) env.ctx().race->thread_exit(token, env.ctx().race_tid);
        // Everything this thread ever charged to its CPU clock is compute
        // (app cycles + protocol in-line costs); attributed to the node the
        // thread ended on (migration moves the attribution with the thread).
        vm->cluster_.phase_add(env.ctx().node, obs::Phase::kCompute,
                               env.ctx().clock.total_charged());
      });
  return handle;
}

void JavaEnv::join(JThread& thread) {
  HYP_CHECK_MSG(thread.valid(), "joining a thread that was never started");
  ctx_->clock.flush();
  const Time join_begin = vm_->cluster_.engine().now();
  sim::Engine::current()->join(thread.fiber_);
  vm_->cluster_.phase_add(ctx_->node, obs::Phase::kBarrier,
                          vm_->cluster_.engine().now() - join_begin);
  // Join edge for the race detector: inherit the joined thread's final clock.
  if (ctx_->race != nullptr) ctx_->race->join(ctx_->race_tid, thread.race_token_);
  // Acquire side of the join() edge: see everything the thread wrote.
  vm_->dsm_.on_acquire(*ctx_);
}

// ---------------------------------------------------------------------------
// HyperionVM

HyperionVM::HyperionVM(VmConfig config)
    : config_(std::move(config)),
      cluster_(config_.cluster, config_.nodes),
      dsm_(&cluster_, config_.region_bytes, config_.protocol),
      monitors_(&cluster_, &dsm_),
      balancer_(std::make_unique<RoundRobinBalancer>()) {
  // Observability attachments (see VmConfig): sized here so callers only
  // declare the objects and the VM binds them to the run's actual layout.
  if (config_.trace != nullptr) cluster_.set_trace(config_.trace);
  if (config_.heat != nullptr) {
    config_.heat->init(dsm_.layout().total_pages(), dsm_.layout().page_bytes());
    dsm_.set_heat(config_.heat);
  }
  if (config_.phases != nullptr) {
    config_.phases->init(cluster_.node_count());
    cluster_.set_phases(config_.phases);
  }
  if (config_.race != nullptr) {
    // Attach before run_main creates the primary thread so thread 1 (main)
    // is registered from its first access (docs/RACES.md).
    config_.race->begin_run(&cluster_, dsm_.layout().page_shift());
    dsm_.set_race(config_.race);
    cluster_.set_race_hooks(config_.race);
  }
  if (dsm_.migrations_enabled()) {
    // Heat-driven home migration (hybrid protocol): monitor state moves with
    // the page it lives on, and the old home NACKs stragglers exactly like a
    // post-promotion HA home — which may make a node its own target mid-call.
    cluster_.allow_loopback();
    dsm_.set_home_moved_hook([this](NodeId from, NodeId to, dsm::Gva begin, dsm::Gva end) {
      monitors_.fail_over_home(from, to, begin, end);
    });
  }
  // A scheduled crash window — or a partition window that actually splits
  // this run's nodes — engages the HA subsystem (docs/RECOVERY.md,
  // docs/PARTITIONS.md); without one every HA branch below stays a
  // null-pointer test and the event sequence is bit-identical to the goldens.
  // Windows naming nodes this run does not have are inert (a figure sweep
  // reuses one profile across cluster sizes), so HA engages only when a
  // window actually applies. (Window validity — positive start/duration,
  // group shapes, detector tuning — is a parse-time CLI error in
  // cluster/params.cpp, not a check here.)
  bool crash_applies = false;
  for (const auto& c : cluster_.params().fault.crashes) {
    if (c.node < cluster_.node_count()) crash_applies = true;
  }
  bool partition_applies = false;
  for (const auto& w : cluster_.params().fault.partitions) {
    bool a = false;
    bool b = false;
    for (cluster::NodeId n : w.group_a) a = a || n < cluster_.node_count();
    for (cluster::NodeId n : w.group_b) b = b || n < cluster_.node_count();
    if (a && b) partition_applies = true;
  }
  if (crash_applies || partition_applies) {
    ha_ = std::make_unique<ha::HaManager>(&cluster_, &dsm_, &monitors_);
    cluster_.set_ha_hooks(ha_.get());
    dsm_.set_ha(ha_.get());
    monitors_.set_ha(ha_.get());
    ha_->start();
  }
}

HyperionVM::~HyperionVM() = default;

Time HyperionVM::run_main(std::function<void(JavaEnv&)> main_fn) {
  threads_started_ = 0;
  HyperionVM* vm = this;
  cluster_.spawn_thread(0, "java-main", [vm, fn = std::move(main_fn)]() mutable {
    JavaEnv env(vm, vm->dsm_.make_thread(0));
    fn(env);
    env.ctx().clock.flush();
    vm->cluster_.phase_add(env.ctx().node, obs::Phase::kCompute,
                           env.ctx().clock.total_charged());
    vm->elapsed_ = vm->cluster_.engine().now();
    // End the failure detector's self-chaining ticks so the engine quiesces.
    if (vm->ha_ != nullptr) vm->ha_->stop();
  });
  cluster_.run();
  return elapsed_;
}

}  // namespace hyp::hyperion
