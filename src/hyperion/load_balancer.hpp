// Thread placement (Table 1, "Load balancer").
//
// The paper's runtime "currently uses a round-robin thread distribution
// algorithm"; the interface is pluggable because PM2's thread-migration
// support was the paper's future-work hook for dynamic policies.
#pragma once

#include <vector>

#include "cluster/params.hpp"
#include "common/assert.hpp"

namespace hyp::hyperion {

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;
  // Chooses the node for the `thread_index`-th created thread.
  virtual cluster::NodeId place(int thread_index, int nodes) = 0;
  virtual const char* name() const = 0;
};

class RoundRobinBalancer final : public LoadBalancer {
 public:
  cluster::NodeId place(int thread_index, int nodes) override {
    HYP_DCHECK(nodes > 0);
    return thread_index % nodes;
  }
  const char* name() const override { return "round-robin"; }
};

// Tracks placements and always picks the node with the fewest threads so
// far (ties to the lowest id). With uniform thread counts it degenerates to
// round-robin; with uneven spawn patterns it evens the load — the kind of
// dynamic policy the paper's pluggable balancer was designed to admit.
class LeastLoadedBalancer final : public LoadBalancer {
 public:
  cluster::NodeId place(int, int nodes) override {
    HYP_DCHECK(nodes > 0);
    if (static_cast<int>(counts_.size()) < nodes) counts_.resize(static_cast<std::size_t>(nodes), 0);
    int best = 0;
    for (int n = 1; n < nodes; ++n) {
      if (counts_[static_cast<std::size_t>(n)] < counts_[static_cast<std::size_t>(best)]) best = n;
    }
    ++counts_[static_cast<std::size_t>(best)];
    return best;
  }
  const char* name() const override { return "least-loaded"; }

 private:
  std::vector<int> counts_;
};

// Pins every thread to one node (useful for tests and for the
// threads-per-node extension study).
class PinnedBalancer final : public LoadBalancer {
 public:
  explicit PinnedBalancer(cluster::NodeId node) : node_(node) {}
  cluster::NodeId place(int, int nodes) override {
    HYP_CHECK(node_ < nodes);
    return node_;
  }
  const char* name() const override { return "pinned"; }

 private:
  cluster::NodeId node_;
};

}  // namespace hyp::hyperion
