// The Java API subset (Table 1, "Java API subsystem").
//
// Native methods Hyperion implemented in its runtime; everything here is
// built on the public object/monitor primitives exactly as compiled Java
// library code would be. JBarrier is the idiomatic synchronized/wait/notify
// cyclic barrier the benchmark programs use between time steps — every
// crossing performs real monitor traffic and therefore the cache
// invalidation the paper's protocols must absorb.
#pragma once

#include <cstdint>

#include "hyperion/object.hpp"
#include "hyperion/vm.hpp"

namespace hyp::hyperion::japi {

// java.lang.System.currentTimeMillis, in virtual time.
inline std::int64_t current_time_millis(JavaEnv& env) {
  return static_cast<std::int64_t>(env.now() / kMillisecond);
}

// java.lang.Thread.sleep: materializes batched compute, then sleeps in
// virtual time.
inline void thread_sleep(JavaEnv& env, std::int64_t millis) {
  HYP_CHECK(millis >= 0);
  env.ctx().clock.flush();
  sim::Engine::current()->sleep_for(static_cast<TimeDelta>(millis) * kMillisecond);
}

// java.lang.System.arraycopy: element-wise through the access primitives
// (under java_ic every element costs a locality check, as compiled code did).
template <typename Policy, typename T>
void arraycopy(JavaEnv& env, GArray<T> src, std::int64_t src_pos, GArray<T> dst,
               std::int64_t dst_pos, std::int64_t length) {
  Mem<Policy> mem(env.ctx());
  for (std::int64_t i = 0; i < length; ++i) {
    mem.aput(dst, dst_pos + i, mem.aget(src, src_pos + i));
  }
}

// java.util.Random: the exact JDK linear congruential generator, so that
// ported Java programs reproduce their original pseudo-random sequences.
// (Sun JDK 1.1 semantics: 48-bit LCG, next(bits) returns the high bits.)
class JRandom {
 public:
  explicit JRandom(std::int64_t seed) { set_seed(seed); }

  void set_seed(std::int64_t seed) {
    state_ = (static_cast<std::uint64_t>(seed) ^ kMultiplier) & kMask;
  }

  std::int32_t next_int() { return static_cast<std::int32_t>(next(32)); }

  // Java's bounded nextInt (JDK 1.2 algorithm, the canonical one).
  std::int32_t next_int(std::int32_t bound) {
    HYP_CHECK(bound > 0);
    if ((bound & -bound) == bound) {  // power of two
      return static_cast<std::int32_t>(
          (static_cast<std::int64_t>(bound) * static_cast<std::int64_t>(next(31))) >> 31);
    }
    std::int32_t bits, val;
    do {
      bits = static_cast<std::int32_t>(next(31));
      val = bits % bound;
    } while (bits - val + (bound - 1) < 0);
    return val;
  }

  std::int64_t next_long() {
    return (static_cast<std::int64_t>(next(32)) << 32) + static_cast<std::int32_t>(next(32));
  }

  double next_double() {
    const auto high = static_cast<std::int64_t>(next(26));
    const auto low = static_cast<std::int64_t>(next(27));
    return static_cast<double>((high << 27) + low) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t kMultiplier = 0x5DEECE66DULL;
  static constexpr std::uint64_t kAddend = 0xBULL;
  static constexpr std::uint64_t kMask = (1ULL << 48) - 1;

  std::uint32_t next(int bits) {
    state_ = (state_ * kMultiplier + kAddend) & kMask;
    return static_cast<std::uint32_t>(state_ >> (48 - bits));
  }

  std::uint64_t state_;
};

// A cyclic barrier in the classic Java synchronized/wait/notifyAll idiom.
// The handle is a small value type; copy it into thread closures.
struct JBarrier {
  GRef<std::int32_t> count;
  GRef<std::int32_t> generation;
  dsm::Gva lock = dsm::kNullGva;  // the barrier object's own monitor
  std::int32_t parties = 0;

  static JBarrier create(JavaEnv& env, std::int32_t parties) {
    HYP_CHECK(parties > 0);
    JBarrier b;
    b.count = env.new_cell<std::int32_t>(0);
    b.generation = env.new_cell<std::int32_t>(0);
    b.lock = b.count.addr;
    b.parties = parties;
    return b;
  }

  template <typename Policy>
  void await(JavaEnv& env) const {
    Mem<Policy> mem(env.ctx());
    env.monitor_enter(lock);
    const std::int32_t g = mem.get(generation);
    const std::int32_t arrived = mem.get(count) + 1;
    if (arrived == parties) {
      mem.put(count, 0);
      mem.put(generation, g + 1);
      env.notify_all(lock);
    } else {
      mem.put(count, arrived);
      while (mem.get(generation) == g) env.wait(lock);
    }
    env.monitor_exit(lock);
  }
};

}  // namespace hyp::hyperion::japi
