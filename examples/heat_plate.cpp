// heat_plate — an iterative stencil solver written against the public API.
//
// A domain-style example distinct from the Figure-2 benchmark: instead of a
// fixed step count it iterates to *convergence*, combining the row-block
// decomposition with a monitor-guarded global residual reduction each sweep
// (the common "solve until ||delta|| < eps" pattern). Shows how a downstream
// user structures a real application: owner-allocated rows, a Java-style
// double[][] row table, barriers between sweeps and a reduction object.
#include <cstdio>

#include "common/cli.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

using namespace hyp;

namespace {

template <typename P>
int solve(hyperion::HyperionVM& vm, int n, double tolerance, int max_sweeps, double* final_residual) {
  int sweeps_used = -1;
  vm.run_main([&](hyperion::JavaEnv& main) {
    const int workers = vm.nodes();
    auto rows_a = main.new_array<std::uint64_t>(n);
    auto rows_b = main.new_array<std::uint64_t>(n);
    auto residual = main.new_cell<double>(0.0);
    auto done = main.new_cell<std::int32_t>(0);
    auto sweeps = main.new_cell<std::int32_t>(0);
    auto barrier = hyperion::japi::JBarrier::create(main, workers);

    std::vector<hyperion::JThread> threads;
    for (int w = 0; w < workers; ++w) {
      const int lo = 1 + (n - 2) * w / workers;
      const int hi = 1 + (n - 2) * (w + 1) / workers;
      threads.push_back(main.start_thread("heat" + std::to_string(w), [=](hyperion::JavaEnv& env) {
        hyperion::Mem<P> mem(env.ctx());
        // Allocate owned rows: 100-degree west edge, cold elsewhere.
        const int alo = (w == 0) ? 0 : lo;
        const int ahi = (w == workers - 1) ? n : hi;
        for (int i = alo; i < ahi; ++i) {
          auto ra = env.new_array<double>(n);
          auto rb = env.new_array<double>(n);
          for (int j = 0; j < n; ++j) {
            const double v = (j == 0) ? 100.0 : 0.0;
            mem.aput(ra, j, v);
            mem.aput(rb, j, v);
            env.charge_cycles(4);
          }
          mem.aput(rows_a, i, ra.header);
          mem.aput(rows_b, i, rb.header);
        }
        barrier.template await<P>(env);

        bool a_is_src = true;
        for (int sweep = 0; sweep < max_sweeps; ++sweep) {
          const auto src = a_is_src ? rows_a : rows_b;
          const auto dst = a_is_src ? rows_b : rows_a;
          double local_delta = 0;
          for (int i = lo; i < hi; ++i) {
            hyperion::GArray<double> north{mem.aget(src, i - 1)};
            hyperion::GArray<double> here{mem.aget(src, i)};
            hyperion::GArray<double> south{mem.aget(src, i + 1)};
            hyperion::GArray<double> out{mem.aget(dst, i)};
            for (int j = 1; j < n - 1; ++j) {
              const double v = 0.25 * (mem.aget(north, j) + mem.aget(south, j) +
                                       mem.aget(here, j - 1) + mem.aget(here, j + 1));
              const double old = mem.aget(here, j);
              local_delta = std::max(local_delta, v > old ? v - old : old - v);
              mem.aput(out, j, v);
              env.charge_cycles(90);
            }
          }
          // Global max-residual reduction under the residual's monitor.
          env.synchronized(residual.addr, [&] {
            if (local_delta > mem.get(residual)) mem.put(residual, local_delta);
          });
          barrier.template await<P>(env);
          // Worker 0 decides convergence; everyone reads the decision.
          if (w == 0) {
            env.synchronized(residual.addr, [&] {
              mem.put(sweeps, sweep + 1);
              if (mem.get(residual) < tolerance) mem.put(done, 1);
              mem.put(residual, 0.0);
            });
          }
          barrier.template await<P>(env);
          bool stop = false;
          env.synchronized(done.addr, [&] { stop = mem.get(done) != 0; });
          if (stop) break;
          a_is_src = !a_is_src;
        }
      }));
    }
    for (auto& t : threads) main.join(t);
    hyperion::Mem<P> mem(main.ctx());
    sweeps_used = mem.get(sweeps);
    *final_residual = mem.get(residual);
  });
  return sweeps_used;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("heat_plate — convergence-driven heat solver on the cluster JVM");
  cli.flag_int("nodes", 4, "cluster nodes")
      .flag_string("protocol", "java_pf", "java_ic or java_pf")
      .flag_int("n", 96, "plate edge")
      .flag_double("tolerance", 0.05, "max per-sweep change to declare convergence")
      .flag_int("max-sweeps", 500, "sweep cap");
  if (!cli.parse(argc, argv)) return 0;

  hyperion::VmConfig cfg;
  cfg.nodes = static_cast<int>(cli.get_int("nodes"));
  cfg.protocol = dsm::protocol_by_name(cli.get_string("protocol"));
  cfg.region_bytes = std::size_t{32} << 20;
  hyperion::HyperionVM vm(cfg);

  double final_residual = 0;
  int sweeps = 0;
  dsm::with_policy(vm.protocol(), [&](auto policy) {
    using P = decltype(policy);
    sweeps = solve<P>(vm, static_cast<int>(cli.get_int("n")), cli.get_double("tolerance"),
                      static_cast<int>(cli.get_int("max-sweeps")), &final_residual);
  });

  std::printf("converged after : %d sweeps (tolerance %.3g)\n", sweeps,
              cli.get_double("tolerance"));
  std::printf("virtual time    : %.3f s on %d nodes (%s)\n", to_seconds(vm.elapsed()),
              vm.nodes(), dsm::protocol_name(vm.protocol()));
  const auto stats = vm.stats();
  std::printf("page fetches    : %llu, updates: %llu, monitor enters: %llu\n",
              static_cast<unsigned long long>(stats.get(Counter::kPageFetches)),
              static_cast<unsigned long long>(stats.get(Counter::kUpdatesSent)),
              static_cast<unsigned long long>(stats.get(Counter::kMonitorEnters)));
  return sweeps > 0 ? 0 : 1;
}
