// bytecode_pi — the paper's §2.1 workflow end to end.
//
// "Programmers will push bytecode to the high-performance server for remote
// execution." Here the program arrives as JIR assembly text (our stand-in
// for Java class files), is verified, and runs on the cluster JVM: main
// spawns one interpreted worker per node; each integrates a stripe of the
// Riemann sum and accumulates into a shared cell under its monitor.
#include <cstdio>

#include "common/cli.hpp"
#include "jir/assembler.hpp"
#include "jir/interp.hpp"

using namespace hyp;

namespace {

// args: 0=sum_array_ref 1=begin 2=end 3=total ; locals: 4=i 5=x 6=partial
constexpr const char* kWorker = R"(
func worker args=4 locals=7
  dconst 0.0
  store 6
  load 1
  store 4
loop:
  load 4
  load 2
  lcmp
  ifge flush
  load 4
  l2d
  dconst 0.5
  dadd
  load 3
  l2d
  ddiv
  store 5
  dconst 4.0
  dconst 1.0
  load 5
  load 5
  dmul
  dadd
  ddiv
  load 6
  dadd
  store 6
  charge 32
  load 4
  lconst 1
  ladd
  store 4
  goto loop
flush:
  load 0
  monitorenter
  load 0
  lconst 0
  load 0
  lconst 0
  aload_d
  load 6
  load 3
  l2d
  ddiv
  dadd
  astore_d
  load 0
  monitorexit
  retvoid
end
)";

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bytecode_pi — interpreted bytecode on the cluster JVM (paper §2.1)");
  cli.flag_int("nodes", 4, "cluster nodes")
      .flag_string("protocol", "java_pf", "java_ic or java_pf")
      .flag_int("intervals", 200000, "Riemann intervals");
  if (!cli.parse(argc, argv)) return 0;

  // Assemble "the class files" — main is generated for the node count so the
  // spawn fan-out matches the cluster.
  const int nodes = static_cast<int>(cli.get_int("nodes"));
  const auto n = cli.get_int("intervals");
  std::string main_src = "func main args=0 locals=1\n  lconst 1\n  newarray_d\n  store 0\n";
  for (int w = 0; w < nodes; ++w) {
    const std::int64_t begin = n * w / nodes;
    const std::int64_t end = n * (w + 1) / nodes;
    main_src += "  load 0\n  lconst " + std::to_string(begin) + "\n  lconst " +
                std::to_string(end) + "\n  lconst " + std::to_string(n) + "\n  spawn worker\n";
  }
  main_src += "  joinall\n  load 0\n  lconst 0\n  aload_d\n  d2l\n  pop\n";
  main_src += "  load 0\n  lconst 0\n  aload_d\n  dconst 1000000.0\n  dmul\n  d2l\n  ret\nend\n";

  auto assembled = jir::assemble(main_src + kWorker);
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n", assembled.error.c_str());
    return 1;
  }

  hyperion::VmConfig cfg;
  cfg.nodes = nodes;
  cfg.protocol = dsm::protocol_by_name(cli.get_string("protocol"));
  cfg.region_bytes = std::size_t{32} << 20;
  hyperion::HyperionVM vm(cfg);

  std::int64_t pi_e6 = 0;
  vm.run_main([&](hyperion::JavaEnv& main) {
    jir::Interpreter interp(&assembled.program, &main);
    pi_e6 = interp.run("main");
  });

  const double pi = static_cast<double>(pi_e6) / 1e6;
  std::printf("bytecode verified and executed on %d nodes (%s)\n", nodes,
              dsm::protocol_name(vm.protocol()));
  std::printf("pi ~= %.6f (expected 3.141593)\n", pi);
  std::printf("virtual time: %.3f s; interpreted threads: %llu\n", to_seconds(vm.elapsed()),
              static_cast<unsigned long long>(vm.stats().get(Counter::kRemoteThreadSpawns)));
  return (pi > 3.1410 && pi < 3.1422) ? 0 : 1;
}
