// Quickstart: boot a cluster-wide JVM, share an object, synchronize on its
// monitor — the reproduction's "hello, world".
//
//   $ ./quickstart [--nodes N] [--protocol java_pf|java_ic]
//
// Mirrors the paper's programming model: the code below is what a threaded
// Java program compiled by Hyperion does — threads are placed round-robin
// across cluster nodes, the counter object lives on node 0, and every
// `synchronized` block flushes modifications home and invalidates the node
// cache, exactly per the Java Memory Model.
#include <cstdio>

#include "common/cli.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

using namespace hyp;

int main(int argc, char** argv) {
  Cli cli("quickstart — shared counter on a simulated cluster");
  cli.flag_int("nodes", 4, "cluster nodes")
      .flag_string("protocol", "java_pf", "java_ic or java_pf")
      .flag_string("cluster", "myri200", "myri200 or sci450")
      .flag_int("increments", 1000, "increments per thread");
  if (!cli.parse(argc, argv)) return 0;

  hyperion::VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::by_name(cli.get_string("cluster"));
  cfg.nodes = static_cast<int>(cli.get_int("nodes"));
  cfg.protocol = dsm::protocol_by_name(cli.get_string("protocol"));
  cfg.region_bytes = std::size_t{32} << 20;

  hyperion::HyperionVM vm(cfg);
  const int threads = vm.nodes();
  const auto reps = static_cast<int>(cli.get_int("increments"));

  std::int64_t final_count = 0;
  const Time elapsed = vm.run_main([&](hyperion::JavaEnv& main) {
    // One shared counter, homed on node 0 (main's node).
    auto counter = main.new_cell<std::int64_t>(0);

    std::vector<hyperion::JThread> workers;
    for (int w = 0; w < threads; ++w) {
      workers.push_back(main.start_thread("worker" + std::to_string(w),
                                          [counter, reps](hyperion::JavaEnv& env) {
        dsm::with_policy(env.vm().protocol(), [&](auto policy) {
          using P = decltype(policy);
          hyperion::Mem<P> mem(env.ctx());
          for (int i = 0; i < reps; ++i) {
            env.synchronized(counter.addr,
                             [&] { mem.put(counter, mem.get(counter) + 1); });
          }
        });
      }));
    }
    for (auto& w : workers) main.join(w);

    dsm::with_policy(vm.protocol(), [&](auto policy) {
      using P = decltype(policy);
      final_count = hyperion::Mem<P>(main.ctx()).get(counter);
    });
  });

  std::printf("protocol        : %s\n", dsm::protocol_name(vm.protocol()));
  std::printf("cluster         : %s, %d nodes\n", cfg.cluster.name.c_str(), vm.nodes());
  std::printf("final count     : %lld (expected %lld)\n",
              static_cast<long long>(final_count),
              static_cast<long long>(threads) * reps);
  std::printf("virtual time    : %.3f s\n", to_seconds(elapsed));
  std::printf("\nevent counters:\n%s", vm.stats().to_string().c_str());
  return final_count == static_cast<std::int64_t>(threads) * reps ? 0 : 1;
}
