// protocol_tour — the paper's §3 in one runnable walkthrough.
//
// Runs the identical access pattern under java_ic and java_pf and narrates
// where each protocol spends: in-line checks on every access vs page faults
// and mprotect on misses, field-granularity write logs vs twin diffs, and
// the whole-cache invalidation both pay at monitor entry. Ends with the
// side-by-side event table — the mechanism behind Figures 1-5.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

using namespace hyp;

namespace {

struct TourResult {
  Time elapsed;
  Stats stats;
};

template <typename P>
TourResult tour(const cluster::ClusterParams& params, int nodes,
                cluster::TraceLog* trace = nullptr) {
  hyperion::VmConfig cfg;
  cfg.cluster = params;
  cfg.nodes = nodes;
  cfg.protocol = P::kKind;
  cfg.region_bytes = std::size_t{32} << 20;
  hyperion::HyperionVM vm(cfg);
  vm.cluster().set_trace(trace);

  vm.run_main([&](hyperion::JavaEnv& main) {
    hyperion::Mem<P> mem(main.ctx());
    // A shared table homed on node 0; remote threads stream over it.
    constexpr int kCells = 4096;  // 32 KiB = 8 pages
    auto table = main.new_array<std::int64_t>(kCells);
    for (int i = 0; i < kCells; ++i) mem.aput(table, i, static_cast<std::int64_t>(i));

    std::vector<hyperion::JThread> threads;
    for (int w = 1; w < vm.nodes(); ++w) {
      threads.push_back(main.start_thread("reader" + std::to_string(w),
                                          [table](hyperion::JavaEnv& env) {
        hyperion::Mem<P> m(env.ctx());
        std::int64_t acc = 0;
        for (int pass = 0; pass < 3; ++pass) {
          // Streaming reads: the first sweep of a pass faults/fetches each
          // page once (the prefetch effect makes the other 511 cells of a
          // page free); the re-reads are where java_ic keeps paying checks
          // while java_pf rides the MMU for free.
          for (int sweep = 0; sweep < 8; ++sweep) {
            for (int i = 0; i < 4096; ++i) {
              acc += m.aget(table, i);
              env.charge_cycles(10);
            }
          }
          // Update a slice, then publish it under the table's monitor: this
          // is where write logs (ic) or twin diffs (pf) ship home — and
          // where the next monitor entry invalidates the node cache.
          for (int i = 0; i < 64; ++i) m.aput(table, i, acc + i);
          env.synchronized(table.header, [] {});
        }
      }));
    }
    for (auto& t : threads) main.join(t);
  });
  return {vm.elapsed(), vm.stats()};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("protocol_tour — java_ic vs java_pf event anatomy, side by side");
  cli.flag_int("nodes", 4, "cluster nodes")
      .flag_string("cluster", "myri200", "myri200 or sci450")
      .flag_bool("trace", false, "dump the first protocol events of the java_pf run");
  if (!cli.parse(argc, argv)) return 0;

  const auto params = cluster::ClusterParams::by_name(cli.get_string("cluster"));
  const int nodes = static_cast<int>(cli.get_int("nodes"));

  std::printf("Remote object detection in cluster-based Java — protocol anatomy\n");
  std::printf("cluster %s, %d nodes; identical workload under both protocols\n\n",
              params.name.c_str(), nodes);

  const TourResult ic = tour<dsm::IcPolicy>(params, nodes);
  cluster::TraceLog trace;
  const TourResult pf = tour<dsm::PfPolicy>(
      params, nodes, cli.get_bool("trace") ? &trace : nullptr);

  auto row = [&](const char* what, Counter c) {
    return std::vector<std::string>{what, fmt_u64(ic.stats.get(c)), fmt_u64(pf.stats.get(c))};
  };
  Table t({"event", "java_ic", "java_pf"});
  t.add_row(row("in-line locality checks (every access)", Counter::kInlineChecks));
  t.add_row(row("page faults (remote misses only)", Counter::kPageFaults));
  t.add_row(row("mprotect calls", Counter::kMprotectCalls));
  t.add_row(row("page fetches", Counter::kPageFetches));
  t.add_row(row("write-log entries (field granularity)", Counter::kWriteLogEntries));
  t.add_row(row("diff words (twin comparison)", Counter::kDiffWords));
  t.add_row(row("update messages home", Counter::kUpdatesSent));
  t.add_row(row("cache invalidations (monitor entry)", Counter::kInvalidations));
  t.add_row({"execution time (s)", fmt_double(to_seconds(ic.elapsed), 4),
             fmt_double(to_seconds(pf.elapsed), 4)});
  t.write_pretty(std::cout);

  if (cli.get_bool("trace")) {
    std::printf("\nfirst java_pf protocol events (deterministic; --trace):\n");
    trace.write_text(std::cout, 40);
    // Always surface the capacity accounting: a saturated log that silently
    // stopped recording would otherwise masquerade as a quiet run.
    std::printf("trace: %zu events recorded (capacity %zu), %llu dropped\n",
                trace.events().size(), trace.capacity(),
                static_cast<unsigned long long>(trace.dropped()));
  }

  const double improvement = 1.0 - to_seconds(pf.elapsed) / to_seconds(ic.elapsed);
  std::printf(
      "\njava_pf improvement on this workload: %s\n"
      "(java_ic pays per access; java_pf pays per miss — the paper's trade-off)\n",
      fmt_percent(improvement).c_str());
  return 0;
}
