// jir_tool — assemble, verify, disassemble and run JIR programs.
//
// The operational face of the §2.1 vision: a program arrives as portable
// assembly text ("the class files"), is verified, and executes on a chosen
// cluster/protocol configuration. Without --file, a built-in demo program
// (parallel sum over a shared array) is used.
//
//   $ ./jir_tool --file=prog.jir --entry=main --nodes=4 --protocol=java_pf
//   $ ./jir_tool --disassemble            # round-trip the demo program
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "jir/assembler.hpp"
#include "jir/interp.hpp"

using namespace hyp;

namespace {

constexpr const char* kDemo = R"(# demo: parallel sum of 0..255 — one summer thread per quarter
func main args=0 locals=2
  lconst 256
  newarray_l
  store 0          # the array
  lconst 0
  store 1
fill:
  load 1
  lconst 256
  lcmp
  ifge spawn_phase
  load 0
  load 1
  load 1
  astore_l
  load 1
  lconst 1
  ladd
  store 1
  goto fill
spawn_phase:
  load 0
  lconst 0
  spawn summer
  load 0
  lconst 64
  spawn summer
  load 0
  lconst 128
  spawn summer
  load 0
  lconst 192
  spawn summer
  joinall
  load 0
  lconst 0
  aload_l
  load 0
  lconst 64
  aload_l
  ladd
  load 0
  lconst 128
  aload_l
  ladd
  load 0
  lconst 192
  aload_l
  ladd
  ret              # expected: 0+1+...+255 = 32640
end
# args: 0=array 1=begin; folds arr[begin..begin+64) into arr[begin]
func summer args=2 locals=4
  lconst 0
  store 2          # i = 0
  lconst 0
  store 3          # partial = 0
loop:
  load 2
  lconst 64
  lcmp
  ifge done
  load 3
  load 0
  load 1
  load 2
  ladd
  aload_l          # arr[begin + i]
  ladd
  store 3          # partial += arr[begin + i]
  charge 20
  load 2
  lconst 1
  ladd
  store 2
  goto loop
done:
  load 0
  load 1
  load 3
  astore_l         # arr[begin] = partial
  retvoid
end
)";

}  // namespace

int main(int argc, char** argv) {
  Cli cli("jir_tool — assemble / verify / disassemble / run JIR programs");
  cli.flag_string("file", "", "program file (empty = built-in demo)")
      .flag_string("entry", "main", "entry function")
      .flag_int("nodes", 4, "cluster nodes")
      .flag_string("protocol", "java_pf", "java_ic or java_pf")
      .flag_string("cluster", "myri200", "myri200 or sci450")
      .flag_bool("disassemble", false, "print the round-tripped program and exit")
      .flag_bool("verify-only", false, "assemble + verify, do not run");
  if (!cli.parse(argc, argv)) return 0;

  std::string source;
  if (cli.get_string("file").empty()) {
    source = kDemo;
  } else {
    std::ifstream in(cli.get_string("file"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", cli.get_string("file").c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  auto assembled = jir::assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n", assembled.error.c_str());
    return 1;
  }
  std::printf("assembled + verified: %zu function(s), %zu instruction(s)\n",
              assembled.program.functions.size(), [&] {
                std::size_t n = 0;
                for (const auto& f : assembled.program.functions) n += f.code.size();
                return n;
              }());

  if (cli.get_bool("disassemble")) {
    std::fputs(jir::disassemble(assembled.program).c_str(), stdout);
    return 0;
  }
  if (cli.get_bool("verify-only")) return 0;

  hyperion::VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::by_name(cli.get_string("cluster"));
  cfg.nodes = static_cast<int>(cli.get_int("nodes"));
  cfg.protocol = dsm::protocol_by_name(cli.get_string("protocol"));
  cfg.region_bytes = std::size_t{64} << 20;
  hyperion::HyperionVM vm(cfg);

  std::int64_t result = 0;
  vm.run_main([&](hyperion::JavaEnv& main) {
    jir::Interpreter interp(&assembled.program, &main);
    result = interp.run(cli.get_string("entry"));
  });
  std::printf("%s() returned %lld after %.4f virtual seconds on %d nodes (%s)\n",
              cli.get_string("entry").c_str(), static_cast<long long>(result),
              to_seconds(vm.elapsed()), vm.nodes(), dsm::protocol_name(vm.protocol()));
  std::printf("event counters:\n%s", vm.stats().to_string().c_str());
  return 0;
}
