// bank — monitors, wait/notify and the Java Memory Model in one scenario,
// built on the serving store (src/serve/store.hpp, docs/SERVING.md).
//
// A bank with N accounts lives in a sharded serve::Store: account a is a key
// whose balance sits in shard a % shards, each shard guarded by its own
// monitor and home-placed round-robin across the nodes. Teller threads on
// different nodes transfer money with with_shards() — the deadlock-free
// ascending-order two-lock protocol — so transfers touching disjoint shards
// run concurrently instead of serializing on one global bank monitor; an
// auditor thread repeatedly takes *all* shard locks and verifies the
// conservation invariant (total balance never changes); a "payday" producer
// wakes blocked consumer threads with notify_all once it has deposited their
// salaries — the classic guarded-wait idiom.
//
// Every invariant check passing demonstrates that release (flush home) and
// acquire (invalidate + refetch) keep node caches coherent where the JMM
// requires it, under either detection protocol.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"
#include "serve/store.hpp"

using namespace hyp;

namespace {

struct Report {
  int audits = 0;
  int audit_failures = 0;
  int consumers_paid = 0;
  std::int64_t final_total = 0;
};

template <typename P>
Report run_bank(hyperion::HyperionVM& vm, int accounts, int tellers, int transfers) {
  Report report;
  constexpr std::int64_t kOpening = 10'000;

  vm.run_main([&](hyperion::JavaEnv& main) {
    // The account table: a serve store keyed by account id. build_store must
    // run before any other thread starts (its setup threads claim the
    // round-robin balancer's first slots to pin shard homes).
    const serve::StoreLayout layout = serve::build_store<P>(
        main, static_cast<std::uint64_t>(accounts), /*shards_per_node=*/2);
    serve::Store<P> bank(main, layout);
    for (int a = 0; a < accounts; ++a) {
      bank.write_in(static_cast<std::uint64_t>(a), kOpening);
    }

    hyperion::Mem<P> mem(main.ctx());
    auto paid = main.new_cell<std::int32_t>(0);  // payday flag (guarded wait)

    // Every shard id, ascending — the auditor's whole-bank lock set.
    std::vector<int> all_shards;
    for (int s = 0; s < layout.shards; ++s) all_shards.push_back(s);

    std::vector<hyperion::JThread> threads;

    // Tellers: random transfers under the two accounts' shard monitors,
    // acquired in ascending order (with_shards enforces it).
    for (int t = 0; t < tellers; ++t) {
      threads.push_back(main.start_thread("teller" + std::to_string(t),
                                          [=](hyperion::JavaEnv& env) {
        serve::Store<P> store(env, layout);
        Rng rng(1000 + static_cast<std::uint64_t>(t));
        for (int i = 0; i < transfers; ++i) {
          const auto from = rng.below(static_cast<std::uint64_t>(accounts));
          const auto to = rng.below(static_cast<std::uint64_t>(accounts));
          const auto amount = static_cast<std::int64_t>(rng.range(1, 500));
          int sa = store.shard_of(from);
          int sb = store.shard_of(to);
          if (sa > sb) std::swap(sa, sb);
          store.with_shards({sa, sb}, [&] {
            store.write_in(from, store.read_in(from) - amount);
            store.write_in(to, store.read_in(to) + amount);
          });
        }
      }));
    }

    // Auditor: conservation of money, checked with every shard lock held —
    // a consistent whole-bank snapshot even while tellers run.
    threads.push_back(main.start_thread("auditor", [=, &report](hyperion::JavaEnv& env) {
      serve::Store<P> store(env, layout);
      for (int round = 0; round < 25; ++round) {
        store.with_shards(all_shards, [&] {
          std::int64_t total = 0;
          for (int a = 0; a < accounts; ++a) {
            total += store.read_in(static_cast<std::uint64_t>(a));
          }
          ++report.audits;
          if (total != static_cast<std::int64_t>(accounts) * kOpening) ++report.audit_failures;
        });
        env.charge_cycles(20'000);  // audit pacing
      }
    }));

    // Consumers: block until payday (Object.wait), then withdraw.
    for (int c = 0; c < 3; ++c) {
      threads.push_back(main.start_thread("consumer" + std::to_string(c),
                                          [=, &report](hyperion::JavaEnv& env) {
        hyperion::Mem<P> m(env.ctx());
        env.monitor_enter(paid.addr);
        while (m.get(paid) == 0) env.wait(paid.addr);
        ++report.consumers_paid;
        env.monitor_exit(paid.addr);
      }));
    }

    // Payroll: deposit salaries, then wake every consumer.
    threads.push_back(main.start_thread("payroll", [=](hyperion::JavaEnv& env) {
      hyperion::Mem<P> m(env.ctx());
      env.charge_cycles(100'000);  // run payroll late
      env.monitor_enter(paid.addr);
      m.put(paid, std::int32_t{1});
      env.notify_all(paid.addr);
      env.monitor_exit(paid.addr);
    }));

    for (auto& th : threads) main.join(th);

    // Salary deposits happen under `paid`'s monitor only; total conservation
    // is audited against the opening total (withdrawals modeled as
    // transfers, so the bank total is invariant).
    for (int a = 0; a < accounts; ++a) {
      report.final_total += bank.read_in(static_cast<std::uint64_t>(a));
    }
  });
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bank — sharded-store transfers, wait/notify and JMM coherence across nodes");
  cli.flag_int("nodes", 4, "cluster nodes")
      .flag_string("protocol", "java_pf", "java_ic or java_pf")
      .flag_int("accounts", 16, "bank accounts")
      .flag_int("tellers", 6, "teller threads")
      .flag_int("transfers", 200, "transfers per teller");
  if (!cli.parse(argc, argv)) return 0;

  hyperion::VmConfig cfg;
  cfg.nodes = static_cast<int>(cli.get_int("nodes"));
  cfg.protocol = dsm::protocol_by_name(cli.get_string("protocol"));
  cfg.region_bytes = std::size_t{32} << 20;
  hyperion::HyperionVM vm(cfg);

  Report report;
  dsm::with_policy(vm.protocol(), [&](auto policy) {
    using P = decltype(policy);
    report = run_bank<P>(vm, static_cast<int>(cli.get_int("accounts")),
                         static_cast<int>(cli.get_int("tellers")),
                         static_cast<int>(cli.get_int("transfers")));
  });

  const auto expected_total = cli.get_int("accounts") * 10'000;
  std::printf("audits          : %d (%d failures)\n", report.audits, report.audit_failures);
  std::printf("consumers paid  : %d / 3\n", report.consumers_paid);
  std::printf("final total     : %lld (expected %lld)\n",
              static_cast<long long>(report.final_total),
              static_cast<long long>(expected_total));
  std::printf("virtual time    : %.3f s (%s)\n", to_seconds(vm.elapsed()),
              dsm::protocol_name(vm.protocol()));
  const bool ok = report.audit_failures == 0 && report.consumers_paid == 3 &&
                  report.final_total == expected_total;
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
