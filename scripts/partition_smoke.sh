#!/usr/bin/env bash
# Partition smoke (the ctest `partition_smoke` entry, docs/PARTITIONS.md):
# every figure benchmark with a mid-run network split must
#
#   1. actually exercise the partition path (the trace contains the window
#      open/heal events, and — for the splits that isolate a home — a quorum
#      promotion, an epoch bump and the heal-time rejoin),
#   2. reproduce the fault-free answers exactly at every sweep point, both
#      protocols (split-brain safety: parked minorities and epoch fencing may
#      cost virtual time but never correctness), and
#   3. be byte-identical on a same-seed rerun (the cut, the detector's quorum
#      votes and the heal catch-up are all virtual-time-deterministic).
#
# Three profiles: a minority-isolated home (majority side promotes), an even
# split (no side may promote on the 4-node points; larger points fail over
# the cross-cut watch edge), and a partition overlapping a crash window (the
# confirm defers until the watcher side holds a quorum).
#
# Usage: scripts/partition_smoke.sh [build-dir]       (default: build)
#        PARTITION_SMOKE=1 scripts/partition_smoke.sh (fig1 only; the ctest
#                                                      and sanitizer-CI entry)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
FIGS=(fig1_pi fig2_jacobi fig3_barnes fig4_tsp fig5_asp)
if [[ "${PARTITION_SMOKE:-0}" == "1" ]]; then
  FIGS=(fig1_pi)
fi
for fig in "${FIGS[@]}"; do
  [[ -x "$BUILD/bench/$fig" ]] || {
    echo "partition_smoke: $BUILD/bench/$fig not built (run cmake --build $BUILD)" >&2
    exit 2
  }
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

answers() {
  awk -F, '/^fig[0-9]+,/ { print $2 "," $3 "," $4 "," $6 }' "$1"
}

run() {
  local out="$1"
  shift
  local rc=0
  "$@" > "$out" 2> "$out.err" || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "partition_smoke: FAIL — '$*' exited $rc" >&2
    sed 's/^/    stderr: /' "$out.err" | tail -n 20 >&2
    exit 1
  fi
}

# Profile table: label;fault profile;required trace events (';'-separated —
# the profiles themselves contain '|' group separators). The quick sweep
# points (1, 4, 12 nodes) cover inert (a 1-node run is never split),
# exact-group and bystander-node placements.
PROFILES=(
  # The home of node 2's zones is alone on the minority side. On the 4-node
  # points {0,1,3} is a corroborated strict majority (every member fails to
  # reach node 2), so it promotes mid-window and node 2 rejoins as a cacher
  # at the heal. On the 12-node points the bystanders 4-11 still reach node 2
  # fine, so silence is never corroborated and NOBODY promotes — cross-cut
  # accesses park until the heal instead (the promotion events below come
  # from the 4-node runs; --trace-stream covers every run of the sweep).
  'minority;partition@3ms+2ms:2|0.1.3,seed=7;ha_partition home_promoted epoch_bump ha_rejoined'
  # 2/2 split on the 4-node points: neither watcher side reaches a strict
  # majority, both sides park on kNoQuorum and drain at the heal. On the
  # 12-node point the bystanders still hear both groups, so the corroboration
  # vote blocks any cross-cut confirmation there too.
  'even;partition@3ms+2ms:0.1|2.3,seed=7;ha_partition'
  # Node 2 crashes, then a split cuts its watcher off from half the cluster:
  # on the 4-node point the confirm defers until the heal restores the
  # promotion quorum.
  'overlap;crash2@3ms+2ms,partition@3.2ms+1ms:0.1|2.3,seed=7;ha_partition node_crash home_promoted node_restart'
)

for fig in "${FIGS[@]}"; do
  FIG="$BUILD/bench/$fig"
  run "$WORK/$fig.base.txt" "$FIG" --quick --no-sci
  answers "$WORK/$fig.base.txt" > "$WORK/$fig.base.ans"
  n_points=$(wc -l < "$WORK/$fig.base.ans")

  for row in "${PROFILES[@]}"; do
    IFS=';' read -r tag profile events <<< "$row"

    run "$WORK/$fig.$tag.txt" "$FIG" --quick --no-sci --fault-profile="$profile" \
        --trace-stream --trace-out "$WORK/$fig.$tag.trace.json"
    answers "$WORK/$fig.$tag.txt" > "$WORK/$fig.$tag.ans"

    # 1. the split really engaged the partition machinery.
    for ev in $events; do
      if ! grep -q "\"$ev\"" "$WORK/$fig.$tag.trace.json"; then
        echo "partition_smoke: FAIL — $fig under '$profile' trace is missing" \
             "'$ev' (partition HA never engaged?)" >&2
        exit 1
      fi
    done

    # 2. exact fault-free answers (split-brain safety as an answer oracle).
    if ! cmp -s "$WORK/$fig.base.ans" "$WORK/$fig.$tag.ans"; then
      echo "partition_smoke: FAIL — $fig answers diverged under '$profile'" >&2
      diff "$WORK/$fig.base.ans" "$WORK/$fig.$tag.ans" >&2 || true
      exit 1
    fi

    # 3. same-seed split rerun is byte-identical — stdout (modulo the trace
    # path line) AND the exported trace itself.
    run "$WORK/$fig.$tag.rerun.txt" "$FIG" --quick --no-sci \
        --fault-profile="$profile" --trace-stream --trace-out "$WORK/$fig.$tag.trace2.json"
    grep -v '^trace \(written\|streamed\)' "$WORK/$fig.$tag.txt" > "$WORK/$fig.$tag.cmp"
    grep -v '^trace \(written\|streamed\)' "$WORK/$fig.$tag.rerun.txt" > "$WORK/$fig.$tag.rerun.cmp"
    if ! cmp -s "$WORK/$fig.$tag.cmp" "$WORK/$fig.$tag.rerun.cmp"; then
      echo "partition_smoke: FAIL — $fig same-seed rerun not byte-identical" \
           "under '$profile'" >&2
      diff "$WORK/$fig.$tag.cmp" "$WORK/$fig.$tag.rerun.cmp" >&2 || true
      exit 1
    fi
    if ! cmp -s "$WORK/$fig.$tag.trace.json" "$WORK/$fig.$tag.trace2.json"; then
      echo "partition_smoke: FAIL — $fig same-seed rerun produced a different" \
           "trace under '$profile'" >&2
      exit 1
    fi
    echo "partition_smoke: $fig under '$profile' reproduced the fault-free" \
         "answers ($n_points points, rerun byte-identical)"
  done
done

echo "partition_smoke: ${#FIGS[@]} figure(s) survived minority, even and" \
     "crash-overlap splits with exact answers"
