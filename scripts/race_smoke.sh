#!/usr/bin/env bash
# Race-detection smoke (the ctest `race_smoke` entry, docs/RACES.md):
#
#   1. litmus verdicts — every deliberately racy litmus program is flagged
#      and every race-free twin is quiet, at BOTH granularities and under
#      both protocols (the litmus binary's own --all exit status),
#   2. the zero-race oracle — all five paper figures run clean under
#      --race-detect on (TSP's stale-bound reads are annotated benign, so
#      anything reported is a regression in an app or in the detector),
#   3. detector runs are deterministic — a same-seed rerun produces a
#      byte-identical race report,
#   4. detector attachment does not perturb — figure answers with the
#      detector on match the detector-off answers exactly,
#   5. the native lost-update regression stays fixed — the in-process DSM's
#      flush/invalidate-vs-writer stress (the historical java_pf flake,
#      tests/native_stress_test.cpp) passes repeatedly.
#
# Usage: scripts/race_smoke.sh [build-dir]       (default: build)
# RACE_SMOKE_NATIVE_REPS overrides the native stress repeat count.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
LITMUS="$BUILD/bench/litmus"
NATIVE="$BUILD/tests/native_tests"
[[ -x "$LITMUS" ]] || {
  echo "race_smoke: $LITMUS not built (run cmake --build $BUILD)" >&2
  exit 2
}

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

answers() {
  awk -F, '/^fig[0-9]+,/ { print $2 "," $3 "," $4 "," $6 }' "$1"
}

run() {
  local out="$1"
  shift
  local rc=0
  "$@" > "$out" 2> "$out.err" || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "race_smoke: FAIL — '$*' exited $rc" >&2
    sed 's/^/    stderr: /' "$out.err" | tail -n 20 >&2
    exit 1
  fi
}

# 1. Litmus verdicts (the binary exits non-zero on any verdict mismatch).
for proto in java_pf java_ic hybrid; do
  for gran in field page; do
    run "$WORK/litmus.$proto.$gran.txt" "$LITMUS" --all --protocol "$proto" \
        --race-detect "on,racegran=$gran" \
        --race-out "$WORK/litmus.$proto.$gran.report"
  done
done
echo "race_smoke: litmus verdicts hold (3 protocols x 2 granularities)"

# 3. Same-seed determinism: rerun one litmus config, compare reports.
run "$WORK/litmus.rerun.txt" "$LITMUS" --all --race-detect on \
    --race-out "$WORK/litmus.rerun.report"
if ! cmp -s "$WORK/litmus.java_pf.field.report" "$WORK/litmus.rerun.report"; then
  echo "race_smoke: FAIL — same-seed race reports differ" >&2
  diff "$WORK/litmus.java_pf.field.report" "$WORK/litmus.rerun.report" >&2 || true
  exit 1
fi
echo "race_smoke: same-seed race report is byte-identical"

# 2+4. Zero-race oracle over the five paper figures, plus non-perturbation.
# Each figure binary sweeps all three protocols (java_ic, java_pf, hybrid)
# per run, so the oracle covers the adaptive protocol's mode switches and
# home migrations too.
for fig in fig1_pi fig2_jacobi fig3_barnes fig4_tsp fig5_asp; do
  BIN="$BUILD/bench/$fig"
  [[ -x "$BIN" ]] || { echo "race_smoke: $BIN not built" >&2; exit 2; }
  run "$WORK/$fig.off.txt" "$BIN" --quick --no-sci --max-nodes 4
  run "$WORK/$fig.on.txt" "$BIN" --quick --no-sci --max-nodes 4 \
      --race-detect on --race-out "$WORK/$fig.report"
  if grep -E '^  races: [1-9]' "$WORK/$fig.report" > /dev/null; then
    echo "race_smoke: FAIL — $fig reported data races:" >&2
    grep -E -A1 '^== run|^  races: [1-9]|^  addr' "$WORK/$fig.report" | head -n 30 >&2
    exit 1
  fi
  answers "$WORK/$fig.off.txt" > "$WORK/$fig.off.ans"
  answers "$WORK/$fig.on.txt" > "$WORK/$fig.on.ans"
  if ! cmp -s "$WORK/$fig.off.ans" "$WORK/$fig.on.ans"; then
    echo "race_smoke: FAIL — $fig answers changed with the detector on" >&2
    diff "$WORK/$fig.off.ans" "$WORK/$fig.on.ans" >&2 || true
    exit 1
  fi
done
echo "race_smoke: zero-race oracle holds on all five figures (answers unperturbed)"

# 5. The native lost-update regression (the historical java_pf flake): the
# flush/invalidate-vs-writer stress must pass back-to-back. Full 100x runs
# live in scripts/soak_faults.sh territory; the smoke keeps CI fast.
REPS="${RACE_SMOKE_NATIVE_REPS:-10}"
if [[ -x "$NATIVE" ]]; then
  for ((i = 1; i <= REPS; i++)); do
    if ! "$NATIVE" --gtest_brief=1 \
         --gtest_filter='*FlushInvalidateVsConcurrentWriterLosesNoUpdates*:*MonitorContentionAcrossManyObjects*' \
         > "$WORK/native.$i.txt" 2>&1; then
      echo "race_smoke: FAIL — native lost-update stress failed on rep $i" >&2
      tail -n 30 "$WORK/native.$i.txt" >&2
      exit 1
    fi
  done
  echo "race_smoke: native lost-update stress passed ${REPS}x"
else
  echo "race_smoke: skipping native stress ($NATIVE not built)"
fi

echo "race_smoke: OK"
