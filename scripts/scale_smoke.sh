#!/usr/bin/env bash
# Scale smoke (the ctest `scale_smoke` entry, docs/SCALING.md): reduced
# Jacobi + Barnes at N=256 — two orders of magnitude past the paper's node
# counts — under a kill-and-recover profile with K=2 chain backups, must
#
#   1. land on the exact serial-reference answers for every point (the
#      sweep_scale binary exits nonzero otherwise),
#   2. actually exercise recovery at that scale: every point's metrics
#      record exactly one promotion and a nonzero checkpoint stream, and
#   3. be deterministic: a same-seed rerun produces an identical metrics
#      file (host wall/rss fields excluded — those legitimately move).
#
# Usage: scripts/scale_smoke.sh [build-dir]       (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SWEEP="$BUILD/bench/sweep_scale"
[[ -x "$SWEEP" ]] || {
  echo "scale_smoke: $SWEEP not built (run cmake --build $BUILD)" >&2
  exit 2
}

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

PROFILE='replicas=2,crash2@3ms+2ms,seed=7'
ARGS=(--nodes 256 --jacobi-n 512 --jacobi-steps 2
      --barnes-bodies 512 --barnes-steps 1
      --fault-profile "$PROFILE")

run() {
  local out="$1" metrics="$2"
  local rc=0
  "$SWEEP" "${ARGS[@]}" --metrics-out "$metrics" > "$out" 2>&1 || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "scale_smoke: FAIL — sweep_scale exited $rc (answers diverged?)" >&2
    tail -n 30 "$out" | sed 's/^/    /' >&2
    exit 1
  fi
}

run "$WORK/run.txt" "$WORK/run.json"

# 2. recovery engaged at N=256: one promotion and checkpoint traffic on
# every point.
python3 - "$WORK/run.json" <<'EOF'
import json, sys
points = json.load(open(sys.argv[1]))["points"]
assert points, "no metrics points recorded"
for p in points:
    who = f"{p['label']}/{p['protocol']}/N={p['nodes']}"
    c = p["counters"]
    assert c.get("ha_promotions") == 1, f"{who}: expected exactly 1 promotion, got {c.get('ha_promotions')}"
    assert c.get("ha_checkpoint_msgs", 0) > 0, f"{who}: no checkpoint stream traffic"
    assert c.get("ha_heartbeats", 0) > 0, f"{who}: detector never ticked"
print(f"scale_smoke: {len(points)} points promoted exactly once with a live checkpoint stream")
EOF

# 3. same-seed rerun: identical virtual results (strip the host section —
# wall clock and RSS are allowed to move).
run "$WORK/rerun.txt" "$WORK/rerun.json"
strip_host() { grep -v '"host":' "$1"; }
if ! cmp -s <(strip_host "$WORK/run.json") <(strip_host "$WORK/rerun.json"); then
  echo "scale_smoke: FAIL — same-seed rerun metrics differ" >&2
  diff <(strip_host "$WORK/run.json") <(strip_host "$WORK/rerun.json") | head -n 20 >&2
  exit 1
fi

echo "scale_smoke: N=256 kill-and-recover sweep reproduced serial answers," \
     "rerun bit-identical"
