#!/usr/bin/env bash
# Recovery smoke (the ctest `recovery_smoke` entry, docs/RECOVERY.md):
# one figure benchmark with a mid-run node crash/restart must
#
#   1. actually exercise the HA path (the trace contains a home promotion
#      and a rejoin),
#   2. reproduce the fault-free answers exactly at every sweep point, both
#      protocols, and
#   3. be byte-identical on a same-seed rerun (kill-and-recover is as
#      deterministic as a quiet run).
#
# Usage: scripts/recovery_smoke.sh [build-dir]       (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
FIG="$BUILD/bench/fig1_pi"
[[ -x "$FIG" ]] || {
  echo "recovery_smoke: $FIG not built (run cmake --build $BUILD)" >&2
  exit 2
}

PROFILE='crash2@3ms+2ms,seed=7'
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

answers() {
  awk -F, '/^fig[0-9]+,/ { print $2 "," $3 "," $4 "," $6 }' "$1"
}

run() {
  local out="$1"
  shift
  local rc=0
  "$@" > "$out" 2> "$out.err" || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "recovery_smoke: FAIL — '$*' exited $rc" >&2
    sed 's/^/    stderr: /' "$out.err" | tail -n 20 >&2
    exit 1
  fi
}

# Myrinet sweep only: its --quick points (1, 4, 12 nodes) cover inert
# (1 node: no node 2), mid-cluster and full-cluster crash placements.
run "$WORK/base.txt" "$FIG" --quick --no-sci
answers "$WORK/base.txt" > "$WORK/base.ans"
n_points=$(wc -l < "$WORK/base.ans")

run "$WORK/crash.txt" "$FIG" --quick --no-sci --fault-profile="$PROFILE" \
    --trace-out "$WORK/crash_trace.json"
answers "$WORK/crash.txt" > "$WORK/crash.ans"

# 1. the crash really engaged HA on the multi-node points.
for ev in node_crash home_promoted epoch_bump ha_rejoined node_restart; do
  if ! grep -q "\"$ev\"" "$WORK/crash_trace.json"; then
    echo "recovery_smoke: FAIL — trace is missing '$ev' (HA never engaged?)" >&2
    exit 1
  fi
done

# 2. exact fault-free answers.
if ! cmp -s "$WORK/base.ans" "$WORK/crash.ans"; then
  echo "recovery_smoke: FAIL — answers diverged under '$PROFILE'" >&2
  diff "$WORK/base.ans" "$WORK/crash.ans" >&2 || true
  exit 1
fi

# 3. same-seed kill-and-recover rerun is byte-identical — the stdout (modulo
# the trace-file path line) AND the exported trace itself.
run "$WORK/crash2.txt" "$FIG" --quick --no-sci --fault-profile="$PROFILE" \
    --trace-out "$WORK/crash_trace2.json"
grep -v '^trace written' "$WORK/crash.txt" > "$WORK/crash.cmp"
grep -v '^trace written' "$WORK/crash2.txt" > "$WORK/crash2.cmp"
if ! cmp -s "$WORK/crash.cmp" "$WORK/crash2.cmp"; then
  echo "recovery_smoke: FAIL — same-seed rerun not byte-identical" >&2
  diff "$WORK/crash.cmp" "$WORK/crash2.cmp" >&2 || true
  exit 1
fi
if ! cmp -s "$WORK/crash_trace.json" "$WORK/crash_trace2.json"; then
  echo "recovery_smoke: FAIL — same-seed rerun produced a different trace" >&2
  exit 1
fi

echo "recovery_smoke: fig1 reproduced the fault-free answers through a" \
     "kill-and-recover run ($n_points points, rerun byte-identical)"
