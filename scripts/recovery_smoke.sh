#!/usr/bin/env bash
# Recovery smoke (the ctest `recovery_smoke` entry, docs/RECOVERY.md):
# one figure benchmark with mid-run node crash/restart must
#
#   1. actually exercise the HA path (the trace contains a home promotion
#      and a rejoin),
#   2. reproduce the fault-free answers exactly at every sweep point, both
#      protocols, and
#   3. be byte-identical on a same-seed rerun (kill-and-recover is as
#      deterministic as a quiet run).
#
# Two phases: the historical single-crash profile (K=1 ring successor), then
# a multi-failure profile — two distinct nodes dying in sequence under K=2
# chain replication — with the same three assertions.
#
# Usage: scripts/recovery_smoke.sh [build-dir]       (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
FIG="$BUILD/bench/fig1_pi"
[[ -x "$FIG" ]] || {
  echo "recovery_smoke: $FIG not built (run cmake --build $BUILD)" >&2
  exit 2
}

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

answers() {
  awk -F, '/^fig[0-9]+,/ { print $2 "," $3 "," $4 "," $6 }' "$1"
}

run() {
  local out="$1"
  shift
  local rc=0
  "$@" > "$out" 2> "$out.err" || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "recovery_smoke: FAIL — '$*' exited $rc" >&2
    sed 's/^/    stderr: /' "$out.err" | tail -n 20 >&2
    exit 1
  fi
}

# Myrinet sweep only: its --quick points (1, 4, 12 nodes) cover inert
# (1 node: no crashed nodes), mid-cluster and full-cluster crash placements.
run "$WORK/base.txt" "$FIG" --quick --no-sci
answers "$WORK/base.txt" > "$WORK/base.ans"
n_points=$(wc -l < "$WORK/base.ans")

# Runs one kill-and-recover profile through assertions 1–3. $1 is a label
# used for scratch files, $2 the fault profile.
check_profile() {
  local tag="$1" profile="$2"

  run "$WORK/$tag.txt" "$FIG" --quick --no-sci --fault-profile="$profile" \
      --trace-out "$WORK/$tag.trace.json"
  answers "$WORK/$tag.txt" > "$WORK/$tag.ans"

  # 1. the crash really engaged HA on the multi-node points.
  local ev
  for ev in node_crash home_promoted epoch_bump ha_rejoined node_restart; do
    if ! grep -q "\"$ev\"" "$WORK/$tag.trace.json"; then
      echo "recovery_smoke: FAIL — '$profile' trace is missing '$ev'" \
           "(HA never engaged?)" >&2
      exit 1
    fi
  done

  # 2. exact fault-free answers.
  if ! cmp -s "$WORK/base.ans" "$WORK/$tag.ans"; then
    echo "recovery_smoke: FAIL — answers diverged under '$profile'" >&2
    diff "$WORK/base.ans" "$WORK/$tag.ans" >&2 || true
    exit 1
  fi

  # 3. same-seed kill-and-recover rerun is byte-identical — the stdout
  # (modulo the trace-file path line) AND the exported trace itself.
  run "$WORK/$tag.rerun.txt" "$FIG" --quick --no-sci --fault-profile="$profile" \
      --trace-out "$WORK/$tag.trace2.json"
  grep -v '^trace written' "$WORK/$tag.txt" > "$WORK/$tag.cmp"
  grep -v '^trace written' "$WORK/$tag.rerun.txt" > "$WORK/$tag.rerun.cmp"
  if ! cmp -s "$WORK/$tag.cmp" "$WORK/$tag.rerun.cmp"; then
    echo "recovery_smoke: FAIL — same-seed rerun not byte-identical" \
         "under '$profile'" >&2
    diff "$WORK/$tag.cmp" "$WORK/$tag.rerun.cmp" >&2 || true
    exit 1
  fi
  if ! cmp -s "$WORK/$tag.trace.json" "$WORK/$tag.trace2.json"; then
    echo "recovery_smoke: FAIL — same-seed rerun produced a different trace" \
         "under '$profile'" >&2
    exit 1
  fi
  echo "recovery_smoke: '$profile' reproduced the fault-free answers" \
       "($n_points points, rerun byte-identical)"
}

# Phase 1: the historical single crash (default replicas=1, ring successor).
check_profile crash 'crash2@3ms+2ms,seed=7'

# Phase 2: sequential double failure under K=2 chain backups. Node 1 dies and
# recovers, then node 2 dies; every zone keeps at least one of its three
# copies alive, so the run must still land on the exact answers.
check_profile multi 'replicas=2,crash1@3ms+2ms,crash2@8ms+2ms,seed=7'

echo "recovery_smoke: fig1 survived single and multi-failure kill-and-recover" \
     "runs ($n_points points each)"
