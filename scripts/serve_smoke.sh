#!/usr/bin/env bash
# Serve smoke (the ctest `serve_smoke` entry, docs/SERVING.md): the KV/session
# store under open-loop Zipf traffic, both protocols x {fault-free, crash
# with K=2 chain backups, minority partition}, must
#
#   1. verify every cell — zero lost acknowledged writes: the final store
#      state matches the host-side serial replay of the same op streams
#      exactly (bench/serve exits non-zero on any divergence),
#   2. actually exercise the machinery it claims to measure: serve_op latency
#      slices in the trace, a real crash/promotion/restart sequence, and
#      quorum holds in the partition cells,
#   3. be byte-identical on a same-seed rerun — stdout (modulo the artifact
#      path lines), the hyp-metrics-v1 JSON and the streamed trace, and
#   4. stamp the opt-in measurement window into the metrics JSON when
#      warmup/cooldown trimming is enabled (and omit it when it is not).
#
# Usage: scripts/serve_smoke.sh [build-dir]       (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVE="$BUILD/bench/serve"
[[ -x "$SERVE" ]] || {
  echo "serve_smoke: $SERVE not built (run cmake --build $BUILD)" >&2
  exit 2
}

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

run() {
  local out="$1"
  shift
  local rc=0
  "$@" > "$out" 2> "$out.err" || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "serve_smoke: FAIL — '$*' exited $rc" >&2
    sed 's/^/    stdout: /' "$out" | tail -n 10 >&2
    sed 's/^/    stderr: /' "$out.err" | tail -n 10 >&2
    exit 1
  fi
}

# All six cells in one sweep: {java_ic, java_pf} x theta 0.99 x
# {none, crash(K=2), partition}. --trace-stream so the trace covers every
# cell, not just the last one.
ARGS=(--nodes 4 --keys 1024 --thetas 0.99 --ops 250 --rate 4000 --seed 11)
run "$WORK/a.txt" "$SERVE" "${ARGS[@]}" \
    --metrics-out "$WORK/a.metrics.json" \
    --trace-out "$WORK/a.trace.json" --trace-stream

# 1. every cell matched its serial reference.
if ! grep -q '^verification: PASS' "$WORK/a.txt"; then
  echo "serve_smoke: FAIL — a cell diverged from its serial reference" >&2
  tail -n 20 "$WORK/a.txt" >&2
  exit 1
fi

# 2a. the trace carries the serving timeline and the injected faults.
for ev in serve_get serve_put node_crash home_promoted node_restart; do
  if ! grep -q "\"$ev\"" "$WORK/a.trace.json"; then
    echo "serve_smoke: FAIL — trace is missing '$ev'" >&2
    exit 1
  fi
done

# 2b. the partition cells held writes for quorum, and the SLO summary rows
# landed in the metrics JSON for compare_metrics.py to gate.
for c in ha_no_quorum_holds serve_p99_us serve_throughput_ops serve_faultwin_ops; do
  if ! grep -q "\"$c\"" "$WORK/a.metrics.json"; then
    echo "serve_smoke: FAIL — metrics JSON is missing counter '$c'" >&2
    exit 1
  fi
done

# 3. same-seed rerun is byte-identical: stdout (modulo the artifact path
# lines), metrics and streamed trace.
run "$WORK/b.txt" "$SERVE" "${ARGS[@]}" \
    --metrics-out "$WORK/b.metrics.json" \
    --trace-out "$WORK/b.trace.json" --trace-stream
grep -vE ' written: | streamed: ' "$WORK/a.txt" > "$WORK/a.cmp"
grep -vE ' written: | streamed: ' "$WORK/b.txt" > "$WORK/b.cmp"
if ! cmp -s "$WORK/a.cmp" "$WORK/b.cmp"; then
  echo "serve_smoke: FAIL — same-seed rerun stdout not byte-identical" >&2
  diff "$WORK/a.cmp" "$WORK/b.cmp" >&2 || true
  exit 1
fi
if ! cmp -s "$WORK/a.metrics.json" "$WORK/b.metrics.json"; then
  echo "serve_smoke: FAIL — same-seed rerun produced different metrics" >&2
  exit 1
fi
if ! cmp -s "$WORK/a.trace.json" "$WORK/b.trace.json"; then
  echo "serve_smoke: FAIL — same-seed rerun produced a different trace" >&2
  exit 1
fi

# The A/B gate itself must see the rerun as clean at threshold 0 (and it
# exercises the direction-aware serve_* rows on real data).
if command -v python3 > /dev/null; then
  if ! python3 scripts/compare_metrics.py -q \
       "$WORK/a.metrics.json" "$WORK/b.metrics.json" > "$WORK/cmp.txt" 2>&1; then
    echo "serve_smoke: FAIL — compare_metrics flags a same-seed rerun" >&2
    cat "$WORK/cmp.txt" >&2
    exit 1
  fi
fi

# 4. warmup/cooldown trimming stamps the window object; the default run
# carries none (the option is strictly opt-in).
if grep -q '"window"' "$WORK/a.metrics.json"; then
  echo "serve_smoke: FAIL — untrimmed run must not carry a window object" >&2
  exit 1
fi
run "$WORK/w.txt" "$SERVE" --nodes 2 --thetas 0.9 --profiles none \
    --ops 150 --rate 4000 --seed 11 --warmup-us 8000 --cooldown-us 8000 \
    --metrics-out "$WORK/w.metrics.json"
if ! grep -q '"window":{"start_ps":' "$WORK/w.metrics.json"; then
  echo "serve_smoke: FAIL — trimmed run is missing the window object" >&2
  exit 1
fi

echo "serve_smoke: both protocols x {none, crash K=2, partition} verified" \
     "(zero lost acked writes, rerun byte-identical, window stamped)"
