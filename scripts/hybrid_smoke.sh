#!/usr/bin/env bash
# Adaptive-protocol smoke (the ctest `hybrid_smoke` entry,
# docs/PROTOCOLS.md §hybrid):
#
#   1. figure dominance — on quick sweeps of a check-bound figure (jacobi)
#      and a fault-bound one (asp), hybrid's elapsed virtual time beats or
#      ties the better of {java_ic, java_pf} at every sweep point (1% slack
#      for open-loop jitter at tie points);
#   2. serving p99 — in the bench/serve skew cell (write-heavy dominant
#      writer, theta=0.99) the heat-driven home migration engages
#      (dsm_home_migrations >= 1) and hybrid's p99 beats BOTH paper
#      protocols outright;
#   3. migration revert safety — the hot cell (same skew plus a crash window
#      killing the writer node mid-run) loses zero acked writes while
#      migrations are forced to revert;
#   4. determinism — a same-seed rerun of the serve sweep is metrics-
#      identical (threshold 0 via scripts/compare_metrics.py), pinning the
#      mode-switch and migration decisions.
#
# Usage: scripts/hybrid_smoke.sh [build-dir]       (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVE="$BUILD/bench/serve"
[[ -x "$SERVE" ]] || {
  echo "hybrid_smoke: $SERVE not built (run cmake --build $BUILD)" >&2
  exit 2
}

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# 1. Figure dominance: hybrid <= min(java_ic, java_pf) * 1.01 per point.
for fig in fig2_jacobi fig5_asp; do
  BIN="$BUILD/bench/$fig"
  [[ -x "$BIN" ]] || { echo "hybrid_smoke: $BIN not built" >&2; exit 2; }
  "$BIN" --quick --no-sci --max-nodes 4 > "$WORK/$fig.txt"
  if ! awk -F, '
    /^fig[0-9]+,/ { t[$2 "," $4 "," $3] = $5; pts[$2 "," $4] = 1 }
    END {
      bad = 0
      for (k in pts) {
        ic = t[k ",java_ic"]; pf = t[k ",java_pf"]; hy = t[k ",hybrid"]
        if (ic == "" || pf == "" || hy == "") {
          printf "missing protocol row at %s\n", k; bad = 1; continue
        }
        best = (ic < pf) ? ic : pf
        if (hy > best * 1.01) {
          printf "hybrid %.6f > best(%.6f) at %s\n", hy, best, k; bad = 1
        }
      }
      exit bad
    }' "$WORK/$fig.txt"; then
    echo "hybrid_smoke: FAIL — $fig: hybrid lost to a paper protocol" >&2
    exit 1
  fi
  echo "hybrid_smoke: $fig — hybrid beats or ties both protocols at every point"
done

# 2+3. Serving: skew (steady-state migration win) + hot (crash revert).
run_serve() {
  local out="$1" metrics="$2"
  if ! "$SERVE" --profiles=skew,hot --thetas=0.99 \
       --metrics-out="$metrics" > "$out" 2> "$out.err"; then
    echo "hybrid_smoke: FAIL — bench/serve verification failed" >&2
    tail -n 20 "$out" >&2
    exit 1
  fi
}
run_serve "$WORK/serve.txt" "$WORK/serve.json"

python3 - "$WORK/serve.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
pts = {(p["label"], p["protocol"]): p for p in doc["points"]}
def p99(label, proto):
    return pts[(label, proto)]["counters"]["serve_p99_us"]
hy, ic, pf = (p99("theta0.99/skew", p) for p in ("hybrid", "java_ic", "java_pf"))
if not (hy < ic and hy < pf):
    sys.exit(f"hybrid_smoke: FAIL — skew p99: hybrid {hy} vs ic {ic} / pf {pf}")
skew = pts[("theta0.99/skew", "hybrid")]["counters"]
if skew.get("dsm_home_migrations", 0) < 1:
    sys.exit("hybrid_smoke: FAIL — no home migration in the skew cell")
hot = pts[("theta0.99/hot", "hybrid")]["counters"]
if hot.get("dsm_migrations_reverted", 0) < 1:
    sys.exit("hybrid_smoke: FAIL — writer crash forced no migration revert")
print(f"hybrid_smoke: skew p99 — hybrid {hy}us beats ic {ic}us and pf {pf}us "
      f"({skew['dsm_home_migrations']} migrations; "
      f"{hot['dsm_migrations_reverted']} reverted under the crash)")
EOF

# 4. Same-seed determinism of every serve cell, decisions included.
run_serve "$WORK/serve2.txt" "$WORK/serve2.json"
if ! python3 scripts/compare_metrics.py "$WORK/serve.json" "$WORK/serve2.json" \
     --threshold 0 -q; then
  echo "hybrid_smoke: FAIL — same-seed serve rerun drifted" >&2
  exit 1
fi
echo "hybrid_smoke: same-seed rerun is metrics-identical"

echo "hybrid_smoke: OK"
