#!/usr/bin/env bash
# Builds everything, runs the test suite and every experiment, and records
# the outputs the repository documents (test_output.txt, bench_output.txt).
# Usage: scripts/run_all.sh [--full]   (--full = the paper's problem sizes)
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=""
if [[ "${1:-}" == "--full" ]]; then FULL="--full"; fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in fig1_pi fig2_jacobi fig3_barnes fig4_tsp fig5_asp; do
    echo "===== $b ====="
    ./build/bench/$b $FULL
  done
  for b in table1_modules table2_primitives ablation_checkcost ablation_pagesize \
           ablation_consistency ablation_interp ext_threads_per_node ext_migration \
           micro_native_detection micro_sim_overhead; do
    echo "===== $b ====="
    ./build/bench/$b
  done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
