#!/usr/bin/env bash
# Builds Release and runs the node-count scaling sweep (bench/sweep_scale).
#
# Usage: scripts/sweep_scale.sh [extra sweep_scale flags...]
#   scripts/sweep_scale.sh                       # full sweep, N up to 1024
#   scripts/sweep_scale.sh --quick               # CI smoke (N in {8,64})
#   scripts/sweep_scale.sh --fault-profile 'replicas=2,crash2@3ms+2ms,seed=7'
#
# The metrics JSON lands in sweep_scale_metrics.json at the repo root by
# default (override with --metrics-out); gate two sweeps against each other
# with scripts/compare_metrics.py (docs/SCALING.md).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

metrics_out="$repo_root/sweep_scale_metrics.json"
for arg in "$@"; do
  case "$arg" in
    --metrics-out|--metrics-out=*) metrics_out="" ;;
  esac
done

build_dir="$repo_root/build-bench"
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
  -DHYP_BUILD_TESTS=OFF -DHYP_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc)" --target sweep_scale

if [ -n "$metrics_out" ]; then
  "$build_dir/bench/sweep_scale" --metrics-out="$metrics_out" "$@"
  echo "metrics written to $metrics_out"
else
  "$build_dir/bench/sweep_scale" "$@"
fi
