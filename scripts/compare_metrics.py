#!/usr/bin/env python3
"""A/B diff of two hyp-metrics-v1 JSON files (--metrics-out of any bench binary).

Pairs experiment points by (cluster, protocol, nodes), then reports, per pair:

  * the answer (`value`) — must agree bitwise-as-printed unless --value-tol;
  * virtual elapsed time — relative delta against --threshold;
  * every counter present on either side — relative delta against --threshold
    (a counter absent on one side reads as 0);
  * the races_detected counter (--race-detect runs, docs/RACES.md) — a
    candidate reporting MORE races than its baseline fails outright,
    regardless of --threshold and --ignore (a race verdict is not a drift);
  * histogram count/sum drift (informational unless --strict-histograms).

Exit codes:  0 all deltas within threshold,  1 threshold exceeded or answers
diverged or points unmatched,  2 usage / schema error.

With --bench A_LABEL B_LABEL the single positional argument is instead a
BENCH_host_perf.json file (one JSON object per line, as appended by
scripts/bench_host.sh), and the two named rows are compared as host-perf
results: throughput fields (events/sec, accesses/sec, diff pages/sec) fail
when B is *slower* than A beyond --threshold, wall-clock and peak-RSS fields
fail when B is *larger*. Improvements never fail.

Typical uses:
  scripts/compare_metrics.py base.json opt.json --threshold 5
      did the optimisation change any counter or timing by more than 5%?
  scripts/compare_metrics.py quiet.json faulty.json --ignore 'net_|retrans|ack|dup|rpc_'
      faults may retry traffic, but answers and non-transport counters must hold.
  scripts/compare_metrics.py BENCH_host_perf.json --bench pr4-ha pr6 --threshold 10
      did this PR regress host throughput, e2e wall time, or peak RSS by >10%?
"""

import argparse
import json
import re
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"compare_metrics: cannot read {path}: {e}")
    if doc.get("schema") != "hyp-metrics-v1":
        sys.exit(f"compare_metrics: {path}: schema is {doc.get('schema')!r}, "
                 "expected 'hyp-metrics-v1'")
    return doc


def key(point):
    return (point.get("cluster", ""), point.get("protocol", ""),
            point.get("nodes", -1), point.get("label", ""))


def key_str(k):
    cluster, protocol, nodes, label = k
    parts = [p for p in (cluster, protocol) if p]
    if nodes >= 0:
        parts.append(f"n={nodes}")
    if label:
        parts.append(label)
    return "/".join(parts) if parts else "(unlabelled)"


def rel_delta(a, b):
    if a == b:
        return 0.0
    if a == 0:
        return float("inf")
    return abs(b - a) / abs(a) * 100.0


def fmt_delta(d):
    return "new" if d == float("inf") else f"{d:+.2f}%".replace("+", "")


# --- BENCH_host_perf.json row gating (--bench) ------------------------------
#
# Regression direction per field: "up" = bigger is better (a drop fails),
# "down" = smaller is better (a rise fails).
BENCH_FIELDS = [
    ("events_per_sec", "up"),
    ("ic_accesses_per_sec", "up"),
    ("pf_accesses_per_sec", "up"),
    ("diff_pages_per_sec", "up"),
    ("jacobi_ic_wall_s", "down"),
    ("jacobi_pf_wall_s", "down"),
    ("asp_ic_wall_s", "down"),
    ("asp_pf_wall_s", "down"),
    ("e2e_wall_s", "down"),
    ("peak_rss_kb", "down"),
]


# --- serve SLO rows (docs/SERVING.md): direction-aware counter gating -------
#
# The serving harness publishes its SLO summary as named counters. They are
# performance verdicts, not event tallies, so they gate like --bench fields:
# latency quantiles fail only when the candidate is *slower*, throughput only
# when it *drops* — improvements never fail, whatever their magnitude.
SERVE_FIELDS = {
    "serve_p50_us": "down",
    "serve_p99_us": "down",
    "serve_p999_us": "down",
    "serve_throughput_ops": "up",
    # Adaptive-protocol decision tallies (docs/PROTOCOLS.md §hybrid): churn
    # metrics, not event counts. A candidate that switches detection modes or
    # migrates homes MORE than its baseline is thrashing — that gates like a
    # latency rise; fewer decisions (a steadier policy) never fails. The same
    # goes for crash-forced migration reverts.
    "dsm_mode_switches": "down",
    "dsm_home_migrations": "down",
    "dsm_migrations_reverted": "down",
}


def load_bench_rows(path):
    rows = []
    try:
        with open(path) as f:
            for ln, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError as e:
                    sys.exit(f"compare_metrics: {path}:{ln}: bad JSON row: {e}")
    except OSError as e:
        sys.exit(f"compare_metrics: cannot read {path}: {e}")
    if not rows:
        sys.exit(f"compare_metrics: {path}: no rows")
    return rows


def pick_row(rows, label, path):
    matches = [r for r in rows if r.get("label") == label]
    if not matches:
        known = ", ".join(sorted(str(r.get("label")) for r in rows))
        sys.exit(f"compare_metrics: no row labelled {label!r} in {path} "
                 f"(have: {known})")
    return matches[-1]  # re-runs append; the latest row under a label wins


def run_bench(args):
    rows = load_bench_rows(args.base)
    a = pick_row(rows, args.bench[0], args.base)
    b = pick_row(rows, args.bench[1], args.base)
    if a.get("quick") != b.get("quick"):
        print(f"compare_metrics: warning: comparing quick={a.get('quick')} "
              f"against quick={b.get('quick')} rows", file=sys.stderr)

    failures = []
    table = []
    for field, direction in BENCH_FIELDS:
        x, y = a.get(field), b.get(field)
        if x is None or y is None:
            table.append((field, x, y, "absent"))
            continue
        if x == 0:
            table.append((field, x, y, "n/a"))
            continue
        # Positive = regressed (slower / bigger), negative = improved.
        regressed = (x - y) / x * 100.0 if direction == "up" else (y - x) / x * 100.0
        table.append((field, x, y, f"{regressed:+.2f}%"))
        if regressed > args.threshold:
            worse = "slower" if direction == "up" else "larger"
            failures.append(f"{field}: {x} -> {y} ({regressed:+.2f}% {worse} "
                            f"> {args.threshold}%)")

    if not args.quiet:
        w = max(len(t[0]) for t in table)
        print(f"{'field':<{w}}  {args.bench[0]:>16}  {args.bench[1]:>16}  regressed")
        for field, x, y, verdict in table:
            print(f"{field:<{w}}  {x!s:>16}  {y!s:>16}  {verdict}")

    if failures:
        print(f"\ncompare_metrics: {len(failures)} host-perf regression(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"compare_metrics: OK ({args.bench[0]} -> {args.bench[1]}, "
          f"threshold {args.threshold}%)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("base", help="baseline hyp-metrics-v1 JSON (the 'A' side), "
                                 "or the BENCH_host_perf.json file with --bench")
    ap.add_argument("other", nargs="?", default=None,
                    help="candidate hyp-metrics-v1 JSON (the 'B' side); "
                         "omitted with --bench")
    ap.add_argument("--bench", nargs=2, metavar=("A_LABEL", "B_LABEL"),
                    help="compare two labelled rows of a BENCH_host_perf.json "
                         "file instead of two metrics files")
    ap.add_argument("--threshold", type=float, default=0.0, metavar="PCT",
                    help="max allowed relative delta in %% for elapsed time and "
                         "counters (default 0: any drift fails)")
    ap.add_argument("--value-tol", type=float, default=0.0, metavar="ABS",
                    help="absolute tolerance for the `value` answers (default 0)")
    ap.add_argument("--ignore", default="", metavar="REGEX",
                    help="counters matching this regex are reported but never fail")
    ap.add_argument("--strict-histograms", action="store_true",
                    help="histogram count/sum drift beyond threshold also fails")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="print only failures and the final verdict")
    args = ap.parse_args()

    if args.bench:
        return run_bench(args)
    if args.other is None:
        ap.error("two metrics files required (or use --bench A_LABEL B_LABEL)")

    ignore = re.compile(args.ignore) if args.ignore else None
    a_doc, b_doc = load(args.base), load(args.other)
    a_pts = {key(p): p for p in a_doc.get("points", [])}
    b_pts = {key(p): p for p in b_doc.get("points", [])}

    failures = []
    rows = []

    for k in sorted(set(a_pts) | set(b_pts), key=key_str):
        name = key_str(k)
        if k not in a_pts or k not in b_pts:
            side = args.other if k not in b_pts else args.base
            failures.append(f"{name}: point missing from {side}")
            continue
        pa, pb = a_pts[k], b_pts[k]

        va, vb = pa.get("value"), pb.get("value")
        if va is not None or vb is not None:
            if va is None or vb is None or abs(va - vb) > args.value_tol:
                failures.append(f"{name}: value {va} -> {vb} (answers diverged)")

        ea, eb = pa.get("elapsed_ps", 0), pb.get("elapsed_ps", 0)
        d = rel_delta(ea, eb)
        rows.append((name, "elapsed_ps", ea, eb, d))
        if d > args.threshold:
            failures.append(f"{name}: elapsed_ps {ea} -> {eb} ({fmt_delta(d)} "
                            f"> {args.threshold}%)")

        ca, cb = pa.get("counters", {}), pb.get("counters", {})

        # Race verdicts are gated separately and unconditionally: new data
        # races in the candidate fail no matter what --threshold or --ignore
        # says (fewer races than the baseline is fine).
        ra, rb = ca.get("races_detected", 0), cb.get("races_detected", 0)
        if ra != rb:
            rows.append((name, "races_detected", ra, rb, rel_delta(ra, rb)))
        if rb > ra:
            failures.append(f"{name}: races_detected {ra} -> {rb} "
                            "(candidate introduces data races; never tolerated)")

        # Partition-HA verdicts get the same unconditional treatment
        # (docs/PARTITIONS.md): an epoch-fenced reject or a quorum read
        # materializing where the baseline had none means stale-authority
        # traffic reached a handler, or a home was suspected, in a run that
        # is supposed to be partition-free — a split-brain symptom, not a
        # tolerable drift.
        for c in ("ha_fenced_rejects", "ha_quorum_reads"):
            x, y = ca.get(c, 0), cb.get(c, 0)
            if x == 0 and y > 0:
                rows.append((name, c, x, y, rel_delta(x, y)))
                failures.append(f"{name}: counter {c} 0 -> {y} (partition HA "
                                "engaged where the baseline saw none; never "
                                "tolerated)")

        for c in sorted(set(ca) | set(cb)):
            if c == "races_detected":
                continue
            if c in ("ha_fenced_rejects", "ha_quorum_reads") and \
                    ca.get(c, 0) == 0 and cb.get(c, 0) > 0:
                continue  # already failed unconditionally above
            x, y = ca.get(c, 0), cb.get(c, 0)
            if x == y:
                continue
            d = rel_delta(x, y)
            rows.append((name, c, x, y, d))
            if ignore and ignore.search(c):
                continue
            if c in SERVE_FIELDS:
                if x == 0:
                    continue  # row new in the candidate: informational
                direction = SERVE_FIELDS[c]
                regressed = ((x - y) / x * 100.0 if direction == "up"
                             else (y - x) / x * 100.0)
                if regressed > args.threshold:
                    worse = "dropped" if direction == "up" else "rose"
                    failures.append(f"{name}: counter {c} {x} -> {y} "
                                    f"({worse} {regressed:+.2f}% "
                                    f"> {args.threshold}%)")
                continue
            if d > args.threshold:
                failures.append(f"{name}: counter {c} {x} -> {y} "
                                f"({fmt_delta(d)} > {args.threshold}%)")

        ha, hb = pa.get("histograms", {}), pb.get("histograms", {})
        for h in sorted(set(ha) | set(hb)):
            for field in ("count", "sum"):
                x = ha.get(h, {}).get(field, 0)
                y = hb.get(h, {}).get(field, 0)
                if x == y:
                    continue
                d = rel_delta(x, y)
                rows.append((name, f"{h}.{field}", x, y, d))
                if args.strict_histograms and d > args.threshold and not (
                        ignore and ignore.search(h)):
                    failures.append(f"{name}: histogram {h}.{field} {x} -> {y} "
                                    f"({fmt_delta(d)} > {args.threshold}%)")

    if rows and not args.quiet:
        w = max(len(r[0]) for r in rows)
        wm = max(len(r[1]) for r in rows)
        print(f"{'point':<{w}}  {'metric':<{wm}}  {'A':>14}  {'B':>14}  delta")
        for name, metric, x, y, d in rows:
            print(f"{name:<{w}}  {metric:<{wm}}  {x:>14}  {y:>14}  {fmt_delta(d)}")
    elif not rows and not args.quiet:
        print(f"identical: every compared metric matches across "
              f"{len(a_pts)} point(s)")

    if failures:
        print(f"\ncompare_metrics: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"compare_metrics: OK ({len(a_pts)} points, threshold "
          f"{args.threshold}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
