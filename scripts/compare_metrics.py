#!/usr/bin/env python3
"""A/B diff of two hyp-metrics-v1 JSON files (--metrics-out of any bench binary).

Pairs experiment points by (cluster, protocol, nodes), then reports, per pair:

  * the answer (`value`) — must agree bitwise-as-printed unless --value-tol;
  * virtual elapsed time — relative delta against --threshold;
  * every counter present on either side — relative delta against --threshold
    (a counter absent on one side reads as 0);
  * histogram count/sum drift (informational unless --strict-histograms).

Exit codes:  0 all deltas within threshold,  1 threshold exceeded or answers
diverged or points unmatched,  2 usage / schema error.

Typical uses:
  scripts/compare_metrics.py base.json opt.json --threshold 5
      did the optimisation change any counter or timing by more than 5%?
  scripts/compare_metrics.py quiet.json faulty.json --ignore 'net_|retrans|ack|dup|rpc_'
      faults may retry traffic, but answers and non-transport counters must hold.
"""

import argparse
import json
import re
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"compare_metrics: cannot read {path}: {e}")
    if doc.get("schema") != "hyp-metrics-v1":
        sys.exit(f"compare_metrics: {path}: schema is {doc.get('schema')!r}, "
                 "expected 'hyp-metrics-v1'")
    return doc


def key(point):
    return (point.get("cluster", ""), point.get("protocol", ""),
            point.get("nodes", -1), point.get("label", ""))


def key_str(k):
    cluster, protocol, nodes, label = k
    parts = [p for p in (cluster, protocol) if p]
    if nodes >= 0:
        parts.append(f"n={nodes}")
    if label:
        parts.append(label)
    return "/".join(parts) if parts else "(unlabelled)"


def rel_delta(a, b):
    if a == b:
        return 0.0
    if a == 0:
        return float("inf")
    return abs(b - a) / abs(a) * 100.0


def fmt_delta(d):
    return "new" if d == float("inf") else f"{d:+.2f}%".replace("+", "")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("base", help="baseline hyp-metrics-v1 JSON (the 'A' side)")
    ap.add_argument("other", help="candidate hyp-metrics-v1 JSON (the 'B' side)")
    ap.add_argument("--threshold", type=float, default=0.0, metavar="PCT",
                    help="max allowed relative delta in %% for elapsed time and "
                         "counters (default 0: any drift fails)")
    ap.add_argument("--value-tol", type=float, default=0.0, metavar="ABS",
                    help="absolute tolerance for the `value` answers (default 0)")
    ap.add_argument("--ignore", default="", metavar="REGEX",
                    help="counters matching this regex are reported but never fail")
    ap.add_argument("--strict-histograms", action="store_true",
                    help="histogram count/sum drift beyond threshold also fails")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="print only failures and the final verdict")
    args = ap.parse_args()

    ignore = re.compile(args.ignore) if args.ignore else None
    a_doc, b_doc = load(args.base), load(args.other)
    a_pts = {key(p): p for p in a_doc.get("points", [])}
    b_pts = {key(p): p for p in b_doc.get("points", [])}

    failures = []
    rows = []

    for k in sorted(set(a_pts) | set(b_pts), key=key_str):
        name = key_str(k)
        if k not in a_pts or k not in b_pts:
            side = args.other if k not in b_pts else args.base
            failures.append(f"{name}: point missing from {side}")
            continue
        pa, pb = a_pts[k], b_pts[k]

        va, vb = pa.get("value"), pb.get("value")
        if va is not None or vb is not None:
            if va is None or vb is None or abs(va - vb) > args.value_tol:
                failures.append(f"{name}: value {va} -> {vb} (answers diverged)")

        ea, eb = pa.get("elapsed_ps", 0), pb.get("elapsed_ps", 0)
        d = rel_delta(ea, eb)
        rows.append((name, "elapsed_ps", ea, eb, d))
        if d > args.threshold:
            failures.append(f"{name}: elapsed_ps {ea} -> {eb} ({fmt_delta(d)} "
                            f"> {args.threshold}%)")

        ca, cb = pa.get("counters", {}), pb.get("counters", {})
        for c in sorted(set(ca) | set(cb)):
            x, y = ca.get(c, 0), cb.get(c, 0)
            if x == y:
                continue
            d = rel_delta(x, y)
            rows.append((name, c, x, y, d))
            if ignore and ignore.search(c):
                continue
            if d > args.threshold:
                failures.append(f"{name}: counter {c} {x} -> {y} "
                                f"({fmt_delta(d)} > {args.threshold}%)")

        ha, hb = pa.get("histograms", {}), pb.get("histograms", {})
        for h in sorted(set(ha) | set(hb)):
            for field in ("count", "sum"):
                x = ha.get(h, {}).get(field, 0)
                y = hb.get(h, {}).get(field, 0)
                if x == y:
                    continue
                d = rel_delta(x, y)
                rows.append((name, f"{h}.{field}", x, y, d))
                if args.strict_histograms and d > args.threshold and not (
                        ignore and ignore.search(h)):
                    failures.append(f"{name}: histogram {h}.{field} {x} -> {y} "
                                    f"({fmt_delta(d)} > {args.threshold}%)")

    if rows and not args.quiet:
        w = max(len(r[0]) for r in rows)
        wm = max(len(r[1]) for r in rows)
        print(f"{'point':<{w}}  {'metric':<{wm}}  {'A':>14}  {'B':>14}  delta")
        for name, metric, x, y, d in rows:
            print(f"{name:<{w}}  {metric:<{wm}}  {x:>14}  {y:>14}  {fmt_delta(d)}")
    elif not rows and not args.quiet:
        print(f"identical: every compared metric matches across "
              f"{len(a_pts)} point(s)")

    if failures:
        print(f"\ncompare_metrics: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"compare_metrics: OK ({len(a_pts)} points, threshold "
          f"{args.threshold}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
