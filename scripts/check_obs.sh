#!/usr/bin/env bash
# End-to-end smoke of the observability layer (docs/OBSERVABILITY.md):
# runs two figure benches at tiny scale with --trace-stream/--trace-out/
# --metrics-out and validates the artifacts with python3:
#   - both files parse as JSON;
#   - the streamed Perfetto trace (covers every run of the sweep, including
#     the java_pf points) contains at least one page_fault instant and one
#     update_sent event, plus the derived latency slices;
#   - drop accounting is present (otherData.trace_dropped);
#   - the metrics file is schema hyp-metrics-v1 with counters, histograms,
#     page heat and phase sections on its points.
#
# Usage: scripts/check_obs.sh [build_dir]   (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

if [[ ! -x "$build_dir/bench/fig1_pi" || ! -x "$build_dir/bench/fig2_jacobi" ]]; then
  echo "check_obs: bench binaries missing; build first:" >&2
  echo "  cmake -B $build_dir -S $repo_root && cmake --build $build_dir -j" >&2
  exit 1
fi

echo "== fig1_pi (tiny sweep) with trace + metrics =="
"$build_dir/bench/fig1_pi" --quick --sci=false --max-nodes=4 --intervals 20000 \
  --trace-stream --trace-out="$out_dir/fig1.trace.json" \
  --metrics-out="$out_dir/fig1.metrics.json" > /dev/null

echo "== fig2_jacobi (tiny sweep) with trace + metrics =="
"$build_dir/bench/fig2_jacobi" --quick --sci=false --max-nodes=4 --n 32 --steps 4 \
  --trace-stream --trace-out="$out_dir/fig2.trace.json" \
  --metrics-out="$out_dir/fig2.metrics.json" > /dev/null

python3 - "$out_dir" <<'EOF'
import json, sys
out = sys.argv[1]

for tool in ("fig1", "fig2"):
    trace = json.load(open(f"{out}/{tool}.trace.json"))
    events = trace["traceEvents"]
    names = [e.get("name") for e in events]
    assert events, f"{tool}: empty traceEvents"
    assert "trace_dropped" in trace.get("otherData", {}), f"{tool}: no drop accounting"
    # The stream covers every attached run of the sweep (the sweep now ends
    # with a hybrid point, whose tiny run may never fault — the java_pf
    # points earlier in the stream must show remote-object detection and
    # update traffic).
    assert names.count("page_fault") >= 1, f"{tool}: no page_fault in trace"
    assert names.count("update_sent") >= 1, f"{tool}: no update_sent in trace"
    slices = [e for e in events if e.get("ph") == "X"]
    assert any(s["name"] == "page_fetch" for s in slices), f"{tool}: no fetch slices"
    print(f"{tool}: trace ok ({len(events)} events, "
          f"{trace['otherData']['trace_dropped']} dropped)")

    metrics = json.load(open(f"{out}/{tool}.metrics.json"))
    assert metrics["schema"] == "hyp-metrics-v1", f"{tool}: bad schema"
    points = metrics["points"]
    assert points, f"{tool}: no metrics points"
    pf = [p for p in points if p.get("protocol") == "java_pf"]
    assert pf, f"{tool}: no java_pf points"
    p = pf[-1]
    assert "counters" in p and p["counters"], f"{tool}: no counters"
    assert "histograms" in p, f"{tool}: no histograms"
    assert "page_heat" in p, f"{tool}: no page heat"
    assert "phases_ps" in p, f"{tool}: no phases"
    assert "trace" in p, f"{tool}: no trace drop section"
    print(f"{tool}: metrics ok ({len(points)} points)")

print("check_obs: all artifacts valid")
EOF
