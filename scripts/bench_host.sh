#!/usr/bin/env bash
# Builds Release and appends a host-throughput sample to BENCH_host_perf.json.
#
# Usage: scripts/bench_host.sh [label] [extra host_perf flags...]
#   scripts/bench_host.sh after            # full sizes, labeled "after"
#   scripts/bench_host.sh smoke --quick    # fast smoke sample
#
# Each run appends ONE JSON line to BENCH_host_perf.json at the repo root, so
# the file is the PR-over-PR perf trajectory (see docs/PERFORMANCE.md).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
label="${1:-dev}"
shift || true

build_dir="$repo_root/build-bench"
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
  -DHYP_BUILD_TESTS=OFF -DHYP_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc)" --target host_perf

"$build_dir/bench/host_perf" \
  --label="$label" \
  --out="$repo_root/BENCH_host_perf.json" \
  "$@"

echo "appended to $repo_root/BENCH_host_perf.json:"
tail -n 1 "$repo_root/BENCH_host_perf.json"
