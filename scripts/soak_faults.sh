#!/usr/bin/env bash
# Fault-injection soak: runs every paper-figure benchmark under several
# deterministic fault profiles (docs/FAULTS.md) and asserts that
#
#   1. the computed answers (the CSV `value` column, keyed by
#      cluster/protocol/nodes) are byte-identical to the fault-free run —
#      faults may cost virtual time but must never change results; and
#   2. a same-seed rerun of each faulty sweep is byte-identical end to end
#      (timings included) — the injection itself is deterministic.
#
# Usage: scripts/soak_faults.sh [build-dir]          (default: build)
#        SOAK_SMOKE=1 scripts/soak_faults.sh         (fig1 only, one profile;
#                                                     the ctest smoke entry)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
[[ -x "$BUILD/bench/fig1_pi" ]] || {
  echo "soak_faults: $BUILD/bench/fig1_pi not built (run cmake --build $BUILD)" >&2
  exit 2
}

FIGS=(fig1_pi fig2_jacobi fig3_barnes fig4_tsp fig5_asp)
PROFILES=(
  'drop2%,seed=7'
  'dup1%,reorder5us,seed=7'
  'drop1%,dup1%,corrupt0.5%,stall0@300us+150us,seed=9'
)
if [[ "${SOAK_SMOKE:-0}" == "1" ]]; then
  FIGS=(fig1_pi)
  PROFILES=('drop2%,dup1%,reorder5us,seed=7')
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Extracts "cluster,protocol,nodes,value" from a figure binary's CSV block.
answers() {
  awk -F, '/^fig[0-9]+,/ { print $2 "," $3 "," $4 "," $6 }' "$1"
}

fail=0
for fig in "${FIGS[@]}"; do
  base="$WORK/$fig.base.txt"
  "$BUILD"/bench/"$fig" --quick > "$base"
  answers "$base" > "$WORK/$fig.base.ans"
  n_points=$(wc -l < "$WORK/$fig.base.ans")
  for i in "${!PROFILES[@]}"; do
    prof="${PROFILES[$i]}"
    out="$WORK/$fig.p$i.txt"
    "$BUILD"/bench/"$fig" --quick --fault-profile="$prof" > "$out"
    answers "$out" > "$WORK/$fig.p$i.ans"
    if ! cmp -s "$WORK/$fig.base.ans" "$WORK/$fig.p$i.ans"; then
      echo "FAIL: $fig answers diverged under '$prof'" >&2
      diff "$WORK/$fig.base.ans" "$WORK/$fig.p$i.ans" >&2 || true
      fail=1
      continue
    fi
    # Determinism: same seed, same bytes (including timings).
    "$BUILD"/bench/"$fig" --quick --fault-profile="$prof" > "$out.rerun"
    if ! cmp -s "$out" "$out.rerun"; then
      echo "FAIL: $fig same-seed rerun not byte-identical under '$prof'" >&2
      diff "$out" "$out.rerun" >&2 || true
      fail=1
      continue
    fi
    echo "ok: $fig under '$prof' ($n_points points, answers exact, rerun identical)"
  done
done

if [[ $fail -ne 0 ]]; then
  echo "soak_faults: FAILURES above" >&2
  exit 1
fi
echo "soak_faults: all figures produce fault-free answers under every profile"
