#!/usr/bin/env bash
# Fault-injection soak: runs every paper-figure benchmark under several
# deterministic fault profiles (docs/FAULTS.md, docs/RECOVERY.md) and asserts
#
#   1. the computed answers (the CSV `value` column, keyed by
#      cluster/protocol/nodes) are byte-identical to the fault-free run —
#      faults may cost virtual time but must never change results;
#   2. a same-seed rerun of each faulty sweep is byte-identical end to end
#      (timings included) — the injection itself is deterministic; and
#   3. the benchmark binaries themselves exit 0 under every profile — a
#      crash/panic inside a faulty run is a failure of that profile's row,
#      not a silent abort of the whole soak.
#
# The figure binaries sweep all three protocols (java_ic, java_pf, hybrid)
# per invocation, so every profile row exercises the adaptive protocol's
# mode switches and home migrations under faults too; the baseline check
# below asserts the hybrid rows are actually present.
#
# Every (figure, profile) pair is driven to completion even after a failure;
# the per-profile pass/fail summary table at the end shows which combinations
# broke, and the script's exit code is 1 iff any row failed.
#
# Usage: scripts/soak_faults.sh [build-dir]          (default: build)
#        SOAK_SMOKE=1 scripts/soak_faults.sh         (fig1 only, two profiles;
#                                                     the ctest smoke entry)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
[[ -x "$BUILD/bench/fig1_pi" ]] || {
  echo "soak_faults: $BUILD/bench/fig1_pi not built (run cmake --build $BUILD)" >&2
  exit 2
}

FIGS=(fig1_pi fig2_jacobi fig3_barnes fig4_tsp fig5_asp)
PROFILES=(
  'drop2%,seed=7'
  'dup1%,reorder5us,seed=7'
  'drop1%,dup1%,corrupt0.5%,stall0@300us+150us,seed=9'
  # Kill-and-recover: node 2 crashes mid-run and restarts 2ms later; the HA
  # layer (docs/RECOVERY.md) must fail its homes over and still produce the
  # exact fault-free answers. Inert on 1-node sweep points (no node 2).
  'crash2@3ms+2ms,seed=7'
  # Multi-failure: two distinct nodes die in sequence under K=2 chain
  # replication (docs/RECOVERY.md). No zone ever loses all three copies, so
  # the answers must again be exactly fault-free. Windows naming absent
  # nodes are inert on small sweep points.
  'replicas=2,crash1@3ms+2ms,crash2@8ms+2ms,seed=7'
  # Network split (docs/PARTITIONS.md): node 2 — a zone home — is cut off
  # from {0,1,3} for 2ms. Where the silence is corroborated by a cluster
  # majority the survivors promote its zones; elsewhere cross-cut accesses
  # park and drain at the heal. Answers must stay exactly fault-free either
  # way (scripts/partition_smoke.sh checks the trace-level behavior too).
  'partition@3ms+2ms:2|0.1.3,seed=7'
)
if [[ "${SOAK_SMOKE:-0}" == "1" ]]; then
  FIGS=(fig1_pi)
  PROFILES=('drop2%,dup1%,reorder5us,seed=7' 'crash2@3ms+2ms,seed=7'
            'replicas=2,crash1@3ms+2ms,crash2@8ms+2ms,seed=7')
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Extracts "cluster,protocol,nodes,value" from a figure binary's CSV block.
answers() {
  awk -F, '/^fig[0-9]+,/ { print $2 "," $3 "," $4 "," $6 }' "$1"
}

# Runs one benchmark invocation without tripping `set -e`; captures stdout to
# $1 and reports (but does not abort on) a non-zero exit.
run_bench() {
  local out="$1"
  shift
  local rc=0
  "$@" > "$out" 2> "$out.err" || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "FAIL: '$*' exited $rc" >&2
    sed 's/^/    stderr: /' "$out.err" | tail -n 20 >&2
  fi
  return $rc
}

declare -a SUMMARY=()
fail=0

for fig in "${FIGS[@]}"; do
  base="$WORK/$fig.base.txt"
  if ! run_bench "$base" "$BUILD"/bench/"$fig" --quick; then
    # No baseline, no comparisons: every profile row for this figure fails.
    for prof in "${PROFILES[@]}"; do
      SUMMARY+=("$fig;$prof;FAIL (no fault-free baseline)")
    done
    fail=1
    continue
  fi
  answers "$base" > "$WORK/$fig.base.ans"
  n_points=$(wc -l < "$WORK/$fig.base.ans")
  if ! grep -q ',hybrid,' "$WORK/$fig.base.ans"; then
    echo "FAIL: $fig baseline has no hybrid rows — protocol matrix shrank" >&2
    for prof in "${PROFILES[@]}"; do
      SUMMARY+=("$fig;$prof;FAIL (no hybrid rows in baseline)")
    done
    fail=1
    continue
  fi

  for i in "${!PROFILES[@]}"; do
    prof="${PROFILES[$i]}"
    out="$WORK/$fig.p$i.txt"
    if ! run_bench "$out" "$BUILD"/bench/"$fig" --quick --fault-profile="$prof"; then
      SUMMARY+=("$fig;$prof;FAIL (non-zero exit)")
      fail=1
      continue
    fi
    answers "$out" > "$WORK/$fig.p$i.ans"
    if ! cmp -s "$WORK/$fig.base.ans" "$WORK/$fig.p$i.ans"; then
      echo "FAIL: $fig answers diverged under '$prof'" >&2
      diff "$WORK/$fig.base.ans" "$WORK/$fig.p$i.ans" >&2 || true
      SUMMARY+=("$fig;$prof;FAIL (answers diverged)")
      fail=1
      continue
    fi
    # Determinism: same seed, same bytes (including timings).
    if ! run_bench "$out.rerun" "$BUILD"/bench/"$fig" --quick --fault-profile="$prof"; then
      SUMMARY+=("$fig;$prof;FAIL (rerun non-zero exit)")
      fail=1
      continue
    fi
    if ! cmp -s "$out" "$out.rerun"; then
      echo "FAIL: $fig same-seed rerun not byte-identical under '$prof'" >&2
      diff "$out" "$out.rerun" >&2 || true
      SUMMARY+=("$fig;$prof;FAIL (rerun not byte-identical)")
      fail=1
      continue
    fi
    echo "ok: $fig under '$prof' ($n_points points, answers exact, rerun identical)"
    SUMMARY+=("$fig;$prof;pass")
  done
done

echo
echo "== soak_faults summary =="
printf '%-12s %-52s %s\n' "figure" "profile" "result"
for row in "${SUMMARY[@]}"; do
  IFS=';' read -r f p r <<< "$row"
  printf '%-12s %-52s %s\n' "$f" "$p" "$r"
done

if [[ $fail -ne 0 ]]; then
  echo "soak_faults: FAILURES above" >&2
  exit 1
fi
echo "soak_faults: all figures produce fault-free answers under every profile"
