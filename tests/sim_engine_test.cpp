#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hyp::sim {
namespace {

TEST(Engine, RunsSingleFiberToCompletion) {
  Engine eng;
  bool ran = false;
  eng.spawn("solo", [&] { ran = true; });
  auto stuck = eng.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(stuck.empty());
}

TEST(Engine, VirtualTimeAdvancesWithSleep) {
  Engine eng;
  Time observed = 0;
  eng.spawn("sleeper", [&] {
    EXPECT_EQ(eng.now(), 0u);
    eng.sleep_for(5 * kMicrosecond);
    EXPECT_EQ(eng.now(), 5 * kMicrosecond);
    eng.sleep_until(8 * kMicrosecond);
    observed = eng.now();
  });
  eng.run();
  EXPECT_EQ(observed, 8 * kMicrosecond);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.post(3 * kNanosecond, [&] { order.push_back(3); });
  eng.post(1 * kNanosecond, [&] { order.push_back(1); });
  eng.post(2 * kNanosecond, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeEventsFireInPostOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.post(7 * kNanosecond, [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, FibersInterleaveDeterministically) {
  // Two runs of the same program produce identical interleavings.
  auto trace_run = [] {
    Engine eng;
    std::vector<std::string> trace;
    for (int f = 0; f < 3; ++f) {
      eng.spawn("f" + std::to_string(f), [&eng, &trace, f] {
        for (int step = 0; step < 3; ++step) {
          trace.push_back(std::to_string(f) + ":" + std::to_string(step));
          eng.sleep_for((f + 1) * kNanosecond);
        }
      });
    }
    eng.run();
    return trace;
  };
  EXPECT_EQ(trace_run(), trace_run());
}

TEST(Engine, ParkUnparkRoundTrip) {
  Engine eng;
  Fiber* sleeper = nullptr;
  bool woke = false;
  sleeper = eng.spawn("sleeper", [&] {
    eng.park();
    woke = true;
  });
  eng.spawn("waker", [&] {
    eng.sleep_for(10 * kNanosecond);
    eng.unpark(sleeper);
  });
  auto stuck = eng.run();
  EXPECT_TRUE(woke);
  EXPECT_TRUE(stuck.empty());
}

TEST(Engine, PermitMakesNextParkImmediate) {
  Engine eng;
  Fiber* target = nullptr;
  Time wake_time = 0;
  target = eng.spawn("target", [&] {
    eng.sleep_for(20 * kNanosecond);  // permit arrives while sleeping
    eng.park();                       // consumes the permit, no block
    wake_time = eng.now();
  });
  eng.spawn("early-waker", [&] { eng.unpark(target); });
  eng.run();
  EXPECT_EQ(wake_time, 20 * kNanosecond);
}

TEST(Engine, JoinWaitsForCompletion) {
  Engine eng;
  Time join_time = 0;
  Fiber* worker = eng.spawn("worker", [&] { eng.sleep_for(kMicrosecond); });
  eng.spawn("joiner", [&] {
    eng.join(worker);
    join_time = eng.now();
    EXPECT_TRUE(worker->done());
  });
  eng.run();
  EXPECT_EQ(join_time, kMicrosecond);
}

TEST(Engine, JoinOnDoneFiberReturnsImmediately) {
  Engine eng;
  Fiber* worker = eng.spawn("worker", [] {});
  eng.spawn("late-joiner", [&] {
    Engine::current()->sleep_for(5 * kNanosecond);
    eng.join(worker);
    EXPECT_EQ(eng.now(), 5 * kNanosecond);
  });
  eng.run();
}

TEST(Engine, DeadlockedFiberReportedByName) {
  Engine eng;
  eng.spawn("stuck-forever", [&] { eng.park(); });
  auto stuck = eng.run();
  ASSERT_EQ(stuck.size(), 1u);
  EXPECT_EQ(stuck[0], "stuck-forever");
}

TEST(Engine, DaemonsMayRemainParked) {
  Engine eng;
  eng.spawn_daemon("dispatcher", [&] { eng.park(); });
  auto stuck = eng.run();
  EXPECT_TRUE(stuck.empty());
}

TEST(Engine, SpawnFromInsideFiber) {
  Engine eng;
  std::vector<int> order;
  eng.spawn("parent", [&] {
    order.push_back(1);
    Fiber* child = eng.spawn("child", [&] { order.push_back(2); });
    eng.join(child);
    order.push_back(3);
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, YieldReordersBehindSameTimeWork) {
  Engine eng;
  std::vector<std::string> order;
  eng.spawn("a", [&] {
    order.push_back("a1");
    eng.yield();
    order.push_back("a2");
  });
  eng.spawn("b", [&] { order.push_back("b"); });
  eng.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b", "a2"}));
}

TEST(Engine, ManyFibersDeepRecursionOnOwnStacks) {
  Engine eng;
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    eng.spawn("rec" + std::to_string(i), [&eng, &completed] {
      // Burn some stack to prove fibers have independent stacks.
      auto recurse = [](auto&& self, int depth) -> int {
        volatile char pad[512];
        pad[0] = static_cast<char>(depth);
        if (depth == 0) return pad[0];
        return self(self, depth - 1) + 1;
      };
      EXPECT_EQ(recurse(recurse, 100), 100);
      eng.sleep_for(kNanosecond);
      ++completed;
    });
  }
  eng.run();
  EXPECT_EQ(completed, 50);
}

TEST(Engine, CountsSwitchesAndEvents) {
  Engine eng;
  eng.spawn("w", [&] { eng.sleep_for(kNanosecond); });
  eng.run();
  EXPECT_GE(eng.context_switches(), 2u);
  EXPECT_GE(eng.events_processed(), 2u);
}

TEST(EngineDeath, SleepOutsideFiberAborts) {
  Engine eng;
  EXPECT_DEATH(eng.sleep_for(1), "outside a fiber");
}

TEST(EngineDeath, PostIntoThePastAborts) {
  Engine eng;
  eng.spawn("t", [&] {
    eng.sleep_for(kMicrosecond);
    eng.post(0, [] {});
  });
  EXPECT_DEATH(eng.run(), "past");
}

}  // namespace
}  // namespace hyp::sim
