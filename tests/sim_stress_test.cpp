// Stress and property tests of the simulation engine: many fibers, seeded
// random synchronization patterns, determinism of the whole machine.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace hyp::sim {
namespace {

TEST(SimStress, FiveHundredFibersWithMixedBlocking) {
  Engine eng;
  SimMutex mutex(&eng);
  SimBarrier barrier(&eng, 100);
  std::int64_t shared = 0;
  int barrier_crossings = 0;
  for (int i = 0; i < 500; ++i) {
    eng.spawn("f" + std::to_string(i), [&eng, &mutex, &barrier, &shared, &barrier_crossings, i] {
      Rng rng(static_cast<std::uint64_t>(i));
      for (int step = 0; step < 20; ++step) {
        eng.sleep_for(rng.below(1000) * kNanosecond);
        SimLockGuard guard(mutex);
        ++shared;
      }
      if (i < 100) {
        barrier.arrive_and_wait();
        ++barrier_crossings;
      }
    });
  }
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(shared, 500 * 20);
  EXPECT_EQ(barrier_crossings, 100);
}

TEST(SimStress, ProducerConsumerPipelineConservesItems) {
  // 4 producers -> stage channel -> 4 relays -> sink channel -> 1 consumer.
  Engine eng;
  Channel<int> stage(&eng), sink(&eng);
  constexpr int kPerProducer = 250;
  int produced = 0, consumed = 0;
  std::int64_t checksum_in = 0, checksum_out = 0;

  for (int p = 0; p < 4; ++p) {
    eng.spawn("producer" + std::to_string(p), [&, p] {
      Rng rng(static_cast<std::uint64_t>(p) + 99);
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * 1000 + i;
        checksum_in += item;
        stage.push_at(item, eng.now() + rng.below(500) * kNanosecond);
        ++produced;
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    eng.spawn_daemon("relay" + std::to_string(r), [&] {
      while (auto item = stage.pop()) sink.push(*item);
    });
  }
  eng.spawn("consumer", [&] {
    for (int i = 0; i < 4 * kPerProducer; ++i) {
      auto item = sink.pop();
      ASSERT_TRUE(item.has_value());
      checksum_out += *item;
      ++consumed;
    }
    stage.close();
  });
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(produced, consumed);
  EXPECT_EQ(checksum_in, checksum_out);
}

class SimDeterminism : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminism, ::testing::Values(1u, 17u, 4242u),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

TEST_P(SimDeterminism, WholeMachineStateIsReproducible) {
  auto run_once = [&] {
    Engine eng;
    SimMutex mutex(&eng);
    SimCondVar cv(&eng);
    FifoServer server(&eng);
    std::vector<std::int64_t> trace;
    bool ready = false;
    for (int i = 0; i < 40; ++i) {
      eng.spawn("w" + std::to_string(i), [&, i] {
        Rng rng(GetParam() + static_cast<std::uint64_t>(i));
        for (int step = 0; step < 10; ++step) {
          switch (rng.below(4)) {
            case 0: eng.sleep_for(rng.below(10000) * kNanosecond); break;
            case 1: {
              SimLockGuard guard(mutex);
              trace.push_back(i * 100 + step);
              break;
            }
            case 2: server.serve(rng.below(5000) * kNanosecond); break;
            case 3: {
              SimLockGuard guard(mutex);
              if (ready) cv.notify_all();
              break;
            }
          }
        }
        if (i == 0) {
          SimLockGuard guard(mutex);
          ready = true;
          cv.notify_all();
        }
      });
    }
    eng.run();
    return std::make_tuple(eng.now(), eng.events_processed(), trace);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimStress, DeepJoinChains) {
  // Each fiber spawns and joins the next, 200 deep.
  Engine eng;
  int depth_reached = 0;
  std::function<void(int)> descend = [&](int depth) {
    depth_reached = std::max(depth_reached, depth);
    if (depth == 200) return;
    Fiber* child = eng.spawn("d" + std::to_string(depth), [&, depth] { descend(depth + 1); });
    eng.join(child);
  };
  eng.spawn("root", [&] { descend(1); });
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(depth_reached, 200);
}

TEST(SimStress, FifoServerThroughputAccounting) {
  // Total busy time equals the sum of all service requests regardless of
  // arrival pattern; completion never precedes arrival + service.
  Engine eng;
  FifoServer server(&eng);
  TimeDelta total_requested = 0;
  for (int i = 0; i < 100; ++i) {
    eng.spawn("client" + std::to_string(i), [&, i] {
      Rng rng(static_cast<std::uint64_t>(i));
      eng.sleep_for(rng.below(50) * kMicrosecond);
      const TimeDelta d = (1 + rng.below(20)) * kMicrosecond;
      total_requested += d;
      const Time arrival = eng.now();
      server.serve(d);
      EXPECT_GE(eng.now(), arrival + d);
    });
  }
  eng.run();
  EXPECT_EQ(server.busy_time(), total_requested);
  EXPECT_EQ(server.jobs_served(), 100u);
}

TEST(SimStress, ManyTimersFireInExactOrder) {
  Engine eng;
  Rng rng(2024);
  std::vector<Time> fire_times;
  std::vector<Time> scheduled;
  for (int i = 0; i < 2000; ++i) {
    const Time at = rng.below(1000000) * kNanosecond;
    scheduled.push_back(at);
    eng.post(at, [&fire_times, &eng] { fire_times.push_back(eng.now()); });
  }
  eng.run();
  ASSERT_EQ(fire_times.size(), scheduled.size());
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
  std::sort(scheduled.begin(), scheduled.end());
  EXPECT_EQ(fire_times, scheduled);
}

}  // namespace
}  // namespace hyp::sim
