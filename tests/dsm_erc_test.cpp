// Tests of the erc (eager release consistency, write-update) protocol.
// Defining behaviours vs the Java protocols: replicas are patched in place
// at the *writer's release* (no invalidation, no refetch), and acquires are
// free.
#include "dsm/erc.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hyp::dsm {
namespace {

cluster::ClusterParams test_params(int nodes) {
  auto p = cluster::ClusterParams::myrinet200();
  p.default_nodes = nodes;
  return p;
}

constexpr std::size_t kRegion = std::size_t{4} << 20;

TEST(Erc, FetchJoinsSharers) {
  cluster::Cluster c(test_params(3));
  ErcDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  c.spawn_thread(0, "driver", [&] {
    auto t1 = dsm.make_thread(1);
    auto t2 = dsm.make_thread(2);
    dsm.read<std::int64_t>(*t1, a);
    dsm.read<std::int64_t>(*t2, a);
    const PageId p = dsm.layout().page_of(a);
    EXPECT_EQ(dsm.sharers(p).size(), 2u);
  });
  c.run();
}

TEST(Erc, ReleasePushesUpdatesToHome) {
  cluster::Cluster c(test_params(2));
  ErcDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  c.spawn_thread(1, "writer", [&] {
    auto t = dsm.make_thread(1);
    dsm.write<std::int64_t>(*t, a, 99);
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), 0);  // not yet released
    dsm.on_release(*t);
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), 99);
  });
  c.run();
}

TEST(Erc, ReplicasArePatchedInPlaceWithoutRefetch) {
  // The headline difference from Java consistency: a reader's cached copy is
  // updated by the WRITER's release; the reader never invalidates, never
  // refetches, and still sees the new value.
  cluster::Cluster c(test_params(3));
  ErcDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  dsm.poke_home<std::int64_t>(a, 1);
  c.spawn_thread(0, "driver", [&] {
    auto reader = dsm.make_thread(1);
    auto writer = dsm.make_thread(2);
    EXPECT_EQ((dsm.read<std::int64_t>(*reader, a)), 1);  // caches the page
    const auto fetches_before = c.node(1).stats().get(Counter::kPageFetches);

    dsm.write<std::int64_t>(*writer, a, 2);
    dsm.on_release(*writer);  // blocks until node 1's replica is patched

    dsm.on_acquire(*reader);  // free: no invalidation
    EXPECT_EQ((dsm.read<std::int64_t>(*reader, a)), 2);
    EXPECT_EQ(c.node(1).stats().get(Counter::kPageFetches), fetches_before);  // no refetch!
  });
  c.run();
}

TEST(Erc, UpdatesDoNotEchoBackFromReaders) {
  // A forwarded update patches the replica AND its twin; the reader's next
  // release must not re-diff (and re-broadcast) the writer's words.
  cluster::Cluster c(test_params(3));
  ErcDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  c.spawn_thread(0, "driver", [&] {
    auto reader = dsm.make_thread(1);
    auto writer = dsm.make_thread(2);
    dsm.read<std::int64_t>(*reader, a);
    dsm.write<std::int64_t>(*writer, a, 5);
    dsm.on_release(*writer);
    const auto updates_before = c.node(1).stats().get(Counter::kUpdatesSent);
    dsm.on_release(*reader);  // reader wrote nothing: no updates
    EXPECT_EQ(c.node(1).stats().get(Counter::kUpdatesSent), updates_before);
  });
  c.run();
}

TEST(Erc, DisjointWritersMergeAtEveryCopy) {
  cluster::Cluster c(test_params(3));
  ErcDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  const Gva b = dsm.alloc(0, 8);  // same page
  c.spawn_thread(0, "driver", [&] {
    auto t1 = dsm.make_thread(1);
    auto t2 = dsm.make_thread(2);
    dsm.write<std::int64_t>(*t1, a, 11);
    dsm.write<std::int64_t>(*t2, b, 22);
    dsm.on_release(*t1);
    dsm.on_release(*t2);
    // Home and both replicas converge on the merged page.
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), 11);
    EXPECT_EQ(dsm.read_home<std::int64_t>(b), 22);
    EXPECT_EQ((dsm.read<std::int64_t>(*t1, b)), 22);
    EXPECT_EQ((dsm.read<std::int64_t>(*t2, a)), 11);
  });
  c.run();
}

TEST(Erc, ReleaseAcquirePairTransfersDataAcrossFibers) {
  cluster::Cluster c(test_params(3));
  ErcDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  sim::SimMutex lock(&c.engine());
  std::int64_t seen = 0;
  c.spawn_thread(1, "writer", [&] {
    auto t = dsm.make_thread(1);
    sim::SimLockGuard guard(lock);
    dsm.write<std::int64_t>(*t, a, 1234);
    dsm.on_release(*t);
  });
  c.spawn_thread(2, "reader", [&] {
    auto t = dsm.make_thread(2);
    c.engine().sleep_for(10 * kMillisecond);  // after the writer's release
    sim::SimLockGuard guard(lock);
    dsm.on_acquire(*t);
    seen = dsm.read<std::int64_t>(*t, a);
  });
  c.run();
  EXPECT_EQ(seen, 1234);
}

TEST(Erc, ConcurrentIncrementsUnderLockAreExact) {
  cluster::Cluster c(test_params(4));
  ErcDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  sim::SimMutex lock(&c.engine());
  constexpr int kThreads = 4;
  constexpr int kReps = 25;
  for (int w = 0; w < kThreads; ++w) {
    c.spawn_thread(w, "w" + std::to_string(w), [&, w] {
      auto t = dsm.make_thread(w);
      for (int i = 0; i < kReps; ++i) {
        sim::SimLockGuard guard(lock);
        dsm.on_acquire(*t);
        dsm.write<std::int64_t>(*t, a, dsm.read<std::int64_t>(*t, a) + 1);
        dsm.on_release(*t);
      }
    });
  }
  c.run();
  EXPECT_EQ(dsm.read_home<std::int64_t>(a), kThreads * kReps);
}

TEST(Erc, ReleaseFanOutScalesWithSharers) {
  // Each additional sharer costs the releaser one more forwarded update.
  auto messages_with_sharers = [&](int sharer_count) {
    cluster::Cluster c(test_params(6));
    ErcDsm dsm(&c, kRegion);
    const Gva a = dsm.alloc(0, 8);
    c.spawn_thread(0, "driver", [&] {
      std::vector<std::unique_ptr<ErcThreadCtx>> readers;
      for (int s = 0; s < sharer_count; ++s) {
        readers.push_back(dsm.make_thread(1 + s));
        dsm.read<std::int64_t>(*readers.back(), a);
      }
      auto writer = dsm.make_thread(5);
      dsm.write<std::int64_t>(*writer, a, 1);
      dsm.on_release(*writer);
    });
    c.run();
    return c.total_stats().get(Counter::kMessages);
  };
  EXPECT_GT(messages_with_sharers(3), messages_with_sharers(1));
}

TEST(ErcDeath, MisdirectedReleaseAborts) {
  cluster::Cluster c(test_params(3));
  ErcDsm dsm(&c, kRegion);
  const Gva on2 = dsm.alloc(2, 8);
  c.spawn_thread(0, "attacker", [&] {
    Buffer msg;
    msg.put<std::uint32_t>(1);
    msg.put<std::uint64_t>(on2);
    msg.put<std::uint32_t>(8);
    const std::int64_t v = 1;
    msg.put_bytes(&v, 8);
    c.call(0, 1, svc::kErcRelease, std::move(msg));
  });
  EXPECT_DEATH(c.run(), "non-home");
}

}  // namespace
}  // namespace hyp::dsm
