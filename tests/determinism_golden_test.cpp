// Determinism golden test: the bit-identical-simulation contract.
//
// The engine promises that a simulation is a pure function of its inputs, so
// host-side performance work (event pools, presence tables, word-wise diffs,
// buffer recycling — see docs/PERFORMANCE.md) must not change ANY simulated
// quantity. This test pins Jacobi + ASP under both protocols x {1,2,4} nodes
// to recorded goldens: result bits, virtual time, engine event/context-switch
// tallies and every nonzero stat counter must match EXACTLY.
//
// Re-recording (only legitimate after an intentional *semantic* change, e.g.
// a wire-format fix — say why in the commit message):
//   HYP_UPDATE_GOLDENS=1 ./determinism_tests
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/asp.hpp"
#include "apps/jacobi.hpp"

namespace hyp::apps {
namespace {

#ifndef HYP_GOLDEN_FILE
#error "HYP_GOLDEN_FILE must point at the recorded goldens"
#endif

struct ConfigPoint {
  const char* app;
  dsm::ProtocolKind protocol;
  int nodes;
};

std::vector<ConfigPoint> config_points() {
  std::vector<ConfigPoint> pts;
  for (const char* app : {"jacobi", "asp"}) {
    for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
      for (int nodes : {1, 2, 4}) pts.push_back({app, kind, nodes});
    }
  }
  return pts;
}

RunResult run_point(const ConfigPoint& pt) {
  const auto cfg =
      make_config("myri200", pt.protocol, pt.nodes, std::size_t{64} << 20);
  if (std::strcmp(pt.app, "jacobi") == 0) {
    JacobiParams p;
    p.n = 40;
    p.steps = 6;
    return jacobi_parallel(cfg, p);
  }
  AspParams p;
  p.n = 40;
  return asp_parallel(cfg, p);
}

// One golden line:
//   <app> <protocol> n<k> value_bits=<u64> elapsed=<u64> events=<u64>
//   switches=<u64> <counter>=<u64>...
std::string golden_line(const ConfigPoint& pt, const RunResult& r) {
  std::uint64_t value_bits = 0;
  static_assert(sizeof(value_bits) == sizeof(r.value));
  std::memcpy(&value_bits, &r.value, sizeof(value_bits));
  std::ostringstream os;
  os << pt.app << ' ' << dsm::protocol_name(pt.protocol) << " n" << pt.nodes
     << " value_bits=" << value_bits << " elapsed=" << r.elapsed
     << " events=" << r.events_processed << " switches=" << r.context_switches;
  for (const auto& [name, v] : r.stats.nonzero()) os << ' ' << name << '=' << v;
  return os.str();
}

std::string point_key(const ConfigPoint& pt) {
  return std::string(pt.app) + ' ' + dsm::protocol_name(pt.protocol) + " n" +
         std::to_string(pt.nodes);
}

TEST(DeterminismGolden, JacobiAndAspBitIdentical) {
  std::vector<std::string> lines;
  std::map<std::string, std::string> actual;  // key -> full line
  for (const auto& pt : config_points()) {
    const RunResult r = run_point(pt);
    const std::string line = golden_line(pt, r);
    lines.push_back(line);
    actual[point_key(pt)] = line;
  }

  if (std::getenv("HYP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(HYP_GOLDEN_FILE);
    ASSERT_TRUE(out.good()) << "cannot write " << HYP_GOLDEN_FILE;
    out << "# Determinism goldens: jacobi(n=40,steps=6) + asp(n=40) on\n"
           "# myri200, both protocols x {1,2,4} nodes. Regenerate with\n"
           "# HYP_UPDATE_GOLDENS=1 ./determinism_tests -- and justify the\n"
           "# semantic change in the commit message.\n";
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "goldens re-recorded at " << HYP_GOLDEN_FILE;
  }

  std::ifstream in(HYP_GOLDEN_FILE);
  ASSERT_TRUE(in.good()) << "missing goldens; record with HYP_UPDATE_GOLDENS=1";
  std::map<std::string, std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Key = first three tokens (app, protocol, node count).
    std::istringstream is(line);
    std::string a, b, c;
    is >> a >> b >> c;
    expected[a + ' ' + b + ' ' + c] = line;
  }
  ASSERT_EQ(expected.size(), actual.size()) << "golden file is stale";
  for (const auto& [key, want] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << "no run for golden point " << key;
    EXPECT_EQ(it->second, want)
        << "simulation drifted at " << key
        << "\n  expected: " << want << "\n  actual:   " << it->second;
  }
}

// The schedule itself must also be reproducible within one binary run —
// protects against accidental host-address-dependent ordering (e.g. pointer
// keyed maps) sneaking into the hot paths.
TEST(DeterminismGolden, BackToBackRunsIdentical) {
  const ConfigPoint pt{"asp", dsm::ProtocolKind::kJavaPf, 4};
  const RunResult a = run_point(pt);
  const RunResult b = run_point(pt);
  EXPECT_EQ(golden_line(pt, a), golden_line(pt, b));
}

}  // namespace
}  // namespace hyp::apps
