// Deterministic fault injection + reliable transport (docs/FAULTS.md).
//
// Four layers of contract:
//   1. the --fault-profile grammar parses, round-trips, and rejects junk;
//   2. the hash primitives are deterministic, seeded, and bounded;
//   3. the ack/retransmit transport delivers exactly-once under drop/dup/
//      corrupt/window chaos, with typed failures when a peer is unreachable,
//      and stays completely out of the way on quiet networks;
//   4. the full VM (DSM + monitors) computes exact answers under chaos.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

namespace hyp::cluster {
namespace {

constexpr ServiceId kEcho = 1;
constexpr ServiceId kOneWay = 2;
constexpr ServiceId kBlackHole = 3;  // registered, never replies

ClusterParams tiny_params() {
  ClusterParams p;
  p.name = "test";
  p.default_nodes = 4;
  p.net.latency = 10 * kMicrosecond;
  p.net.bandwidth_bytes_per_sec = 100e6;
  p.net.send_overhead = 1 * kMicrosecond;
  p.net.recv_overhead = 2 * kMicrosecond;
  p.cpu.hz = 100e6;
  p.cpu.check_cycles = 10;
  return p;
}

// --- 1. profile grammar -----------------------------------------------------

TEST(FaultProfileParse, EmptySpecIsOff) {
  FaultProfile p = FaultProfile::parse("");
  EXPECT_FALSE(p.any());
  EXPECT_FALSE(p.lossy());
}

TEST(FaultProfileParse, RatesAreExactPpm) {
  EXPECT_EQ(FaultProfile::parse("drop2%").drop_ppm, 20000u);
  EXPECT_EQ(FaultProfile::parse("dup1%").dup_ppm, 10000u);
  EXPECT_EQ(FaultProfile::parse("corrupt0.5%").corrupt_ppm, 5000u);
}

TEST(FaultProfileParse, FullSpec) {
  FaultProfile p =
      FaultProfile::parse("drop2%,dup1%,reorder5us,seed=7,retries=6,backoff=3,"
                          "rto=100us,timeout=5ms");
  EXPECT_EQ(p.drop_ppm, 20000u);
  EXPECT_EQ(p.dup_ppm, 10000u);
  EXPECT_EQ(p.reorder_max, 5 * kMicrosecond);
  EXPECT_EQ(p.seed, 7u);
  EXPECT_EQ(p.max_retries, 6u);
  EXPECT_EQ(p.rto_backoff, 3u);
  EXPECT_EQ(p.rto_initial, 100 * kMicrosecond);
  EXPECT_EQ(p.call_timeout, 5 * kMillisecond);
  EXPECT_TRUE(p.lossy());
}

TEST(FaultProfileParse, Windows) {
  FaultProfile p = FaultProfile::parse("stall1@300us+200us,blackout0@1ms+500us");
  ASSERT_EQ(p.windows.size(), 2u);
  EXPECT_EQ(p.windows[0].node, 1);
  EXPECT_EQ(p.windows[0].start, 300 * kMicrosecond);
  EXPECT_EQ(p.windows[0].duration, 200 * kMicrosecond);
  EXPECT_FALSE(p.windows[0].blackout);
  EXPECT_EQ(p.windows[1].node, 0);
  EXPECT_EQ(p.windows[1].start, 1 * kMillisecond);
  EXPECT_TRUE(p.windows[1].blackout);
  EXPECT_TRUE(p.lossy());  // windows require the reliable transport
}

TEST(FaultProfileParse, ToStringRoundTrips) {
  const std::string spec =
      "drop2%,dup1%,corrupt0.5%,reorder5us,stall1@300us+200us,seed=9,"
      "retries=6";
  FaultProfile a = FaultProfile::parse(spec);
  FaultProfile b = FaultProfile::parse(a.to_string());
  EXPECT_EQ(a.drop_ppm, b.drop_ppm);
  EXPECT_EQ(a.dup_ppm, b.dup_ppm);
  EXPECT_EQ(a.corrupt_ppm, b.corrupt_ppm);
  EXPECT_EQ(a.reorder_max, b.reorder_max);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.max_retries, b.max_retries);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  EXPECT_EQ(a.windows[0].node, b.windows[0].node);
  EXPECT_EQ(a.windows[0].start, b.windows[0].start);
}

TEST(FaultProfileParseDeath, RejectsJunkCitingGrammar) {
  EXPECT_DEATH(FaultProfile::parse("frobnicate"), "grammar");
  EXPECT_DEATH(FaultProfile::parse("drop2"), "grammar");      // missing %
  EXPECT_DEATH(FaultProfile::parse("stall1@5us"), "grammar"); // missing +dur
}

// --- 2. primitives ----------------------------------------------------------

TEST(FaultProfilePrimitives, ExtraDelayOffByDefault) {
  FaultProfile p;
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_EQ(p.extra_delay(k), 0);
}

TEST(FaultProfilePrimitives, ExtraDelayDeterministicSeededBounded) {
  FaultProfile a, b, c;
  a.reorder_max = b.reorder_max = c.reorder_max = 5 * kMicrosecond;
  a.seed = b.seed = 7;
  c.seed = 8;
  bool seed_differs = false;
  for (std::uint64_t k = 0; k < 256; ++k) {
    const Time d = a.extra_delay(k);
    EXPECT_EQ(d, b.extra_delay(k));  // same seed -> same schedule
    EXPECT_LE(d, a.reorder_max);
    if (d != c.extra_delay(k)) seed_differs = true;
  }
  EXPECT_TRUE(seed_differs);  // different seed -> independent schedule
}

TEST(FaultProfilePrimitives, WindowsAdjustArrivals) {
  FaultProfile p;
  p.windows.push_back({1, 100 * kMicrosecond, 50 * kMicrosecond, false});
  p.windows.push_back({2, 100 * kMicrosecond, 50 * kMicrosecond, true});
  // Stall: inside the window -> delayed to the end; outside -> untouched.
  EXPECT_EQ(p.apply_windows(1, 120 * kMicrosecond), 150 * kMicrosecond);
  EXPECT_EQ(p.apply_windows(1, 99 * kMicrosecond), 99 * kMicrosecond);
  EXPECT_EQ(p.apply_windows(1, 150 * kMicrosecond), 150 * kMicrosecond);
  // Blackout: inside -> dropped; other nodes unaffected.
  EXPECT_EQ(p.apply_windows(2, 120 * kMicrosecond), FaultProfile::kDropped);
  EXPECT_EQ(p.apply_windows(0, 120 * kMicrosecond), 120 * kMicrosecond);
}

TEST(FaultProfilePrimitives, LegacyJitterAliasFoldsIntoReorder) {
  ClusterParams p = tiny_params();
  p.net.jitter_max = 3 * kMicrosecond;
  Cluster c(p, 2);
  EXPECT_EQ(c.params().fault.reorder_max, 3 * kMicrosecond);
  EXPECT_FALSE(c.transport_active());  // reorder alone stays on the fast path
}

// --- 3. reliable transport --------------------------------------------------

// Registers an echo (+1) service on `node`.
void register_echo(Cluster& c, NodeId node) {
  c.node(node).register_service(kEcho, "echo_test", [&c](Incoming& in) {
    auto v = in.reader.get<std::uint32_t>();
    Buffer out;
    out.put<std::uint32_t>(v + 1);
    c.reply(in, std::move(out));
  });
}

TEST(FaultTransport, EchoSurvivesHeavyChaos) {
  ClusterParams p = tiny_params();
  p.fault = FaultProfile::parse("drop20%,dup10%,corrupt2%,reorder3us,seed=3");
  Cluster c(p, 2);
  ASSERT_TRUE(c.transport_active());
  register_echo(c, 1);
  int good = 0;
  c.spawn_thread(0, "caller", [&] {
    for (std::uint32_t i = 0; i < 25; ++i) {
      Buffer req;
      req.put<std::uint32_t>(i);
      Buffer resp = c.call(0, 1, kEcho, std::move(req));
      BufferReader r(resp);
      if (r.get<std::uint32_t>() == i + 1) ++good;
    }
  });
  c.run();
  EXPECT_EQ(good, 25);
  const Stats s = c.total_stats();
  // The profile must have actually bitten, and the transport recovered.
  EXPECT_GT(s.get(Counter::kNetDrops), 0u);
  EXPECT_GT(s.get(Counter::kRetransmits), 0u);
  EXPECT_GT(s.get(Counter::kAcksSent), 0u);
  EXPECT_EQ(s.get(Counter::kRpcTimeouts), 0u);
}

TEST(FaultTransport, OneWaySendsDeliverExactlyOnceUnderDup) {
  ClusterParams p = tiny_params();
  p.fault = FaultProfile::parse("dup30%,seed=5");
  Cluster c(p, 2);
  int invocations = 0;
  c.node(1).register_service(kOneWay, "one_way_test",
                             [&](Incoming&) { ++invocations; });
  c.spawn_thread(0, "sender", [&] {
    for (int i = 0; i < 30; ++i) {
      Buffer b;
      b.put<std::uint8_t>(1);
      c.send(0, 1, kOneWay, std::move(b));
    }
  });
  c.run();
  EXPECT_EQ(invocations, 30);  // every dup absorbed by the dedup window
  const Stats s = c.total_stats();
  EXPECT_GT(s.get(Counter::kNetDupes), 0u);
  EXPECT_EQ(s.get(Counter::kDupSuppressed), s.get(Counter::kNetDupes));
}

// One chaotic workload, summarized for determinism comparison.
struct ChaosRunSummary {
  Time elapsed = 0;
  std::uint64_t drops = 0, dupes = 0, retransmits = 0, messages = 0;
  bool operator==(const ChaosRunSummary&) const = default;
};

ChaosRunSummary chaos_run(std::uint64_t seed) {
  ClusterParams p = tiny_params();
  p.fault = FaultProfile::parse("drop15%,dup5%,reorder4us,seed=" +
                                std::to_string(seed));
  Cluster c(p, 3);
  register_echo(c, 1);
  register_echo(c, 2);
  for (NodeId src : {0, 1}) {
    c.spawn_thread(src, "caller" + std::to_string(src), [&c, src] {
      for (std::uint32_t i = 0; i < 15; ++i) {
        Buffer req;
        req.put<std::uint32_t>(i);
        Buffer resp = c.call(src, src + 1, kEcho, std::move(req));
        BufferReader r(resp);
        EXPECT_EQ(r.get<std::uint32_t>(), i + 1);
      }
    });
  }
  c.run();
  const Stats s = c.total_stats();
  return {c.engine().now(), s.get(Counter::kNetDrops), s.get(Counter::kNetDupes),
          s.get(Counter::kRetransmits), s.get(Counter::kMessages)};
}

TEST(FaultTransport, SameSeedIsBitIdenticalDifferentSeedIsNot) {
  const ChaosRunSummary a1 = chaos_run(5);
  const ChaosRunSummary a2 = chaos_run(5);
  const ChaosRunSummary b = chaos_run(6);
  EXPECT_EQ(a1, a2);       // reproducible chaos
  EXPECT_NE(a1, b);        // independent schedule per seed
  EXPECT_GT(a1.drops, 0u);  // and the chaos was real
}

TEST(FaultTransport, QuietNetworkTouchesNoFaultMachinery) {
  Cluster c(tiny_params(), 2);
  EXPECT_FALSE(c.transport_active());
  register_echo(c, 1);
  c.spawn_thread(0, "caller", [&] {
    for (std::uint32_t i = 0; i < 10; ++i) {
      Buffer req;
      req.put<std::uint32_t>(i);
      c.call(0, 1, kEcho, std::move(req));
    }
  });
  c.run();
  const Stats s = c.total_stats();
  EXPECT_EQ(s.get(Counter::kNetDrops), 0u);
  EXPECT_EQ(s.get(Counter::kNetDupes), 0u);
  EXPECT_EQ(s.get(Counter::kDupSuppressed), 0u);
  EXPECT_EQ(s.get(Counter::kRetransmits), 0u);
  EXPECT_EQ(s.get(Counter::kAcksSent), 0u);
  EXPECT_EQ(s.get(Counter::kRpcTimeouts), 0u);
}

TEST(FaultTransport, StallWindowDelaysDelivery) {
  ClusterParams p = tiny_params();
  // Everything arriving at node 1 before t=1ms is held until t=1ms.
  p.fault.windows.push_back({1, 0, 1 * kMillisecond, false});
  Cluster c(p, 2);
  Time handled_at = 0;
  c.node(1).register_service(kOneWay, [&](Incoming&) { handled_at = c.engine().now(); });
  c.spawn_thread(0, "sender", [&] {
    Buffer b;
    b.put<std::uint8_t>(1);
    c.send(0, 1, kOneWay, std::move(b));
  });
  c.run();
  // Without the window this lands at ~13us (cluster_test); the stalled NIC
  // delivers at the window end plus receiver dispatch.
  EXPECT_GE(handled_at, 1 * kMillisecond);
  EXPECT_LT(handled_at, 1 * kMillisecond + 10 * kMicrosecond);
}

// --- typed failures ---------------------------------------------------------

// A cluster whose node 1 is blacked out for the entire run.
ClusterParams unreachable_peer_params() {
  ClusterParams p = tiny_params();
  p.fault.windows.push_back({1, 0, Time{3600} * 1000 * kMillisecond, true});
  p.fault.rto_initial = 50 * kMicrosecond;
  p.fault.max_retries = 3;
  return p;
}

TEST(FaultTransport, BudgetExhaustionIsTypedAndNamesThePeer) {
  Cluster c(unreachable_peer_params(), 2);
  register_echo(c, 1);
  RpcResult result;
  Time failed_after = 0;
  c.spawn_thread(0, "caller", [&] {
    Buffer req;
    req.put<std::uint32_t>(1);
    const Time begin = c.engine().now();
    result = c.call_result(0, 1, kEcho, std::move(req));
    failed_after = c.engine().now() - begin;
  });
  c.run();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, RpcStatus::kBudgetExhausted);
  EXPECT_EQ(result.error.from, 0);
  EXPECT_EQ(result.error.to, 1);
  EXPECT_EQ(result.error.service, kEcho);
  EXPECT_EQ(result.error.retransmits, 3u);
  EXPECT_NE(result.error.message.find("node 1"), std::string::npos);
  EXPECT_NE(result.error.message.find("echo_test"), std::string::npos);
  EXPECT_NE(result.error.message.find("retry budget exhausted"), std::string::npos);
  // rto 50us with 2x backoff: retransmits at +50, +150, +350; give-up ~+750.
  EXPECT_GE(failed_after, 700 * kMicrosecond);
  const Stats s = c.total_stats();
  EXPECT_EQ(s.get(Counter::kRpcTimeouts), 1u);
  EXPECT_EQ(s.get(Counter::kRetransmits), 3u);
}

TEST(FaultTransportDeath, CallAbortsWithPeerNamingDiagnostic) {
  Cluster c(unreachable_peer_params(), 2);
  register_echo(c, 1);
  c.spawn_thread(0, "caller", [&] {
    Buffer req;
    req.put<std::uint32_t>(1);
    c.call(0, 1, kEcho, std::move(req));
  });
  EXPECT_DEATH(c.run(), "retry budget exhausted");
}

TEST(FaultTransport, CallTimeoutFiresWhenServiceNeverReplies) {
  ClusterParams p = tiny_params();
  // A window on an uninvolved node engages the transport without touching
  // the 0<->1 traffic; the deadline alone must fail the call.
  p.fault.windows.push_back({3, 0, 1 * kMicrosecond, true});
  p.fault.call_timeout = 500 * kMicrosecond;
  Cluster c(p, 4);
  c.node(1).register_service(kBlackHole, "black_hole", [](Incoming&) {});
  RpcResult result;
  c.spawn_thread(0, "caller", [&] {
    Buffer req;
    req.put<std::uint32_t>(1);
    result = c.call_result(0, 1, kBlackHole, std::move(req));
  });
  c.run();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, RpcStatus::kTimeout);
  EXPECT_NE(result.error.message.find("timed out"), std::string::npos);
  EXPECT_NE(result.error.message.find("black_hole"), std::string::npos);
}

// --- 4. full VM under chaos -------------------------------------------------

TEST(FaultVm, SynchronizedCounterIsExactUnderChaos) {
  // The lost-update litmus from hyperion_monitor_test, now on a lossy
  // network: monitor grants, DSM page fetches and update flushes all ride
  // the reliable transport, and the answer must still be exact.
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    hyperion::VmConfig cfg;
    cfg.cluster = ClusterParams::myrinet200();
    cfg.cluster.fault = FaultProfile::parse("drop5%,dup2%,reorder2us,seed=11");
    cfg.nodes = 4;
    cfg.protocol = kind;
    cfg.region_bytes = std::size_t{16} << 20;
    hyperion::HyperionVM vm(cfg);
    std::int64_t result = -1;
    dsm::with_policy(kind, [&](auto policy) {
      using P = decltype(policy);
      vm.run_main([&](hyperion::JavaEnv& main) {
        auto counter = main.new_cell<std::int64_t>(0);
        std::vector<hyperion::JThread> workers;
        for (int w = 0; w < 6; ++w) {
          workers.push_back(
              main.start_thread("w" + std::to_string(w), [=](hyperion::JavaEnv& env) {
                hyperion::Mem<P> mem(env.ctx());
                for (int i = 0; i < 10; ++i) {
                  env.synchronized(counter.addr,
                                   [&] { mem.put(counter, mem.get(counter) + 1); });
                }
              }));
        }
        for (auto& w : workers) main.join(w);
        hyperion::Mem<P> mem(main.ctx());
        result = mem.get(counter);
      });
    });
    EXPECT_EQ(result, 60) << dsm::protocol_name(kind);
    // The chaos must have actually engaged the transport.
    EXPECT_GT(vm.stats().get(Counter::kNetDrops) + vm.stats().get(Counter::kNetDupes), 0u)
        << dsm::protocol_name(kind);
    EXPECT_GT(vm.stats().get(Counter::kAcksSent), 0u) << dsm::protocol_name(kind);
  }
}

// The shared-counter litmus, parameterized over the fault profile. When
// `home_on_node` >= 0 the main thread migrates there to allocate the counter
// (allocation home = allocating thread's node) so the profile's crash window
// hits the object's home.
std::int64_t synchronized_counter_run(dsm::ProtocolKind kind, const std::string& profile,
                                      NodeId home_on_node, Stats* stats_out = nullptr) {
  hyperion::VmConfig cfg;
  cfg.cluster = ClusterParams::myrinet200();
  cfg.cluster.fault = FaultProfile::parse(profile);
  cfg.nodes = 4;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  hyperion::HyperionVM vm(cfg);
  std::int64_t result = -1;
  dsm::with_policy(kind, [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](hyperion::JavaEnv& main) {
      if (home_on_node > 0) main.migrate_to(home_on_node);
      auto counter = main.new_cell<std::int64_t>(0);
      if (home_on_node > 0) main.migrate_to(0);
      std::vector<hyperion::JThread> workers;
      for (int w = 0; w < 6; ++w) {
        workers.push_back(
            main.start_thread("w" + std::to_string(w), [=](hyperion::JavaEnv& env) {
              hyperion::Mem<P> mem(env.ctx());
              for (int i = 0; i < 40; ++i) {
                env.synchronized(counter.addr,
                                 [&] { mem.put(counter, mem.get(counter) + 1); });
              }
            }));
      }
      for (auto& w : workers) main.join(w);
      hyperion::Mem<P> mem(main.ctx());
      result = mem.get(counter);
    });
  });
  if (stats_out != nullptr) *stats_out = vm.stats();
  return result;
}

TEST(FaultVm, MonitorOpIdsAbsorbDupReorderAndCrashCombined) {
  // The hardest combination for monitor exactly-once: duplicated and
  // reordered packets AND the monitor's home dying mid-run. Grant requests
  // replayed against the dead home must re-attach at the promoted home under
  // the same op id — any double-apply shows up as a lost or extra increment.
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    Stats stats;
    const std::int64_t result = synchronized_counter_run(
        kind, "dup2%,reorder3us,crash2@1ms+800us,seed=11", /*home_on_node=*/2, &stats);
    EXPECT_EQ(result, 240) << dsm::protocol_name(kind);
    // All three fault ingredients actually engaged.
    EXPECT_GT(stats.get(Counter::kNetDupes), 0u) << dsm::protocol_name(kind);
    EXPECT_EQ(stats.get(Counter::kHaPromotions), 1u) << dsm::protocol_name(kind);
    EXPECT_GT(stats.get(Counter::kHaReroutes), 0u) << dsm::protocol_name(kind);
  }
}

TEST(FaultVm, TinyDedupWindowStaysExact) {
  // dedupwin=1 under heavy dup+reorder chaos: the bounded receiver window
  // will forget sparse sequence numbers and re-deliver duplicates, so
  // correctness must come from the layer above (monitor op ids, idempotent
  // DSM applies) — the answer must still be exact.
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    Stats stats;
    const std::int64_t result = synchronized_counter_run(
        kind, "dup20%,reorder5us,dedupwin=1,seed=13", /*home_on_node=*/-1, &stats);
    EXPECT_EQ(result, 240) << dsm::protocol_name(kind);
    EXPECT_GT(stats.get(Counter::kNetDupes), 0u) << dsm::protocol_name(kind);
  }
}

TEST(FaultProfileParse, DedupWindowParsesAndRejectsZero) {
  EXPECT_EQ(FaultProfile::parse("dedupwin=8").dedup_window, 8u);
  EXPECT_EQ(FaultProfile::parse("drop1%,dedupwin=1,seed=2").dedup_window, 1u);
}

TEST(FaultProfileParseDeath, DedupWindowZeroIsRejected) {
  EXPECT_DEATH(FaultProfile::parse("dedupwin=0"), "dedupwin");
}

// --- replicas= / ckpt_bw= tokens (docs/RECOVERY.md) -------------------------

TEST(FaultProfileParse, ReplicasAndCheckpointBandwidthTokens) {
  EXPECT_EQ(FaultProfile::parse("").replicas, 1u);
  EXPECT_EQ(FaultProfile::parse("").ckpt_bw, 0u);
  const FaultProfile p = FaultProfile::parse("replicas=3,ckpt_bw=8,crash1@1ms+1ms");
  EXPECT_EQ(p.replicas, 3u);
  EXPECT_EQ(p.ckpt_bw, 8'000'000u);  // MB/s on the CLI -> bytes/sec internally
  EXPECT_EQ(FaultProfile::parse("ckpt_bw=0.5").ckpt_bw, 500'000u);
}

// --- hbcoalesce= token (docs/SCALING.md) ------------------------------------

TEST(FaultProfileParse, HeartbeatCoalesceToken) {
  EXPECT_EQ(FaultProfile::parse("").hb_coalesce, 64u);  // default threshold
  EXPECT_EQ(FaultProfile::parse("hbcoalesce=0").hb_coalesce, 0u);  // never
  EXPECT_EQ(FaultProfile::parse("hbcoalesce=1,crash1@1ms+1ms").hb_coalesce, 1u);
  EXPECT_EQ(FaultProfile::parse("hbcoalesce=256").hb_coalesce, 256u);
}

// --- parse-time rejection of invalid crash schedules ------------------------
//
// Everything HaManager::start() used to HYP_CHECK mid-run is now a graceful
// CLI error: a diagnostic naming the offending token on stderr and exit
// status 2, before any simulation state exists.

TEST(FaultProfileParse, CrashOnNodeZeroIsAccepted) {
  // Node 0 hosts the Java main thread, but under the thread-checkpoint model
  // its fibers survive a crash like any other node's: crash0 is a legal
  // schedule (the HA matrix in ha_test.cpp pins the recovery), not a CLI
  // error.
  const FaultProfile p = FaultProfile::parse("crash0@1ms+1ms");
  ASSERT_EQ(p.crashes.size(), 1u);
  EXPECT_EQ(p.crashes[0].node, 0);
  EXPECT_EQ(p.crashes[0].start, 1 * kMillisecond);
  EXPECT_EQ(p.crashes[0].duration, 1 * kMillisecond);
}

// --- partition@ / linkdrop= tokens (docs/PARTITIONS.md) ---------------------

TEST(FaultProfileParse, PartitionWindowToken) {
  const FaultProfile p = FaultProfile::parse("partition@2ms+1ms:0.1|2.3");
  ASSERT_EQ(p.partitions.size(), 1u);
  const auto& w = p.partitions[0];
  EXPECT_EQ(w.start, 2 * kMillisecond);
  EXPECT_EQ(w.duration, 1 * kMillisecond);
  ASSERT_EQ(w.group_a.size(), 2u);
  ASSERT_EQ(w.group_b.size(), 2u);
  EXPECT_EQ(w.group_a[0], 0);
  EXPECT_EQ(w.group_a[1], 1);
  EXPECT_EQ(w.group_b[0], 2);
  EXPECT_EQ(w.group_b[1], 3);
  // severs() only cuts cross-group pairs, only while the window is open.
  const Time mid = 2 * kMillisecond + 500 * kMicrosecond;
  EXPECT_TRUE(p.severed(0, 2, mid));
  EXPECT_TRUE(p.severed(3, 1, mid));
  EXPECT_FALSE(p.severed(0, 1, mid));                     // same side
  EXPECT_FALSE(p.severed(2, 3, mid));                     // same side
  EXPECT_FALSE(p.severed(0, 2, 1 * kMillisecond));        // before open
  EXPECT_FALSE(p.severed(0, 2, 3 * kMillisecond));        // at heal ([s, e))
  EXPECT_EQ(p.severed_until(0, 2, mid), 3 * kMillisecond);
  EXPECT_EQ(p.severed_since(0, 2, mid), 2 * kMillisecond);
  EXPECT_EQ(p.severed_until(0, 1, mid), 0u);
  // A partition profile engages the reliable transport.
  EXPECT_TRUE(p.lossy());
}

TEST(FaultProfileParse, LinkDropToken) {
  const FaultProfile p = FaultProfile::parse("linkdrop=0>2:25%,linkdrop=2>0:1%");
  ASSERT_EQ(p.linkdrops.size(), 2u);
  EXPECT_EQ(p.linkdrop_ppm(0, 2), 250'000u);
  EXPECT_EQ(p.linkdrop_ppm(2, 0), 10'000u);   // asymmetric: distinct tokens
  EXPECT_EQ(p.linkdrop_ppm(1, 2), 0u);
  EXPECT_TRUE(p.lossy());
  // Repeated same-direction tokens sum (saturating at certain loss).
  const FaultProfile s = FaultProfile::parse("linkdrop=1>3:80%,linkdrop=1>3:90%");
  EXPECT_EQ(s.linkdrop_ppm(1, 3), 1'000'000u);
}

TEST(FaultProfileParseExit, PartitionRejectsMalformedGroups) {
  EXPECT_EXIT(FaultProfile::parse("partition@2ms+1ms:0.1"), testing::ExitedWithCode(2),
              "partition");
  EXPECT_EXIT(FaultProfile::parse("partition@2ms+1ms:|2.3"), testing::ExitedWithCode(2),
              "partition");
  EXPECT_EXIT(FaultProfile::parse("partition@2ms+1ms:0.1|"), testing::ExitedWithCode(2),
              "partition");
  EXPECT_EXIT(FaultProfile::parse("partition@2ms+1ms:0|1|2"), testing::ExitedWithCode(2),
              "partition");
  // A node on both sides (or twice on one side) is a contradiction.
  EXPECT_EXIT(FaultProfile::parse("partition@2ms+1ms:0.1|1.2"), testing::ExitedWithCode(2),
              "both sides|once");
  EXPECT_EXIT(FaultProfile::parse("partition@2ms+1ms:0.0|1"), testing::ExitedWithCode(2),
              "both sides|once");
  EXPECT_EXIT(FaultProfile::parse("partition@0us+1ms:0|1"), testing::ExitedWithCode(2),
              "positive start");
}

TEST(FaultProfileParseExit, LinkDropRejectsSelfLoop) {
  EXPECT_EXIT(FaultProfile::parse("linkdrop=2>2:10%"), testing::ExitedWithCode(2),
              "linkdrop");
}

TEST(FaultProfileParseExit, PartitionRequiresDetectorTuningOrder) {
  // The detector-tuning cross check fires for partition schedules exactly as
  // it does for crash schedules (promotion runs the same detector).
  EXPECT_EXIT(FaultProfile::parse("partition@2ms+1ms:0|1,hb=100us,suspect=50us"),
              testing::ExitedWithCode(2), "hb <= suspect < confirm");
}

TEST(FaultProfileParseExit, CrashWindowNeedsPositiveStartAndDuration) {
  EXPECT_EXIT(FaultProfile::parse("crash1@0us+1ms"), testing::ExitedWithCode(2),
              "positive start and duration");
  EXPECT_EXIT(FaultProfile::parse("crash1@1ms+0us"), testing::ExitedWithCode(2),
              "duration");
}

TEST(FaultProfileParseExit, DetectorTuningMustOrderHbSuspectConfirm) {
  EXPECT_EXIT(FaultProfile::parse("crash1@1ms+1ms,hb=100us,suspect=50us"),
              testing::ExitedWithCode(2), "hb <= suspect < confirm");
  EXPECT_EXIT(FaultProfile::parse("crash1@1ms+1ms,suspect=200us,confirm=200us"),
              testing::ExitedWithCode(2), "hb <= suspect < confirm");
}

TEST(FaultProfileParseExit, SameNodeCrashWindowsMustNotOverlap) {
  EXPECT_EXIT(FaultProfile::parse("crash1@1ms+2ms,crash1@2ms+2ms"),
              testing::ExitedWithCode(2), "must not overlap");
  // Distinct nodes may overlap (the K-replica chain question); sequential
  // windows on one node are fine.
  FaultProfile ok = FaultProfile::parse("crash1@1ms+1ms,crash2@1ms+1ms");
  EXPECT_EQ(ok.crashes.size(), 2u);
  ok = FaultProfile::parse("crash1@1ms+1ms,crash1@5ms+1ms");
  EXPECT_EQ(ok.crashes.size(), 2u);
}

TEST(FaultProfileParseExit, ReplicasAndCkptBwRejectNonPositive) {
  EXPECT_EXIT(FaultProfile::parse("replicas=0"), testing::ExitedWithCode(2),
              "replicas wants >= 1");
  EXPECT_EXIT(FaultProfile::parse("ckpt_bw=0"), testing::ExitedWithCode(2), "ckpt_bw");
  EXPECT_EXIT(FaultProfile::parse("ckpt_bw=nope"), testing::ExitedWithCode(2), "ckpt_bw");
}

TEST(FaultProfileParseExit, HeartbeatCoalesceRejectsGarbage) {
  EXPECT_EXIT(FaultProfile::parse("hbcoalesce=nope"), testing::ExitedWithCode(2),
              "hbcoalesce");
}

// --- the full-grammar round-trip --------------------------------------------

TEST(FaultProfileParse, ToStringRoundTripsEveryTokenType) {
  // One spec exercising EVERY token type the grammar knows. parse ->
  // to_string -> parse must reproduce each field exactly, and the second
  // to_string must be a fixed point.
  const std::string spec =
      "drop2%,dup1%,corrupt0.5%,reorder5us,stall1@300us+200us,"
      "blackout3@1ms+500us,crash2@3ms+2ms,crash1@8ms+2ms,"
      "partition@2ms+1ms:0.1|2.3,partition@6ms+500us:2|0.1.3,"
      "linkdrop=0>2:25%,linkdrop=2>0:1%,seed=9,retries=6,"
      "backoff=3,rto=100us,timeout=5ms,dedupwin=4,hb=50us,suspect=200us,"
      "confirm=600us,replicas=2,ckpt_bw=8,hbcoalesce=128";
  const FaultProfile a = FaultProfile::parse(spec);
  const FaultProfile b = FaultProfile::parse(a.to_string());
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.drop_ppm, b.drop_ppm);
  EXPECT_EQ(a.dup_ppm, b.dup_ppm);
  EXPECT_EQ(a.corrupt_ppm, b.corrupt_ppm);
  EXPECT_EQ(a.reorder_max, b.reorder_max);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.max_retries, b.max_retries);
  EXPECT_EQ(a.rto_backoff, b.rto_backoff);
  EXPECT_EQ(a.rto_initial, b.rto_initial);
  EXPECT_EQ(a.call_timeout, b.call_timeout);
  EXPECT_EQ(a.dedup_window, b.dedup_window);
  EXPECT_EQ(a.hb_interval, b.hb_interval);
  EXPECT_EQ(a.suspect_after, b.suspect_after);
  EXPECT_EQ(a.confirm_after, b.confirm_after);
  EXPECT_EQ(a.replicas, b.replicas);
  EXPECT_EQ(a.ckpt_bw, b.ckpt_bw);
  EXPECT_EQ(a.hb_coalesce, b.hb_coalesce);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].node, b.windows[i].node);
    EXPECT_EQ(a.windows[i].start, b.windows[i].start);
    EXPECT_EQ(a.windows[i].duration, b.windows[i].duration);
    EXPECT_EQ(a.windows[i].blackout, b.windows[i].blackout);
  }
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].node, b.crashes[i].node);
    EXPECT_EQ(a.crashes[i].start, b.crashes[i].start);
    EXPECT_EQ(a.crashes[i].duration, b.crashes[i].duration);
  }
  ASSERT_EQ(a.partitions.size(), 2u);
  ASSERT_EQ(a.partitions.size(), b.partitions.size());
  for (std::size_t i = 0; i < a.partitions.size(); ++i) {
    EXPECT_EQ(a.partitions[i].start, b.partitions[i].start);
    EXPECT_EQ(a.partitions[i].duration, b.partitions[i].duration);
    EXPECT_EQ(a.partitions[i].group_a, b.partitions[i].group_a);
    EXPECT_EQ(a.partitions[i].group_b, b.partitions[i].group_b);
  }
  ASSERT_EQ(a.linkdrops.size(), 2u);
  ASSERT_EQ(a.linkdrops.size(), b.linkdrops.size());
  for (std::size_t i = 0; i < a.linkdrops.size(); ++i) {
    EXPECT_EQ(a.linkdrops[i].from, b.linkdrops[i].from);
    EXPECT_EQ(a.linkdrops[i].to, b.linkdrops[i].to);
    EXPECT_EQ(a.linkdrops[i].ppm, b.linkdrops[i].ppm);
  }
}

TEST(FaultProfileParse, DefaultProfileRoundTripsThroughOff) {
  const FaultProfile d;
  EXPECT_EQ(d.to_string(), "off");
  const FaultProfile back = FaultProfile::parse(d.to_string());
  EXPECT_FALSE(back.any());
  EXPECT_FALSE(back.lossy());
  EXPECT_EQ(back.replicas, 1u);
  EXPECT_EQ(back.ckpt_bw, 0u);
}

// --- dedup-window eviction regression ---------------------------------------

TEST(FaultTransport, DedupWindowEvictionActuallyRedelivers) {
  // The other half of TinyDedupWindowStaysExact's story, proved at the
  // transport layer where handler invocations are countable: dedupwin=1
  // remembers a single sparse sequence number per flow, so under a dup storm
  // with drops (the watermark stalls in the resulting holes) and heavy
  // reordering, a duplicate of an evicted seq is re-delivered to the handler
  // as a fresh message (cluster.cpp's window rollover). A non-idempotent
  // service observes MORE invocations than sends — this is precisely the
  // hazard the op-id/idempotence layers above must absorb.
  ClusterParams p = tiny_params();
  p.fault = FaultProfile::parse("drop10%,dup30%,reorder30us,dedupwin=1,seed=17");
  Cluster c(p, 2);
  int invocations = 0;
  c.node(1).register_service(kOneWay, "one_way_test", [&](Incoming&) { ++invocations; });
  constexpr int kSends = 60;
  c.spawn_thread(0, "sender", [&] {
    for (int i = 0; i < kSends; ++i) {
      Buffer b;
      b.put<std::uint8_t>(1);
      c.send(0, 1, kOneWay, std::move(b));
    }
  });
  c.run();
  const Stats s = c.total_stats();
  EXPECT_GT(s.get(Counter::kNetDupes), 0u);
  EXPECT_GT(s.get(Counter::kDupSuppressed), 0u);  // the window still works...
  EXPECT_GT(invocations, kSends);                 // ...but evictions leaked through
}

TEST(FaultVm, DedupEvictionRedeliveryIsAbsorbedByIdempotence) {
  // The same eviction-prone storm against the full VM: re-delivered
  // duplicates now hit BOTH service families — monitor enter/exit (absorbed
  // by op ids) and DSM update/fetch (idempotent last-writer applies) — and
  // the answer must still be exact.
  std::uint64_t replays_absorbed = 0;
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    Stats stats;
    const std::int64_t result = synchronized_counter_run(
        kind, "drop10%,dup25%,reorder8us,dedupwin=1,seed=17", /*home_on_node=*/2, &stats);
    EXPECT_EQ(result, 240) << dsm::protocol_name(kind);
    // The storm was real and the transport both suppressed and retransmitted.
    EXPECT_GT(stats.get(Counter::kNetDupes), 0u) << dsm::protocol_name(kind);
    EXPECT_GT(stats.get(Counter::kDupSuppressed), 0u) << dsm::protocol_name(kind);
    EXPECT_GT(stats.get(Counter::kRetransmits), 0u) << dsm::protocol_name(kind);
    // Both service families were exercised under the storm.
    EXPECT_GT(stats.get(Counter::kUpdatesSent), 0u) << dsm::protocol_name(kind);
    EXPECT_GT(stats.get(Counter::kMonitorEnters), 0u) << dsm::protocol_name(kind);
    replays_absorbed += stats.get_named("dsm_update_replays_absorbed");
  }
  // At least one of the runs exercised the DSM update-id absorption path —
  // without it an evicted-then-redelivered stale update reverts newer home
  // bytes and the count above comes up short (the regression this pins).
  EXPECT_GT(replays_absorbed, 0u);
}

}  // namespace
}  // namespace hyp::cluster
