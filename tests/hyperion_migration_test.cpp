// Thread migration: PM2's signature mechanism, named by the paper as the
// next experiment ("We plan to use this feature to experiment with other
// mechanisms to implement Java consistency, including thread migration").
#include <gtest/gtest.h>

#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

namespace hyp::hyperion {
namespace {

VmConfig test_config(dsm::ProtocolKind kind, int nodes) {
  VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::myrinet200();
  cfg.nodes = nodes;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  return cfg;
}

class MigrationTest : public ::testing::TestWithParam<dsm::ProtocolKind> {};
INSTANTIATE_TEST_SUITE_P(BothProtocols, MigrationTest,
                         ::testing::Values(dsm::ProtocolKind::kJavaIc,
                                           dsm::ProtocolKind::kJavaPf),
                         [](const auto& info) { return dsm::protocol_name(info.param); });

TEST_P(MigrationTest, ThreadMovesAndSeesItsNewNode) {
  HyperionVM vm(test_config(GetParam(), 3));
  std::vector<NodeId> visited;
  vm.run_main([&](JavaEnv& main) {
    auto t = main.start_thread("nomad", [&visited](JavaEnv& env) {
      visited.push_back(env.node());
      env.migrate_to(2);
      visited.push_back(env.node());
      env.migrate_to(1);
      visited.push_back(env.node());
    });
    main.join(t);
  });
  EXPECT_EQ(visited, (std::vector<NodeId>{0, 2, 1}));
  EXPECT_EQ(vm.stats().get(Counter::kThreadMigrations), 2u);
}

TEST_P(MigrationTest, ReferencesStayValidAcrossMigration) {
  // Iso-addressing: a GRef captured before the move dereferences correctly
  // after it (from the new node's view of the shared space).
  HyperionVM vm(test_config(GetParam(), 3));
  std::int64_t before = 0, after = 0;
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto cell = main.new_cell<std::int64_t>(777);  // homed on node 0
      auto t = main.start_thread("nomad", [=, &before, &after](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        before = mem.get(cell);
        env.migrate_to(2);
        after = mem.get(cell);  // same Gva, new node: refetches from home
      });
      main.join(t);
    });
  });
  EXPECT_EQ(before, 777);
  EXPECT_EQ(after, 777);
}

TEST_P(MigrationTest, WritesBeforeMigrationVisibleAfter) {
  HyperionVM vm(test_config(GetParam(), 3));
  std::int64_t seen = 0;
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto cell = main.new_cell<std::int64_t>(0);
      auto t = main.start_thread("nomad", [=, &seen](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        mem.put(cell, std::int64_t{42});  // written from node 0's replica...
        env.migrate_to(1);                // release-flush travels with us
        seen = mem.get(cell);             // ...read back from node 1
      });
      main.join(t);
    });
  });
  EXPECT_EQ(seen, 42);
}

TEST_P(MigrationTest, MonitorOwnershipSurvivesMigration) {
  // The monitor tracks the thread uid, not the node: enter on one node,
  // exit from another.
  HyperionVM vm(test_config(GetParam(), 3));
  bool completed = false;
  vm.run_main([&](JavaEnv& main) {
    auto cell = main.new_cell<std::int32_t>(0);
    auto t = main.start_thread("nomad", [=, &completed](JavaEnv& env) {
      env.monitor_enter(cell.addr);
      env.migrate_to(2);
      env.monitor_exit(cell.addr);  // still the owner
      completed = true;
    });
    main.join(t);
  });
  EXPECT_TRUE(completed);
}

TEST_P(MigrationTest, MigrationToSelfIsFree) {
  HyperionVM vm(test_config(GetParam(), 2));
  vm.run_main([&](JavaEnv& main) {
    const Time before = main.now();
    main.migrate_to(0);  // main runs on node 0
    EXPECT_EQ(main.now(), before);
  });
  EXPECT_EQ(vm.stats().get(Counter::kThreadMigrations), 0u);
}

TEST_P(MigrationTest, MigrationCostScalesWithStateSize) {
  auto cost_of = [&](std::size_t bytes) {
    HyperionVM vm(test_config(GetParam(), 2));
    Time elapsed = 0;
    vm.run_main([&](JavaEnv& main) {
      auto t = main.start_thread("nomad", [bytes, &elapsed](JavaEnv& env) {
        const Time begin = env.now();
        env.migrate_to(1, bytes);
        elapsed = env.now() - begin;
      });
      main.join(t);
    });
    return elapsed;
  };
  EXPECT_LT(cost_of(1024), cost_of(1024 * 1024));
}

TEST_P(MigrationTest, ComputeToDataBeatsRemoteAccessForBigData) {
  // PM2's pitch: when the data is much bigger than the thread state, move
  // the thread, not the pages.
  const int kCells = 16384;  // 128 KiB on node 1
  auto run_with = [&](bool migrate) {
    HyperionVM vm(test_config(GetParam(), 2));
    Time elapsed = 0;
    dsm::with_policy(GetParam(), [&](auto policy) {
      using P = decltype(policy);
      vm.run_main([&](JavaEnv& main) {
        auto t = main.start_thread("walker", [&, migrate](JavaEnv& env) {
          Mem<P> mem(env.ctx());
          env.migrate_to(1);  // build the data on node 1 (home = node 1)
          auto data = env.new_array<std::int64_t>(kCells);
          for (int i = 0; i < kCells; ++i) mem.aput(data, i, static_cast<std::int64_t>(i));
          env.migrate_to(0);  // walk away from the data...
          const Time begin = env.now();
          if (migrate) env.migrate_to(1);  // ...and optionally back to it
          std::int64_t acc = 0;
          for (int i = 0; i < kCells; ++i) {
            acc += mem.aget(data, i);
            env.charge_cycles(6);
          }
          (void)acc;
          env.ctx().clock.flush();
          elapsed = env.now() - begin;
        });
        main.join(t);
      });
    });
    return elapsed;
  };
  EXPECT_LT(run_with(true), run_with(false));
}

TEST(MigrationDeath, TargetOutOfRangeAborts) {
  HyperionVM vm(test_config(dsm::ProtocolKind::kJavaPf, 2));
  EXPECT_DEATH(vm.run_main([](JavaEnv& main) { main.migrate_to(9); }), "out of range");
}

}  // namespace
}  // namespace hyp::hyperion
