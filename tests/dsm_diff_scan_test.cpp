// Unit tests for the java_pf twin-diff scanner: run boundaries must be exact
// (word 0, last word, full page, alternating words, chunk interiors, page
// boundaries) and the steady-state access + flush paths must be
// allocation-free once scratch capacities are warm.
//
// The allocation-counting hook replaces global operator new/delete for THIS
// test binary only; it merely counts, so behavior is unchanged.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "dsm/access.hpp"
#include "dsm/dsm.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::uint64_t allocs() { return g_alloc_count.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hyp::dsm {
namespace {

constexpr std::size_t kRegion = 1 << 20;

// Wire cost of one diff message: u32 run_count + per run (u64 gva + u32 len
// + payload bytes).
std::uint64_t msg_bytes(std::initializer_list<std::uint32_t> run_lens) {
  std::uint64_t total = 4;
  for (std::uint32_t len : run_lens) total += 8 + 4 + len;
  return total;
}

// Runs `body(dsm, t1)` with a thread on node 1 of a 2-node java_pf cluster.
template <typename Body>
void run_pf(Body body) {
  auto params = cluster::ClusterParams::myrinet200();
  cluster::Cluster c(params, 2);
  DsmSystem dsm(&c, kRegion, ProtocolKind::kJavaPf);
  c.spawn_thread(1, "t1", [&] {
    auto t1 = dsm.make_thread(1);
    body(dsm, *t1);
  });
  c.run();
}

struct Tally {
  std::uint64_t diff_words, update_bytes, updates_sent;
  static Tally of(const ThreadCtx& t) {
    return {t.stats->get(Counter::kDiffWords), t.stats->get(Counter::kUpdateBytes),
            t.stats->get(Counter::kUpdatesSent)};
  }
  Tally delta(const Tally& later) const {
    return {later.diff_words - diff_words, later.update_bytes - update_bytes,
            later.updates_sent - updates_sent};
  }
};

TEST(DiffScan, DirtyWordZeroProducesOneRunAtPageStart) {
  run_pf([](DsmSystem& dsm, ThreadCtx& t1) {
    const std::size_t page = dsm.layout().page_bytes();
    const Gva base = dsm.alloc(0, page, page);  // page-aligned, home = node 0
    PfPolicy::get<std::uint64_t>(t1, base);     // fault the page in (twin made)
    PfPolicy::put<std::uint64_t>(t1, base, 0xABCDull);

    const Tally before = Tally::of(t1);
    dsm.update_main_memory(t1);
    const Tally d = before.delta(Tally::of(t1));
    EXPECT_EQ(d.diff_words, 1u);
    EXPECT_EQ(d.updates_sent, 1u);
    EXPECT_EQ(d.update_bytes, msg_bytes({8}));
    EXPECT_EQ(dsm.read_home<std::uint64_t>(base), 0xABCDull);

    // Twin refreshed: an immediate re-flush ships nothing.
    const Tally again = Tally::of(t1);
    dsm.update_main_memory(t1);
    EXPECT_EQ(again.delta(Tally::of(t1)).updates_sent, 0u);
  });
}

TEST(DiffScan, DirtyLastWordProducesRunAtPageEnd) {
  run_pf([](DsmSystem& dsm, ThreadCtx& t1) {
    const std::size_t page = dsm.layout().page_bytes();
    const Gva base = dsm.alloc(0, page, page);
    const Gva last = base + page - 8;
    PfPolicy::get<std::uint64_t>(t1, base);
    PfPolicy::put<std::uint64_t>(t1, last, 0x1122334455667788ull);

    const Tally before = Tally::of(t1);
    dsm.update_main_memory(t1);
    const Tally d = before.delta(Tally::of(t1));
    EXPECT_EQ(d.diff_words, 1u);
    EXPECT_EQ(d.update_bytes, msg_bytes({8}));
    EXPECT_EQ(dsm.read_home<std::uint64_t>(last), 0x1122334455667788ull);
  });
}

TEST(DiffScan, FullPageDirtyIsOneMaximalRun) {
  run_pf([](DsmSystem& dsm, ThreadCtx& t1) {
    const std::size_t page = dsm.layout().page_bytes();
    const std::size_t words = page / 8;
    const Gva base = dsm.alloc(0, page, page);
    PfPolicy::get<std::uint64_t>(t1, base);
    for (std::size_t w = 0; w < words; ++w) {
      PfPolicy::put<std::uint64_t>(t1, base + w * 8, w + 1);  // != twin's zeros
    }

    const Tally before = Tally::of(t1);
    dsm.update_main_memory(t1);
    const Tally d = before.delta(Tally::of(t1));
    EXPECT_EQ(d.diff_words, words);
    EXPECT_EQ(d.updates_sent, 1u);
    EXPECT_EQ(d.update_bytes, msg_bytes({static_cast<std::uint32_t>(page)}));
    for (std::size_t w = 0; w < words; ++w) {
      ASSERT_EQ(dsm.read_home<std::uint64_t>(base + w * 8), w + 1);
    }
  });
}

TEST(DiffScan, AlternatingWordsProduceOneRunEach) {
  run_pf([](DsmSystem& dsm, ThreadCtx& t1) {
    const std::size_t page = dsm.layout().page_bytes();
    const std::size_t words = page / 8;
    const Gva base = dsm.alloc(0, page, page);
    PfPolicy::get<std::uint64_t>(t1, base);
    for (std::size_t w = 0; w < words; w += 2) {
      PfPolicy::put<std::uint64_t>(t1, base + w * 8, 0xF00D0000ull + w);
    }

    const Tally before = Tally::of(t1);
    dsm.update_main_memory(t1);
    const Tally d = before.delta(Tally::of(t1));
    EXPECT_EQ(d.diff_words, words / 2);
    EXPECT_EQ(d.updates_sent, 1u);
    // words/2 single-word runs, each with its own (gva, len) header.
    EXPECT_EQ(d.update_bytes, 4u + (words / 2) * (8u + 4u + 8u));
  });
}

TEST(DiffScan, RunsDoNotCrossPageBoundaries) {
  run_pf([](DsmSystem& dsm, ThreadCtx& t1) {
    const std::size_t page = dsm.layout().page_bytes();
    const Gva base = dsm.alloc(0, 2 * page, page);  // two contiguous pages
    PfPolicy::get<std::uint64_t>(t1, base);         // fault page 0
    PfPolicy::get<std::uint64_t>(t1, base + page);  // fault page 1
    // Adjacent in the address space but on different pages: must be two runs.
    PfPolicy::put<std::uint64_t>(t1, base + page - 8, 1ull);
    PfPolicy::put<std::uint64_t>(t1, base + page, 2ull);

    const Tally before = Tally::of(t1);
    dsm.update_main_memory(t1);
    const Tally d = before.delta(Tally::of(t1));
    EXPECT_EQ(d.diff_words, 2u);
    EXPECT_EQ(d.updates_sent, 1u);  // same home, one message with two runs
    EXPECT_EQ(d.update_bytes, msg_bytes({8, 8}));
    EXPECT_EQ(dsm.read_home<std::uint64_t>(base + page - 8), 1ull);
    EXPECT_EQ(dsm.read_home<std::uint64_t>(base + page), 2ull);
  });
}

TEST(DiffScan, ChunkInteriorRunsAreNotMergedOrMissed) {
  run_pf([](DsmSystem& dsm, ThreadCtx& t1) {
    const std::size_t page = dsm.layout().page_bytes();
    const Gva base = dsm.alloc(0, page, page);
    PfPolicy::get<std::uint64_t>(t1, base);
    // Run A: words 3..5 (interior of the first 64-byte chunk).
    for (std::size_t w = 3; w <= 5; ++w) PfPolicy::put<std::uint64_t>(t1, base + w * 8, w);
    // Run B: words 8..15 (exactly the second chunk). Words 6,7 stay clean,
    // so A and B must not merge.
    for (std::size_t w = 8; w <= 15; ++w) PfPolicy::put<std::uint64_t>(t1, base + w * 8, w);

    const Tally before = Tally::of(t1);
    dsm.update_main_memory(t1);
    const Tally d = before.delta(Tally::of(t1));
    EXPECT_EQ(d.diff_words, 3u + 8u);
    EXPECT_EQ(d.update_bytes, msg_bytes({24, 64}));
    for (std::size_t w = 3; w <= 5; ++w) ASSERT_EQ(dsm.read_home<std::uint64_t>(base + w * 8), w);
    for (std::size_t w = 8; w <= 15; ++w) ASSERT_EQ(dsm.read_home<std::uint64_t>(base + w * 8), w);
  });
}

// The acceptance bar for the host-perf work: once pages are present and
// scratch/pool capacities are warm, neither the access fast path nor the
// flush round-trip touches the allocator.
TEST(DiffScan, SteadyStateAccessAndFlushAreAllocationFree) {
  for (ProtocolKind kind : {ProtocolKind::kJavaIc, ProtocolKind::kJavaPf}) {
    auto params = cluster::ClusterParams::myrinet200();
    cluster::Cluster c(params, 2);
    DsmSystem dsm(&c, kRegion, kind);
    std::uint64_t during = 1;  // poisoned; set inside the fiber
    c.spawn_thread(1, "t1", [&] {
      auto t1p = dsm.make_thread(1);
      ThreadCtx& t1 = *t1p;
      const std::size_t page = dsm.layout().page_bytes();
      const Gva remote = dsm.alloc(0, page, page);  // home node 0: cached here
      const Gva local = dsm.alloc(1, page, page);   // home node 1: home access

      auto round = [&](std::uint64_t salt) {
        with_policy(kind, [&](auto policy) {
          using P = decltype(policy);
          for (std::size_t w = 0; w < 64; ++w) {
            const std::uint64_t x = P::template get<std::uint64_t>(t1, remote + w * 8);
            P::template put<std::uint64_t>(t1, remote + w * 8, x + salt + w);
            P::template put<std::uint64_t>(t1, local + w * 8, x ^ salt);
          }
        });
        dsm.update_main_memory(t1);
      };

      for (std::uint64_t i = 0; i < 8; ++i) round(i + 1);  // warm everything
      const std::uint64_t before = allocs();
      for (std::uint64_t i = 0; i < 64; ++i) round(i + 100);
      during = allocs() - before;
    });
    c.run();
    EXPECT_EQ(during, 0u) << "protocol " << protocol_name(kind)
                          << ": steady-state access/flush must not allocate";
  }
}

}  // namespace
}  // namespace hyp::dsm
