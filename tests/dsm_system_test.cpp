// Behavioral tests of the DSM system under both protocols. Most tests are
// parameterized over {java_ic, java_pf}: the protocols must agree on
// *values* (both implement Java consistency) while differing in *events*
// (checks vs faults) — exactly the paper's framing.
#include "dsm/access.hpp"
#include "dsm/dsm.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace hyp::dsm {
namespace {

cluster::ClusterParams test_params() {
  auto p = cluster::ClusterParams::myrinet200();
  p.default_nodes = 4;
  return p;
}

constexpr std::size_t kRegion = 1 << 20;  // 1 MiB, 64 pages per node zone

// Runs `body(dsm, t0, t1)` with thread contexts on nodes 0 and 1.
template <typename Body>
void run_two_nodes(ProtocolKind kind, Body body) {
  cluster::Cluster c(test_params(), 4);
  DsmSystem dsm(&c, kRegion, kind);
  c.spawn_thread(0, "driver", [&] {
    auto t0 = dsm.make_thread(0);
    auto t1 = dsm.make_thread(1);
    body(dsm, *t0, *t1);
  });
  c.run();
}

class DsmProtocolTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(BothProtocols, DsmProtocolTest,
                         ::testing::Values(ProtocolKind::kJavaIc, ProtocolKind::kJavaPf),
                         [](const auto& info) { return protocol_name(info.param); });

template <typename T>
T do_get(ProtocolKind kind, ThreadCtx& t, Gva a) {
  return with_policy(kind, [&](auto policy) {
    using P = decltype(policy);
    return P::template get<T>(t, a);
  });
}

template <typename T>
void do_put(ProtocolKind kind, ThreadCtx& t, Gva a, T v) {
  with_policy(kind, [&](auto policy) {
    using P = decltype(policy);
    P::template put<T>(t, a, v);
  });
}

TEST_P(DsmProtocolTest, HomeAccessRoundTripsWithoutCommunication) {
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx& t0, ThreadCtx&) {
    const Gva a = dsm.alloc(0, 8);
    do_put<std::int64_t>(GetParam(), t0, a, -12345);
    EXPECT_EQ((do_get<std::int64_t>(GetParam(), t0, a)), -12345);
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), -12345);  // home copy IS main memory
    EXPECT_EQ(t0.stats->get(Counter::kPageFetches), 0u);
    EXPECT_EQ(t0.stats->get(Counter::kMessages), 0u);
  });
}

TEST_P(DsmProtocolTest, RemoteReadFetchesThePage) {
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 4);  // home = node 0
    dsm.poke_home<std::int32_t>(a, 777);
    EXPECT_EQ((do_get<std::int32_t>(GetParam(), t1, a)), 777);
    EXPECT_EQ(t1.stats->get(Counter::kPageFetches), 1u);
    EXPECT_EQ(t1.stats->get(Counter::kPageFetchBytes), dsm.layout().page_bytes());
  });
}

TEST_P(DsmProtocolTest, SecondReadHitsTheCache) {
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 4);
    dsm.poke_home<std::int32_t>(a, 1);
    do_get<std::int32_t>(GetParam(), t1, a);
    const auto fetches = t1.stats->get(Counter::kPageFetches);
    do_get<std::int32_t>(GetParam(), t1, a);
    EXPECT_EQ(t1.stats->get(Counter::kPageFetches), fetches);
  });
}

TEST_P(DsmProtocolTest, PagePrefetchEffectForSamePageObjects) {
  // §3.1: loadIntoCache retrieves the whole page, prefetching neighbours.
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 8);
    const Gva b = dsm.alloc(0, 8);  // same page as a
    ASSERT_EQ(dsm.layout().page_of(a), dsm.layout().page_of(b));
    dsm.poke_home<std::int64_t>(a, 10);
    dsm.poke_home<std::int64_t>(b, 20);
    EXPECT_EQ((do_get<std::int64_t>(GetParam(), t1, a)), 10);
    EXPECT_EQ((do_get<std::int64_t>(GetParam(), t1, b)), 20);
    EXPECT_EQ(t1.stats->get(Counter::kPageFetches), 1u);  // one page, two objects
  });
}

TEST_P(DsmProtocolTest, RemoteWriteReachesHomeOnlyAfterUpdateMainMemory) {
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 8);
    dsm.poke_home<std::int64_t>(a, 0);
    do_put<std::int64_t>(GetParam(), t1, a, 42);
    // Modification is local until the flush (JMM working memory).
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), 0);
    dsm.update_main_memory(t1);
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), 42);
    EXPECT_GE(t1.stats->get(Counter::kUpdatesSent), 1u);
  });
}

TEST_P(DsmProtocolTest, CachedCopyStaysStaleUntilInvalidation) {
  // Deterministic stale read: a cached page does not see home-side changes
  // until invalidateCache — the paper's rationale for invalidating at every
  // monitor entry.
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 4);
    dsm.poke_home<std::int32_t>(a, 1);
    EXPECT_EQ((do_get<std::int32_t>(GetParam(), t1, a)), 1);
    dsm.poke_home<std::int32_t>(a, 2);  // home changes behind t1's back
    EXPECT_EQ((do_get<std::int32_t>(GetParam(), t1, a)), 1);  // stale
    dsm.invalidate_cache(t1);
    EXPECT_EQ((do_get<std::int32_t>(GetParam(), t1, a)), 2);  // refetched
    EXPECT_EQ(t1.stats->get(Counter::kPageFetches), 2u);
    EXPECT_GE(t1.stats->get(Counter::kInvalidations), 1u);
  });
}

TEST_P(DsmProtocolTest, AcquireFlushesThenInvalidates) {
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 8);
    do_put<std::int64_t>(GetParam(), t1, a, 9);
    dsm.on_acquire(t1);
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), 9);        // flushed
    EXPECT_FALSE(t1.nd->present(dsm.layout().page_of(a)));  // invalidated
  });
}

TEST_P(DsmProtocolTest, ReleaseFlushesButKeepsCache) {
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 8);
    do_put<std::int64_t>(GetParam(), t1, a, 9);
    dsm.on_release(t1);
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), 9);
    EXPECT_TRUE(t1.nd->present(dsm.layout().page_of(a)));  // still cached
  });
}

TEST_P(DsmProtocolTest, DisjointFieldWritersDoNotClobberEachOther) {
  // False-sharing safety: two nodes modify different fields of the same
  // page; both flushes must land (field-granularity updates / word diffs).
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx& t0, ThreadCtx& t1) {
    // Page homed on node 2 so both writers are remote.
    const Gva a = dsm.alloc(2, 8);
    const Gva b = dsm.alloc(2, 8);
    ASSERT_EQ(dsm.layout().page_of(a), dsm.layout().page_of(b));
    do_put<std::int64_t>(GetParam(), t0, a, 111);
    do_put<std::int64_t>(GetParam(), t1, b, 222);
    dsm.update_main_memory(t0);
    dsm.update_main_memory(t1);
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), 111);
    EXPECT_EQ(dsm.read_home<std::int64_t>(b), 222);
  });
}

TEST_P(DsmProtocolTest, ReleaseAcquirePairTransfersData) {
  // The canonical JMM handoff: writer flushes (release); reader invalidates
  // (acquire) and sees the new value.
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx& t0, ThreadCtx& t1) {
    const Gva a = dsm.alloc(2, 8);
    do_put<std::int64_t>(GetParam(), t0, a, 31337);
    dsm.on_release(t0);
    dsm.on_acquire(t1);
    EXPECT_EQ((do_get<std::int64_t>(GetParam(), t1, a)), 31337);
  });
}

TEST_P(DsmProtocolTest, MultiPageArraySpansFetches) {
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const std::size_t page = dsm.layout().page_bytes();
    const Gva arr = dsm.alloc(0, 3 * page, page);
    for (std::size_t i = 0; i < 3; ++i) {
      dsm.poke_home<std::int32_t>(arr + i * page, static_cast<std::int32_t>(i));
    }
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ((do_get<std::int32_t>(GetParam(), t1, arr + i * page)),
                static_cast<std::int32_t>(i));
    }
    EXPECT_EQ(t1.stats->get(Counter::kPageFetches), 3u);
  });
}

TEST_P(DsmProtocolTest, LoadIntoCachePrefetches) {
  run_two_nodes(GetParam(), [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 4);
    dsm.poke_home<std::int32_t>(a, 5);
    dsm.load_into_cache(t1, a);
    const auto faults_before = t1.stats->get(Counter::kPageFaults);
    EXPECT_EQ((do_get<std::int32_t>(GetParam(), t1, a)), 5);
    // The explicit load means the access itself neither faults nor fetches.
    EXPECT_EQ(t1.stats->get(Counter::kPageFaults), faults_before);
    EXPECT_EQ(t1.stats->get(Counter::kPageFetches), 1u);
  });
}

// --- protocol-specific event accounting ------------------------------------

TEST(DsmJavaIc, ChecksOnEveryAccessAndNeverFaults) {
  run_two_nodes(ProtocolKind::kJavaIc, [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(1, 8);  // home access
    const Gva b = dsm.alloc(0, 8);  // remote access
    do_put<std::int64_t>(ProtocolKind::kJavaIc, t1, a, 1);
    do_get<std::int64_t>(ProtocolKind::kJavaIc, t1, a);
    do_get<std::int64_t>(ProtocolKind::kJavaIc, t1, b);
    EXPECT_EQ(t1.stats->get(Counter::kInlineChecks), 3u);  // local AND remote
    EXPECT_EQ(t1.stats->get(Counter::kPageFaults), 0u);
    EXPECT_EQ(t1.stats->get(Counter::kMprotectCalls), 0u);  // §3.2
  });
}

TEST(DsmJavaIc, HomeWritesAreNotLogged) {
  run_two_nodes(ProtocolKind::kJavaIc, [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva home_field = dsm.alloc(1, 8);
    const Gva remote_field = dsm.alloc(0, 8);
    do_put<std::int64_t>(ProtocolKind::kJavaIc, t1, home_field, 1);
    do_put<std::int64_t>(ProtocolKind::kJavaIc, t1, remote_field, 2);
    EXPECT_EQ(t1.stats->get(Counter::kWriteLogEntries), 1u);
    EXPECT_EQ(t1.wlog.size(), 1u);
  });
}

TEST(DsmJavaIc, WriteLogDedupesLastWriterWins) {
  run_two_nodes(ProtocolKind::kJavaIc, [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 8);
    for (std::int64_t v = 0; v < 10; ++v) {
      do_put<std::int64_t>(ProtocolKind::kJavaIc, t1, a, v);
    }
    dsm.update_main_memory(t1);
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), 9);
    // One update message carrying one (deduplicated) field.
    EXPECT_EQ(t1.stats->get(Counter::kUpdatesSent), 1u);
  });
}

TEST(DsmJavaPf, FaultsOnlyOnMissesAndNeverChecks) {
  run_two_nodes(ProtocolKind::kJavaPf, [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(1, 8);  // home: free access
    const Gva b = dsm.alloc(0, 8);  // remote: one fault
    do_put<std::int64_t>(ProtocolKind::kJavaPf, t1, a, 1);
    do_get<std::int64_t>(ProtocolKind::kJavaPf, t1, a);
    do_get<std::int64_t>(ProtocolKind::kJavaPf, t1, b);
    do_get<std::int64_t>(ProtocolKind::kJavaPf, t1, b);  // cached: no 2nd fault
    EXPECT_EQ(t1.stats->get(Counter::kInlineChecks), 0u);
    EXPECT_EQ(t1.stats->get(Counter::kPageFaults), 1u);
    EXPECT_EQ(t1.stats->get(Counter::kMprotectCalls), 1u);  // page unprotect
  });
}

TEST(DsmJavaPf, InvalidationCostsOneRegionMprotect) {
  run_two_nodes(ProtocolKind::kJavaPf, [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 8);
    do_get<std::int64_t>(ProtocolKind::kJavaPf, t1, a);
    const auto mprotects = t1.stats->get(Counter::kMprotectCalls);
    dsm.invalidate_cache(t1);
    EXPECT_EQ(t1.stats->get(Counter::kMprotectCalls), mprotects + 1);  // §3.3
  });
}

TEST(DsmJavaPf, DiffWordsCountModifiedWordsOnly) {
  run_two_nodes(ProtocolKind::kJavaPf, [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 64);
    do_put<std::int64_t>(ProtocolKind::kJavaPf, t1, a, 1);
    do_put<std::int64_t>(ProtocolKind::kJavaPf, t1, a + 8, 2);
    do_put<std::int64_t>(ProtocolKind::kJavaPf, t1, a + 32, 3);
    dsm.update_main_memory(t1);
    EXPECT_EQ(t1.stats->get(Counter::kDiffWords), 3u);
    EXPECT_EQ(dsm.read_home<std::int64_t>(a + 32), 3);
  });
}

TEST(DsmJavaPf, CleanPagesSendNoUpdates) {
  run_two_nodes(ProtocolKind::kJavaPf, [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 8);
    do_get<std::int64_t>(ProtocolKind::kJavaPf, t1, a);  // read-only caching
    dsm.update_main_memory(t1);
    EXPECT_EQ(t1.stats->get(Counter::kUpdatesSent), 0u);
  });
}

TEST(DsmJavaPf, RepeatedFlushSendsEachModificationOnce) {
  run_two_nodes(ProtocolKind::kJavaPf, [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 8);
    do_put<std::int64_t>(ProtocolKind::kJavaPf, t1, a, 7);
    dsm.update_main_memory(t1);
    EXPECT_EQ(t1.stats->get(Counter::kUpdatesSent), 1u);
    dsm.update_main_memory(t1);  // twin refreshed: nothing new to send
    EXPECT_EQ(t1.stats->get(Counter::kUpdatesSent), 1u);
  });
}

// --- virtual-time accounting -------------------------------------------------

TEST(DsmTiming, IcChargesCheckCostPerAccessPfChargesNothingWhenLocal) {
  for (ProtocolKind kind : {ProtocolKind::kJavaIc, ProtocolKind::kJavaPf}) {
    run_two_nodes(kind, [&](DsmSystem& dsm, ThreadCtx& t0, ThreadCtx&) {
      const Gva a = dsm.alloc(0, 8);  // home access for t0
      for (int i = 0; i < 100; ++i) do_get<std::int64_t>(kind, t0, a);
      const Time expected =
          kind == ProtocolKind::kJavaIc ? 100 * t0.check_cost : 0;
      EXPECT_EQ(t0.clock.pending(), expected) << protocol_name(kind);
    });
  }
}

TEST(DsmTiming, PfMissCostsAtLeastTheFaultConstant) {
  run_two_nodes(ProtocolKind::kJavaPf, [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
    const Gva a = dsm.alloc(0, 8);
    auto& eng = dsm.cluster().engine();
    const Time before = eng.now();
    do_get<std::int64_t>(ProtocolKind::kJavaPf, t1, a);
    const Time elapsed = eng.now() - before;
    EXPECT_GE(elapsed, dsm.cluster().params().cpu.page_fault_cost);
  });
}

TEST(DsmTiming, IcMissCostsLessThanPfMissButChecksAccumulate) {
  // One miss: ic avoids fault+mprotect, so the miss itself is cheaper. Many
  // local accesses: ic pays per access, pf pays zero. This crossover IS the
  // paper's trade-off (§3.3).
  auto miss_cost = [&](ProtocolKind kind) {
    Time elapsed = 0;
    run_two_nodes(kind, [&](DsmSystem& dsm, ThreadCtx&, ThreadCtx& t1) {
      const Gva a = dsm.alloc(0, 8);
      auto& eng = dsm.cluster().engine();
      const Time before = eng.now();
      do_get<std::int64_t>(kind, t1, a);
      t1.clock.flush();
      elapsed = eng.now() - before;
    });
    return elapsed;
  };
  EXPECT_LT(miss_cost(ProtocolKind::kJavaIc), miss_cost(ProtocolKind::kJavaPf));
}

TEST(DsmSystem, ConcurrentSamePageMissesFetchOnce) {
  cluster::Cluster c(test_params(), 2);
  DsmSystem dsm(&c, kRegion, ProtocolKind::kJavaPf);
  const Gva a = dsm.alloc(0, 8);
  dsm.poke_home<std::int64_t>(a, 5);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    c.spawn_thread(1, "reader" + std::to_string(i), [&dsm, &done, a] {
      auto t = dsm.make_thread(1);
      EXPECT_EQ((PfPolicy::get<std::int64_t>(*t, a)), 5);
      ++done;
    });
  }
  c.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(c.node(1).stats().get(Counter::kPageFetches), 1u);
}

TEST(DsmSystemDeath, UnknownProtocolNameAborts) {
  EXPECT_DEATH(protocol_by_name("tso"), "unknown protocol");
}

TEST(DsmSystem, ProtocolNamesRoundTrip) {
  EXPECT_STREQ(protocol_name(ProtocolKind::kJavaIc), "java_ic");
  EXPECT_STREQ(protocol_name(ProtocolKind::kJavaPf), "java_pf");
  EXPECT_EQ(protocol_by_name("java_ic"), ProtocolKind::kJavaIc);
  EXPECT_EQ(protocol_by_name("java_pf"), ProtocolKind::kJavaPf);
}

}  // namespace
}  // namespace hyp::dsm
