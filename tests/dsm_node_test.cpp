#include "dsm/node_dsm.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "dsm/write_log.hpp"

namespace hyp::dsm {
namespace {

class NodeDsmTest : public ::testing::Test {
 protected:
  NodeDsmTest() : layout_(1 << 20, 4096, 4), nd_(&layout_, 1) {}
  Layout layout_;
  NodeDsm nd_;  // node 1 owns pages 64..127
};

TEST_F(NodeDsmTest, HomePagesAlwaysPresent) {
  EXPECT_TRUE(nd_.is_home(64));
  EXPECT_TRUE(nd_.present(64));
  EXPECT_FALSE(nd_.is_home(0));
  EXPECT_FALSE(nd_.present(0));
}

TEST_F(NodeDsmTest, MarkCachedMakesPagePresent) {
  nd_.mark_cached(0, /*with_twin=*/false);
  EXPECT_TRUE(nd_.present(0));
  EXPECT_FALSE(nd_.has_twin(0));
  EXPECT_EQ(nd_.cached_pages().size(), 1u);
}

TEST_F(NodeDsmTest, TwinSnapshotsPageContents) {
  std::memset(nd_.page_ptr(0), 0xAB, 4096);
  nd_.mark_cached(0, /*with_twin=*/true);
  ASSERT_TRUE(nd_.has_twin(0));
  EXPECT_EQ(0, std::memcmp(nd_.twin(0), nd_.page_ptr(0), 4096));
  // Later writes diverge from the twin until refreshed.
  nd_.page_ptr(0)[100] = std::byte{0x01};
  EXPECT_NE(0, std::memcmp(nd_.twin(0), nd_.page_ptr(0), 4096));
  nd_.refresh_twin(0);
  EXPECT_EQ(0, std::memcmp(nd_.twin(0), nd_.page_ptr(0), 4096));
}

TEST_F(NodeDsmTest, InvalidateAllDropsCachesAndTwins) {
  nd_.mark_cached(0, true);
  nd_.mark_cached(1, true);
  EXPECT_EQ(nd_.invalidate_all(), 2u);
  EXPECT_FALSE(nd_.present(0));
  EXPECT_FALSE(nd_.present(1));
  EXPECT_FALSE(nd_.has_twin(0));
  EXPECT_TRUE(nd_.cached_pages().empty());
  // Home pages survive invalidation.
  EXPECT_TRUE(nd_.present(64));
}

TEST_F(NodeDsmTest, ReCachingAfterInvalidationWorks) {
  nd_.mark_cached(0, false);
  nd_.invalidate_all();
  nd_.mark_cached(0, false);
  EXPECT_TRUE(nd_.present(0));
}

TEST_F(NodeDsmTest, AllocBumpsWithinZone) {
  const Gva a = nd_.alloc(16);
  const Gva b = nd_.alloc(16);
  EXPECT_GE(a, layout_.zone_begin(1));
  EXPECT_LT(b + 16, layout_.zone_end(1));
  EXPECT_EQ(b, a + 16);
  EXPECT_EQ(layout_.home_of(a), 1);
}

TEST_F(NodeDsmTest, AllocRespectsAlignment) {
  nd_.alloc(3);
  const Gva a = nd_.alloc(8, 64);
  EXPECT_EQ(a % 64, 0u);
  const Gva b = nd_.alloc(1, 1);
  nd_.alloc(8);  // default 8-byte alignment
  EXPECT_EQ(nd_.alloc(8) % 8, 0u);
  (void)b;
}

TEST_F(NodeDsmTest, AllocatedBytesTracksUsage) {
  EXPECT_EQ(nd_.allocated_bytes(), 0u);
  nd_.alloc(100);
  EXPECT_GE(nd_.allocated_bytes(), 100u);
}

TEST_F(NodeDsmTest, ZoneExhaustionAborts) {
  // Node 1's zone is 64 pages = 256 KiB.
  nd_.alloc(256 * 1024 - 8);
  EXPECT_DEATH(nd_.alloc(64), "zone exhausted");
}

TEST_F(NodeDsmTest, DoubleCacheAborts) {
  nd_.mark_cached(0, false);
  EXPECT_DEATH(nd_.mark_cached(0, false), "already cached");
}

TEST_F(NodeDsmTest, CachingHomePageAborts) {
  EXPECT_DEATH(nd_.mark_cached(64, false), "never 'cached'");
}

TEST(WriteLog, RecordAndClear) {
  WriteLog log;
  EXPECT_TRUE(log.empty());
  log.record(100, 4, 0xdeadbeef);
  log.record(200, 8, 0x0123456789abcdefull);
  EXPECT_EQ(log.size(), 2u);
  log.clear();
  EXPECT_TRUE(log.empty());
}

TEST(WriteLog, EncodeDecodeRoundTrip) {
  std::vector<WriteLogEntry> entries = {
      {100, 4, 0xdeadbeef},
      {208, 8, 0x0123456789abcdefull},
      {305, 1, 0x7f},
  };
  Buffer buf;
  WriteLog::encode(&buf, entries);
  BufferReader reader(buf);
  auto decoded = WriteLog::decode(reader);
  ASSERT_EQ(decoded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded[i].addr, entries[i].addr);
    EXPECT_EQ(decoded[i].size, entries[i].size);
    EXPECT_EQ(decoded[i].value, entries[i].value);
  }
  EXPECT_TRUE(reader.done());
}

}  // namespace
}  // namespace hyp::dsm
