#include "common/buffer.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace hyp {
namespace {

TEST(Buffer, RoundTripsScalars) {
  Buffer b;
  b.put<std::uint32_t>(0xdeadbeef);
  b.put<double>(3.5);
  b.put<std::int8_t>(-7);
  EXPECT_EQ(b.size(), 4u + 8u + 1u);

  BufferReader r(b);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(r.get<double>(), 3.5);
  EXPECT_EQ(r.get<std::int8_t>(), -7);
  EXPECT_TRUE(r.done());
}

TEST(Buffer, RoundTripsStringsAndBytes) {
  Buffer b;
  b.put_string("hello");
  const char raw[] = {1, 2, 3};
  b.put_bytes(raw, sizeof(raw));

  BufferReader r(b);
  EXPECT_EQ(r.get_string(), "hello");
  char out[3];
  r.get_bytes(out, sizeof(out));
  EXPECT_EQ(0, std::memcmp(raw, out, 3));
  EXPECT_TRUE(r.done());
}

TEST(Buffer, EmptyStringRoundTrips) {
  Buffer b;
  b.put_string("");
  BufferReader r(b);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.done());
}

TEST(Buffer, GetSpanBorrowsInPlace) {
  Buffer b;
  b.put<std::uint64_t>(42);
  b.put<std::uint64_t>(43);
  BufferReader r(b);
  auto s = r.get_span(8);
  std::uint64_t v;
  std::memcpy(&v, s.data(), 8);
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(r.remaining(), 8u);
}

TEST(BufferDeath, UnderrunAborts) {
  Buffer b;
  b.put<std::uint16_t>(1);
  BufferReader r(b);
  (void)r.get<std::uint16_t>();
  EXPECT_DEATH((void)r.get<std::uint8_t>(), "buffer underrun");
}

TEST(Buffer, ReserveDoesNotChangeSize) {
  Buffer b(1024);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace hyp
