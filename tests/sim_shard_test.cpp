// Sharded event queue (engine.hpp configure_shards): the shard layout is an
// executor detail and must be invisible to the simulation.
//
//   * cross-check — the same seeded random workload runs once on the flat
//     single-shard heap and once per sharded layout; the observed dispatch
//     order (time, tag) must be identical element for element;
//   * steady state — per-shard heaps and the merge heap must recycle their
//     storage: no allocation once warmed (the sim_event_pool discipline).
//
// The allocation-counting hook replaces global operator new/delete for THIS
// test binary only; it merely counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::uint64_t allocs() { return g_alloc_count.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hyp::sim {
namespace {

// Deterministic xorshift so the "random" workload is identical across runs.
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

struct Obs {
  Time at;
  int tag;
  bool operator==(const Obs&) const = default;
};

// One seeded workload: `posters` fibers, each posting callback chains and
// sleeping pseudo-random amounts; every dispatch records (now, tag). When
// `shards` > 1, each poster is pinned to shard tag % shards and its posts
// target a pseudo-random shard — maximally scrambled layout.
std::vector<Obs> run_workload(std::uint32_t shards, std::uint64_t seed, int posters,
                              int rounds) {
  Engine eng;
  if (shards > 1) eng.configure_shards(shards);
  std::vector<Obs> order;
  for (int f = 0; f < posters; ++f) {
    auto body = [&eng, &order, shards, seed, f, rounds] {
      Rng rng{seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(f) + 1};
      for (int r = 0; r < rounds; ++r) {
        const int chain = static_cast<int>(rng.next() % 4);
        for (int c = 0; c < chain; ++c) {
          const Time at = eng.now() + 1 + static_cast<Time>(rng.next() % 500);
          // Always drawn so flat and sharded runs consume the same RNG
          // sequence; only the placement differs.
          const std::uint64_t shard_draw = rng.next();
          const int tag = f * 1000 + r * 10 + c;
          auto cb = [&eng, &order, tag] { order.push_back({eng.now(), tag}); };
          if (shards > 1) {
            eng.post_on(static_cast<std::uint32_t>(shard_draw % shards), at,
                        std::move(cb));
          } else {
            eng.post(at, std::move(cb));
          }
        }
        order.push_back({eng.now(), -f - 1});  // the fiber's own dispatch
        eng.sleep_for(1 + static_cast<TimeDelta>(rng.next() % 300));
      }
    };
    if (shards > 1) {
      eng.spawn_on(static_cast<std::uint32_t>(f) % shards, "p" + std::to_string(f),
                   std::move(body));
    } else {
      eng.spawn("p" + std::to_string(f), std::move(body));
    }
  }
  const auto stuck = eng.run();
  EXPECT_TRUE(stuck.empty());
  EXPECT_EQ(eng.pending_events(), 0u);
  return order;
}

TEST(ShardedQueue, PopOrderMatchesFlatHeapAcrossLayouts) {
  for (std::uint64_t seed : {1ull, 42ull, 977ull}) {
    const std::vector<Obs> flat = run_workload(1, seed, 12, 40);
    ASSERT_FALSE(flat.empty());
    for (std::uint32_t shards : {2u, 3u, 8u, 64u}) {
      const std::vector<Obs> sharded = run_workload(shards, seed, 12, 40);
      ASSERT_EQ(flat.size(), sharded.size()) << "shards=" << shards << " seed=" << seed;
      for (std::size_t i = 0; i < flat.size(); ++i) {
        ASSERT_EQ(flat[i], sharded[i])
            << "divergence at dispatch " << i << " (shards=" << shards
            << " seed=" << seed << ")";
      }
    }
  }
}

TEST(ShardedQueue, ConfigureRejectedOnceEventsExist) {
  Engine eng;
  eng.configure_shards(4);  // still pristine: allowed
  EXPECT_EQ(eng.shard_count(), 4u);
  eng.post(10, [] {});
  EXPECT_DEATH(eng.configure_shards(8), "configure_shards");
}

TEST(ShardedQueue, SingleShardIsTheDefault) {
  Engine eng;
  EXPECT_EQ(eng.shard_count(), 1u);
}

TEST(ShardedQueue, SteadyStateShardChurnIsAllocationFree) {
  Engine eng;
  eng.configure_shards(8);
  std::uint64_t during = 1;  // poisoned; set by the driver fiber
  // One pinned sleeper per shard keeps every shard's heap and the merge heap
  // churning; the driver posts cross-shard callbacks in a rotation.
  for (std::uint32_t s = 0; s < 8; ++s) {
    eng.spawn_on(s, "sleeper" + std::to_string(s), [&eng] {
      for (int i = 0; i < 4200; ++i) eng.sleep_for(7);
    });
  }
  eng.spawn_on(0, "driver", [&eng, &during] {
    std::uint64_t sink = 0;
    auto round = [&](int i) {
      for (std::uint32_t s = 0; s < 8; ++s) {
        eng.post_on(s, eng.now() + 1 + s, [&sink, s] { sink += s; });
      }
      eng.sleep_for(10 + (i % 3));
    };
    for (int i = 0; i < 256; ++i) round(i);  // warm heaps, slots, free lists
    const std::uint64_t before = allocs();
    for (int i = 0; i < 3000; ++i) round(i);
    during = allocs() - before;
    if (sink == 0xdeadbeef) std::abort();  // keep the loop alive
  });
  eng.run();
  EXPECT_EQ(during, 0u) << "sharded push/pop and merge fix-ups must not allocate";
}

}  // namespace
}  // namespace hyp::sim
