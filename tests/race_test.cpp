// Vector-clock race detector (docs/RACES.md): config parsing, the core
// happens-before semantics against a bare Cluster, the litmus-program
// verdicts at both granularities, and the attachment discipline (a detector
// must never change a run's answers, schedule, or virtual time).
#include "obs/race.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/litmus.hpp"
#include "cluster/cluster.hpp"
#include "cluster/trace.hpp"

namespace hyp {
namespace {

using obs::RaceConfig;
using obs::RaceDetector;
using obs::RaceGran;
using obs::RaceRecord;

// ---------------------------------------------------------------------------
// --race-detect spec parsing

TEST(RaceConfig, ParsesAndRoundTrips) {
  EXPECT_FALSE(RaceConfig::parse("off").enabled);
  EXPECT_TRUE(RaceConfig::parse("on").enabled);
  EXPECT_EQ(RaceConfig::parse("on").gran, RaceGran::kField);
  EXPECT_EQ(RaceConfig::parse("on,racegran=field").gran, RaceGran::kField);
  EXPECT_EQ(RaceConfig::parse("on,racegran=page").gran, RaceGran::kPage);

  for (const char* spec : {"off", "on,racegran=field", "on,racegran=page"}) {
    EXPECT_EQ(RaceConfig::parse(spec).to_string(), spec);
    // to_string output re-parses to an equal config.
    const RaceConfig c = RaceConfig::parse(spec);
    const RaceConfig back = RaceConfig::parse(c.to_string());
    EXPECT_EQ(back.enabled, c.enabled);
    EXPECT_EQ(back.gran, c.gran);
  }
  EXPECT_EQ(RaceConfig::parse("on").to_string(), "on,racegran=field");
}

TEST(RaceConfigDeathTest, MalformedSpecsExitWithStatus2) {
  EXPECT_EXIT(RaceConfig::parse("junk"), testing::ExitedWithCode(2), "malformed --race-detect");
  EXPECT_EXIT(RaceConfig::parse(""), testing::ExitedWithCode(2), "malformed --race-detect");
  EXPECT_EXIT(RaceConfig::parse("on,on"), testing::ExitedWithCode(2), "duplicate");
  EXPECT_EXIT(RaceConfig::parse("racegran=field"), testing::ExitedWithCode(2),
              "malformed --race-detect");
  EXPECT_EXIT(RaceConfig::parse("on,racegran=cacheline"), testing::ExitedWithCode(2),
              "racegran");
  EXPECT_EXIT(RaceConfig::parse("on,"), testing::ExitedWithCode(2), "empty token");
}

// ---------------------------------------------------------------------------
// Core happens-before semantics, driven directly against a bare cluster.

cluster::ClusterParams tiny_params() {
  cluster::ClusterParams p;
  p.name = "test";
  p.default_nodes = 2;
  p.net.latency = 10 * kMicrosecond;
  p.net.bandwidth_bytes_per_sec = 100e6;
  p.net.send_overhead = 1 * kMicrosecond;
  p.net.recv_overhead = 2 * kMicrosecond;
  p.cpu.hz = 100e6;
  return p;
}

class RaceCoreTest : public testing::Test {
 protected:
  RaceCoreTest() : cluster_(tiny_params(), 2), det_(RaceConfig{true, RaceGran::kField}) {
    det_.begin_run(&cluster_, /*page_shift=*/12);
    det_.register_thread(1, 0);
    det_.register_thread(2, 1);
  }
  cluster::Cluster cluster_;
  RaceDetector det_;
};

TEST_F(RaceCoreTest, UnorderedWritesConflict) {
  det_.on_write(1, 0x100, 4);
  det_.on_write(2, 0x100, 4);
  ASSERT_EQ(det_.races(), 1u);
  EXPECT_EQ(det_.race_records()[0].kind, RaceRecord::Kind::kWriteWrite);
  EXPECT_EQ(det_.race_records()[0].tid_prev, 1u);
  EXPECT_EQ(det_.race_records()[0].tid_cur, 2u);
}

TEST_F(RaceCoreTest, UnorderedReadAfterWriteConflicts) {
  det_.on_write(1, 0x100, 4);
  det_.on_read(2, 0x100, 4);
  ASSERT_EQ(det_.races(), 1u);
  EXPECT_EQ(det_.race_records()[0].kind, RaceRecord::Kind::kWriteRead);
}

TEST_F(RaceCoreTest, UnorderedWriteAfterReadConflicts) {
  det_.on_read(1, 0x100, 4);
  det_.on_write(2, 0x100, 4);
  ASSERT_EQ(det_.races(), 1u);
  EXPECT_EQ(det_.race_records()[0].kind, RaceRecord::Kind::kReadWrite);
}

TEST_F(RaceCoreTest, LockOrderingSuppressesTheConflict) {
  det_.lock_acquire(1, 0xA0);
  det_.on_write(1, 0x100, 4);
  det_.lock_release(1, 0xA0);
  det_.lock_acquire(2, 0xA0);  // joins T1's release clock
  det_.on_write(2, 0x100, 4);
  det_.lock_release(2, 0xA0);
  EXPECT_EQ(det_.races(), 0u);
}

TEST_F(RaceCoreTest, DistinctLocksDoNotOrder) {
  det_.lock_acquire(1, 0xA0);
  det_.on_write(1, 0x100, 4);
  det_.lock_release(1, 0xA0);
  det_.lock_acquire(2, 0xB0);  // a different monitor: no edge
  det_.on_write(2, 0x100, 4);
  det_.lock_release(2, 0xB0);
  EXPECT_EQ(det_.races(), 1u);
}

TEST_F(RaceCoreTest, ForkAndJoinEdgesOrder) {
  det_.on_write(1, 0x100, 4);
  const std::uint64_t token = det_.prepare_fork(1);
  det_.adopt_fork(token, 2);
  det_.on_write(2, 0x100, 4);  // ordered by the fork edge
  det_.thread_exit(token, 2);
  det_.join(1, token);
  det_.on_write(1, 0x100, 4);  // ordered by the join edge
  EXPECT_EQ(det_.races(), 0u);
}

TEST_F(RaceCoreTest, SameThreadNeverConflictsAndDedupHolds) {
  det_.on_write(1, 0x100, 4);
  det_.on_write(1, 0x100, 4);
  EXPECT_EQ(det_.races(), 0u);
  // The same unordered pair on the same cell reports exactly once.
  det_.on_write(2, 0x100, 4);
  det_.on_write(2, 0x100, 4);
  det_.on_write(1, 0x100, 4);
  EXPECT_EQ(det_.races(), 2u);  // WW(1,2) and WW(2,1), each deduplicated
}

TEST_F(RaceCoreTest, BenignRangeIsTalliedNotReported) {
  det_.mark_benign(0x100, 0x104);
  det_.on_write(1, 0x100, 4);
  det_.on_write(2, 0x100, 4);
  EXPECT_EQ(det_.races(), 0u);
  EXPECT_EQ(det_.benign_suppressed(), 1u);
  det_.on_write(2, 0x200, 4);  // outside the range: reported
  det_.on_write(1, 0x200, 4);
  EXPECT_EQ(det_.races(), 1u);
}

TEST(RaceGranTest, PageGranularityMergesNeighbours) {
  cluster::Cluster cluster(tiny_params(), 2);
  RaceDetector field(RaceConfig{true, RaceGran::kField});
  RaceDetector page(RaceConfig{true, RaceGran::kPage});
  for (RaceDetector* det : {&field, &page}) {
    det->begin_run(&cluster, /*page_shift=*/12);
    det->register_thread(1, 0);
    det->register_thread(2, 1);
    det->on_write(1, 0x100, 4);
    det->on_write(2, 0x104, 4);  // a different field on the same page
  }
  EXPECT_EQ(field.races(), 0u);  // field granularity: distinct cells
  EXPECT_EQ(page.races(), 1u);   // page granularity: false sharing flagged
}

TEST_F(RaceCoreTest, MessageDeliveryIsNotAnOrderingEdge) {
  det_.on_write(1, 0x100, 4);
  // A DSM message from T1's node to T2's node is protocol traffic, not
  // program synchronization: it must only feed the piggyback tallies.
  det_.on_message(0, 1, /*service=*/3, /*bytes=*/64);
  det_.on_write(2, 0x100, 4);
  EXPECT_EQ(det_.races(), 1u);
  EXPECT_EQ(det_.clock_msgs(), 1u);
  EXPECT_GT(det_.clock_bytes(), 0u);
}

TEST_F(RaceCoreTest, ReportAttributesAllocationSites) {
  det_.note_alloc(0, 0x1000, 64);
  det_.note_alloc(1, 0x1040, 64);
  det_.on_write(1, 0x1048, 8);
  det_.on_write(2, 0x1048, 8);
  std::ostringstream os;
  det_.write_report(os);
  EXPECT_NE(os.str().find("alloc #1+0x8 home n1"), std::string::npos);
  EXPECT_NE(os.str().find("write-write"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Litmus-program verdicts (the full programs, through the VM).

apps::RunResult run_litmus(const std::string& name, RaceDetector* det,
                           cluster::TraceLog* trace = nullptr) {
  apps::VmConfig cfg = apps::make_config("myri200", dsm::ProtocolKind::kJavaPf, 4);
  cfg.race = det;
  cfg.trace = trace;
  return apps::litmus_run(cfg, name, apps::LitmusParams{});
}

TEST(RaceLitmus, VerdictsHoldAtBothGranularities) {
  for (const RaceGran gran : {RaceGran::kField, RaceGran::kPage}) {
    for (const auto& prog : apps::litmus_programs()) {
      RaceDetector det(RaceConfig{true, gran});
      run_litmus(prog.name, &det);
      if (prog.racy) {
        EXPECT_GT(det.races(), 0u) << prog.name << " gran " << obs::race_gran_name(gran);
      } else {
        EXPECT_EQ(det.races(), 0u) << prog.name << " gran " << obs::race_gran_name(gran);
      }
      EXPECT_GT(det.accesses_checked(), 0u) << prog.name;
    }
  }
}

TEST(RaceLitmus, DetectorDoesNotPerturbTheRun) {
  for (const auto& prog : apps::litmus_programs()) {
    const apps::RunResult bare = run_litmus(prog.name, nullptr);
    RaceDetector det(RaceConfig{true, RaceGran::kField});
    const apps::RunResult observed = run_litmus(prog.name, &det);
    EXPECT_EQ(bare.elapsed, observed.elapsed) << prog.name;
    EXPECT_EQ(bare.value, observed.value) << prog.name;
    EXPECT_EQ(bare.events_processed, observed.events_processed) << prog.name;
    EXPECT_EQ(bare.context_switches, observed.context_switches) << prog.name;
  }
}

TEST(RaceLitmus, SameSeedReportsAreByteIdentical) {
  auto report = [](RaceGran gran) {
    RaceDetector det(RaceConfig{true, gran});
    run_litmus("unsync_counter", &det);
    std::ostringstream os;
    det.write_report(os);
    return os.str();
  };
  EXPECT_EQ(report(RaceGran::kField), report(RaceGran::kField));
  EXPECT_EQ(report(RaceGran::kPage), report(RaceGran::kPage));
  EXPECT_NE(report(RaceGran::kField).find("races:"), std::string::npos);
}

TEST(RaceLitmus, RacesAppearInTheTrace) {
  RaceDetector det(RaceConfig{true, RaceGran::kField});
  cluster::TraceLog trace(1 << 16);
  run_litmus("unsync_counter", &det, &trace);
  std::uint64_t race_events = 0;
  for (const auto& ev : trace.events()) {
    if (ev.kind == cluster::TraceKind::kRaceDetected) ++race_events;
  }
  EXPECT_EQ(race_events, det.races());
  EXPECT_GT(race_events, 0u);
}

TEST(RaceLitmus, CleanProgramsStillCountPiggybackCost) {
  // The zero-race oracle is only meaningful if the detector was really
  // attached: a multi-node synchronized program must show checked accesses
  // and modeled clock piggyback traffic even when no race exists.
  RaceDetector det(RaceConfig{true, RaceGran::kField});
  run_litmus("sync_counter", &det);
  EXPECT_EQ(det.races(), 0u);
  EXPECT_GT(det.accesses_checked(), 0u);
  EXPECT_GT(det.clock_msgs(), 0u);
  EXPECT_GT(det.clock_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Streaming trace sink (the --trace-stream machinery, satellite of the same
// PR: a capacity-bounded log drops; the same log with a sink streams).

TEST(TraceStreaming, SinkDrainsInsteadOfDropping) {
  cluster::TraceLog dropping(16);
  RaceDetector det(RaceConfig{true, RaceGran::kField});
  apps::VmConfig cfg = apps::make_config("myri200", dsm::ProtocolKind::kJavaPf, 4);
  cfg.trace = &dropping;
  apps::litmus_run(cfg, "sync_counter", apps::LitmusParams{});
  EXPECT_GT(dropping.dropped(), 0u);  // capacity 16 cannot hold the run

  cluster::TraceLog streaming(16);
  std::vector<cluster::TraceEvent> collected;
  streaming.set_sink([&](const std::vector<cluster::TraceEvent>& batch) {
    collected.insert(collected.end(), batch.begin(), batch.end());
  });
  apps::VmConfig cfg2 = apps::make_config("myri200", dsm::ProtocolKind::kJavaPf, 4);
  cfg2.trace = &streaming;
  apps::litmus_run(cfg2, "sync_counter", apps::LitmusParams{});
  streaming.flush_sink();
  EXPECT_EQ(streaming.dropped(), 0u);
  // Everything the dropping log saw (and more) reached the sink.
  EXPECT_EQ(collected.size(), dropping.events().size() + dropping.dropped());
}

}  // namespace
}  // namespace hyp
