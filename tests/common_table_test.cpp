#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hyp {
namespace {

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "x,y"});
  t.add_row({"2", "plain"});
  std::ostringstream oss;
  t.write_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,\"x,y\"\n2,plain\n");
}

TEST(Table, CsvEscapesQuotes) {
  Table t({"v"});
  t.add_row({"say \"hi\""});
  std::ostringstream oss;
  t.write_csv(oss);
  EXPECT_EQ(oss.str(), "v\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, PrettyAlignsColumns) {
  Table t({"name", "t"});
  t.add_row({"jacobi", "1.25"});
  std::ostringstream oss;
  t.write_pretty(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name    t"), std::string::npos);
  EXPECT_NE(out.find("jacobi  1.25"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(TableDeath, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Format, Double) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Format, U64) { EXPECT_EQ(fmt_u64(18446744073709551615ull), "18446744073709551615"); }

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(0.38), "38.0%");
  EXPECT_EQ(fmt_percent(0.6421, 2), "64.21%");
}

}  // namespace
}  // namespace hyp
