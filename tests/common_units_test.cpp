#include "common/units.hpp"

#include <gtest/gtest.h>

namespace hyp {
namespace {

TEST(Units, ConversionConstants) {
  EXPECT_EQ(kNanosecond, 1000u);
  EXPECT_EQ(kMicrosecond, 1000000u);
  EXPECT_EQ(kSecond, 1000000000000u);
}

TEST(Units, HelpersRoundTrip) {
  EXPECT_EQ(microseconds(22), 22 * kMicrosecond);
  EXPECT_DOUBLE_EQ(to_micros(microseconds(12)), 12.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
}

TEST(Units, CyclesAt200MHz) {
  // One cycle at 200 MHz is exactly 5 ns = 5000 ps.
  EXPECT_EQ(cycles_at_hz(1, 200e6), 5000u);
  EXPECT_EQ(cycles_at_hz(10, 200e6), 50000u);
}

TEST(Units, CyclesAt450MHz) {
  // 1 / 450 MHz = 2222.2 ps; truncated once at conversion.
  EXPECT_EQ(cycles_at_hz(1, 450e6), 2222u);
  EXPECT_EQ(cycles_at_hz(9, 450e6), 20000u);
}

TEST(Units, ZeroCyclesIsFree) { EXPECT_EQ(cycles_at_hz(0, 200e6), 0u); }

TEST(Units, NonzeroCyclesNeverVanish) {
  // Even at absurd clock rates a nonzero cycle count costs >= 1 ps.
  EXPECT_GE(cycles_at_hz(1, 1e13), 1u);
}

}  // namespace
}  // namespace hyp
