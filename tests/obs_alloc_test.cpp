// The observability record-path allocation contract (docs/OBSERVABILITY.md):
// after init()/construction, record-side calls — histogram record, heat
// bumps, phase adds, trace record (including the at-capacity drop path) —
// must never touch the heap, so observers can sit on simulation hot paths
// without perturbing host performance or (via allocator jitter) tempting
// anyone to make recording conditional.
//
// The counting hook replaces global operator new/delete for THIS binary only
// (same pattern as tests/sim_event_pool_test.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "cluster/trace.hpp"
#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "obs/heat.hpp"
#include "obs/phase.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::uint64_t allocs() { return g_alloc_count.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hyp::obs {
namespace {

TEST(ObsAllocFree, HistogramRecordNeverAllocates) {
  Log2Histogram h;
  const auto before = allocs();
  for (std::uint64_t i = 0; i < 100'000; ++i) h.record(i * 37);
  EXPECT_EQ(allocs() - before, 0u);
  EXPECT_EQ(h.count(), 100'000u);
}

TEST(ObsAllocFree, StatsHistRecordNeverAllocates) {
  Stats s;
  const auto before = allocs();
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    s.record(Hist::kPageFetchLatency, i);
    s.record(Hist::kMonitorAcquireWait, i * 3);
    s.record(Hist::kUpdatePayloadBytes, i % 4096);
  }
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(ObsAllocFree, HeatRecordNeverAllocatesAfterInit) {
  PageHeatTable heat;
  heat.init(4096, 4096);  // the one allocating call
  const auto before = allocs();
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    heat.record_fetch(i % 4096);
    heat.record_fault(i % 977);
    heat.record_update(i % 4096, 8);
    heat.record_fetch(1 << 20);  // out of range: guarded, still no alloc
  }
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(ObsAllocFree, PhaseAddNeverAllocatesAfterInit) {
  PhaseAccounting acct;
  acct.init(12);
  const auto before = allocs();
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    acct.add(static_cast<int>(i % 12), Phase::kCompute, 5);
    acct.add(static_cast<int>(i % 12), Phase::kBlockedFetch, 2);
  }
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(ObsAllocFree, TraceRecordNeverAllocatesIncludingDropPath) {
  cluster::TraceLog log(/*capacity=*/1024);  // reserves up front
  const auto before = allocs();
  // Fill to capacity, then well past it (the drop path).
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    log.record(i, static_cast<int>(i % 4), cluster::TraceKind::kPageFetch,
               static_cast<std::int64_t>(i), 0);
  }
  EXPECT_EQ(allocs() - before, 0u);
  EXPECT_EQ(log.events().size(), 1024u);
  EXPECT_EQ(log.dropped(), 10'000u - 1024u);
}

}  // namespace
}  // namespace hyp::obs
