// Tests of the native backend: REAL mprotect/SIGSEGV remote-object
// detection, real threads, real monitors. These prove the paper's two
// mechanisms are implementable exactly as described, not merely modeled.
#include "native/native_vm.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace hyp::native {
namespace {

NativeVm::Config cfg(Protocol p, int nodes) {
  NativeVm::Config c;
  c.protocol = p;
  c.nodes = nodes;
  c.region_bytes = std::size_t{16} << 20;
  return c;
}

class NativeProtocolTest : public ::testing::TestWithParam<Protocol> {};
INSTANTIATE_TEST_SUITE_P(BothProtocols, NativeProtocolTest,
                         ::testing::Values(Protocol::kJavaIc, Protocol::kJavaPf),
                         [](const auto& info) {
                           return info.param == Protocol::kJavaIc ? "java_ic" : "java_pf";
                         });

TEST_P(NativeProtocolTest, LocalAllocateWriteRead) {
  NativeVm vm(cfg(GetParam(), 2));
  vm.run_main([](NativeEnv& env) {
    const Gva a = env.new_cell<std::int64_t>(-5);
    EXPECT_EQ(env.get<std::int64_t>(a), -5);
    env.put<std::int64_t>(a, 17);
    EXPECT_EQ(env.get<std::int64_t>(a), 17);
  });
}

TEST_P(NativeProtocolTest, RemoteReadTriggersDetectionAndFetch) {
  NativeVm vm(cfg(GetParam(), 2));
  std::int64_t seen = 0;
  vm.run_main([&](NativeEnv& env) {
    const Gva a = env.new_cell<std::int64_t>(4242);  // homed on node 0
    vm.start_thread([a, &seen](NativeEnv& remote) {
      if (remote.node() != 0) seen = remote.get<std::int64_t>(a);
    });
    vm.start_thread([a, &seen](NativeEnv& remote) {
      if (remote.node() != 0) seen = remote.get<std::int64_t>(a);
    });
    vm.join_all(env);
  });
  EXPECT_EQ(seen, 4242);
  EXPECT_GE(vm.dsm().counter(Counter::kPageFetches), 1u);
  if (GetParam() == Protocol::kJavaPf) {
    // The remote access detection really went through SIGSEGV.
    EXPECT_GE(vm.dsm().counter(Counter::kPageFaults), 1u);
  } else {
    EXPECT_EQ(vm.dsm().counter(Counter::kPageFaults), 0u);
    EXPECT_GT(vm.dsm().counter(Counter::kInlineChecks), 0u);
  }
}

TEST_P(NativeProtocolTest, SynchronizedCounterIsExactAcrossRealThreads) {
  constexpr int kThreads = 4;
  constexpr int kReps = 500;
  NativeVm vm(cfg(GetParam(), 2));
  std::int64_t result = 0;
  vm.run_main([&](NativeEnv& env) {
    const Gva counter = env.new_cell<std::int64_t>(0);
    for (int t = 0; t < kThreads; ++t) {
      vm.start_thread([counter](NativeEnv& worker) {
        for (int i = 0; i < kReps; ++i) {
          worker.synchronized(counter, [&] {
            worker.put<std::int64_t>(counter, worker.get<std::int64_t>(counter) + 1);
          });
        }
      });
    }
    vm.join_all(env);
    result = env.get<std::int64_t>(counter);
  });
  EXPECT_EQ(result, kThreads * kReps);
}

TEST_P(NativeProtocolTest, ReleaseAcquireTransfersModifications) {
  NativeVm vm(cfg(GetParam(), 2));
  std::int64_t observed = -1;
  vm.run_main([&](NativeEnv& env) {
    const Gva flag = env.new_cell<std::int64_t>(0);
    const Gva data = env.new_cell<std::int64_t>(0);
    vm.start_thread([=](NativeEnv& w) {
      w.synchronized(flag, [&] { w.put<std::int64_t>(data, 999); });
    });
    vm.start_thread([=, &observed](NativeEnv& w) {
      // Spin until the writer's release made the value visible at home and
      // our acquire refetched it.
      for (;;) {
        std::int64_t v = 0;
        w.synchronized(flag, [&] { v = w.get<std::int64_t>(data); });
        if (v == 999) {
          observed = v;
          return;
        }
      }
    });
    vm.join_all(env);
  });
  EXPECT_EQ(observed, 999);
}

TEST_P(NativeProtocolTest, WaitNotifyAcrossNodes) {
  NativeVm vm(cfg(GetParam(), 2));
  std::int64_t got = 0;
  vm.run_main([&](NativeEnv& env) {
    const Gva box = env.new_cell<std::int64_t>(0);
    vm.start_thread([=, &got](NativeEnv& consumer) {
      consumer.monitor_enter(box);
      while (consumer.get<std::int64_t>(box) == 0) consumer.wait(box);
      got = consumer.get<std::int64_t>(box);
      consumer.monitor_exit(box);
    });
    vm.start_thread([=](NativeEnv& producer) {
      producer.monitor_enter(box);
      producer.put<std::int64_t>(box, 31415);
      producer.notify_all(box);
      producer.monitor_exit(box);
    });
    vm.join_all(env);
  });
  EXPECT_EQ(got, 31415);
}

TEST_P(NativeProtocolTest, StaleCacheUntilAcquire) {
  NativeVm vm(cfg(GetParam(), 2));
  vm.run_main([&](NativeEnv& env) {
    const Gva a = env.new_cell<std::int64_t>(1);
    vm.start_thread([=, &vm](NativeEnv& remote) {
      if (remote.node() == 0) return;
      EXPECT_EQ(remote.get<std::int64_t>(a), 1);  // caches the page
      vm.dsm().poke_home<std::int64_t>(a, 2);     // home changes behind us
      EXPECT_EQ(remote.get<std::int64_t>(a), 1);  // still the cached copy
      vm.dsm().invalidate_cache(remote.ctx());
      EXPECT_EQ(remote.get<std::int64_t>(a), 2);  // refetched
    });
    vm.join_all(env);
  });
}

TEST_P(NativeProtocolTest, DisjointFieldWritersDoNotClobber) {
  NativeVm vm(cfg(GetParam(), 3));
  vm.run_main([&](NativeEnv& env) {
    // Two fields of the same page, homed on node 2; the round-robin places
    // the writers on nodes 0 and 1, so both modify a *remote* replica.
    const Gva a = vm.dsm().alloc(2, 8);
    const Gva b = vm.dsm().alloc(2, 8);
    ASSERT_EQ(vm.dsm().layout().page_of(a), vm.dsm().layout().page_of(b));
    vm.start_thread([=, &vm](NativeEnv& w) {
      w.put<std::int64_t>(a, 111);
      vm.dsm().update_main_memory(w.ctx());
    });
    vm.start_thread([=, &vm](NativeEnv& w) {
      w.put<std::int64_t>(b, 222);
      vm.dsm().update_main_memory(w.ctx());
    });
    vm.join_all(env);
    EXPECT_EQ(vm.dsm().read_home<std::int64_t>(a), 111);
    EXPECT_EQ(vm.dsm().read_home<std::int64_t>(b), 222);
  });
}

TEST(NativePf, SecondAccessDoesNotFaultAgain) {
  NativeVm vm(cfg(Protocol::kJavaPf, 2));
  vm.run_main([&](NativeEnv& env) {
    const Gva a = env.new_cell<std::int64_t>(7);
    vm.start_thread([=, &vm](NativeEnv& remote) {
      if (remote.node() == 0) return;
      EXPECT_EQ(remote.get<std::int64_t>(a), 7);
      const auto faults = vm.dsm().counter(Counter::kPageFaults);
      EXPECT_EQ(remote.get<std::int64_t>(a), 7);
      EXPECT_EQ(remote.get<std::int64_t>(a + 8), 0);  // same page: no new fault
      EXPECT_EQ(vm.dsm().counter(Counter::kPageFaults), faults);
    });
    vm.join_all(env);
  });
}

TEST(NativePf, InvalidationReprotectsSoNextAccessFaults) {
  NativeVm vm(cfg(Protocol::kJavaPf, 2));
  vm.run_main([&](NativeEnv& env) {
    const Gva a = env.new_cell<std::int64_t>(7);
    vm.start_thread([=, &vm](NativeEnv& remote) {
      if (remote.node() == 0) return;
      EXPECT_EQ(remote.get<std::int64_t>(a), 7);
      const auto faults_before = vm.dsm().counter(Counter::kPageFaults);
      vm.dsm().invalidate_cache(remote.ctx());
      EXPECT_EQ(remote.get<std::int64_t>(a), 7);  // faults again
      EXPECT_GT(vm.dsm().counter(Counter::kPageFaults), faults_before);
    });
    vm.join_all(env);
  });
}

TEST(NativeIc, NoProtectionEverNoFaults) {
  NativeVm vm(cfg(Protocol::kJavaIc, 2));
  vm.run_main([&](NativeEnv& env) {
    const Gva a = env.new_cell<std::int64_t>(3);
    vm.start_thread([=, &vm](NativeEnv& remote) {
      if (remote.node() == 0) return;
      EXPECT_EQ(remote.get<std::int64_t>(a), 3);
      vm.dsm().invalidate_cache(remote.ctx());
      EXPECT_EQ(remote.get<std::int64_t>(a), 3);
    });
    vm.join_all(env);
  });
  EXPECT_EQ(vm.dsm().counter(Counter::kPageFaults), 0u);
  // mprotect is never called by java_ic (§3.2).
  EXPECT_EQ(vm.dsm().counter(Counter::kMprotectCalls), 0u);
}

TEST(NativeIc, WriteLogShipsValuesAtPutTime) {
  NativeVm vm(cfg(Protocol::kJavaIc, 2));
  vm.run_main([&](NativeEnv& env) {
    const Gva a = env.new_cell<std::int64_t>(0);
    vm.start_thread([=, &vm](NativeEnv& remote) {
      if (remote.node() == 0) return;
      remote.put<std::int64_t>(a, 88);
      // Even if the cache is dropped before the flush, the logged value
      // survives (the log captures values, not addresses-to-read-later).
      vm.dsm().invalidate_cache(remote.ctx());
      vm.dsm().update_main_memory(remote.ctx());
      EXPECT_EQ(vm.dsm().read_home<std::int64_t>(a), 88);
    });
    vm.join_all(env);
  });
}

TEST(NativeDsmGeometry, AllocRespectsZones) {
  NativeDsm dsm(4, std::size_t{16} << 20, Protocol::kJavaIc);
  for (int node = 0; node < 4; ++node) {
    const Gva a = dsm.alloc(node, 64);
    EXPECT_EQ(dsm.layout().home_of(a), node);
  }
}

TEST(NativeDsmGeometry, NodeOfAddressResolvesArenas) {
  NativeDsm dsm(3, std::size_t{16} << 20, Protocol::kJavaIc);
  for (int node = 0; node < 3; ++node) {
    EXPECT_EQ(dsm.node_of_address(dsm.arena(node)), node);
    EXPECT_EQ(dsm.node_of_address(dsm.arena(node) + 100), node);
  }
  int dummy;
  EXPECT_EQ(dsm.node_of_address(&dummy), -1);
}

}  // namespace
}  // namespace hyp::native
