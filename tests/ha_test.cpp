// High-availability subsystem tests (src/ha, docs/RECOVERY.md).
//
// Five layers of contract over a kill-and-recover run:
//   1. detector timing — suspect/confirm latencies follow the FaultProfile's
//      virtual-time constants exactly (trace-event deltas);
//   2. backup promotion — the dead node's home zone moves to its ring
//      successor, the epoch bumps, and shared state homed on the dead node
//      stays readable and exact through the failover;
//   3. monitor-table recovery — synchronized updates against an object homed
//      on the crashed node lose nothing (the lost-update litmus, with the
//      monitor's home failing over mid-run);
//   4. restart/rejoin — the crashed node comes back without home authority
//      and resumes as a cacher;
//   5. determinism — a same-seed kill-and-recover run is byte-identical
//      (tests/goldens/recovery_golden.txt; re-record only after a semantic
//      change, with HYP_UPDATE_GOLDENS=1 ./ha_tests).
//
// The workload: the Java main thread migrates to the to-be-crashed node,
// allocates the shared counter there (allocation home = allocating thread's
// node), migrates back, and then six workers hammer it with synchronized
// increments while the node dies and recovers underneath them.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/trace.hpp"
#include "dsm/access.hpp"
#include "ha/ha.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

namespace hyp::ha {
namespace {

using cluster::TraceEvent;
using cluster::TraceKind;

constexpr cluster::NodeId kCrashNode = 2;
constexpr int kNodes = 4;
constexpr int kWorkers = 6;
constexpr int kIncrements = 40;
constexpr std::int64_t kExpected = std::int64_t{kWorkers} * kIncrements;

struct HaRunResult {
  std::int64_t counter = -1;
  Time elapsed = 0;
  Stats stats;
  std::uint64_t events_processed = 0;
  std::uint64_t context_switches = 0;
  std::vector<TraceEvent> trace;
  // Post-run HA state.
  std::uint64_t epoch = 0;
  cluster::NodeId promoted_for = -1;
  cluster::NodeId zone2_home = -1;
  bool backup_is_home = false;   // backup's presence says "home" for the page
  bool crashed_is_home = true;   // crashed node's presence, after rejoin
  dsm::Gva counter_addr = 0;
};

// One kill-and-recover run of the shared-counter workload. The crash window
// (1ms + 800us) opens while the workers are mid-increment and closes before
// they finish, so the run crosses crash -> suspect -> confirm -> promote ->
// restart -> rejoin in-band.
HaRunResult run_counter_with_crash(dsm::ProtocolKind kind, const std::string& profile) {
  hyperion::VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::myrinet200();
  cfg.cluster.fault = cluster::FaultProfile::parse(profile);
  cfg.nodes = kNodes;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  cluster::TraceLog trace(1 << 16);
  cfg.trace = &trace;

  hyperion::HyperionVM vm(cfg);
  HaRunResult out;
  dsm::with_policy(kind, [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](hyperion::JavaEnv& main) {
      // Home the shared counter on the node that is about to die.
      main.migrate_to(kCrashNode);
      auto counter = main.new_cell<std::int64_t>(0);
      out.counter_addr = counter.addr;
      main.migrate_to(0);
      std::vector<hyperion::JThread> workers;
      for (int w = 0; w < kWorkers; ++w) {
        workers.push_back(
            main.start_thread("w" + std::to_string(w), [=](hyperion::JavaEnv& env) {
              hyperion::Mem<P> mem(env.ctx());
              for (int i = 0; i < kIncrements; ++i) {
                env.synchronized(counter.addr,
                                 [&] { mem.put(counter, mem.get(counter) + 1); });
              }
            }));
      }
      for (auto& w : workers) main.join(w);
      hyperion::Mem<P> mem(main.ctx());
      out.counter = mem.get(counter);
    });
  });

  out.elapsed = vm.elapsed();
  out.stats = vm.stats();
  out.events_processed = vm.cluster().engine().events_processed();
  out.context_switches = vm.cluster().engine().context_switches();
  out.trace = trace.events();
  EXPECT_NE(vm.ha(), nullptr) << "crash profile must engage the HA subsystem";
  if (vm.ha() == nullptr) return out;
  out.epoch = vm.ha()->epoch();
  out.promoted_for = vm.ha()->promoted_for();
  out.zone2_home = vm.ha()->home_node(kCrashNode);
  const dsm::PageId page = vm.dsm().layout().page_of(out.counter_addr);
  out.backup_is_home = vm.dsm().node_dsm(vm.ha()->backup_of(kCrashNode)).is_home(page);
  out.crashed_is_home = vm.dsm().node_dsm(kCrashNode).is_home(page);
  return out;
}

// First trace event of `kind`; fails the test when absent.
const TraceEvent* find_event(const std::vector<TraceEvent>& events, TraceKind kind) {
  for (const TraceEvent& e : events) {
    if (e.kind == kind) return &e;
  }
  return nullptr;
}

std::uint64_t count_events(const std::vector<TraceEvent>& events, TraceKind kind) {
  std::uint64_t n = 0;
  for (const TraceEvent& e : events) n += e.kind == kind ? 1 : 0;
  return n;
}

constexpr const char* kCrashProfile = "crash2@1ms+800us,seed=7";

// --- 1. detector timing -----------------------------------------------------

TEST(HaDetector, SuspectAndConfirmFollowConfiguredTimeouts) {
  // Explicit tunables so the timing assertions are self-contained.
  HaRunResult r = run_counter_with_crash(
      dsm::ProtocolKind::kJavaPf,
      "crash2@1ms+800us,hb=50us,suspect=200us,confirm=600us,seed=7");
  const TraceEvent* crash = find_event(r.trace, TraceKind::kNodeCrash);
  const TraceEvent* suspected = find_event(r.trace, TraceKind::kHaSuspected);
  const TraceEvent* confirmed = find_event(r.trace, TraceKind::kHaDeadConfirmed);
  ASSERT_NE(crash, nullptr);
  ASSERT_NE(suspected, nullptr);
  ASSERT_NE(confirmed, nullptr);
  EXPECT_EQ(crash->node, kCrashNode);
  EXPECT_EQ(crash->at, 1 * kMillisecond);
  // The watcher is the ring successor. Silence is measured from the last
  // heartbeat *before* the crash (up to hb_interval earlier than the crash
  // itself) and verdicts land on the tick grid (up to hb_interval later), so
  // each crash-relative latency is its timeout +/- one hb_interval.
  EXPECT_EQ(suspected->node, kCrashNode + 1);
  EXPECT_EQ(suspected->a, kCrashNode);
  EXPECT_GE(suspected->at - crash->at, 150 * kMicrosecond);
  EXPECT_LE(suspected->at - crash->at, 250 * kMicrosecond);
  EXPECT_EQ(confirmed->node, kCrashNode + 1);
  EXPECT_EQ(confirmed->a, kCrashNode);
  EXPECT_GE(confirmed->at - crash->at, 550 * kMicrosecond);
  EXPECT_LE(confirmed->at - crash->at, 650 * kMicrosecond);
  // Exactly one failure, handled once.
  EXPECT_EQ(count_events(r.trace, TraceKind::kHomePromoted), 1u);
  EXPECT_EQ(count_events(r.trace, TraceKind::kEpochBump), 1u);
  // Heartbeats flowed the whole run.
  EXPECT_GT(r.stats.get(Counter::kHaHeartbeats), 0u);
}

// --- 2+3. promotion, epoch invalidation, monitor-table recovery -------------

TEST(HaRecovery, CounterHomedOnCrashedNodeIsExactUnderBothProtocols) {
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult r = run_counter_with_crash(kind, kCrashProfile);
    // The lost-update litmus across a home failure: nothing lost, nothing
    // double-applied (monitor op ids absorb replayed grant requests).
    EXPECT_EQ(r.counter, kExpected) << dsm::protocol_name(kind);
    // The failure was real and handled.
    EXPECT_EQ(r.promoted_for, kCrashNode) << dsm::protocol_name(kind);
    EXPECT_EQ(r.epoch, 1u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.stats.get(Counter::kHaPromotions), 1u) << dsm::protocol_name(kind);
    // At least one blocked caller re-routed to the promoted home.
    EXPECT_GT(r.stats.get(Counter::kHaReroutes), 0u) << dsm::protocol_name(kind);
    // Recovery latency histogram: exactly one promotion, between the confirm
    // timeout (minus one heartbeat of pre-crash silence) and the crash
    // duration.
    const auto& h = r.stats.hist(Hist::kRecoveryLatency);
    ASSERT_EQ(h.count(), 1u) << dsm::protocol_name(kind);
    EXPECT_GE(h.min(), 550 * kMicrosecond) << dsm::protocol_name(kind);
    EXPECT_LE(h.max(), 800 * kMicrosecond) << dsm::protocol_name(kind);
  }
}

// --- 4. restart / rejoin ----------------------------------------------------

TEST(HaRecovery, RestartedNodeRejoinsAsCacherHomeStaysAtBackup) {
  HaRunResult r = run_counter_with_crash(dsm::ProtocolKind::kJavaPf, kCrashProfile);
  // Routing: the dead zone moved to the ring successor and stays there.
  EXPECT_EQ(r.zone2_home, kCrashNode + 1);
  // Presence: the backup holds the zone's pages as home; the restarted node
  // demoted its copies (it may re-cache them, but without home authority).
  EXPECT_TRUE(r.backup_is_home);
  EXPECT_FALSE(r.crashed_is_home);
  // The rejoin actually happened in-band (the run outlived the window).
  EXPECT_EQ(count_events(r.trace, TraceKind::kNodeRestart), 1u);
  EXPECT_EQ(count_events(r.trace, TraceKind::kHaRejoined), 1u);
  const TraceEvent* rejoined = find_event(r.trace, TraceKind::kHaRejoined);
  ASSERT_NE(rejoined, nullptr);
  EXPECT_EQ(rejoined->node, kCrashNode);
  EXPECT_EQ(rejoined->at, 1 * kMillisecond + 800 * kMicrosecond);
  EXPECT_GT(r.elapsed, rejoined->at);  // workers finished after the rejoin
}

// --- 5. determinism golden ---------------------------------------------------

#ifndef HYP_RECOVERY_GOLDEN_FILE
#error "HYP_RECOVERY_GOLDEN_FILE must point at the recorded goldens"
#endif

std::string golden_line(dsm::ProtocolKind kind, const HaRunResult& r) {
  std::uint64_t value_bits = 0;
  const double value = static_cast<double>(r.counter);
  static_assert(sizeof(value_bits) == sizeof(value));
  std::memcpy(&value_bits, &value, sizeof(value_bits));
  std::ostringstream os;
  os << "counter_crash " << dsm::protocol_name(kind) << " n" << kNodes
     << " value_bits=" << value_bits << " elapsed=" << r.elapsed
     << " events=" << r.events_processed << " switches=" << r.context_switches;
  for (const auto& [name, v] : r.stats.nonzero()) os << ' ' << name << '=' << v;
  return os.str();
}

TEST(HaRecoveryGolden, SameSeedKillAndRecoverIsBitIdentical) {
  std::vector<std::string> lines;
  std::map<std::string, std::string> actual;
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    // Two same-seed runs inside this binary must agree before either is
    // compared to the recorded golden.
    HaRunResult a = run_counter_with_crash(kind, kCrashProfile);
    HaRunResult b = run_counter_with_crash(kind, kCrashProfile);
    const std::string line = golden_line(kind, a);
    ASSERT_EQ(line, golden_line(kind, b)) << "same-seed rerun diverged";
    lines.push_back(line);
    actual[std::string("counter_crash ") + dsm::protocol_name(kind)] = line;
  }

  if (std::getenv("HYP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(HYP_RECOVERY_GOLDEN_FILE);
    ASSERT_TRUE(out.good()) << "cannot write " << HYP_RECOVERY_GOLDEN_FILE;
    out << "# Recovery goldens: shared-counter workload (6 workers x 40\n"
           "# synchronized increments, counter homed on node 2) on myri200 x4\n"
           "# under crash2@1ms+800us,seed=7, both protocols. A same-seed\n"
           "# kill-and-recover run must stay byte-identical; re-record with\n"
           "# HYP_UPDATE_GOLDENS=1 ./ha_tests and justify the semantic change\n"
           "# in the commit message.\n";
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "goldens re-recorded at " << HYP_RECOVERY_GOLDEN_FILE;
  }

  std::ifstream in(HYP_RECOVERY_GOLDEN_FILE);
  ASSERT_TRUE(in.good()) << "missing goldens; record with HYP_UPDATE_GOLDENS=1";
  std::map<std::string, std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string a, b;
    is >> a >> b;
    expected[a + ' ' + b] = line;
  }
  ASSERT_EQ(expected.size(), actual.size()) << "golden file is stale";
  for (const auto& [key, want] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << "no run for golden point " << key;
    EXPECT_EQ(it->second, want)
        << "kill-and-recover drifted at " << key << "\n  expected: " << want
        << "\n  actual:   " << it->second;
  }
}

}  // namespace
}  // namespace hyp::ha
